package bifit

import (
	"math"
	"testing"

	"coopabft/internal/dram"
	"coopabft/internal/ecc"
	"coopabft/internal/memctrl"
	"coopabft/internal/osmodel"
	"coopabft/internal/trace"
)

func newRig(def ecc.Scheme) (*osmodel.OS, *Injector, Target) {
	os := osmodel.New(memctrl.New(dram.New(dram.DefaultConfig()), def))
	in := New(os, 42)
	alloc, err := os.MallocECC("data", 1024*8, def, true)
	if err != nil {
		panic(err)
	}
	t := Target{Data: make([]float64, 1024), Reg: alloc.Region}
	for i := range t.Data {
		t.Data[i] = float64(i) + 0.5
	}
	in.Register(t)
	in.InstallRepairHandler(os.Ctl)
	return os, in, t
}

func TestFlipBitsChangesValueAndIsInvolution(t *testing.T) {
	in := New(nil, 1)
	tgt := Target{Data: []float64{1.0, 2.0}}
	orig := tgt.Data[0]
	if err := in.FlipBits(tgt, 0, []int{52}); err != nil {
		t.Fatal(err)
	}
	if tgt.Data[0] == orig {
		t.Error("flip did not change the value")
	}
	if err := in.FlipBits(tgt, 0, []int{52}); err != nil {
		t.Fatal(err)
	}
	if tgt.Data[0] != orig {
		t.Error("double flip did not restore")
	}
	if in.Injections != 2 {
		t.Errorf("injections = %d", in.Injections)
	}
}

func TestFlipBitsValidation(t *testing.T) {
	in := New(nil, 1)
	tgt := Target{Data: []float64{1}}
	if err := in.FlipBits(tgt, 5, []int{0}); err == nil {
		t.Error("out-of-range element accepted")
	}
	if err := in.FlipBits(tgt, 0, []int{64}); err == nil {
		t.Error("out-of-range bit accepted")
	}
}

func TestSingleBitCorrectedByHardwareRestoresAppData(t *testing.T) {
	os, in, tgt := newRig(ecc.SECDED)
	orig := tgt.Data[10]
	if err := in.FlipBits(tgt, 10, []int{3}); err != nil {
		t.Fatal(err)
	}
	if tgt.Data[10] == orig {
		t.Fatal("injection had no effect")
	}
	// Demand-read the line: SECDED corrects, repair handler restores app data.
	vaddr := tgt.Reg.Base + 10*8
	paddr, _ := os.Translate(vaddr)
	os.Ctl.Access(0, paddr, false, true)
	if tgt.Data[10] != orig {
		t.Errorf("hardware correction not written back: %v vs %v", tgt.Data[10], orig)
	}
	if os.Ctl.FaultyLines() != 0 {
		t.Error("fault table not cleared")
	}
}

func TestDoubleBitSurvivesSECDEDGoesToABFT(t *testing.T) {
	os, in, tgt := newRig(ecc.SECDED)
	orig := tgt.Data[20]
	if err := in.InjectKind(tgt, 20, DoubleBitSameWord); err != nil {
		t.Fatal(err)
	}
	vaddr := tgt.Reg.Base + 20*8
	paddr, _ := os.Translate(vaddr)
	os.Ctl.Access(0, paddr, false, true)
	// Uncorrectable: app data stays corrupted, OS exposed it to ABFT.
	if tgt.Data[20] == orig {
		t.Error("double-bit error should not be hardware-corrected")
	}
	pend := os.PendingCorruptions()
	if len(pend) != 1 {
		t.Fatalf("pending = %d", len(pend))
	}
	if pend[0].VirtAddr != vaddr&^63 {
		t.Errorf("pending addr %#x, want line of %#x", pend[0].VirtAddr, vaddr)
	}
}

func TestChipFailureCorrectedByChipkill(t *testing.T) {
	os, in, tgt := newRig(ecc.Chipkill)
	orig := tgt.Data[33]
	if err := in.InjectKind(tgt, 33, ChipFailure); err != nil {
		t.Fatal(err)
	}
	vaddr := tgt.Reg.Base + 33*8
	paddr, _ := os.Translate(vaddr)
	os.Ctl.Access(0, paddr, false, true)
	if tgt.Data[33] != orig {
		t.Error("chipkill did not restore the chip-failure pattern")
	}
	if st := os.Ctl.Stats(); st.CorrectedErrors != 1 {
		t.Errorf("ecc stats = %+v", st)
	}
}

func TestScatteredBeatsChipkill(t *testing.T) {
	os, in, tgt := newRig(ecc.Chipkill)
	if err := in.InjectKind(tgt, 40, Scattered); err != nil {
		t.Fatal(err)
	}
	vaddr := tgt.Reg.Base + 40*8
	paddr, _ := os.Translate(vaddr)
	os.Ctl.Access(0, paddr, false, true)
	st := os.Ctl.Stats()
	if st.UncorrectableErrors == 0 && st.CorrectedErrors > 0 {
		// Two bits in one symbol are still a single-symbol error; the
		// injector spreads across elements when it can, so this should not
		// happen with idx 40 (40 and 41 share a half line).
		t.Error("scattered pattern was corrected by chipkill")
	}
	if len(os.PendingCorruptions()) == 0 && !os.Panicked() {
		t.Error("scattered error neither exposed nor panicked")
	}
}

func TestScheduleSortedWithinRange(t *testing.T) {
	in := New(nil, 7)
	s := in.Schedule(100, 10)
	if len(s) != 10 {
		t.Fatalf("len = %d", len(s))
	}
	for i, v := range s {
		if v < 0 || v >= 100 {
			t.Fatalf("schedule[%d] = %d out of range", i, v)
		}
		if i > 0 && v < s[i-1] {
			t.Fatal("schedule not sorted")
		}
	}
}

func TestExpectedErrors(t *testing.T) {
	// 1 GB footprint at 5000 FIT/Mbit for one hour:
	// 8e9 bits = 8000 Mbit → 5000·8000 failures per 10⁹ hours = 0.04/hour.
	got := ExpectedErrors(1e9, 5000, 3600)
	if math.Abs(got-0.04) > 1e-12 {
		t.Errorf("ExpectedErrors = %v, want 0.04", got)
	}
	if ExpectedErrors(1e9, 0.02, 3600) >= got {
		t.Error("chipkill FIT should give far fewer errors")
	}
}

func TestPoissonMeanRoughlyRight(t *testing.T) {
	in := New(nil, 11)
	const mean = 4.0
	sum := 0
	for i := 0; i < 2000; i++ {
		sum += in.Poisson(mean)
	}
	got := float64(sum) / 2000
	if got < 3.6 || got > 4.4 {
		t.Errorf("Poisson sample mean = %v", got)
	}
	if in.Poisson(0) != 0 {
		t.Error("Poisson(0) != 0")
	}
}

func TestInjectionThenABFTClearFault(t *testing.T) {
	// After ABFT overwrites corrupted data, ClearFaultAt removes residue so
	// later reads are clean.
	os, in, tgt := newRig(ecc.SECDED)
	if err := in.InjectKind(tgt, 50, DoubleBitSameWord); err != nil {
		t.Fatal(err)
	}
	vaddr := tgt.Reg.Base + 50*8
	if err := os.ClearFaultAt(vaddr); err != nil {
		t.Fatal(err)
	}
	paddr, _ := os.Translate(vaddr)
	os.Ctl.Access(0, paddr, false, true)
	if st := os.Ctl.Stats(); st.UncorrectableErrors != 0 {
		t.Errorf("stale fault fired: %+v", st)
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		SingleBit:         "single-bit",
		DoubleBitSameWord: "double-bit",
		ChipFailure:       "chip-failure",
		Scattered:         "scattered",
	}
	for k, w := range want {
		if k.String() != w {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), w)
		}
	}
	if Kind(42).String() != "Kind(42)" {
		t.Error("unknown kind string wrong")
	}
}

func TestRandomElementInRange(t *testing.T) {
	in := New(nil, 5)
	tgt := Target{Data: make([]float64, 17)}
	for i := 0; i < 100; i++ {
		if e := in.RandomElement(tgt); e < 0 || e >= 17 {
			t.Fatalf("RandomElement = %d", e)
		}
	}
}

func TestInjectKindUnknown(t *testing.T) {
	in := New(nil, 5)
	if err := in.InjectKind(Target{Data: []float64{1}}, 0, Kind(42)); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestSoftwareOnlyInjectorKinds(t *testing.T) {
	// A nil-OS injector flips app data for every kind without MC calls.
	in := New(nil, 6)
	tgt := Target{Data: make([]float64, 16), Reg: trace.Region{Base: 4096, Size: 4096}}
	for _, k := range []Kind{SingleBit, DoubleBitSameWord, ChipFailure, Scattered} {
		for i := range tgt.Data {
			tgt.Data[i] = 1.0
		}
		if err := in.InjectKind(tgt, 4, k); err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		changed := false
		for _, v := range tgt.Data {
			if v != 1.0 {
				changed = true
			}
		}
		if !changed {
			t.Errorf("%v did not change any value", k)
		}
	}
}
