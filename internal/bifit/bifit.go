// Package bifit is the fault-injection infrastructure of the evaluation
// platform — the BIFIT [21] substitute. It injects bit flips at chosen
// times and data locations, keeping the application's float64 storage and
// the memory controller's stored-line error patterns consistent: software
// sees numerically corrupted values exactly when (and only when) the ECC
// scheme protecting the line fails to correct them.
package bifit

import (
	"fmt"
	"math"
	"math/rand"

	"coopabft/internal/memctrl"
	"coopabft/internal/osmodel"
	"coopabft/internal/trace"
)

// Kind selects an error pattern shape.
type Kind int

const (
	// SingleBit flips one bit — correctable by SECDED and chipkill.
	SingleBit Kind = iota
	// DoubleBitSameWord flips two bits in one 64-bit word — detected but
	// uncorrectable by SECDED, correctable by chipkill when both bits land
	// in one symbol.
	DoubleBitSameWord
	// ChipFailure corrupts one whole 8-bit symbol — the chipkill-correct
	// showcase; uncorrectable garbage under SECDED.
	ChipFailure
	// Scattered flips bits in two different symbols of the same half-line
	// codeword — beyond both SECDED and chipkill (Case 2/4 of §4).
	Scattered
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case SingleBit:
		return "single-bit"
	case DoubleBitSameWord:
		return "double-bit"
	case ChipFailure:
		return "chip-failure"
	case Scattered:
		return "scattered"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Target couples application storage with its virtual region.
type Target struct {
	Data []float64
	Reg  trace.Region
}

// Injector performs injections against an OS-managed machine. A nil OS
// yields a software-only injector (flips app data without MC bookkeeping),
// which is what pure-algorithm campaigns use.
type Injector struct {
	OS      *osmodel.OS
	rng     *rand.Rand
	targets []Target
	// Injections counts performed injections.
	Injections int
}

// New builds an injector with a deterministic stream.
func New(os *osmodel.OS, seed int64) *Injector {
	return &Injector{OS: os, rng: rand.New(rand.NewSource(seed))}
}

// Register makes a target's storage reachable for hardware-repair
// write-back and random injection.
func (in *Injector) Register(t Target) { in.targets = append(in.targets, t) }

// InstallRepairHandler wires the MC's correction write-back to the
// registered application storage.
func (in *Injector) InstallRepairHandler(ctl *memctrl.Controller) {
	ctl.OnRepair = func(physLine uint64, diff [64]byte) {
		if in.OS == nil {
			return
		}
		vline, err := in.OS.PhysToVirt(physLine)
		if err != nil {
			return
		}
		in.applyLineXOR(vline, diff)
	}
}

// applyLineXOR applies an XOR mask to whatever registered storage overlaps
// the virtual line.
func (in *Injector) applyLineXOR(vline uint64, diff [64]byte) {
	for _, t := range in.targets {
		if !t.Reg.Contains(vline) {
			continue
		}
		for b := 0; b < 64; b++ {
			if diff[b] == 0 {
				continue
			}
			addr := vline + uint64(b)
			idx := int((addr - t.Reg.Base) / 8)
			if idx >= len(t.Data) {
				continue
			}
			byteInWord := int((addr - t.Reg.Base) % 8)
			bits := math.Float64bits(t.Data[idx])
			bits ^= uint64(diff[b]) << (8 * byteInWord)
			t.Data[idx] = math.Float64frombits(bits)
		}
		return
	}
}

// FlipBits corrupts bit positions (0–63) of element idx of target t,
// updating app data and — when an OS is attached — the MC fault table.
func (in *Injector) FlipBits(t Target, idx int, bits []int) error {
	if idx < 0 || idx >= len(t.Data) {
		return fmt.Errorf("bifit: element %d out of range (%d)", idx, len(t.Data))
	}
	var mask uint64
	for _, b := range bits {
		if b < 0 || b > 63 {
			return fmt.Errorf("bifit: bit %d out of range", b)
		}
		mask |= 1 << b
	}
	w := math.Float64bits(t.Data[idx]) ^ mask
	t.Data[idx] = math.Float64frombits(w)
	in.Injections++

	if in.OS == nil {
		return nil
	}
	vaddr := t.Reg.Base + uint64(idx)*8
	var p memctrl.Pattern
	off := int(vaddr % 64)
	for b := 0; b < 8; b++ {
		p.Data[off+b] = byte(mask >> (8 * b))
	}
	return in.OS.InjectAt(vaddr, p)
}

// InjectKind corrupts element idx of t with a randomly drawn pattern of the
// given kind.
func (in *Injector) InjectKind(t Target, idx int, kind Kind) error {
	switch kind {
	case SingleBit:
		return in.FlipBits(t, idx, []int{in.rng.Intn(64)})
	case DoubleBitSameWord:
		b1 := in.rng.Intn(64)
		b2 := in.rng.Intn(64)
		for b2 == b1 {
			b2 = in.rng.Intn(64)
		}
		return in.FlipBits(t, idx, []int{b1, b2})
	case ChipFailure:
		// One whole byte (symbol) of the word.
		sym := in.rng.Intn(8)
		bits := make([]int, 0, 8)
		for b := 0; b < 8; b++ {
			if in.rng.Intn(2) == 0 || b == 0 {
				bits = append(bits, sym*8+b)
			}
		}
		return in.FlipBits(t, idx, bits)
	case Scattered:
		// Two bits in different symbols; with an OS attached, spread them
		// across two elements in the same half-line codeword to defeat
		// chipkill as well.
		s1 := in.rng.Intn(8)
		s2 := in.rng.Intn(8)
		for s2 == s1 {
			s2 = in.rng.Intn(8)
		}
		if err := in.FlipBits(t, idx, []int{s1*8 + in.rng.Intn(8)}); err != nil {
			return err
		}
		// A second element on the same line if available (same 32-byte
		// half), else the same element's other symbol.
		idx2 := idx ^ 1
		if idx2 >= len(t.Data) || (t.Reg.Base+uint64(idx)*8)/32 != (t.Reg.Base+uint64(idx2)*8)/32 {
			idx2 = idx
		}
		in.Injections-- // count the pair as one injection event
		return in.FlipBits(t, idx2, []int{s2*8 + in.rng.Intn(8)})
	default:
		return fmt.Errorf("bifit: unknown kind %v", kind)
	}
}

// RandomElement picks a uniformly random element index of t.
func (in *Injector) RandomElement(t Target) int { return in.rng.Intn(len(t.Data)) }

// Schedule draws `count` injection times uniformly from [0, steps) and
// returns them sorted — BIFIT's "inject at specific time" knob for
// iteration-indexed campaigns.
func (in *Injector) Schedule(steps, count int) []int {
	out := make([]int, count)
	for i := range out {
		out[i] = in.rng.Intn(steps)
	}
	// Insertion sort (count is small).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// ExpectedErrors returns the expected number of raw errors for a memory
// footprint over a duration at a FIT rate (failures per 10⁹ device-hours
// per Mbit): the scaling law behind Equation (4).
func ExpectedErrors(footprintBytes float64, fitPerMbit float64, seconds float64) float64 {
	mbit := footprintBytes * 8 / 1e6
	hours := seconds / 3600
	return fitPerMbit * mbit * hours / 1e9
}

// Poisson draws a Poisson-distributed count with the given mean (Knuth's
// method; means here are small).
func (in *Injector) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= in.rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1e6 {
			return k
		}
	}
}
