// Package campaign is the parallel campaign engine: a worker-pool
// scheduler that fans independent simulation cells — experiment sweep
// cells, Monte-Carlo trials, capability-curve trials, threshold sweep
// points — across the host's cores with deterministic per-cell RNG
// seeding, so a campaign's output is bit-identical whether it runs on one
// worker or on all of them. Every later scaling layer (sharding, batching,
// multi-backend dispatch) schedules work through this engine.
//
// Determinism contract: a cell must derive all of its randomness from its
// cell index (via CellSeed or an equivalent pure function of the campaign
// seed and the index) and must not touch state shared with other cells.
// Under that contract Map returns results indexed by cell, independent of
// worker count and completion order.
package campaign

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Splitmix64 is the SplitMix64 finalizer: a bijective avalanche mix used
// to derive statistically independent streams from structured inputs
// (campaign seed, cell index).
func Splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// CellSeed derives the deterministic RNG seed for one cell of a campaign.
// It depends only on (campaignSeed, cell), never on shared RNG state or
// scheduling order, which is what makes parallel output bit-identical to
// serial output.
func CellSeed(campaignSeed uint64, cell uint64) uint64 {
	return Splitmix64(campaignSeed ^ Splitmix64(cell+0x517cc1b727220a95))
}

// Metrics is the engine's lightweight progress/observability snapshot.
type Metrics struct {
	Workers int           // pool size
	Cells   int           // total cells in the campaign
	Done    int           // cells completed so far
	Elapsed time.Duration // wall time since the campaign started

	CellsPerSec float64       // Done / Elapsed
	MinCell     time.Duration // fastest completed cell
	MaxCell     time.Duration // slowest completed cell
	AvgCell     time.Duration // mean completed-cell wall time
	BusyTime    time.Duration // sum of per-cell wall times across workers
	Utilization float64       // BusyTime / (Workers × Elapsed)
}

// ProgressFunc receives metric snapshots: once per completed cell and a
// final snapshot when the campaign ends.
type ProgressFunc func(Metrics)

// PartialError reports a campaign that stopped before completing every
// cell — context cancellation or a failing cell. Results for cells that
// never ran are the zero value; Done counts the cells that finished.
type PartialError struct {
	Done  int
	Total int
	Err   error
}

func (e *PartialError) Error() string {
	return fmt.Sprintf("campaign: stopped after %d/%d cells: %v", e.Done, e.Total, e.Err)
}

// Unwrap exposes the cause (context.Canceled, context.DeadlineExceeded, or
// the first cell error).
func (e *PartialError) Unwrap() error { return e.Err }

// Engine is a reusable worker-pool scheduler. The zero value is not
// usable; build one with New.
type Engine struct {
	workers  int
	progress ProgressFunc
}

// Option configures an Engine.
type Option func(*Engine)

// WithWorkers sets the pool size; n <= 0 selects runtime.NumCPU().
func WithWorkers(n int) Option {
	return func(e *Engine) { e.workers = n }
}

// WithProgress installs a progress callback. The callback runs on worker
// goroutines under the engine's bookkeeping lock: keep it fast.
func WithProgress(f ProgressFunc) Option {
	return func(e *Engine) { e.progress = f }
}

// New builds an engine. With no options the pool is sized to the host
// (runtime.NumCPU).
func New(opts ...Option) *Engine {
	e := &Engine{}
	for _, o := range opts {
		o(e)
	}
	if e.workers <= 0 {
		e.workers = runtime.NumCPU()
	}
	return e
}

// Workers returns the pool size.
func (e *Engine) Workers() int { return e.workers }

// tally accumulates per-cell timings under its own lock.
type tally struct {
	mu       sync.Mutex
	done     int
	min, max time.Duration
	busy     time.Duration
}

func (t *tally) add(d time.Duration) (done int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.done++
	t.busy += d
	if t.min == 0 || d < t.min {
		t.min = d
	}
	if d > t.max {
		t.max = d
	}
	return t.done
}

func (t *tally) metrics(workers, cells int, start time.Time) Metrics {
	t.mu.Lock()
	defer t.mu.Unlock()
	m := Metrics{
		Workers:  workers,
		Cells:    cells,
		Done:     t.done,
		Elapsed:  time.Since(start),
		MinCell:  t.min,
		MaxCell:  t.max,
		BusyTime: t.busy,
	}
	if t.done > 0 {
		m.AvgCell = t.busy / time.Duration(t.done)
	}
	if s := m.Elapsed.Seconds(); s > 0 {
		m.CellsPerSec = float64(t.done) / s
	}
	if denom := float64(workers) * m.Elapsed.Seconds(); denom > 0 {
		m.Utilization = t.busy.Seconds() / denom
	}
	return m
}

// Run fans n cells across the pool and blocks until every cell finished,
// the context was cancelled, or a cell returned an error (which cancels
// the remaining cells). It returns the final metrics and, on early stop, a
// *PartialError.
func (e *Engine) Run(ctx context.Context, n int, cell func(ctx context.Context, i int) error) (Metrics, error) {
	start := time.Now()
	var t tally
	if n <= 0 {
		return t.metrics(e.workers, n, start), nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next     atomic.Int64 // next cell index to claim
		firstErr atomic.Pointer[error]
		wg       sync.WaitGroup
	)
	workers := e.workers
	if workers > n {
		workers = n
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				cellStart := time.Now()
				if err := cell(ctx, i); err != nil {
					err = fmt.Errorf("cell %d: %w", i, err)
					if firstErr.CompareAndSwap(nil, &err) {
						cancel()
					}
					return
				}
				t.add(time.Since(cellStart))
				if e.progress != nil {
					e.progress(t.metrics(e.workers, n, start))
				}
			}
		}()
	}
	wg.Wait()

	m := t.metrics(e.workers, n, start)
	if e.progress != nil {
		e.progress(m)
	}
	if ep := firstErr.Load(); ep != nil {
		return m, &PartialError{Done: m.Done, Total: n, Err: *ep}
	}
	if err := ctx.Err(); err != nil && m.Done < n {
		return m, &PartialError{Done: m.Done, Total: n, Err: err}
	}
	return m, nil
}

// Map fans n cells across the engine and collects each cell's value into
// a slice indexed by cell — the deterministic fan-out primitive. On early
// stop the slice holds zero values for cells that never ran and the error
// is a *PartialError.
func Map[T any](ctx context.Context, e *Engine, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, Metrics, error) {
	out := make([]T, n)
	m, err := e.Run(ctx, n, func(ctx context.Context, i int) error {
		v, err := fn(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	return out, m, err
}
