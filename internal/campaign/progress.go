package campaign

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// StderrProgress returns a ProgressFunc rendering a one-line live status
// to w (normally os.Stderr), throttled to at most one repaint per
// interval plus a final line when the campaign completes. The line is
// rewritten in place with a carriage return, so it is meant for a
// terminal; pass a longer interval for log files.
func StderrProgress(w io.Writer, label string, interval time.Duration) ProgressFunc {
	if interval <= 0 {
		interval = 200 * time.Millisecond
	}
	var (
		mu   sync.Mutex
		last time.Time
	)
	return func(m Metrics) {
		mu.Lock()
		defer mu.Unlock()
		final := m.Done == m.Cells
		if !final && time.Since(last) < interval {
			return
		}
		last = time.Now()
		fmt.Fprintf(w, "\r%s: %d/%d cells  %.1f cells/s  avg %s/cell  util %.0f%% (%d workers)",
			label, m.Done, m.Cells, m.CellsPerSec, m.AvgCell.Round(time.Millisecond),
			100*m.Utilization, m.Workers)
		if final {
			fmt.Fprintln(w)
		}
	}
}
