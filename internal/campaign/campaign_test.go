package campaign

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestCellSeedDeterministicAndDistinct: seeds are pure functions of
// (campaign, cell) and distinct across neighboring cells and campaigns.
func TestCellSeedDeterministicAndDistinct(t *testing.T) {
	if CellSeed(42, 0) != CellSeed(42, 0) {
		t.Error("CellSeed not deterministic")
	}
	seen := map[uint64]bool{}
	for c := uint64(0); c < 1000; c++ {
		s := CellSeed(42, c)
		if seen[s] {
			t.Fatalf("seed collision at cell %d", c)
		}
		seen[s] = true
	}
	if CellSeed(1, 7) == CellSeed(2, 7) {
		t.Error("different campaigns share a cell seed")
	}
}

// TestMapParallelMatchesSerial: the core determinism guarantee — the same
// seeded cells produce identical output regardless of worker count.
func TestMapParallelMatchesSerial(t *testing.T) {
	cell := func(_ context.Context, i int) (float64, error) {
		rng := rand.New(rand.NewSource(int64(CellSeed(7, uint64(i)))))
		sum := 0.0
		for k := 0; k < 100; k++ {
			sum += rng.Float64()
		}
		return sum, nil
	}
	serial, _, err := Map(context.Background(), New(WithWorkers(1)), 64, cell)
	if err != nil {
		t.Fatal(err)
	}
	parallel, _, err := Map(context.Background(), New(WithWorkers(8)), 64, cell)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("cell %d: serial %v != parallel %v", i, serial[i], parallel[i])
		}
	}
}

// TestRunCancellation: a cancelled campaign stops promptly and reports a
// partial-result error that unwraps to context.Canceled.
func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	eng := New(WithWorkers(2))
	done := make(chan struct{})
	var err error
	var m Metrics
	go func() {
		defer close(done)
		m, err = eng.Run(ctx, 1000, func(ctx context.Context, i int) error {
			if started.Add(1) == 1 {
				cancel()
			}
			time.Sleep(time.Millisecond)
			return nil
		})
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled campaign did not return promptly")
	}
	if err == nil {
		t.Fatal("cancelled campaign returned nil error")
	}
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("error %T is not *PartialError", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error does not unwrap to context.Canceled: %v", err)
	}
	if pe.Done >= pe.Total {
		t.Errorf("partial error claims completion: %+v", pe)
	}
	if m.Done != pe.Done {
		t.Errorf("metrics done %d != partial done %d", m.Done, pe.Done)
	}
}

// TestRunCellError: a failing cell cancels the campaign and surfaces the
// cell error with its index.
func TestRunCellError(t *testing.T) {
	boom := errors.New("boom")
	_, err := New(WithWorkers(4)).Run(context.Background(), 100, func(_ context.Context, i int) error {
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("cell error lost: %v", err)
	}
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("error %T is not *PartialError", err)
	}
	if !strings.Contains(err.Error(), "cell 3") {
		t.Errorf("error does not name the failing cell: %v", err)
	}
}

// TestMetrics: counters and derived rates are consistent after a full run.
func TestMetrics(t *testing.T) {
	eng := New(WithWorkers(3))
	if eng.Workers() != 3 {
		t.Fatalf("workers = %d", eng.Workers())
	}
	m, err := eng.Run(context.Background(), 10, func(_ context.Context, i int) error {
		time.Sleep(time.Millisecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Done != 10 || m.Cells != 10 {
		t.Errorf("done %d/%d", m.Done, m.Cells)
	}
	if m.CellsPerSec <= 0 || m.AvgCell <= 0 || m.BusyTime <= 0 {
		t.Errorf("derived metrics not populated: %+v", m)
	}
	if m.MinCell > m.AvgCell || m.AvgCell > m.MaxCell {
		t.Errorf("min/avg/max out of order: %+v", m)
	}
	if m.Utilization <= 0 || m.Utilization > 1.0001 {
		t.Errorf("utilization %v out of range", m.Utilization)
	}
}

// TestProgressCallback: the callback observes monotone completion ending
// at the final cell count.
func TestProgressCallback(t *testing.T) {
	var lastDone atomic.Int32
	eng := New(WithWorkers(2), WithProgress(func(m Metrics) {
		if int32(m.Done) < lastDone.Load() {
			t.Errorf("progress went backwards: %d -> %d", lastDone.Load(), m.Done)
		}
		lastDone.Store(int32(m.Done))
	}))
	if _, err := eng.Run(context.Background(), 20, func(_ context.Context, i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if lastDone.Load() != 20 {
		t.Errorf("final progress done = %d", lastDone.Load())
	}
}

func TestStderrProgressRenders(t *testing.T) {
	var b bytes.Buffer
	p := StderrProgress(&b, "sweep", time.Nanosecond)
	p(Metrics{Workers: 2, Cells: 4, Done: 2, CellsPerSec: 1.5})
	p(Metrics{Workers: 2, Cells: 4, Done: 4, CellsPerSec: 2.0})
	out := b.String()
	if !strings.Contains(out, "sweep") || !strings.Contains(out, "4/4") {
		t.Errorf("progress output missing fields: %q", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Error("final progress line not terminated")
	}
}

func TestRunEmpty(t *testing.T) {
	m, err := New().Run(context.Background(), 0, func(_ context.Context, i int) error { return nil })
	if err != nil || m.Done != 0 {
		t.Fatalf("empty campaign: %v %+v", err, m)
	}
}
