package benchjson

import (
	"path/filepath"
	"testing"
	"time"

	"coopabft/internal/core"
	"coopabft/internal/serve"
	"coopabft/internal/serve/loadgen"
)

func sampleResult() *loadgen.Result {
	return &loadgen.Result{
		Cfg: loadgen.Config{Seed: 7, Duration: time.Second, FaultFraction: 0.25},
		Cells: []loadgen.CellResult{{
			Cell: loadgen.Cell{
				Rate: 40, Kernel: serve.KernelGEMM, Strategy: core.WholeChipkill,
			},
			Sent: 80, Completed: 78,
			Outcomes: loadgen.Outcomes{Corrected: 70, Restarted: 8, Overloaded: 2},
			P50:      3 * time.Millisecond, P95: 9 * time.Millisecond,
			P99: 12 * time.Millisecond, Max: 15 * time.Millisecond,
			ThroughputRPS: 39.2,
		}},
	}
}

// TestRoundTrip writes the artifact and reads it back field for field.
func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_serve.json")
	f := FromResult(sampleResult())
	if err := Write(path, f); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Bench != "serve" || got.Seed != 7 || len(got.Cells) != 1 {
		t.Fatalf("round trip mangled header: %+v", got)
	}
	c := got.Cells[0]
	if c.Kernel != "gemm" || c.Strategy != "W_CK" || c.RateRPS != 40 {
		t.Errorf("cell identity: %+v", c)
	}
	if c.Corrected != 70 || c.Restarted != 8 || c.Overloaded != 2 {
		t.Errorf("taxonomy: %+v", c)
	}
	if c.P95MS != 9 || c.MaxMS != 15 {
		t.Errorf("latency fields: %+v", c)
	}
	if got.GoVersion == "" || got.When == "" {
		t.Errorf("environment header empty: %+v", got)
	}
}

// TestWriteAtomic: a Write over an existing artifact either fully
// replaces it or leaves it intact — no truncated JSON.
func TestWriteAtomic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_serve.json")
	f := FromResult(sampleResult())
	if err := Write(path, f); err != nil {
		t.Fatal(err)
	}
	f.Seed = 8
	if err := Write(path, f); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != 8 {
		t.Errorf("seed = %d, want 8", got.Seed)
	}
}

// TestReadMissing surfaces a useful error for an absent baseline.
func TestReadMissing(t *testing.T) {
	if _, err := Read(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

// TestRecoverRoundTrip: BENCH_recover.json writes atomically and reads
// back intact.
func TestRecoverRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_recover.json")
	f := NewRecoverFile(11)
	f.NX, f.NY, f.CheckpointEvery = 48, 48, 4
	f.ColdWallMS, f.ColdSteps = 920.5, 210
	f.KillWallMS, f.ResumeStep, f.Migrations = 1100.25, 96, 1
	f.RecoveryMS, f.Checkpoints, f.Outcome = 87.5, 24, "corrected"
	if err := WriteRecover(path, f); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRecover(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Bench != "recover" || got.Seed != 11 || got.GoVersion == "" || got.When == "" {
		t.Fatalf("header mangled: %+v", got)
	}
	if got.ResumeStep != 96 || got.Migrations != 1 || got.RecoveryMS != 87.5 {
		t.Errorf("chaos fields: %+v", got)
	}
	if got.ColdWallMS != 920.5 || got.Outcome != "corrected" {
		t.Errorf("baseline fields: %+v", got)
	}
}
