// Package benchjson renders serving-sweep results as a machine-readable
// benchmark artifact (BENCH_serve.json), the perf baseline future changes
// compare against: per-cell throughput, latency percentiles, and the full
// outcome taxonomy, written atomically so a crashed run never leaves a
// truncated baseline.
package benchjson

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"coopabft/internal/serve"
	"coopabft/internal/serve/loadgen"
)

// Cell is one sweep coordinate's aggregate, flattened for JSON diffing.
type Cell struct {
	Kernel     string  `json:"kernel"`
	Strategy   string  `json:"strategy"`
	VerifyMode string  `json:"verify_mode"`
	Dtype      string  `json:"dtype,omitempty"` // "f32" on mixed-precision cells; empty = f64
	RateRPS    float64 `json:"rate_rps"`

	Sent         int `json:"sent"`
	Completed    int `json:"completed"`
	Corrected    int `json:"corrected"`
	Restarted    int `json:"restarted"`
	Aborted      int `json:"aborted"`
	Overloaded   int `json:"overloaded"`
	Throttled    int `json:"throttled"`
	Shed         int `json:"shed"`
	QueueTimeout int `json:"queue_timeout"`
	Errors       int `json:"errors"`
	Unclassified int `json:"unclassified"`

	InjectedReqs int `json:"injected_reqs"`
	FaultsLanded int `json:"faults_landed"`
	Corrections  int `json:"abft_corrections"`
	Restarts     int `json:"restarts"`

	ThroughputRPS float64 `json:"throughput_rps"`
	P50MS         float64 `json:"p50_ms"`
	P95MS         float64 `json:"p95_ms"`
	P99MS         float64 `json:"p99_ms"`
	MaxMS         float64 `json:"max_ms"`

	// Tenants is the per-tenant breakdown of a multi-tenant cell (absent
	// on single-stream sweeps), sorted by tenant name for stable diffs.
	Tenants []TenantCell `json:"tenants,omitempty"`
}

// TenantCell is one tenant's slice of a multi-tenant cell.
type TenantCell struct {
	Tenant    string  `json:"tenant"`
	Priority  string  `json:"priority"`
	Sent      int     `json:"sent"`
	Completed int     `json:"completed"`
	Throttled int     `json:"throttled"`
	Shed      int     `json:"shed"`
	P50MS     float64 `json:"p50_ms"`
	P95MS     float64 `json:"p95_ms"`
	P99MS     float64 `json:"p99_ms"`
}

// File is the whole artifact.
type File struct {
	Bench     string `json:"bench"` // always "serve"
	Seed      uint64 `json:"seed"`
	When      string `json:"when"` // RFC3339
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`

	DurationPerCellMS float64 `json:"duration_per_cell_ms"`
	FaultFraction     float64 `json:"fault_fraction"`

	Cells []Cell `json:"cells"`
}

// FromResult flattens a sweep into the artifact schema.
func FromResult(res *loadgen.Result) File {
	f := File{
		Bench:             "serve",
		Seed:              res.Cfg.Seed,
		When:              time.Now().UTC().Format(time.RFC3339),
		GoVersion:         runtime.Version(),
		GOOS:              runtime.GOOS,
		GOARCH:            runtime.GOARCH,
		NumCPU:            runtime.NumCPU(),
		DurationPerCellMS: float64(res.Cfg.Duration) / float64(time.Millisecond),
		FaultFraction:     res.Cfg.FaultFraction,
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	for _, c := range res.Cells {
		cell := Cell{
			Kernel:        c.Kernel.String(),
			Strategy:      c.Strategy.String(),
			VerifyMode:    c.Mode.String(),
			RateRPS:       c.Rate,
			Sent:          c.Sent,
			Completed:     c.Completed,
			Corrected:     c.Corrected,
			Restarted:     c.Restarted,
			Aborted:       c.Aborted,
			Overloaded:    c.Overloaded,
			Throttled:     c.Throttled,
			Shed:          c.Shed,
			QueueTimeout:  c.QueueTimeout,
			Errors:        c.Errors,
			Unclassified:  c.Unclassified,
			InjectedReqs:  c.InjectedReqs,
			FaultsLanded:  c.FaultsLanded,
			Corrections:   c.Corrections,
			Restarts:      c.Restarts,
			ThroughputRPS: c.ThroughputRPS,
			P50MS:         ms(c.P50),
			P95MS:         ms(c.P95),
			P99MS:         ms(c.P99),
			MaxMS:         ms(c.Max),
		}
		if c.Dtype == serve.DtypeF32 {
			cell.Dtype = c.Dtype.String()
		}
		names := make([]string, 0, len(c.Tenants))
		for name := range c.Tenants {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			ts := c.Tenants[name]
			cell.Tenants = append(cell.Tenants, TenantCell{
				Tenant:    name,
				Priority:  ts.Priority.String(),
				Sent:      ts.Sent,
				Completed: ts.Completed,
				Throttled: ts.Throttled,
				Shed:      ts.Shed,
				P50MS:     ms(ts.P50),
				P95MS:     ms(ts.P95),
				P99MS:     ms(ts.P99),
			})
		}
		f.Cells = append(f.Cells, cell)
	}
	return f
}

// RecoverFile is the BENCH_recover.json artifact: one cold full-restart
// baseline solve against one SIGKILL-mid-solve chaos run, the pair the CI
// gate compares to prove step-granular migration beats starting over.
type RecoverFile struct {
	Bench     string `json:"bench"` // always "recover"
	Seed      uint64 `json:"seed"`
	When      string `json:"when"` // RFC3339
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`

	NX              int `json:"nx"`
	NY              int `json:"ny"`
	CheckpointEvery int `json:"checkpoint_every"`

	// ColdWallMS is the undisturbed submit-to-done wall time — the cost a
	// full restart would pay again from step zero.
	ColdWallMS float64 `json:"cold_wall_ms"`
	ColdSteps  int     `json:"cold_steps"`

	// Chaos-run fields: wall time with a worker killed mid-solve, the step
	// the replacement resumed from, and the gateway-measured fault-to-
	// resumed latency the gate holds strictly under ColdWallMS.
	KillWallMS  float64 `json:"kill_wall_ms"`
	ResumeStep  int     `json:"resume_step"`
	Migrations  int     `json:"migrations"`
	RecoveryMS  float64 `json:"recovery_ms"`
	Checkpoints int     `json:"checkpoints"`
	Outcome     string  `json:"outcome"`
}

// NewRecoverFile stamps the host fields shared with File.
func NewRecoverFile(seed uint64) RecoverFile {
	return RecoverFile{
		Bench:     "recover",
		Seed:      seed,
		When:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
}

// Write marshals the artifact and renames it into place atomically.
func Write(path string, f File) error {
	return writeAtomic(path, f)
}

// WriteRecover writes BENCH_recover.json with the same atomicity contract
// as Write.
func WriteRecover(path string, f RecoverFile) error {
	return writeAtomic(path, f)
}

func writeAtomic(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".bench-*.json")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("benchjson: %w", err)
	}
	return nil
}

// Read loads an artifact (for baseline comparisons in future PRs).
func Read(path string) (File, error) {
	var f File
	err := readJSON(path, &f)
	return f, err
}

// ReadRecover loads a BENCH_recover.json artifact.
func ReadRecover(path string) (RecoverFile, error) {
	var f RecoverFile
	err := readJSON(path, &f)
	return f, err
}

func readJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("benchjson: %s: %w", path, err)
	}
	return nil
}
