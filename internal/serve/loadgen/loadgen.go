// Package loadgen is the open-loop load generator for the serving
// subsystem: it sweeps request rate × kernel × ECC strategy × verify
// mode, fires
// requests on a fixed schedule without waiting for responses (so overload
// shows up as typed rejections, not as a self-throttling client), injects
// faults on a seeded fraction of requests, and reports per-cell latency
// percentiles plus the full outcome taxonomy. Request seeds derive from
// (campaign seed, global request index), so a sweep is replayable.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"coopabft/internal/abft"
	"coopabft/internal/bifit"
	"coopabft/internal/campaign"
	"coopabft/internal/core"
	"coopabft/internal/serve"
)

// Doer abstracts the target: the in-process *serve.Service, or HTTPClient
// against a live abftd.
type Doer interface {
	Do(ctx context.Context, req serve.Request) (serve.Response, error)
}

// Config describes one sweep. Cells are the cross product
// Rates × Kernels × Strategies, run sequentially; requests within a cell
// are fired open-loop at the cell's rate for Duration.
type Config struct {
	Seed     uint64
	Duration time.Duration // per-cell send window (default 2s)
	Timeout  time.Duration // per-request budget (default 5s)

	// Requests, when > 0, sends exactly that many requests per cell
	// (still paced at the cell's rate) instead of sending for Duration —
	// the replayable fixed-count mode. With a fixed request count the
	// whole sweep is a pure function of Seed, which is what the cluster
	// determinism gate compares bit-for-bit against a direct daemon.
	Requests int

	Rates      []float64 // requests/second (default {25})
	Kernels    []serve.Kernel
	Strategies []core.Strategy
	// Modes is the verify-mode sweep axis (default {NotifiedVerify}).
	// FusedVerify is gemm-only: fused × non-gemm coordinates are skipped
	// rather than sent, so a sweep never manufactures 400s.
	Modes []abft.VerifyMode
	// Integrities is the integrity-tier sweep axis (default
	// {IntegrityNone}). IntegrityVerifyVote is gemm-only and skipped off
	// other kernels, mirroring the fused rule.
	Integrities []serve.Integrity
	// Replicas is the vote width R stamped on non-none integrity requests
	// (0 defers to the gateway default).
	Replicas int
	// ForbidNodes lists node IDs that must never deliver an answer — the
	// lying-node assertion: a Byzantine replica may vote, but if its ballot
	// ever wins an election the sweep records a ForbiddenNode hit, which
	// the gates treat like a wrong answer.
	ForbidNodes []string
	// Dtypes is the element-type sweep axis (default {DtypeF64}). f32 is
	// gemm-only, pairs only with the fused verify mode, and excludes the
	// integrity tier; incompatible coordinates are skipped rather than
	// sent, mirroring the fused rule.
	Dtypes []serve.Dtype
	// Tenants, when non-empty, turns every cell into a concurrent
	// multi-tenant flood: each spec fires its own open-loop stream at its
	// own rate, stamped with its name and priority class, and the cell
	// reports per-tenant tallies alongside the aggregate. This is how the
	// QoS gates observe that a flooding tenant is throttled and shed while
	// a protected tenant inside its quota keeps completing.
	Tenants []TenantSpec

	// N sizes gemm/cholesky requests (default 48); NX, NY size CG.
	N, NX, NY int

	// FaultFraction of requests carry an injection plan of Faults errors
	// of FaultKind; selection is seeded per request, not random.
	FaultFraction float64
	Faults        int // default 1
	FaultKind     bifit.Kind
}

// TenantSpec is one synthetic tenant in a multi-tenant sweep.
type TenantSpec struct {
	Name     string
	Priority serve.Priority
	// Rate is this tenant's own open-loop send rate in req/s; 0 inherits
	// the cell rate. Set it above the server's -tenant-rate to make the
	// tenant a deliberate quota violator.
	Rate float64
}

func (c *Config) defaults() {
	if c.Duration <= 0 {
		c.Duration = 2 * time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Second
	}
	if len(c.Rates) == 0 {
		c.Rates = []float64{25}
	}
	if len(c.Kernels) == 0 {
		c.Kernels = []serve.Kernel{serve.KernelGEMM}
	}
	if len(c.Strategies) == 0 {
		c.Strategies = []core.Strategy{serve.DefaultStrategy}
	}
	if len(c.Modes) == 0 {
		c.Modes = []abft.VerifyMode{abft.NotifiedVerify}
	}
	if len(c.Integrities) == 0 {
		c.Integrities = []serve.Integrity{serve.IntegrityNone}
	}
	if len(c.Dtypes) == 0 {
		c.Dtypes = []serve.Dtype{serve.DtypeF64}
	}
	if c.N <= 0 {
		c.N = 48
	}
	if c.NX <= 0 {
		c.NX = 8
	}
	if c.NY <= 0 {
		c.NY = 8
	}
	if c.Faults <= 0 {
		c.Faults = 1
	}
}

// Cell is one sweep coordinate.
type Cell struct {
	Rate      float64
	Kernel    serve.Kernel
	Strategy  core.Strategy
	Mode      abft.VerifyMode
	Integrity serve.Integrity
	Dtype     serve.Dtype
}

// Outcomes tallies the terminal classification of every request sent.
type Outcomes struct {
	Corrected    int // ladder finished in place
	Restarted    int // ladder rolled back, replay verified
	Aborted      int // ladder gave up explicitly
	Overloaded   int // untyped admission rejection (429 kind "overloaded")
	Throttled    int // tenant over its own quota (429 kind "throttled")
	Shed         int // speculative work sacrificed to overload (429 kind "shed")
	QueueTimeout int // admitted but expired in queue (503)
	Errors       int // transport/internal failures
	// Unclassified counts completed responses whose outcome is outside
	// the ladder taxonomy — wrong answers. Must always be zero.
	Unclassified int
	// Retried counts completed responses a cluster gateway delivered
	// after failing over from at least one replica (gw_retries > 0).
	// Always zero against a bare daemon.
	Retried int
	// Voted counts completed responses delivered through the integrity
	// tier (vote_replicas > 0).
	Voted int
	// NoQuorum counts delivered aborts that carry a vote tally below
	// quorum — the integrity tier's typed "could not establish".
	NoQuorum int
	// ForbiddenNode counts completed responses whose delivering node is in
	// Config.ForbidNodes — a lying replica winning an election. Must
	// always be zero, like Unclassified.
	ForbiddenNode int
}

// CellResult is one cell's aggregate.
type CellResult struct {
	Cell
	Sent      int
	Completed int // requests that returned a classified Response
	Outcomes

	InjectedReqs  int // requests that carried an injection plan
	FaultsLanded  int // faults delivered by the service
	Corrections   int // ABFT element repairs
	Restarts      int // checkpoint rollbacks
	BatchedShare  float64
	ThroughputRPS float64 // Completed / wall

	// PerNode counts completed responses by the gateway-stamped node ID
	// (nil against a bare daemon) — the placement spread.
	PerNode map[string]int

	// Tenants holds each tenant's slice of the cell, keyed by tenant name
	// (nil unless Config.Tenants was set).
	Tenants map[string]*TenantStats

	P50, P95, P99, Max time.Duration
}

// TenantStats is one tenant's slice of a cell: its own outcome tallies and
// latency percentiles, the evidence the per-tenant QoS gates run on.
type TenantStats struct {
	Priority     serve.Priority
	Sent         int
	Completed    int
	Throttled    int
	Shed         int
	Overloaded   int
	QueueTimeout int
	Errors       int

	P50, P95, P99 time.Duration

	latencies []time.Duration
}

// Result is a full sweep.
type Result struct {
	Cfg   Config
	Cells []CellResult
	Wall  time.Duration
}

// Run executes the sweep. Only context cancellation aborts it early;
// per-request failures are data.
func Run(ctx context.Context, d Doer, cfg Config) (*Result, error) {
	cfg.defaults()
	start := time.Now()
	res := &Result{Cfg: cfg}
	reqIndex := uint64(0)
	for _, rate := range cfg.Rates {
		for _, kernel := range cfg.Kernels {
			for _, strat := range cfg.Strategies {
				for _, mode := range cfg.Modes {
					if mode == abft.FusedVerify && kernel != serve.KernelGEMM {
						continue // fused is a DGEMM-only verify mode
					}
					for _, integ := range cfg.Integrities {
						if integ == serve.IntegrityVerifyVote && kernel != serve.KernelGEMM {
							continue // verify-vote replicates the gemm checksum pass
						}
						for _, dt := range cfg.Dtypes {
							if dt == serve.DtypeF32 &&
								(kernel != serve.KernelGEMM ||
									mode != abft.FusedVerify ||
									integ != serve.IntegrityNone) {
								// f32 admits only gemm x fused x no integrity
								// tier; skip the coordinate, don't manufacture
								// 400s.
								continue
							}
							if err := ctx.Err(); err != nil {
								return res, err
							}
							cell := Cell{Rate: rate, Kernel: kernel, Strategy: strat, Mode: mode, Integrity: integ, Dtype: dt}
							cr, sent := runCell(ctx, d, cfg, cell, reqIndex)
							reqIndex += sent
							res.Cells = append(res.Cells, cr)
						}
					}
				}
			}
		}
	}
	res.Wall = time.Since(start)
	return res, nil
}

// runCell fires one cell's open-loop schedule and aggregates its
// results. Without Config.Tenants it is a single anonymous stream (the
// server's default tenant); with Tenants every spec fires its own
// concurrent stream at its own rate, so quota and shedding decisions
// interleave under real contention.
func runCell(ctx context.Context, d Doer, cfg Config, cell Cell, base uint64) (CellResult, uint64) {
	cellStart := time.Now()
	var (
		mu        sync.Mutex
		latencies []time.Duration
		cr        = CellResult{Cell: cell}
	)
	record := func(ts *TenantStats, lat time.Duration, resp serve.Response, err error) {
		mu.Lock()
		defer mu.Unlock()
		var throttle *serve.ThrottleError
		var shed *serve.ShedError
		switch {
		case err == nil:
			cr.Completed++
			latencies = append(latencies, lat)
			cr.FaultsLanded += resp.Injected
			cr.Corrections += resp.Corrections
			cr.Restarts += resp.Restarts
			if resp.BatchSize > 1 {
				cr.BatchedShare++ // normalized after the cell drains
			}
			if resp.GatewayRetries > 0 {
				cr.Retried++
			}
			if resp.VoteReplicas > 0 {
				cr.Voted++
				if resp.Outcome == "aborted" && resp.VoteAgree < (resp.VoteReplicas+2)/2 {
					cr.NoQuorum++
				}
			}
			if resp.Node != "" {
				for _, forbidden := range cfg.ForbidNodes {
					if resp.Node == forbidden {
						cr.ForbiddenNode++
					}
				}
				if cr.PerNode == nil {
					cr.PerNode = make(map[string]int)
				}
				cr.PerNode[resp.Node]++
			}
			switch resp.Outcome {
			case "corrected":
				cr.Corrected++
			case "restarted":
				cr.Restarted++
			case "aborted":
				cr.Aborted++
			default:
				cr.Unclassified++
			}
			if ts != nil {
				ts.Completed++
				ts.latencies = append(ts.latencies, lat)
			}
		case errors.As(err, &throttle):
			cr.Throttled++
			if ts != nil {
				ts.Throttled++
			}
		case errors.As(err, &shed):
			cr.Shed++
			if ts != nil {
				ts.Shed++
			}
		case errors.Is(err, serve.ErrOverloaded):
			cr.Overloaded++
			if ts != nil {
				ts.Overloaded++
			}
		case errors.Is(err, serve.ErrQueueTimeout):
			cr.QueueTimeout++
			if ts != nil {
				ts.QueueTimeout++
			}
		default:
			cr.Errors++
			if ts != nil {
				ts.Errors++
			}
		}
	}

	streams := cfg.Tenants
	if len(streams) == 0 {
		streams = []TenantSpec{{}} // one anonymous stream: the default tenant
	}
	var wg sync.WaitGroup
	sent := make([]uint64, len(streams))
	for i := range streams {
		tn := streams[i]
		var ts *TenantStats
		if tn.Name != "" {
			if cr.Tenants == nil {
				cr.Tenants = make(map[string]*TenantStats)
			}
			ts = &TenantStats{Priority: tn.Priority}
			cr.Tenants[tn.Name] = ts
		}
		wg.Add(1)
		go func(i int, tn TenantSpec, ts *TenantStats) {
			defer wg.Done()
			// Disjoint index lanes keep every tenant's request stream a
			// pure function of the sweep seed regardless of goroutine
			// interleaving.
			sent[i] = fireStream(ctx, d, cfg, cell, tn, ts, base+uint64(i)<<20, &mu, &cr, record)
		}(i, tn, ts)
	}
	wg.Wait()

	wall := time.Since(cellStart)
	if wall > 0 {
		cr.ThroughputRPS = float64(cr.Completed) / wall.Seconds()
	}
	if cr.Completed > 0 {
		cr.BatchedShare /= float64(cr.Completed)
	}
	cr.P50, cr.P95, cr.P99, cr.Max = percentiles(latencies)
	for _, ts := range cr.Tenants {
		ts.P50, ts.P95, ts.P99, _ = percentiles(ts.latencies)
		ts.latencies = nil
	}
	var total uint64
	for _, s := range sent {
		total += s
	}
	return cr, total
}

// fireStream sends one tenant's open-loop schedule for a cell, returning
// how many requests it fired. Tallies land in cr (and ts, when the stream
// is a named tenant) under mu via record.
func fireStream(ctx context.Context, d Doer, cfg Config, cell Cell, tn TenantSpec, ts *TenantStats, base uint64, mu *sync.Mutex, cr *CellResult, record func(*TenantStats, time.Duration, serve.Response, error)) uint64 {
	rate := tn.Rate
	if rate <= 0 {
		rate = cell.Rate
	}
	interval := time.Duration(float64(time.Second) / rate)
	if interval <= 0 {
		interval = time.Millisecond
	}
	deadline := time.Now().Add(cfg.Duration)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	var wg sync.WaitGroup
	sent := uint64(0)
	// Fixed-count mode sends exactly cfg.Requests; the open-loop default
	// sends until the wall-clock window closes.
	more := func() bool {
		if cfg.Requests > 0 {
			return sent < uint64(cfg.Requests)
		}
		return time.Now().Before(deadline)
	}
	for more() && ctx.Err() == nil {
		seed := campaign.CellSeed(cfg.Seed, base+sent)
		req := serve.Request{
			Kernel:     cell.Kernel.String(),
			N:          cfg.N,
			NX:         cfg.NX,
			NY:         cfg.NY,
			Strategy:   cell.Strategy.String(),
			VerifyMode: cell.Mode.String(),
			Seed:       seed,
		}
		if cell.Dtype == serve.DtypeF32 {
			req.Dtype = cell.Dtype.String()
		}
		if tn.Name != "" {
			req.Tenant = tn.Name
			req.Priority = tn.Priority.String()
		}
		if cell.Integrity != serve.IntegrityNone {
			req.Integrity = cell.Integrity.String()
			req.Replicas = cfg.Replicas
		}
		// Seeded fault lottery: the decision is a pure function of the
		// request seed, so replays inject on the same requests.
		inject := cfg.FaultFraction > 0 &&
			float64(campaign.Splitmix64(seed))/float64(^uint64(0)) < cfg.FaultFraction
		if inject {
			req.Faults = cfg.Faults
			req.FaultKind = cfg.FaultKind.String()
		}
		mu.Lock()
		if inject {
			cr.InjectedReqs++
		}
		cr.Sent++
		if ts != nil {
			ts.Sent++
		}
		mu.Unlock()
		sent++
		wg.Add(1)
		go func() {
			defer wg.Done()
			rctx, cancel := context.WithTimeout(ctx, cfg.Timeout)
			defer cancel()
			t0 := time.Now()
			resp, err := d.Do(rctx, req)
			record(ts, time.Since(t0), resp, err)
		}()
		select {
		case <-ticker.C:
		case <-ctx.Done():
		}
	}
	wg.Wait()
	return sent
}

// percentiles reports p50/p95/p99/max over completed-request latencies.
func percentiles(lat []time.Duration) (p50, p95, p99, max time.Duration) {
	if len(lat) == 0 {
		return
	}
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	at := func(q float64) time.Duration {
		i := int(q * float64(len(sorted)-1))
		return sorted[i]
	}
	return at(0.50), at(0.95), at(0.99), sorted[len(sorted)-1]
}

// Totals sums the outcome taxonomy across cells.
func (r *Result) Totals() Outcomes {
	var t Outcomes
	for _, c := range r.Cells {
		t.Corrected += c.Corrected
		t.Restarted += c.Restarted
		t.Aborted += c.Aborted
		t.Overloaded += c.Overloaded
		t.Throttled += c.Throttled
		t.Shed += c.Shed
		t.QueueTimeout += c.QueueTimeout
		t.Errors += c.Errors
		t.Unclassified += c.Unclassified
		t.Retried += c.Retried
		t.Voted += c.Voted
		t.NoQuorum += c.NoQuorum
		t.ForbiddenNode += c.ForbiddenNode
	}
	return t
}

// Sent sums the requests fired across cells.
func (r *Result) Sent() int {
	n := 0
	for _, c := range r.Cells {
		n += c.Sent
	}
	return n
}

// Completed sums the classified responses across cells.
func (r *Result) Completed() int {
	n := 0
	for _, c := range r.Cells {
		n += c.Completed
	}
	return n
}

// PerNode aggregates the gateway-stamped placement spread across cells
// (empty against a bare daemon).
func (r *Result) PerNode() map[string]int {
	total := make(map[string]int)
	for _, c := range r.Cells {
		for id, n := range c.PerNode {
			total[id] += n
		}
	}
	return total
}

// TenantTotals sums every tenant's tallies across cells (latency
// percentiles stay per-cell; see CellResult.Tenants). This is what the
// per-tenant completion and shedding gates run on.
func (r *Result) TenantTotals() map[string]TenantStats {
	totals := make(map[string]TenantStats)
	for _, c := range r.Cells {
		for name, ts := range c.Tenants {
			t := totals[name]
			t.Priority = ts.Priority
			t.Sent += ts.Sent
			t.Completed += ts.Completed
			t.Throttled += ts.Throttled
			t.Shed += ts.Shed
			t.Overloaded += ts.Overloaded
			t.QueueTimeout += ts.QueueTimeout
			t.Errors += ts.Errors
			totals[name] = t
		}
	}
	return totals
}

// Table renders the sweep as the report the load generator prints.
func (r *Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "serving sweep: %d cells, seed %d, %s/cell, fault fraction %.2f\n",
		len(r.Cells), r.Cfg.Seed, r.Cfg.Duration, r.Cfg.FaultFraction)
	fmt.Fprintf(&b, "%-9s %-12s %-9s %-11s %-5s %6s %6s %6s %5s %5s %5s %5s %5s %5s %5s %4s %8s %8s %8s %8s\n",
		"kernel", "strategy", "verify", "integrity", "dtype", "rate", "sent", "done", "corr", "rst", "abrt", "429", "thr", "shed", "qto", "err",
		"p50", "p95", "p99", "rps")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%-9s %-12s %-9s %-11s %-5s %6.1f %6d %6d %5d %5d %5d %5d %5d %5d %5d %4d %8s %8s %8s %8.1f\n",
			c.Kernel, c.Strategy, c.Mode, c.Integrity, c.Dtype, c.Rate, c.Sent, c.Completed,
			c.Corrected, c.Restarted, c.Aborted, c.Overloaded, c.Throttled, c.Shed, c.QueueTimeout, c.Errors,
			round(c.P50), round(c.P95), round(c.P99), c.ThroughputRPS)
		for _, name := range sortedTenants(c.Tenants) {
			ts := c.Tenants[name]
			fmt.Fprintf(&b, "  tenant %-12s %-11s sent %-5d done %-5d throttled %-5d shed %-5d 429 %-4d err %-3d p50 %-8s p95 %-8s p99 %-8s\n",
				name, ts.Priority, ts.Sent, ts.Completed, ts.Throttled, ts.Shed,
				ts.Overloaded, ts.QueueTimeout+ts.Errors,
				round(ts.P50), round(ts.P95), round(ts.P99))
		}
	}
	t := r.Totals()
	fmt.Fprintf(&b, "totals: corrected %d, restarted %d, aborted %d, overloaded %d, throttled %d, shed %d, queue-timeout %d, errors %d, unclassified %d, retried-elsewhere %d, voted %d, no-quorum %d, forbidden-node %d\n",
		t.Corrected, t.Restarted, t.Aborted, t.Overloaded, t.Throttled, t.Shed, t.QueueTimeout, t.Errors, t.Unclassified, t.Retried, t.Voted, t.NoQuorum, t.ForbiddenNode)
	if spread := r.PerNode(); len(spread) > 0 {
		ids := make([]string, 0, len(spread))
		for id := range spread {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		b.WriteString("node spread:")
		for _, id := range ids {
			fmt.Fprintf(&b, " %s=%d", id, spread[id])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// sortedTenants returns the tenant names in stable order for rendering.
func sortedTenants(m map[string]*TenantStats) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func round(d time.Duration) time.Duration { return d.Round(100 * time.Microsecond) }
