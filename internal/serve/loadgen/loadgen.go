// Package loadgen is the open-loop load generator for the serving
// subsystem: it sweeps request rate × kernel × ECC strategy × verify
// mode, fires
// requests on a fixed schedule without waiting for responses (so overload
// shows up as typed rejections, not as a self-throttling client), injects
// faults on a seeded fraction of requests, and reports per-cell latency
// percentiles plus the full outcome taxonomy. Request seeds derive from
// (campaign seed, global request index), so a sweep is replayable.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"coopabft/internal/abft"
	"coopabft/internal/bifit"
	"coopabft/internal/campaign"
	"coopabft/internal/core"
	"coopabft/internal/serve"
)

// Doer abstracts the target: the in-process *serve.Service, or HTTPClient
// against a live abftd.
type Doer interface {
	Do(ctx context.Context, req serve.Request) (serve.Response, error)
}

// Config describes one sweep. Cells are the cross product
// Rates × Kernels × Strategies, run sequentially; requests within a cell
// are fired open-loop at the cell's rate for Duration.
type Config struct {
	Seed     uint64
	Duration time.Duration // per-cell send window (default 2s)
	Timeout  time.Duration // per-request budget (default 5s)

	// Requests, when > 0, sends exactly that many requests per cell
	// (still paced at the cell's rate) instead of sending for Duration —
	// the replayable fixed-count mode. With a fixed request count the
	// whole sweep is a pure function of Seed, which is what the cluster
	// determinism gate compares bit-for-bit against a direct daemon.
	Requests int

	Rates      []float64 // requests/second (default {25})
	Kernels    []serve.Kernel
	Strategies []core.Strategy
	// Modes is the verify-mode sweep axis (default {NotifiedVerify}).
	// FusedVerify is gemm-only: fused × non-gemm coordinates are skipped
	// rather than sent, so a sweep never manufactures 400s.
	Modes []abft.VerifyMode
	// Integrities is the integrity-tier sweep axis (default
	// {IntegrityNone}). IntegrityVerifyVote is gemm-only and skipped off
	// other kernels, mirroring the fused rule.
	Integrities []serve.Integrity
	// Replicas is the vote width R stamped on non-none integrity requests
	// (0 defers to the gateway default).
	Replicas int
	// ForbidNodes lists node IDs that must never deliver an answer — the
	// lying-node assertion: a Byzantine replica may vote, but if its ballot
	// ever wins an election the sweep records a ForbiddenNode hit, which
	// the gates treat like a wrong answer.
	ForbidNodes []string

	// N sizes gemm/cholesky requests (default 48); NX, NY size CG.
	N, NX, NY int

	// FaultFraction of requests carry an injection plan of Faults errors
	// of FaultKind; selection is seeded per request, not random.
	FaultFraction float64
	Faults        int // default 1
	FaultKind     bifit.Kind
}

func (c *Config) defaults() {
	if c.Duration <= 0 {
		c.Duration = 2 * time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Second
	}
	if len(c.Rates) == 0 {
		c.Rates = []float64{25}
	}
	if len(c.Kernels) == 0 {
		c.Kernels = []serve.Kernel{serve.KernelGEMM}
	}
	if len(c.Strategies) == 0 {
		c.Strategies = []core.Strategy{serve.DefaultStrategy}
	}
	if len(c.Modes) == 0 {
		c.Modes = []abft.VerifyMode{abft.NotifiedVerify}
	}
	if len(c.Integrities) == 0 {
		c.Integrities = []serve.Integrity{serve.IntegrityNone}
	}
	if c.N <= 0 {
		c.N = 48
	}
	if c.NX <= 0 {
		c.NX = 8
	}
	if c.NY <= 0 {
		c.NY = 8
	}
	if c.Faults <= 0 {
		c.Faults = 1
	}
}

// Cell is one sweep coordinate.
type Cell struct {
	Rate      float64
	Kernel    serve.Kernel
	Strategy  core.Strategy
	Mode      abft.VerifyMode
	Integrity serve.Integrity
}

// Outcomes tallies the terminal classification of every request sent.
type Outcomes struct {
	Corrected    int // ladder finished in place
	Restarted    int // ladder rolled back, replay verified
	Aborted      int // ladder gave up explicitly
	Overloaded   int // typed admission rejection (429)
	QueueTimeout int // admitted but expired in queue (503)
	Errors       int // transport/internal failures
	// Unclassified counts completed responses whose outcome is outside
	// the ladder taxonomy — wrong answers. Must always be zero.
	Unclassified int
	// Retried counts completed responses a cluster gateway delivered
	// after failing over from at least one replica (gw_retries > 0).
	// Always zero against a bare daemon.
	Retried int
	// Voted counts completed responses delivered through the integrity
	// tier (vote_replicas > 0).
	Voted int
	// NoQuorum counts delivered aborts that carry a vote tally below
	// quorum — the integrity tier's typed "could not establish".
	NoQuorum int
	// ForbiddenNode counts completed responses whose delivering node is in
	// Config.ForbidNodes — a lying replica winning an election. Must
	// always be zero, like Unclassified.
	ForbiddenNode int
}

// CellResult is one cell's aggregate.
type CellResult struct {
	Cell
	Sent      int
	Completed int // requests that returned a classified Response
	Outcomes

	InjectedReqs  int // requests that carried an injection plan
	FaultsLanded  int // faults delivered by the service
	Corrections   int // ABFT element repairs
	Restarts      int // checkpoint rollbacks
	BatchedShare  float64
	ThroughputRPS float64 // Completed / wall

	// PerNode counts completed responses by the gateway-stamped node ID
	// (nil against a bare daemon) — the placement spread.
	PerNode map[string]int

	P50, P95, P99, Max time.Duration
}

// Result is a full sweep.
type Result struct {
	Cfg   Config
	Cells []CellResult
	Wall  time.Duration
}

// Run executes the sweep. Only context cancellation aborts it early;
// per-request failures are data.
func Run(ctx context.Context, d Doer, cfg Config) (*Result, error) {
	cfg.defaults()
	start := time.Now()
	res := &Result{Cfg: cfg}
	reqIndex := uint64(0)
	for _, rate := range cfg.Rates {
		for _, kernel := range cfg.Kernels {
			for _, strat := range cfg.Strategies {
				for _, mode := range cfg.Modes {
					if mode == abft.FusedVerify && kernel != serve.KernelGEMM {
						continue // fused is a DGEMM-only verify mode
					}
					for _, integ := range cfg.Integrities {
						if integ == serve.IntegrityVerifyVote && kernel != serve.KernelGEMM {
							continue // verify-vote replicates the gemm checksum pass
						}
						if err := ctx.Err(); err != nil {
							return res, err
						}
						cell := Cell{Rate: rate, Kernel: kernel, Strategy: strat, Mode: mode, Integrity: integ}
						cr, sent := runCell(ctx, d, cfg, cell, reqIndex)
						reqIndex += sent
						res.Cells = append(res.Cells, cr)
					}
				}
			}
		}
	}
	res.Wall = time.Since(start)
	return res, nil
}

// runCell fires one cell's open-loop schedule and aggregates its results.
func runCell(ctx context.Context, d Doer, cfg Config, cell Cell, base uint64) (CellResult, uint64) {
	interval := time.Duration(float64(time.Second) / cell.Rate)
	if interval <= 0 {
		interval = time.Millisecond
	}
	cellStart := time.Now()
	deadline := cellStart.Add(cfg.Duration)

	var (
		mu        sync.Mutex
		wg        sync.WaitGroup
		latencies []time.Duration
		cr        = CellResult{Cell: cell}
	)
	record := func(lat time.Duration, resp serve.Response, err error) {
		mu.Lock()
		defer mu.Unlock()
		switch {
		case err == nil:
			cr.Completed++
			latencies = append(latencies, lat)
			cr.FaultsLanded += resp.Injected
			cr.Corrections += resp.Corrections
			cr.Restarts += resp.Restarts
			if resp.BatchSize > 1 {
				cr.BatchedShare++ // normalized after the cell drains
			}
			if resp.GatewayRetries > 0 {
				cr.Retried++
			}
			if resp.VoteReplicas > 0 {
				cr.Voted++
				if resp.Outcome == "aborted" && resp.VoteAgree < (resp.VoteReplicas+2)/2 {
					cr.NoQuorum++
				}
			}
			if resp.Node != "" {
				for _, forbidden := range cfg.ForbidNodes {
					if resp.Node == forbidden {
						cr.ForbiddenNode++
					}
				}
				if cr.PerNode == nil {
					cr.PerNode = make(map[string]int)
				}
				cr.PerNode[resp.Node]++
			}
			switch resp.Outcome {
			case "corrected":
				cr.Corrected++
			case "restarted":
				cr.Restarted++
			case "aborted":
				cr.Aborted++
			default:
				cr.Unclassified++
			}
		case errors.Is(err, serve.ErrOverloaded):
			cr.Overloaded++
		case errors.Is(err, serve.ErrQueueTimeout):
			cr.QueueTimeout++
		default:
			cr.Errors++
		}
	}

	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	sent := uint64(0)
	// Fixed-count mode sends exactly cfg.Requests; the open-loop default
	// sends until the wall-clock window closes.
	more := func() bool {
		if cfg.Requests > 0 {
			return sent < uint64(cfg.Requests)
		}
		return time.Now().Before(deadline)
	}
	for more() && ctx.Err() == nil {
		seed := campaign.CellSeed(cfg.Seed, base+sent)
		req := serve.Request{
			Kernel:     cell.Kernel.String(),
			N:          cfg.N,
			NX:         cfg.NX,
			NY:         cfg.NY,
			Strategy:   cell.Strategy.String(),
			VerifyMode: cell.Mode.String(),
			Seed:       seed,
		}
		if cell.Integrity != serve.IntegrityNone {
			req.Integrity = cell.Integrity.String()
			req.Replicas = cfg.Replicas
		}
		// Seeded fault lottery: the decision is a pure function of the
		// request seed, so replays inject on the same requests.
		if cfg.FaultFraction > 0 &&
			float64(campaign.Splitmix64(seed))/float64(^uint64(0)) < cfg.FaultFraction {
			req.Faults = cfg.Faults
			req.FaultKind = cfg.FaultKind.String()
			cr.InjectedReqs++
		}
		cr.Sent++
		sent++
		wg.Add(1)
		go func() {
			defer wg.Done()
			rctx, cancel := context.WithTimeout(ctx, cfg.Timeout)
			defer cancel()
			t0 := time.Now()
			resp, err := d.Do(rctx, req)
			record(time.Since(t0), resp, err)
		}()
		select {
		case <-ticker.C:
		case <-ctx.Done():
		}
	}
	wg.Wait()

	wall := time.Since(cellStart)
	if wall > 0 {
		cr.ThroughputRPS = float64(cr.Completed) / wall.Seconds()
	}
	if cr.Completed > 0 {
		cr.BatchedShare /= float64(cr.Completed)
	}
	cr.P50, cr.P95, cr.P99, cr.Max = percentiles(latencies)
	return cr, sent
}

// percentiles reports p50/p95/p99/max over completed-request latencies.
func percentiles(lat []time.Duration) (p50, p95, p99, max time.Duration) {
	if len(lat) == 0 {
		return
	}
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	at := func(q float64) time.Duration {
		i := int(q * float64(len(sorted)-1))
		return sorted[i]
	}
	return at(0.50), at(0.95), at(0.99), sorted[len(sorted)-1]
}

// Totals sums the outcome taxonomy across cells.
func (r *Result) Totals() Outcomes {
	var t Outcomes
	for _, c := range r.Cells {
		t.Corrected += c.Corrected
		t.Restarted += c.Restarted
		t.Aborted += c.Aborted
		t.Overloaded += c.Overloaded
		t.QueueTimeout += c.QueueTimeout
		t.Errors += c.Errors
		t.Unclassified += c.Unclassified
		t.Retried += c.Retried
		t.Voted += c.Voted
		t.NoQuorum += c.NoQuorum
		t.ForbiddenNode += c.ForbiddenNode
	}
	return t
}

// Sent sums the requests fired across cells.
func (r *Result) Sent() int {
	n := 0
	for _, c := range r.Cells {
		n += c.Sent
	}
	return n
}

// Completed sums the classified responses across cells.
func (r *Result) Completed() int {
	n := 0
	for _, c := range r.Cells {
		n += c.Completed
	}
	return n
}

// PerNode aggregates the gateway-stamped placement spread across cells
// (empty against a bare daemon).
func (r *Result) PerNode() map[string]int {
	total := make(map[string]int)
	for _, c := range r.Cells {
		for id, n := range c.PerNode {
			total[id] += n
		}
	}
	return total
}

// Table renders the sweep as the report the load generator prints.
func (r *Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "serving sweep: %d cells, seed %d, %s/cell, fault fraction %.2f\n",
		len(r.Cells), r.Cfg.Seed, r.Cfg.Duration, r.Cfg.FaultFraction)
	fmt.Fprintf(&b, "%-9s %-12s %-9s %-11s %6s %6s %6s %5s %5s %5s %5s %5s %4s %8s %8s %8s %8s\n",
		"kernel", "strategy", "verify", "integrity", "rate", "sent", "done", "corr", "rst", "abrt", "429", "qto", "err",
		"p50", "p95", "p99", "rps")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%-9s %-12s %-9s %-11s %6.1f %6d %6d %5d %5d %5d %5d %5d %4d %8s %8s %8s %8.1f\n",
			c.Kernel, c.Strategy, c.Mode, c.Integrity, c.Rate, c.Sent, c.Completed,
			c.Corrected, c.Restarted, c.Aborted, c.Overloaded, c.QueueTimeout, c.Errors,
			round(c.P50), round(c.P95), round(c.P99), c.ThroughputRPS)
	}
	t := r.Totals()
	fmt.Fprintf(&b, "totals: corrected %d, restarted %d, aborted %d, overloaded %d, queue-timeout %d, errors %d, unclassified %d, retried-elsewhere %d, voted %d, no-quorum %d, forbidden-node %d\n",
		t.Corrected, t.Restarted, t.Aborted, t.Overloaded, t.QueueTimeout, t.Errors, t.Unclassified, t.Retried, t.Voted, t.NoQuorum, t.ForbiddenNode)
	if spread := r.PerNode(); len(spread) > 0 {
		ids := make([]string, 0, len(spread))
		for id := range spread {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		b.WriteString("node spread:")
		for _, id := range ids {
			fmt.Fprintf(&b, " %s=%d", id, spread[id])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func round(d time.Duration) time.Duration { return d.Round(100 * time.Microsecond) }
