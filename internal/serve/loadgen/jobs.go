package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"coopabft/internal/abft"
	"coopabft/internal/campaign"
	"coopabft/internal/mat"
	"coopabft/internal/serve"
)

// Jobs-API client: drives the gateway's versioned async routes
// (POST /v1/jobs, GET /v1/jobs/{id}, DELETE /v1/jobs/{id}) and provides
// the submit-poll-verify loop the CI chaos smoke is built on. Lives in
// loadgen, not cluster, so the generator never imports the scheduler —
// it speaks only the wire contract documented on serve.JobStatus.

// ErrJobFailed reports a job that reached a terminal state other than
// done, or a done job whose result failed local verification.
var ErrJobFailed = fmt.Errorf("loadgen: job failed")

// shedError marks a 429 from the jobs API, carrying the server's (capped)
// Retry-After hint so the poll loop can back off as told instead of
// failing the job.
type shedError struct {
	err   error
	after time.Duration
}

func (e *shedError) Error() string { return e.err.Error() }
func (e *shedError) Unwrap() error { return e.err }

// SubmitJob posts a request to /v1/jobs and returns the accepted job's
// initial status.
func (h *HTTPClient) SubmitJob(ctx context.Context, req serve.Request) (serve.JobStatus, error) {
	// Same rule as Do: resolve the kernel before anything touches the
	// wire, even though the jobs route carries it in the body not the
	// path — a bad kernel must fail typed and local.
	if _, err := serve.ParseKernel(req.Kernel); err != nil {
		return serve.JobStatus{}, err
	}
	body, err := json.Marshal(req)
	if err != nil {
		return serve.JobStatus{}, err
	}
	return h.jobCall(ctx, http.MethodPost, "/v1/jobs", body, http.StatusAccepted)
}

// JobStatus polls one job.
func (h *HTTPClient) JobStatus(ctx context.Context, id string) (serve.JobStatus, error) {
	return h.jobCall(ctx, http.MethodGet, "/v1/jobs/"+id, nil, http.StatusOK)
}

// CancelJob requests cancellation and returns the status at call time.
func (h *HTTPClient) CancelJob(ctx context.Context, id string) (serve.JobStatus, error) {
	return h.jobCall(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, http.StatusOK)
}

// jobCall is the shared wire plumbing: one request, the gateway's error
// envelope mapped back onto the service's typed errors.
func (h *HTTPClient) jobCall(ctx context.Context, method, path string, body []byte, want int) (serve.JobStatus, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	hreq, err := http.NewRequestWithContext(ctx, method, h.Base+path, rd)
	if err != nil {
		return serve.JobStatus{}, err
	}
	if body != nil {
		hreq.Header.Set("Content-Type", "application/json")
	}
	hresp, err := h.client().Do(hreq)
	if err != nil {
		return serve.JobStatus{}, err
	}
	defer hresp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(hresp.Body, 1<<20))
	if err != nil {
		return serve.JobStatus{}, err
	}
	switch hresp.StatusCode {
	case want:
		var st serve.JobStatus
		if err := json.Unmarshal(payload, &st); err != nil {
			return serve.JobStatus{}, fmt.Errorf("loadgen: bad job status body: %w", err)
		}
		return st, nil
	case http.StatusBadRequest:
		return serve.JobStatus{}, fmt.Errorf("%w: %s", serve.ErrBadRequest, wireError(payload))
	case http.StatusTooManyRequests:
		return serve.JobStatus{}, &shedError{
			err:   fmt.Errorf("%w: %s", serve.ErrOverloaded, wireError(payload)),
			after: parseRetryAfter(hresp.Header.Get("Retry-After"), h.retryAfterCap()),
		}
	case http.StatusNotFound:
		return serve.JobStatus{}, fmt.Errorf("loadgen: unknown job: %s", wireError(payload))
	default:
		return serve.JobStatus{}, fmt.Errorf("loadgen: HTTP %d: %s", hresp.StatusCode, wireError(payload))
	}
}

// JobsConfig drives RunJobs.
type JobsConfig struct {
	// Jobs is how many jobs to run, sequentially (default 1).
	Jobs int
	// Kernel selects what each job runs: "gemm" (default; shards across
	// the pool past the gateway's threshold) or "cg" (rides the gateway's
	// long path: checkpoint streaming and step-granular migration).
	Kernel string
	// N is the GEMM dimension (default 256) and Seed the base seed; job
	// number j submits Seed+j so successive jobs are distinct but
	// reproducible.
	N    int
	Seed uint64
	// NX, NY size the CG grid for Kernel "cg" (default 48×48).
	NX, NY int
	// Timeout bounds each job end to end, submit through terminal state
	// (default 2 minutes).
	Timeout time.Duration
	// Poll is the initial status poll interval (default 50ms). Polls that
	// observe no progress back off exponentially with deterministic jitter
	// up to PollMax; any progress — state, blocks, steps, checkpoints,
	// migrations — resets the interval, and a shed poll (429) honors the
	// gateway's Retry-After instead of failing the job.
	Poll time.Duration
	// PollMax caps the backed-off poll interval (default 1s).
	PollMax time.Duration
	// Verify recomputes the reference product locally and compares bit
	// digests — the end-to-end correctness gate. Costs an n³ GEMM per
	// distinct (n, seed) on the client. GEMM jobs only.
	Verify bool
	// OnProgress observes every polled status. The chaos smoke uses the
	// first observation with BlocksDone >= 1 to SIGKILL a worker while
	// the job is demonstrably mid-flight.
	OnProgress func(serve.JobStatus)
}

func (c JobsConfig) withDefaults() JobsConfig {
	if c.Jobs <= 0 {
		c.Jobs = 1
	}
	if c.Kernel == "" {
		c.Kernel = "gemm"
	}
	if c.N <= 0 {
		c.N = 256
	}
	if c.NX <= 0 {
		c.NX = 48
	}
	if c.NY <= 0 {
		c.NY = 48
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Minute
	}
	if c.Poll <= 0 {
		c.Poll = 50 * time.Millisecond
	}
	if c.PollMax <= 0 {
		c.PollMax = time.Second
	}
	if c.PollMax < c.Poll {
		c.PollMax = c.Poll
	}
	return c
}

// JobOutcome is one job's terminal record as the client saw it.
type JobOutcome struct {
	Status serve.JobStatus `json:"status"`
	// WallMS is submit-to-terminal latency measured at the client — the
	// number EXPERIMENTS quotes for kill-mid-job recovery.
	WallMS float64 `json:"wall_ms"`
	// DigestMismatch is set when Verify was on, the job finished done and
	// sharded, and its digest differed from the locally computed one.
	DigestMismatch bool `json:"digest_mismatch,omitempty"`
}

// JobsReport aggregates a RunJobs sweep.
type JobsReport struct {
	Jobs            []JobOutcome `json:"jobs"`
	Done            int          `json:"done"`
	Failed          int          `json:"failed"`
	Cancelled       int          `json:"cancelled"`
	Sharded         int          `json:"sharded"`
	Reconstructions int          `json:"reconstructions"`
	Recomputes      int          `json:"recomputes"`
	DigestMismatch  int          `json:"digest_mismatch"`
	// Long-path tallies: jobs that rode the checkpoint-streaming path, how
	// many times the gateway moved one to a new worker mid-solve, and how
	// many finished from a resumed step rather than a cold start.
	LongJobs   int `json:"long_jobs"`
	Migrations int `json:"migrations"`
	Resumed    int `json:"resumed"`
}

// Gate returns nil iff every job finished done and, when verification was
// on, every sharded digest matched the reference — the pass/fail line the
// CI smoke exits on.
func (r JobsReport) Gate() error {
	if r.Failed > 0 || r.Cancelled > 0 || r.Done != len(r.Jobs) {
		return fmt.Errorf("%w: %d/%d done (%d failed, %d cancelled)",
			ErrJobFailed, r.Done, len(r.Jobs), r.Failed, r.Cancelled)
	}
	if r.DigestMismatch > 0 {
		return fmt.Errorf("%w: %d digest mismatches", ErrJobFailed, r.DigestMismatch)
	}
	return nil
}

// RunJobs submits cfg.Jobs jobs one at a time, polls each to a
// terminal state, and tallies the sweep. Per-job errors (submit rejected,
// poll timeout) mark the job failed in the report rather than aborting the
// sweep; only ctx cancellation stops it early.
func RunJobs(ctx context.Context, h *HTTPClient, cfg JobsConfig) (JobsReport, error) {
	cfg = cfg.withDefaults()
	var rep JobsReport
	for j := 0; j < cfg.Jobs; j++ {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		out, err := runOneJob(ctx, h, cfg, cfg.Seed+uint64(j))
		rep.Jobs = append(rep.Jobs, out)
		st := out.Status
		switch st.State {
		case serve.JobDone:
			rep.Done++
		case serve.JobCancelled:
			rep.Cancelled++
		default:
			rep.Failed++
		}
		if st.Sharded {
			rep.Sharded++
		}
		if st.Long {
			rep.LongJobs++
		}
		rep.Migrations += st.Migrations
		if st.ResumeStep > 0 {
			rep.Resumed++
		}
		rep.Reconstructions += st.Reconstructions
		rep.Recomputes += st.Recomputes
		if out.DigestMismatch {
			rep.DigestMismatch++
		}
		if err != nil && ctx.Err() != nil {
			return rep, err
		}
	}
	return rep, nil
}

// runOneJob is the submit-poll-verify loop for a single job.
func runOneJob(ctx context.Context, h *HTTPClient, cfg JobsConfig, seed uint64) (JobOutcome, error) {
	jctx, cancel := context.WithTimeout(ctx, cfg.Timeout)
	defer cancel()
	t0 := time.Now()
	req := serve.Request{Kernel: cfg.Kernel, Seed: seed}
	if cfg.Kernel == "cg" {
		req.NX, req.NY = cfg.NX, cfg.NY
	} else {
		req.N = cfg.N
	}
	st, err := h.SubmitJob(jctx, req)
	if err != nil {
		return JobOutcome{Status: serve.JobStatus{State: serve.JobFailed, Error: err.Error()}}, err
	}
	delay := cfg.Poll
	for !terminalJobState(st.State) {
		if err := sleepCtx(jctx, delay); err != nil {
			st.State, st.Error = serve.JobFailed, "poll timeout: "+err.Error()
			break
		}
		next, err := h.JobStatus(jctx, st.ID)
		if err != nil {
			var shed *shedError
			if errors.As(err, &shed) {
				// Shed polls aren't failures: the gateway is busy, not broken.
				// Wait at least as long as it asked, then keep polling.
				if shed.after > delay {
					delay = shed.after
				} else {
					delay = nextPollDelay(delay, cfg, seed)
				}
				continue
			}
			st.State, st.Error = serve.JobFailed, err.Error()
			break
		}
		if jobProgressed(st, next) {
			delay = cfg.Poll
		} else {
			delay = nextPollDelay(delay, cfg, seed)
		}
		st = next
		if cfg.OnProgress != nil {
			cfg.OnProgress(st)
		}
	}
	out := JobOutcome{Status: st, WallMS: float64(time.Since(t0)) / float64(time.Millisecond)}
	if cfg.Verify && st.State == serve.JobDone && st.Sharded {
		// Equality goes through the one canonical helper: an absent digest
		// must never match anything, including another absent digest.
		if ref := referenceDigest(cfg.N, seed); !abft.SameAnswer(st.Digest, ref) {
			out.DigestMismatch = true
			return out, fmt.Errorf("%w: job %s digest %s, reference %s", ErrJobFailed, st.ID, st.Digest, ref)
		}
	}
	return out, nil
}

// jobProgressed reports whether a newly polled status shows visible
// forward motion — the signal that keeps the poll interval tight. A job
// parked in the same state with identical counters is idling from the
// client's perspective, so its polls back off.
func jobProgressed(prev, next serve.JobStatus) bool {
	return next.State != prev.State ||
		next.BlocksDone != prev.BlocksDone ||
		next.Reconstructions != prev.Reconstructions ||
		next.Recomputes != prev.Recomputes ||
		next.Step != prev.Step ||
		next.Checkpoints != prev.Checkpoints ||
		next.Migrations != prev.Migrations ||
		next.Node != prev.Node
}

// nextPollDelay doubles the interval with ±25% deterministic jitter
// (keyed on the job seed and the current delay, so repeated sweeps
// replay the exact cadence) and clamps to [Poll, PollMax].
func nextPollDelay(cur time.Duration, cfg JobsConfig, seed uint64) time.Duration {
	next := 2 * cur
	jitter := campaign.Splitmix64(seed ^ uint64(cur))
	// Map the hash onto [-25%, +25%) of the doubled interval.
	frac := float64(jitter>>11)/float64(1<<53)*0.5 - 0.25
	next += time.Duration(float64(next) * frac)
	if next > cfg.PollMax {
		next = cfg.PollMax
	}
	if next < cfg.Poll {
		next = cfg.Poll
	}
	return next
}

func terminalJobState(s string) bool {
	return s == serve.JobDone || s == serve.JobFailed || s == serve.JobCancelled
}

// referenceDigest recomputes the single-node packed product's bit digest —
// the value a sharded job must reproduce exactly under the determinism
// contract.
func referenceDigest(n int, seed uint64) string {
	out := mat.New(n, n)
	mat.MulAddInto(out, mat.Random(n, n, seed), mat.Random(n, n, seed+1))
	return abft.BitDigest(out)
}
