package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"coopabft/internal/abft"
	"coopabft/internal/mat"
	"coopabft/internal/serve"
)

// Jobs-API client: drives the gateway's versioned async routes
// (POST /v1/jobs, GET /v1/jobs/{id}, DELETE /v1/jobs/{id}) and provides
// the submit-poll-verify loop the CI chaos smoke is built on. Lives in
// loadgen, not cluster, so the generator never imports the scheduler —
// it speaks only the wire contract documented on serve.JobStatus.

// ErrJobFailed reports a job that reached a terminal state other than
// done, or a done job whose result failed local verification.
var ErrJobFailed = fmt.Errorf("loadgen: job failed")

// SubmitJob posts a request to /v1/jobs and returns the accepted job's
// initial status.
func (h *HTTPClient) SubmitJob(ctx context.Context, req serve.Request) (serve.JobStatus, error) {
	// Same rule as Do: resolve the kernel before anything touches the
	// wire, even though the jobs route carries it in the body not the
	// path — a bad kernel must fail typed and local.
	if _, err := serve.ParseKernel(req.Kernel); err != nil {
		return serve.JobStatus{}, err
	}
	body, err := json.Marshal(req)
	if err != nil {
		return serve.JobStatus{}, err
	}
	return h.jobCall(ctx, http.MethodPost, "/v1/jobs", body, http.StatusAccepted)
}

// JobStatus polls one job.
func (h *HTTPClient) JobStatus(ctx context.Context, id string) (serve.JobStatus, error) {
	return h.jobCall(ctx, http.MethodGet, "/v1/jobs/"+id, nil, http.StatusOK)
}

// CancelJob requests cancellation and returns the status at call time.
func (h *HTTPClient) CancelJob(ctx context.Context, id string) (serve.JobStatus, error) {
	return h.jobCall(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, http.StatusOK)
}

// jobCall is the shared wire plumbing: one request, the gateway's error
// envelope mapped back onto the service's typed errors.
func (h *HTTPClient) jobCall(ctx context.Context, method, path string, body []byte, want int) (serve.JobStatus, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	hreq, err := http.NewRequestWithContext(ctx, method, h.Base+path, rd)
	if err != nil {
		return serve.JobStatus{}, err
	}
	if body != nil {
		hreq.Header.Set("Content-Type", "application/json")
	}
	hresp, err := h.client().Do(hreq)
	if err != nil {
		return serve.JobStatus{}, err
	}
	defer hresp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(hresp.Body, 1<<20))
	if err != nil {
		return serve.JobStatus{}, err
	}
	switch hresp.StatusCode {
	case want:
		var st serve.JobStatus
		if err := json.Unmarshal(payload, &st); err != nil {
			return serve.JobStatus{}, fmt.Errorf("loadgen: bad job status body: %w", err)
		}
		return st, nil
	case http.StatusBadRequest:
		return serve.JobStatus{}, fmt.Errorf("%w: %s", serve.ErrBadRequest, wireError(payload))
	case http.StatusTooManyRequests:
		return serve.JobStatus{}, fmt.Errorf("%w: %s", serve.ErrOverloaded, wireError(payload))
	case http.StatusNotFound:
		return serve.JobStatus{}, fmt.Errorf("loadgen: unknown job: %s", wireError(payload))
	default:
		return serve.JobStatus{}, fmt.Errorf("loadgen: HTTP %d: %s", hresp.StatusCode, wireError(payload))
	}
}

// JobsConfig drives RunJobs.
type JobsConfig struct {
	// Jobs is how many jobs to run, sequentially (default 1).
	Jobs int
	// N is the GEMM dimension (default 256) and Seed the base seed; job
	// number j submits Seed+j so successive jobs are distinct but
	// reproducible.
	N    int
	Seed uint64
	// Timeout bounds each job end to end, submit through terminal state
	// (default 2 minutes).
	Timeout time.Duration
	// Poll is the status poll interval (default 50ms).
	Poll time.Duration
	// Verify recomputes the reference product locally and compares bit
	// digests — the end-to-end correctness gate. Costs an n³ GEMM per
	// distinct (n, seed) on the client.
	Verify bool
	// OnProgress observes every polled status. The chaos smoke uses the
	// first observation with BlocksDone >= 1 to SIGKILL a worker while
	// the job is demonstrably mid-flight.
	OnProgress func(serve.JobStatus)
}

func (c JobsConfig) withDefaults() JobsConfig {
	if c.Jobs <= 0 {
		c.Jobs = 1
	}
	if c.N <= 0 {
		c.N = 256
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Minute
	}
	if c.Poll <= 0 {
		c.Poll = 50 * time.Millisecond
	}
	return c
}

// JobOutcome is one job's terminal record as the client saw it.
type JobOutcome struct {
	Status serve.JobStatus `json:"status"`
	// WallMS is submit-to-terminal latency measured at the client — the
	// number EXPERIMENTS quotes for kill-mid-job recovery.
	WallMS float64 `json:"wall_ms"`
	// DigestMismatch is set when Verify was on, the job finished done and
	// sharded, and its digest differed from the locally computed one.
	DigestMismatch bool `json:"digest_mismatch,omitempty"`
}

// JobsReport aggregates a RunJobs sweep.
type JobsReport struct {
	Jobs            []JobOutcome `json:"jobs"`
	Done            int          `json:"done"`
	Failed          int          `json:"failed"`
	Cancelled       int          `json:"cancelled"`
	Sharded         int          `json:"sharded"`
	Reconstructions int          `json:"reconstructions"`
	Recomputes      int          `json:"recomputes"`
	DigestMismatch  int          `json:"digest_mismatch"`
}

// Gate returns nil iff every job finished done and, when verification was
// on, every sharded digest matched the reference — the pass/fail line the
// CI smoke exits on.
func (r JobsReport) Gate() error {
	if r.Failed > 0 || r.Cancelled > 0 || r.Done != len(r.Jobs) {
		return fmt.Errorf("%w: %d/%d done (%d failed, %d cancelled)",
			ErrJobFailed, r.Done, len(r.Jobs), r.Failed, r.Cancelled)
	}
	if r.DigestMismatch > 0 {
		return fmt.Errorf("%w: %d digest mismatches", ErrJobFailed, r.DigestMismatch)
	}
	return nil
}

// RunJobs submits cfg.Jobs GEMM jobs one at a time, polls each to a
// terminal state, and tallies the sweep. Per-job errors (submit rejected,
// poll timeout) mark the job failed in the report rather than aborting the
// sweep; only ctx cancellation stops it early.
func RunJobs(ctx context.Context, h *HTTPClient, cfg JobsConfig) (JobsReport, error) {
	cfg = cfg.withDefaults()
	var rep JobsReport
	for j := 0; j < cfg.Jobs; j++ {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		out, err := runOneJob(ctx, h, cfg, cfg.Seed+uint64(j))
		rep.Jobs = append(rep.Jobs, out)
		st := out.Status
		switch st.State {
		case serve.JobDone:
			rep.Done++
		case serve.JobCancelled:
			rep.Cancelled++
		default:
			rep.Failed++
		}
		if st.Sharded {
			rep.Sharded++
		}
		rep.Reconstructions += st.Reconstructions
		rep.Recomputes += st.Recomputes
		if out.DigestMismatch {
			rep.DigestMismatch++
		}
		if err != nil && ctx.Err() != nil {
			return rep, err
		}
	}
	return rep, nil
}

// runOneJob is the submit-poll-verify loop for a single job.
func runOneJob(ctx context.Context, h *HTTPClient, cfg JobsConfig, seed uint64) (JobOutcome, error) {
	jctx, cancel := context.WithTimeout(ctx, cfg.Timeout)
	defer cancel()
	t0 := time.Now()
	st, err := h.SubmitJob(jctx, serve.Request{Kernel: "gemm", N: cfg.N, Seed: seed})
	if err != nil {
		return JobOutcome{Status: serve.JobStatus{State: serve.JobFailed, Error: err.Error()}}, err
	}
	for !terminalJobState(st.State) {
		if err := sleepCtx(jctx, cfg.Poll); err != nil {
			st.State, st.Error = serve.JobFailed, "poll timeout: "+err.Error()
			break
		}
		next, err := h.JobStatus(jctx, st.ID)
		if err != nil {
			st.State, st.Error = serve.JobFailed, err.Error()
			break
		}
		st = next
		if cfg.OnProgress != nil {
			cfg.OnProgress(st)
		}
	}
	out := JobOutcome{Status: st, WallMS: float64(time.Since(t0)) / float64(time.Millisecond)}
	if cfg.Verify && st.State == serve.JobDone && st.Sharded {
		if ref := referenceDigest(cfg.N, seed); st.Digest != ref {
			out.DigestMismatch = true
			return out, fmt.Errorf("%w: job %s digest %s, reference %s", ErrJobFailed, st.ID, st.Digest, ref)
		}
	}
	return out, nil
}

func terminalJobState(s string) bool {
	return s == serve.JobDone || s == serve.JobFailed || s == serve.JobCancelled
}

// referenceDigest recomputes the single-node packed product's bit digest —
// the value a sharded job must reproduce exactly under the determinism
// contract.
func referenceDigest(n int, seed uint64) string {
	out := mat.New(n, n)
	mat.MulAddInto(out, mat.Random(n, n, seed), mat.Random(n, n, seed+1))
	return abft.BitDigest(out)
}
