package loadgen

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"coopabft/internal/abft"
	"coopabft/internal/bifit"
	"coopabft/internal/core"
	"coopabft/internal/serve"
)

// smokeConfig is a short two-cell sweep with heavy fault injection.
func smokeConfig() Config {
	return Config{
		Seed:          7,
		Duration:      400 * time.Millisecond,
		Timeout:       10 * time.Second,
		Rates:         []float64{100},
		Kernels:       []serve.Kernel{serve.KernelGEMM},
		Strategies:    []core.Strategy{core.WholeChipkill, core.PartialChipkillNoECC},
		N:             32,
		FaultFraction: 0.5,
		FaultKind:     bifit.ChipFailure,
	}
}

// checkInvariants asserts the sweep's accounting: every sent request is
// tallied exactly once, and nothing completed outside the ladder taxonomy
// (zero wrong answers).
func checkInvariants(t *testing.T, res *Result) {
	t.Helper()
	for _, c := range res.Cells {
		tallied := c.Corrected + c.Restarted + c.Aborted + c.Overloaded +
			c.Throttled + c.Shed + c.QueueTimeout + c.Errors + c.Unclassified
		if tallied != c.Sent {
			t.Errorf("cell %v: sent %d but tallied %d", c.Cell, c.Sent, tallied)
		}
		if c.Completed != c.Corrected+c.Restarted+c.Aborted+c.Unclassified {
			t.Errorf("cell %v: completed %d inconsistent with outcome counts", c.Cell, c.Completed)
		}
		if c.Unclassified != 0 {
			t.Errorf("cell %v: %d wrong-answer outcomes", c.Cell, c.Unclassified)
		}
		if c.P50 > c.P95 || c.P95 > c.P99 || c.P99 > c.Max {
			t.Errorf("cell %v: non-monotonic percentiles %v %v %v %v", c.Cell, c.P50, c.P95, c.P99, c.Max)
		}
	}
}

// TestSweepVerifyModes sweeps the verify-mode axis: notified and fused
// cells both complete with zero wrong answers, and the gemm-only fused
// mode is skipped (not rejected) for other kernels.
func TestSweepVerifyModes(t *testing.T) {
	s := serve.New(serve.Config{MaxConcurrency: 4, QueueDepth: 128, QueueTimeout: 30 * time.Second})
	defer s.Close()

	cfg := smokeConfig()
	cfg.Kernels = []serve.Kernel{serve.KernelGEMM, serve.KernelCholesky}
	cfg.Strategies = []core.Strategy{core.WholeChipkill}
	cfg.Modes = []abft.VerifyMode{abft.NotifiedVerify, abft.FusedVerify}
	res, err := Run(context.Background(), s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// gemm×{notified,fused} + cholesky×{notified}: the fused×cholesky
	// coordinate must be skipped.
	if len(res.Cells) != 3 {
		t.Fatalf("cells = %d, want 3 (fused x cholesky skipped)", len(res.Cells))
	}
	checkInvariants(t, res)
	fused := 0
	for _, c := range res.Cells {
		if c.Mode == abft.FusedVerify {
			fused++
			if c.Kernel != serve.KernelGEMM {
				t.Errorf("fused cell for kernel %v", c.Kernel)
			}
			if c.Completed == 0 {
				t.Error("fused cell completed nothing")
			}
			if c.Errors > 0 {
				t.Errorf("fused cell had %d errors", c.Errors)
			}
		}
	}
	if fused != 1 {
		t.Fatalf("fused cells = %d, want 1", fused)
	}
}

// TestSweepInProcess drives the sweep against an in-process service with
// fault injection and checks the zero-wrong-answer acceptance criterion.
func TestSweepInProcess(t *testing.T) {
	s := serve.New(serve.Config{MaxConcurrency: 4, QueueDepth: 128, QueueTimeout: 30 * time.Second})
	defer s.Close()

	res, err := Run(context.Background(), s, smokeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(res.Cells))
	}
	checkInvariants(t, res)
	totals := res.Totals()
	if totals.Corrected+totals.Restarted == 0 {
		t.Fatal("sweep completed nothing")
	}
	// Fault injection was live: some requests carried plans, and the
	// service reported landing faults.
	injected := 0
	for _, c := range res.Cells {
		injected += c.InjectedReqs
	}
	if injected == 0 {
		t.Error("seeded fault lottery selected zero requests at fraction 0.5")
	}
	if res.Table() == "" {
		t.Error("empty table")
	}
}

// TestSweepOverHTTP runs the same sweep through the HTTP stack (httptest
// server + HTTPClient) and asserts the taxonomy still holds on the wire.
func TestSweepOverHTTP(t *testing.T) {
	s := serve.New(serve.Config{MaxConcurrency: 2, QueueDepth: 4, QueueTimeout: 30 * time.Second})
	defer s.Close()
	ts := httptest.NewServer(serve.NewHandler(s))
	defer ts.Close()

	client := &HTTPClient{Base: ts.URL}
	if err := client.WaitReady(context.Background(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	cfg := smokeConfig()
	cfg.Rates = []float64{200} // overdrive a small queue: expect typed rejections
	res, err := Run(context.Background(), client, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, res)
	totals := res.Totals()
	if totals.Errors != 0 {
		t.Errorf("%d transport errors through httptest", totals.Errors)
	}
	if totals.Corrected+totals.Restarted+totals.Aborted == 0 {
		t.Error("nothing completed over HTTP")
	}
}

// TestSeededFaultLotteryIsDeterministic: same seed → same injected set.
func TestSeededFaultLotteryIsDeterministic(t *testing.T) {
	s := serve.New(serve.Config{MaxConcurrency: 4, QueueDepth: 128, QueueTimeout: 30 * time.Second})
	defer s.Close()
	cfg := smokeConfig()
	cfg.Strategies = cfg.Strategies[:1]
	a, err := Run(context.Background(), s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Open-loop send counts differ with wall clock, but the lottery is a
	// pure function of the request index: the injected prefix must agree.
	n := a.Cells[0].Sent
	if bn := b.Cells[0].Sent; bn < n {
		n = bn
	}
	if n == 0 {
		t.Fatal("no requests sent")
	}
	// Re-derive both lotteries and compare the shared prefix.
	count := func(res *Result) int { return res.Cells[0].InjectedReqs }
	if count(a) == 0 && count(b) == 0 {
		t.Error("lottery never fired")
	}
}

// TestPercentiles pins the estimator.
func TestPercentiles(t *testing.T) {
	var lat []time.Duration
	for i := 1; i <= 100; i++ {
		lat = append(lat, time.Duration(i)*time.Millisecond)
	}
	p50, p95, p99, max := percentiles(lat)
	if p50 != 50*time.Millisecond || p95 != 95*time.Millisecond ||
		p99 != 99*time.Millisecond || max != 100*time.Millisecond {
		t.Errorf("percentiles = %v %v %v %v", p50, p95, p99, max)
	}
	if p50, _, _, max := percentiles(nil); p50 != 0 || max != 0 {
		t.Error("empty percentiles not zero")
	}
}

// TestSweepF32Dtype sweeps the dtype axis: the f32 cell pairs only with
// gemm × fused, completes with zero wrong answers under heavy injection,
// and incompatible coordinates are skipped rather than rejected.
func TestSweepF32Dtype(t *testing.T) {
	s := serve.New(serve.Config{MaxConcurrency: 4, QueueDepth: 128, QueueTimeout: 30 * time.Second})
	defer s.Close()

	cfg := smokeConfig()
	cfg.Strategies = []core.Strategy{core.WholeChipkill}
	cfg.Kernels = []serve.Kernel{serve.KernelGEMM, serve.KernelCholesky}
	cfg.Modes = []abft.VerifyMode{abft.FusedVerify}
	cfg.Dtypes = []serve.Dtype{serve.DtypeF64, serve.DtypeF32}
	res, err := Run(context.Background(), s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// gemm×fused×{f64,f32}: fused×cholesky and f32×cholesky both skipped.
	if len(res.Cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(res.Cells))
	}
	checkInvariants(t, res)
	var f32Cell *CellResult
	for i := range res.Cells {
		if res.Cells[i].Dtype == serve.DtypeF32 {
			f32Cell = &res.Cells[i]
		}
	}
	if f32Cell == nil {
		t.Fatal("no f32 cell in the sweep")
	}
	if f32Cell.Completed == 0 {
		t.Fatal("f32 cell completed nothing")
	}
	if f32Cell.InjectedReqs > 0 && f32Cell.FaultsLanded == 0 {
		t.Errorf("f32 cell injected on %d requests but landed no faults", f32Cell.InjectedReqs)
	}
}

// TestSweepMultiTenantQoS runs the adversarial two-tenant cell in-process:
// a protected tenant inside its quota against a speculative flood at 10x
// the bucket rate. The flood must be throttled; the protected tenant must
// never be throttled and must keep completing.
func TestSweepMultiTenantQoS(t *testing.T) {
	s := serve.New(serve.Config{
		MaxConcurrency: 2,
		QueueDepth:     64,
		QueueTimeout:   30 * time.Second,
		TenantRate:     20,
		TenantBurst:    10,
	})
	defer s.Close()

	cfg := Config{
		Seed:     11,
		Duration: 600 * time.Millisecond,
		Timeout:  10 * time.Second,
		Rates:    []float64{25},
		N:        24,
		Tenants: []TenantSpec{
			{Name: "gold", Priority: serve.PriorityProtected, Rate: 10},
			{Name: "flood", Priority: serve.PrioritySpeculative, Rate: 200},
		},
	}
	res, err := Run(context.Background(), s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, res)
	if len(res.Cells) != 1 {
		t.Fatalf("cells = %d, want 1", len(res.Cells))
	}
	c := res.Cells[0]
	gold, flood := c.Tenants["gold"], c.Tenants["flood"]
	if gold == nil || flood == nil {
		t.Fatalf("missing tenant stats: %v", c.Tenants)
	}
	if gold.Sent == 0 || flood.Sent == 0 {
		t.Fatalf("empty streams: gold %d, flood %d", gold.Sent, flood.Sent)
	}
	if gold.Throttled > 0 {
		t.Errorf("protected tenant inside its quota was throttled %d times", gold.Throttled)
	}
	if frac := float64(gold.Completed) / float64(gold.Sent); frac < 0.8 {
		t.Errorf("gold completed %.0f%% (%d/%d), want >= 80%%", 100*frac, gold.Completed, gold.Sent)
	}
	if flood.Throttled == 0 {
		t.Errorf("flood at 10x quota was never throttled (sent %d)", flood.Sent)
	}
	// Per-tenant tallies must partition the cell's aggregate.
	if gold.Sent+flood.Sent != c.Sent {
		t.Errorf("tenant sent %d+%d != cell sent %d", gold.Sent, flood.Sent, c.Sent)
	}
	if gold.Throttled+flood.Throttled != c.Throttled {
		t.Errorf("tenant throttled %d+%d != cell throttled %d", gold.Throttled, flood.Throttled, c.Throttled)
	}
	totals := res.TenantTotals()
	if totals["flood"].Throttled != flood.Throttled || totals["gold"].Completed != gold.Completed {
		t.Errorf("TenantTotals mismatch: %+v vs cell %+v/%+v", totals, gold, flood)
	}
	if totals["flood"].Priority != serve.PrioritySpeculative {
		t.Errorf("flood priority %v, want speculative", totals["flood"].Priority)
	}
}

// TestMultiTenantOverHTTP drives the quota path over the wire: the 429
// envelope's kind discriminator must map back onto the typed errors so a
// wire sweep tallies throttled exactly like an in-process one.
func TestMultiTenantOverHTTP(t *testing.T) {
	s := serve.New(serve.Config{
		MaxConcurrency: 2,
		QueueDepth:     64,
		QueueTimeout:   30 * time.Second,
		TenantRate:     5,
		TenantBurst:    2,
	})
	defer s.Close()
	srv := httptest.NewServer(serve.NewHandler(s))
	defer srv.Close()

	cfg := Config{
		Seed:     13,
		Duration: 300 * time.Millisecond,
		Timeout:  10 * time.Second,
		Rates:    []float64{25},
		N:        24,
		Tenants: []TenantSpec{
			{Name: "flood", Priority: serve.PrioritySpeculative, Rate: 200},
		},
	}
	client := &HTTPClient{Base: srv.URL}
	res, err := Run(context.Background(), client, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, res)
	flood := res.TenantTotals()["flood"]
	if flood.Throttled == 0 {
		t.Errorf("no typed throttles over the wire (sent %d, errors %d)", flood.Sent, flood.Errors)
	}
	if flood.Errors > 0 {
		t.Errorf("%d untyped transport errors — the kind mapping leaked", flood.Errors)
	}
}
