package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"coopabft/internal/serve"
)

// defaultRetryAfterCap bounds how long Do will honor a server-sent
// Retry-After before resending a shed request.
const defaultRetryAfterCap = 2 * time.Second

// HTTPClient drives a live abftd (or abftgate) over the wire, mapping the
// daemon's status codes back onto the service's typed errors so in-process
// and over-the-wire sweeps tally identically.
type HTTPClient struct {
	// Base is the server root, e.g. http://127.0.0.1:8080.
	Base string
	// Client is the underlying transport (default http.DefaultClient).
	Client *http.Client
	// Retry429 is how many times Do resends a request the server shed
	// with 429, honoring the server's Retry-After header (capped at
	// RetryAfterCap) before each resend. Zero keeps the open-loop default:
	// a 429 is data, returned immediately as ErrOverloaded.
	Retry429 int
	// RetryAfterCap caps the honored Retry-After delay (default 2s), so a
	// hostile or confused server cannot park the generator.
	RetryAfterCap time.Duration
}

func (h *HTTPClient) client() *http.Client {
	if h.Client != nil {
		return h.Client
	}
	return http.DefaultClient
}

// Do implements Doer over HTTP. With Retry429 > 0 it resends shed (429)
// requests after honoring the capped Retry-After; all other statuses map
// straight onto the service's typed errors.
func (h *HTTPClient) Do(ctx context.Context, req serve.Request) (serve.Response, error) {
	// Resolve the kernel through the wire-name table before any URL is
	// built: an unknown kernel string must fail as a typed bad request
	// here, never be spliced into the request path.
	k, err := serve.ParseKernel(req.Kernel)
	if err != nil {
		return serve.Response{}, err
	}
	wire, err := k.Wire()
	if err != nil {
		return serve.Response{}, err
	}
	body, err := json.Marshal(req)
	if err != nil {
		return serve.Response{}, err
	}
	for attempt := 0; ; attempt++ {
		resp, retryAfter, err := h.post(ctx, wire, body)
		if retryAfter >= 0 && attempt < h.Retry429 {
			if err := sleepCtx(ctx, retryAfter); err != nil {
				return serve.Response{}, fmt.Errorf("%w: %w", serve.ErrOverloaded, err)
			}
			continue
		}
		return resp, err
	}
}

// post sends one attempt. retryAfter >= 0 marks a 429 whose (capped)
// Retry-After delay the caller may honor before resending; -1 means the
// attempt is final (success or a non-retryable error).
func (h *HTTPClient) post(ctx context.Context, kernel string, body []byte) (serve.Response, time.Duration, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		h.Base+"/v1/"+kernel, bytes.NewReader(body))
	if err != nil {
		return serve.Response{}, -1, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := h.client().Do(hreq)
	if err != nil {
		return serve.Response{}, -1, err
	}
	defer hresp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(hresp.Body, 1<<20))
	if err != nil {
		return serve.Response{}, -1, err
	}

	switch hresp.StatusCode {
	case http.StatusOK:
		var resp serve.Response
		if err := json.Unmarshal(payload, &resp); err != nil {
			return serve.Response{}, -1, fmt.Errorf("loadgen: bad response body: %w", err)
		}
		return resp, -1, nil
	case http.StatusTooManyRequests:
		wait := parseRetryAfter(hresp.Header.Get("Retry-After"), h.retryAfterCap())
		// The kind discriminator picks the typed error back out of the
		// envelope so wire sweeps tally throttled/shed exactly like
		// in-process sweeps; both still satisfy errors.Is(ErrOverloaded).
		switch wireKind(payload) {
		case "throttled":
			return serve.Response{}, wait, fmt.Errorf("%w: %s",
				&serve.ThrottleError{RetryAfter: wait}, wireError(payload))
		case "shed":
			return serve.Response{}, wait, fmt.Errorf("%w: %s",
				&serve.ShedError{}, wireError(payload))
		}
		return serve.Response{}, wait, fmt.Errorf("%w: %s", serve.ErrOverloaded, wireError(payload))
	case http.StatusServiceUnavailable:
		return serve.Response{}, -1, fmt.Errorf("%w: %s", serve.ErrQueueTimeout, wireError(payload))
	case http.StatusBadRequest:
		return serve.Response{}, -1, fmt.Errorf("%w: %s", serve.ErrBadRequest, wireError(payload))
	default:
		return serve.Response{}, -1, fmt.Errorf("loadgen: HTTP %d: %s", hresp.StatusCode, wireError(payload))
	}
}

func (h *HTTPClient) retryAfterCap() time.Duration {
	if h.RetryAfterCap > 0 {
		return h.RetryAfterCap
	}
	return defaultRetryAfterCap
}

// parseRetryAfter reads a Retry-After header — delta-seconds or an
// HTTP-date — clamped to [0, cap]. A missing or malformed header yields a
// small default backoff rather than an immediate hammer.
func parseRetryAfter(v string, limit time.Duration) time.Duration {
	d := 100 * time.Millisecond
	if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
		d = time.Duration(secs) * time.Second
	} else if when, err := http.ParseTime(v); err == nil {
		d = time.Until(when)
	}
	if d < 0 {
		d = 0
	}
	if d > limit {
		d = limit
	}
	return d
}

// sleepCtx waits d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return context.Cause(ctx)
	}
}

// WaitReady polls /healthz until the daemon answers or the budget runs
// out — the readiness gate the CI smoke uses instead of sleeping.
func (h *HTTPClient) WaitReady(ctx context.Context, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	var lastErr error
	for time.Now().Before(deadline) {
		if err := ctx.Err(); err != nil {
			return err
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, h.Base+"/healthz", nil)
		if err != nil {
			return err
		}
		resp, err := h.client().Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			err = fmt.Errorf("healthz: HTTP %d", resp.StatusCode)
		}
		lastErr = err
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("loadgen: server not ready after %s: %w", budget, lastErr)
}

// wireKind extracts the error envelope's machine-readable discriminator.
func wireKind(payload []byte) string {
	var e struct {
		Kind string `json:"kind"`
	}
	_ = json.Unmarshal(payload, &e)
	return e.Kind
}

// wireError extracts the error envelope's message for diagnostics.
func wireError(payload []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(payload, &e) == nil && e.Error != "" {
		return e.Error
	}
	return string(payload)
}
