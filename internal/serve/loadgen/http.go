package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"coopabft/internal/serve"
)

// HTTPClient drives a live abftd over the wire, mapping the daemon's
// status codes back onto the service's typed errors so in-process and
// over-the-wire sweeps tally identically.
type HTTPClient struct {
	// Base is the server root, e.g. http://127.0.0.1:8080.
	Base string
	// Client is the underlying transport (default http.DefaultClient).
	Client *http.Client
}

func (h *HTTPClient) client() *http.Client {
	if h.Client != nil {
		return h.Client
	}
	return http.DefaultClient
}

// Do implements Doer over HTTP.
func (h *HTTPClient) Do(ctx context.Context, req serve.Request) (serve.Response, error) {
	kernel := req.Kernel
	body, err := json.Marshal(req)
	if err != nil {
		return serve.Response{}, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		h.Base+"/v1/"+kernel, bytes.NewReader(body))
	if err != nil {
		return serve.Response{}, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := h.client().Do(hreq)
	if err != nil {
		return serve.Response{}, err
	}
	defer hresp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(hresp.Body, 1<<20))
	if err != nil {
		return serve.Response{}, err
	}

	switch hresp.StatusCode {
	case http.StatusOK:
		var resp serve.Response
		if err := json.Unmarshal(payload, &resp); err != nil {
			return serve.Response{}, fmt.Errorf("loadgen: bad response body: %w", err)
		}
		return resp, nil
	case http.StatusTooManyRequests:
		return serve.Response{}, fmt.Errorf("%w: %s", serve.ErrOverloaded, wireError(payload))
	case http.StatusServiceUnavailable:
		return serve.Response{}, fmt.Errorf("%w: %s", serve.ErrQueueTimeout, wireError(payload))
	case http.StatusBadRequest:
		return serve.Response{}, fmt.Errorf("%w: %s", serve.ErrBadRequest, wireError(payload))
	default:
		return serve.Response{}, fmt.Errorf("loadgen: HTTP %d: %s", hresp.StatusCode, wireError(payload))
	}
}

// WaitReady polls /healthz until the daemon answers or the budget runs
// out — the readiness gate the CI smoke uses instead of sleeping.
func (h *HTTPClient) WaitReady(ctx context.Context, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	var lastErr error
	for time.Now().Before(deadline) {
		if err := ctx.Err(); err != nil {
			return err
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, h.Base+"/healthz", nil)
		if err != nil {
			return err
		}
		resp, err := h.client().Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			err = fmt.Errorf("healthz: HTTP %d", resp.StatusCode)
		}
		lastErr = err
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("loadgen: server not ready after %s: %w", budget, lastErr)
}

// wireError extracts the error envelope's message for diagnostics.
func wireError(payload []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(payload, &e) == nil && e.Error != "" {
		return e.Error
	}
	return string(payload)
}
