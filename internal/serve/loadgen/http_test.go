package loadgen

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"coopabft/internal/serve"
)

// shedThenServe builds a handler that 429s the first n requests with the
// given Retry-After header, then answers 200 with a classified response.
func shedThenServe(n int, retryAfter string) (http.Handler, *atomic.Int64) {
	var hits atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= int64(n) {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(map[string]string{"error": "overloaded", "kind": "overloaded"})
			return
		}
		json.NewEncoder(w).Encode(serve.Response{Kernel: "gemm", N: 16, Outcome: "corrected"})
	})
	return h, &hits
}

// TestRetryAfterHonored: a 429 with Retry-After delays the resend by the
// header value, and the retried request succeeds.
func TestRetryAfterHonored(t *testing.T) {
	h, hits := shedThenServe(1, "1") // 1 second, below the cap
	ts := httptest.NewServer(h)
	defer ts.Close()

	c := &HTTPClient{Base: ts.URL, Retry429: 1, RetryAfterCap: 5 * time.Second}
	t0 := time.Now()
	resp, err := c.Do(context.Background(), serve.Request{Kernel: "gemm", N: 16})
	if err != nil {
		t.Fatalf("Do after retry: %v", err)
	}
	if resp.Outcome != "corrected" {
		t.Errorf("outcome %q", resp.Outcome)
	}
	if got := hits.Load(); got != 2 {
		t.Errorf("server saw %d requests, want 2", got)
	}
	if waited := time.Since(t0); waited < 900*time.Millisecond {
		t.Errorf("resent after %v, want >= ~1s (Retry-After honored)", waited)
	}
}

// TestRetryAfterCapped: an abusive Retry-After is clamped to RetryAfterCap
// instead of parking the generator.
func TestRetryAfterCapped(t *testing.T) {
	h, hits := shedThenServe(1, "3600")
	ts := httptest.NewServer(h)
	defer ts.Close()

	c := &HTTPClient{Base: ts.URL, Retry429: 1, RetryAfterCap: 50 * time.Millisecond}
	t0 := time.Now()
	if _, err := c.Do(context.Background(), serve.Request{Kernel: "gemm", N: 16}); err != nil {
		t.Fatalf("Do: %v", err)
	}
	if waited := time.Since(t0); waited > 2*time.Second {
		t.Errorf("waited %v despite 50ms cap", waited)
	}
	if got := hits.Load(); got != 2 {
		t.Errorf("server saw %d requests, want 2", got)
	}
}

// TestRetryAfterHTTPDate: the HTTP-date form of Retry-After parses too.
func TestRetryAfterHTTPDate(t *testing.T) {
	when := time.Now().Add(time.Hour).UTC().Format(http.TimeFormat)
	if d := parseRetryAfter(when, 80*time.Millisecond); d != 80*time.Millisecond {
		t.Errorf("HTTP-date an hour out: parsed %v, want capped 80ms", d)
	}
	if d := parseRetryAfter("2", time.Minute); d != 2*time.Second {
		t.Errorf("delta-seconds: parsed %v, want 2s", d)
	}
	if d := parseRetryAfter("garbage", time.Minute); d != 100*time.Millisecond {
		t.Errorf("malformed header: parsed %v, want the 100ms default", d)
	}
	if d := parseRetryAfter("", 50*time.Millisecond); d != 50*time.Millisecond {
		t.Errorf("missing header: parsed %v, want capped default", d)
	}
}

// TestRetry429DisabledKeeps429AsData: the open-loop default returns the
// typed ErrOverloaded immediately — no hidden retries skewing the sweep.
func TestRetry429DisabledKeeps429AsData(t *testing.T) {
	h, hits := shedThenServe(99, "1")
	ts := httptest.NewServer(h)
	defer ts.Close()

	c := &HTTPClient{Base: ts.URL}
	t0 := time.Now()
	_, err := c.Do(context.Background(), serve.Request{Kernel: "gemm", N: 16})
	if !errors.Is(err, serve.ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if waited := time.Since(t0); waited > time.Second {
		t.Errorf("blocked %v with retries disabled", waited)
	}
	if got := hits.Load(); got != 1 {
		t.Errorf("server saw %d requests, want 1", got)
	}
}

// TestRetryBudgetExhausted: a persistently shedding server still comes
// back as ErrOverloaded once the retry budget runs out.
func TestRetryBudgetExhausted(t *testing.T) {
	h, hits := shedThenServe(99, "0")
	ts := httptest.NewServer(h)
	defer ts.Close()

	c := &HTTPClient{Base: ts.URL, Retry429: 2, RetryAfterCap: 10 * time.Millisecond}
	_, err := c.Do(context.Background(), serve.Request{Kernel: "gemm", N: 16})
	if !errors.Is(err, serve.ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if got := hits.Load(); got != 3 {
		t.Errorf("server saw %d requests, want 3 (1 + 2 retries)", got)
	}
}

// TestRetrySleepRespectsContext: cancelling mid-backoff unblocks Do.
func TestRetrySleepRespectsContext(t *testing.T) {
	h, _ := shedThenServe(99, "30")
	ts := httptest.NewServer(h)
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	c := &HTTPClient{Base: ts.URL, Retry429: 1, RetryAfterCap: time.Minute}
	t0 := time.Now()
	_, err := c.Do(ctx, serve.Request{Kernel: "gemm", N: 16})
	if err == nil {
		t.Fatal("expected an error from a cancelled backoff")
	}
	if waited := time.Since(t0); waited > 5*time.Second {
		t.Errorf("Do blocked %v past cancellation", waited)
	}
}
