package loadgen

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"coopabft/internal/serve"
)

// fakeJobsServer is a scripted gateway: submit returns the queued status,
// each poll advances through the given sequence (sticking on the last).
type fakeJobsServer struct {
	mu    atomic.Int64 // poll count
	steps []serve.JobStatus
}

func (f *fakeJobsServer) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var req serve.Request
		json.NewDecoder(r.Body).Decode(&req)
		if req.Kernel != "gemm" {
			w.WriteHeader(http.StatusBadRequest)
			json.NewEncoder(w).Encode(map[string]string{"error": "bad kernel", "kind": "bad_request"})
			return
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(serve.JobStatus{ID: "j000001", State: serve.JobQueued, Kernel: "gemm", N: req.N})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		if r.PathValue("id") != "j000001" {
			w.WriteHeader(http.StatusNotFound)
			json.NewEncoder(w).Encode(map[string]string{"error": "no such job", "kind": "unknown_job"})
			return
		}
		i := int(f.mu.Add(1)) - 1
		if i >= len(f.steps) {
			i = len(f.steps) - 1
		}
		json.NewEncoder(w).Encode(f.steps[i])
	})
	return mux
}

// TestRunJobsHappyPath: the loop submits, polls through running to done,
// fires the progress hook, verifies the digest against the local
// reference, and the gate passes.
func TestRunJobsHappyPath(t *testing.T) {
	const n, seed = 32, uint64(9)
	done := serve.JobStatus{
		ID: "j000001", State: serve.JobDone, Kernel: "gemm", N: n, Sharded: true,
		BlocksTotal: 8, BlocksDone: 8, Digest: referenceDigest(n, seed),
	}
	f := &fakeJobsServer{steps: []serve.JobStatus{
		{ID: "j000001", State: serve.JobRunning, Kernel: "gemm", N: n, Sharded: true, BlocksTotal: 8, BlocksDone: 3},
		done,
	}}
	ts := httptest.NewServer(f.handler())
	defer ts.Close()

	var sawMidFlight atomic.Bool
	rep, err := RunJobs(context.Background(), &HTTPClient{Base: ts.URL}, JobsConfig{
		N: n, Seed: seed, Verify: true, Poll: time.Millisecond,
		OnProgress: func(st serve.JobStatus) {
			if st.State == serve.JobRunning && st.BlocksDone >= 1 {
				sawMidFlight.Store(true)
			}
		},
	})
	if err != nil {
		t.Fatalf("RunJobs: %v", err)
	}
	if rep.Done != 1 || rep.Sharded != 1 || rep.DigestMismatch != 0 {
		t.Fatalf("report %+v", rep)
	}
	if !sawMidFlight.Load() {
		t.Error("progress hook never saw a mid-flight status")
	}
	if err := rep.Gate(); err != nil {
		t.Errorf("gate: %v", err)
	}
}

// TestRunJobsDigestMismatch: a done job with a wrong digest fails
// verification and the gate.
func TestRunJobsDigestMismatch(t *testing.T) {
	f := &fakeJobsServer{steps: []serve.JobStatus{{
		ID: "j000001", State: serve.JobDone, Kernel: "gemm", N: 32, Sharded: true, Digest: "deadbeefdeadbeef",
	}}}
	ts := httptest.NewServer(f.handler())
	defer ts.Close()

	rep, err := RunJobs(context.Background(), &HTTPClient{Base: ts.URL},
		JobsConfig{N: 32, Seed: 3, Verify: true, Poll: time.Millisecond})
	if err != nil {
		t.Fatalf("RunJobs aborted the sweep: %v", err)
	}
	if rep.DigestMismatch != 1 {
		t.Fatalf("report %+v, want 1 digest mismatch", rep)
	}
	if err := rep.Gate(); !errors.Is(err, ErrJobFailed) {
		t.Errorf("gate = %v, want ErrJobFailed", err)
	}
}

// TestRunJobsFailedJob: a job that ends failed is tallied and trips the
// gate without aborting the sweep.
func TestRunJobsFailedJob(t *testing.T) {
	f := &fakeJobsServer{steps: []serve.JobStatus{{
		ID: "j000001", State: serve.JobFailed, Kernel: "gemm", N: 32, Error: "node lost",
	}}}
	ts := httptest.NewServer(f.handler())
	defer ts.Close()

	rep, err := RunJobs(context.Background(), &HTTPClient{Base: ts.URL},
		JobsConfig{N: 32, Poll: time.Millisecond})
	if err != nil {
		t.Fatalf("RunJobs: %v", err)
	}
	if rep.Failed != 1 || rep.Done != 0 {
		t.Fatalf("report %+v", rep)
	}
	if err := rep.Gate(); !errors.Is(err, ErrJobFailed) {
		t.Errorf("gate = %v, want ErrJobFailed", err)
	}
}

// TestBadKernelNeverDialed is the regression test for the Kernel(%d)
// wire-leak: an unknown kernel must come back as a local ErrBadRequest
// from both the sync client and the jobs client, with zero HTTP requests
// issued — the raw string never reaches URL construction.
func TestBadKernelNeverDialed(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	c := &HTTPClient{Base: ts.URL}
	for _, kernel := range []string{"lu", "", "gemm/../admin", "Kernel(42)"} {
		if _, err := c.Do(context.Background(), serve.Request{Kernel: kernel, N: 16}); !errors.Is(err, serve.ErrBadRequest) {
			t.Errorf("Do(%q) err = %v, want ErrBadRequest", kernel, err)
		}
		if _, err := c.SubmitJob(context.Background(), serve.Request{Kernel: kernel, N: 16}); !errors.Is(err, serve.ErrBadRequest) {
			t.Errorf("SubmitJob(%q) err = %v, want ErrBadRequest", kernel, err)
		}
	}
	if got := hits.Load(); got != 0 {
		t.Fatalf("server saw %d requests for invalid kernels, want 0", got)
	}
}

// TestKernelCaseNormalized: ParseKernel is case-insensitive, so the URL is
// built from the canonical wire name, not the caller's spelling.
func TestKernelCaseNormalized(t *testing.T) {
	var path atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		path.Store(r.URL.Path)
		json.NewEncoder(w).Encode(serve.Response{Kernel: "gemm", N: 16, Outcome: "corrected"})
	}))
	defer ts.Close()

	c := &HTTPClient{Base: ts.URL}
	if _, err := c.Do(context.Background(), serve.Request{Kernel: "GEMM", N: 16}); err != nil {
		t.Fatalf("Do: %v", err)
	}
	if got := path.Load(); got != "/v1/gemm" {
		t.Errorf("dialed %v, want /v1/gemm", got)
	}
}

// TestShedPollBacksOffAndRecovers: 429s from the status route are shed
// signals, not failures — the loop waits out the Retry-After hint and the
// job still finishes done.
func TestShedPollBacksOffAndRecovers(t *testing.T) {
	var polls atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(serve.JobStatus{ID: "j000001", State: serve.JobQueued, Kernel: "gemm", N: 16})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		if polls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(map[string]string{"error": "admission queue full", "kind": "overloaded"})
			return
		}
		json.NewEncoder(w).Encode(serve.JobStatus{ID: "j000001", State: serve.JobDone, Kernel: "gemm", N: 16})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	rep, err := RunJobs(context.Background(), &HTTPClient{Base: ts.URL},
		JobsConfig{N: 16, Poll: time.Millisecond, PollMax: 5 * time.Millisecond})
	if err != nil {
		t.Fatalf("RunJobs: %v", err)
	}
	if rep.Done != 1 || rep.Failed != 0 {
		t.Fatalf("report %+v, want the shed job to finish done", rep)
	}
	if got := polls.Load(); got < 3 {
		t.Errorf("polls = %d, want >= 3 (two sheds plus the terminal)", got)
	}
}

// TestNextPollDelay: backoff roughly doubles, is deterministic for a given
// seed, and clamps into [Poll, PollMax].
func TestNextPollDelay(t *testing.T) {
	cfg := JobsConfig{Poll: 10 * time.Millisecond, PollMax: 100 * time.Millisecond}.withDefaults()
	d := nextPollDelay(cfg.Poll, cfg, 7)
	if d < 15*time.Millisecond || d > 25*time.Millisecond {
		t.Errorf("first backoff %v outside 2x±25%% of 10ms", d)
	}
	if again := nextPollDelay(cfg.Poll, cfg, 7); again != d {
		t.Errorf("backoff not deterministic: %v then %v", d, again)
	}
	for i := 0; i < 10; i++ {
		d = nextPollDelay(d, cfg, 7)
	}
	if d != cfg.PollMax {
		t.Errorf("backoff settled at %v, want clamp at PollMax %v", d, cfg.PollMax)
	}
}
