package serve

import (
	"context"
	"sync"
	"testing"
	"time"
)

// pollUntil spins until cond holds or the test deadline budget runs out.
func pollUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// sendN fires n concurrent requests and returns their responses once all
// have completed. Any request error fails the test.
func sendN(t *testing.T, s *Service, reqs []Request) []Response {
	t.Helper()
	var wg sync.WaitGroup
	resps := make([]Response, len(reqs))
	for i, req := range reqs {
		wg.Add(1)
		go func(i int, req Request) {
			defer wg.Done()
			var err error
			resps[i], err = s.Do(context.Background(), req)
			if err != nil {
				t.Errorf("request %d: %v", i, err)
			}
		}(i, req)
	}
	wg.Wait()
	return resps
}

// TestBatchStopsExactlyAtMaxBatch: with MaxBatch=2 and four compatible
// GEMMs parked behind a pinned semaphore, the dispatcher must cut two
// batches of exactly two — the cap is a hard boundary, not a hint.
func TestBatchStopsExactlyAtMaxBatch(t *testing.T) {
	s := newTestService(t, Config{
		MaxConcurrency: 1,
		QueueDepth:     16,
		BatchWindow:    2 * time.Second,
		MaxBatch:       2,
		QueueTimeout:   time.Minute,
	})
	// Pin the only slot so batches form from a full queue, not from
	// arrival timing.
	s.sem <- struct{}{}

	reqs := make([]Request, 4)
	for i := range reqs {
		reqs[i] = Request{Kernel: "gemm", N: 32, Seed: uint64(i + 1)}
	}
	done := make(chan []Response, 1)
	go func() { done <- sendN(t, s, reqs) }()
	pollUntil(t, "all four requests admitted", func() bool { return s.m.Accepted.Value() == 4 })
	<-s.sem // release: the dispatcher owns batching from here

	for i, r := range <-done {
		if r.BatchSize != 2 {
			t.Errorf("request %d: batch size %d, want exactly MaxBatch=2", i, r.BatchSize)
		}
	}
	if got := s.m.Batches.Value(); got != 2 {
		t.Errorf("batches = %d, want 2 (4 requests / MaxBatch 2)", got)
	}
	if got := s.m.BatchedRequests.Value(); got != 4 {
		t.Errorf("batched requests = %d, want 4", got)
	}
}

// TestBatchNeverMixesStrategies: two GEMMs inside one open window with
// different ECC strategies must execute in separate batches — coalescing
// across strategies would run one request under the other's memory
// configuration.
func TestBatchNeverMixesStrategies(t *testing.T) {
	s := newTestService(t, Config{
		MaxConcurrency: 1,
		QueueDepth:     16,
		BatchWindow:    2 * time.Second,
		MaxBatch:       4,
		QueueTimeout:   time.Minute,
	})
	s.sem <- struct{}{}

	reqs := []Request{
		{Kernel: "gemm", N: 32, Strategy: "W_CK", Seed: 1},
		{Kernel: "gemm", N: 32, Strategy: "No_ECC", Seed: 2},
	}
	done := make(chan []Response, 1)
	go func() { done <- sendN(t, s, reqs) }()
	pollUntil(t, "both requests admitted", func() bool { return s.m.Accepted.Value() == 2 })
	<-s.sem

	for i, r := range <-done {
		if r.BatchSize != 1 {
			t.Errorf("request %d: batch size %d across strategies, want 1", i, r.BatchSize)
		}
	}
	if got := s.m.Batches.Value(); got != 2 {
		t.Errorf("batches = %d, want 2", got)
	}
	if got := s.m.BatchedRequests.Value(); got != 0 {
		t.Errorf("batched requests = %d, want 0", got)
	}
}

// TestSingleRequestBatch: with batching enabled but only one request in
// the window, the batch closes at the window edge with size 1 — a lone
// request pays the window latency but nothing else.
func TestSingleRequestBatch(t *testing.T) {
	s := newTestService(t, Config{
		MaxConcurrency: 1,
		QueueDepth:     8,
		BatchWindow:    20 * time.Millisecond,
		MaxBatch:       4,
	})
	resp, err := s.Do(context.Background(), Request{Kernel: "gemm", N: 32, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if resp.BatchSize != 1 {
		t.Errorf("batch size %d for a lone request, want 1", resp.BatchSize)
	}
	if got := s.m.Batches.Value(); got != 1 {
		t.Errorf("batches = %d, want 1", got)
	}
	if got := s.m.BatchedRequests.Value(); got != 0 {
		t.Errorf("batched requests = %d, want 0", got)
	}
}
