package serve

import (
	"context"
	"fmt"
	"time"

	"coopabft/internal/abft"
	"coopabft/internal/mat"
)

// VerifyTask is one replicated verification unit of the DCRFT-style
// verify-vote integrity mode, in wire (JSON) form: the primary node
// computed C = A·B (with the full ladder) and claims the product whose
// exact bits are Answer with canonical signature Sig; the verifier
// regenerates the operands from the seed — A = Random(n,n,seed),
// B = Random(n,n,seed+1), the repo-wide determinism contract — and checks
// the claim with the O(n²) probe pass instead of recomputing the O(n³)
// product.
type VerifyTask struct {
	Kernel string `json:"kernel"`
	N      int    `json:"n"`
	Seed   uint64 `json:"seed"`
	// Sig is the primary's claimed canonical answer signature.
	Sig string `json:"sig"`
	// Answer is the claimed product, row-major little-endian IEEE-754 bit
	// patterns (the PackBlock encoding), n·n·8 bytes.
	Answer    []byte `json:"answer"`
	TimeoutMS int    `json:"timeout_ms,omitempty"`
}

// VerifyResult is the verifier's ballot: OK means the shipped bytes hash
// to the claimed signature AND pass the checksum probes against the
// regenerated operands. Sig is the signature this node computed over the
// shipped bytes — the gateway counts it alongside the primary's.
type VerifyResult struct {
	OK     bool    `json:"ok"`
	Sig    string  `json:"sig"`
	Reason string  `json:"reason,omitempty"`
	RunMS  float64 `json:"run_ms"`
}

// DoVerify admits and executes one verification task. Admission mirrors
// DoBlock's taxonomy and shares the block semaphore: verification is an
// offloaded O(n²) pass, much closer to a block task than to an
// interactive ladder run, and must not starve the request path.
func (s *Service) DoVerify(ctx context.Context, t VerifyTask) (VerifyResult, error) {
	p, err := ParseRequest(s.cfg.Limits(), Request{Kernel: t.Kernel, N: t.N, Seed: t.Seed})
	if err != nil {
		s.m.VerifyRejected.Add(1)
		return VerifyResult{}, err
	}
	if p.Kernel != KernelGEMM {
		s.m.VerifyRejected.Add(1)
		return VerifyResult{}, fmt.Errorf("%w: verify tasks support gemm only, got %s", ErrBadRequest, p.Kernel)
	}
	c, err := abft.UnpackBlock(p.N, p.N, t.Answer)
	if err != nil {
		s.m.VerifyRejected.Add(1)
		return VerifyResult{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if t.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(t.TimeoutMS)*time.Millisecond)
		defer cancel()
	}

	wait := time.NewTimer(s.cfg.QueueTimeout)
	defer wait.Stop()
	select {
	case s.blockSem <- struct{}{}:
	case <-wait.C:
		s.m.VerifyShed.Add(1)
		return VerifyResult{}, fmt.Errorf("%w: no verify slot within %s", ErrQueueTimeout, s.cfg.QueueTimeout)
	case <-ctx.Done():
		s.m.VerifyShed.Add(1)
		return VerifyResult{}, fmt.Errorf("%w: %w", ErrQueueTimeout, context.Cause(ctx))
	case <-s.quit:
		return VerifyResult{}, ErrClosed
	}
	defer func() { <-s.blockSem }()

	start := time.Now()
	res := VerifyResult{Sig: abft.BitDigest(c)}
	switch {
	case !abft.SameAnswer(res.Sig, t.Sig):
		// Binding check: the shipped bytes must hash to the claimed
		// signature, or the primary's ballot and payload diverge — a lie
		// (or corruption in flight) either way.
		res.Reason = fmt.Sprintf("claimed signature %s does not match shipped answer %s", t.Sig, res.Sig)
	default:
		a := mat.Random(p.N, p.N, p.Seed)
		b := mat.Random(p.N, p.N, p.Seed+1)
		if err := abft.CheckProduct(a, b, c, p.Seed, abft.BlockTol(p.N)); err != nil {
			res.Reason = err.Error()
		} else {
			res.OK = true
		}
	}
	if !res.OK {
		s.m.VerifyRefuted.Add(1)
	}
	s.m.VerifyTasks.Add(1)
	res.RunMS = float64(time.Since(start)) / float64(time.Millisecond)
	s.m.VerifyRunMSSum.Add(res.RunMS)
	return res, nil
}
