package serve

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"coopabft/internal/abft"
	"coopabft/internal/checkpoint"
	"coopabft/internal/core"
	"coopabft/internal/machine"
	"coopabft/internal/recovery"
)

// LongTask is one dispatch of a long-running iterative solve (CG), in wire
// form. Unlike the interactive kernel path it is step-granular: the worker
// streams an encoded checkpoint to CheckpointURL every CheckpointEvery
// steps, and a Snapshot shipped with the task resumes the solve at the
// snapshot's step — including its consumed restart budget — instead of
// starting over. The gateway uses exactly this to migrate a job off a dead
// node.
type LongTask struct {
	JobID  string `json:"job_id"`
	Kernel string `json:"kernel"`
	NX     int    `json:"nx,omitempty"`
	NY     int    `json:"ny,omitempty"`
	Seed   uint64 `json:"seed"`
	// Strategy is the paper ECC label, as on the interactive path.
	Strategy  string `json:"strategy,omitempty"`
	Faults    int    `json:"faults,omitempty"`
	FaultKind string `json:"fault_kind,omitempty"`
	// CheckpointEvery is the step interval between streamed checkpoints
	// (default 8).
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	// CheckpointURL, when set, receives an encoded snapshot via HTTP PUT
	// after each committed checkpoint. PUT failures are counted, not fatal:
	// losing a stream degrades migration granularity, never the solve.
	CheckpointURL string `json:"checkpoint_url,omitempty"`
	// Snapshot is an encoded checkpoint.Snapshot to resume from (nil for a
	// fresh start).
	Snapshot  []byte `json:"snapshot,omitempty"`
	TimeoutMS int    `json:"timeout_ms,omitempty"`
}

// LongResult reports one finished long-task incarnation. Outcome uses the
// ladder's corrected/restarted/aborted taxonomy; a migrated job's final
// incarnation reports the whole solve's convergence.
type LongResult struct {
	JobID   string `json:"job_id"`
	Kernel  string `json:"kernel"`
	Outcome string `json:"outcome"`
	Error   string `json:"error,omitempty"`
	// ResumeStep is the step this incarnation started at (0 fresh).
	ResumeStep int `json:"resume_step"`
	// Steps is the solver's iteration count at completion (absolute).
	Steps    int     `json:"steps"`
	Residual float64 `json:"residual,omitempty"`
	// Restarts counts this incarnation's local rollbacks; RestartsTotal is
	// cumulative including the budget carried in by the snapshot.
	Restarts      int `json:"restarts"`
	RestartsTotal int `json:"restarts_total"`
	// Checkpoints counts locally committed checkpoints; Streamed counts the
	// ones successfully PUT to CheckpointURL.
	Checkpoints int     `json:"checkpoints"`
	Streamed    int     `json:"streamed"`
	Corrections int     `json:"abft_corrections"`
	Injected    int     `json:"injected"`
	RunMS       float64 `json:"run_ms"`
}

// longLimits derives long-task admission bounds: the CG grid area cap
// follows the job-size cap, not the interactive one.
func (c Config) longLimits() Limits { return Limits{MaxN: c.MaxJobN, MaxFaults: c.MaxFaults} }

// parseLongTask funnels a long task through the shared admission
// entrypoint and decodes the resume snapshot, if any.
func parseLongTask(l Limits, t LongTask) (Parsed, *checkpoint.Snapshot, error) {
	p, err := ParseRequest(l, Request{
		Kernel: t.Kernel, NX: t.NX, NY: t.NY, Strategy: t.Strategy,
		Seed: t.Seed, Faults: t.Faults, FaultKind: t.FaultKind,
	})
	if err != nil {
		return p, nil, err
	}
	if p.Kernel != KernelCG {
		return p, nil, fmt.Errorf("%w: long tasks support cg only, got %s", ErrBadRequest, p.Kernel)
	}
	if t.CheckpointEvery < 0 {
		return p, nil, fmt.Errorf("%w: checkpoint_every must be >= 0", ErrBadRequest)
	}
	if len(t.Snapshot) == 0 {
		return p, nil, nil
	}
	snap, err := checkpoint.Decode(t.Snapshot)
	if err != nil {
		return p, nil, fmt.Errorf("%w: %w", ErrBadRequest, err)
	}
	return p, &snap, nil
}

// DoLong admits and executes one long task through the recovery ladder,
// streaming checkpoints off-node as it goes. Long tasks run on their own
// semaphore (LongConcurrency) so a multi-minute solve cannot starve the
// interactive or block paths.
func (s *Service) DoLong(ctx context.Context, t LongTask) (LongResult, error) {
	p, resume, err := parseLongTask(s.cfg.longLimits(), t)
	if err != nil {
		s.m.LongRejected.Add(1)
		return LongResult{}, err
	}
	if t.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(t.TimeoutMS)*time.Millisecond)
		defer cancel()
	}

	wait := time.NewTimer(s.cfg.QueueTimeout)
	defer wait.Stop()
	select {
	case s.longSem <- struct{}{}:
	case <-wait.C:
		s.m.LongShed.Add(1)
		return LongResult{}, fmt.Errorf("%w: no long-job slot within %s", ErrQueueTimeout, s.cfg.QueueTimeout)
	case <-ctx.Done():
		s.m.LongShed.Add(1)
		return LongResult{}, fmt.Errorf("%w: %w", ErrQueueTimeout, context.Cause(ctx))
	case <-s.quit:
		return LongResult{}, ErrClosed
	}
	defer func() { <-s.longSem }()

	return s.runLong(ctx, t, p, resume), nil
}

// runLong drives one admitted long task under a panic guard, mirroring
// runLadder's contract: a kernel panic becomes an Aborted classification.
func (s *Service) runLong(ctx context.Context, t LongTask, p Parsed, resume *checkpoint.Snapshot) (res LongResult) {
	res = LongResult{JobID: t.JobID, Kernel: p.Kernel.String()}
	defer func() {
		if pn := recover(); pn != nil {
			res.Outcome = recovery.Aborted.String()
			res.Error = fmt.Sprintf("serve: long task panicked: %v", pn)
		}
	}()
	start := time.Now()

	rt := core.NewRuntime(machine.ScaledConfig(32), p.Strategy, int64(p.Seed))
	w, err := recovery.NewCGWorkload(rt, p.NX, p.NY, p.Seed)
	if err != nil {
		res.Outcome = recovery.Aborted.String()
		res.Error = err.Error()
		return res
	}

	every := t.CheckpointEvery
	if every == 0 {
		every = s.cfg.CheckpointEvery
	}

	resumeStep := 0
	if resume != nil {
		resumeStep = resume.Step
	}
	s.bus.Publish(Event{Type: EventJobResumed, Job: t.JobID, Step: resumeStep})

	var streamed atomic.Int64
	onCkpt, flush := s.startCheckpointStream(ctx, t.CheckpointURL, &streamed)
	co := &recovery.Coordinator{
		RT:              rt,
		W:               w,
		Plan:            injectionPlan(p, w),
		CheckpointEvery: every,
		MaxRestarts:     s.cfg.MaxRestarts,
		Ctx:             ctx,
		Resume:          resume,
		OnCheckpoint:    onCkpt,
		OnEvent: func(kind string, step int, detail string) {
			switch kind {
			case recovery.EventFault:
				s.bus.Publish(Event{Type: EventPanelFault, Job: t.JobID, Step: step, Detail: detail})
			case recovery.EventEscalation:
				s.bus.Publish(Event{Type: EventLadderEscalation, Job: t.JobID, Step: step, Detail: detail})
			case recovery.EventCheckpoint:
				s.bus.Publish(Event{Type: EventCheckpoint, Job: t.JobID, Step: step})
			}
		},
	}
	rep := co.Run()
	flush()

	res.Outcome = rep.Outcome.String()
	if rep.Err != nil {
		res.Error = rep.Err.Error()
	}
	res.ResumeStep = rep.ResumedFrom
	res.Restarts = rep.Restarts
	res.RestartsTotal = rep.RestartsTotal
	res.Checkpoints = rep.Checkpoints
	res.Streamed = int(streamed.Load())
	res.Corrections = rep.Corrections
	res.Injected = rep.Injected
	if sv, ok := w.(interface{ Solve() abft.CGOutcome }); ok {
		out := sv.Solve()
		res.Steps = out.Iterations
		res.Residual = out.Residual
	}
	res.RunMS = float64(time.Since(start)) / float64(time.Millisecond)

	s.m.LongTasks.Add(1)
	s.m.LongRunMSSum.Add(res.RunMS)
	switch rep.Outcome {
	case recovery.Corrected:
		s.m.Corrected.Add(1)
	case recovery.Restarted:
		s.m.Restarted.Add(1)
	default:
		s.m.Aborted.Add(1)
	}
	s.bus.Publish(Event{Type: EventJobDone, Job: t.JobID, Step: res.Steps, Detail: res.Outcome})
	return res
}

// startCheckpointStream returns the coordinator's OnCheckpoint hook and a
// flush function. The hook runs on the solve's step boundary, so it must
// not block on the network: snapshots go through a latest-wins slot to a
// single sender goroutine — a slow gateway costs checkpoint granularity
// (intermediate snapshots are superseded), never solve throughput. flush
// sends any still-pending snapshot and joins the sender.
func (s *Service) startCheckpointStream(ctx context.Context, url string, streamed *atomic.Int64) (func(checkpoint.Snapshot), func()) {
	if url == "" {
		return nil, func() {}
	}
	slot := make(chan []byte, 1)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	put := func(buf []byte) {
		if err := s.putCheckpoint(ctx, url, buf); err != nil {
			s.m.CheckpointPutErrors.Add(1)
		} else {
			streamed.Add(1)
			s.m.CheckpointsStreamed.Add(1)
		}
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case buf := <-slot:
				put(buf)
			case <-stop:
				select {
				case buf := <-slot:
					put(buf)
				default:
				}
				return
			}
		}
	}()
	hook := func(snap checkpoint.Snapshot) {
		buf := checkpoint.Encode(snap)
		for {
			select {
			case slot <- buf:
				return
			default:
				// Supersede the unsent snapshot (single producer: the hook
				// only runs on the solve goroutine).
				select {
				case <-slot:
				default:
				}
			}
		}
	}
	flush := func() {
		close(stop)
		wg.Wait()
	}
	return hook, flush
}

// putCheckpoint ships one encoded snapshot to the gateway.
func (s *Service) putCheckpoint(ctx context.Context, url string, buf []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, url, bytes.NewReader(buf))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := s.ckptClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("serve: checkpoint PUT: status %d", resp.StatusCode)
	}
	return nil
}
