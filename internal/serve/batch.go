package serve

import (
	"fmt"
	"time"
)

// compatible reports whether two requests may share an execution batch:
// same kernel shape, same problem size, same ECC strategy, and same verify
// mode — the serving analogue of GEMM batching, where a worker runs the
// coalesced group back-to-back on one concurrency slot with warm packing
// buffers. Mixing verify modes in a batch would make batch latency depend
// on queue interleaving, so fused and notified requests never coalesce.
// Integrity modes must match too: a vote replica carries signature work
// (and verify-vote a payload copy) a plain request does not, so
// coalescing across integrity tiers would couple their latencies.
func compatible(a, b Parsed) bool {
	return a.Kernel == KernelGEMM && b.Kernel == KernelGEMM &&
		a.N == b.N && a.Strategy == b.Strategy && a.Mode == b.Mode &&
		a.Integrity == b.Integrity
}

// dispatch is the scheduling loop: pull the next job, optionally hold a
// small-GEMM batch open for BatchWindow, then acquire a concurrency slot
// and hand the batch to an executor goroutine. Exactly one dispatcher runs
// per service, so batch formation never races with itself.
func (s *Service) dispatch() {
	defer s.dispatchWG.Done()
	var pending *job
	for {
		var first *job
		if pending != nil {
			first, pending = pending, nil
		} else {
			select {
			case first = <-s.queue:
			case <-s.quit:
				s.drain()
				return
			}
		}
		batch := []*job{first}
		if s.cfg.BatchWindow > 0 && s.cfg.MaxBatch > 1 && first.req.Kernel == KernelGEMM {
			batch, pending = s.collect(first)
		}
		select {
		case s.sem <- struct{}{}:
		case <-s.quit:
			s.fail(batch)
			if pending != nil {
				s.fail([]*job{pending})
			}
			s.drain()
			return
		}
		s.execWG.Add(1)
		go s.runBatch(batch)
	}
}

// collect holds first's batch open for BatchWindow, coalescing compatible
// followers up to MaxBatch. The first incompatible job ends the window and
// is returned as the next batch's head.
func (s *Service) collect(first *job) (batch []*job, pending *job) {
	batch = []*job{first}
	timer := time.NewTimer(s.cfg.BatchWindow)
	defer timer.Stop()
	for len(batch) < s.cfg.MaxBatch {
		select {
		case j := <-s.queue:
			if compatible(first.req, j.req) {
				batch = append(batch, j)
			} else {
				return batch, j
			}
		case <-timer.C:
			return batch, nil
		case <-s.quit:
			return batch, nil
		}
	}
	return batch, nil
}

// runBatch executes a batch on one concurrency slot.
func (s *Service) runBatch(batch []*job) {
	defer s.execWG.Done()
	defer func() { <-s.sem }()
	s.m.Batches.Add(1)
	if len(batch) > 1 {
		s.m.BatchedRequests.Add(int64(len(batch)))
	}
	for _, j := range batch {
		s.runJob(j, len(batch))
	}
}

// runJob transitions one job to running (skipping abandoned waiters),
// enforces the queue-wait budget, and executes the ladder.
func (s *Service) runJob(j *job, batchSize int) {
	if !j.state.CompareAndSwap(stateQueued, stateRunning) {
		return // waiter gave up while queued; nothing to deliver
	}
	s.m.QueueDepth.Add(-1)
	wait := time.Since(j.enq)
	if qt := s.cfg.QueueTimeout; qt > 0 && wait > qt {
		s.m.QueueTimeouts.Add(1)
		j.deliver(Response{}, fmt.Errorf("%w: waited %s (budget %s)",
			ErrQueueTimeout, wait.Round(time.Millisecond), qt))
		return
	}
	if err := j.ctx.Err(); err != nil {
		s.m.QueueTimeouts.Add(1)
		j.deliver(Response{}, fmt.Errorf("%w: %w", ErrQueueTimeout, err))
		return
	}
	j.deliver(s.execute(j, batchSize, wait), nil)
}

// fail delivers ErrClosed to every job in the slice that has not started.
func (s *Service) fail(jobs []*job) {
	for _, j := range jobs {
		if j.state.CompareAndSwap(stateQueued, stateRunning) {
			s.m.QueueDepth.Add(-1)
			j.deliver(Response{}, ErrClosed)
		}
	}
}

// drain flushes the queue at shutdown, failing everything still parked.
func (s *Service) drain() {
	for {
		select {
		case j := <-s.queue:
			s.fail([]*job{j})
		default:
			return
		}
	}
}
