package serve

import (
	"fmt"
	"time"

	"coopabft/internal/serve/qos"
)

// compatible reports whether two requests may share an execution batch:
// same kernel shape, same problem size, same ECC strategy, same verify
// mode, same precision, and same tenant — the serving analogue of GEMM
// batching, where a worker runs the coalesced group back-to-back on one
// concurrency slot with warm packing buffers. Mixing verify modes or dtypes
// in a batch would make batch latency depend on queue interleaving, so
// fused and notified — or f32 and f64 — requests never coalesce. Integrity
// modes must match too: a vote replica carries signature work (and
// verify-vote a payload copy) a plain request does not. Tenants never share
// a batch: a batch runs on one concurrency slot, so coalescing across
// tenants would let one tenant's work ride (and bill to) another's
// scheduling decision, defeating fair queueing.
func compatible(a, b Parsed) bool {
	return a.Kernel == KernelGEMM && b.Kernel == KernelGEMM &&
		a.N == b.N && a.Strategy == b.Strategy && a.Mode == b.Mode &&
		a.Integrity == b.Integrity && a.Dtype == b.Dtype && a.Tenant == b.Tenant
}

// dispatch is the scheduling loop: pop the fair-queue head, optionally hold
// a small-GEMM batch open for BatchWindow, then acquire a concurrency slot
// and hand the batch to an executor goroutine. Exactly one dispatcher runs
// per service, so batch formation never races with itself.
func (s *Service) dispatch() {
	defer s.dispatchWG.Done()
	for {
		it, ok := s.sched.Pop()
		if !ok {
			select {
			case <-s.sched.Ready():
				continue
			case <-s.quit:
				s.drain()
				return
			}
		}
		first := it.Value.(*job)
		batch := []*job{first}
		if s.cfg.BatchWindow > 0 && s.cfg.MaxBatch > 1 && first.req.Kernel == KernelGEMM {
			batch = s.collect(first)
		}
		select {
		case s.sem <- struct{}{}:
		case <-s.quit:
			s.fail(batch)
			s.drain()
			return
		}
		s.execWG.Add(1)
		go s.runBatch(batch)
	}
}

// collect holds first's batch open for BatchWindow, coalescing compatible
// followers up to MaxBatch. Only fair-queue heads are considered (PopWhere),
// so batching can never reorder one tenant's requests; incompatible work
// simply stays queued for the next dispatch round.
func (s *Service) collect(first *job) []*job {
	batch := []*job{first}
	timer := time.NewTimer(s.cfg.BatchWindow)
	defer timer.Stop()
	match := func(it qos.Item) bool { return compatible(first.req, it.Value.(*job).req) }
	for len(batch) < s.cfg.MaxBatch {
		if it, ok := s.sched.PopWhere(match); ok {
			batch = append(batch, it.Value.(*job))
			continue
		}
		select {
		case <-s.sched.Ready():
		case <-timer.C:
			return batch
		case <-s.quit:
			return batch
		}
	}
	return batch
}

// runBatch executes a batch on one concurrency slot.
func (s *Service) runBatch(batch []*job) {
	defer s.execWG.Done()
	defer func() { <-s.sem }()
	s.m.Batches.Add(1)
	if len(batch) > 1 {
		s.m.BatchedRequests.Add(int64(len(batch)))
	}
	for _, j := range batch {
		s.runJob(j, len(batch))
	}
}

// runJob transitions one job to running (skipping abandoned waiters),
// enforces the queue-wait budget, and executes the ladder.
func (s *Service) runJob(j *job, batchSize int) {
	if !j.state.CompareAndSwap(stateQueued, stateRunning) {
		return // waiter gave up while queued; nothing to deliver
	}
	s.m.QueueDepth.Add(-1)
	wait := time.Since(j.enq)
	if qt := s.cfg.QueueTimeout; qt > 0 && wait > qt {
		s.m.QueueTimeouts.Add(1)
		j.deliver(Response{}, fmt.Errorf("%w: waited %s (budget %s)",
			ErrQueueTimeout, wait.Round(time.Millisecond), qt))
		return
	}
	if err := j.ctx.Err(); err != nil {
		s.m.QueueTimeouts.Add(1)
		j.deliver(Response{}, fmt.Errorf("%w: %w", ErrQueueTimeout, err))
		return
	}
	j.deliver(s.execute(j, batchSize, wait), nil)
}

// fail delivers ErrClosed to every job in the slice that has not started.
func (s *Service) fail(jobs []*job) {
	for _, j := range jobs {
		if j.state.CompareAndSwap(stateQueued, stateRunning) {
			s.m.QueueDepth.Add(-1)
			j.deliver(Response{}, ErrClosed)
		}
	}
}

// drain flushes the queue at shutdown, failing everything still parked.
func (s *Service) drain() {
	for {
		it, ok := s.sched.Pop()
		if !ok {
			return
		}
		s.fail([]*job{it.Value.(*job)})
	}
}
