package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// okOutcomes is the ladder's terminal taxonomy: every classified response
// must carry one of these, or the service leaked an unverified result.
var okOutcomes = map[string]bool{"corrected": true, "restarted": true, "aborted": true}

func newTestService(t *testing.T, cfg Config) *Service {
	t.Helper()
	s := New(cfg)
	t.Cleanup(s.Close)
	return s
}

// TestOutcomeTaxonomyConcurrent is the headline contract under -race:
// concurrent fault-injected requests across kernels and ECC strategies all
// terminate in an oracle-gated outcome — zero wrong answers, zero panics —
// and the expvar counters reconcile with the responses.
func TestOutcomeTaxonomyConcurrent(t *testing.T) {
	s := newTestService(t, Config{
		MaxConcurrency: 4,
		QueueDepth:     64,
		QueueTimeout:   time.Minute,
	})

	reqs := []Request{
		{Kernel: "gemm", N: 48, Strategy: "W_CK", Seed: 11, Faults: 1},
		{Kernel: "gemm", N: 48, Strategy: "P_CK+No_ECC", Seed: 12, Faults: 2, FaultKind: "chip-failure"},
		{Kernel: "gemm", N: 64, Strategy: "P_CK+P_SD", Seed: 13, Faults: 1, FaultKind: "double-bit"},
		{Kernel: "gemm", N: 48, Seed: 14},
		{Kernel: "cholesky", N: 32, Strategy: "W_SD", Seed: 15, Faults: 1},
		{Kernel: "cholesky", N: 32, Strategy: "P_SD+No_ECC", Seed: 16, Faults: 2, FaultKind: "scattered"},
		{Kernel: "cholesky", N: 48, Seed: 17},
		{Kernel: "cg", NX: 8, NY: 8, Strategy: "No_ECC", Seed: 18, Faults: 1},
		{Kernel: "cg", NX: 8, NY: 8, Strategy: "W_CK", Seed: 19},
	}
	const rounds = 3

	var wg sync.WaitGroup
	resps := make([]Response, len(reqs)*rounds)
	errs := make([]error, len(reqs)*rounds)
	for round := 0; round < rounds; round++ {
		for i, req := range reqs {
			wg.Add(1)
			go func(slot int, req Request, seedBump uint64) {
				defer wg.Done()
				req.Seed += seedBump * 100
				resps[slot], errs[slot] = s.Do(context.Background(), req)
			}(round*len(reqs)+i, req, uint64(round))
		}
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: unexpected error %v", i, err)
		}
		r := resps[i]
		if !okOutcomes[r.Outcome] {
			t.Fatalf("request %d: outcome %q outside the ladder taxonomy (resp %+v)", i, r.Outcome, r)
		}
		if r.Outcome == "aborted" && r.Error == "" {
			t.Errorf("request %d: aborted without a reason", i)
		}
	}

	m := s.m
	total := int64(len(reqs) * rounds)
	if got := m.Accepted.Value(); got != total {
		t.Errorf("accepted = %d, want %d", got, total)
	}
	if got := m.Corrected.Value() + m.Restarted.Value() + m.Aborted.Value(); got != total {
		t.Errorf("classified = %d, want %d", got, total)
	}
	if m.QueueDepth.Value() != 0 || m.Running.Value() != 0 {
		t.Errorf("residual load: depth=%d running=%d", m.QueueDepth.Value(), m.Running.Value())
	}
}

// TestFaultFreeIsCorrected pins the quiet path: no injected faults means
// Corrected with zero ladder traffic, for every kernel.
func TestFaultFreeIsCorrected(t *testing.T) {
	s := newTestService(t, Config{MaxConcurrency: 2, QueueDepth: 8})
	for _, req := range []Request{
		{Kernel: "gemm", N: 32, Seed: 5},
		{Kernel: "cholesky", N: 32, Seed: 6},
		{Kernel: "cg", NX: 8, NY: 8, Seed: 7},
	} {
		resp, err := s.Do(context.Background(), req)
		if err != nil {
			t.Fatalf("%s: %v", req.Kernel, err)
		}
		if resp.Outcome != "corrected" || resp.Restarts != 0 || resp.Injected != 0 {
			t.Errorf("%s: fault-free run got %+v", req.Kernel, resp)
		}
		if resp.BatchSize != 1 {
			t.Errorf("%s: batch size %d without batching enabled", req.Kernel, resp.BatchSize)
		}
	}
}

// TestDeterministicReplay: same seed, same request → same classification
// and same fault/correction counts, the serving analogue of the soak
// determinism contract.
func TestDeterministicReplay(t *testing.T) {
	s := newTestService(t, Config{MaxConcurrency: 1, QueueDepth: 4})
	req := Request{Kernel: "gemm", N: 48, Strategy: "P_CK+No_ECC", Seed: 42, Faults: 2, FaultKind: "chip-failure"}
	first, err := s.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := s.Do(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if again.Outcome != first.Outcome || again.Injected != first.Injected ||
			again.Corrections != first.Corrections || again.Restarts != first.Restarts {
			t.Fatalf("replay %d diverged: first %+v, again %+v", i, first, again)
		}
	}
}

// TestOverloadRejection fills every concurrency slot by hand, stuffs the
// queue, and asserts the next request is shed with ErrOverloaded — typed,
// immediate, no queue collapse.
func TestOverloadRejection(t *testing.T) {
	s := newTestService(t, Config{MaxConcurrency: 1, QueueDepth: 2, QueueTimeout: time.Minute})
	// Occupy the only execution slot so nothing drains the queue.
	s.sem <- struct{}{}
	defer func() { <-s.sem }()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	start := make(chan struct{})
	results := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			<-start
			_, err := s.Do(ctx, Request{Kernel: "gemm", N: 16, Seed: seed})
			results <- err
		}(uint64(i))
	}
	close(start)

	// Rejections are synchronous; the accepted requests stay parked in the
	// queue (depth 2, plus the job the dispatcher holds at the semaphore),
	// so collect until a lull.
	overloaded := 0
collect:
	for overloaded < 8 {
		select {
		case err := <-results:
			if !errors.Is(err, ErrOverloaded) {
				t.Fatalf("unexpected result while stalled: %v", err)
			}
			overloaded++
		case <-time.After(500 * time.Millisecond):
			break collect
		}
	}
	if overloaded < 5 {
		t.Fatalf("only %d of 8 requests were shed with queue depth 2", overloaded)
	}
	if got := s.m.Rejected.Value(); int(got) < overloaded {
		t.Errorf("rejected counter %d, want >= %d", got, overloaded)
	}
	cancel() // release the parked waiters as queue timeouts
	wg.Wait()
}

// TestQueueTimeout parks a request behind a blocked semaphore with a short
// deadline and asserts the typed ErrQueueTimeout path.
func TestQueueTimeout(t *testing.T) {
	s := newTestService(t, Config{MaxConcurrency: 1, QueueDepth: 4, QueueTimeout: time.Minute})
	s.sem <- struct{}{}
	defer func() { <-s.sem }()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := s.Do(ctx, Request{Kernel: "gemm", N: 16, Seed: 1})
	if !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("err = %v, want ErrQueueTimeout", err)
	}
	if got := s.m.QueueTimeouts.Value(); got != 1 {
		t.Errorf("queue timeout counter = %d, want 1", got)
	}
}

// TestBatchingCoalesces sends compatible small GEMMs inside one batch
// window and asserts they shared an execution batch.
func TestBatchingCoalesces(t *testing.T) {
	s := newTestService(t, Config{
		MaxConcurrency: 1,
		QueueDepth:     16,
		BatchWindow:    300 * time.Millisecond,
		MaxBatch:       4,
	})
	const n = 4
	var wg sync.WaitGroup
	resps := make([]Response, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var err error
			resps[i], err = s.Do(context.Background(),
				Request{Kernel: "gemm", N: 32, Seed: uint64(i)})
			if err != nil {
				t.Errorf("request %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	batched := 0
	for _, r := range resps {
		if r.BatchSize > 1 {
			batched++
		}
	}
	if batched == 0 {
		t.Fatalf("no request shared a batch: %+v", resps)
	}
	if got := s.m.BatchedRequests.Value(); got == 0 {
		t.Error("BatchedRequests counter stayed zero")
	}
}

// TestBatchingKeepsIncompatibleApart: different strategies must not share
// a batch even inside one window.
func TestBatchingKeepsIncompatibleApart(t *testing.T) {
	a := Parsed{Kernel: KernelGEMM, N: 32, Strategy: DefaultStrategy}
	b := a
	b.Strategy = 0 // No_ECC
	if compatible(a, b) {
		t.Error("different strategies reported compatible")
	}
	c := a
	c.N = 64
	if compatible(a, c) {
		t.Error("different sizes reported compatible")
	}
	d := a
	d.Kernel = KernelCholesky
	if compatible(a, d) || compatible(d, d) {
		t.Error("non-GEMM kernels must never batch")
	}
	if !compatible(a, a) {
		t.Error("identical GEMM shapes must batch")
	}
}

// TestBadRequests walks the validation surface.
func TestBadRequests(t *testing.T) {
	s := newTestService(t, Config{MaxConcurrency: 1, QueueDepth: 2})
	for _, req := range []Request{
		{Kernel: "fft", N: 32},
		{Kernel: "gemm", N: 4},
		{Kernel: "gemm", N: 100000},
		{Kernel: "gemm", N: 32, Strategy: "TripleModular"},
		{Kernel: "gemm", N: 32, Faults: 99},
		{Kernel: "gemm", N: 32, Faults: 1, FaultKind: "gamma-ray"},
		{Kernel: "cg", NX: 1, NY: 1},
	} {
		if _, err := s.Do(context.Background(), req); !errors.Is(err, ErrBadRequest) {
			t.Errorf("%+v: err = %v, want ErrBadRequest", req, err)
		}
	}
	if got := s.m.BadRequests.Value(); got != 7 {
		t.Errorf("bad request counter = %d, want 7", got)
	}
}

// TestCloseRejectsNewWork: after Close, Do fails fast with ErrClosed.
func TestCloseRejectsNewWork(t *testing.T) {
	s := New(Config{MaxConcurrency: 1, QueueDepth: 2})
	s.Close()
	if _, err := s.Do(context.Background(), Request{Kernel: "gemm", N: 16}); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

// TestSnapshotCoversCounters keeps the /debug/vars payload in sync with
// the Metrics struct.
func TestSnapshotCoversCounters(t *testing.T) {
	var m Metrics
	m.Accepted.Add(3)
	m.RunMSSum.Add(1.5)
	snap := m.Snapshot()
	if snap["accepted"] != int64(3) {
		t.Errorf("snapshot accepted = %v", snap["accepted"])
	}
	if snap["run_ms_sum"] != 1.5 {
		t.Errorf("snapshot run_ms_sum = %v", snap["run_ms_sum"])
	}
	for k, v := range snap {
		switch v.(type) {
		case int64, float64:
		default:
			t.Errorf("snapshot[%q] has non-numeric type %T", k, v)
		}
	}
}

// TestKernelParse pins the wire names.
func TestKernelParse(t *testing.T) {
	for _, k := range Kernels {
		got, err := ParseKernel(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKernel(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKernel("fft"); !errors.Is(err, ErrBadRequest) {
		t.Errorf("ParseKernel(fft) err = %v, want ErrBadRequest", err)
	}
	if got := Kernel(9).String(); got != "Kernel(9)" {
		t.Errorf("Kernel(9).String() = %q", got)
	}
}

// TestF32RequestRules pins the mixed-precision admission contract: f32 is
// gemm-only, implies the fused verify mode, excludes the integrity tier,
// and a valid request echoes its dtype on the classified response.
func TestF32RequestRules(t *testing.T) {
	s := newTestService(t, Config{MaxConcurrency: 2, QueueDepth: 8})
	for _, req := range []Request{
		{Kernel: "cholesky", N: 32, Dtype: "f32"},
		{Kernel: "cg", NX: 8, NY: 8, Dtype: "f32"},
		{Kernel: "gemm", N: 32, Dtype: "f32", VerifyMode: "notified"},
		{Kernel: "gemm", N: 32, Dtype: "f32", VerifyMode: "full"},
		{Kernel: "gemm", N: 32, Dtype: "f32", Integrity: "vote"},
		{Kernel: "gemm", N: 32, Dtype: "f16"},
	} {
		if _, err := s.Do(context.Background(), req); !errors.Is(err, ErrBadRequest) {
			t.Errorf("%+v: err = %v, want ErrBadRequest", req, err)
		}
	}

	// Clean f32 run: dtype echoed, outcome classified.
	resp, err := s.Do(context.Background(), Request{Kernel: "gemm", N: 32, Dtype: "f32", Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Dtype != "f32" || !okOutcomes[resp.Outcome] {
		t.Fatalf("resp dtype %q outcome %q", resp.Dtype, resp.Outcome)
	}
	// Fault-injected f32 run: the ladder still never delivers an
	// unclassified answer, and the injection is visible.
	resp, err = s.Do(context.Background(), Request{
		Kernel: "gemm", N: 48, Dtype: "f32", Seed: 9, Faults: 2, FaultKind: "single-bit",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !okOutcomes[resp.Outcome] {
		t.Fatalf("faulted f32 outcome %q", resp.Outcome)
	}
	if resp.Injected == 0 {
		t.Error("faulted f32 run reports zero injected faults")
	}
	// f64 responses must not grow a dtype field (wire compatibility).
	resp, err = s.Do(context.Background(), Request{Kernel: "gemm", N: 32, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Dtype != "" {
		t.Errorf("f64 response carries dtype %q", resp.Dtype)
	}
}

// TestTenantAndPriorityParsing pins the QoS wire fields: tenant charset
// enforcement, explicit priority parsing, and the W_*-speculative /
// P_*-protected default derived from the ECC class.
func TestTenantAndPriorityParsing(t *testing.T) {
	s := newTestService(t, Config{MaxConcurrency: 2, QueueDepth: 8})
	for _, req := range []Request{
		{Kernel: "gemm", N: 32, Tenant: "no spaces"},
		{Kernel: "gemm", N: 32, Tenant: "sl/ash"},
		{Kernel: "gemm", N: 32, Priority: "urgent"},
	} {
		if _, err := s.Do(context.Background(), req); !errors.Is(err, ErrBadRequest) {
			t.Errorf("%+v: err = %v, want ErrBadRequest", req, err)
		}
	}
	resp, err := s.Do(context.Background(), Request{Kernel: "gemm", N: 32, Tenant: "team-a.prod_1", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Tenant != "team-a.prod_1" {
		t.Errorf("tenant echo %q", resp.Tenant)
	}

	// Priority defaults follow the ECC class split.
	for _, tc := range []struct {
		strat, name string
		want        Priority
	}{
		{"w_ck", "", PrioritySpeculative},
		{"p_ck+p_sd", "", PriorityProtected},
		{"w_ck", "protected", PriorityProtected},
		{"p_ck+p_sd", "speculative", PrioritySpeculative},
	} {
		p, err := ParseRequest(Limits{MaxN: 256, MaxFaults: 8}, Request{Kernel: "gemm", N: 32, Strategy: tc.strat, Priority: tc.name})
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if p.Priority != tc.want {
			t.Errorf("strategy %s priority %q => %v, want %v", tc.strat, tc.name, p.Priority, tc.want)
		}
	}
}
