package serve

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"coopabft/internal/abft"
	"coopabft/internal/campaign"
	"coopabft/internal/core"
	"coopabft/internal/machine"
	"coopabft/internal/recovery"
)

// execute runs one admitted request through the recovery ladder and
// classifies it. Every request gets a fresh simulated node configured for
// its own ECC strategy — the per-request malloc_ecc decision — so
// concurrent requests share no machine state.
func (s *Service) execute(j *job, batchSize int, wait time.Duration) Response {
	s.m.Running.Add(1)
	defer s.m.Running.Add(-1)

	start := time.Now()
	var rep recovery.Report
	var w recovery.Workload
	if j.req.Dtype == DtypeF32 {
		rep = s.runLadder32(j)
	} else {
		rep, w = s.runLadder(j)
	}
	run := time.Since(start)

	resp := Response{
		Kernel:       j.req.Kernel.String(),
		N:            j.req.Size(),
		Strategy:     j.req.Strategy.String(),
		VerifyMode:   j.req.Mode.String(),
		Tenant:       j.req.Tenant,
		Outcome:      rep.Outcome.String(),
		Injected:     rep.Injected,
		HWCorrected:  int(rep.HWCorrected),
		Corrections:  rep.Corrections,
		Degradations: rep.Degradations,
		Restarts:     rep.Restarts,
		BatchSize:    batchSize,
		QueueMS:      float64(wait) / float64(time.Millisecond),
		RunMS:        float64(run) / float64(time.Millisecond),
	}
	if j.req.Dtype == DtypeF32 {
		resp.Dtype = j.req.Dtype.String()
	}
	if rep.Err != nil {
		resp.Error = rep.Err.Error()
	}
	s.stampIntegrity(&resp, j.req, rep, w)

	switch rep.Outcome {
	case recovery.Corrected:
		s.m.Corrected.Add(1)
	case recovery.Restarted:
		s.m.Restarted.Add(1)
	default:
		s.m.Aborted.Add(1)
	}
	s.m.Tenant(j.req.Tenant).Completed.Add(1)
	s.m.InjectedFaults.Add(int64(rep.Injected))
	s.m.ABFTCorrections.Add(int64(rep.Corrections))
	s.m.Restarts.Add(int64(rep.Restarts))
	s.m.QueueMSSum.Add(resp.QueueMS)
	s.m.RunMSSum.Add(resp.RunMS)
	return resp
}

// runLadder builds runtime + workload + injection plan and drives the
// coordinator under a panic guard: a kernel panic becomes an Aborted
// classification, never a crashed worker. The workload is returned
// alongside the report so the integrity tier can fingerprint its answer
// state; it is nil when construction failed or the kernel panicked.
func (s *Service) runLadder(j *job) (rep recovery.Report, w recovery.Workload) {
	defer func() {
		if p := recover(); p != nil {
			rep = recovery.Report{Outcome: recovery.Aborted,
				Err: fmt.Errorf("serve: kernel panicked: %v", p)}
			w = nil
		}
	}()

	p := j.req
	rt := core.NewRuntime(machine.ScaledConfig(32), p.Strategy, int64(p.Seed))
	var err error
	switch p.Kernel {
	case KernelCholesky:
		w, err = recovery.NewCholeskyWorkload(rt, p.N, p.Seed)
	case KernelCG:
		w, err = recovery.NewCGWorkload(rt, p.NX, p.NY, p.Seed)
	default:
		w, err = recovery.NewDGEMMWorkload(rt, p.N, p.Seed, p.Mode)
	}
	if err != nil {
		return recovery.Report{Outcome: recovery.Aborted, Err: err}, nil
	}

	co := &recovery.Coordinator{
		RT:          rt,
		W:           w,
		Plan:        injectionPlan(p, w),
		MaxRestarts: s.cfg.MaxRestarts,
		Ctx:         j.ctx,
	}
	return co.Run(), w
}

// stampIntegrity attaches the canonical answer signature (and, for
// verify-vote, the packed answer itself) to a non-aborted response of an
// integrity-tier request. Requests with integrity=none skip all of this —
// the hot path computes no signatures. The Byzantine lie fixture lives
// here: a lying node corrupts the copy it fingerprints, so the wire
// response is well-formed and internally consistent (signature matches the
// shipped answer) but wrong — exactly the adversary replica voting exists
// to out-vote.
func (s *Service) stampIntegrity(resp *Response, p Parsed, rep recovery.Report, w recovery.Workload) {
	if p.Integrity == IntegrityNone || rep.Outcome == recovery.Aborted {
		return
	}
	aw, ok := w.(recovery.Answerer)
	if !ok {
		// Structurally unreachable: every served kernel implements
		// Answerer. Deliver as aborted rather than as an unsigned answer.
		resp.Outcome = recovery.Aborted.String()
		resp.Error = fmt.Sprintf("serve: %s workload exposes no answer data for integrity %s", p.Kernel, p.Integrity)
		return
	}
	chunks := aw.AnswerData()
	if s.lies(p.Seed) {
		chunks = corruptAnswer(chunks, s.cfg.LieSeed)
		s.m.ByzantineLies.Add(1)
	}
	resp.Integrity = p.Integrity.String()
	resp.AnswerSig = abft.AnswerSig(chunks...)
	if p.Integrity == IntegrityVerifyVote {
		// Ship the claimed product so verifier nodes can replicate the
		// O(n²) check against these exact bytes (gemm-only by admission).
		resp.Answer = packChunks(chunks)
	}
}

// lies draws the Byzantine lottery for one request: a pure function of
// (LieSeed, request seed), so a lying node lies identically on replay and
// distinct requests draw independently.
func (s *Service) lies(seed uint64) bool {
	if s.cfg.LieFraction <= 0 {
		return false
	}
	draw := campaign.Splitmix64(s.cfg.LieSeed ^ seed ^ 0x9e3779b97f4a7c15)
	return float64(draw)/float64(^uint64(0)) < s.cfg.LieFraction
}

// corruptAnswer deep-copies the answer chunks and perturbs one element —
// a plausible, finite, well-formed wrong answer (not NaN garbage a client
// would spot without voting). The perturbation magnitude derives from the
// node's LieSeed, so independent liars tell different lies: two Byzantine
// nodes only outvote an honest one by actually colluding (same LieSeed),
// never by accident of the fixture.
func corruptAnswer(chunks [][]float64, lieSeed uint64) [][]float64 {
	out := make([][]float64, len(chunks))
	for i, c := range chunks {
		out[i] = append([]float64(nil), c...)
	}
	if len(out) > 0 && len(out[0]) > 0 {
		out[0][0] = -(out[0][0] + 1.5 + float64(campaign.Splitmix64(lieSeed)%4096))
	}
	return out
}

// packChunks serializes answer chunks as little-endian IEEE-754 bit
// patterns in chunk order — the same exact-bits encoding abft.PackBlock
// uses, so for an n×n answer the bytes equal PackBlock of the matrix.
func packChunks(chunks [][]float64) []byte {
	n := 0
	for _, c := range chunks {
		n += len(c)
	}
	out := make([]byte, 8*n)
	off := 0
	for _, c := range chunks {
		for _, v := range c {
			binary.LittleEndian.PutUint64(out[off:], math.Float64bits(v))
			off += 8
		}
	}
	return out
}

// injectionPlan derives the request's fault schedule from its seed — the
// same splitmix stream discipline the soak harness uses, so a request
// replayed with the same seed injects the same faults at the same ticks.
func injectionPlan(p Parsed, w recovery.Workload) []recovery.Injection {
	if p.Faults <= 0 {
		return nil
	}
	targets := w.InjectTargets()
	steps := w.Steps()
	st := p.Seed
	next := func() uint64 { st++; return campaign.Splitmix64(st) }
	plan := make([]recovery.Injection, 0, p.Faults)
	for e := 0; e < p.Faults; e++ {
		ti := int(next() % uint64(len(targets)))
		plan = append(plan, recovery.Injection{
			Tick:   int(next() % uint64(steps)),
			Kind:   p.Kind,
			Target: ti,
			Elem:   int(next() % uint64(len(targets[ti].T.Data))),
		})
	}
	return plan
}
