package serve

import (
	"fmt"
	"time"

	"coopabft/internal/campaign"
	"coopabft/internal/core"
	"coopabft/internal/machine"
	"coopabft/internal/recovery"
)

// execute runs one admitted request through the recovery ladder and
// classifies it. Every request gets a fresh simulated node configured for
// its own ECC strategy — the per-request malloc_ecc decision — so
// concurrent requests share no machine state.
func (s *Service) execute(j *job, batchSize int, wait time.Duration) Response {
	s.m.Running.Add(1)
	defer s.m.Running.Add(-1)

	start := time.Now()
	rep := s.runLadder(j)
	run := time.Since(start)

	resp := Response{
		Kernel:       j.req.Kernel.String(),
		N:            j.req.Size(),
		Strategy:     j.req.Strategy.String(),
		VerifyMode:   j.req.Mode.String(),
		Outcome:      rep.Outcome.String(),
		Injected:     rep.Injected,
		HWCorrected:  int(rep.HWCorrected),
		Corrections:  rep.Corrections,
		Degradations: rep.Degradations,
		Restarts:     rep.Restarts,
		BatchSize:    batchSize,
		QueueMS:      float64(wait) / float64(time.Millisecond),
		RunMS:        float64(run) / float64(time.Millisecond),
	}
	if rep.Err != nil {
		resp.Error = rep.Err.Error()
	}

	switch rep.Outcome {
	case recovery.Corrected:
		s.m.Corrected.Add(1)
	case recovery.Restarted:
		s.m.Restarted.Add(1)
	default:
		s.m.Aborted.Add(1)
	}
	s.m.InjectedFaults.Add(int64(rep.Injected))
	s.m.ABFTCorrections.Add(int64(rep.Corrections))
	s.m.Restarts.Add(int64(rep.Restarts))
	s.m.QueueMSSum.Add(resp.QueueMS)
	s.m.RunMSSum.Add(resp.RunMS)
	return resp
}

// runLadder builds runtime + workload + injection plan and drives the
// coordinator under a panic guard: a kernel panic becomes an Aborted
// classification, never a crashed worker.
func (s *Service) runLadder(j *job) (rep recovery.Report) {
	defer func() {
		if p := recover(); p != nil {
			rep = recovery.Report{Outcome: recovery.Aborted,
				Err: fmt.Errorf("serve: kernel panicked: %v", p)}
		}
	}()

	p := j.req
	rt := core.NewRuntime(machine.ScaledConfig(32), p.Strategy, int64(p.Seed))
	var w recovery.Workload
	var err error
	switch p.Kernel {
	case KernelCholesky:
		w, err = recovery.NewCholeskyWorkload(rt, p.N, p.Seed)
	case KernelCG:
		w, err = recovery.NewCGWorkload(rt, p.NX, p.NY, p.Seed)
	default:
		w, err = recovery.NewDGEMMWorkload(rt, p.N, p.Seed, p.Mode)
	}
	if err != nil {
		return recovery.Report{Outcome: recovery.Aborted, Err: err}
	}

	co := &recovery.Coordinator{
		RT:          rt,
		W:           w,
		Plan:        injectionPlan(p, w),
		MaxRestarts: s.cfg.MaxRestarts,
		Ctx:         j.ctx,
	}
	return co.Run()
}

// injectionPlan derives the request's fault schedule from its seed — the
// same splitmix stream discipline the soak harness uses, so a request
// replayed with the same seed injects the same faults at the same ticks.
func injectionPlan(p Parsed, w recovery.Workload) []recovery.Injection {
	if p.Faults <= 0 {
		return nil
	}
	targets := w.InjectTargets()
	steps := w.Steps()
	st := p.Seed
	next := func() uint64 { st++; return campaign.Splitmix64(st) }
	plan := make([]recovery.Injection, 0, p.Faults)
	for e := 0; e < p.Faults; e++ {
		ti := int(next() % uint64(len(targets)))
		plan = append(plan, recovery.Injection{
			Tick:   int(next() % uint64(steps)),
			Kind:   p.Kind,
			Target: ti,
			Elem:   int(next() % uint64(len(targets[ti].T.Data))),
		})
	}
	return plan
}
