package serve

import (
	"context"
	"encoding/binary"
	"errors"
	"math"
	"testing"
	"time"

	"coopabft/internal/abft"
)

func testLimits() Limits { return Limits{MaxN: 192, MaxFaults: 8} }

// TestParseIntegrityAdmission: the integrity wire fields share the single
// ErrBadRequest taxonomy — unknown modes, verify-vote off gemm, and
// replica counts without a mode (or beyond the cap) are all typed 400s.
func TestParseIntegrityAdmission(t *testing.T) {
	cases := []struct {
		name string
		req  Request
		ok   bool
	}{
		{"default none", Request{Kernel: "gemm", N: 48}, true},
		{"vote gemm", Request{Kernel: "gemm", N: 48, Integrity: "vote", Replicas: 3}, true},
		{"vote cg", Request{Kernel: "cg", NX: 8, NY: 8, Integrity: "vote"}, true},
		{"verify-vote gemm", Request{Kernel: "gemm", N: 48, Integrity: "verify-vote"}, true},
		{"unknown integrity", Request{Kernel: "gemm", N: 48, Integrity: "paxos"}, false},
		{"verify-vote cholesky", Request{Kernel: "cholesky", N: 32, Integrity: "verify-vote"}, false},
		{"verify-vote cg", Request{Kernel: "cg", NX: 8, NY: 8, Integrity: "verify-vote"}, false},
		{"replicas without integrity", Request{Kernel: "gemm", N: 48, Replicas: 3}, false},
		{"replicas beyond cap", Request{Kernel: "gemm", N: 48, Integrity: "vote", Replicas: MaxReplicas + 1}, false},
		{"negative replicas", Request{Kernel: "gemm", N: 48, Integrity: "vote", Replicas: -1}, false},
	}
	for _, tc := range cases {
		_, err := ParseRequest(testLimits(), tc.req)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && !errors.Is(err, ErrBadRequest) {
			t.Errorf("%s: err = %v, want ErrBadRequest", tc.name, err)
		}
	}
}

// TestBatchNeverMixesIntegrity: requests in different integrity modes must
// not coalesce — a voting request batched with a none request would either
// compute signatures on the hot path or skip them for a voter.
func TestBatchNeverMixesIntegrity(t *testing.T) {
	base := Request{Kernel: "gemm", N: 48, Seed: 1}
	none, err := ParseRequest(testLimits(), base)
	if err != nil {
		t.Fatal(err)
	}
	voted := base
	voted.Integrity = "vote"
	v, err := ParseRequest(testLimits(), voted)
	if err != nil {
		t.Fatal(err)
	}
	if !compatible(none, none) {
		t.Fatal("identical requests must be batch-compatible")
	}
	if compatible(none, v) || compatible(v, none) {
		t.Error("none and vote requests coalesced into one batch")
	}
}

// TestIntegrityStamping: a voting request carries the canonical signature,
// verify-vote additionally ships the packed answer, and the integrity=none
// hot path carries neither.
func TestIntegrityStamping(t *testing.T) {
	s := newTestService(t, Config{MaxConcurrency: 2, QueueDepth: 16, QueueTimeout: time.Minute})
	ctx := context.Background()

	plain, err := s.Do(ctx, Request{Kernel: "gemm", N: 48, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if plain.AnswerSig != "" || plain.Answer != nil || plain.Integrity != "" {
		t.Errorf("integrity=none response carries integrity fields: %+v", plain)
	}

	vote, err := s.Do(ctx, Request{Kernel: "gemm", N: 48, Seed: 7, Integrity: "vote"})
	if err != nil {
		t.Fatal(err)
	}
	if vote.Integrity != "vote" || vote.AnswerSig == "" || vote.Answer != nil {
		t.Errorf("vote response = %+v, want signature and no payload", vote)
	}
	if vote.Outcome != plain.Outcome {
		t.Errorf("integrity changed the outcome: %q vs %q", vote.Outcome, plain.Outcome)
	}

	vv, err := s.Do(ctx, Request{Kernel: "gemm", N: 48, Seed: 7, Integrity: "verify-vote"})
	if err != nil {
		t.Fatal(err)
	}
	if vv.AnswerSig != vote.AnswerSig {
		t.Errorf("same seed, different signatures: %s vs %s", vv.AnswerSig, vote.AnswerSig)
	}
	if len(vv.Answer) != 48*48*8 {
		t.Fatalf("verify-vote answer = %d bytes, want %d", len(vv.Answer), 48*48*8)
	}
	// The shipped bytes must hash to the shipped signature (the binding
	// verifiers check).
	c, err := abft.UnpackBlock(48, 48, vv.Answer)
	if err != nil {
		t.Fatal(err)
	}
	if got := abft.BitDigest(c); got != vv.AnswerSig {
		t.Errorf("shipped answer hashes to %s, signature claims %s", got, vv.AnswerSig)
	}

	// Cholesky and CG sign too — vote covers every kernel.
	for _, req := range []Request{
		{Kernel: "cholesky", N: 32, Seed: 9, Integrity: "vote"},
		{Kernel: "cg", NX: 8, NY: 8, Seed: 9, Integrity: "vote"},
	} {
		resp, err := s.Do(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Outcome != "aborted" && resp.AnswerSig == "" {
			t.Errorf("%s vote response unsigned: %+v", req.Kernel, resp)
		}
	}
}

// TestByzantineLieFixture: a lying node produces a well-formed, internally
// consistent (signature matches payload) but WRONG answer — deterministic
// per (LieSeed, request seed) — and never perturbs integrity=none traffic.
func TestByzantineLieFixture(t *testing.T) {
	honest := newTestService(t, Config{MaxConcurrency: 2, QueueDepth: 16, QueueTimeout: time.Minute})
	liar := newTestService(t, Config{MaxConcurrency: 2, QueueDepth: 16, QueueTimeout: time.Minute,
		LieFraction: 1, LieSeed: 42})
	ctx := context.Background()
	req := Request{Kernel: "gemm", N: 48, Seed: 13, Integrity: "verify-vote"}

	h, err := honest.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	l1, err := liar.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := liar.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if abft.SameAnswer(l1.AnswerSig, h.AnswerSig) {
		t.Error("liar's signature matches the honest answer — no lie happened")
	}
	if l1.AnswerSig != l2.AnswerSig {
		t.Errorf("lie not deterministic on replay: %s vs %s", l1.AnswerSig, l2.AnswerSig)
	}
	// Internally consistent: the corrupted payload hashes to the corrupted
	// signature, so only cross-node voting can catch it.
	c, err := abft.UnpackBlock(48, 48, l1.Answer)
	if err != nil {
		t.Fatal(err)
	}
	if got := abft.BitDigest(c); got != l1.AnswerSig {
		t.Errorf("liar's payload hashes to %s, claims %s — lie is malformed, not Byzantine", got, l1.AnswerSig)
	}
	if liar.m.ByzantineLies.Value() != 2 {
		t.Errorf("byzantine_lies = %d, want 2", liar.m.ByzantineLies.Value())
	}

	// integrity=none is never touched by the fixture: no signature is
	// computed, so there is nothing to corrupt.
	plain, err := liar.Do(ctx, Request{Kernel: "gemm", N: 48, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if plain.AnswerSig != "" || plain.Answer != nil {
		t.Errorf("lie fixture leaked into integrity=none: %+v", plain)
	}
}

// TestDoVerify: the replicated verification pass accepts the primary's
// honest product, refutes a payload that does not hash to the claimed
// signature (binding), and refutes an internally consistent lie via the
// checksum probes.
func TestDoVerify(t *testing.T) {
	s := newTestService(t, Config{MaxConcurrency: 2, QueueDepth: 16, QueueTimeout: time.Minute})
	ctx := context.Background()
	resp, err := s.Do(ctx, Request{Kernel: "gemm", N: 48, Seed: 21, Integrity: "verify-vote"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Outcome == "aborted" {
		t.Fatalf("fixture run aborted: %s", resp.Error)
	}
	task := VerifyTask{Kernel: "gemm", N: 48, Seed: 21, Sig: resp.AnswerSig, Answer: resp.Answer}

	res, err := s.DoVerify(ctx, task)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || res.Sig != resp.AnswerSig {
		t.Fatalf("honest product refuted: %+v", res)
	}

	// Binding violation: flip a payload byte, keep the claimed signature.
	bound := task
	bound.Answer = append([]byte(nil), task.Answer...)
	bound.Answer[0] ^= 0x01
	res, err = s.DoVerify(ctx, bound)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK || res.Reason == "" {
		t.Errorf("binding violation accepted: %+v", res)
	}

	// Internally consistent lie: corrupt the product ABOVE the probe
	// tolerance AND re-sign it — the shape a lying primary actually ships.
	// Only the probe algebra can catch this one.
	lie := task
	lie.Answer = append([]byte(nil), task.Answer...)
	orig := math.Float64frombits(binary.LittleEndian.Uint64(lie.Answer[:8]))
	binary.LittleEndian.PutUint64(lie.Answer[:8], math.Float64bits(-(orig + 2.5)))
	c, err := abft.UnpackBlock(48, 48, lie.Answer)
	if err != nil {
		t.Fatal(err)
	}
	lie.Sig = abft.BitDigest(c)
	res, err = s.DoVerify(ctx, lie)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK || res.Reason == "" {
		t.Errorf("consistent lie accepted: %+v", res)
	}

	// Admission taxonomy: non-gemm and malformed payloads are typed 400s.
	if _, err := s.DoVerify(ctx, VerifyTask{Kernel: "cholesky", N: 32, Sig: "x"}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("cholesky verify task: err = %v, want ErrBadRequest", err)
	}
	short := task
	short.Answer = task.Answer[:8]
	if _, err := s.DoVerify(ctx, short); !errors.Is(err, ErrBadRequest) {
		t.Errorf("short payload: err = %v, want ErrBadRequest", err)
	}
	if got := s.m.VerifyRefuted.Value(); got != 2 {
		t.Errorf("verify_refuted = %d, want 2", got)
	}
}
