package serve

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Event types carried on the error bus. Workers publish fault-path events
// as they happen; the gateway relays every node's stream onto its own bus
// (stamping Node), so subscribers see cluster-wide fault traffic pushed at
// fault time instead of discovered by the next health probe.
const (
	// EventPanelFault: a run leg failed inside the ladder (ABFT escalation
	// or OS panic) before any rollback decision.
	EventPanelFault = "panel_fault"
	// EventLadderEscalation: the ladder rolled back to a checkpoint and is
	// replaying from the reported step.
	EventLadderEscalation = "ladder_escalation"
	// EventCheckpoint: a checkpoint was committed at the reported step.
	EventCheckpoint = "checkpoint_committed"
	// EventJobResumed: a long job started executing, at Step 0 (fresh) or
	// the shipped snapshot's step (after a migration).
	EventJobResumed = "job_resumed"
	// EventJobDone: a long job reached a terminal classification.
	EventJobDone = "job_done"
	// EventNodeDeath: the gateway lost a node's event stream or saw its
	// transport die — published by the gateway, not by workers.
	EventNodeDeath = "node_death"
)

// Event is one typed fault-path occurrence on the bus.
type Event struct {
	Seq    uint64 `json:"seq"`
	TimeMS int64  `json:"time_ms"` // unix milliseconds at publish
	Type   string `json:"type"`
	Job    string `json:"job,omitempty"`
	Node   string `json:"node,omitempty"`
	Step   int    `json:"step,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// Bus is the in-process error bus: a bounded replay ring plus non-blocking
// fan-out to subscribers. Publish never blocks the compute path — a slow
// subscriber loses events (counted), it does not stall a solve.
type Bus struct {
	mu      sync.Mutex
	seq     uint64
	ring    []Event
	n       int // ring occupancy
	next    int // ring write cursor
	subs    map[int]chan Event
	subID   int
	dropped int64
}

// NewBus builds a bus with the given replay-ring capacity (default 256).
func NewBus(capacity int) *Bus {
	if capacity <= 0 {
		capacity = 256
	}
	return &Bus{ring: make([]Event, capacity), subs: map[int]chan Event{}}
}

// Publish stamps the event (Seq, TimeMS) and delivers it to the ring and
// every subscriber that has buffer room. Returns the stamped event.
func (b *Bus) Publish(e Event) Event {
	b.mu.Lock()
	b.seq++
	e.Seq = b.seq
	if e.TimeMS == 0 {
		e.TimeMS = time.Now().UnixMilli()
	}
	b.ring[b.next] = e
	b.next = (b.next + 1) % len(b.ring)
	if b.n < len(b.ring) {
		b.n++
	}
	for _, ch := range b.subs {
		select {
		case ch <- e:
		default:
			b.dropped++
		}
	}
	b.mu.Unlock()
	return e
}

// Subscribe registers a buffered listener; cancel unregisters it. Events
// that overflow the buffer are dropped (and counted), never blocked on.
func (b *Bus) Subscribe(buf int) (<-chan Event, func()) {
	if buf <= 0 {
		buf = 64
	}
	ch := make(chan Event, buf)
	b.mu.Lock()
	b.subID++
	id := b.subID
	b.subs[id] = ch
	b.mu.Unlock()
	return ch, func() {
		b.mu.Lock()
		delete(b.subs, id)
		b.mu.Unlock()
	}
}

// Recent returns up to n most-recent events, oldest first.
func (b *Bus) Recent(n int) []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	if n <= 0 || n > b.n {
		n = b.n
	}
	out := make([]Event, 0, n)
	start := b.next - n
	if start < 0 {
		start += len(b.ring)
	}
	for i := 0; i < n; i++ {
		out = append(out, b.ring[(start+i)%len(b.ring)])
	}
	return out
}

// Dropped reports events lost to slow subscribers.
func (b *Bus) Dropped() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// Published reports the total events published.
func (b *Bus) Published() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.seq
}

// ServeEventStream streams a bus as newline-delimited JSON until the client
// disconnects or quit closes. ?replay=N prepends up to N buffered events
// (default 0); live events follow, deduplicated against the replay by
// sequence number. Both the worker's /v1/events and the gateway's re-export
// use this handler body.
func ServeEventStream(w http.ResponseWriter, r *http.Request, b *Bus, quit <-chan struct{}) {
	replay := 0
	if v := r.URL.Query().Get("replay"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, "bad_request", "replay must be a non-negative integer")
			return
		}
		replay = n
	}
	fl, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)

	// Subscribe before replaying so no event falls between the two.
	ch, cancel := b.Subscribe(256)
	defer cancel()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	var lastSeq uint64
	for _, e := range b.Recent(replay) {
		_ = enc.Encode(e)
		lastSeq = e.Seq
	}
	bw.Flush()
	if fl != nil {
		fl.Flush()
	}
	for {
		select {
		case e := <-ch:
			if e.Seq <= lastSeq {
				continue
			}
			lastSeq = e.Seq
			if err := enc.Encode(e); err != nil {
				return
			}
			bw.Flush()
			if fl != nil {
				fl.Flush()
			}
		case <-r.Context().Done():
			return
		case <-quit:
			return
		}
	}
}
