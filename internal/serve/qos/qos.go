// Package qos is the multi-tenant admission subsystem for the serving
// layer: per-tenant token-bucket quotas, weighted-fair queueing across
// tenants, and priority load-shedding that sacrifices speculative work
// before protected work.
//
// The serving layer used to have one FIFO channel shared by every caller —
// a single flooding client could starve everyone, and the only backpressure
// was a blanket 429 once the channel filled. qos replaces that with three
// cooperating mechanisms:
//
//   - Token buckets (per tenant) reject a tenant's own excess at the door
//     with a computed Retry-After, before it consumes queue space.
//   - Weighted-fair queueing orders admitted work by virtual finish tag, so
//     a burst from one tenant delays its own later requests, not other
//     tenants'.
//   - Load shedding: when the queue is full, an arriving protected request
//     evicts the speculative item with the largest finish tag (the one that
//     would have run last anyway); arriving speculative work is shed
//     outright.
//
// The scheduler is value-agnostic: serve wraps its jobs in Items and maps
// QuotaError/ErrQueueFull/evictions onto its own typed errors.
package qos

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"
)

// Class is the shed priority of an item. Protected work is never evicted in
// favour of speculative work; speculative work is the first to go under
// pressure.
type Class int

const (
	// Protected is end-user-visible work (checked strategies, P_* ladders).
	Protected Class = iota
	// Speculative is best-effort work (W_* write-back strategies, probes)
	// that the caller can cheaply regenerate.
	Speculative
)

func (c Class) String() string {
	switch c {
	case Protected:
		return "protected"
	case Speculative:
		return "speculative"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Item is one unit of admitted work.
type Item struct {
	Tenant string
	Class  Class
	Cost   float64 // WFQ service cost; <=0 is treated as 1
	Value  any     // opaque payload returned by Pop
}

// QuotaError reports a tenant exceeding its own token bucket. RetryAfter is
// when the bucket next has a whole token.
type QuotaError struct {
	Tenant     string
	RetryAfter time.Duration
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("qos: tenant %q over quota, retry after %s", e.Tenant, e.RetryAfter)
}

// ErrQueueFull reports an item shed because the queue is at capacity and
// nothing lower-priority could be evicted for it.
var ErrQueueFull = errors.New("qos: queue full")

// Config parameterises a Scheduler. The zero value of Rate disables quotas
// (every tenant is unmetered); Capacity must be positive.
type Config struct {
	Rate     float64            // default tokens/sec refill per tenant; <=0 disables quotas
	Burst    float64            // default bucket depth; <1 lifted to 1 when Rate>0
	Rates    map[string]float64 // per-tenant rate overrides
	Bursts   map[string]float64 // per-tenant burst overrides
	Weights  map[string]float64 // WFQ weights; default 1
	Capacity int                // max queued items across all tenants
	Now      func() time.Time   // injectable clock; nil means time.Now
}

// Quota is the standalone per-tenant token-bucket front: admission points
// that do their own queueing (the cluster gateway) use it at the door
// without the scheduler's queueing half. Safe for concurrent use.
type Quota struct {
	mu      sync.Mutex
	cfg     Config
	now     func() time.Time
	buckets map[string]*bucket
}

// NewQuota builds a quota front from the bucket-relevant Config fields
// (Rate, Burst, Rates, Bursts, Now).
func NewQuota(cfg Config) *Quota {
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	return &Quota{cfg: cfg, now: now, buckets: make(map[string]*bucket)}
}

// Take spends one token from the tenant's bucket, returning nil on success
// or a *QuotaError carrying the retry horizon.
func (q *Quota) Take(tenant string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	b, ok := q.buckets[tenant]
	if !ok {
		b = newBucket(q.cfg, tenant, q.now())
		q.buckets[tenant] = b
	}
	if ok, retry := b.take(q.now()); !ok {
		return &QuotaError{Tenant: tenant, RetryAfter: retry}
	}
	return nil
}

// newBucket resolves the per-tenant rate/burst overrides against the
// defaults and primes a full bucket.
func newBucket(cfg Config, tenant string, now time.Time) *bucket {
	rate, burst := cfg.Rate, cfg.Burst
	if r, ok := cfg.Rates[tenant]; ok {
		rate = r
	}
	if bu, ok := cfg.Bursts[tenant]; ok {
		burst = bu
	}
	if rate > 0 && burst < 1 {
		burst = 1
	}
	return &bucket{rate: rate, burst: burst, tokens: burst, last: now}
}

// bucket is a standard token bucket with lazy refill.
type bucket struct {
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

func (b *bucket) take(now time.Time) (ok bool, retry time.Duration) {
	if b.rate <= 0 {
		return true, 0
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(b.burst, b.tokens+dt*b.rate)
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	retry = time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
	return false, retry
}
