package qos

import (
	"errors"
	"testing"
	"time"
)

// fakeClock gives tests full control of bucket refill.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }

func newTest(cfg Config) (*Scheduler, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	cfg.Now = clk.now
	return New(cfg), clk
}

func TestTokenBucketQuota(t *testing.T) {
	s, clk := newTest(Config{Rate: 10, Burst: 2, Capacity: 100})
	for i := 0; i < 2; i++ {
		if _, err := s.Enqueue(Item{Tenant: "a"}); err != nil {
			t.Fatalf("burst request %d refused: %v", i, err)
		}
	}
	_, err := s.Enqueue(Item{Tenant: "a"})
	var qe *QuotaError
	if !errors.As(err, &qe) {
		t.Fatalf("over-burst request: got %v, want QuotaError", err)
	}
	if qe.RetryAfter <= 0 || qe.RetryAfter > 150*time.Millisecond {
		t.Fatalf("RetryAfter = %s, want ~100ms", qe.RetryAfter)
	}
	// Other tenants have their own buckets.
	if _, err := s.Enqueue(Item{Tenant: "b"}); err != nil {
		t.Fatalf("tenant b refused by tenant a's bucket: %v", err)
	}
	// Refill restores exactly rate*dt tokens.
	clk.advance(100 * time.Millisecond)
	if _, err := s.Enqueue(Item{Tenant: "a"}); err != nil {
		t.Fatalf("post-refill request refused: %v", err)
	}
	if _, err := s.Enqueue(Item{Tenant: "a"}); !errors.As(err, &qe) {
		t.Fatalf("second post-refill request: got %v, want QuotaError", err)
	}
}

func TestZeroRateDisablesQuota(t *testing.T) {
	s, _ := newTest(Config{Capacity: 1000})
	for i := 0; i < 500; i++ {
		if _, err := s.Enqueue(Item{Tenant: "a"}); err != nil {
			t.Fatalf("unmetered request %d refused: %v", i, err)
		}
	}
}

func TestWFQWeightedShare(t *testing.T) {
	s, _ := newTest(Config{Capacity: 100, Weights: map[string]float64{"heavy": 3, "light": 1}})
	for i := 0; i < 12; i++ {
		s.Enqueue(Item{Tenant: "heavy", Value: i})
	}
	for i := 0; i < 12; i++ {
		s.Enqueue(Item{Tenant: "light", Value: i})
	}
	// First 8 pops should split 6:2 — the 3:1 weight ratio — even though
	// heavy's burst arrived first.
	counts := map[string]int{}
	for i := 0; i < 8; i++ {
		it, ok := s.Pop()
		if !ok {
			t.Fatal("queue empty early")
		}
		counts[it.Tenant]++
	}
	if counts["heavy"] != 6 || counts["light"] != 2 {
		t.Fatalf("first 8 pops split %v, want heavy:6 light:2", counts)
	}
}

func TestPerTenantFIFO(t *testing.T) {
	s, _ := newTest(Config{Capacity: 100})
	for i := 0; i < 5; i++ {
		s.Enqueue(Item{Tenant: "a", Value: i})
		s.Enqueue(Item{Tenant: "b", Value: i})
	}
	last := map[string]int{"a": -1, "b": -1}
	for {
		it, ok := s.Pop()
		if !ok {
			break
		}
		v := it.Value.(int)
		if v <= last[it.Tenant] {
			t.Fatalf("tenant %s served %d after %d (FIFO violated)", it.Tenant, v, last[it.Tenant])
		}
		last[it.Tenant] = v
	}
}

func TestProtectedEvictsSpeculative(t *testing.T) {
	s, _ := newTest(Config{Capacity: 4})
	for i := 0; i < 4; i++ {
		if _, err := s.Enqueue(Item{Tenant: "flood", Class: Speculative, Value: i}); err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
	}
	// Speculative arrival at capacity is shed outright.
	if _, err := s.Enqueue(Item{Tenant: "flood", Class: Speculative}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("speculative at capacity: got %v, want ErrQueueFull", err)
	}
	// Protected arrival evicts the LAST-to-run speculative item (max finish
	// tag = the most recently enqueued of the flood).
	evicted, err := s.Enqueue(Item{Tenant: "gold", Class: Protected, Value: "p"})
	if err != nil {
		t.Fatalf("protected at capacity refused: %v", err)
	}
	if len(evicted) != 1 || evicted[0].Value.(int) != 3 {
		t.Fatalf("evicted %v, want the newest speculative item (3)", evicted)
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d after eviction+admit, want 4", s.Len())
	}
}

func TestProtectedNeverEvictsProtected(t *testing.T) {
	s, _ := newTest(Config{Capacity: 2})
	s.Enqueue(Item{Tenant: "a", Class: Protected})
	s.Enqueue(Item{Tenant: "b", Class: Protected})
	if _, err := s.Enqueue(Item{Tenant: "c", Class: Protected}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("protected-full queue: got %v, want ErrQueueFull", err)
	}
}

func TestPopWhereHeadOnly(t *testing.T) {
	s, _ := newTest(Config{Capacity: 100})
	s.Enqueue(Item{Tenant: "a", Value: "x1"})
	s.Enqueue(Item{Tenant: "a", Value: "y1"}) // behind x1: must not be reachable
	s.Enqueue(Item{Tenant: "b", Value: "y2"})
	it, ok := s.PopWhere(func(it Item) bool { return it.Value.(string)[0] == 'y' })
	if !ok || it.Value.(string) != "y2" {
		t.Fatalf("PopWhere = %v %v, want y2 (a's y1 is not at its head)", it, ok)
	}
	// Draining a's head exposes y1.
	if it, _ := s.Pop(); it.Value.(string) != "x1" {
		t.Fatalf("Pop = %v, want x1", it.Value)
	}
	it, ok = s.PopWhere(func(it Item) bool { return it.Value.(string)[0] == 'y' })
	if !ok || it.Value.(string) != "y1" {
		t.Fatalf("PopWhere after drain = %v %v, want y1", it, ok)
	}
}

func TestReadySignal(t *testing.T) {
	s, _ := newTest(Config{Capacity: 10})
	select {
	case <-s.Ready():
		t.Fatal("ready before any enqueue")
	default:
	}
	s.Enqueue(Item{Tenant: "a"})
	select {
	case <-s.Ready():
	default:
		t.Fatal("no ready signal after enqueue")
	}
}
