package qos

import (
	"sync"
	"time"
)

// Scheduler is a weighted-fair queue with per-tenant admission quotas and
// priority load-shedding. Safe for concurrent use.
//
// Fairness model: classic virtual-finish-tag WFQ. Each tenant keeps a FIFO
// of its own items; item i of tenant t gets finish tag
//
//	F = max(V, lastF[t]) + cost/weight[t]
//
// where V is the scheduler's virtual time (the finish tag of the last item
// dispatched). Pop always serves the smallest finish tag among tenant queue
// HEADS — per-tenant order is FIFO by construction, and between tenants the
// share of service converges to the weight ratio regardless of arrival
// bursts.
type Scheduler struct {
	mu      sync.Mutex
	cfg     Config
	now     func() time.Time
	vtime   float64
	buckets map[string]*bucket
	queues  map[string]*tenantQueue
	order   []string // tenant first-seen order: deterministic scans and ties
	size    int
	ready   chan struct{}
}

type tenantQueue struct {
	weight float64
	lastF  float64
	items  []entry
}

type entry struct {
	it     Item
	finish float64
}

// New builds a Scheduler. Capacity <= 0 is lifted to 1.
func New(cfg Config) *Scheduler {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 1
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	return &Scheduler{
		cfg:     cfg,
		now:     now,
		buckets: make(map[string]*bucket),
		queues:  make(map[string]*tenantQueue),
		ready:   make(chan struct{}, 1),
	}
}

// Enqueue admits one item. It returns the speculative items evicted to make
// room (possibly empty) and an error if the item itself was refused: a
// *QuotaError when the tenant is over its token bucket, ErrQueueFull when
// the queue is at capacity and the item's class does not warrant eviction.
func (s *Scheduler) Enqueue(it Item) (evicted []Item, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	if ok, retry := s.bucketFor(it.Tenant).take(s.now()); !ok {
		return nil, &QuotaError{Tenant: it.Tenant, RetryAfter: retry}
	}
	for s.size >= s.cfg.Capacity {
		if it.Class != Protected {
			return nil, ErrQueueFull
		}
		victim, ok := s.evictSpeculative()
		if !ok {
			return nil, ErrQueueFull
		}
		evicted = append(evicted, victim)
	}

	tq := s.queueFor(it.Tenant)
	cost := it.Cost
	if cost <= 0 {
		cost = 1
	}
	f := s.vtime
	if tq.lastF > f {
		f = tq.lastF
	}
	f += cost / tq.weight
	tq.lastF = f
	tq.items = append(tq.items, entry{it: it, finish: f})
	s.size++
	s.signal()
	return evicted, nil
}

// Pop removes and returns the item with the smallest finish tag among
// tenant queue heads. ok is false when the queue is empty.
func (s *Scheduler) Pop() (Item, bool) {
	return s.PopWhere(nil)
}

// PopWhere is Pop restricted to items accepted by match (nil matches all).
// Only queue HEADS are considered — a head that fails the predicate blocks
// its tenant's later items, preserving per-tenant FIFO order.
func (s *Scheduler) PopWhere(match func(Item) bool) (Item, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()

	bestTenant := ""
	bestF := 0.0
	for _, name := range s.order {
		tq := s.queues[name]
		if len(tq.items) == 0 {
			continue
		}
		head := tq.items[0]
		if match != nil && !match(head.it) {
			continue
		}
		if bestTenant == "" || head.finish < bestF {
			bestTenant, bestF = name, head.finish
		}
	}
	if bestTenant == "" {
		return Item{}, false
	}
	tq := s.queues[bestTenant]
	head := tq.items[0]
	copy(tq.items, tq.items[1:])
	tq.items = tq.items[:len(tq.items)-1]
	s.size--
	if head.finish > s.vtime {
		s.vtime = head.finish
	}
	if s.size > 0 {
		s.signal()
	}
	return head.it, true
}

// Len returns the number of queued items.
func (s *Scheduler) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// Ready signals (buffered, coalescing) whenever items may be available.
func (s *Scheduler) Ready() <-chan struct{} { return s.ready }

func (s *Scheduler) signal() {
	select {
	case s.ready <- struct{}{}:
	default:
	}
}

// evictSpeculative removes and returns the speculative item with the
// LARGEST finish tag — the one that would have been served last anyway, so
// eviction disturbs the fair order least.
func (s *Scheduler) evictSpeculative() (Item, bool) {
	victimTenant, victimIdx, victimF := "", -1, 0.0
	for _, name := range s.order {
		tq := s.queues[name]
		for i, e := range tq.items {
			if e.it.Class != Speculative {
				continue
			}
			if victimIdx < 0 || e.finish > victimF {
				victimTenant, victimIdx, victimF = name, i, e.finish
			}
		}
	}
	if victimIdx < 0 {
		return Item{}, false
	}
	tq := s.queues[victimTenant]
	victim := tq.items[victimIdx]
	tq.items = append(tq.items[:victimIdx], tq.items[victimIdx+1:]...)
	s.size--
	return victim.it, true
}

func (s *Scheduler) bucketFor(tenant string) *bucket {
	b, ok := s.buckets[tenant]
	if !ok {
		b = newBucket(s.cfg, tenant, s.now())
		s.buckets[tenant] = b
	}
	return b
}

func (s *Scheduler) queueFor(tenant string) *tenantQueue {
	tq, ok := s.queues[tenant]
	if !ok {
		w := s.cfg.Weights[tenant]
		if w <= 0 {
			w = 1
		}
		tq = &tenantQueue{weight: w}
		s.queues[tenant] = tq
		s.order = append(s.order, tenant)
	}
	return tq
}
