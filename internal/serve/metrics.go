package serve

import (
	"expvar"
	"sync"
)

// Metrics is the service's observability surface: plain expvar counters,
// usable unregistered (tests, benchmarks) and exported through /debug/vars
// once Publish is called (the daemon). All fields are safe for concurrent
// use.
type Metrics struct {
	// Admission.
	Accepted      expvar.Int // requests admitted into the queue
	Rejected      expvar.Int // all overload rejections (429s), QoS-typed or not
	Throttled     expvar.Int // tenant-over-quota rejections (429 kind throttled)
	Shed          expvar.Int // speculative requests sacrificed (429 kind shed)
	QueueTimeouts expvar.Int // typed ErrQueueTimeout expiries
	BadRequests   expvar.Int // normalization failures
	QueueDepth    expvar.Int // gauge: requests currently queued
	Running       expvar.Int // gauge: requests currently executing
	// Inflight gauges admitted-but-undelivered requests (queued + running
	// + batched-but-not-yet-classified); with QueueCap it is the
	// backpressure signal a cluster gateway's health probe reads.
	Inflight expvar.Int
	// QueueCap is the configured admission queue depth (static; set by New
	// so probes can turn QueueDepth into a fill fraction).
	QueueCap expvar.Int

	// Batching.
	Batches         expvar.Int // execution batches dispatched
	BatchedRequests expvar.Int // requests that shared a batch of size > 1

	// Outcome taxonomy (sums to Accepted minus queue timeouts, eventually).
	Corrected expvar.Int
	Restarted expvar.Int
	Aborted   expvar.Int

	// Ladder traffic.
	InjectedFaults  expvar.Int // faults delivered by request plans
	ABFTCorrections expvar.Int // elements ABFT repaired
	Restarts        expvar.Int // checkpoint rollbacks replayed

	// Latency sums (milliseconds), for coarse rate math over /debug/vars;
	// percentile reporting lives in the load generator.
	QueueMSSum expvar.Float
	RunMSSum   expvar.Float

	// Sharded-job block tasks (the /v1/block path).
	BlockTasks    expvar.Int   // block tasks completed
	BlockRejected expvar.Int   // malformed block tasks (400s)
	BlockShed     expvar.Int   // block tasks that found no slot in budget (503s)
	BlockRunMSSum expvar.Float // block execution time sum

	// Long tasks (the /v1/longjob path) and checkpoint streaming.
	LongTasks           expvar.Int   // long tasks classified
	LongRejected        expvar.Int   // malformed long tasks (400s)
	LongShed            expvar.Int   // long tasks that found no slot in budget (503s)
	LongRunMSSum        expvar.Float // long-task execution time sum
	CheckpointsStreamed expvar.Int   // snapshots successfully PUT off-node
	CheckpointPutErrors expvar.Int   // failed checkpoint PUTs (non-fatal)

	// Replicated verification tasks (the /v1/verify path, verify-vote) and
	// the Byzantine chaos fixture.
	VerifyTasks    expvar.Int   // verification tasks completed
	VerifyRejected expvar.Int   // malformed verification tasks (400s)
	VerifyShed     expvar.Int   // verification tasks that found no slot (503s)
	VerifyRefuted  expvar.Int   // claimed products this node refuted
	VerifyRunMSSum expvar.Float // verification execution time sum
	ByzantineLies  expvar.Int   // answers this node deliberately corrupted (LieFraction fixture)

	// bus, when set by New, surfaces error-bus counters in Snapshot.
	bus *Bus

	// Per-tenant counters, created lazily on first touch.
	tenantMu sync.Mutex
	tenants  map[string]*TenantMetrics
}

// TenantMetrics is one tenant's admission ledger: how much of its traffic
// completed, was throttled at its own bucket, or was shed to overload.
type TenantMetrics struct {
	Completed expvar.Int
	Throttled expvar.Int
	Shed      expvar.Int
}

// Tenant returns (creating on first use) the named tenant's counters.
func (m *Metrics) Tenant(name string) *TenantMetrics {
	m.tenantMu.Lock()
	defer m.tenantMu.Unlock()
	if m.tenants == nil {
		m.tenants = make(map[string]*TenantMetrics)
	}
	tm, ok := m.tenants[name]
	if !ok {
		tm = &TenantMetrics{}
		m.tenants[name] = tm
	}
	return tm
}

var publishOnce sync.Once

// Publish registers the metrics under the "serve" expvar key. Safe to call
// more than once; only the first caller's Metrics instance is exported.
func (m *Metrics) Publish() {
	publishOnce.Do(func() {
		expvar.Publish("serve", expvar.Func(func() any { return m.Snapshot() }))
	})
}

// Snapshot renders the counters as a flat map (the /debug/vars payload).
func (m *Metrics) Snapshot() map[string]any {
	out := map[string]any{
		"accepted":         m.Accepted.Value(),
		"rejected":         m.Rejected.Value(),
		"throttled":        m.Throttled.Value(),
		"shed":             m.Shed.Value(),
		"queue_timeouts":   m.QueueTimeouts.Value(),
		"bad_requests":     m.BadRequests.Value(),
		"queue_depth":      m.QueueDepth.Value(),
		"running":          m.Running.Value(),
		"inflight":         m.Inflight.Value(),
		"queue_cap":        m.QueueCap.Value(),
		"batches":          m.Batches.Value(),
		"batched_requests": m.BatchedRequests.Value(),
		"corrected":        m.Corrected.Value(),
		"restarted":        m.Restarted.Value(),
		"aborted":          m.Aborted.Value(),
		"injected_faults":  m.InjectedFaults.Value(),
		"abft_corrections": m.ABFTCorrections.Value(),
		"restarts":         m.Restarts.Value(),
		"queue_ms_sum":     m.QueueMSSum.Value(),
		"run_ms_sum":       m.RunMSSum.Value(),
		"block_tasks":      m.BlockTasks.Value(),
		"block_rejected":   m.BlockRejected.Value(),
		"block_shed":       m.BlockShed.Value(),
		"block_run_ms_sum": m.BlockRunMSSum.Value(),
	}
	out["verify_tasks"] = m.VerifyTasks.Value()
	out["verify_rejected"] = m.VerifyRejected.Value()
	out["verify_shed"] = m.VerifyShed.Value()
	out["verify_refuted"] = m.VerifyRefuted.Value()
	out["verify_run_ms_sum"] = m.VerifyRunMSSum.Value()
	out["byzantine_lies"] = m.ByzantineLies.Value()
	out["long_tasks"] = m.LongTasks.Value()
	out["long_rejected"] = m.LongRejected.Value()
	out["long_shed"] = m.LongShed.Value()
	out["long_run_ms_sum"] = m.LongRunMSSum.Value()
	out["checkpoints_streamed"] = m.CheckpointsStreamed.Value()
	out["checkpoint_put_errors"] = m.CheckpointPutErrors.Value()
	if m.bus != nil {
		out["events_published"] = m.bus.Published()
		out["events_dropped"] = m.bus.Dropped()
	}
	m.tenantMu.Lock()
	if len(m.tenants) > 0 {
		tenants := make(map[string]any, len(m.tenants))
		for name, tm := range m.tenants {
			tenants[name] = map[string]any{
				"completed": tm.Completed.Value(),
				"throttled": tm.Throttled.Value(),
				"shed":      tm.Shed.Value(),
			}
		}
		out["tenants"] = tenants
	}
	m.tenantMu.Unlock()
	return out
}
