package serve

// Versioned async jobs API — wire contract.
//
// The gateway fronts sharded execution with three routes:
//
//	POST   /v1/jobs       submit (body: Request) → 202 + JobStatus (State "queued")
//	GET    /v1/jobs/{id}  poll → 200 + JobStatus
//	DELETE /v1/jobs/{id}  cancel → 200 + JobStatus (no-op once terminal)
//
// Field-stability guarantees, by analogy with the /v1/{gemm,cholesky,cg}
// wire contract: within the /v1 prefix,
//
//   - existing JSON field names, types, and the State value set below are
//     frozen — clients may switch on them;
//   - new fields may be added at any time — clients must ignore unknown
//     fields;
//   - fields tagged omitempty may be absent; absence means zero, never a
//     different meaning;
//   - any breaking change ships under a new version prefix (/v2), never by
//     mutating /v1.
//
// These types live in package serve (not cluster) so the load generator
// and other clients share them without importing the scheduler.

// Job states. Terminal states are done, failed, and cancelled; a terminal
// JobStatus never changes again (until the record is evicted, after which
// GET returns 404).
const (
	JobQueued    = "queued"
	JobRunning   = "running"
	JobDone      = "done"
	JobFailed    = "failed"
	JobCancelled = "cancelled"
)

// JobStatus is the jobs API's one resource representation, returned by all
// three routes.
type JobStatus struct {
	// ID names the job in /v1/jobs/{id}.
	ID string `json:"id"`
	// State is queued|running|done|failed|cancelled.
	State string `json:"state"`
	// Kernel and N echo the admitted request.
	Kernel string `json:"kernel"`
	N      int    `json:"n"`
	// Sharded reports the execution path: true means the job was split
	// into checksum-protected block tasks across the worker pool; false
	// means it passed through the synchronous forwarding path unchanged.
	Sharded bool `json:"sharded"`

	// Block progress (sharded jobs only; zero for passthrough).
	BlocksTotal int `json:"blocks_total,omitempty"`
	BlocksDone  int `json:"blocks_done,omitempty"`
	// Reconstructions counts blocks recovered algebraically from checksum
	// blocks after a node loss; Recomputes counts blocks the coordinator
	// had to re-execute because reconstruction was impossible. A
	// single-node failure must show Reconstructions > 0, Recomputes == 0.
	Reconstructions int `json:"reconstructions,omitempty"`
	Recomputes      int `json:"recomputes,omitempty"`

	// Digest is the FNV-1a-64 fingerprint of the assembled result's exact
	// bit patterns (sharded done jobs only) — equal to the digest of the
	// single-node product by the determinism contract.
	Digest string `json:"digest,omitempty"`
	// Error says why a failed job gave up (empty otherwise).
	Error string `json:"error,omitempty"`
	// Result carries the classified response once done (passthrough jobs
	// relay the backend's Response; sharded jobs synthesize one).
	Result *Response `json:"result,omitempty"`

	// QueueMS and RunMS time the job end to end at the gateway.
	QueueMS float64 `json:"queue_ms"`
	RunMS   float64 `json:"run_ms"`

	// Long-job fields (step-granular CG jobs only; absent otherwise).

	// Long reports the execution path: the job runs as a checkpoint-
	// streaming long task and may migrate between nodes mid-solve.
	Long bool `json:"long,omitempty"`
	// Node is the worker currently (or last) executing the job.
	Node string `json:"node,omitempty"`
	// Step is the newest checkpointed step the gateway holds; Checkpoints
	// counts snapshots retained with the job record.
	Step        int `json:"step,omitempty"`
	Checkpoints int `json:"checkpoints,omitempty"`
	// Migrations counts reschedules onto a new node after a worker died
	// mid-solve; ResumeStep is the step the latest migration resumed from
	// (> 0 means the solve continued instead of starting over).
	Migrations int `json:"migrations,omitempty"`
	ResumeStep int `json:"resume_step,omitempty"`
	// RestartsUsed is the cumulative checkpoint-rollback budget consumed
	// across all nodes the job has run on.
	RestartsUsed int `json:"restarts_used,omitempty"`
	// RecoveryMS sums fault→resumed latency over the job's migrations:
	// from the gateway observing the worker's death to the replacement
	// worker's first signal (checkpoint PUT or terminal result).
	RecoveryMS float64 `json:"recovery_ms,omitempty"`
}
