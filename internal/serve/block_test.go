package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"coopabft/internal/abft"
	"coopabft/internal/mat"
)

func blockService(t *testing.T) *Service {
	t.Helper()
	s := New(Config{MaxConcurrency: 2, MaxJobN: 256, Parallelism: 1})
	t.Cleanup(s.Close)
	return s
}

// TestDoBlockDataMatchesDirect: a data block equals the same region of the
// full product, bit for bit, through the pack/unpack wire form.
func TestDoBlockDataMatchesDirect(t *testing.T) {
	s := blockService(t)
	n := 48
	g, err := abft.NewBlockGrid(n, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, b := mat.Random(n, n, 5), mat.Random(n, n, 6)
	full := mat.New(n, n)
	mat.MulAddInto(full, a, b)

	res, err := s.DoBlock(context.Background(), BlockTask{
		JobID: "j1", Kernel: "gemm", N: n, Seed: 5, Role: BlockData,
		RowSplits: g.RowSplits, ColSplits: g.ColSplits, BI: 1, BJ: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	blk, err := abft.UnpackBlock(res.Rows, res.Cols, res.Block)
	if err != nil {
		t.Fatal(err)
	}
	r0, _ := g.RowSpan(1)
	c0, _ := g.ColSpan(1)
	for i := 0; i < blk.Rows; i++ {
		for j := 0; j < blk.Cols; j++ {
			if math.Float64bits(blk.At(i, j)) != math.Float64bits(full.At(r0+i, c0+j)) {
				t.Fatalf("el(%d,%d) differs from direct product", i, j)
			}
		}
	}
}

// TestDoBlockChecksumFoldsColumn: the col-check task's parity equals the
// XOR-fold of the column's data blocks, and its Σ-block verifies them.
func TestDoBlockChecksumFoldsColumn(t *testing.T) {
	s := blockService(t)
	n := 37
	g, err := abft.NewBlockGrid(n, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	base := BlockTask{JobID: "j2", Kernel: "gemm", N: n, Seed: 9,
		RowSplits: g.RowSplits, ColSplits: g.ColSplits}

	var col []*mat.Matrix
	for bi := 0; bi < g.Rows(); bi++ {
		task := base
		task.Role, task.BI, task.BJ = BlockData, bi, 0
		res, err := s.DoBlock(context.Background(), task)
		if err != nil {
			t.Fatal(err)
		}
		blk, err := abft.UnpackBlock(res.Rows, res.Cols, res.Block)
		if err != nil {
			t.Fatal(err)
		}
		col = append(col, blk)
	}
	task := base
	task.Role, task.BJ = BlockColCheck, 0
	res, err := s.DoBlock(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	parity, err := abft.UnpackBlock(res.Rows, res.Cols, res.Block)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := abft.UnpackBlock(res.Rows, res.Cols, res.Sum)
	if err != nil {
		t.Fatal(err)
	}

	c0, c1 := g.ColSpan(0)
	wantParity, wantSum := abft.EncodeChecksumBlocks(col, g.MaxRowSpan(), c1-c0)
	for i := 0; i < wantParity.Rows; i++ {
		for j := 0; j < wantParity.Cols; j++ {
			if math.Float64bits(parity.At(i, j)) != math.Float64bits(wantParity.At(i, j)) {
				t.Fatalf("parity el(%d,%d) differs", i, j)
			}
			if sum.At(i, j) != wantSum.At(i, j) {
				t.Fatalf("sum el(%d,%d) differs", i, j)
			}
		}
	}
	if err := abft.VerifyBlockSum(sum, col, abft.BlockTol(n)); err != nil {
		t.Fatalf("Σ-check over data blocks: %v", err)
	}
	// And a reconstruction from this parity is bit-exact.
	lost := col[1]
	got, err := abft.ReconstructBlock(parity, []*mat.Matrix{col[0], col[2]}, lost.Rows, lost.Cols)
	if err != nil {
		t.Fatal(err)
	}
	if abft.BitDigest(got) != abft.BitDigest(lost) {
		t.Fatal("reconstructed block differs from lost block")
	}
}

// TestDoBlockRejects: the shared 400 taxonomy covers block tasks.
func TestDoBlockRejects(t *testing.T) {
	s := blockService(t)
	g, _ := abft.NewBlockGrid(64, 2, 2)
	base := BlockTask{Kernel: "gemm", N: 64, Role: BlockData,
		RowSplits: g.RowSplits, ColSplits: g.ColSplits}
	cases := map[string]func(*BlockTask){
		"unknown kernel":  func(t *BlockTask) { t.Kernel = "lu" },
		"non-gemm":        func(t *BlockTask) { t.Kernel = "cholesky" },
		"oversized":       func(t *BlockTask) { t.N = 100000 },
		"bad role":        func(t *BlockTask) { t.Role = "parity" },
		"bi out of range": func(t *BlockTask) { t.BI = 2 },
		"bad splits":      func(t *BlockTask) { t.RowSplits = []int{0, 70} },
		"empty splits":    func(t *BlockTask) { t.RowSplits = nil },
	}
	for name, mutate := range cases {
		task := base
		mutate(&task)
		if _, err := s.DoBlock(context.Background(), task); !errors.Is(err, ErrBadRequest) {
			t.Errorf("%s: err = %v, want ErrBadRequest", name, err)
		}
	}
	if got := s.Metrics().BlockRejected.Value(); got != int64(len(cases)) {
		t.Errorf("BlockRejected = %d, want %d", got, len(cases))
	}
}

// TestBlockHTTPRoute exercises POST /v1/block end to end.
func TestBlockHTTPRoute(t *testing.T) {
	s := blockService(t)
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	g, _ := abft.NewBlockGrid(32, 2, 2)
	body, _ := json.Marshal(BlockTask{JobID: "h1", Kernel: "gemm", N: 32, Seed: 3,
		Role: BlockData, RowSplits: g.RowSplits, ColSplits: g.ColSplits, BI: 0, BJ: 1})
	resp, err := http.Post(srv.URL+"/v1/block", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var res BlockResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.JobID != "h1" || res.Rows != 16 || res.Cols != 16 || len(res.Block) != 8*16*16 {
		t.Fatalf("unexpected result: %+v rows=%d cols=%d len=%d", res.JobID, res.Rows, res.Cols, len(res.Block))
	}

	bad, _ := json.Marshal(BlockTask{Kernel: "nope", N: 32, Role: BlockData,
		RowSplits: g.RowSplits, ColSplits: g.ColSplits})
	resp2, err := http.Post(srv.URL+"/v1/block", "application/json", bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad kernel status = %d, want 400", resp2.StatusCode)
	}
}

// TestKernelWireRejectsInvalid pins the satellite fix: the String fallback
// ("Kernel(%d)") must never reach route construction.
func TestKernelWireRejectsInvalid(t *testing.T) {
	for _, k := range Kernels {
		w, err := k.Wire()
		if err != nil || w != k.String() {
			t.Fatalf("Wire(%v) = %q, %v", k, w, err)
		}
	}
	for _, k := range []Kernel{Kernel(-1), Kernel(3), Kernel(99)} {
		if k.Valid() {
			t.Fatalf("Kernel(%d).Valid() = true", int(k))
		}
		if _, err := k.Wire(); !errors.Is(err, ErrBadRequest) {
			t.Fatalf("Wire(%d): err = %v, want ErrBadRequest", int(k), err)
		}
	}
}
