package serve

import (
	"context"
	"fmt"
	"time"

	"coopabft/internal/abft"
	"coopabft/internal/mat"
)

// Block-task roles. A sharded job's grid has data blocks plus dedicated
// checksum blocks; the role tells the worker which panel to compute.
const (
	// BlockData computes one data block C[bi,bj] of the sharded product.
	BlockData = "data"
	// BlockColCheck computes grid column bj's checksum pair (GF(2) parity
	// + numeric sum) by folding every data block in that column.
	BlockColCheck = "col-check"
	// BlockRowCheck computes grid row bi's checksum pair by folding every
	// data block in that row.
	BlockRowCheck = "row-check"
)

// BlockTask is one unit of a sharded job, in wire (JSON) form: compute one
// block of C = A·B where A = Random(n,n,seed) and B = Random(n,n,seed+1) —
// the same operands the single-node DGEMM path uses, so a sharded answer
// can be compared bit-for-bit against the direct one. RowSplits/ColSplits
// carry the job's full grid so every worker derives identical extents.
type BlockTask struct {
	JobID     string `json:"job_id"`
	Kernel    string `json:"kernel"`
	N         int    `json:"n"`
	Seed      uint64 `json:"seed"`
	Role      string `json:"role"`
	RowSplits []int  `json:"row_splits"`
	ColSplits []int  `json:"col_splits"`
	// BI, BJ locate the task on the grid: data uses both; col-check uses
	// BJ; row-check uses BI.
	BI        int `json:"bi"`
	BJ        int `json:"bj"`
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// BlockResult carries a computed block back. Block (and, for checksum
// roles, Sum) hold the block's float64 elements row-major as little-endian
// bit patterns (JSON base64) — parity blocks are raw GF(2) words whose bit
// patterns need not be valid numbers, so they cannot ride in JSON floats.
type BlockResult struct {
	JobID string  `json:"job_id"`
	Role  string  `json:"role"`
	BI    int     `json:"bi"`
	BJ    int     `json:"bj"`
	Rows  int     `json:"rows"`
	Cols  int     `json:"cols"`
	Block []byte  `json:"block"`
	Sum   []byte  `json:"sum,omitempty"`
	RunMS float64 `json:"run_ms"`
}

// blockLimits derives the block-task admission bounds: sharded jobs may be
// much larger than interactive requests, so they get their own size cap.
func (c Config) blockLimits() Limits { return Limits{MaxN: c.MaxJobN, MaxFaults: c.MaxFaults} }

// parseBlockTask funnels a block task through the shared admission
// entrypoint (ParseRequest, so the 400 taxonomy is the daemon's), then
// validates the grid geometry on top.
func parseBlockTask(l Limits, t BlockTask) (Parsed, abft.BlockGrid, error) {
	var g abft.BlockGrid
	p, err := ParseRequest(l, Request{Kernel: t.Kernel, N: t.N, Seed: t.Seed})
	if err != nil {
		return p, g, err
	}
	if p.Kernel != KernelGEMM {
		return p, g, fmt.Errorf("%w: block tasks support gemm only, got %s", ErrBadRequest, p.Kernel)
	}
	g = abft.BlockGrid{N: p.N, RowSplits: t.RowSplits, ColSplits: t.ColSplits}
	if err := g.Validate(); err != nil {
		return p, g, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	switch t.Role {
	case BlockData:
		if t.BI < 0 || t.BI >= g.Rows() || t.BJ < 0 || t.BJ >= g.Cols() {
			return p, g, fmt.Errorf("%w: data block (%d,%d) outside %dx%d grid",
				ErrBadRequest, t.BI, t.BJ, g.Rows(), g.Cols())
		}
	case BlockColCheck:
		if t.BJ < 0 || t.BJ >= g.Cols() {
			return p, g, fmt.Errorf("%w: col-check %d outside %d columns", ErrBadRequest, t.BJ, g.Cols())
		}
	case BlockRowCheck:
		if t.BI < 0 || t.BI >= g.Rows() {
			return p, g, fmt.Errorf("%w: row-check %d outside %d rows", ErrBadRequest, t.BI, g.Rows())
		}
	default:
		return p, g, fmt.Errorf("%w: unknown block role %q", ErrBadRequest, t.Role)
	}
	return p, g, nil
}

// DoBlock admits and executes one block task. Admission mirrors Do's
// taxonomy — ErrBadRequest for malformed tasks, ErrQueueTimeout when no
// block slot frees within the queue budget, ErrClosed at shutdown — but
// block tasks use their own semaphore so a large sharded job cannot starve
// the interactive request path.
func (s *Service) DoBlock(ctx context.Context, t BlockTask) (BlockResult, error) {
	p, grid, err := parseBlockTask(s.cfg.blockLimits(), t)
	if err != nil {
		s.m.BlockRejected.Add(1)
		return BlockResult{}, err
	}
	if t.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(t.TimeoutMS)*time.Millisecond)
		defer cancel()
	}

	wait := time.NewTimer(s.cfg.QueueTimeout)
	defer wait.Stop()
	select {
	case s.blockSem <- struct{}{}:
	case <-wait.C:
		s.m.BlockShed.Add(1)
		return BlockResult{}, fmt.Errorf("%w: no block slot within %s", ErrQueueTimeout, s.cfg.QueueTimeout)
	case <-ctx.Done():
		s.m.BlockShed.Add(1)
		return BlockResult{}, fmt.Errorf("%w: %w", ErrQueueTimeout, context.Cause(ctx))
	case <-s.quit:
		return BlockResult{}, ErrClosed
	}
	defer func() { <-s.blockSem }()

	start := time.Now()
	res, err := computeBlock(p, grid, t)
	if err != nil {
		s.m.BlockRejected.Add(1)
		return BlockResult{}, err
	}
	s.m.BlockTasks.Add(1)
	res.JobID, res.Role, res.BI, res.BJ = t.JobID, t.Role, t.BI, t.BJ
	res.RunMS = float64(time.Since(start)) / float64(time.Millisecond)
	s.m.BlockRunMSSum.Add(res.RunMS)
	return res, nil
}

// computeBlock evaluates the task's panel. Data blocks are one MulAddInto
// over views of the full operands — by the mat kernel's ascending-k
// contract, bit-identical to the same region of the single-node product.
// Checksum roles compute each sibling block the same way and fold, so
// their parity is over exactly the bits the data workers produced.
func computeBlock(p Parsed, grid abft.BlockGrid, t BlockTask) (BlockResult, error) {
	a := mat.Random(p.N, p.N, p.Seed)
	b := mat.Random(p.N, p.N, p.Seed+1)
	one := func(bi, bj int) *mat.Matrix {
		r0, r1 := grid.RowSpan(bi)
		c0, c1 := grid.ColSpan(bj)
		out := mat.New(r1-r0, c1-c0)
		mat.MulAddInto(out, a.View(r0, 0, r1-r0, p.N), b.View(0, c0, p.N, c1-c0))
		return out
	}

	switch t.Role {
	case BlockData:
		blk := one(t.BI, t.BJ)
		return BlockResult{Rows: blk.Rows, Cols: blk.Cols, Block: abft.PackBlock(blk)}, nil
	case BlockColCheck:
		c0, c1 := grid.ColSpan(t.BJ)
		col := make([]*mat.Matrix, 0, grid.Rows())
		for bi := 0; bi < grid.Rows(); bi++ {
			col = append(col, one(bi, t.BJ))
		}
		parity, sum := abft.EncodeChecksumBlocks(col, grid.MaxRowSpan(), c1-c0)
		return BlockResult{Rows: parity.Rows, Cols: parity.Cols,
			Block: abft.PackBlock(parity), Sum: abft.PackBlock(sum)}, nil
	default: // BlockRowCheck; parseBlockTask rejected everything else
		r0, r1 := grid.RowSpan(t.BI)
		row := make([]*mat.Matrix, 0, grid.Cols())
		for bj := 0; bj < grid.Cols(); bj++ {
			row = append(row, one(t.BI, bj))
		}
		parity, sum := abft.EncodeChecksumBlocks(row, r1-r0, grid.MaxColSpan())
		return BlockResult{Rows: parity.Rows, Cols: parity.Cols,
			Block: abft.PackBlock(parity), Sum: abft.PackBlock(sum)}, nil
	}
}
