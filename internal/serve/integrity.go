package serve

import (
	"fmt"
	"strings"
)

// Integrity selects how much end-to-end answer assurance a request buys
// beyond the node-local ABFT ladder. ABFT's checksum algebra covers the
// encoded kernel interior; it cannot see corruption in control flow, the
// ladder itself, or a node that returns plausible-but-wrong bytes. The
// integrity tier closes that gap with FTMR-style replication at the
// cluster gateway: replicas of the whole request (vote, FRFT-style) or of
// just the cheap verification pass (verify-vote, DCRFT-style) are placed
// on distinct nodes and the answer is delivered only on a signature
// majority.
type Integrity int

const (
	// IntegrityNone is the default: one placement, the node's oracle-gated
	// ladder is the only answer check. The hot path — requests with
	// IntegrityNone incur no signature computation anywhere.
	IntegrityNone Integrity = iota
	// IntegrityVote is FRFT-style full replication: R replicas of the
	// whole request on distinct nodes, delivered on a ⌈(R+1)/2⌉ canonical
	// output-signature majority.
	IntegrityVote
	// IntegrityVerifyVote is DCRFT-style complementary replication: one
	// node computes, R−1 nodes replicate only the O(n²) checksum
	// verification pass against the primary's shipped output. Gemm-only,
	// mirroring the fused verify mode's admission rule.
	IntegrityVerifyVote
)

// String returns the wire name.
func (i Integrity) String() string {
	switch i {
	case IntegrityNone:
		return "none"
	case IntegrityVote:
		return "vote"
	case IntegrityVerifyVote:
		return "verify-vote"
	default:
		return fmt.Sprintf("Integrity(%d)", int(i))
	}
}

// Integrities lists the wire-admissible integrity modes.
var Integrities = []Integrity{IntegrityNone, IntegrityVote, IntegrityVerifyVote}

// ParseIntegrity maps a wire name to its Integrity. The empty string is
// IntegrityNone (the default), matching the omitempty wire encoding.
func ParseIntegrity(name string) (Integrity, error) {
	if name == "" {
		return IntegrityNone, nil
	}
	for _, i := range Integrities {
		if strings.EqualFold(i.String(), name) {
			return i, nil
		}
	}
	return 0, fmt.Errorf("%w: unknown integrity %q (want one of %v)", ErrBadRequest, name, Integrities)
}

// MaxReplicas bounds the per-request replica count R: a request asking for
// more replication than any sane pool provides is malformed, not merely
// unsatisfiable.
const MaxReplicas = 9
