// Package serve puts the §4 recovery ladder behind a request path: a
// bounded admission queue with typed overload rejections, a small-GEMM
// batching stage, semaphore-limited concurrent execution, and per-request
// ECC strategy selection mapped through core.Strategy — the serving
// analogue of the paper's malloc_ecc flag. Every admitted request executes
// through recovery.Coordinator, so a fault-injected request degrades per
// the Case 1–4 ladder (silent hardware correction → notified ABFT repair →
// bounded checkpoint restart) instead of ever returning a wrong answer:
// success is oracle-gated, and the only terminal states are the ladder's
// Corrected/Restarted/Aborted taxonomy plus the admission layer's typed
// rejections.
package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"coopabft/internal/mat"
	"coopabft/internal/serve/qos"
)

// Typed admission errors. The HTTP layer maps them onto status codes
// (429/503); in-process callers branch with errors.Is.
var (
	// ErrOverloaded means admission refused the request under load. It is
	// the umbrella both QoS rejections satisfy via errors.Is — callers that
	// predate multi-tenancy keep branching on it unchanged; callers that
	// care use errors.As with ThrottleError/ShedError.
	ErrOverloaded = errors.New("serve: overloaded (admission queue full)")
	// ErrQueueTimeout means the request was admitted but its budget
	// (request deadline or the service's QueueTimeout) expired before a
	// worker picked it up.
	ErrQueueTimeout = errors.New("serve: timed out waiting in queue")
	// ErrClosed means the service is shutting down.
	ErrClosed = errors.New("serve: service closed")
)

// ThrottleError reports a tenant over its own token-bucket quota: the
// tenant's excess was rejected at the door, other tenants are unaffected.
// The HTTP layer maps it to 429 kind "throttled" with a computed
// Retry-After. Satisfies errors.Is(err, ErrOverloaded).
type ThrottleError struct {
	Tenant     string
	RetryAfter time.Duration
}

func (e *ThrottleError) Error() string {
	return fmt.Sprintf("serve: tenant %q over quota, retry after %s", e.Tenant, e.RetryAfter)
}

func (e *ThrottleError) Is(target error) bool { return target == ErrOverloaded }

// ShedError reports a request sacrificed to overload: a speculative arrival
// refused at a full queue, or a queued speculative request evicted to make
// room for a protected arrival. The HTTP layer maps it to 429 kind "shed".
// Satisfies errors.Is(err, ErrOverloaded).
type ShedError struct {
	Tenant  string
	Evicted bool // true when evicted from the queue, false when refused at the door
}

func (e *ShedError) Error() string {
	if e.Evicted {
		return fmt.Sprintf("serve: tenant %q speculative request evicted for protected work", e.Tenant)
	}
	return fmt.Sprintf("serve: tenant %q speculative request shed (queue full)", e.Tenant)
}

func (e *ShedError) Is(target error) bool { return target == ErrOverloaded }

// Config sizes the service. The zero value is usable: defaults are applied
// by New.
type Config struct {
	// MaxConcurrency bounds simultaneously executing batches (default 2).
	MaxConcurrency int
	// QueueDepth bounds admitted-but-not-running requests; a full queue
	// rejects with ErrOverloaded (default 4×MaxConcurrency).
	QueueDepth int
	// QueueTimeout bounds time spent queued regardless of the request
	// deadline (default 2s; <0 disables).
	QueueTimeout time.Duration
	// BatchWindow is how long the dispatcher holds a batchable request
	// open for compatible followers (default 0: batching off).
	BatchWindow time.Duration
	// MaxBatch caps requests coalesced into one batch (default 8).
	MaxBatch int
	// MaxN caps gemm/cholesky problem sizes (default 192); the CG grid
	// area is capped at MaxN²/16.
	MaxN int
	// MaxFaults caps per-request fault injection (default 8).
	MaxFaults int
	// MaxJobN caps the problem size of sharded-job block tasks, which may
	// far exceed the interactive MaxN (default 2048).
	MaxJobN int
	// BlockConcurrency bounds simultaneously executing block tasks on
	// their own semaphore, isolated from the interactive path (default
	// MaxConcurrency).
	BlockConcurrency int
	// MaxRestarts is the per-request checkpoint-restart budget handed to
	// the coordinator (default 3). For long jobs the budget is cumulative
	// across migrations: a resumed task's snapshot carries the restarts
	// already consumed.
	MaxRestarts int
	// LongConcurrency bounds simultaneously executing long tasks (CG
	// solves) on their own semaphore (default 1).
	LongConcurrency int
	// CheckpointEvery is the default step interval between streamed
	// checkpoints for long tasks that do not specify one (default 8).
	CheckpointEvery int
	// EventBuffer sizes the error bus's replay ring (default 256).
	EventBuffer int
	// CheckpointClient issues checkpoint PUTs to the gateway; nil gets a
	// client with a 10s timeout.
	CheckpointClient *http.Client
	// Parallelism, when > 0, sets the process-global mat worker count at
	// New time. Serving throughput comes from request concurrency, so the
	// daemon defaults this to 1.
	Parallelism int
	// LieFraction is the Byzantine chaos fixture: the fraction of
	// integrity-tier requests on which this node lies — it computes the
	// honest answer, then corrupts the copy it signs (and ships, for
	// verify-vote), producing a well-formed wrong answer. The draw is a
	// pure function of (LieSeed, request seed), so a lying node lies
	// identically on replay. 0 (the default) disables lying; requests with
	// integrity=none are never affected because they carry no signature.
	LieFraction float64
	// LieSeed seeds the lying lottery (default 0).
	LieSeed uint64
	// TenantRate is the per-tenant token-bucket refill (requests/second).
	// 0 (the default) disables quotas: tenants contend only through fair
	// queueing and shedding.
	TenantRate float64
	// TenantBurst is the bucket depth per tenant (default: 2×TenantRate,
	// minimum 1, when TenantRate > 0).
	TenantBurst float64
	// TenantWeights overrides fair-queueing weights per tenant (default 1
	// each): a weight-3 tenant gets 3× the service share of a weight-1
	// tenant while both are backlogged.
	TenantWeights map[string]float64
	// Metrics receives counters; nil allocates a private set.
	Metrics *Metrics
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrency <= 0 {
		c.MaxConcurrency = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.MaxConcurrency
	}
	if c.QueueTimeout == 0 {
		c.QueueTimeout = 2 * time.Second
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.MaxN <= 0 {
		c.MaxN = 192
	}
	if c.MaxFaults <= 0 {
		c.MaxFaults = 8
	}
	if c.MaxRestarts <= 0 {
		c.MaxRestarts = 3
	}
	if c.MaxJobN <= 0 {
		c.MaxJobN = 2048
	}
	if c.BlockConcurrency <= 0 {
		c.BlockConcurrency = c.MaxConcurrency
	}
	if c.LongConcurrency <= 0 {
		c.LongConcurrency = 1
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 8
	}
	if c.EventBuffer <= 0 {
		c.EventBuffer = 256
	}
	if c.CheckpointClient == nil {
		c.CheckpointClient = &http.Client{Timeout: 10 * time.Second}
	}
	if c.TenantRate > 0 && c.TenantBurst <= 0 {
		c.TenantBurst = 2 * c.TenantRate
	}
	if c.Metrics == nil {
		c.Metrics = &Metrics{}
	}
	return c
}

// job states: a job is delivered exactly once, either by the executor
// (queued→running→done) or by the abandoning waiter (queued→abandoned).
const (
	stateQueued int32 = iota
	stateRunning
	stateAbandoned
)

type result struct {
	resp Response
	err  error
}

type job struct {
	ctx   context.Context
	req   Parsed
	enq   time.Time
	state atomic.Int32
	done  chan result // buffered(1); receives exactly one result unless abandoned
}

// deliver hands the job's result to its waiter (no-op if abandoned).
func (j *job) deliver(r Response, err error) {
	j.done <- result{resp: r, err: err}
}

// Service is the fault-tolerant compute service: admission control in Do,
// a dispatcher goroutine that batches and schedules, and per-batch
// executor goroutines that run the recovery ladder.
type Service struct {
	cfg Config
	m   *Metrics

	sched      *qos.Scheduler
	sem        chan struct{}
	blockSem   chan struct{}
	longSem    chan struct{}
	quit       chan struct{}
	bus        *Bus
	ckptClient *http.Client

	dispatchWG sync.WaitGroup
	execWG     sync.WaitGroup
	closeOnce  sync.Once
}

// New builds and starts a service.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	if cfg.Parallelism > 0 {
		mat.SetParallelism(cfg.Parallelism)
	}
	s := &Service{
		cfg: cfg,
		m:   cfg.Metrics,
		sched: qos.New(qos.Config{
			Rate:     cfg.TenantRate,
			Burst:    cfg.TenantBurst,
			Weights:  cfg.TenantWeights,
			Capacity: cfg.QueueDepth,
		}),
		sem:        make(chan struct{}, cfg.MaxConcurrency),
		blockSem:   make(chan struct{}, cfg.BlockConcurrency),
		longSem:    make(chan struct{}, cfg.LongConcurrency),
		quit:       make(chan struct{}),
		bus:        NewBus(cfg.EventBuffer),
		ckptClient: cfg.CheckpointClient,
	}
	s.m.QueueCap.Set(int64(cfg.QueueDepth))
	s.m.bus = s.bus
	s.dispatchWG.Add(1)
	go s.dispatch()
	return s
}

// Metrics returns the service's counters.
func (s *Service) Metrics() *Metrics { return s.m }

// Bus returns the service's error bus — the in-process fault-event stream
// that /v1/events exports and in-process embedders (the gateway, tests)
// subscribe to directly.
func (s *Service) Bus() *Bus { return s.bus }

// Close stops admission, fails queued-but-unstarted requests with
// ErrClosed, and waits for running batches to finish. In-flight requests
// complete normally, so callers draining an HTTP server should Shutdown
// the server first, then Close the service.
func (s *Service) Close() {
	s.closeOnce.Do(func() { close(s.quit) })
	s.dispatchWG.Wait()
	s.execWG.Wait()
}

// Do admits, queues, and executes one request, blocking until it is
// classified or rejected. Rejections are typed: ErrBadRequest,
// ThrottleError (tenant over quota), ShedError (sacrificed to overload) —
// both satisfying errors.Is(err, ErrOverloaded) — ErrQueueTimeout (admitted
// but expired in queue), ErrClosed. A nil error means the Response carries
// one of the ladder's three oracle-gated outcomes.
func (s *Service) Do(ctx context.Context, req Request) (Response, error) {
	p, err := ParseRequest(s.cfg.Limits(), req)
	if err != nil {
		s.m.BadRequests.Add(1)
		return Response{}, err
	}
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}

	j := &job{ctx: ctx, req: p, enq: time.Now(), done: make(chan result, 1)}
	select {
	case <-s.quit:
		return Response{}, ErrClosed
	default:
	}
	class := qos.Protected
	if p.Priority == PrioritySpeculative {
		class = qos.Speculative
	}
	evicted, err := s.sched.Enqueue(qos.Item{Tenant: p.Tenant, Class: class, Value: j})
	if err != nil {
		var qe *qos.QuotaError
		if errors.As(err, &qe) {
			s.m.Rejected.Add(1)
			s.m.Throttled.Add(1)
			s.m.Tenant(p.Tenant).Throttled.Add(1)
			return Response{}, &ThrottleError{Tenant: p.Tenant, RetryAfter: qe.RetryAfter}
		}
		s.m.Rejected.Add(1)
		if class == qos.Speculative {
			s.m.Shed.Add(1)
			s.m.Tenant(p.Tenant).Shed.Add(1)
			return Response{}, &ShedError{Tenant: p.Tenant}
		}
		// A protected request refused at a full queue is plain overload —
		// the legacy wire form, so pre-multi-tenancy clients see no change.
		return Response{}, fmt.Errorf("%w: depth %d", ErrOverloaded, s.cfg.QueueDepth)
	}
	// Deliver the shed verdict to any speculative jobs evicted to make room
	// (their waiters are blocked on done; only un-started jobs can appear
	// here, but the CAS keeps eviction and execution mutually exclusive).
	for _, ev := range evicted {
		ej := ev.Value.(*job)
		if ej.state.CompareAndSwap(stateQueued, stateRunning) {
			s.m.QueueDepth.Add(-1)
			s.m.Shed.Add(1)
			s.m.Tenant(ej.req.Tenant).Shed.Add(1)
			ej.deliver(Response{}, &ShedError{Tenant: ej.req.Tenant, Evicted: true})
		}
	}
	s.m.Accepted.Add(1)
	s.m.QueueDepth.Add(1)
	s.m.Inflight.Add(1)
	defer s.m.Inflight.Add(-1)

	select {
	case r := <-j.done:
		return r.resp, r.err
	case <-ctx.Done():
		if j.state.CompareAndSwap(stateQueued, stateAbandoned) {
			// Never started: the executor will skip it when drained.
			s.m.QueueDepth.Add(-1)
			s.m.QueueTimeouts.Add(1)
			return Response{}, fmt.Errorf("%w: %w", ErrQueueTimeout, context.Cause(ctx))
		}
		// Already running: the coordinator observes the same context and
		// aborts at the next step boundary — wait for the classification.
		r := <-j.done
		return r.resp, r.err
	case <-s.quit:
		// Shutdown while queued: abandon (the drain may already have run
		// past this job, so do not rely on it delivering).
		if j.state.CompareAndSwap(stateQueued, stateAbandoned) {
			s.m.QueueDepth.Add(-1)
			return Response{}, ErrClosed
		}
		r := <-j.done
		return r.resp, r.err
	}
}
