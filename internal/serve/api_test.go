package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func post(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestAPIKernelRoutes drives each /v1/<kernel> route end to end through
// the real service and checks the classified JSON response.
func TestAPIKernelRoutes(t *testing.T) {
	s := newTestService(t, Config{MaxConcurrency: 2, QueueDepth: 8})
	h := NewHandler(s)

	for path, body := range map[string]string{
		"/v1/gemm":     `{"n": 32, "seed": 3, "strategy": "W_CK"}`,
		"/v1/cholesky": `{"n": 32, "seed": 4, "faults": 1}`,
		"/v1/cg":       `{"nx": 8, "ny": 8, "seed": 5}`,
	} {
		rec := post(t, h, path, body)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d, body %s", path, rec.Code, rec.Body)
		}
		var resp Response
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("%s: bad JSON: %v", path, err)
		}
		if !okOutcomes[resp.Outcome] {
			t.Errorf("%s: outcome %q outside taxonomy", path, resp.Outcome)
		}
		if want := strings.TrimPrefix(path, "/v1/"); resp.Kernel != want {
			t.Errorf("%s: kernel %q, want %q", path, resp.Kernel, want)
		}
	}
}

// TestAPIEmptyBodyUsesDefaults: POST with no body is a valid default
// request (the path supplies the kernel).
func TestAPIEmptyBodyUsesDefaults(t *testing.T) {
	s := newTestService(t, Config{MaxConcurrency: 1, QueueDepth: 4})
	rec := post(t, NewHandler(s), "/v1/gemm", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, body %s", rec.Code, rec.Body)
	}
}

// TestAPIBadRequests maps validation failures to 400 with the typed kind.
func TestAPIBadRequests(t *testing.T) {
	s := newTestService(t, Config{MaxConcurrency: 1, QueueDepth: 4})
	h := NewHandler(s)
	for _, body := range []string{
		`{"n": 2}`,
		`{"strategy": "TripleModular"}`,
		`{"faults": 1, "fault_kind": "gamma-ray"}`,
		`not json at all`,
	} {
		rec := post(t, h, "/v1/gemm", body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, rec.Code)
			continue
		}
		var e errorBody
		if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Kind != "bad_request" {
			t.Errorf("body %q: error envelope %s (err %v)", body, rec.Body, err)
		}
	}
	// Unknown kernels are a routing miss, not a service call.
	if rec := post(t, NewHandler(s), "/v1/fft", "{}"); rec.Code != http.StatusNotFound {
		t.Errorf("/v1/fft: status %d, want 404", rec.Code)
	}
	// GET on a kernel route is a method mismatch.
	req := httptest.NewRequest(http.MethodGet, "/v1/gemm", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/gemm: status %d, want 405", rec.Code)
	}
}

// TestAPIOverloadIs429: with every slot pinned and the queue stuffed, the
// route answers 429 with Retry-After, the typed wire form of
// ErrOverloaded.
func TestAPIOverloadIs429(t *testing.T) {
	s := newTestService(t, Config{MaxConcurrency: 1, QueueDepth: 1, QueueTimeout: time.Minute})
	h := NewHandler(s)
	s.sem <- struct{}{}
	defer func() { <-s.sem }()

	// Park requests one at a time until the queue (depth 1 + the job the
	// dispatcher holds at the semaphore) is full; parked handlers run in
	// goroutines since they block. Admission is observed through the
	// accepted counter and queue occupancy so the fill is deterministic.
	type parked struct{ rec *httptest.ResponseRecorder }
	park := func() chan parked {
		ch := make(chan parked, 1)
		go func() {
			rec := httptest.NewRecorder()
			req := httptest.NewRequest(http.MethodPost, "/v1/gemm",
				bytes.NewReader([]byte(`{"n": 16, "timeout_ms": 2000}`)))
			h.ServeHTTP(rec, req)
			ch <- parked{rec}
		}()
		return ch
	}
	waitFor := func(cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatal("service did not reach the expected fill state")
			}
			time.Sleep(time.Millisecond)
		}
	}
	release := make([]chan parked, 0, 2)
	release = append(release, park())
	// First job admitted and picked up by the dispatcher (queue drained).
	waitFor(func() bool { return s.m.Accepted.Value() >= 1 && s.sched.Len() == 0 })
	release = append(release, park())
	// Second job admitted and parked in the depth-1 queue.
	waitFor(func() bool { return s.m.Accepted.Value() >= 2 && s.sched.Len() == 1 })
	rec := post(t, h, "/v1/gemm", `{"n": 16}`)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (body %s)", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	var e errorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Kind != "overloaded" {
		t.Errorf("error envelope %s (err %v)", rec.Body, err)
	}
	for _, ch := range release {
		p := <-ch // parked handlers resolve as 503 queue timeouts
		if p.rec.Code != http.StatusServiceUnavailable {
			t.Errorf("parked request: status %d, want 503", p.rec.Code)
		}
	}
}

// TestAPIHealthz checks the liveness payload.
func TestAPIHealthz(t *testing.T) {
	s := newTestService(t, Config{MaxConcurrency: 1, QueueDepth: 2})
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec := httptest.NewRecorder()
	NewHandler(s).ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var payload map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
		t.Fatal(err)
	}
	if payload["status"] != "ok" {
		t.Errorf("payload %v", payload)
	}
}
