package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestGracefulDrain is the in-process abftd shutdown contract: a request
// in flight when shutdown begins still completes with a classified
// answer, the server's Shutdown only returns once it has, and anything
// arriving after the service closes is refused with the typed closed
// error — never dropped mid-ladder, never answered wrong.
func TestGracefulDrain(t *testing.T) {
	s := New(Config{MaxConcurrency: 1, QueueDepth: 8, QueueTimeout: time.Minute})
	ts := httptest.NewServer(NewHandler(s))
	// Not deferred: the test closes both in drain order, like abftd's
	// signal handler (server Shutdown first, then Service.Close).

	// Pin the only slot so the HTTP request parks inside the service.
	s.sem <- struct{}{}

	inflight := make(chan *http.Response, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/gemm", "application/json",
			bytes.NewReader([]byte(`{"n": 32, "seed": 3, "faults": 1}`)))
		if err != nil {
			t.Error(err)
			inflight <- nil
			return
		}
		inflight <- resp
	}()
	pollUntil(t, "request to park in the queue", func() bool { return s.m.Accepted.Value() == 1 })

	// Begin graceful shutdown while the request is parked. Shutdown must
	// block on the in-flight connection.
	shutdownDone := make(chan error, 1)
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	go func() { shutdownDone <- ts.Config.Shutdown(shutCtx) }()
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) while a request was still in flight", err)
	case <-time.After(100 * time.Millisecond):
	}

	// Release the slot: the parked request must complete with a
	// classified outcome, and only then may Shutdown return.
	<-s.sem
	resp := <-inflight
	if resp == nil {
		t.Fatal("in-flight request failed")
	}
	var body Response
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !okOutcomes[body.Outcome] {
		t.Fatalf("drained request: status %d outcome %q", resp.StatusCode, body.Outcome)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// Now the service closes; late work is refused, typed, at both layers.
	s.Close()
	if _, err := s.Do(context.Background(), Request{Kernel: "gemm", N: 32, Seed: 4}); !errors.Is(err, ErrClosed) {
		t.Fatalf("late Do: err = %v, want ErrClosed", err)
	}
	req := httptest.NewRequest("POST", "/v1/gemm", bytes.NewReader([]byte(`{"n": 32, "seed": 5}`)))
	rec := httptest.NewRecorder()
	NewHandler(s).ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("late HTTP request: status %d, want 503", rec.Code)
	}
	var e errorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
		t.Fatal(err)
	}
	if e.Kind != "closed" {
		t.Errorf("late HTTP request: kind %q, want closed", e.Kind)
	}
	if rec.Header().Get("Connection") != "close" {
		t.Error("late HTTP request missing Connection: close")
	}
}
