package serve

import (
	"errors"
	"fmt"
	"math"

	"coopabft/internal/abft"
	"coopabft/internal/campaign"
	"coopabft/internal/mat"
	"coopabft/internal/recovery"
)

// runLadder32 is the mixed-precision analogue of runLadder: it drives
// abft.GEMM32 — whose online checksums and adaptive thresholds ARE the
// verification — through the same transient-fault recovery discipline the
// float64 coordinator provides. Detected result corruption is repaired in
// place (Corrected); operand corruption is detection-only, so the attempt
// is discarded and rebuilt from the seed (Restarted), bounded by the
// MaxRestarts budget; anything else is Aborted. GEMM32 runs on plain
// memory, outside the simulated-DRAM coordinator, so the fault model is the
// splitmix bit-flip plan below rather than the bifit kinds.
func (s *Service) runLadder32(j *job) (rep recovery.Report) {
	defer func() {
		if p := recover(); p != nil {
			rep = recovery.Report{Outcome: recovery.Aborted,
				Err: fmt.Errorf("serve: f32 kernel panicked: %v", p)}
		}
	}()

	p := j.req
	restarts, corrections, injected := 0, 0, 0
	for {
		if err := j.ctx.Err(); err != nil {
			return recovery.Report{Outcome: recovery.Aborted, Injected: injected,
				Restarts: restarts, RestartsTotal: restarts, Err: err}
		}
		g, err := abft.NewGEMM32(p.N, p.Seed)
		if err != nil {
			return recovery.Report{Outcome: recovery.Aborted, Err: err}
		}
		if restarts == 0 && p.Faults > 0 {
			// Transient model: faults strike the first incarnation only —
			// a rebuilt attempt reruns on fresh memory, like the float64
			// ladder's checkpoint replay.
			injected = armPlan32(g, p)
		}
		runErr := g.Run()
		corrections += len(g.Corrections)
		if runErr != nil {
			if !errors.Is(runErr, abft.ErrUncorrectable) {
				return recovery.Report{Outcome: recovery.Aborted, Injected: injected,
					Corrections: corrections, Restarts: restarts, RestartsTotal: restarts, Err: runErr}
			}
			restarts++
			if restarts > s.cfg.MaxRestarts {
				return recovery.Report{Outcome: recovery.Aborted, Injected: injected,
					Corrections: corrections, Restarts: restarts, RestartsTotal: restarts,
					Err: fmt.Errorf("serve: f32 restart budget (%d) exhausted: %w", s.cfg.MaxRestarts, runErr)}
			}
			continue
		}
		if p.Faults > 0 {
			// Chaos requests are oracle-gated like the float64 ladder: the
			// answer must match a pristine recomputation under the adaptive
			// element bound, or the request refuses rather than lie.
			if err := oracle32(g, p); err != nil {
				return recovery.Report{Outcome: recovery.Aborted, Injected: injected,
					Corrections: corrections, Restarts: restarts, RestartsTotal: restarts, Err: err}
			}
		}
		rep = recovery.Report{Outcome: recovery.Corrected, Injected: injected,
			Corrections: corrections, Restarts: restarts, RestartsTotal: restarts}
		if restarts > 0 {
			rep.Outcome = recovery.Restarted
		}
		return rep
	}
}

// armPlan32 derives the request's bit-flip schedule from its seed — the
// same splitmix stream discipline as injectionPlan, so a replayed seed
// flips the same bits at the same panels — and installs it on the run's
// OnPanel hook. Each fault flips the top exponent bit (bit 30) of one
// element of C, A, or B at the top of one panel: C flips exercise
// locate-and-repair, operand flips exercise detect-and-restart.
func armPlan32(g *abft.GEMM32, p Parsed) int {
	type flip struct {
		panel, target int
		idx           int
	}
	st := p.Seed
	next := func() uint64 { st++; return campaign.Splitmix64(st) }
	plan := make([]flip, 0, p.Faults)
	for e := 0; e < p.Faults; e++ {
		f := flip{panel: int(next() % uint64(g.Panels()))}
		f.target = int(next() % 4) // 0,1 → C (result faults dominate), 2 → A, 3 → B
		switch f.target {
		case 2:
			f.idx = int(next() % uint64(len(g.A.Data)))
		case 3:
			f.idx = int(next() % uint64(len(g.B.Data)))
		default:
			f.idx = int(next() % uint64(len(g.C.Data)))
		}
		plan = append(plan, f)
	}
	g.OnPanel = func(panel int) {
		for _, f := range plan {
			if f.panel != panel {
				continue
			}
			d := g.C.Data
			if f.target == 2 {
				d = g.A.Data
			} else if f.target == 3 {
				d = g.B.Data
			}
			d[f.idx] = math.Float32frombits(math.Float32bits(d[f.idx]) ^ (1 << 30))
		}
	}
	return len(plan)
}

// oracle32 recomputes the answer from pristine operands (regenerated from
// the seed, so injected operand corruption cannot launder itself into the
// reference) in float64 and compares under the adaptive element bound.
func oracle32(g *abft.GEMM32, p Parsed) error {
	a := mat.Random32(p.N, p.N, p.Seed)
	b := mat.Random32(p.N, p.N, p.Seed+1)
	ref := mat.New(p.N, p.N)
	mat.MulAddInto(ref, a.To64(), b.To64())
	am, bm := g.OperandMoments()
	for i := 0; i < p.N; i++ {
		for j := 0; j < p.N; j++ {
			want := ref.At(i, j)
			if math.Abs(float64(g.C.At(i, j))-want) > abft.ElementBound32(g.K, want, am, bm) {
				return fmt.Errorf("serve: f32 oracle mismatch at (%d,%d): got %g want %g",
					i, j, g.C.At(i, j), want)
			}
		}
	}
	return nil
}
