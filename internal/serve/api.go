package serve

import (
	"encoding/json"
	"errors"
	"io"
	"math"
	"net/http"
	"strconv"
	"time"
)

// maxBodyBytes bounds request bodies; compute requests are tiny JSON.
const maxBodyBytes = 1 << 16

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
	// Kind is a stable machine-readable discriminator:
	// bad_request|throttled|shed|overloaded|queue_timeout|closed|internal.
	// Throttled means the tenant exceeded its own quota (back off for
	// Retry-After); shed means speculative work was sacrificed to overload
	// (resubmit when load drops, or as protected); overloaded is the
	// untyped legacy form.
	Kind string `json:"kind"`
}

// RetryAfterSeconds renders a Retry-After header value: whole seconds,
// rounded up, at least 1.
func RetryAfterSeconds(d time.Duration) string {
	secs := int64(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// NewHandler exposes the service's request path:
//
//	POST /v1/gemm      run FT-DGEMM
//	POST /v1/cholesky  run FT-Cholesky
//	POST /v1/cg        run FT-CG
//	POST /v1/block     run one sharded-job block task
//	POST /v1/verify    run one replicated verification pass (verify-vote)
//	POST /v1/longjob   run one long-task incarnation (CG, checkpoint-streaming)
//	GET  /v1/events    stream the error bus as NDJSON (?replay=N)
//	GET  /healthz      liveness + queue snapshot
//
// Debug endpoints (/debug/vars, /debug/pprof) are the daemon's business —
// it decides what to expose on which listener.
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()
	for _, k := range Kernels {
		mux.HandleFunc("POST /v1/"+k.String(), s.handleKernel(k.String()))
	}
	mux.HandleFunc("POST /v1/block", s.handleBlock)
	mux.HandleFunc("POST /v1/verify", s.handleVerify)
	mux.HandleFunc("POST /v1/longjob", s.handleLongJob)
	mux.HandleFunc("GET /v1/events", s.handleEvents)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// handleKernel decodes the JSON body, forces the kernel from the route,
// and maps the service's typed errors onto HTTP status codes.
func (s *Service) handleKernel(kernel string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req Request
		dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
		if err := dec.Decode(&req); err != nil && !errors.Is(err, io.EOF) {
			writeErr(w, http.StatusBadRequest, "bad_request", "invalid JSON body: "+err.Error())
			return
		}
		req.Kernel = kernel

		resp, err := s.Do(r.Context(), req)
		var throttle *ThrottleError
		var shed *ShedError
		switch {
		case err == nil:
			writeJSON(w, http.StatusOK, resp)
		case errors.Is(err, ErrBadRequest):
			writeErr(w, http.StatusBadRequest, "bad_request", err.Error())
		case errors.As(err, &throttle):
			w.Header().Set("Retry-After", RetryAfterSeconds(throttle.RetryAfter))
			writeErr(w, http.StatusTooManyRequests, "throttled", err.Error())
		case errors.As(err, &shed):
			w.Header().Set("Retry-After", "1")
			writeErr(w, http.StatusTooManyRequests, "shed", err.Error())
		case errors.Is(err, ErrOverloaded):
			w.Header().Set("Retry-After", "1")
			writeErr(w, http.StatusTooManyRequests, "overloaded", err.Error())
		case errors.Is(err, ErrQueueTimeout):
			writeErr(w, http.StatusServiceUnavailable, "queue_timeout", err.Error())
		case errors.Is(err, ErrClosed):
			w.Header().Set("Connection", "close")
			writeErr(w, http.StatusServiceUnavailable, "closed", err.Error())
		default:
			writeErr(w, http.StatusInternalServerError, "internal", err.Error())
		}
	}
}

// blockMaxBodyBytes bounds block-task bodies: the grid splits scale with
// the job size, so the limit is looser than the interactive one.
const blockMaxBodyBytes = 1 << 20

// handleBlock decodes and runs one sharded-job block task, mapping the
// same typed errors onto the same status codes as the kernel routes.
func (s *Service) handleBlock(w http.ResponseWriter, r *http.Request) {
	var task BlockTask
	dec := json.NewDecoder(io.LimitReader(r.Body, blockMaxBodyBytes))
	if err := dec.Decode(&task); err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", "invalid JSON body: "+err.Error())
		return
	}
	res, err := s.DoBlock(r.Context(), task)
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, res)
	case errors.Is(err, ErrBadRequest):
		writeErr(w, http.StatusBadRequest, "bad_request", err.Error())
	case errors.Is(err, ErrQueueTimeout):
		writeErr(w, http.StatusServiceUnavailable, "queue_timeout", err.Error())
	case errors.Is(err, ErrClosed):
		w.Header().Set("Connection", "close")
		writeErr(w, http.StatusServiceUnavailable, "closed", err.Error())
	default:
		writeErr(w, http.StatusInternalServerError, "internal", err.Error())
	}
}

// verifyMaxBodyBytes bounds verification-task bodies: the claimed answer
// is n·n·8 bytes (base64 in JSON), so the limit scales with the
// interactive MaxN rather than the tiny kernel-request bodies.
const verifyMaxBodyBytes = 4 << 20

// handleVerify decodes and runs one replicated verification pass, mapping
// the same typed errors onto the same status codes as the other routes.
func (s *Service) handleVerify(w http.ResponseWriter, r *http.Request) {
	var task VerifyTask
	dec := json.NewDecoder(io.LimitReader(r.Body, verifyMaxBodyBytes))
	if err := dec.Decode(&task); err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", "invalid JSON body: "+err.Error())
		return
	}
	res, err := s.DoVerify(r.Context(), task)
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, res)
	case errors.Is(err, ErrBadRequest):
		writeErr(w, http.StatusBadRequest, "bad_request", err.Error())
	case errors.Is(err, ErrQueueTimeout):
		writeErr(w, http.StatusServiceUnavailable, "queue_timeout", err.Error())
	case errors.Is(err, ErrClosed):
		w.Header().Set("Connection", "close")
		writeErr(w, http.StatusServiceUnavailable, "closed", err.Error())
	default:
		writeErr(w, http.StatusInternalServerError, "internal", err.Error())
	}
}

// longMaxBodyBytes bounds long-task bodies: a shipped snapshot carries the
// CG state vectors (x and b), so the limit scales with MaxJobN²/16 grid
// areas rather than interactive requests.
const longMaxBodyBytes = 64 << 20

// handleLongJob decodes and runs one long-task incarnation, mapping the
// same typed errors onto the same status codes as the other routes.
func (s *Service) handleLongJob(w http.ResponseWriter, r *http.Request) {
	var task LongTask
	dec := json.NewDecoder(io.LimitReader(r.Body, longMaxBodyBytes))
	if err := dec.Decode(&task); err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", "invalid JSON body: "+err.Error())
		return
	}
	res, err := s.DoLong(r.Context(), task)
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, res)
	case errors.Is(err, ErrBadRequest):
		writeErr(w, http.StatusBadRequest, "bad_request", err.Error())
	case errors.Is(err, ErrQueueTimeout):
		writeErr(w, http.StatusServiceUnavailable, "queue_timeout", err.Error())
	case errors.Is(err, ErrClosed):
		w.Header().Set("Connection", "close")
		writeErr(w, http.StatusServiceUnavailable, "closed", err.Error())
	default:
		writeErr(w, http.StatusInternalServerError, "internal", err.Error())
	}
}

// handleEvents streams the service's error bus (push-on-fault: the gateway
// holds one of these open per node instead of relying on probe cadence).
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	ServeEventStream(w, r, s.bus, s.quit)
}

// handleHealthz reports liveness with a small load snapshot, so probes and
// the load generator's readiness wait share one endpoint.
func (s *Service) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      "ok",
		"queue_depth": s.m.QueueDepth.Value(),
		"running":     s.m.Running.Value(),
		"inflight":    s.m.Inflight.Value(),
		"queue_cap":   s.m.QueueCap.Value(),
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, kind, msg string) {
	writeJSON(w, code, errorBody{Error: msg, Kind: kind})
}
