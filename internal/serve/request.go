package serve

import (
	"errors"
	"fmt"
	"strings"

	"coopabft/internal/bifit"
	"coopabft/internal/core"
)

// ErrBadRequest reports a request the service refuses to admit: unknown
// kernel or strategy, out-of-range problem size, or an unparseable fault
// spec. The HTTP layer maps it to 400.
var ErrBadRequest = errors.New("serve: bad request")

// Kernel identifies which ABFT workload a request runs.
type Kernel int

const (
	// KernelGEMM is FT-DGEMM — the only kernel the batching stage
	// coalesces, since small GEMMs dominate serving traffic.
	KernelGEMM Kernel = iota
	// KernelCholesky is FT-Cholesky; its unprotected workspace makes it
	// the Case-4-capable workload.
	KernelCholesky
	// KernelCG is FT-CG, the memory-bound iterative workload.
	KernelCG
)

// String returns the wire name (the /v1/<kernel> path component).
func (k Kernel) String() string {
	switch k {
	case KernelGEMM:
		return "gemm"
	case KernelCholesky:
		return "cholesky"
	case KernelCG:
		return "cg"
	default:
		return fmt.Sprintf("Kernel(%d)", int(k))
	}
}

// Kernels lists the served kernels in wire order.
var Kernels = []Kernel{KernelGEMM, KernelCholesky, KernelCG}

// ParseKernel maps a wire name to its Kernel.
func ParseKernel(name string) (Kernel, error) {
	for _, k := range Kernels {
		if strings.EqualFold(k.String(), name) {
			return k, nil
		}
	}
	return 0, fmt.Errorf("%w: unknown kernel %q (want one of %v)", ErrBadRequest, name, Kernels)
}

// parseKind maps a wire fault-kind name to its bifit.Kind.
func parseKind(name string) (bifit.Kind, error) {
	for _, k := range []bifit.Kind{bifit.SingleBit, bifit.DoubleBitSameWord, bifit.ChipFailure, bifit.Scattered} {
		if strings.EqualFold(k.String(), name) {
			return k, nil
		}
	}
	return 0, fmt.Errorf("%w: unknown fault kind %q", ErrBadRequest, name)
}

// Request is one unit of work, in its wire (JSON) form. Kernel and
// strategy arrive as strings and are resolved against core.Strategy during
// admission — the serving analogue of the paper's malloc_ecc flag: each
// request picks the ECC configuration its data runs under.
type Request struct {
	// Kernel is gemm|cholesky|cg. The HTTP layer sets it from the URL
	// path; in-process callers set it directly.
	Kernel string `json:"kernel,omitempty"`
	// N is the matrix dimension for gemm/cholesky (default 64).
	N int `json:"n,omitempty"`
	// NX, NY give the CG grid (defaults 16×16).
	NX int `json:"nx,omitempty"`
	NY int `json:"ny,omitempty"`
	// Strategy is the paper label (W_CK, P_CK+No_ECC, ...); empty selects
	// DefaultStrategy.
	Strategy string `json:"strategy,omitempty"`
	// Seed makes the request deterministic: problem data and any injected
	// faults derive from it.
	Seed uint64 `json:"seed"`
	// Faults asks the service to inject that many DRAM faults mid-run via
	// the bifit coordinator (chaos-in-production testing; capped at
	// MaxFaults).
	Faults int `json:"faults,omitempty"`
	// FaultKind is single-bit|double-bit|chip-failure|scattered (default
	// single-bit; only meaningful with Faults > 0).
	FaultKind string `json:"fault_kind,omitempty"`
	// TimeoutMS bounds the request end to end (queue wait + execution);
	// the deadline propagates into the kernel's step loop.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// DefaultStrategy is used when a request does not pick one: relax ABFT
// data to SECDED, keep chipkill elsewhere — the paper's headline ARE
// configuration.
const DefaultStrategy = core.PartialChipkillSECDED

// parsed is the admitted, typed form of a Request.
type parsed struct {
	kernel   Kernel
	n        int // gemm/cholesky dimension
	nx, ny   int // cg grid
	strategy core.Strategy
	seed     uint64
	faults   int
	kind     bifit.Kind
}

// size returns the user-facing problem size (n, or the CG grid area).
func (p parsed) size() int {
	if p.kernel == KernelCG {
		return p.nx * p.ny
	}
	return p.n
}

// normalize validates a wire request against the service limits and
// resolves its string fields, applying defaults.
func (c Config) normalize(r Request) (parsed, error) {
	var p parsed
	var err error
	if p.kernel, err = ParseKernel(r.Kernel); err != nil {
		return p, err
	}
	if p.strategy = DefaultStrategy; r.Strategy != "" {
		s, err := core.ParseStrategy(r.Strategy)
		if err != nil {
			return p, fmt.Errorf("%w: %w", ErrBadRequest, err)
		}
		p.strategy = s
	}
	p.n = r.N
	if p.n == 0 {
		p.n = 64
	}
	switch p.kernel {
	case KernelGEMM, KernelCholesky:
		if p.n < 8 || p.n > c.MaxN {
			return p, fmt.Errorf("%w: n=%d outside [8, %d]", ErrBadRequest, p.n, c.MaxN)
		}
	case KernelCG:
		p.nx, p.ny = r.NX, r.NY
		if p.nx == 0 {
			p.nx = 16
		}
		if p.ny == 0 {
			p.ny = 16
		}
		if p.nx < 4 || p.ny < 4 || p.nx*p.ny > c.MaxN*c.MaxN/16 {
			return p, fmt.Errorf("%w: cg grid %dx%d outside [4x4, area %d]",
				ErrBadRequest, p.nx, p.ny, c.MaxN*c.MaxN/16)
		}
	}
	p.seed = r.Seed
	p.faults = r.Faults
	if p.faults < 0 || p.faults > c.MaxFaults {
		return p, fmt.Errorf("%w: faults=%d outside [0, %d]", ErrBadRequest, p.faults, c.MaxFaults)
	}
	if p.kind = bifit.SingleBit; r.FaultKind != "" {
		if p.kind, err = parseKind(r.FaultKind); err != nil {
			return p, err
		}
	}
	return p, nil
}

// Response reports one classified request. Outcome is always one of the
// ladder's three terminal labels — the service never returns an unverified
// result, so there is no "ok but unchecked" state.
type Response struct {
	Kernel   string `json:"kernel"`
	N        int    `json:"n"`
	Strategy string `json:"strategy"`
	// Outcome is corrected|restarted|aborted (recovery.Outcome.String).
	Outcome string `json:"outcome"`
	// Error says why an aborted run gave up (empty otherwise).
	Error string `json:"error,omitempty"`

	Injected     int `json:"injected"`
	HWCorrected  int `json:"hw_corrected"`
	Corrections  int `json:"abft_corrections"`
	Degradations int `json:"degradations"`
	Restarts     int `json:"restarts"`

	// BatchSize is how many requests shared this request's execution
	// batch (1 when it ran alone).
	BatchSize int     `json:"batch_size"`
	QueueMS   float64 `json:"queue_ms"`
	RunMS     float64 `json:"run_ms"`

	// Node and GatewayRetries are stamped by the cluster gateway on the
	// way back out (empty/zero when a daemon is hit directly): which
	// backend delivered this answer and how many placement attempts it
	// took. Retries happen only on connection failure or 503 — a delivered
	// classification is never re-executed.
	Node           string `json:"node,omitempty"`
	GatewayRetries int    `json:"gw_retries,omitempty"`
}
