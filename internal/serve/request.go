package serve

import (
	"errors"
	"fmt"
	"strings"

	"coopabft/internal/abft"
	"coopabft/internal/bifit"
	"coopabft/internal/core"
)

// ErrBadRequest reports a request the service refuses to admit: unknown
// kernel or strategy, out-of-range problem size, or an unparseable fault
// spec. The HTTP layer maps it to 400.
var ErrBadRequest = errors.New("serve: bad request")

// Kernel identifies which ABFT workload a request runs.
type Kernel int

const (
	// KernelGEMM is FT-DGEMM — the only kernel the batching stage
	// coalesces, since small GEMMs dominate serving traffic.
	KernelGEMM Kernel = iota
	// KernelCholesky is FT-Cholesky; its unprotected workspace makes it
	// the Case-4-capable workload.
	KernelCholesky
	// KernelCG is FT-CG, the memory-bound iterative workload.
	KernelCG
)

// String returns the wire name (the /v1/<kernel> path component).
func (k Kernel) String() string {
	switch k {
	case KernelGEMM:
		return "gemm"
	case KernelCholesky:
		return "cholesky"
	case KernelCG:
		return "cg"
	default:
		return fmt.Sprintf("Kernel(%d)", int(k))
	}
}

// Valid reports whether k is one of the served kernels.
func (k Kernel) Valid() bool { return k >= KernelGEMM && k <= KernelCG }

// Wire returns the route component for k, refusing invalid values: the
// String fallback ("Kernel(%d)") is a diagnostic label and must never be
// spliced into a URL path, so every route-construction site goes through
// Wire instead of String.
func (k Kernel) Wire() (string, error) {
	if !k.Valid() {
		return "", fmt.Errorf("%w: invalid kernel value %d", ErrBadRequest, int(k))
	}
	return k.String(), nil
}

// Kernels lists the served kernels in wire order.
var Kernels = []Kernel{KernelGEMM, KernelCholesky, KernelCG}

// Dtype selects the arithmetic precision a request runs at.
type Dtype int

const (
	// DtypeF64 is the classic double-precision path through the recovery
	// coordinator (the default).
	DtypeF64 Dtype = iota
	// DtypeF32 is the mixed-precision path: float32 data and arithmetic,
	// float64 checksums, variance-adaptive detection thresholds. Serving-
	// native: gemm-only, fused verify only, integrity none.
	DtypeF32
)

func (d Dtype) String() string {
	if d == DtypeF32 {
		return "f32"
	}
	return "f64"
}

// ParseDtype maps a wire dtype name to its Dtype; empty selects f64.
func ParseDtype(name string) (Dtype, error) {
	switch {
	case name == "" || strings.EqualFold(name, "f64"):
		return DtypeF64, nil
	case strings.EqualFold(name, "f32"):
		return DtypeF32, nil
	default:
		return 0, fmt.Errorf("%w: unknown dtype %q (want f64|f32)", ErrBadRequest, name)
	}
}

// Priority is the request's shed class under overload.
type Priority int

const (
	// PriorityProtected work is never evicted to make room for speculative
	// work and keeps its quota share under a flood.
	PriorityProtected Priority = iota
	// PrioritySpeculative work is shed first: evicted from the queue when a
	// protected request arrives at capacity, rejected outright when the
	// queue is full.
	PrioritySpeculative
)

func (p Priority) String() string {
	if p == PrioritySpeculative {
		return "speculative"
	}
	return "protected"
}

// ParsePriority resolves a wire priority name; empty derives the class from
// the ECC strategy — write-back (W_*) strategies tolerate rerun and default
// to speculative, partial-protection (P_*) strategies are user-facing and
// default to protected.
func ParsePriority(name string, strat core.Strategy) (Priority, error) {
	switch {
	case name == "":
		if strings.HasPrefix(strat.String(), "W_") {
			return PrioritySpeculative, nil
		}
		return PriorityProtected, nil
	case strings.EqualFold(name, "protected"):
		return PriorityProtected, nil
	case strings.EqualFold(name, "speculative"):
		return PrioritySpeculative, nil
	default:
		return 0, fmt.Errorf("%w: unknown priority %q (want protected|speculative)", ErrBadRequest, name)
	}
}

// DefaultTenant is the tenant requests without a tenant field bill to.
const DefaultTenant = "default"

// maxTenantLen bounds tenant names; they appear in metrics keys and logs.
const maxTenantLen = 64

// parseTenant validates a wire tenant name: [A-Za-z0-9._-], at most
// maxTenantLen; empty maps to DefaultTenant.
func parseTenant(name string) (string, error) {
	if name == "" {
		return DefaultTenant, nil
	}
	if len(name) > maxTenantLen {
		return "", fmt.Errorf("%w: tenant name longer than %d bytes", ErrBadRequest, maxTenantLen)
	}
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return "", fmt.Errorf("%w: tenant name %q has invalid character %q", ErrBadRequest, name, c)
		}
	}
	return name, nil
}

// ParseKernel maps a wire name to its Kernel.
func ParseKernel(name string) (Kernel, error) {
	for _, k := range Kernels {
		if strings.EqualFold(k.String(), name) {
			return k, nil
		}
	}
	return 0, fmt.Errorf("%w: unknown kernel %q (want one of %v)", ErrBadRequest, name, Kernels)
}

// parseKind maps a wire fault-kind name to its bifit.Kind.
func parseKind(name string) (bifit.Kind, error) {
	for _, k := range []bifit.Kind{bifit.SingleBit, bifit.DoubleBitSameWord, bifit.ChipFailure, bifit.Scattered} {
		if strings.EqualFold(k.String(), name) {
			return k, nil
		}
	}
	return 0, fmt.Errorf("%w: unknown fault kind %q", ErrBadRequest, name)
}

// Request is one unit of work, in its wire (JSON) form. Kernel and
// strategy arrive as strings and are resolved against core.Strategy during
// admission — the serving analogue of the paper's malloc_ecc flag: each
// request picks the ECC configuration its data runs under.
type Request struct {
	// Kernel is gemm|cholesky|cg. The HTTP layer sets it from the URL
	// path; in-process callers set it directly.
	Kernel string `json:"kernel,omitempty"`
	// N is the matrix dimension for gemm/cholesky (default 64).
	N int `json:"n,omitempty"`
	// NX, NY give the CG grid (defaults 16×16).
	NX int `json:"nx,omitempty"`
	NY int `json:"ny,omitempty"`
	// Strategy is the paper label (W_CK, P_CK+No_ECC, ...); empty selects
	// DefaultStrategy.
	Strategy string `json:"strategy,omitempty"`
	// Seed makes the request deterministic: problem data and any injected
	// faults derive from it.
	Seed uint64 `json:"seed"`
	// Faults asks the service to inject that many DRAM faults mid-run via
	// the bifit coordinator (chaos-in-production testing; capped at
	// MaxFaults).
	Faults int `json:"faults,omitempty"`
	// FaultKind is single-bit|double-bit|chip-failure|scattered (default
	// single-bit; only meaningful with Faults > 0).
	FaultKind string `json:"fault_kind,omitempty"`
	// TimeoutMS bounds the request end to end (queue wait + execution);
	// the deadline propagates into the kernel's step loop.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// VerifyMode is full|notified|fused (default notified). Fused selects
	// the kernel-resident online checks and is gemm-only — requests pairing
	// it with another kernel are rejected at admission.
	VerifyMode string `json:"verify_mode,omitempty"`
	// Integrity is none|vote|verify-vote (default none). Non-none modes
	// buy Byzantine answer coverage at the cluster gateway: the request is
	// replicated across distinct nodes and delivered only on an output-
	// signature majority. Verify-vote is gemm-only — requests pairing it
	// with another kernel are rejected at admission, mirroring the fused
	// verify-mode rule. A bare node accepts non-none integrity too (it
	// computes the answer signature the gateway votes on).
	Integrity string `json:"integrity,omitempty"`
	// Replicas is the vote's R (distinct nodes asked for the same answer);
	// 0 defers to the gateway's configured default. Only meaningful with
	// Integrity != none; capped at MaxReplicas.
	Replicas int `json:"replicas,omitempty"`
	// Tenant is who this request bills to for quota, fair-queueing, and
	// shedding purposes ([A-Za-z0-9._-], ≤64 bytes; empty = "default").
	Tenant string `json:"tenant,omitempty"`
	// Priority is protected|speculative; empty derives from the strategy
	// (W_* write-back strategies are speculative, the rest protected).
	Priority string `json:"priority,omitempty"`
	// Dtype is f64|f32 (default f64). f32 selects the mixed-precision GEMM
	// with variance-adaptive thresholds: gemm-only, fused verify only,
	// integrity none — other combinations are rejected at admission.
	Dtype string `json:"dtype,omitempty"`
}

// DefaultStrategy is used when a request does not pick one: relax ABFT
// data to SECDED, keep chipkill elsewhere — the paper's headline ARE
// configuration.
const DefaultStrategy = core.PartialChipkillSECDED

// Limits bounds what ParseRequest admits. Every admission point — the
// daemon's Do, the cluster gateway, and the block-task path — builds its
// Limits from its own configuration but shares the validation logic and
// error taxonomy below, so a 400 means the same thing at every layer.
type Limits struct {
	// MaxN caps gemm/cholesky problem sizes; the CG grid area is capped
	// at MaxN²/16.
	MaxN int
	// MaxFaults caps per-request fault injection.
	MaxFaults int
}

// Limits derives the service's admission bounds from its configuration.
func (c Config) Limits() Limits { return Limits{MaxN: c.MaxN, MaxFaults: c.MaxFaults} }

// Parsed is the admitted, typed form of a Request — the output of
// ParseRequest, shared by the daemon, the cluster gateway, and the
// block-task path.
type Parsed struct {
	Kernel    Kernel
	N         int // gemm/cholesky dimension
	NX, NY    int // cg grid
	Strategy  core.Strategy
	Seed      uint64
	Faults    int
	Kind      bifit.Kind
	Mode      abft.VerifyMode
	Integrity Integrity
	Replicas  int // requested vote width R; 0 = caller default
	Tenant    string
	Priority  Priority
	Dtype     Dtype
}

// Size returns the user-facing problem size (n, or the CG grid area).
func (p Parsed) Size() int {
	if p.Kernel == KernelCG {
		return p.NX * p.NY
	}
	return p.N
}

// ParseRequest is the single admission/validation entrypoint: it resolves
// a wire Request's string fields (kernel, strategy, fault kind), applies
// defaults, and bounds the problem size and fault count against l. Every
// failure wraps ErrBadRequest, so the 400 taxonomy is defined exactly once
// instead of being re-derived per handler.
func ParseRequest(l Limits, r Request) (Parsed, error) {
	var p Parsed
	var err error
	if p.Kernel, err = ParseKernel(r.Kernel); err != nil {
		return p, err
	}
	if p.Strategy = DefaultStrategy; r.Strategy != "" {
		s, err := core.ParseStrategy(r.Strategy)
		if err != nil {
			return p, fmt.Errorf("%w: %w", ErrBadRequest, err)
		}
		p.Strategy = s
	}
	p.N = r.N
	if p.N == 0 {
		p.N = 64
	}
	switch p.Kernel {
	case KernelGEMM, KernelCholesky:
		if p.N < 8 || p.N > l.MaxN {
			return p, fmt.Errorf("%w: n=%d outside [8, %d]", ErrBadRequest, p.N, l.MaxN)
		}
	case KernelCG:
		p.NX, p.NY = r.NX, r.NY
		if p.NX == 0 {
			p.NX = 16
		}
		if p.NY == 0 {
			p.NY = 16
		}
		if p.NX < 4 || p.NY < 4 || p.NX*p.NY > l.MaxN*l.MaxN/16 {
			return p, fmt.Errorf("%w: cg grid %dx%d outside [4x4, area %d]",
				ErrBadRequest, p.NX, p.NY, l.MaxN*l.MaxN/16)
		}
	}
	p.Seed = r.Seed
	p.Faults = r.Faults
	if p.Faults < 0 || p.Faults > l.MaxFaults {
		return p, fmt.Errorf("%w: faults=%d outside [0, %d]", ErrBadRequest, p.Faults, l.MaxFaults)
	}
	if p.Kind = bifit.SingleBit; r.FaultKind != "" {
		if p.Kind, err = parseKind(r.FaultKind); err != nil {
			return p, err
		}
	}
	if p.Mode = abft.NotifiedVerify; r.VerifyMode != "" {
		if p.Mode, err = abft.ParseVerifyMode(r.VerifyMode); err != nil {
			return p, fmt.Errorf("%w: %w", ErrBadRequest, err)
		}
	}
	if p.Mode == abft.FusedVerify && p.Kernel != KernelGEMM {
		return p, fmt.Errorf("%w: verify mode %q requires kernel gemm, got %q",
			ErrBadRequest, p.Mode, p.Kernel)
	}
	if p.Integrity, err = ParseIntegrity(r.Integrity); err != nil {
		return p, err
	}
	if p.Integrity == IntegrityVerifyVote && p.Kernel != KernelGEMM {
		return p, fmt.Errorf("%w: integrity %q replicates the gemm checksum pass and requires kernel gemm, got %q",
			ErrBadRequest, p.Integrity, p.Kernel)
	}
	p.Replicas = r.Replicas
	if p.Replicas < 0 || p.Replicas > MaxReplicas {
		return p, fmt.Errorf("%w: replicas=%d outside [0, %d]", ErrBadRequest, p.Replicas, MaxReplicas)
	}
	if p.Replicas != 0 && p.Integrity == IntegrityNone {
		return p, fmt.Errorf("%w: replicas=%d without an integrity mode (set integrity=vote|verify-vote)",
			ErrBadRequest, p.Replicas)
	}
	if p.Tenant, err = parseTenant(r.Tenant); err != nil {
		return p, err
	}
	if p.Priority, err = ParsePriority(r.Priority, p.Strategy); err != nil {
		return p, err
	}
	if p.Dtype, err = ParseDtype(r.Dtype); err != nil {
		return p, err
	}
	if p.Dtype == DtypeF32 {
		// The mixed-precision path is serving-native: it runs outside the
		// simulated-memory coordinator, so only the combinations its own
		// machinery covers are admitted.
		if p.Kernel != KernelGEMM {
			return p, fmt.Errorf("%w: dtype f32 requires kernel gemm, got %q", ErrBadRequest, p.Kernel)
		}
		if p.Integrity != IntegrityNone {
			return p, fmt.Errorf("%w: dtype f32 does not support integrity %q (answer voting is f64-only)",
				ErrBadRequest, p.Integrity)
		}
		if r.VerifyMode == "" {
			p.Mode = abft.FusedVerify // online ABFT is the f32 path's only verifier
		} else if p.Mode != abft.FusedVerify {
			return p, fmt.Errorf("%w: dtype f32 requires verify mode %q, got %q",
				ErrBadRequest, abft.FusedVerify, p.Mode)
		}
	}
	return p, nil
}

// Response reports one classified request. Outcome is always one of the
// ladder's three terminal labels — the service never returns an unverified
// result, so there is no "ok but unchecked" state.
type Response struct {
	Kernel   string `json:"kernel"`
	N        int    `json:"n"`
	Strategy string `json:"strategy"`
	// VerifyMode echoes the admitted verify mode (full|notified|fused).
	VerifyMode string `json:"verify_mode"`
	// Dtype echoes the precision for mixed-precision requests ("f32");
	// empty on the default f64 path.
	Dtype string `json:"dtype,omitempty"`
	// Tenant echoes who the request billed to.
	Tenant string `json:"tenant,omitempty"`
	// Outcome is corrected|restarted|aborted (recovery.Outcome.String).
	Outcome string `json:"outcome"`
	// Error says why an aborted run gave up (empty otherwise).
	Error string `json:"error,omitempty"`

	Injected     int `json:"injected"`
	HWCorrected  int `json:"hw_corrected"`
	Corrections  int `json:"abft_corrections"`
	Degradations int `json:"degradations"`
	Restarts     int `json:"restarts"`

	// BatchSize is how many requests shared this request's execution
	// batch (1 when it ran alone).
	BatchSize int     `json:"batch_size"`
	QueueMS   float64 `json:"queue_ms"`
	RunMS     float64 `json:"run_ms"`

	// Node and GatewayRetries are stamped by the cluster gateway on the
	// way back out (empty/zero when a daemon is hit directly): which
	// backend delivered this answer and how many placement attempts it
	// took. Retries happen only on connection failure or 503 — a delivered
	// classification is never re-executed.
	Node           string `json:"node,omitempty"`
	GatewayRetries int    `json:"gw_retries,omitempty"`

	// Integrity-tier fields, all absent on the integrity=none hot path.
	// Integrity echoes the admitted mode; AnswerSig is the node-computed
	// canonical output signature (abft.AnswerSig over the answer's
	// IEEE-754 bits) the gateway votes on; Answer carries the packed
	// output for verify-vote primaries (stripped by the gateway before
	// delivery); VoteReplicas/VoteAgree are stamped by the gateway: how
	// many replicas answered and how many signed the delivered answer.
	Integrity    string `json:"integrity,omitempty"`
	AnswerSig    string `json:"answer_sig,omitempty"`
	Answer       []byte `json:"answer,omitempty"`
	VoteReplicas int    `json:"vote_replicas,omitempty"`
	VoteAgree    int    `json:"vote_agree,omitempty"`
}
