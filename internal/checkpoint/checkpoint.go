// Package checkpoint provides the checkpoint/restart substrate the paper
// uses as the fallback for errors neither ECC nor ABFT can correct (§4
// Cases 3–4) and as the baseline ABFT eliminates ("reduce or even eliminate
// the expensive periodic checkpoint/rollback"). Snapshots go to a tagged,
// unprotected "stable storage" region, so when a Checkpointer is bound to a
// simulated machine, checkpoint and restart traffic is metered like any
// other memory traffic and their time/energy cost emerges from the model.
package checkpoint

import (
	"errors"
	"fmt"

	"coopabft/internal/trace"
)

// ErrNoCheckpoint is returned by Restore when nothing has been saved.
var ErrNoCheckpoint = errors.New("checkpoint: no checkpoint taken yet")

// ErrRestartBudget is returned by Restore when MaxRestarts is exhausted —
// the signal that escalation must terminate in an Aborted outcome instead
// of looping forever on a persistent fault.
var ErrRestartBudget = errors.New("checkpoint: restart budget exhausted")

// Alloc reserves n float64s of tagged storage (the kernel Env allocator
// signature).
type Alloc func(name string, n int, abft bool) trace.Region

// target couples application state with its live region for traffic
// metering. A zero region (standalone runs) is fine — touches are no-ops.
type target struct {
	name string
	data []float64
	reg  trace.Region
}

// Stats counts checkpoint activity.
type Stats struct {
	Checkpoints   int
	Restarts      int
	BytesPerCkpt  uint64
	StepsLost     int // work discarded by restarts (steps since last save)
	LastSavedStep int
}

// Checkpointer snapshots registered state at step boundaries.
type Checkpointer struct {
	// MaxRestarts caps how many times Restore may roll back (0 = unlimited).
	// The cap bounds the recovery ladder: a fault that keeps recurring after
	// MaxRestarts replays is treated as unsurvivable.
	MaxRestarts int

	mem     *trace.Memory
	alloc   Alloc
	storage trace.Region
	targets []target
	saved   [][]float64
	step    int
	have    bool
	stats   Stats
}

// New builds a checkpointer over the given instrumentation endpoint and
// allocator (use the kernel Env's fields; both may come from
// abft.Standalone for unmetered runs).
func New(mem *trace.Memory, alloc Alloc) *Checkpointer {
	return &Checkpointer{mem: mem, alloc: alloc}
}

// Register adds application state to the checkpoint set. reg is the state's
// live region (zero Region for unmetered data). Must be called before the
// first Checkpoint.
func (c *Checkpointer) Register(name string, data []float64, reg trace.Region) {
	if c.have {
		panic(fmt.Sprintf("checkpoint: Register(%q) after a checkpoint was taken", name))
	}
	c.targets = append(c.targets, target{name: name, data: data, reg: reg})
	c.stats.BytesPerCkpt += uint64(len(data)) * 8
}

// ensureStorage allocates stable storage once, sized to the state.
func (c *Checkpointer) ensureStorage() {
	if c.storage.Size > 0 || c.alloc == nil {
		return
	}
	total := 0
	for _, t := range c.targets {
		total += len(t.data)
	}
	c.storage = c.alloc("checkpoint.storage", total, false)
}

// Checkpoint snapshots all registered state at the given step, touching the
// live data (reads) and stable storage (writes) so the platform charges the
// traffic.
func (c *Checkpointer) Checkpoint(step int) {
	c.ensureStorage()
	if c.saved == nil {
		c.saved = make([][]float64, len(c.targets))
		for i, t := range c.targets {
			c.saved[i] = make([]float64, len(t.data))
		}
	}
	off := 0
	for i, t := range c.targets {
		copy(c.saved[i], t.data)
		c.mem.TouchFloats(t.reg, 0, len(t.data), false)
		c.mem.TouchFloats(c.storage, off, len(t.data), true)
		off += len(t.data)
	}
	c.have = true
	c.step = step
	c.stats.Checkpoints++
	c.stats.LastSavedStep = step
}

// Restore rolls every target back to the last checkpoint and returns the
// step to resume from. The lost work (currentStep − savedStep) is recorded.
func (c *Checkpointer) Restore(currentStep int) (int, error) {
	if !c.have {
		return 0, ErrNoCheckpoint
	}
	if c.MaxRestarts > 0 && c.stats.Restarts >= c.MaxRestarts {
		return 0, fmt.Errorf("%w: %d restart(s) used", ErrRestartBudget, c.stats.Restarts)
	}
	off := 0
	for i, t := range c.targets {
		copy(t.data, c.saved[i])
		c.mem.TouchFloats(c.storage, off, len(t.data), false)
		c.mem.TouchFloats(t.reg, 0, len(t.data), true)
		off += len(t.data)
	}
	c.stats.Restarts++
	if currentStep > c.step {
		c.stats.StepsLost += currentStep - c.step
	}
	return c.step, nil
}

// HasCheckpoint reports whether a snapshot exists.
func (c *Checkpointer) HasCheckpoint() bool { return c.have }

// Stats returns activity counters.
func (c *Checkpointer) Stats() Stats { return c.stats }
