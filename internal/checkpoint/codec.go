package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
)

// Snapshot is a Checkpointer's state in a node-independent form: the saved
// step, the restart budget consumed so far, and every registered region by
// name. It is what leaves the node — a worker streams encoded snapshots to
// the gateway, and after a migration the replacement worker Installs the
// decoded snapshot into a freshly built Checkpointer.
type Snapshot struct {
	Step     int
	Restarts int
	Regions  []SnapRegion
}

// SnapRegion is one named slice of checkpointed state.
type SnapRegion struct {
	Name string
	Data []float64
}

// Bytes returns the payload size of the region data in bytes.
func (s Snapshot) Bytes() int {
	n := 0
	for _, r := range s.Regions {
		n += len(r.Data) * 8
	}
	return n
}

// ErrBadSnapshot is returned by Decode for any malformed input — truncated,
// corrupted (checksum mismatch), or structurally invalid. Decode never
// panics on hostile bytes.
var ErrBadSnapshot = errors.New("checkpoint: malformed snapshot")

// ErrSnapshotVersion is returned by Decode when the wire version is not one
// this build understands.
var ErrSnapshotVersion = errors.New("checkpoint: unsupported snapshot version")

// ErrSnapshotMismatch is returned by Install when a snapshot's regions do
// not line up with the Checkpointer's registered targets (different
// workload, different problem size, or a renamed region).
var ErrSnapshotMismatch = errors.New("checkpoint: snapshot does not match registered state")

// Wire format (all integers little-endian):
//
//	magic    [4]byte  "ABCP"
//	version  uint16   snapVersion
//	reserved uint16   0
//	step     uint64
//	restarts uint32
//	nregions uint32
//	regions: nameLen uint32, name [nameLen]byte, count uint64, count×float64 bits
//	trailer  uint64   FNV-1a over every preceding byte
const (
	snapVersion    = 1
	snapMagic      = "ABCP"
	maxRegionName  = 4096
	maxRegionCount = 1 << 28 // 2 GiB of float64s per region — sanity cap
)

// Encode serializes the snapshot into the versioned wire format with a
// trailing FNV-1a checksum.
func Encode(s Snapshot) []byte {
	size := 4 + 2 + 2 + 8 + 4 + 4
	for _, r := range s.Regions {
		size += 4 + len(r.Name) + 8 + 8*len(r.Data)
	}
	size += 8 // checksum trailer
	buf := make([]byte, 0, size)
	buf = append(buf, snapMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, snapVersion)
	buf = binary.LittleEndian.AppendUint16(buf, 0)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.Step))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.Restarts))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.Regions)))
	for _, r := range s.Regions {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Name)))
		buf = append(buf, r.Name...)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(len(r.Data)))
		for _, v := range r.Data {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
	}
	h := fnv.New64a()
	h.Write(buf)
	return binary.LittleEndian.AppendUint64(buf, h.Sum64())
}

// Decode parses an encoded snapshot, verifying magic, version, structure,
// and the trailing checksum. All failures return a typed error
// (ErrBadSnapshot or ErrSnapshotVersion); hostile input never panics.
func Decode(buf []byte) (Snapshot, error) {
	const header = 4 + 2 + 2 + 8 + 4 + 4
	if len(buf) < header+8 {
		return Snapshot{}, fmt.Errorf("%w: %d bytes is shorter than the fixed header", ErrBadSnapshot, len(buf))
	}
	if string(buf[:4]) != snapMagic {
		return Snapshot{}, fmt.Errorf("%w: bad magic", ErrBadSnapshot)
	}
	if v := binary.LittleEndian.Uint16(buf[4:]); v != snapVersion {
		return Snapshot{}, fmt.Errorf("%w: got v%d, want v%d", ErrSnapshotVersion, v, snapVersion)
	}
	body, trailer := buf[:len(buf)-8], binary.LittleEndian.Uint64(buf[len(buf)-8:])
	h := fnv.New64a()
	h.Write(body)
	if h.Sum64() != trailer {
		return Snapshot{}, fmt.Errorf("%w: checksum mismatch", ErrBadSnapshot)
	}

	s := Snapshot{
		Step:     int(binary.LittleEndian.Uint64(buf[8:])),
		Restarts: int(binary.LittleEndian.Uint32(buf[16:])),
	}
	nreg := binary.LittleEndian.Uint32(buf[20:])
	off := header
	rest := body[off:]
	for i := uint32(0); i < nreg; i++ {
		if len(rest) < 4 {
			return Snapshot{}, fmt.Errorf("%w: truncated region header", ErrBadSnapshot)
		}
		nameLen := binary.LittleEndian.Uint32(rest)
		if nameLen > maxRegionName || int(nameLen) > len(rest)-4 {
			return Snapshot{}, fmt.Errorf("%w: region name length %d out of range", ErrBadSnapshot, nameLen)
		}
		name := string(rest[4 : 4+nameLen])
		rest = rest[4+nameLen:]
		if len(rest) < 8 {
			return Snapshot{}, fmt.Errorf("%w: truncated region count", ErrBadSnapshot)
		}
		count := binary.LittleEndian.Uint64(rest)
		rest = rest[8:]
		if count > maxRegionCount || count*8 > uint64(len(rest)) {
			return Snapshot{}, fmt.Errorf("%w: region %q claims %d floats, %d bytes remain", ErrBadSnapshot, name, count, len(rest))
		}
		data := make([]float64, count)
		for k := range data {
			data[k] = math.Float64frombits(binary.LittleEndian.Uint64(rest[8*k:]))
		}
		rest = rest[8*count:]
		s.Regions = append(s.Regions, SnapRegion{Name: name, Data: data})
	}
	if len(rest) != 0 {
		return Snapshot{}, fmt.Errorf("%w: %d trailing bytes after last region", ErrBadSnapshot, len(rest))
	}
	return s, nil
}

// Snapshot exports the last committed checkpoint as a wire-ready Snapshot,
// including the restart budget consumed so far (so a migrated job cannot
// reset its budget by changing hosts). Returns ErrNoCheckpoint before the
// first Checkpoint call.
func (c *Checkpointer) Snapshot() (Snapshot, error) {
	if !c.have {
		return Snapshot{}, ErrNoCheckpoint
	}
	s := Snapshot{Step: c.step, Restarts: c.stats.Restarts}
	for i, t := range c.targets {
		s.Regions = append(s.Regions, SnapRegion{
			Name: t.name,
			Data: append([]float64(nil), c.saved[i]...),
		})
	}
	return s, nil
}

// Install seeds the checkpointer from a decoded snapshot: the saved copies,
// the live registered data (so the workload resumes from the snapshot's
// iterate), the saved step, and the consumed restart budget. Regions must
// match the registered targets exactly, by name, order, and length —
// anything else is ErrSnapshotMismatch. Call after Register and before the
// first Checkpoint.
func (c *Checkpointer) Install(s Snapshot) error {
	if len(s.Regions) != len(c.targets) {
		return fmt.Errorf("%w: snapshot has %d regions, %d registered", ErrSnapshotMismatch, len(s.Regions), len(c.targets))
	}
	for i, t := range c.targets {
		r := s.Regions[i]
		if r.Name != t.name {
			return fmt.Errorf("%w: region %d is %q, want %q", ErrSnapshotMismatch, i, r.Name, t.name)
		}
		if len(r.Data) != len(t.data) {
			return fmt.Errorf("%w: region %q has %d floats, want %d", ErrSnapshotMismatch, r.Name, len(r.Data), len(t.data))
		}
	}
	c.ensureStorage()
	if c.saved == nil {
		c.saved = make([][]float64, len(c.targets))
		for i, t := range c.targets {
			c.saved[i] = make([]float64, len(t.data))
		}
	}
	off := 0
	for i, t := range c.targets {
		copy(c.saved[i], s.Regions[i].Data)
		copy(t.data, s.Regions[i].Data)
		c.mem.TouchFloats(c.storage, off, len(t.data), true)
		c.mem.TouchFloats(t.reg, 0, len(t.data), true)
		off += len(t.data)
	}
	c.have = true
	c.step = s.Step
	c.stats.Restarts = s.Restarts
	c.stats.LastSavedStep = s.Step
	return nil
}
