package checkpoint

import (
	"errors"
	"testing"

	"coopabft/internal/abft"
	"coopabft/internal/trace"
)

func newStandalone() (*Checkpointer, abft.Env) {
	env := abft.Standalone()
	return New(env.Mem, env.Alloc), env
}

func TestCheckpointRestoreRoundTrip(t *testing.T) {
	c, _ := newStandalone()
	x := []float64{1, 2, 3}
	y := []float64{4, 5}
	c.Register("x", x, trace.Region{})
	c.Register("y", y, trace.Region{})

	c.Checkpoint(10)
	x[0], y[1] = -99, -99
	step, err := c.Restore(15)
	if err != nil {
		t.Fatal(err)
	}
	if step != 10 {
		t.Errorf("resume step = %d", step)
	}
	if x[0] != 1 || y[1] != 5 {
		t.Errorf("state not restored: %v %v", x, y)
	}
	st := c.Stats()
	if st.Checkpoints != 1 || st.Restarts != 1 || st.StepsLost != 5 {
		t.Errorf("stats = %+v", st)
	}
	if st.BytesPerCkpt != 40 {
		t.Errorf("bytes = %d", st.BytesPerCkpt)
	}
}

func TestRestoreWithoutCheckpoint(t *testing.T) {
	c, _ := newStandalone()
	c.Register("x", []float64{1}, trace.Region{})
	if _, err := c.Restore(5); err != ErrNoCheckpoint {
		t.Errorf("err = %v", err)
	}
	if c.HasCheckpoint() {
		t.Error("HasCheckpoint true before any save")
	}
}

func TestRegisterAfterCheckpointPanics(t *testing.T) {
	c, _ := newStandalone()
	c.Register("x", []float64{1}, trace.Region{})
	c.Checkpoint(0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	c.Register("y", []float64{2}, trace.Region{})
}

func TestLatestCheckpointWins(t *testing.T) {
	c, _ := newStandalone()
	x := []float64{1}
	c.Register("x", x, trace.Region{})
	c.Checkpoint(1)
	x[0] = 2
	c.Checkpoint(7)
	x[0] = 3
	step, _ := c.Restore(9)
	if step != 7 || x[0] != 2 {
		t.Errorf("step=%d x=%v", step, x)
	}
}

func TestTrafficIsMetered(t *testing.T) {
	var lines int
	env := abft.Standalone()
	env.Mem = &trace.Memory{Probe: func(addr uint64, write bool) { lines++ }}
	c := New(env.Mem, env.Alloc)
	data := make([]float64, 1024) // 8KB = 128 lines
	reg := env.Alloc("state", 1024, true)
	c.Register("state", data, reg)
	c.Checkpoint(0)
	// read 128 lines of state + write 128 lines of storage.
	if lines != 256 {
		t.Errorf("checkpoint touched %d lines, want 256", lines)
	}
	lines = 0
	if _, err := c.Restore(1); err != nil {
		t.Fatal(err)
	}
	if lines != 256 {
		t.Errorf("restore touched %d lines, want 256", lines)
	}
}

func TestCheckpointWithCGKernel(t *testing.T) {
	// End-to-end: checkpoint a CG solver mid-run, corrupt it beyond ABFT's
	// reach (simulated), restore, and finish.
	env := abft.Standalone()
	cg := abft.NewCG(env, 16, 16, 3)
	cg.CheckPeriod = 0 // ABFT disabled: checkpointing is the only defense
	c := New(env.Mem, env.Alloc)
	// For CG, checkpointing x suffices: the restart rebuilds r, z, p and ρ
	// from it (exactly what a checkpointed solver does on restart).
	x, ok := cg.VecFor("x")
	if !ok {
		t.Fatal("no x")
	}
	c.Register("x", x.Data, x.Reg)
	restored := false
	cg.OnIteration = func(iter int) {
		switch {
		case iter == 10:
			c.Checkpoint(iter)
		case iter == 20 && !restored:
			restored = true
			cg.X()[5] += 1e9 // catastrophic, undetected corruption
			if _, err := c.Restore(iter); err != nil {
				t.Fatal(err)
			}
			cg.Recover() // rebuild iteration state from the restored x
		}
	}
	out, err := cg.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Converged || cg.TrueResidual() > 1e-6 {
		t.Fatalf("restart did not save the solve: %+v res=%g", out, cg.TrueResidual())
	}
	if c.Stats().Restarts != 1 {
		t.Errorf("restarts = %d", c.Stats().Restarts)
	}
}

func TestRestartBudgetExhaustion(t *testing.T) {
	c, _ := newStandalone()
	c.MaxRestarts = 2
	x := []float64{1, 2, 3}
	c.Register("x", x, trace.Region{})
	c.Checkpoint(0)

	for i := 0; i < 2; i++ {
		x[0] = -1
		if _, err := c.Restore(i + 1); err != nil {
			t.Fatalf("restore %d within budget failed: %v", i+1, err)
		}
		if x[0] != 1 {
			t.Fatalf("restore %d did not roll back", i+1)
		}
	}
	if _, err := c.Restore(5); !errors.Is(err, ErrRestartBudget) {
		t.Errorf("restore beyond budget: err = %v, want ErrRestartBudget", err)
	}
	if got := c.Stats().Restarts; got != 2 {
		t.Errorf("Restarts = %d, want 2 (budget-refused restore must not count)", got)
	}
}

func TestUnlimitedRestartsByDefault(t *testing.T) {
	c, _ := newStandalone()
	x := []float64{1}
	c.Register("x", x, trace.Region{})
	c.Checkpoint(0)
	for i := 0; i < 10; i++ {
		if _, err := c.Restore(i); err != nil {
			t.Fatalf("restore %d with MaxRestarts=0 failed: %v", i, err)
		}
	}
}
