package checkpoint

import (
	"errors"
	"math"
	"testing"

	"coopabft/internal/trace"
)

func sampleSnapshot() Snapshot {
	return Snapshot{
		Step:     42,
		Restarts: 2,
		Regions: []SnapRegion{
			{Name: "cg.x", Data: []float64{1.5, -0.25, math.Pi, math.Copysign(0, -1)}},
			{Name: "cg.b", Data: []float64{math.Inf(1), math.Inf(-1), math.NaN()}},
			{Name: "empty", Data: nil},
		},
	}
}

// Round trip must be bit-exact for every float, including negative zero,
// infinities, and NaN payloads.
func TestCodecRoundTripBitExact(t *testing.T) {
	want := sampleSnapshot()
	got, err := Decode(Encode(want))
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != want.Step || got.Restarts != want.Restarts {
		t.Errorf("header = (%d,%d), want (%d,%d)", got.Step, got.Restarts, want.Step, want.Restarts)
	}
	if len(got.Regions) != len(want.Regions) {
		t.Fatalf("got %d regions, want %d", len(got.Regions), len(want.Regions))
	}
	for i, r := range want.Regions {
		g := got.Regions[i]
		if g.Name != r.Name {
			t.Errorf("region %d name = %q, want %q", i, g.Name, r.Name)
		}
		if len(g.Data) != len(r.Data) {
			t.Fatalf("region %q has %d floats, want %d", r.Name, len(g.Data), len(r.Data))
		}
		for k := range r.Data {
			if math.Float64bits(g.Data[k]) != math.Float64bits(r.Data[k]) {
				t.Errorf("region %q[%d] = %x, want %x", r.Name, k,
					math.Float64bits(g.Data[k]), math.Float64bits(r.Data[k]))
			}
		}
	}
}

// Every truncation point of a valid encoding must yield a typed error, and
// never panic.
func TestDecodeTruncatedAtEveryLength(t *testing.T) {
	full := Encode(sampleSnapshot())
	for n := 0; n < len(full); n++ {
		_, err := Decode(full[:n])
		if err == nil {
			t.Fatalf("Decode of %d/%d bytes succeeded", n, len(full))
		}
		if !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("Decode of %d bytes: err = %v, want ErrBadSnapshot", n, err)
		}
	}
}

// Any single-byte corruption must be caught by the checksum (or an earlier
// structural check) as a typed error.
func TestDecodeCorruptedByte(t *testing.T) {
	full := Encode(sampleSnapshot())
	for n := 0; n < len(full); n++ {
		mut := append([]byte(nil), full...)
		mut[n] ^= 0x40
		if _, err := Decode(mut); err == nil {
			t.Fatalf("flip at byte %d went undetected", n)
		} else if !errors.Is(err, ErrBadSnapshot) && !errors.Is(err, ErrSnapshotVersion) {
			t.Fatalf("flip at byte %d: err = %v, want typed", n, err)
		}
	}
}

func TestDecodeWrongVersion(t *testing.T) {
	full := Encode(sampleSnapshot())
	full[4], full[5] = 0xFF, 0x7F
	if _, err := Decode(full); !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("err = %v, want ErrSnapshotVersion", err)
	}
}

func TestDecodeGarbage(t *testing.T) {
	for _, buf := range [][]byte{nil, []byte("x"), []byte("ABCPjunkjunkjunkjunkjunkjunkjunk")} {
		if _, err := Decode(buf); !errors.Is(err, ErrBadSnapshot) && !errors.Is(err, ErrSnapshotVersion) {
			t.Fatalf("Decode(%q): err = %v, want a typed snapshot error", buf, err)
		}
	}
}

func TestSnapshotBeforeCheckpoint(t *testing.T) {
	c, _ := newStandalone()
	c.Register("x", []float64{1}, trace.Region{})
	if _, err := c.Snapshot(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("err = %v, want ErrNoCheckpoint", err)
	}
}

// Snapshot → Encode → Decode → Install into a fresh Checkpointer must
// restore the live data and saved step, and the restart budget consumed on
// the first node must carry: a migrated job cannot buy itself a fresh
// MaxRestarts by changing hosts.
func TestRestartBudgetSurvivesMigration(t *testing.T) {
	a, _ := newStandalone()
	a.MaxRestarts = 3
	ax := []float64{1, 2, 3}
	a.Register("x", ax, trace.Region{})
	a.Checkpoint(7)
	for i := 0; i < 2; i++ {
		if _, err := a.Restore(9); err != nil {
			t.Fatal(err)
		}
	}

	snap, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	wire := Encode(snap)
	dec, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}

	b, _ := newStandalone()
	b.MaxRestarts = 3
	bx := []float64{0, 0, 0}
	b.Register("x", bx, trace.Region{})
	if err := b.Install(dec); err != nil {
		t.Fatal(err)
	}
	if bx[0] != 1 || bx[2] != 3 {
		t.Errorf("live data not installed: %v", bx)
	}
	if !b.HasCheckpoint() {
		t.Error("HasCheckpoint false after Install")
	}

	// One restart remains of the carried budget of 3.
	step, err := b.Restore(11)
	if err != nil {
		t.Fatal(err)
	}
	if step != 7 {
		t.Errorf("resume step = %d, want 7", step)
	}
	if _, err := b.Restore(12); !errors.Is(err, ErrRestartBudget) {
		t.Fatalf("fourth restart: err = %v, want ErrRestartBudget", err)
	}
	if got := b.Stats().Restarts; got != 3 {
		t.Errorf("cumulative restarts = %d, want 3", got)
	}
}

func TestInstallMismatch(t *testing.T) {
	snap := Snapshot{Step: 1, Regions: []SnapRegion{{Name: "x", Data: []float64{1, 2}}}}
	cases := []struct {
		name string
		prep func(c *Checkpointer)
	}{
		{"missing region", func(c *Checkpointer) {
			c.Register("x", []float64{0, 0}, trace.Region{})
			c.Register("y", []float64{0}, trace.Region{})
		}},
		{"wrong name", func(c *Checkpointer) {
			c.Register("z", []float64{0, 0}, trace.Region{})
		}},
		{"wrong length", func(c *Checkpointer) {
			c.Register("x", []float64{0, 0, 0}, trace.Region{})
		}},
	}
	for _, tc := range cases {
		c, _ := newStandalone()
		tc.prep(c)
		if err := c.Install(snap); !errors.Is(err, ErrSnapshotMismatch) {
			t.Errorf("%s: err = %v, want ErrSnapshotMismatch", tc.name, err)
		}
	}
}
