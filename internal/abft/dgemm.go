package abft

import (
	"fmt"
	"math"

	"coopabft/internal/mat"
)

// DGEMM is the fault-tolerant matrix multiplication of [39] (§2.1): it
// computes C = A·B through the checksum-encoded product
//
//	Cf = Ac·Br = [ C    C·e  ]
//	             [ eᵀC  eᵀCe ]
//
// where Ac carries an extra column-checksum row (eᵀA) and Br an extra
// row-checksum column (B·e). The checksum row/column of Cf are maintained by
// the multiplication itself, so at any k-panel boundary every row i
// satisfies Σ_j Cf[i][j] = Cf[i][n] and every column j satisfies
// Σ_i Cf[i][j] = Cf[n][j]; mismatches locate and repair corrupted elements.
type DGEMM struct {
	N int

	Ac Mat // (n+1)×n
	Br Mat // n×(n+1)
	Cf Mat // (n+1)×(n+1), ABFT-protected

	// Block is the k-panel width; CheckPeriod verifies every that many
	// panels.
	Block       int
	CheckPeriod int
	Mode        VerifyMode
	// Tol is the absolute checksum-comparison tolerance.
	Tol float64

	// OnPanel, if set, runs at the top of every k-panel — the hook
	// fault-injection campaigns and checkpoint coordinators use. The panel
	// index counts from 0 to Panels()-1.
	OnPanel func(panel int)

	Ops         OpCounters
	Corrections []Correction
	// Faults records every checksum violation the fused online check
	// detected, in detection order (empty outside FusedVerify mode).
	Faults []PanelFault

	// scratch holds verification partial sums; it is ordinary unprotected
	// working memory (the "refs to blocks w/o ABFT" of Table 4). fused
	// holds the online path's kernel-accumulated checksums, allocated on
	// first use.
	scratch Vec
	fused   Vec

	env Env
}

// PanelFault is one checksum violation the fused online check detected at a
// k-panel boundary — the typed fault report the correction machinery and
// the recovery ladder consume. Result faults are repaired in place via the
// same locate-and-fix algebra as VerifyFull; operand faults are
// detection-only (a corrupted input cannot be rebuilt from the output
// checksums) and abort the run with ErrUncorrectable.
type PanelFault struct {
	Panel  int     // k-panel whose boundary check fired
	Source string  // FaultOperandA, FaultOperandB, FaultResultRow, FaultResultCol
	Index  int     // row, column, or k index of the violated checksum
	Delta  float64 // encoded checksum − kernel-accumulated sum
}

// PanelFault sources.
const (
	FaultOperandA  = "operand-a"
	FaultOperandB  = "operand-b"
	FaultResultRow = "result-row"
	FaultResultCol = "result-col"
)

// NewDGEMM builds the encoded operands for a random n×n problem.
func NewDGEMM(env Env, n int, seed uint64) (*DGEMM, error) {
	if n < 2 {
		return nil, fmt.Errorf("%w: DGEMM size %d too small", ErrBadSize, n)
	}
	d := &DGEMM{
		N:           n,
		Block:       32,
		CheckPeriod: 1,
		Tol:         1e-9 * float64(n) * float64(n),
		env:         env,
	}
	d.Ac = env.NewMat("dgemm.Ac", n+1, n, true)
	d.Br = env.NewMat("dgemm.Br", n, n+1, true)
	d.Cf = env.NewMat("dgemm.Cf", n+1, n+1, true)
	d.scratch = env.NewVec("dgemm.scratch", 2*(n+1), false)

	a := mat.Random(n, n, seed)
	b := mat.Random(n, n, seed+1)
	for i := 0; i < n; i++ {
		copy(d.Ac.Row(i)[:n], a.Row(i))
		copy(d.Br.Row(i)[:n], b.Row(i))
		d.Br.Set(i, n, mat.Sum(b.Row(i)))
	}
	// Checksum row of Ac: eᵀA.
	for j := 0; j < n; j++ {
		s := 0.0
		for i := 0; i < n; i++ {
			s += a.At(i, j)
		}
		d.Ac.Set(n, j, s)
	}
	return d, nil
}

// C returns the result block of Cf (valid after Run).
func (d *DGEMM) C() *mat.Matrix { return d.Cf.View(0, 0, d.N, d.N) }

func (d *DGEMM) ops(bucket *uint64, n int) {
	*bucket += uint64(n)
	d.env.Mem.Ops(n)
}

// Panels returns the number of k-panels a full run executes.
func (d *DGEMM) Panels() int { return (d.N + d.Block - 1) / d.Block }

// Run computes the encoded product panel by panel, verifying per Mode every
// CheckPeriod panels. Detected errors are corrected in place; an
// ABFT-uncorrectable pattern aborts with ErrUncorrectable.
func (d *DGEMM) Run() error {
	d.Cf.Zero()
	return d.RunFrom(0)
}

// RunFrom resumes the panel loop at startPanel without reinitializing Cf —
// the checkpoint/restart entry point: restore Cf to a panel boundary, then
// RunFrom that panel replays the remaining rank-Block updates.
func (d *DGEMM) RunFrom(startPanel int) error {
	n := d.N
	for panel := startPanel; panel < d.Panels(); panel++ {
		if d.OnPanel != nil {
			d.OnPanel(panel)
		}
		kk := panel * d.Block
		kMax := kk + d.Block
		if kMax > n {
			kMax = n
		}
		// The arithmetic runs through the packed kernel, parallel over row
		// bands when the panel is large enough; every Cf element accumulates
		// its k-products in ascending order, so the result is bit-identical
		// to the scalar triple loop at any parallelism. Panels the fused
		// mode will check at this boundary run the checksum-accumulating
		// kernel variant instead — same bits, plus the online comparison.
		fusedCheck := d.Mode == FusedVerify && d.CheckPeriod > 0 && (panel+1)%d.CheckPeriod == 0
		if fusedCheck {
			if err := d.runPanelFused(panel, kk, kMax); err != nil {
				return err
			}
		} else {
			mat.MulAddInto(d.Cf.Matrix,
				d.Ac.View(0, kk, n+1, kMax-kk), d.Br.View(kk, 0, kMax-kk, n+1))
		}
		// Accounting walk: report the same per-element access pattern and
		// op-bucket split the scalar loop produced, so the simulated traffic
		// and the Figure 3 breakdown are unchanged.
		for i := 0; i <= n; i++ {
			for p := kk; p < kMax; p++ {
				d.Ac.TouchElem(i, p, false)
				d.Br.TouchRow(p, 0, n+1, false)
				d.Cf.TouchRow(i, 0, n+1, true)
				if i < n {
					d.ops(&d.Ops.Compute, 2*n)
					d.ops(&d.Ops.Checksum, 2) // row-checksum column j=n
				} else {
					d.ops(&d.Ops.Checksum, 2*(n+1)) // checksum row i=n
				}
			}
		}
		if err := d.maybeVerify(panel + 1); err != nil {
			return err
		}
	}
	return nil
}

func (d *DGEMM) maybeVerify(panel int) error {
	if d.CheckPeriod <= 0 || panel%d.CheckPeriod != 0 {
		return nil
	}
	switch d.Mode {
	case NotifiedVerify:
		return d.verifyNotified()
	case FusedVerify:
		// Already checked online at the panel boundary by runPanelFused.
		return nil
	default:
		return d.VerifyFull()
	}
}

// runPanelFused executes one k-panel through the checksum-accumulating
// kernel (mat.MulAddIntoFused) and compares the accumulated sums against
// the encoded checksums at the boundary — the FT-BLAS-style interval check.
// Cf's bits are identical to the plain panel path.
func (d *DGEMM) runPanelFused(panel, kk, kMax int) error {
	n := d.N
	kb := kMax - kk
	if need := 2*(n+1) + 2*kb; len(d.fused.Data) < need {
		d.fused = d.env.NewVec("dgemm.fused", 2*(n+1)+2*max(kb, d.Block), false)
	}
	rs := d.fused.Data[0 : n+1]
	cs := d.fused.Data[n+1 : 2*(n+1)]
	asum := d.fused.Data[2*(n+1) : 2*(n+1)+kb]
	bsum := d.fused.Data[2*(n+1)+kb : 2*(n+1)+2*kb]
	mat.MulAddIntoFused(d.Cf.Matrix,
		d.Ac.View(0, kk, n+1, kb), d.Br.View(kk, 0, kb, n+1),
		&mat.FusedSums{RowSums: rs, ColSums: cs, ASums: asum, BSums: bsum})
	return d.verifyFused(panel, kk, kb, rs, cs, asum, bsum)
}

// verifyFused is the panel-boundary comparison for the fused path. The
// kernel already folded every operand and result value into the sums, so
// verification here touches only the encoded checksum row/column and the
// small sum vectors — O(n) traffic in place of VerifyFull's O(n²) sweep.
func (d *DGEMM) verifyFused(panel, kk, kb int, rs, cs, asum, bsum []float64) error {
	n := d.N
	// Accounting: ~2 kernel-resident flops per Cf element for the output
	// sums, one add per packed operand element, plus the O(n) compares.
	d.ops(&d.Ops.Verify, 2*(n+1)*(n+1)+2*(n+1)*kb+2*(n+1)+2*kb)
	d.fused.Touch(0, 2*(n+1)+2*kb, true)
	d.Ac.TouchRow(n, kk, kb, false)
	d.Br.TouchCol(n, kk, kb, false)
	d.Cf.TouchCol(n, 0, n+1, false)
	d.Cf.TouchRow(n, 0, n+1, false)

	// Operand checks: the packing pass re-derived eᵀ·(Ac panel) and
	// (Br panel)·e over all n+1 rows/columns, so an intact operand gives
	// exactly twice its encoded checksum. Detection-only — corrupted
	// inputs poison every downstream product, so the run must restart.
	for p := 0; p < kb; p++ {
		if delta := 2*d.Ac.At(n, kk+p) - asum[p]; math.Abs(delta) > d.Tol {
			d.Faults = append(d.Faults, PanelFault{Panel: panel, Source: FaultOperandA, Index: kk + p, Delta: delta})
			return fmt.Errorf("%w: fused check at panel %d: operand A column %d checksum off by %g",
				ErrUncorrectable, panel, kk+p, delta)
		}
		if delta := 2*d.Br.At(kk+p, n) - bsum[p]; math.Abs(delta) > d.Tol {
			d.Faults = append(d.Faults, PanelFault{Panel: panel, Source: FaultOperandB, Index: kk + p, Delta: delta})
			return fmt.Errorf("%w: fused check at panel %d: operand B row %d checksum off by %g",
				ErrUncorrectable, panel, kk+p, delta)
		}
	}

	// Result checks: rs[i]/cs[j] sum all n+1 final values of row i /
	// column j including the checksum entry itself, so intact lines give
	// rs[i] = 2·Cf[i][n] and cs[j] = 2·Cf[n][j], and the deltas reduce to
	// exactly VerifyFull's (checksum − recomputed-sum) convention — the
	// same locate-and-fix switch repairs them. The kernel seeds its
	// accumulators from stored C, so corruption written by *earlier*
	// panels propagates into these sums and is caught here too.
	var rowBad, colBad []int
	var rowDelta, colDelta []float64
	for i := 0; i <= n; i++ {
		if delta := 2*d.Cf.At(i, n) - rs[i]; math.Abs(delta) > d.Tol {
			rowBad = append(rowBad, i)
			rowDelta = append(rowDelta, delta)
		}
	}
	for j := 0; j <= n; j++ {
		if delta := 2*d.Cf.At(n, j) - cs[j]; math.Abs(delta) > d.Tol {
			colBad = append(colBad, j)
			colDelta = append(colDelta, delta)
		}
	}
	for i, r := range rowBad {
		d.Faults = append(d.Faults, PanelFault{Panel: panel, Source: FaultResultRow, Index: r, Delta: rowDelta[i]})
	}
	for i, c := range colBad {
		d.Faults = append(d.Faults, PanelFault{Panel: panel, Source: FaultResultCol, Index: c, Delta: colDelta[i]})
	}
	return d.locateAndFix(rowBad, rowDelta, colBad, colDelta)
}

// VerifyFull recomputes every row and column checksum of Cf, locates
// mismatches, and repairs them (§2.1). It is the expensive sweep the
// cooperative approach removes.
func (d *DGEMM) VerifyFull() error {
	n := d.N
	var rowBad, colBad []int
	var rowDelta, colDelta []float64

	// Row invariants: Σ_{j<n} Cf[i][j] = Cf[i][n] for every row, including
	// the checksum row itself.
	for i := 0; i <= n; i++ {
		row := d.Cf.Row(i)
		s := 0.0
		for j := 0; j < n; j++ {
			s += row[j]
		}
		d.scratch.Data[i] = s
		d.Cf.TouchRow(i, 0, n+1, false)
		d.scratch.Touch(i, 1, true)
		d.ops(&d.Ops.Verify, n)
		if delta := row[n] - s; math.Abs(delta) > d.Tol {
			rowBad = append(rowBad, i)
			rowDelta = append(rowDelta, delta)
		}
	}
	// Column invariants: Σ_{i<n} Cf[i][j] = Cf[n][j], accumulated row-wise
	// into scratch for locality.
	col := d.scratch.Data[n+1:]
	for j := range col {
		col[j] = 0
	}
	for i := 0; i < n; i++ {
		row := d.Cf.Row(i)
		for j := 0; j <= n; j++ {
			col[j] += row[j]
		}
		d.Cf.TouchRow(i, 0, n+1, false)
		d.scratch.Touch(n+1, n+1, true)
		d.ops(&d.Ops.Verify, n+1)
	}
	for j := 0; j <= n; j++ {
		if delta := d.Cf.At(n, j) - col[j]; math.Abs(delta) > d.Tol {
			colBad = append(colBad, j)
			colDelta = append(colDelta, delta)
		}
	}
	return d.locateAndFix(rowBad, rowDelta, colBad, colDelta)
}

// locateAndFix maps row/column checksum mismatches to corrupted elements
// and repairs every correctable pattern (§2.1); both the two-pass sweep and
// the fused online check feed it the same delta convention.
func (d *DGEMM) locateAndFix(rowBad []int, rowDelta []float64, colBad []int, colDelta []float64) error {
	switch {
	case len(rowBad) == 0 && len(colBad) == 0:
		return nil
	case len(rowBad) == 1 && len(colBad) >= 1:
		// All corruptions on one row: rebuild each flagged element from
		// its intact column.
		r := rowBad[0]
		for _, c := range colBad {
			d.fixFromColumn(r, c)
		}
		return nil
	case len(colBad) == 1 && len(rowBad) >= 1:
		c := colBad[0]
		for _, r := range rowBad {
			d.fixFromRow(r, c)
		}
		return nil
	case len(rowBad) == len(colBad):
		// Pair row and column mismatches by magnitude; distinct
		// rows/columns each carry a single error.
		used := make([]bool, len(colBad))
		for ri, r := range rowBad {
			best, bestDiff := -1, math.Inf(1)
			for ci := range colBad {
				if used[ci] {
					continue
				}
				if diff := math.Abs(math.Abs(rowDelta[ri]) - math.Abs(colDelta[ci])); diff < bestDiff {
					best, bestDiff = ci, diff
				}
			}
			if best < 0 || bestDiff > d.Tol*10 {
				return fmt.Errorf("%w: unmatchable row/column deltas", ErrUncorrectable)
			}
			used[best] = true
			d.fixFromRow(r, colBad[best])
		}
		return nil
	default:
		return fmt.Errorf("%w: %d corrupted rows, %d corrupted columns",
			ErrUncorrectable, len(rowBad), len(colBad))
	}
}

// fixFromRow rebuilds Cf[r][c] from row r's other elements.
func (d *DGEMM) fixFromRow(r, c int) {
	n := d.N
	row := d.Cf.Row(r)
	var want float64
	if c == n {
		for j := 0; j < n; j++ {
			want += row[j]
		}
	} else {
		want = row[n]
		for j := 0; j < n; j++ {
			if j != c {
				want -= row[j]
			}
		}
	}
	d.applyFix(r, c, want)
}

// fixFromColumn rebuilds Cf[r][c] from column c's other elements.
func (d *DGEMM) fixFromColumn(r, c int) {
	n := d.N
	var want float64
	if r == n {
		for i := 0; i < n; i++ {
			want += d.Cf.At(i, c)
		}
	} else {
		want = d.Cf.At(n, c)
		for i := 0; i < n; i++ {
			if i != r {
				want -= d.Cf.At(i, c)
			}
		}
	}
	d.applyFix(r, c, want)
}

func (d *DGEMM) applyFix(r, c int, want float64) {
	old := d.Cf.At(r, c)
	d.Cf.Set(r, c, want)
	d.Cf.TouchElem(r, c, true)
	d.ops(&d.Ops.Verify, d.N)
	d.Corrections = append(d.Corrections, Correction{Structure: "Cf", I: r, J: c, Delta: want - old})
	d.env.corrected(d.Cf.Addr(r, c))
}

// VerifyNotified consumes pending OS corruption reports and repairs the
// affected elements (the public entry point for post-run coordination).
func (d *DGEMM) VerifyNotified() error { return d.verifyNotified() }

// verifyNotified implements the simplified verification of §3.2.2: instead
// of recomputing checksums it reads the corrupted addresses the OS exposed
// and repairs exactly those elements (each from its intact column).
func (d *DGEMM) verifyNotified() error {
	if d.env.Notify == nil {
		return nil
	}
	for _, note := range d.env.Notify() {
		for off := uint64(0); off < 64; off += 8 {
			r, c, ok := d.Cf.ElemAt(note.VirtAddr + off)
			if !ok {
				continue
			}
			d.fixFromColumn(r, c)
		}
	}
	return nil
}

// CheckResult verifies the final product against a freshly computed
// reference (test helper; O(n³)).
func (d *DGEMM) CheckResult() error {
	n := d.N
	a := d.Ac.View(0, 0, n, n)
	b := d.Br.View(0, 0, n, n)
	ref := mat.Mul(a, b)
	if !mat.Equal(d.C(), ref, d.Tol) {
		return fmt.Errorf("abft: DGEMM result differs from reference")
	}
	return nil
}
