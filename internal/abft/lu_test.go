package abft

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"coopabft/internal/mat"
)

func luProblem(n int, seed uint64) (*LU, [][]float64) {
	l := NewLU(Standalone(), n, seed)
	orig := make([][]float64, n)
	for i := 0; i < n; i++ {
		orig[i] = append([]float64(nil), l.Af.Row(i)[:n]...)
	}
	return l, orig
}

// toMatrix rebuilds a mat.Matrix from saved rows.
func toMatrix(rows [][]float64) *mat.Matrix {
	n := len(rows)
	m := mat.New(n, n)
	for i, r := range rows {
		copy(m.Row(i), r)
	}
	return m
}

func TestLUCleanFactorization(t *testing.T) {
	for _, n := range []int{8, 33, 64} {
		l, orig := luProblem(n, uint64(n))
		if err := l.Run(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := l.CheckResult(toMatrix(orig)); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(l.Corrections) != 0 {
			t.Errorf("n=%d: clean run corrected %+v", n, l.Corrections)
		}
	}
}

func TestLUChecksumInvariantThroughFactorization(t *testing.T) {
	l, _ := luProblem(48, 3)
	l.CheckPeriod = 1 // verify every step; maintenance drift would trip it
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
	if len(l.Corrections) != 0 {
		t.Errorf("maintenance drift: %+v", l.Corrections)
	}
	// And the final storage still satisfies both relations.
	if err := l.VerifyRows(0); err != nil {
		t.Fatal(err)
	}
	if len(l.Corrections) != 0 {
		t.Errorf("post-run drift: %+v", l.Corrections)
	}
}

func TestLUCorrectsPreRunInjection(t *testing.T) {
	l, orig := luProblem(40, 5)
	l.Af.Add(25, 13, 7.5)
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range l.Corrections {
		if c.Structure == "lu.Af" && c.I == 25 && c.J == 13 {
			found = true
		}
	}
	if !found {
		t.Errorf("corrections = %+v", l.Corrections)
	}
	if err := l.CheckResult(toMatrix(orig)); err != nil {
		t.Fatal(err)
	}
}

func TestLUCorrectsChecksumCorruption(t *testing.T) {
	l, orig := luProblem(32, 7)
	l.Af.Add(10, 32, 99)  // plain checksum column
	l.Af.Add(20, 33, -55) // weighted checksum column
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
	if err := l.CheckResult(toMatrix(orig)); err != nil {
		t.Fatal(err)
	}
	if len(l.Corrections) != 2 {
		t.Errorf("corrections = %+v", l.Corrections)
	}
}

func TestLUUncorrectableMultiError(t *testing.T) {
	l, _ := luProblem(32, 9)
	l.Af.Add(15, 3, 4)
	l.Af.Add(15, 20, -9) // two errors in one row defeat the locator
	err := l.Run()
	if err == nil {
		t.Fatal("multi-error row not flagged")
	}
	if !errors.Is(err, ErrUncorrectable) {
		t.Errorf("err = %v", err)
	}
}

func TestLUNotifiedMode(t *testing.T) {
	var pending []Notification
	env := Standalone()
	env.Notify = func() []Notification {
		out := pending
		pending = nil
		return out
	}
	l := NewLU(env, 32, 11)
	orig := make([][]float64, 32)
	for i := range orig {
		orig[i] = append([]float64(nil), l.Af.Row(i)[:32]...)
	}
	l.Mode = NotifiedVerify
	l.Af.Add(18, 9, 6.25)
	pending = []Notification{{VirtAddr: l.Af.Addr(18, 9) &^ 63}}
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
	if err := l.CheckResult(toMatrix(orig)); err != nil {
		t.Fatal(err)
	}
	if len(l.Corrections) == 0 {
		t.Error("notified correction not recorded")
	}
}

func TestLUNotifiedCheaperThanFull(t *testing.T) {
	full, _ := luProblem(48, 13)
	if err := full.Run(); err != nil {
		t.Fatal(err)
	}
	env := Standalone()
	env.Notify = func() []Notification { return nil }
	noti := NewLU(env, 48, 13)
	noti.Mode = NotifiedVerify
	if err := noti.Run(); err != nil {
		t.Fatal(err)
	}
	if noti.Ops.Verify >= full.Ops.Verify {
		t.Errorf("notified verify %d >= full %d", noti.Ops.Verify, full.Ops.Verify)
	}
}

// Property: any single pre-run corruption anywhere in the extended matrix
// is repaired and the solve still matches the reference.
func TestLURandomInjectionProperty(t *testing.T) {
	f := func(seed uint64, iSel, jSel uint16, mag uint8) bool {
		n := 16 + int(seed%17)
		l, orig := luProblem(n, seed)
		l.Af.Add(int(iSel)%n, int(jSel)%(n+2), 1.5+float64(mag)/4)
		if err := l.Run(); err != nil {
			return false
		}
		return l.CheckResult(toMatrix(orig)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestLUTinyErrorBenign(t *testing.T) {
	l, orig := luProblem(24, 15)
	l.Af.Add(5, 5, l.Tol/1000)
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
	if err := l.CheckResult(toMatrix(orig)); err != nil {
		t.Fatal(err)
	}
}

func TestLUOpsBuckets(t *testing.T) {
	l, _ := luProblem(40, 17)
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
	if l.Ops.Compute == 0 || l.Ops.Checksum == 0 || l.Ops.Verify == 0 {
		t.Errorf("ops = %+v", l.Ops)
	}
	if math.IsNaN(l.Ops.OverheadFraction()) {
		t.Error("overhead fraction NaN")
	}
}
