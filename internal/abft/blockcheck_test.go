package abft

import (
	"errors"
	"math"
	"testing"

	"coopabft/internal/mat"
)

// blockProduct computes the (bi,bj) block of C = A·B via the same
// full-k MulAddInto-on-views path the block workers use.
func blockProduct(a, b *mat.Matrix, g BlockGrid, bi, bj int) *mat.Matrix {
	r0, r1 := g.RowSpan(bi)
	c0, c1 := g.ColSpan(bj)
	out := mat.New(r1-r0, c1-c0)
	mat.MulAddInto(out, a.View(r0, 0, r1-r0, g.N), b.View(0, c0, g.N, c1-c0))
	return out
}

// TestBlockProductMatchesFull pins the determinism contract the sharded
// path rests on: every block computed on views is bit-for-bit the same
// region of the full single-node product.
func TestBlockProductMatchesFull(t *testing.T) {
	for _, n := range []int{37, 64} {
		a, b := mat.Random(n, n, 7), mat.Random(n, n, 8)
		full := mat.New(n, n)
		mat.MulAddInto(full, a, b)
		g, err := NewBlockGrid(n, 3, 2)
		if err != nil {
			t.Fatal(err)
		}
		for bi := 0; bi < g.Rows(); bi++ {
			for bj := 0; bj < g.Cols(); bj++ {
				got := blockProduct(a, b, g, bi, bj)
				r0, _ := g.RowSpan(bi)
				c0, _ := g.ColSpan(bj)
				for i := 0; i < got.Rows; i++ {
					for j := 0; j < got.Cols; j++ {
						w, h := full.At(r0+i, c0+j), got.At(i, j)
						if math.Float64bits(w) != math.Float64bits(h) {
							t.Fatalf("n=%d block(%d,%d) el(%d,%d): %x != %x",
								n, bi, bj, i, j, math.Float64bits(h), math.Float64bits(w))
						}
					}
				}
			}
		}
	}
}

// TestReconstructAnySingleLoss is the satellite property test: for odd
// shapes and non-square grids, losing any single block is recoverable
// bit-for-bit from its column parity (and, independently, its row parity),
// and the numeric Σ-check accepts the reconstruction.
func TestReconstructAnySingleLoss(t *testing.T) {
	cases := []struct{ n, r, c int }{
		{37, 3, 2}, {37, 2, 4}, {53, 5, 3}, {53, 3, 3}, {64, 4, 2}, {41, 2, 2},
	}
	for _, tc := range cases {
		g, err := NewBlockGrid(tc.n, tc.r, tc.c)
		if err != nil {
			t.Fatalf("grid %+v: %v", tc, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("grid %+v invalid: %v", tc, err)
		}
		a, b := mat.Random(tc.n, tc.n, uint64(tc.n)), mat.Random(tc.n, tc.n, uint64(tc.n)+1)
		blocks := make([][]*mat.Matrix, g.Rows())
		for bi := range blocks {
			blocks[bi] = make([]*mat.Matrix, g.Cols())
			for bj := range blocks[bi] {
				blocks[bi][bj] = blockProduct(a, b, g, bi, bj)
			}
		}

		// Column-checksum blocks: fold each grid column.
		colParity := make([]*mat.Matrix, g.Cols())
		colSum := make([]*mat.Matrix, g.Cols())
		for bj := 0; bj < g.Cols(); bj++ {
			col := make([]*mat.Matrix, 0, g.Rows())
			for bi := 0; bi < g.Rows(); bi++ {
				col = append(col, blocks[bi][bj])
			}
			c0, c1 := g.ColSpan(bj)
			colParity[bj], colSum[bj] = EncodeChecksumBlocks(col, g.MaxRowSpan(), c1-c0)
		}
		// Row-checksum blocks: fold each grid row.
		rowParity := make([]*mat.Matrix, g.Rows())
		rowSum := make([]*mat.Matrix, g.Rows())
		for bi := 0; bi < g.Rows(); bi++ {
			r0, r1 := g.RowSpan(bi)
			rowParity[bi], rowSum[bi] = EncodeChecksumBlocks(blocks[bi], r1-r0, g.MaxColSpan())
		}

		tol := BlockTol(tc.n)
		for li := 0; li < g.Rows(); li++ {
			for lj := 0; lj < g.Cols(); lj++ {
				want := blocks[li][lj]

				// Recover via column parity.
				var surv []*mat.Matrix
				for bi := 0; bi < g.Rows(); bi++ {
					if bi != li {
						surv = append(surv, blocks[bi][lj])
					}
				}
				got, err := ReconstructBlock(colParity[lj], surv, want.Rows, want.Cols)
				if err != nil {
					t.Fatalf("%+v lose(%d,%d) col reconstruct: %v", tc, li, lj, err)
				}
				assertBitEqual(t, want, got, "col", tc.n, li, lj)
				if err := VerifyBlockSum(colSum[lj], append(surv, got), tol); err != nil {
					t.Fatalf("%+v lose(%d,%d) col Σ-check: %v", tc, li, lj, err)
				}

				// Recover via row parity.
				surv = surv[:0]
				for bj := 0; bj < g.Cols(); bj++ {
					if bj != lj {
						surv = append(surv, blocks[li][bj])
					}
				}
				got, err = ReconstructBlock(rowParity[li], surv, want.Rows, want.Cols)
				if err != nil {
					t.Fatalf("%+v lose(%d,%d) row reconstruct: %v", tc, li, lj, err)
				}
				assertBitEqual(t, want, got, "row", tc.n, li, lj)
				if err := VerifyBlockSum(rowSum[li], append(surv, got), tol); err != nil {
					t.Fatalf("%+v lose(%d,%d) row Σ-check: %v", tc, li, lj, err)
				}
			}
		}
	}
}

func assertBitEqual(t *testing.T, want, got *mat.Matrix, via string, n, li, lj int) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("n=%d lose(%d,%d) via %s: got %dx%d, want %dx%d",
			n, li, lj, via, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := 0; i < want.Rows; i++ {
		for j := 0; j < want.Cols; j++ {
			if math.Float64bits(want.At(i, j)) != math.Float64bits(got.At(i, j)) {
				t.Fatalf("n=%d lose(%d,%d) via %s parity: el(%d,%d) %x != %x",
					n, li, lj, via, i, j,
					math.Float64bits(got.At(i, j)), math.Float64bits(want.At(i, j)))
			}
		}
	}
}

// TestVerifyBlockSumDetectsCorruption: a flipped survivor bit large enough
// to matter must fail the Σ-check.
func TestVerifyBlockSumDetectsCorruption(t *testing.T) {
	n := 24
	g, _ := NewBlockGrid(n, 3, 1)
	a, b := mat.Random(n, n, 1), mat.Random(n, n, 2)
	var col []*mat.Matrix
	for bi := 0; bi < 3; bi++ {
		col = append(col, blockProduct(a, b, g, bi, 0))
	}
	_, sum := EncodeChecksumBlocks(col, g.MaxRowSpan(), n)
	if err := VerifyBlockSum(sum, col, BlockTol(n)); err != nil {
		t.Fatalf("clean Σ-check failed: %v", err)
	}
	col[1].Set(2, 3, col[1].At(2, 3)+1.0)
	if err := VerifyBlockSum(sum, col, BlockTol(n)); !errors.Is(err, ErrUncorrectable) {
		t.Fatalf("corrupted Σ-check: err = %v, want ErrUncorrectable", err)
	}
}

// TestPackUnpackRoundTrip: exact-bits wire form round-trips, including
// non-numeric parity bit patterns.
func TestPackUnpackRoundTrip(t *testing.T) {
	m := mat.Random(5, 7, 99)
	m.Set(0, 0, math.Float64frombits(0x7ff8_dead_beef_0001)) // NaN payload
	m.Set(4, 6, math.Inf(-1))
	got, err := UnpackBlock(5, 7, PackBlock(m))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		for j := 0; j < 7; j++ {
			if math.Float64bits(m.At(i, j)) != math.Float64bits(got.At(i, j)) {
				t.Fatalf("el(%d,%d) bits differ", i, j)
			}
		}
	}
	if _, err := UnpackBlock(5, 7, make([]byte, 11)); !errors.Is(err, ErrBadSize) {
		t.Fatalf("short payload: err = %v, want ErrBadSize", err)
	}
	if d1, d2 := BitDigest(m), BitDigest(got); d1 != d2 {
		t.Fatalf("digest mismatch: %s != %s", d1, d2)
	}
}

// TestNewBlockGridShapes: near-equal splits cover exactly [0, n].
func TestNewBlockGridShapes(t *testing.T) {
	for _, tc := range []struct{ n, r, c int }{{37, 3, 2}, {8, 8, 1}, {100, 7, 7}} {
		g, err := NewBlockGrid(tc.n, tc.r, tc.c)
		if err != nil {
			t.Fatal(err)
		}
		if g.Rows() != tc.r || g.Cols() != tc.c {
			t.Fatalf("grid %+v: got %dx%d", tc, g.Rows(), g.Cols())
		}
		total := 0
		for i := 0; i < g.Rows(); i++ {
			lo, hi := g.RowSpan(i)
			if hi-lo < 1 || hi-lo > g.MaxRowSpan() {
				t.Fatalf("row span %d: [%d,%d)", i, lo, hi)
			}
			total += hi - lo
		}
		if total != tc.n {
			t.Fatalf("row spans sum %d != %d", total, tc.n)
		}
	}
	if _, err := NewBlockGrid(4, 5, 1); !errors.Is(err, ErrBadSize) {
		t.Fatalf("r>n: err = %v, want ErrBadSize", err)
	}
}
