package abft

import (
	"errors"
	"math"
	"testing"
)

func TestDGEMMCleanRun(t *testing.T) {
	d := mustDGEMM(t, Standalone(), 48, 1)
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	if err := d.CheckResult(); err != nil {
		t.Fatal(err)
	}
	if len(d.Corrections) != 0 {
		t.Errorf("clean run produced corrections: %v", d.Corrections)
	}
	if d.Ops.Compute == 0 || d.Ops.Checksum == 0 || d.Ops.Verify == 0 {
		t.Errorf("op buckets empty: %+v", d.Ops)
	}
}

func TestDGEMMChecksumInvariantHolds(t *testing.T) {
	d := mustDGEMM(t, Standalone(), 33, 2)
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	n := d.N
	for i := 0; i <= n; i++ {
		s := 0.0
		for j := 0; j < n; j++ {
			s += d.Cf.At(i, j)
		}
		if math.Abs(s-d.Cf.At(i, n)) > d.Tol {
			t.Fatalf("row %d checksum broken: %g vs %g", i, s, d.Cf.At(i, n))
		}
	}
	for j := 0; j <= n; j++ {
		s := 0.0
		for i := 0; i < n; i++ {
			s += d.Cf.At(i, j)
		}
		if math.Abs(s-d.Cf.At(n, j)) > d.Tol {
			t.Fatalf("col %d checksum broken", j)
		}
	}
}

func TestDGEMMCorrectsSingleError(t *testing.T) {
	d := mustDGEMM(t, Standalone(), 40, 3)
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	want := d.Cf.At(7, 11)
	d.Cf.Set(7, 11, want+5.5)
	if err := d.VerifyFull(); err != nil {
		t.Fatal(err)
	}
	if got := d.Cf.At(7, 11); math.Abs(got-want) > d.Tol {
		t.Errorf("corrected to %v, want %v", got, want)
	}
	if len(d.Corrections) != 1 || d.Corrections[0].I != 7 || d.Corrections[0].J != 11 {
		t.Errorf("corrections = %+v", d.Corrections)
	}
}

func TestDGEMMCorrectsChecksumRowAndColumnErrors(t *testing.T) {
	d := mustDGEMM(t, Standalone(), 24, 4)
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	n := d.N
	// Corrupt an element of the checksum row and one of the checksum col.
	wantRow := d.Cf.At(n, 3)
	wantCol := d.Cf.At(5, n)
	d.Cf.Set(n, 3, wantRow-2.25)
	d.Cf.Set(5, n, wantCol+1.75)
	if err := d.VerifyFull(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Cf.At(n, 3)-wantRow) > d.Tol || math.Abs(d.Cf.At(5, n)-wantCol) > d.Tol {
		t.Errorf("checksum elements not restored: %v %v", d.Cf.At(n, 3), d.Cf.At(5, n))
	}
}

func TestDGEMMCorrectsMultipleErrorsDistinctRowsCols(t *testing.T) {
	d := mustDGEMM(t, Standalone(), 32, 5)
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	type loc struct{ i, j int }
	locs := []loc{{2, 9}, {14, 3}, {20, 27}}
	want := map[loc]float64{}
	for k, l := range locs {
		want[l] = d.Cf.At(l.i, l.j)
		d.Cf.Set(l.i, l.j, want[l]+float64(3+k)*1.5)
	}
	if err := d.VerifyFull(); err != nil {
		t.Fatal(err)
	}
	for l, w := range want {
		if math.Abs(d.Cf.At(l.i, l.j)-w) > d.Tol {
			t.Errorf("element (%d,%d) = %v, want %v", l.i, l.j, d.Cf.At(l.i, l.j), w)
		}
	}
}

func TestDGEMMCorrectsRowBurst(t *testing.T) {
	// Several corruptions within ONE row (e.g. a whole cacheline) are
	// rebuilt from columns.
	d := mustDGEMM(t, Standalone(), 32, 6)
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	want := make([]float64, 4)
	for k := 0; k < 4; k++ {
		want[k] = d.Cf.At(9, 10+k)
		d.Cf.Set(9, 10+k, want[k]*2+1)
	}
	if err := d.VerifyFull(); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 4; k++ {
		if math.Abs(d.Cf.At(9, 10+k)-want[k]) > d.Tol {
			t.Errorf("burst element %d not restored", k)
		}
	}
}

func TestDGEMMUncorrectablePattern(t *testing.T) {
	// A 2×2 block of equal-magnitude corruptions is ambiguous for
	// single-checksum ABFT when deltas cannot be matched.
	d := mustDGEMM(t, Standalone(), 24, 7)
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	// Two errors in the SAME row and SAME column pattern: (1,1),(1,2),(2,1)
	// gives 2 bad rows vs 2 bad cols but inconsistent pairing sums.
	d.Cf.Set(1, 1, d.Cf.At(1, 1)+3)
	d.Cf.Set(1, 2, d.Cf.At(1, 2)+4)
	d.Cf.Set(2, 1, d.Cf.At(2, 1)+5)
	err := d.VerifyFull()
	if err == nil {
		// Pairing may still succeed numerically; then results must be right.
		if cerr := d.CheckResult(); cerr == nil {
			return
		}
		t.Fatal("ambiguous pattern silently miscorrected")
	}
	if !errors.Is(err, ErrUncorrectable) {
		t.Errorf("err = %v, want ErrUncorrectable", err)
	}
}

func TestDGEMMSinglePanelRun(t *testing.T) {
	d := mustDGEMM(t, Standalone(), 40, 8)
	d.Block = 40 // single panel: verification happens once, at the end
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	if err := d.CheckResult(); err != nil {
		t.Fatal(err)
	}
}

func TestDGEMMNotifiedMode(t *testing.T) {
	var pending []Notification
	env := Standalone()
	env.Notify = func() []Notification {
		out := pending
		pending = nil
		return out
	}
	var cleared []uint64
	env.OnCorrected = func(addr uint64) { cleared = append(cleared, addr) }

	d := mustDGEMM(t, env, 32, 9)
	d.Mode = NotifiedVerify
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	// Corrupt one element and hand its line address to the notifier, as the
	// OS would after an ECC interrupt.
	want := d.Cf.At(3, 4)
	d.Cf.Set(3, 4, want+9)
	pending = []Notification{{VirtAddr: d.Cf.Addr(3, 4) &^ 63}}
	if err := d.verifyNotified(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Cf.At(3, 4)-want) > d.Tol {
		t.Errorf("notified correction failed: %v vs %v", d.Cf.At(3, 4), want)
	}
	if len(cleared) == 0 {
		t.Error("OnCorrected not invoked")
	}
}

func TestDGEMMNotifiedCheaperThanFull(t *testing.T) {
	full := mustDGEMM(t, Standalone(), 48, 10)
	if err := full.Run(); err != nil {
		t.Fatal(err)
	}
	env := Standalone()
	env.Notify = func() []Notification { return nil }
	noti := mustDGEMM(t, env, 48, 10)
	noti.Mode = NotifiedVerify
	if err := noti.Run(); err != nil {
		t.Fatal(err)
	}
	if noti.Ops.Verify >= full.Ops.Verify {
		t.Errorf("notified verify ops %d >= full %d", noti.Ops.Verify, full.Ops.Verify)
	}
	if noti.Ops.Compute != full.Ops.Compute {
		t.Errorf("compute ops differ: %d vs %d", noti.Ops.Compute, full.Ops.Compute)
	}
}

func TestDGEMMOverheadAccounting(t *testing.T) {
	d := mustDGEMM(t, Standalone(), 40, 11)
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	if f := d.Ops.OverheadFraction(); f <= 0 || f >= 0.5 {
		t.Errorf("overhead fraction = %v", f)
	}
	if s := d.Ops.VerifyShareOfOverhead(); s <= 0 || s >= 1 {
		t.Errorf("verify share = %v", s)
	}
}

func TestDGEMMSizeValidation(t *testing.T) {
	// Sizes that cannot carry the checksum encoding must come back as
	// typed errors, not crashes.
	for _, n := range []int{-1, 0, 1} {
		d, err := NewDGEMM(Standalone(), n, 1)
		if !errors.Is(err, ErrBadSize) {
			t.Errorf("NewDGEMM(n=%d) error = %v, want ErrBadSize", n, err)
		}
		if d != nil {
			t.Errorf("NewDGEMM(n=%d) returned a kernel alongside the error", n)
		}
	}
}
