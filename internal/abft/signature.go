package abft

import (
	"encoding/binary"
	"fmt"
	"math"

	"coopabft/internal/mat"
)

// This file defines THE canonical answer signature — the single definition
// of "same answer" shared by replica voting, the jobs API's digest field,
// and the load generator's client-side verification. The signature is
// FNV-1a over the answer's IEEE-754 bit patterns (little-endian, in chunk
// order), never over formatted floats: two answers are the same iff they
// are bit-identical, which is exactly the contract the deterministic
// kernels guarantee across honest replicas.

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// AnswerSig fingerprints an answer given as ordered float64 chunks (matrix
// rows, a solution vector, ...). It is the exported canonical signature
// helper: every response-equality check in the system routes through it or
// through a wrapper of it (BitDigest, SameAnswer), so vote, jobs, and
// failover all agree on what "same answer" means.
func AnswerSig(chunks ...[]float64) string {
	h := uint64(fnvOffset64)
	var buf [8]byte
	for _, chunk := range chunks {
		for _, v := range chunk {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			for _, b := range buf {
				h ^= uint64(b)
				h *= fnvPrime64
			}
		}
	}
	return fmt.Sprintf("%016x", h)
}

// SameAnswer reports whether two canonical signatures denote the same
// answer. Empty signatures never match anything — an absent fingerprint
// must not accidentally agree with another absent fingerprint.
func SameAnswer(a, b string) bool { return a != "" && a == b }

// ErrProductMismatch reports a claimed GEMM product that fails the cheap
// verification pass — the verify-vote verdict against a lying primary.
var ErrProductMismatch = fmt.Errorf("abft: claimed product fails checksum verification")

// CheckProduct is the replicated O(n²) verification pass behind the
// DCRFT-style verify-vote integrity mode: given the regenerable operands A
// and B and a primary's claimed product C, it checks C against two probe
// vectors — the ones vector (the classic column-checksum identity
// C·e = A·(B·e), which pins any single wrong element larger than tol) and
// a seeded random vector (which defeats row-compensated corruption) —
// without ever forming A·B. Cost: four matvecs plus operand regeneration,
// ~6n² flops against the primary's n³.
func CheckProduct(a, b, c *mat.Matrix, seed uint64, tol float64) error {
	n := c.Rows
	probe := func(r []float64, name string) error {
		br := mat.MulVec(b, r)
		want := mat.MulVec(a, br)
		got := mat.MulVec(c, r)
		for i := range want {
			d := math.Abs(want[i] - got[i])
			if d > tol || math.IsNaN(d) {
				return fmt.Errorf("%w: %s probe row %d: |Δ|=%g > tol %g",
					ErrProductMismatch, name, i, d, tol)
			}
		}
		return nil
	}
	if err := probe(mat.Ones(n), "ones"); err != nil {
		return err
	}
	return probe(mat.RandomVec(n, seed^0xa5f152ab67cd90de), "random")
}
