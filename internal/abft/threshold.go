package abft

import (
	"math"

	"coopabft/internal/mat"
)

// V-ABFT-style adaptive detection thresholds for the float32 path.
//
// The float64 kernels compare checksums against a fixed epsilon (DGEMM's
// Tol = 1e-9·n²). That is safe at double precision, where rounding noise is
// ~9 orders of magnitude below any fault worth catching. At float32 the
// margin collapses: legitimate rounding drift of a k-long accumulation
// scales with k·u32·|data|, so a fixed bound either sits below the drift of
// high-variance operands (false positives → restart storms) or above the
// faults of low-magnitude operands (silent misses). Following V-ABFT
// (PAPERS.md), the bound is instead derived per run from operand
// variance/magnitude statistics the packing pass gathers for free
// (mat.Moments, mat.FusedSums32).
//
// Derivation (DESIGN.md §9 has the long form). Each float32 output element
// after kAcc accumulated products carries rounding error at most
//
//	|e_ij| ≤ γ_k · Σ_p |a_ip·b_pj|,  γ_k ≈ kAcc·u32,
//
// and a line (row/column) check sums lineLen such elements. Two regimes
// bound Σ|a·b| without an O(n³) exact pass:
//
//   - Non-cancelling data: partial sums grow monotonically toward the final
//     value, so Σ_j |e_ij| ≤ u32·kAcc·Σ_j|c_ij| — the folded absolute line
//     sum the fused kernel already accumulates (AbsRowSums/AbsColSums).
//   - Cancelling data: partials can exceed the final |c|, so the absolute
//     sum underestimates. Cauchy–Schwarz bounds the per-step magnitude by
//     the operands' RMS: Σ_p|a||b| ≤ kAcc·rms(A)·rms(B), and modelling the
//     per-step rounding as a √kAcc random walk gives the second term
//     u32·kAcc^{3/2}·lineLen·rms(A)·rms(B).
//
// The sum of both, scaled by the safety factor ThresholdLambda (calibrated
// by the property tests in gemm32_test.go across tall-skinny, batched-small
// and large-variance distributions), is the detection bound: clean runs sit
// a factor ≥ λ below it, injected faults above it are flagged.

// u32 is the float32 unit roundoff, 2⁻²⁴.
const u32 = 1.0 / (1 << 24)

// eps64 is the float64 unit roundoff, 2⁻⁵³.
const eps64 = 1.0 / (1 << 53)

// ThresholdLambda is the safety factor between the modelled rounding drift
// and the detection bound. Calibrated by the adversarial-distribution
// property tests: large enough that clean runs never false-positive, small
// enough that any fault that matters (≥ one output ulp at line granularity)
// is detected.
const ThresholdLambda = 8.0

// LineBound32 returns the detection bound for one output line (row or
// column) of the float32 GEMM: the maintained float64 checksum and the
// kernel-folded float64 sum of the line may differ by at most this much on
// a clean run. kAcc is the number of k-products accumulated so far, lineLen
// the number of elements summed along the line, absSum the folded Σ|c| of
// the line, and a/b the operand magnitude statistics from packing.
func LineBound32(kAcc, lineLen int, absSum float64, a, b mat.Moments) float64 {
	k := float64(kAcc)
	rms := math.Sqrt(a.MeanSq() * b.MeanSq())
	return ThresholdLambda * u32 * k * (absSum + math.Sqrt(k)*float64(lineLen)*rms)
}

// ElementBound32 returns the per-element oracle tolerance of the float32
// GEMM: how far a delivered float32 element may sit from the float64
// reference value ref on a clean run.
func ElementBound32(kAcc int, ref float64, a, b mat.Moments) float64 {
	k := float64(kAcc)
	rms := math.Sqrt(a.MeanSq() * b.MeanSq())
	return ThresholdLambda * u32 * k * (math.Abs(ref) + math.Sqrt(k)*rms)
}

// OperandBound32 bounds the difference between two float64 sums of the same
// count float32 values under different associativity (the packed operand
// checksum vs the encoded one). Pure float64 rounding: each association's
// error is below count·eps64·Σ|v| ≤ count²·eps64·maxAbs; both sides plus a
// 2× margin gives the factor 4. Far below any float32 bit flip's effect, so
// operand corruption is detected at effectively full precision.
func OperandBound32(count int, mom mat.Moments) float64 {
	n := float64(count)
	return 4*eps64*n*n*mom.MaxAbs + eps64
}
