package abft

import (
	"encoding/binary"
	"fmt"
	"math"

	"coopabft/internal/mat"
)

// Block-checksum algebra for sharded single-job execution (Bosilca et al.,
// "Algorithmic Based Fault Tolerance Applied to High Performance
// Computing"): one large GEMM C = A·B is laid out as an R×C grid of blocks
// across worker processes, plus dedicated checksum blocks — one per block
// row and one per block column — held on distinct processes, so any single
// lost process's blocks are recovered from survivors without recomputation.
//
// Two codes run side by side, mirroring the paper's software/hardware
// split at cluster scale:
//
//   - Reconstruction uses GF(2) parity over the blocks' IEEE-754 bit
//     patterns (XOR folding, the same algebra a DRAM ECC codeword uses
//     over its symbols, lifted from a 64-bit word to an entire block of a
//     process grid). Because XOR is exact, a reconstructed block is
//     bit-for-bit the block that was lost — the sharded answer keeps the
//     repo-wide bit-identical determinism contract even through a node
//     death.
//   - Verification uses the classic numeric checksum sum (the Σ-block of
//     [39]'s encoded products): each checksum task also returns the
//     elementwise sum of the blocks it covers, and VerifyBlockSum checks
//     survivors + reconstruction against it within a DGEMM-style
//     tolerance, so a reconstruction is oracle-gated the way every other
//     delivery path in this repo is.
//
// Blocks within a grid column share a width but not a height (and vice
// versa for rows), so checksum blocks are sized to the widest member and
// shorter blocks are folded top-left-aligned with implicit zero padding —
// padding is exact in both codes (XOR with 0 bits, sum with +0.0).

// BlockGrid is the 2D block layout of an n×n result: RowSplits and
// ColSplits hold the R+1 and C+1 panel boundaries (0 = first, n = last).
type BlockGrid struct {
	N         int
	RowSplits []int
	ColSplits []int
}

// NewBlockGrid splits an n×n result into an r×c grid of near-equal blocks
// (earlier panels take the remainder, so heights/widths differ by at most
// one — odd shapes and non-square grids are first-class).
func NewBlockGrid(n, r, c int) (BlockGrid, error) {
	if n < 1 {
		return BlockGrid{}, fmt.Errorf("%w: grid over n=%d", ErrBadSize, n)
	}
	if r < 1 || c < 1 || r > n || c > n {
		return BlockGrid{}, fmt.Errorf("%w: %dx%d grid over n=%d", ErrBadSize, r, c, n)
	}
	return BlockGrid{N: n, RowSplits: splits(n, r), ColSplits: splits(n, c)}, nil
}

// splits partitions [0, n) into k near-equal spans.
func splits(n, k int) []int {
	out := make([]int, k+1)
	for i := 1; i <= k; i++ {
		out[i] = out[i-1] + n/k
		if i <= n%k {
			out[i]++
		}
	}
	return out
}

// Validate checks a grid received off the wire: monotone splits covering
// exactly [0, N].
func (g BlockGrid) Validate() error {
	for _, sp := range [][]int{g.RowSplits, g.ColSplits} {
		if len(sp) < 2 || sp[0] != 0 || sp[len(sp)-1] != g.N {
			return fmt.Errorf("%w: block splits must run 0..%d", ErrBadSize, g.N)
		}
		for i := 1; i < len(sp); i++ {
			if sp[i] <= sp[i-1] {
				return fmt.Errorf("%w: non-monotone block splits", ErrBadSize)
			}
		}
	}
	return nil
}

// Rows returns the number of block rows R.
func (g BlockGrid) Rows() int { return len(g.RowSplits) - 1 }

// Cols returns the number of block columns C.
func (g BlockGrid) Cols() int { return len(g.ColSplits) - 1 }

// RowSpan returns block row i's half-open row range [lo, hi).
func (g BlockGrid) RowSpan(i int) (lo, hi int) { return g.RowSplits[i], g.RowSplits[i+1] }

// ColSpan returns block column j's half-open column range [lo, hi).
func (g BlockGrid) ColSpan(j int) (lo, hi int) { return g.ColSplits[j], g.ColSplits[j+1] }

// MaxRowSpan returns the tallest block height — the row extent of a
// column-checksum block.
func (g BlockGrid) MaxRowSpan() int { return maxSpan(g.RowSplits) }

// MaxColSpan returns the widest block width — the column extent of a
// row-checksum block.
func (g BlockGrid) MaxColSpan() int { return maxSpan(g.ColSplits) }

func maxSpan(sp []int) int {
	m := 0
	for i := 1; i < len(sp); i++ {
		if w := sp[i] - sp[i-1]; w > m {
			m = w
		}
	}
	return m
}

// FoldParity XORs src's IEEE-754 bit patterns into dst, top-left aligned;
// dst must be at least as large as src in both dimensions. Positions dst
// has and src lacks are untouched (an implicit XOR with zero bits).
func FoldParity(dst, src *mat.Matrix) {
	if src.Rows > dst.Rows || src.Cols > dst.Cols {
		panic(fmt.Sprintf("abft: FoldParity %dx%d into %dx%d", src.Rows, src.Cols, dst.Rows, dst.Cols))
	}
	for i := 0; i < src.Rows; i++ {
		d := dst.Row(i)
		for j, v := range src.Row(i) {
			d[j] = math.Float64frombits(math.Float64bits(d[j]) ^ math.Float64bits(v))
		}
	}
}

// FoldSum adds src elementwise into dst, top-left aligned — the numeric
// checksum-block accumulation (missing positions contribute +0.0).
func FoldSum(dst, src *mat.Matrix) {
	if src.Rows > dst.Rows || src.Cols > dst.Cols {
		panic(fmt.Sprintf("abft: FoldSum %dx%d into %dx%d", src.Rows, src.Cols, dst.Rows, dst.Cols))
	}
	for i := 0; i < src.Rows; i++ {
		d := dst.Row(i)
		for j, v := range src.Row(i) {
			d[j] += v
		}
	}
}

// EncodeChecksumBlocks folds a set of sibling blocks (one grid row or one
// grid column) into their checksum pair: the GF(2) parity block used for
// reconstruction and the numeric sum block used for verification. rows and
// cols size the checksum blocks (the widest member's extents).
func EncodeChecksumBlocks(blocks []*mat.Matrix, rows, cols int) (parity, sum *mat.Matrix) {
	parity = mat.New(rows, cols)
	sum = mat.New(rows, cols)
	for _, b := range blocks {
		FoldParity(parity, b)
		FoldSum(sum, b)
	}
	return parity, sum
}

// ReconstructBlock recovers a lost rows×cols block from its siblings'
// parity block and the surviving siblings: parity ⊕ survivors equals the
// lost block's bits exactly, because every block folded into the parity
// except the lost one cancels. The result is bit-for-bit the lost block —
// no recomputation, no floating-point drift.
func ReconstructBlock(parity *mat.Matrix, survivors []*mat.Matrix, rows, cols int) (*mat.Matrix, error) {
	if rows > parity.Rows || cols > parity.Cols {
		return nil, fmt.Errorf("%w: reconstructing %dx%d from %dx%d parity",
			ErrBadSize, rows, cols, parity.Rows, parity.Cols)
	}
	work := parity.Clone()
	for _, s := range survivors {
		if s.Rows > work.Rows || s.Cols > work.Cols {
			return nil, fmt.Errorf("%w: survivor %dx%d exceeds %dx%d parity",
				ErrBadSize, s.Rows, s.Cols, work.Rows, work.Cols)
		}
		FoldParity(work, s)
	}
	out := mat.New(rows, cols)
	out.CopyFrom(work.View(0, 0, rows, cols))
	return out, nil
}

// VerifyBlockSum checks that blocks (survivors plus any reconstruction)
// fold to the numeric checksum block within tol — the classic ABFT Σ-check
// that gates a reconstructed delivery, so an undetected corruption in a
// surviving block cannot silently poison the recovered answer.
func VerifyBlockSum(sum *mat.Matrix, blocks []*mat.Matrix, tol float64) error {
	got := mat.New(sum.Rows, sum.Cols)
	for _, b := range blocks {
		if b.Rows > got.Rows || b.Cols > got.Cols {
			return fmt.Errorf("%w: block %dx%d exceeds %dx%d checksum",
				ErrBadSize, b.Rows, b.Cols, got.Rows, got.Cols)
		}
		FoldSum(got, b)
	}
	for i := 0; i < sum.Rows; i++ {
		want, have := sum.Row(i), got.Row(i)
		for j := range want {
			if d := math.Abs(want[j] - have[j]); d > tol {
				return fmt.Errorf("%w: checksum mismatch at (%d,%d): |Δ|=%g > tol %g",
					ErrUncorrectable, i, j, d, tol)
			}
		}
	}
	return nil
}

// BlockTol is the Σ-check tolerance for an n×n sharded product, matching
// the DGEMM checksum tolerance scaling.
func BlockTol(n int) float64 { return 1e-9 * float64(n) * float64(n) }

// PackBlock serializes a matrix's elements row-major as little-endian
// IEEE-754 bit patterns — the exact-bits wire form of a block (JSON floats
// cannot carry a parity block: XOR-folded patterns need not be valid
// numbers).
func PackBlock(m *mat.Matrix) []byte {
	out := make([]byte, 8*m.Rows*m.Cols)
	off := 0
	for i := 0; i < m.Rows; i++ {
		for _, v := range m.Row(i) {
			binary.LittleEndian.PutUint64(out[off:], math.Float64bits(v))
			off += 8
		}
	}
	return out
}

// UnpackBlock inverts PackBlock into an r×c matrix.
func UnpackBlock(r, c int, b []byte) (*mat.Matrix, error) {
	if len(b) != 8*r*c {
		return nil, fmt.Errorf("%w: %d-byte payload for a %dx%d block", ErrBadSize, len(b), r, c)
	}
	m := mat.New(r, c)
	off := 0
	for i := 0; i < r; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = math.Float64frombits(binary.LittleEndian.Uint64(b[off:]))
			off += 8
		}
	}
	return m, nil
}

// BitDigest hashes a matrix's exact bit patterns (row-major FNV-1a over
// the PackBlock encoding) — the job-level answer fingerprint clients
// compare against a locally computed reference to assert bit-identity over
// the wire. It is the matrix-shaped view of the canonical AnswerSig, so a
// job digest and a vote signature over the same answer are the same
// string.
func BitDigest(m *mat.Matrix) string {
	chunks := make([][]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		chunks[i] = m.Row(i)
	}
	return AnswerSig(chunks...)
}
