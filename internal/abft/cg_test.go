package abft

import (
	"math"
	"testing"
)

func TestCGCleanSolve(t *testing.T) {
	c := NewCG(Standalone(), 24, 24, 1)
	out, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Converged {
		t.Fatalf("did not converge: %+v", out)
	}
	if res := c.TrueResidual(); res > 1e-8 {
		t.Errorf("true residual = %g", res)
	}
	if c.Recoveries != 0 {
		t.Errorf("clean solve triggered %d recoveries", c.Recoveries)
	}
	if c.Ops.Verify == 0 || c.Ops.Compute == 0 {
		t.Errorf("ops = %+v", c.Ops)
	}
	if c.Ops.Checksum != 0 {
		t.Errorf("CG has no checksums but counted %d ops", c.Ops.Checksum)
	}
}

func TestCGRecoversFromResidualCorruption(t *testing.T) {
	c := NewCG(Standalone(), 20, 20, 2)
	c.CheckPeriod = 4
	c.OnIteration = func(iter int) {
		if iter == 10 {
			c.R()[37] += 1e6 // massive corruption in r
		}
	}
	out, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Converged {
		t.Fatalf("did not converge after corruption: %+v", out)
	}
	if c.Recoveries == 0 {
		t.Error("corruption never detected")
	}
	if res := c.TrueResidual(); res > 1e-7 {
		t.Errorf("true residual = %g", res)
	}
}

func TestCGRecoversFromXCorruption(t *testing.T) {
	c := NewCG(Standalone(), 20, 20, 3)
	c.CheckPeriod = 4
	c.OnIteration = func(iter int) {
		if iter == 8 {
			c.X()[100] -= 5000
		}
	}
	out, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Converged {
		t.Fatalf("did not converge: %+v", out)
	}
	if res := c.TrueResidual(); res > 1e-7 {
		t.Errorf("true residual = %g", res)
	}
}

func TestCGRecoversFromDirectionCorruption(t *testing.T) {
	c := NewCG(Standalone(), 16, 16, 4)
	c.CheckPeriod = 2
	c.OnIteration = func(iter int) {
		if iter == 6 {
			c.P()[11] *= -300
		}
	}
	out, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Converged || c.TrueResidual() > 1e-7 {
		t.Fatalf("direction corruption not healed: %+v, res %g", out, c.TrueResidual())
	}
}

func TestCGConvergesWithoutChecks(t *testing.T) {
	c := NewCG(Standalone(), 16, 16, 5)
	c.CheckPeriod = 0 // verification disabled entirely
	out, err := c.Run()
	if err != nil || !out.Converged {
		t.Fatalf("out=%+v err=%v", out, err)
	}
}

func TestCGNotifiedElementRepairs(t *testing.T) {
	var pending []Notification
	env := Standalone()
	env.Notify = func() []Notification {
		out := pending
		pending = nil
		return out
	}
	c := NewCG(env, 16, 16, 6)
	c.Mode = NotifiedVerify
	c.CheckPeriod = 2
	injected := false
	c.OnIteration = func(iter int) {
		if iter == 5 && !injected {
			injected = true
			// Corrupt r[40] and q[17]; notify their exact lines.
			c.R()[40] += 777
			q, _ := c.VecFor("q")
			q.Data[17] -= 55
			pending = []Notification{
				{VirtAddr: c.r.Addr(40) &^ 63},
				{VirtAddr: q.Addr(17) &^ 63},
			}
		}
	}
	out, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Converged || c.TrueResidual() > 1e-7 {
		t.Fatalf("notified repair failed: %+v res %g", out, c.TrueResidual())
	}
	if len(c.Corrections) == 0 {
		t.Error("no element corrections recorded")
	}
}

func TestCGNotifiedXRepair(t *testing.T) {
	var pending []Notification
	env := Standalone()
	env.Notify = func() []Notification {
		out := pending
		pending = nil
		return out
	}
	c := NewCG(env, 16, 16, 7)
	c.Mode = NotifiedVerify
	c.CheckPeriod = 1
	c.OnIteration = func(iter int) {
		if iter == 4 {
			before := c.X()[33]
			c.X()[33] = before + 1e5
			pending = []Notification{{VirtAddr: c.x.Addr(33) &^ 63}}
		}
	}
	out, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Converged || c.TrueResidual() > 1e-7 {
		t.Fatalf("x repair failed: %+v res %g", out, c.TrueResidual())
	}
}

func TestCGNotifiedDirectionRestart(t *testing.T) {
	var pending []Notification
	env := Standalone()
	env.Notify = func() []Notification {
		out := pending
		pending = nil
		return out
	}
	c := NewCG(env, 16, 16, 8)
	c.Mode = NotifiedVerify
	c.CheckPeriod = 1
	c.OnIteration = func(iter int) {
		if iter == 4 {
			c.P()[9] += 1e4
			pending = []Notification{{VirtAddr: c.p.Addr(9) &^ 63}}
		}
	}
	out, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Converged {
		t.Fatalf("direction restart failed: %+v", out)
	}
	if c.Recoveries == 0 {
		t.Error("p corruption should trigger a direction restart")
	}
}

func TestCGNotifiedCheaperThanFull(t *testing.T) {
	full := NewCG(Standalone(), 20, 20, 9)
	full.CheckPeriod = 4
	if _, err := full.Run(); err != nil {
		t.Fatal(err)
	}
	env := Standalone()
	env.Notify = func() []Notification { return nil }
	noti := NewCG(env, 20, 20, 9)
	noti.Mode = NotifiedVerify
	noti.CheckPeriod = 4
	if _, err := noti.Run(); err != nil {
		t.Fatal(err)
	}
	if noti.Ops.Verify >= full.Ops.Verify {
		t.Errorf("notified verify %d >= full %d", noti.Ops.Verify, full.Ops.Verify)
	}
}

func TestCGVecForLookup(t *testing.T) {
	c := NewCG(Standalone(), 8, 8, 10)
	for _, name := range []string{"r", "p", "q", "x", "b", "z"} {
		if _, ok := c.VecFor(name); !ok {
			t.Errorf("VecFor(%q) failed", name)
		}
	}
	if _, ok := c.VecFor("nope"); ok {
		t.Error("VecFor accepted an unknown name")
	}
}

func TestCGElementAddressRoundTrip(t *testing.T) {
	c := NewCG(Standalone(), 8, 8, 11)
	addr := c.r.Addr(17)
	if k, ok := c.r.ElemAt(addr); !ok || k != 17 {
		t.Errorf("ElemAt(Addr(17)) = %d, %v", k, ok)
	}
	if math.Abs(float64(addr-c.r.Reg.Base)-17*8) > 0 {
		t.Error("address arithmetic wrong")
	}
}
