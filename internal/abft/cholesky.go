package abft

import (
	"fmt"
	"math"

	"coopabft/internal/mat"
)

// Cholesky is the fault-tolerant right-looking blocked Cholesky
// factorization of [38] (§2.1). The lower triangle of the ABFT-protected
// matrix A is factored in place into L (A = L·Lᵀ); dual checksum vectors —
// plain column sums and row-index-weighted column sums, the classic
// Huang–Abraham pair — are maintained for the trailing submatrix through
// every panel factorization and trailing update, and a second pair protects
// the already-factored L columns. A mismatch (δ, δ₂) locates the corrupted
// element at row δ₂/δ − 1 of the flagged column, which is then repaired in
// place.
type Cholesky struct {
	N int

	A Mat // n×n, lower triangle live, ABFT-protected (in-place L)
	// cs/cs2 are the trailing-submatrix checksums; lcs/lcs2 protect
	// factored L columns. All four are part of the ABFT encoding.
	cs, cs2   Vec
	lcs, lcs2 Vec
	// W is the panel workspace the trailing update reads — the stand-in for
	// the packed/broadcast panel buffer real implementations use; it is NOT
	// ABFT-protected (Table 4's unprotected references).
	W Mat

	Block       int
	CheckPeriod int
	Mode        VerifyMode
	Tol         float64

	// OnPanel, if set, runs at the top of every block step — the hook
	// fault-injection campaigns and checkpoint coordinators use. The step
	// index counts from 0 to Steps()-1.
	OnPanel func(step int)

	Ops         OpCounters
	Corrections []Correction

	env Env
	k   int // current factorization offset
}

// NewCholesky builds a random SPD problem of size n.
func NewCholesky(env Env, n int, seed uint64) *Cholesky {
	c := &Cholesky{
		N:           n,
		Block:       32,
		CheckPeriod: 1,
		Tol:         1e-7 * float64(n) * float64(n),
		env:         env,
	}
	if c.Block > n {
		c.Block = n
	}
	c.A = env.NewMat("chol.A", n, n, true)
	c.cs = env.NewVec("chol.cs", n, true)
	c.cs2 = env.NewVec("chol.cs2", n, true)
	c.lcs = env.NewVec("chol.lcs", n, true)
	c.lcs2 = env.NewVec("chol.lcs2", n, true)
	c.W = env.NewMat("chol.W", n, c.Block, false)

	spd := mat.SymmetricPositiveDefinite(n, seed)
	c.A.Matrix.CopyFrom(spd)
	c.initChecksums()
	return c
}

// Checksums exposes the four checksum vectors — the trailing pair (cs, cs2)
// and the factored-L pair (lcs, lcs2) — for checkpoint sets and
// fault-injection campaigns; they are part of the ABFT-protected state.
func (c *Cholesky) Checksums() (cs, cs2, lcs, lcs2 Vec) {
	return c.cs, c.cs2, c.lcs, c.lcs2
}

// at reads the logical symmetric element (i, j) from the lower triangle.
func (c *Cholesky) at(i, j int) float64 {
	if i >= j {
		return c.A.At(i, j)
	}
	return c.A.At(j, i)
}

func (c *Cholesky) initChecksums() {
	n := c.N
	for j := 0; j < n; j++ {
		s, s2 := 0.0, 0.0
		for i := 0; i < n; i++ {
			v := c.at(i, j)
			s += v
			s2 += float64(i+1) * v
		}
		c.cs.Data[j] = s
		c.cs2.Data[j] = s2
	}
	c.cs.Touch(0, n, true)
	c.cs2.Touch(0, n, true)
	c.ops(&c.Ops.Checksum, 3*n*n)
}

func (c *Cholesky) ops(bucket *uint64, n int) {
	*bucket += uint64(n)
	c.env.Mem.Ops(n)
}

// L returns the factor (valid after Run); the strictly upper triangle is
// zeroed.
func (c *Cholesky) L() *mat.Matrix {
	out := c.A.Matrix.Clone()
	for i := 0; i < c.N; i++ {
		for j := i + 1; j < c.N; j++ {
			out.Set(i, j, 0)
		}
	}
	return out
}

// Steps returns the number of block steps a full run executes.
func (c *Cholesky) Steps() int { return (c.N + c.Block - 1) / c.Block }

// Run factors A in place with per-step verification.
func (c *Cholesky) Run() error { return c.RunFrom(0) }

// RunFrom resumes the factorization at block step startStep — the
// checkpoint/restart entry point: restore A and the four checksum vectors
// to a step boundary, then RunFrom that step replays the remaining panels.
func (c *Cholesky) RunFrom(startStep int) error {
	n := c.N
	iter := startStep
	for k := startStep * c.Block; k < n; k += c.Block {
		c.k = k
		if c.OnPanel != nil {
			c.OnPanel(iter)
		}
		b := min(c.Block, n-k)
		rest := n - k - b

		// 0. Pre-panel verification: corruption in the panel columns must
		// be repaired before the factorization consumes it — once the
		// panel is factored, the error spreads into the whole trailing
		// update and stops being a locatable single element.
		if c.CheckPeriod > 0 && iter%c.CheckPeriod == 0 {
			if err := c.verifyStep(k); err != nil {
				return err
			}
		}

		// 1. Checksum maintenance: rows [k, k+b) leave the trailing set.
		c.removeDepartingRows(k, b)
		c.k = k + b // cs/cs2 now cover the [k+b, n) trailing square

		// 2. Factor the diagonal block.
		a11 := c.A.View(k, k, b, b)
		if err := mat.Cholesky(a11); err != nil {
			return err
		}
		c.touchBlockLower(k, k, b, b, true)
		c.ops(&c.Ops.Compute, b*b*b/3+2*b)

		if rest > 0 {
			// 3. Panel solve A21 → L21.
			a21 := c.A.View(k+b, k, rest, b)
			mat.SolveXLT(a21, a11)
			c.touchBlockFull(k+b, k, rest, b, true)
			c.ops(&c.Ops.Compute, rest*b*b)

			// 4. Pack the panel into the unprotected workspace.
			for i := 0; i < rest; i++ {
				copy(c.W.Row(i)[:b], a21.Row(i))
				c.W.TouchRow(i, 0, b, true)
				c.A.TouchRow(k+b+i, k, b, false)
			}

			// 5. Trailing update A22 -= W·Wᵀ (lower triangle).
			c.trailingUpdate(k+b, rest, b)

			// 6. Checksum maintenance for the update.
			c.updateChecksums(k+b, rest, b)
		}

		// 7. Record checksums over the freshly finalized L columns.
		c.recordLChecksums(k, b)

		iter++
	}
	c.k = n
	// Final sweep over the factored L so the result leaves verified.
	if c.CheckPeriod > 0 && c.Mode == FullVerify {
		if err := c.VerifyL(n); err != nil {
			return err
		}
	} else if c.Mode == NotifiedVerify {
		if err := c.verifyNotified(); err != nil {
			return err
		}
	}
	// Zero the dead upper triangle so L is clean.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			c.A.Set(i, j, 0)
		}
	}
	return nil
}

// touchBlockLower reports accesses to the lower triangle of the (r0, c0)
// block.
func (c *Cholesky) touchBlockLower(r0, c0, rows, cols int, write bool) {
	for i := 0; i < rows; i++ {
		w := min(i+1, cols)
		c.A.TouchRow(r0+i, c0, w, write)
	}
}

// touchBlockFull reports accesses to a full rectangular block.
func (c *Cholesky) touchBlockFull(r0, c0, rows, cols int, write bool) {
	for i := 0; i < rows; i++ {
		c.A.TouchRow(r0+i, c0, cols, write)
	}
}

// trailingUpdate computes A[t:,t:] -= W·Wᵀ on the lower triangle through
// the packed SYRK kernel, then reports the same per-row access pattern the
// scalar loop produced so the simulated traffic is unchanged.
func (c *Cholesky) trailingUpdate(t, rest, b int) {
	a22 := c.A.View(t, t, rest, rest)
	w := c.W.View(0, 0, rest, b)
	mat.SyrkLowerSub(a22, w)
	for i := 0; i < rest; i++ {
		c.W.TouchRow(i, 0, b, false)
		// One workspace row read per j plus the updated row segment.
		c.W.TouchRow(0, 0, b*min(i+1, 8), false) // sampled W row traffic
		c.A.TouchRow(t+i, t, i+1, true)
		c.ops(&c.Ops.Compute, 2*b*(i+1))
	}
}

// removeDepartingRows drops rows [k, k+b) from the trailing checksums.
func (c *Cholesky) removeDepartingRows(k, b int) {
	n := c.N
	for j := k + b; j < n; j++ {
		row := c.A.Row(j)
		s, s2 := 0.0, 0.0
		for i := k; i < k+b; i++ {
			v := row[i] // logical (i, j) with i < j lives at storage (j, i)
			s += v
			s2 += float64(i+1) * v
		}
		c.cs.Data[j] -= s
		c.cs2.Data[j] -= s2
		c.A.TouchRow(j, k, b, false)
	}
	if n > k+b {
		c.cs.Touch(k+b, n-k-b, true)
		c.cs2.Touch(k+b, n-k-b, true)
	}
	c.ops(&c.Ops.Checksum, 3*b*(n-k-b)+2*(n-k-b))
}

// updateChecksums applies the trailing-update delta to cs/cs2:
// cs[j] -= Σ_p s[p]·W[j][p] with s[p] = Σ_i W[i][p] (and weighted s2).
func (c *Cholesky) updateChecksums(t, rest, b int) {
	s := make([]float64, b)
	s2 := make([]float64, b)
	for i := 0; i < rest; i++ {
		wi := c.W.Row(i)[:b]
		gw := float64(t + i + 1)
		for p, v := range wi {
			s[p] += v
			s2[p] += gw * v
		}
		c.W.TouchRow(i, 0, b, false)
	}
	c.ops(&c.Ops.Checksum, 3*rest*b)
	for j := 0; j < rest; j++ {
		wj := c.W.Row(j)[:b]
		d, d2 := 0.0, 0.0
		for p, v := range wj {
			d += s[p] * v
			d2 += s2[p] * v
		}
		c.cs.Data[t+j] -= d
		c.cs2.Data[t+j] -= d2
		c.W.TouchRow(j, 0, b, false)
	}
	c.cs.Touch(t, rest, true)
	c.cs2.Touch(t, rest, true)
	c.ops(&c.Ops.Checksum, 4*rest*b+2*rest)
}

// recordLChecksums stores dual column sums over the finalized L columns
// [k, k+b).
func (c *Cholesky) recordLChecksums(k, b int) {
	n := c.N
	for j := k; j < k+b; j++ {
		s, s2 := 0.0, 0.0
		for i := j; i < n; i++ {
			v := c.A.At(i, j)
			s += v
			s2 += float64(i+1) * v
		}
		c.lcs.Data[j] = s
		c.lcs2.Data[j] = s2
		c.A.TouchCol(j, j, n-j, false)
	}
	c.lcs.Touch(k, b, true)
	c.lcs2.Touch(k, b, true)
	c.ops(&c.Ops.Checksum, 3*b*(n-k))
}

// verifyStep checks per Mode at trailing offset t.
func (c *Cholesky) verifyStep(t int) error {
	if c.Mode == NotifiedVerify {
		return c.verifyNotified()
	}
	return c.VerifyTrailing(t)
}

// trailingColSums computes the dual logical-symmetric column sums of
// column j over rows [t, n), with instrumentation.
func (c *Cholesky) trailingColSums(j, t int) (s, s2 float64) {
	n := c.N
	// Row-stored part: logical (i, j) for i in [t, j) is at (j, i).
	row := c.A.Row(j)
	for i := t; i < j; i++ {
		v := row[i]
		s += v
		s2 += float64(i+1) * v
	}
	// Column part: (i, j) for i in [j, n).
	for i := j; i < n; i++ {
		v := c.A.At(i, j)
		s += v
		s2 += float64(i+1) * v
	}
	if j > t {
		c.A.TouchRow(j, t, j-t, false)
	}
	c.A.TouchCol(j, j, n-j, false)
	c.ops(&c.Ops.Verify, 3*(n-t))
	return s, s2
}

// lColSums computes the dual column sums of factored column j over rows
// [j, n).
func (c *Cholesky) lColSums(j int) (s, s2 float64) {
	n := c.N
	for i := j; i < n; i++ {
		v := c.A.At(i, j)
		s += v
		s2 += float64(i+1) * v
	}
	c.A.TouchCol(j, j, n-j, false)
	c.ops(&c.Ops.Verify, 3*(n-j))
	return s, s2
}

// VerifyTrailing recomputes the dual column sums of the trailing submatrix
// [t, n)² and repairs any located corruption.
func (c *Cholesky) VerifyTrailing(t int) error {
	n := c.N
	for j := t; j < n; j++ {
		s, s2 := c.trailingColSums(j, t)
		delta := c.cs.Data[j] - s
		delta2 := c.cs2.Data[j] - s2
		if err := c.repairColumn(j, t, delta, delta2, false); err != nil {
			return err
		}
	}
	return nil
}

// VerifyL checks the factored L columns [0, upto) against lcs/lcs2.
func (c *Cholesky) VerifyL(upto int) error {
	for j := 0; j < upto; j++ {
		s, s2 := c.lColSums(j)
		delta := c.lcs.Data[j] - s
		delta2 := c.lcs2.Data[j] - s2
		if err := c.repairColumn(j, j, delta, delta2, true); err != nil {
			return err
		}
	}
	return nil
}

// repairColumn interprets a (δ, δ₂) mismatch on column j whose live rows
// start at rowLo. inL selects which checksum pair to re-derive when the
// corruption is in the checksum itself.
func (c *Cholesky) repairColumn(j, rowLo int, delta, delta2 float64, inL bool) error {
	tol := c.Tol
	if math.Abs(delta) <= tol && math.Abs(delta2) <= tol {
		return nil
	}
	cs, cs2 := &c.cs, &c.cs2
	name := "chol.A"
	if inL {
		cs, cs2 = &c.lcs, &c.lcs2
		name = "chol.L"
	}
	if math.Abs(delta) <= tol {
		// Only the weighted checksum is off: cs2[j] itself is corrupted.
		// Restore it to the recomputed sum (s2 = cs2[j] − δ₂).
		cs2.Data[j] -= delta2
		cs2.Touch(j, 1, true)
		c.Corrections = append(c.Corrections, Correction{Structure: name + ".cs2", J: j, Delta: -delta2})
		c.env.corrected(cs2.Addr(j))
		return nil
	}
	row := delta2/delta - 1
	ri := int(math.Round(row))
	if math.Abs(row-float64(ri)) > 0.25 || ri < rowLo || ri >= c.N {
		// No consistent single-element location: either the plain checksum
		// itself is corrupted (δ₂ consistent with nothing) or multiple
		// errors hit the column.
		if math.Abs(delta2) <= tol {
			cs.Data[j] -= delta
			cs.Touch(j, 1, true)
			c.Corrections = append(c.Corrections, Correction{Structure: name + ".cs", J: j, Delta: -delta})
			c.env.corrected(cs.Addr(j))
			return nil
		}
		return fmt.Errorf("%w: column %d deltas (%g, %g) locate no element",
			ErrUncorrectable, j, delta, delta2)
	}
	// Repair the located element; logical (ri, j) may live at (j, ri).
	si, sj := ri, j
	if si < sj {
		si, sj = sj, si
	}
	c.A.Add(si, sj, delta)
	c.A.TouchElem(si, sj, true)
	c.ops(&c.Ops.Verify, 2)
	// Post-repair re-verification: multiple errors in one column can alias
	// to a plausible single-element explanation; a true fix leaves the
	// column consistent.
	var s, s2 float64
	if inL {
		s, s2 = c.lColSums(j)
		s, s2 = cs.Data[j]-s, cs2.Data[j]-s2
	} else {
		s, s2 = c.trailingColSums(j, rowLo)
		s, s2 = cs.Data[j]-s, cs2.Data[j]-s2
	}
	if math.Abs(s) > tol || math.Abs(s2) > tol {
		c.A.Add(si, sj, -delta)
		return fmt.Errorf("%w: column %d has multiple corrupted elements", ErrUncorrectable, j)
	}
	c.Corrections = append(c.Corrections, Correction{Structure: name, I: si, J: sj, Delta: delta})
	c.env.corrected(c.A.Addr(si, sj))
	return nil
}

// VerifyNotified consumes pending OS corruption reports and repairs the
// affected elements (the public entry point for post-run coordination).
func (c *Cholesky) VerifyNotified() error { return c.verifyNotified() }

// verifyNotified repairs exactly the elements the OS reported corrupted,
// each via one dual-column-sum recomputation — O(n) per error instead of
// O(n²) per sweep.
func (c *Cholesky) verifyNotified() error {
	if c.env.Notify == nil {
		return nil
	}
	for _, note := range c.env.Notify() {
		for off := uint64(0); off < 64; off += 8 {
			addr := note.VirtAddr + off
			if i, j, ok := c.A.ElemAt(addr); ok {
				if err := c.repairElement(i, j); err != nil {
					return err
				}
				continue
			}
			c.repairChecksumAddr(addr)
		}
	}
	return nil
}

// repairElement recomputes storage element (i, j), i ≥ j, from its column
// checksum (trailing or L depending on the current offset).
func (c *Cholesky) repairElement(i, j int) error {
	if i < j {
		return nil // dead upper-triangle storage
	}
	n := c.N
	if j < c.k {
		// Factored column: rebuild from lcs.
		s := 0.0
		for r := j; r < n; r++ {
			if r != i {
				s += c.A.At(r, j)
			}
		}
		c.A.TouchCol(j, j, n-j, false)
		c.ops(&c.Ops.Verify, n-j)
		c.applyElementFix(i, j, c.lcs.Data[j]-s)
		return nil
	}
	// Trailing column: rebuild from cs via the logical symmetric sum.
	t := c.k
	s := 0.0
	for r := t; r < n; r++ {
		if r == i {
			continue
		}
		s += c.at(r, j)
	}
	c.ops(&c.Ops.Verify, n-t)
	c.applyElementFix(i, j, c.cs.Data[j]-s)
	// The same storage element appears in column i's logical sum too; no
	// second fix needed since storage is shared.
	return nil
}

func (c *Cholesky) applyElementFix(i, j int, want float64) {
	old := c.A.At(i, j)
	c.A.Set(i, j, want)
	c.A.TouchElem(i, j, true)
	c.Corrections = append(c.Corrections, Correction{Structure: "chol.A", I: i, J: j, Delta: want - old})
	c.env.corrected(c.A.Addr(i, j))
}

// repairChecksumAddr recomputes a corrupted checksum entry.
func (c *Cholesky) repairChecksumAddr(addr uint64) {
	n := c.N
	fix := func(v Vec, weighted, inL bool) bool {
		j, ok := v.ElemAt(addr)
		if !ok {
			return false
		}
		s := 0.0
		if inL {
			for i := j; i < n; i++ {
				val := c.A.At(i, j)
				if weighted {
					val *= float64(i + 1)
				}
				s += val
			}
		} else {
			if j < c.k {
				return true // stale trailing entry; nothing to repair
			}
			for i := c.k; i < n; i++ {
				val := c.at(i, j)
				if weighted {
					val *= float64(i + 1)
				}
				s += val
			}
		}
		c.ops(&c.Ops.Verify, n)
		v.Data[j] = s
		v.Touch(j, 1, true)
		c.env.corrected(v.Addr(j))
		return true
	}
	_ = fix(c.cs, false, false) || fix(c.cs2, true, false) ||
		fix(c.lcs, false, true) || fix(c.lcs2, true, true)
}

// CheckResult verifies L·Lᵀ ≈ original A (test helper, O(n³)); pass the
// matrix the problem was built from.
func (c *Cholesky) CheckResult(orig *mat.Matrix) error {
	l := c.L()
	rec := mat.Mul(l, l.Transpose())
	if !mat.Equal(rec, orig, c.Tol*10) {
		return fmt.Errorf("abft: Cholesky L·Lᵀ differs from A")
	}
	return nil
}
