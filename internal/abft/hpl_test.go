package abft

import (
	"errors"
	"testing"

	"coopabft/internal/mat"
)

func hplProblem(n, nb int, seed uint64) (*HPL, *mat.Matrix) {
	h, err := NewHPL(Standalone(), n, nb, seed)
	if err != nil {
		panic(err)
	}
	return h, h.A.Matrix.Clone()
}

func TestHPLSiblingMapping(t *testing.T) {
	h, _ := hplProblem(32, 4, 1)
	// Row 0 (block 0, pr 0) pairs with row 4 (block 1, pr 1), slot 0.
	if p, u := h.sibling(0); p != 4 || u != 0 {
		t.Errorf("sibling(0) = %d, slot %d", p, u)
	}
	if p, u := h.sibling(4); p != 0 || u != 0 {
		t.Errorf("sibling(4) = %d, slot %d", p, u)
	}
	// Row 9 (block 2, t=1, off 1) pairs with 13, slot 5.
	if p, u := h.sibling(9); p != 13 || u != 5 {
		t.Errorf("sibling(9) = %d, slot %d", p, u)
	}
	// Sibling is an involution across all rows.
	for i := 0; i < 32; i++ {
		p, u := h.sibling(i)
		pp, uu := h.sibling(p)
		if pp != i || uu != u {
			t.Fatalf("sibling not involutive at %d", i)
		}
		if h.ownerPr(i) == h.ownerPr(p) {
			t.Fatalf("siblings %d,%d on same process row", i, p)
		}
	}
}

func TestHPLSizeValidation(t *testing.T) {
	// Malformed sizes must come back as typed errors, not crashes.
	for _, c := range []struct{ n, nb int }{{30, 4}, {32, 0}, {0, 4}} {
		h, err := NewHPL(Standalone(), c.n, c.nb, 1)
		if !errors.Is(err, ErrBadSize) {
			t.Errorf("NewHPL(n=%d, nb=%d) error = %v, want ErrBadSize", c.n, c.nb, err)
		}
		if h != nil {
			t.Errorf("NewHPL(n=%d, nb=%d) returned a kernel alongside the error", c.n, c.nb)
		}
	}
}

func TestHPLEncodingInvariantAfterConstruction(t *testing.T) {
	h, _ := hplProblem(24, 4, 2)
	if w := h.VerifyEncoding(); w > 1e-12 {
		t.Errorf("fresh encoding deviation %g", w)
	}
}

func TestHPLCleanFactorization(t *testing.T) {
	h, orig := hplProblem(32, 4, 3)
	if err := h.Run(); err != nil {
		t.Fatal(err)
	}
	if err := h.CheckResult(orig); err != nil {
		t.Fatal(err)
	}
	if h.Recovered != 0 {
		t.Errorf("clean run recovered %d elements", h.Recovered)
	}
}

func TestHPLEncodingMaintainedThroughFactorization(t *testing.T) {
	// The core FT-HPL property: T = sibling sums at EVERY step. Check at
	// the end (the invariant is maintained inductively, so a final check
	// over the fully factored storage is the strongest single assertion).
	h, _ := hplProblem(32, 4, 4)
	if err := h.Run(); err != nil {
		t.Fatal(err)
	}
	if w := h.VerifyEncoding(); w > 1e-7 {
		t.Errorf("post-factorization encoding deviation %g", w)
	}
}

func TestHPLSurvivesFailStopEveryProcess(t *testing.T) {
	for pr := 0; pr < 2; pr++ {
		for pc := 0; pc < 2; pc++ {
			h, orig := hplProblem(32, 4, 5)
			h.FailAt, h.FailPr, h.FailPc = 10, pr, pc
			if err := h.Run(); err != nil {
				t.Fatalf("proc (%d,%d): %v", pr, pc, err)
			}
			if h.Recovered == 0 {
				t.Fatalf("proc (%d,%d): nothing recovered", pr, pc)
			}
			if err := h.CheckResult(orig); err != nil {
				t.Fatalf("proc (%d,%d): %v", pr, pc, err)
			}
		}
	}
}

func TestHPLFailStopAtVariousSteps(t *testing.T) {
	for _, at := range []int{0, 1, 15, 31} {
		h, orig := hplProblem(32, 4, 6)
		h.FailAt, h.FailPr, h.FailPc = at, 1, 0
		if err := h.Run(); err != nil {
			t.Fatalf("fail at %d: %v", at, err)
		}
		if err := h.CheckResult(orig); err != nil {
			t.Fatalf("fail at %d: %v", at, err)
		}
	}
}

func TestHPLRecoveredElementCount(t *testing.T) {
	h, _ := hplProblem(32, 4, 7)
	h.FailAt, h.FailPr, h.FailPc = 5, 0, 1
	if err := h.Run(); err != nil {
		t.Fatal(err)
	}
	// A 2×2 grid: each process owns a quarter of the matrix.
	want := 32 * 32 / 4
	if h.Recovered != want {
		t.Errorf("recovered %d elements, want %d", h.Recovered, want)
	}
}

func TestHPLOpsBuckets(t *testing.T) {
	h, _ := hplProblem(32, 4, 8)
	if err := h.Run(); err != nil {
		t.Fatal(err)
	}
	if h.Ops.Compute == 0 || h.Ops.Checksum == 0 {
		t.Errorf("ops = %+v", h.Ops)
	}
}

func TestHPLSolveMatchesDirect(t *testing.T) {
	h, orig := hplProblem(24, 4, 9)
	if err := h.Run(); err != nil {
		t.Fatal(err)
	}
	x := h.Solve()
	// Residual check against the original matrix.
	r := mat.Sub(h.b.Data, mat.MulVec(orig, x))
	if mat.Norm2(r) > 1e-6*mat.Norm2(h.b.Data) {
		t.Errorf("residual too large: %g", mat.Norm2(r))
	}
}
