package abft

import (
	"fmt"
	"math"

	"coopabft/internal/mat"
)

// GEMM32 is the mixed-precision fault-tolerant matrix multiplication: data
// and arithmetic in float32 (the inference-serving precision), every
// checksum in float64, and detection bounds derived per run from operand
// variance/magnitude statistics (threshold.go) instead of a fixed epsilon.
//
// The checksum scheme is the classic two-sided encoding adapted to mixed
// precision. At construction the pristine operands are encoded in float64:
// aColSum = eᵀA and bRowSum = B·e. During the panel loop two maintained
// float64 checksums track the true product using one pristine encoded
// factor each:
//
//	rowCk[i] += Σ_p A[i][p]·bRowSum[p]   (pristine B encoding)
//	colCk[j] += Σ_p aColSum[p]·B[p][j]   (pristine A encoding)
//
// so corruption of either operand, of the float32 product path, or of
// previously written C desynchronizes at least one side. The fused float32
// kernel (mat.MulAddIntoFused32) folds the actual output's row/column sums
// (and absolute sums, the adaptive bound's magnitude input) at writeback,
// and the panel-boundary comparison uses LineBound32 — per-line, per-run
// adaptive. Detected result faults are repaired in place with a
// refold-and-reverify loop; operand faults are detection-only and abort
// with ErrUncorrectable (the caller rebuilds and restarts).
//
// GEMM32 is serving-native: it runs on plain memory with no simulator
// metering (the trace/Env machinery is float64-word oriented), which is
// exactly the deployment the mixed-precision tier targets.
type GEMM32 struct {
	M, K, N int

	A *mat.Matrix32 // M×K
	B *mat.Matrix32 // K×N
	C *mat.Matrix32 // M×N

	// Block is the k-panel width; every panel boundary verifies.
	Block int

	// OnPanel, if set, runs at the top of every k-panel — the hook fault
	// injection uses. The panel index counts from 0 to Panels()-1.
	OnPanel func(panel int)

	Corrections []Correction
	// Faults records every adaptive-threshold violation in detection order.
	Faults []PanelFault

	// Encoded checksums of the pristine operands (float64, set at init).
	aColSum []float64 // len K: eᵀA
	bRowSum []float64 // len K: B·e

	// Maintained float64 checksums of the true product.
	rowCk []float64 // len M
	colCk []float64 // len N

	// Accumulated operand statistics from the packing passes; kAcc is the
	// number of k-products accumulated so far. Together they parameterize
	// the adaptive bounds.
	aMom, bMom mat.Moments
	kAcc       int

	fs   mat.FusedSums32
	abuf []float64 // backing for per-panel ASums/BSums (len 2·Block)
}

// maxRepairRounds bounds the repair→refold→reverify loop at one panel
// boundary. Two rounds suffice for any single corruption (a huge-magnitude
// flip can absorb its line's float64 sum, so the first repair only removes
// the bulk and the refolded second round lands exactly); more than that
// means the pattern exceeds the encoding's reach.
const maxRepairRounds = 4

// NewGEMM32 builds a square n×n mixed-precision problem with deterministic
// pseudo-random operands (A from seed, B from seed+1, matching NewDGEMM's
// convention).
func NewGEMM32(n int, seed uint64) (*GEMM32, error) {
	if n < 2 {
		return nil, fmt.Errorf("%w: GEMM32 size %d too small", ErrBadSize, n)
	}
	return NewGEMM32FromMatrices(mat.Random32(n, n, seed), mat.Random32(n, n, seed+1))
}

// NewGEMM32FromMatrices builds the problem over caller-supplied operands
// (any compatible rectangular shape — tall-skinny and batched-small ML
// shapes included). The operands are encoded as-is; they must be pristine.
func NewGEMM32FromMatrices(a, b *mat.Matrix32) (*GEMM32, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("%w: GEMM32 a %dx%d × b %dx%d", ErrBadSize, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	if a.Rows < 2 || a.Cols < 2 || b.Cols < 2 {
		return nil, fmt.Errorf("%w: GEMM32 %dx%dx%d too small", ErrBadSize, a.Rows, a.Cols, b.Cols)
	}
	g := &GEMM32{
		M: a.Rows, K: a.Cols, N: b.Cols,
		A: a, B: b, C: mat.New32(a.Rows, b.Cols),
		Block: 32,
	}
	g.aColSum = make([]float64, g.K)
	g.bRowSum = make([]float64, g.K)
	for i := 0; i < g.M; i++ {
		row := a.Row(i)
		for p, v := range row {
			g.aColSum[p] += float64(v)
		}
	}
	for p := 0; p < g.K; p++ {
		s := 0.0
		for _, v := range b.Row(p) {
			s += float64(v)
		}
		g.bRowSum[p] = s
	}
	g.rowCk = make([]float64, g.M)
	g.colCk = make([]float64, g.N)
	g.fs = mat.FusedSums32{
		RowSums: make([]float64, g.M), ColSums: make([]float64, g.N),
		AbsRowSums: make([]float64, g.M), AbsColSums: make([]float64, g.N),
	}
	g.abuf = make([]float64, 2*g.Block)
	return g, nil
}

// Panels returns the number of k-panels a full run executes.
func (g *GEMM32) Panels() int { return (g.K + g.Block - 1) / g.Block }

// OperandMoments exposes the packing-pass operand statistics (valid after
// Run): callers doing their own element-level oracle comparisons feed them
// to ElementBound32.
func (g *GEMM32) OperandMoments() (a, b mat.Moments) { return g.aMom, g.bMom }

// Run computes C = A·B panel by panel with a verification at every panel
// boundary. Detected result corruption is repaired in place; operand
// corruption or an unrepairable pattern aborts with ErrUncorrectable.
func (g *GEMM32) Run() error {
	g.C.Zero()
	clear(g.rowCk)
	clear(g.colCk)
	g.aMom, g.bMom = mat.Moments{}, mat.Moments{}
	g.kAcc = 0
	g.Corrections = g.Corrections[:0]
	g.Faults = g.Faults[:0]
	if len(g.abuf) < 2*g.Block {
		g.abuf = make([]float64, 2*g.Block)
	}
	for panel := 0; panel < g.Panels(); panel++ {
		if g.OnPanel != nil {
			g.OnPanel(panel)
		}
		kk := panel * g.Block
		kMax := min(kk+g.Block, g.K)
		kb := kMax - kk
		g.maintain(kk, kMax)
		g.fs.ASums = g.abuf[:kb]
		g.fs.BSums = g.abuf[g.Block : g.Block+kb]
		mat.MulAddIntoFused32(g.C,
			g.A.View(0, kk, g.M, kb), g.B.View(kk, 0, kb, g.N), &g.fs)
		g.aMom.Merge(g.fs.AMoments)
		g.bMom.Merge(g.fs.BMoments)
		g.kAcc += kb
		if err := g.verifyPanel(panel, kk, kb); err != nil {
			return err
		}
	}
	return nil
}

// maintain advances the float64 maintained checksums by one k-panel. Each
// side pairs the live (possibly corrupted) copy of one operand with the
// pristine encoding of the other, so single-operand corruption always
// desynchronizes the opposite side's check.
func (g *GEMM32) maintain(kk, kMax int) {
	for i := 0; i < g.M; i++ {
		row := g.A.Row(i)[kk:kMax]
		s := 0.0
		for p, v := range row {
			s += float64(v) * g.bRowSum[kk+p]
		}
		g.rowCk[i] += s
	}
	for p := kk; p < kMax; p++ {
		ac := g.aColSum[p]
		brow := g.B.Row(p)
		for j, v := range brow {
			g.colCk[j] += ac * float64(v)
		}
	}
}

// verifyPanel runs the panel-boundary checks: operand checksums first
// (detection-only), then the result line checks with repair.
func (g *GEMM32) verifyPanel(panel, kk, kb int) error {
	opA := OperandBound32(g.M, g.aMom)
	opB := OperandBound32(g.N, g.bMom)
	for p := 0; p < kb; p++ {
		if delta := g.aColSum[kk+p] - g.fs.ASums[p]; math.Abs(delta) > opA {
			g.Faults = append(g.Faults, PanelFault{Panel: panel, Source: FaultOperandA, Index: kk + p, Delta: delta})
			return fmt.Errorf("%w: f32 check at panel %d: operand A column %d checksum off by %g",
				ErrUncorrectable, panel, kk+p, delta)
		}
		if delta := g.bRowSum[kk+p] - g.fs.BSums[p]; math.Abs(delta) > opB {
			g.Faults = append(g.Faults, PanelFault{Panel: panel, Source: FaultOperandB, Index: kk + p, Delta: delta})
			return fmt.Errorf("%w: f32 check at panel %d: operand B row %d checksum off by %g",
				ErrUncorrectable, panel, kk+p, delta)
		}
	}

	for round := 0; ; round++ {
		rowBad, rowDelta := g.scanLines(g.rowCk, g.fs.RowSums, g.fs.AbsRowSums, g.N)
		colBad, colDelta := g.scanLines(g.colCk, g.fs.ColSums, g.fs.AbsColSums, g.M)
		if len(rowBad) == 0 && len(colBad) == 0 {
			return nil
		}
		if round >= maxRepairRounds {
			return fmt.Errorf("%w: f32 check at panel %d: corruption persists after %d repair rounds",
				ErrUncorrectable, panel, round)
		}
		for i, r := range rowBad {
			g.Faults = append(g.Faults, PanelFault{Panel: panel, Source: FaultResultRow, Index: r, Delta: rowDelta[i]})
		}
		for i, c := range colBad {
			g.Faults = append(g.Faults, PanelFault{Panel: panel, Source: FaultResultCol, Index: c, Delta: colDelta[i]})
		}
		if err := g.locateAndFix32(panel, rowBad, rowDelta, colBad, colDelta); err != nil {
			return err
		}
		// A repair changed C, and a huge-magnitude corruption may have
		// absorbed its line's float64 sums entirely (the folded sum carries
		// no usable residue of the other elements). Refold the sums from
		// the repaired output and re-check: the loop converges in one extra
		// round for any single corruption.
		g.refold()
	}
}

// scanLines compares one maintained checksum vector against the folded sums
// under the per-line adaptive bound, returning the flagged indices with
// their deltas (maintained − folded, i.e. true − computed).
func (g *GEMM32) scanLines(maintained, folded, absSums []float64, lineLen int) (bad []int, deltas []float64) {
	for i, ck := range maintained {
		tol := LineBound32(g.kAcc, lineLen, absSums[i], g.aMom, g.bMom)
		if delta := ck - folded[i]; math.Abs(delta) > tol {
			bad = append(bad, i)
			deltas = append(deltas, delta)
		}
	}
	return bad, deltas
}

// locateAndFix32 maps line mismatches to corrupted elements and repairs
// every correctable pattern — the same case analysis as the float64
// locateAndFix, with the magnitude pairing tolerance derived from the
// adaptive bounds instead of a fixed Tol.
func (g *GEMM32) locateAndFix32(panel int, rowBad []int, rowDelta []float64, colBad []int, colDelta []float64) error {
	switch {
	case len(rowBad) == 1 && len(colBad) >= 1:
		r := rowBad[0]
		for i, c := range colBad {
			g.applyFix(r, c, colDelta[i])
		}
		return nil
	case len(colBad) == 1 && len(rowBad) >= 1:
		c := colBad[0]
		for i, r := range rowBad {
			g.applyFix(r, c, rowDelta[i])
		}
		return nil
	case len(rowBad) == len(colBad):
		// Pair row and column mismatches by magnitude; distinct rows and
		// columns each carry a single error.
		pairTol := 10 * (LineBound32(g.kAcc, g.N, g.fs.AbsRowSums[rowBad[0]], g.aMom, g.bMom) +
			LineBound32(g.kAcc, g.M, g.fs.AbsColSums[colBad[0]], g.aMom, g.bMom))
		used := make([]bool, len(colBad))
		for ri, r := range rowBad {
			best, bestDiff := -1, math.Inf(1)
			for ci := range colBad {
				if used[ci] {
					continue
				}
				if diff := math.Abs(math.Abs(rowDelta[ri]) - math.Abs(colDelta[ci])); diff < bestDiff {
					best, bestDiff = ci, diff
				}
			}
			if best < 0 || (bestDiff > pairTol && bestDiff > 1e-6*math.Abs(rowDelta[ri])) {
				return fmt.Errorf("%w: f32 check at panel %d: unmatchable row/column deltas", ErrUncorrectable, panel)
			}
			used[best] = true
			g.applyFix(r, colBad[best], rowDelta[ri])
		}
		return nil
	default:
		return fmt.Errorf("%w: f32 check at panel %d: %d corrupted rows, %d corrupted columns",
			ErrUncorrectable, panel, len(rowBad), len(colBad))
	}
}

// applyFix repairs C[r][c] by the float64 line delta (true − computed),
// rounding the repaired value back to float32.
func (g *GEMM32) applyFix(r, c int, delta float64) {
	old := g.C.At(r, c)
	want := float64(old) + delta
	g.C.Set(r, c, float32(want))
	g.Corrections = append(g.Corrections, Correction{Structure: "C32", I: r, J: c, Delta: want - float64(old)})
}

// refold recomputes the folded output sums from the current (repaired) C —
// a serial float64 sweep used only on the repair path.
func (g *GEMM32) refold() {
	clear(g.fs.RowSums)
	clear(g.fs.ColSums)
	clear(g.fs.AbsRowSums)
	clear(g.fs.AbsColSums)
	for i := 0; i < g.M; i++ {
		row := g.C.Row(i)
		rs, ars := 0.0, 0.0
		for j, v := range row {
			f := float64(v)
			rs += f
			g.fs.ColSums[j] += f
			if f < 0 {
				f = -f
			}
			ars += f
			g.fs.AbsColSums[j] += f
		}
		g.fs.RowSums[i] = rs
		g.fs.AbsRowSums[i] = ars
	}
}

// CheckResult verifies the final product against a float64 reference under
// the per-element adaptive bound (test/oracle helper; O(M·K·N)).
func (g *GEMM32) CheckResult() error {
	ref := mat.New(g.M, g.N)
	mat.MulAddInto(ref, g.A.To64(), g.B.To64())
	for i := 0; i < g.M; i++ {
		row := g.C.Row(i)
		refRow := ref.Row(i)
		for j, v := range row {
			if math.Abs(float64(v)-refRow[j]) > ElementBound32(g.K, refRow[j], g.aMom, g.bMom) {
				return fmt.Errorf("abft: GEMM32 result differs from reference at (%d,%d): got %g want %g",
					i, j, v, refRow[j])
			}
		}
	}
	return nil
}
