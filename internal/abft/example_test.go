package abft_test

import (
	"fmt"

	"coopabft/internal/abft"
)

// The smallest possible ABFT workflow: multiply, corrupt, verify, repair.
func ExampleDGEMM() {
	d, _ := abft.NewDGEMM(abft.Standalone(), 32, 1)
	if err := d.Run(); err != nil {
		panic(err)
	}
	want := d.Cf.At(3, 4)
	d.Cf.Set(3, 4, want+100) // corruption strikes the result matrix

	if err := d.VerifyFull(); err != nil {
		panic(err)
	}
	diff := d.Cf.At(3, 4) - want
	fmt.Printf("repaired: %v\n", diff < 1e-9 && diff > -1e-9)
	fmt.Printf("corrections: %d\n", len(d.Corrections))
	// Output:
	// repaired: true
	// corrections: 1
}

// FT-CG heals mid-solve corruption through its algebraic invariants.
func ExampleCG() {
	cg := abft.NewCG(abft.Standalone(), 16, 16, 2)
	cg.CheckPeriod = 4
	cg.OnIteration = func(iter int) {
		if iter == 8 {
			cg.X()[50] += 1e6
		}
	}
	out, err := cg.Run()
	if err != nil {
		panic(err)
	}
	fmt.Printf("converged: %v\n", out.Converged)
	fmt.Printf("recovered: %v\n", cg.Recoveries > 0)
	fmt.Printf("true residual small: %v\n", cg.TrueResidual() < 1e-6)
	// Output:
	// converged: true
	// recovered: true
	// true residual small: true
}

// FT-HPL survives a process dying in the middle of the factorization.
func ExampleHPL() {
	h, _ := abft.NewHPL(abft.Standalone(), 32, 4, 3)
	h.FailAt, h.FailPr, h.FailPc = 10, 1, 0 // kill process (1,0) at step 10
	if err := h.Run(); err != nil {
		panic(err)
	}
	fmt.Printf("elements rebuilt: %d\n", h.Recovered)
	// Output:
	// elements rebuilt: 256
}
