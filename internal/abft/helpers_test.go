package abft

import "testing"

// mustDGEMM builds a DGEMM for tests where the size is known-valid.
func mustDGEMM(t testing.TB, env Env, n int, seed uint64) *DGEMM {
	t.Helper()
	d, err := NewDGEMM(env, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// mustHPL builds an HPL for tests where the size is known-valid.
func mustHPL(t testing.TB, env Env, n, nb int, seed uint64) *HPL {
	t.Helper()
	h, err := NewHPL(env, n, nb, seed)
	if err != nil {
		t.Fatal(err)
	}
	return h
}
