package abft

import (
	"fmt"
	"math"

	"coopabft/internal/mat"
)

// QR is a fault-tolerant Householder QR factorization targeting
// fail-continue errors, after the ABFT dense-factorization framework of Du
// et al. (the paper's reference [14]). The working matrix carries two
// appended checksum columns (plain and weighted row sums); Householder
// reflections are applied from the left, and left-multiplications commute
// with right-appended columns — H·[A | A·e | A·w] = [HA | (HA)·e | (HA)·w]
// — so the encoding is maintained by the factorization itself, with no
// extra bookkeeping for the R part. The reflector store V gets incremental
// dual row checksums as its columns are written. Verification re-sums rows
// and locates a corrupted column as δ₂/δ − 1, exactly as in FT-LU.
type QR struct {
	N int

	// Af is n×(n+2): the matrix transforming into R, plus checksum columns.
	Af Mat
	// Vf is n×(n+2): the Householder vectors (column k = reflector k) plus
	// incremental dual row checksums.
	Vf Mat
	// beta holds the reflector coefficients; they are derived data,
	// recomputable from V, and are left unprotected.
	beta Vec
	b    Vec

	CheckPeriod int
	Mode        VerifyMode
	Tol         float64

	Ops         OpCounters
	Corrections []Correction

	env Env
	k   int
}

// NewQR builds a random well-conditioned system of size n.
func NewQR(env Env, n int, seed uint64) *QR {
	q := &QR{
		N:           n,
		CheckPeriod: 1,
		Tol:         1e-7 * float64(n) * float64(n),
		env:         env,
	}
	q.Af = env.NewMat("qr.Af", n, n+2, true)
	q.Vf = env.NewMat("qr.Vf", n, n+2, true)
	q.beta = env.NewVec("qr.beta", n, false)
	q.b = env.NewVec("qr.b", n, false)

	src := mat.DiagonallyDominant(n, seed)
	for i := 0; i < n; i++ {
		row := q.Af.Row(i)
		copy(row[:n], src.Row(i))
		s, s2 := 0.0, 0.0
		for j := 0; j < n; j++ {
			s += row[j]
			s2 += float64(j+1) * row[j]
		}
		row[n] = s
		row[n+1] = s2
		q.Af.TouchRow(i, 0, n+2, true)
		q.ops(&q.Ops.Checksum, 3*n)
	}
	xTrue := mat.RandomVec(n, seed+9)
	copy(q.b.Data, mat.MulVec(src, xTrue))
	return q
}

func (q *QR) ops(bucket *uint64, n int) {
	*bucket += uint64(n)
	q.env.Mem.Ops(n)
}

// Run factors the matrix with per-step verification.
func (q *QR) Run() error {
	n := q.N
	for k := 0; k < n; k++ {
		q.k = k
		if q.CheckPeriod > 0 && k%q.CheckPeriod == 0 {
			if err := q.verifyStep(k); err != nil {
				return err
			}
		}
		if err := q.householder(k); err != nil {
			return err
		}
	}
	q.k = n
	if q.CheckPeriod > 0 && q.Mode == FullVerify {
		if err := q.VerifyR(); err != nil {
			return err
		}
		return q.VerifyV(n)
	} else if q.Mode == NotifiedVerify {
		return q.verifyNotified()
	}
	return nil
}

// householder performs reflection k over the extended matrix, mirroring
// mat.HouseholderStep with instrumentation and V-checksum maintenance.
func (q *QR) householder(k int) error {
	n := q.N
	normx := 0.0
	for i := k; i < n; i++ {
		v := q.Af.At(i, k)
		normx += v * v
	}
	q.Af.TouchCol(k, k, n-k, false)
	q.ops(&q.Ops.Compute, 2*(n-k))
	normx = math.Sqrt(normx)
	if normx == 0 {
		return mat.ErrSingular
	}
	alpha := -normx
	if q.Af.At(k, k) < 0 {
		alpha = normx
	}

	// Build reflector column k of Vf and fold it into V's row checksums.
	vtv := 0.0
	for i := k; i < n; i++ {
		var vi float64
		if i == k {
			vi = q.Af.At(k, k) - alpha
		} else {
			vi = q.Af.At(i, k)
		}
		q.Vf.Set(i, k, vi)
		row := q.Vf.Row(i)
		row[n] += vi
		row[n+1] += float64(k+1) * vi
		vtv += vi * vi
		q.Vf.TouchRow(i, k, 1, true)
		q.Vf.TouchRow(i, n, 2, true)
	}
	q.ops(&q.Ops.Compute, 2*(n-k))
	q.ops(&q.Ops.Checksum, 3*(n-k))
	if vtv == 0 {
		return mat.ErrSingular
	}
	q.beta.Data[k] = 2 / vtv
	q.beta.Touch(k, 1, true)

	// Apply H to columns [k, n+2): the checksum columns ride along, which
	// is exactly what keeps the encoding valid.
	for j := k; j < n+2; j++ {
		s := 0.0
		for i := k; i < n; i++ {
			s += q.Vf.At(i, k) * q.Af.At(i, j)
		}
		s *= q.beta.Data[k]
		for i := k; i < n; i++ {
			q.Af.Add(i, j, -s*q.Vf.At(i, k))
		}
		q.Af.TouchCol(j, k, n-k, true)
		q.Vf.TouchCol(k, k, n-k, false)
		q.ops(&q.Ops.Compute, 4*(n-k))
	}
	// Exact zeros below the diagonal of column k; the checksum columns
	// already reflect the transformed values, so adjust them for the
	// numerical cleanup delta.
	for i := k + 1; i < n; i++ {
		resid := q.Af.At(i, k)
		if resid != 0 {
			row := q.Af.Row(i)
			row[n] -= resid
			row[n+1] -= float64(k+1) * resid
			q.Af.Set(i, k, 0)
			q.Af.TouchRow(i, n, 2, true)
			q.ops(&q.Ops.Checksum, 4)
		}
	}
	// Replace the transformed (k,k) value with the exact alpha (they agree
	// up to roundoff) and fold the residual into the checksums so they
	// keep tracking storage bit-exactly.
	old := q.Af.At(k, k)
	q.Af.Set(k, k, alpha)
	rowK := q.Af.Row(k)
	rowK[n] += alpha - old
	rowK[n+1] += float64(k+1) * (alpha - old)
	q.Af.TouchRow(k, n, 2, true)
	q.ops(&q.Ops.Checksum, 4)
	return nil
}

func (q *QR) verifyStep(k int) error {
	if q.Mode == NotifiedVerify {
		return q.verifyNotified()
	}
	return q.verifyRows(q.Af, "qr.Af", k)
}

// VerifyR re-checks every row of the (partially or fully) factored matrix.
func (q *QR) VerifyR() error { return q.verifyRows(q.Af, "qr.Af", 0) }

// VerifyV re-checks the reflector store's incremental checksums for rows
// [0, upto).
func (q *QR) VerifyV(upto int) error {
	n := q.N
	for i := 0; i < upto; i++ {
		row := q.Vf.Row(i)
		s, s2 := 0.0, 0.0
		for j := 0; j < n; j++ {
			s += row[j]
			s2 += float64(j+1) * row[j]
		}
		q.Vf.TouchRow(i, 0, n+2, false)
		q.ops(&q.Ops.Verify, 3*n)
		if err := q.repairRow(q.Vf, "qr.Vf", i, row[n]-s, row[n+1]-s2); err != nil {
			return err
		}
	}
	return nil
}

// verifyRows re-sums rows [lo, n) of an extended matrix.
func (q *QR) verifyRows(m Mat, name string, lo int) error {
	n := q.N
	for i := lo; i < n; i++ {
		row := m.Row(i)
		s, s2 := 0.0, 0.0
		for j := 0; j < n; j++ {
			s += row[j]
			s2 += float64(j+1) * row[j]
		}
		m.TouchRow(i, 0, n+2, false)
		q.ops(&q.Ops.Verify, 3*n)
		if err := q.repairRow(m, name, i, row[n]-s, row[n+1]-s2); err != nil {
			return err
		}
	}
	return nil
}

// repairRow interprets a (δ, δ₂) mismatch on row i of an extended matrix.
func (q *QR) repairRow(m Mat, name string, i int, delta, delta2 float64) error {
	n := q.N
	tol := q.Tol
	if math.Abs(delta) <= tol && math.Abs(delta2) <= tol {
		return nil
	}
	if math.Abs(delta) <= tol {
		m.Add(i, n+1, -delta2)
		m.TouchElem(i, n+1, true)
		q.Corrections = append(q.Corrections, Correction{Structure: name + ".cs2", I: i, Delta: -delta2})
		q.env.corrected(m.Addr(i, n+1))
		return nil
	}
	col := delta2/delta - 1
	cj := int(math.Round(col))
	if math.Abs(col-float64(cj)) > 0.25 || cj < 0 || cj >= n {
		if math.Abs(delta2) <= tol {
			m.Add(i, n, -delta)
			m.TouchElem(i, n, true)
			q.Corrections = append(q.Corrections, Correction{Structure: name + ".cs", I: i, Delta: -delta})
			q.env.corrected(m.Addr(i, n))
			return nil
		}
		return fmt.Errorf("%w: %s row %d deltas (%g, %g) locate no element",
			ErrUncorrectable, name, i, delta, delta2)
	}
	m.Add(i, cj, delta)
	m.TouchElem(i, cj, true)
	q.ops(&q.Ops.Verify, 2)
	// Post-repair re-verification guards against multi-error aliasing (see
	// the FT-LU analogue).
	row := m.Row(i)
	s, s2 := 0.0, 0.0
	for j := 0; j < n; j++ {
		s += row[j]
		s2 += float64(j+1) * row[j]
	}
	q.ops(&q.Ops.Verify, 3*n)
	if math.Abs(row[n]-s) > tol || math.Abs(row[n+1]-s2) > tol {
		m.Add(i, cj, -delta)
		return fmt.Errorf("%w: %s row %d has multiple corrupted elements", ErrUncorrectable, name, i)
	}
	q.Corrections = append(q.Corrections, Correction{Structure: name, I: i, J: cj, Delta: delta})
	q.env.corrected(m.Addr(i, cj))
	return nil
}

// verifyNotified re-sums exactly the rows the OS reported corrupted.
func (q *QR) verifyNotified() error {
	if q.env.Notify == nil {
		return nil
	}
	type key struct {
		inV bool
		row int
	}
	seen := map[key]bool{}
	for _, note := range q.env.Notify() {
		for off := uint64(0); off < 64; off += 8 {
			addr := note.VirtAddr + off
			if i, _, ok := q.Af.ElemAt(addr); ok && !seen[key{false, i}] {
				seen[key{false, i}] = true
				if err := q.verifyOne(q.Af, "qr.Af", i); err != nil {
					return err
				}
			} else if i, _, ok := q.Vf.ElemAt(addr); ok && !seen[key{true, i}] {
				seen[key{true, i}] = true
				if err := q.verifyOne(q.Vf, "qr.Vf", i); err != nil {
					return err
				}
			}
		}
		// Examined: above-tolerance damage was repaired, the rest is
		// roundoff-level; resolve the hardware fault state for the line.
		q.env.corrected(note.VirtAddr)
	}
	return nil
}

func (q *QR) verifyOne(m Mat, name string, i int) error {
	n := q.N
	row := m.Row(i)
	s, s2 := 0.0, 0.0
	for j := 0; j < n; j++ {
		s += row[j]
		s2 += float64(j+1) * row[j]
	}
	m.TouchRow(i, 0, n+2, false)
	q.ops(&q.Ops.Verify, 3*n)
	return q.repairRow(m, name, i, row[n]-s, row[n+1]-s2)
}

// VerifyNotified consumes pending OS corruption reports (public entry).
func (q *QR) VerifyNotified() error { return q.verifyNotified() }

// Solve returns x with A·x = b via R·x = Qᵀ·b.
func (q *QR) Solve() []float64 {
	n := q.N
	y := make([]float64, n)
	copy(y, q.b.Data)
	for k := 0; k < n; k++ {
		s := 0.0
		for i := k; i < n; i++ {
			s += q.Vf.At(i, k) * y[i]
		}
		s *= q.beta.Data[k]
		for i := k; i < n; i++ {
			y[i] -= s * q.Vf.At(i, k)
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= q.Af.At(i, j) * x[j]
		}
		x[i] = s / q.Af.At(i, i)
	}
	q.ops(&q.Ops.Compute, 3*n*n)
	return x
}

// CheckResult compares the solve against a reference LU of the original.
func (q *QR) CheckResult(orig *mat.Matrix) error {
	ref := orig.Clone()
	piv, err := mat.LU(ref, nil)
	if err != nil {
		return err
	}
	want := mat.SolveLU(ref, piv, q.b.Data)
	got := q.Solve()
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-6 {
			return fmt.Errorf("abft: QR solution diverges at %d: %g vs %g", i, got[i], want[i])
		}
	}
	return nil
}
