package abft

import (
	"fmt"
	"math"

	"coopabft/internal/mat"
)

// CG is the fault-tolerant preconditioned conjugate gradient of [8] (§2.1,
// Figure 1), with Jacobi preconditioner M = diag(A) and a sparse 5-point
// Poisson operator — CG is the paper's memory-intensive workload. Unlike
// the checksum kernels it detects errors through the algorithm's invariants
// (Equations 1): the orthogonality pᵀ·r⁽ⁱ⁺¹⁾ = 0 and the residual relation
// r + A·x − b = 0, examined every few iterations. Recovery recomputes
// r = b − A·x and restarts the search direction, which restores convergence
// from any fail-continue corruption of r, p, q, x or b; with hardware
// notification, individual elements are rebuilt in O(row) instead.
type CG struct {
	A     *mat.CSR
	aVal  Vec // CSR values, not ABFT-protected (the operator is read-only input)
	aCol  Vec // column indices (metered as part of A's traffic)
	r     Vec // ABFT-protected vectors (relaxed-ECC candidates, §2.1)
	p     Vec
	q     Vec
	x     Vec
	b     Vec
	z     Vec // preconditioner state: errors detectable via the invariants
	mdiag Vec

	CheckPeriod int
	Mode        VerifyMode
	// InvTol is the relative invariant tolerance used for error detection.
	InvTol float64
	// RelTol/MaxIter are the solver's convergence controls.
	RelTol  float64
	MaxIter int

	// OnIteration, if set, runs at the top of every iteration — the hook
	// fault-injection campaigns use.
	OnIteration func(iter int)

	Ops         OpCounters
	Corrections []Correction
	Recoveries  int // invariant-triggered direction restarts

	env   Env
	rho   float64
	bnorm float64
	iter  int
}

// CGOutcome reports a finished solve.
type CGOutcome struct {
	Converged  bool
	Iterations int
	Residual   float64
}

// NewCG builds a Poisson problem on an nx×ny grid with a known solution.
func NewCG(env Env, nx, ny int, seed uint64) *CG {
	a := mat.Poisson2D(nx, ny)
	n := a.N
	c := &CG{
		A:           a,
		CheckPeriod: 8,
		InvTol:      1e-6,
		RelTol:      1e-10,
		MaxIter:     20 * (nx + ny),
		env:         env,
	}
	c.aVal = env.NewVec("cg.A.val", a.NNZ(), false)
	copy(c.aVal.Data, a.Val)
	a.Val = c.aVal.Data // metered storage is the live storage
	c.aCol = env.NewVec("cg.A.col", (a.NNZ()+1)/2, false)
	c.r = env.NewVec("cg.r", n, true)
	c.p = env.NewVec("cg.p", n, true)
	c.q = env.NewVec("cg.q", n, true)
	c.x = env.NewVec("cg.x", n, true)
	c.b = env.NewVec("cg.b", n, true)
	c.z = env.NewVec("cg.z", n, true)
	c.mdiag = env.NewVec("cg.M", n, true)

	xTrue := mat.RandomVec(n, seed)
	a.MulVecInto(c.b.Data, xTrue)
	copy(c.mdiag.Data, a.Diag())
	return c
}

// N returns the unknown count.
func (c *CG) N() int { return c.A.N }

// X returns the current solution estimate.
func (c *CG) X() []float64 { return c.x.Data }

// R returns the current residual vector (exposed for fault injection).
func (c *CG) R() []float64 { return c.r.Data }

// P returns the current search direction (exposed for fault injection).
func (c *CG) P() []float64 { return c.p.Data }

// VecFor returns the instrumented vector wrapper by name ("r", "p", "q",
// "x", "b") for address computations in injection campaigns.
func (c *CG) VecFor(name string) (Vec, bool) {
	switch name {
	case "r":
		return c.r, true
	case "p":
		return c.p, true
	case "q":
		return c.q, true
	case "x":
		return c.x, true
	case "b":
		return c.b, true
	case "z":
		return c.z, true
	default:
		return Vec{}, false
	}
}

func (c *CG) ops(bucket *uint64, n int) {
	*bucket += uint64(n)
	c.env.Mem.Ops(n)
}

// matvec computes dst = A·src with instrumentation.
func (c *CG) matvec(dst Vec, src Vec, bucket *uint64) {
	a := c.A
	for i := 0; i < a.N; i++ {
		lo, hi := a.RowPtr[i], a.RowPtr[i+1]
		s := 0.0
		for k := lo; k < hi; k++ {
			s += a.Val[k] * src.Data[a.Col[k]]
		}
		dst.Data[i] = s
		c.aVal.Touch(int(lo), int(hi-lo), false)
		c.aCol.Touch(int(lo)/2, int(hi-lo+1)/2, false)
		for k := lo; k < hi; k++ {
			src.Touch(int(a.Col[k]), 1, false)
		}
		dst.Touch(i, 1, true)
	}
	c.ops(bucket, 2*a.NNZ())
}

// dot computes xᵀ·y with instrumentation.
func (c *CG) dot(xv, yv Vec, bucket *uint64) float64 {
	s := 0.0
	for i, v := range xv.Data {
		s += v * yv.Data[i]
	}
	xv.Touch(0, len(xv.Data), false)
	yv.Touch(0, len(yv.Data), false)
	c.ops(bucket, 2*len(xv.Data))
	return s
}

// Run executes the solver to convergence or MaxIter.
func (c *CG) Run() (CGOutcome, error) { return c.RunFrom(0) }

// RunFrom resumes the solve at global iteration step, rebuilding the
// derived iteration state (r, z, p, ρ) from the current x and b — which on
// a fresh start are x⁰ = 0 and the assembled right-hand side, and after a
// checkpoint restore (possibly on a different node) are the restored
// iterate. The rebuild is the same algebra as Recover: CG converges to the
// true solution from any x, so only x and b need to survive a migration.
func (c *CG) RunFrom(step int) (CGOutcome, error) {
	if step < 0 || step > c.MaxIter {
		return CGOutcome{}, fmt.Errorf("abft: CG resume step %d outside [0, %d]", step, c.MaxIter)
	}
	n := c.N()
	// r = b − A·x, z = M⁻¹r, p = z.
	c.matvec(c.q, c.x, &c.Ops.Compute)
	for i := 0; i < n; i++ {
		c.r.Data[i] = c.b.Data[i] - c.q.Data[i]
	}
	c.b.Touch(0, n, false)
	c.q.Touch(0, n, false)
	c.r.Touch(0, n, true)
	c.ops(&c.Ops.Compute, n)
	c.applyPrecond()
	copy(c.p.Data, c.z.Data)
	c.p.Touch(0, n, true)
	c.rho = c.dot(c.r, c.z, &c.Ops.Compute)
	c.bnorm = math.Sqrt(c.dot(c.b, c.b, &c.Ops.Compute))
	if c.bnorm == 0 {
		c.bnorm = 1
	}

	for c.iter = step; c.iter < c.MaxIter; c.iter++ {
		if c.OnIteration != nil {
			c.OnIteration(c.iter)
		}
		c.matvec(c.q, c.p, &c.Ops.Compute)
		pq := c.dot(c.p, c.q, &c.Ops.Compute)
		if pq == 0 {
			return CGOutcome{}, fmt.Errorf("abft: CG breakdown (pᵀAp = 0) at iteration %d", c.iter)
		}
		alpha := c.rho / pq
		for i := 0; i < n; i++ {
			c.x.Data[i] += alpha * c.p.Data[i]
			c.r.Data[i] -= alpha * c.q.Data[i]
		}
		c.x.Touch(0, n, true)
		c.p.Touch(0, n, false)
		c.r.Touch(0, n, true)
		c.q.Touch(0, n, false)
		c.ops(&c.Ops.Compute, 4*n)

		if c.CheckPeriod > 0 && (c.iter+1)%c.CheckPeriod == 0 {
			recovered, err := c.verify()
			if err != nil {
				return CGOutcome{}, err
			}
			if recovered {
				// The state was rebuilt from x (p = z, ρ = rᵀz): re-enter
				// the loop exactly as a restarted CG would.
				continue
			}
		}

		rnorm := math.Sqrt(c.dot(c.r, c.r, &c.Ops.Compute))
		if rnorm <= c.RelTol*c.bnorm {
			return CGOutcome{Converged: true, Iterations: c.iter + 1, Residual: rnorm}, nil
		}

		c.applyPrecond()
		rhoNext := c.dot(c.r, c.z, &c.Ops.Compute)
		beta := rhoNext / c.rho
		c.rho = rhoNext
		for i := 0; i < n; i++ {
			c.p.Data[i] = c.z.Data[i] + beta*c.p.Data[i]
		}
		c.z.Touch(0, n, false)
		c.p.Touch(0, n, true)
		c.ops(&c.Ops.Compute, 2*n)
	}
	return CGOutcome{Converged: false, Iterations: c.MaxIter,
		Residual: math.Sqrt(c.dot(c.r, c.r, &c.Ops.Compute))}, nil
}

func (c *CG) applyPrecond() {
	n := c.N()
	for i := 0; i < n; i++ {
		c.z.Data[i] = c.r.Data[i] / c.mdiag.Data[i]
	}
	c.r.Touch(0, n, false)
	c.mdiag.Touch(0, n, false)
	c.z.Touch(0, n, true)
	c.ops(&c.Ops.Compute, n)
}

// verify runs the Mode's error detection; it reports whether a recovery
// rebuilt the iteration state.
func (c *CG) verify() (recovered bool, err error) {
	if c.Mode == NotifiedVerify {
		return c.verifyNotified()
	}
	return c.VerifyInvariants()
}

// VerifyInvariants examines Equations (1): residual consistency and
// direction/residual orthogonality. A violation triggers Recover.
func (c *CG) VerifyInvariants() (bool, error) {
	n := c.N()
	// Orthogonality: pᵀ·r must vanish right after the r update.
	ortho := c.dot(c.p, c.r, &c.Ops.Verify)
	pn := math.Sqrt(c.dot(c.p, c.p, &c.Ops.Verify))
	rn := math.Sqrt(c.dot(c.r, c.r, &c.Ops.Verify))
	scale := pn * rn
	if scale == 0 {
		scale = 1
	}
	orthoBad := math.Abs(ortho) > c.InvTol*scale

	// Residual relation: r = b − A·x.
	c.matvec(c.z, c.x, &c.Ops.Verify) // z used as scratch; rebuilt below
	worst := 0.0
	for i := 0; i < n; i++ {
		d := math.Abs(c.b.Data[i] - c.z.Data[i] - c.r.Data[i])
		if d > worst {
			worst = d
		}
	}
	c.b.Touch(0, n, false)
	c.r.Touch(0, n, false)
	c.ops(&c.Ops.Verify, 2*n)
	residBad := worst > c.InvTol*c.bnorm

	if orthoBad || residBad {
		c.Recover()
		return true, nil
	}
	// z was clobbered as scratch; the loop tail recomputes it before use.
	return false, nil
}

// Recover rebuilds the iteration state from x: r = b − A·x, z = M⁻¹r,
// p = z, ρ = rᵀz. CG converges to the true solution from any x, so this
// heals corruption in any of the protected vectors without checkpointing.
func (c *CG) Recover() {
	n := c.N()
	c.matvec(c.q, c.x, &c.Ops.Verify)
	for i := 0; i < n; i++ {
		c.r.Data[i] = c.b.Data[i] - c.q.Data[i]
	}
	c.b.Touch(0, n, false)
	c.q.Touch(0, n, false)
	c.r.Touch(0, n, true)
	c.ops(&c.Ops.Verify, n)
	c.applyPrecond()
	copy(c.p.Data, c.z.Data)
	c.p.Touch(0, n, true)
	c.rho = c.dot(c.r, c.z, &c.Ops.Verify)
	c.Recoveries++
}

// VerifyNotified consumes pending OS corruption reports and repairs the
// affected elements; it reports whether a direction restart was needed.
func (c *CG) VerifyNotified() (bool, error) { return c.verifyNotified() }

// verifyNotified repairs exactly the elements the OS reported, each at
// O(row) cost — "much smaller than the worst case ABFT overhead" (§3.2.2).
func (c *CG) verifyNotified() (bool, error) {
	if c.env.Notify == nil {
		return false, nil
	}
	restartDirection := false
	for _, note := range c.env.Notify() {
		var xLine []int // x elements couple through A; repair them jointly
		for off := uint64(0); off < 64; off += 8 {
			addr := note.VirtAddr + off
			if k, ok := c.r.ElemAt(addr); ok {
				c.fixElem(c.r, "cg.r", k, c.b.Data[k]-c.rowDot(k, c.x))
			} else if k, ok := c.q.ElemAt(addr); ok {
				c.fixElem(c.q, "cg.q", k, c.rowDot(k, c.p))
			} else if k, ok := c.b.ElemAt(addr); ok {
				c.fixElem(c.b, "cg.b", k, c.r.Data[k]+c.rowDot(k, c.x))
			} else if k, ok := c.x.ElemAt(addr); ok {
				xLine = append(xLine, k)
			} else if k, ok := c.z.ElemAt(addr); ok {
				c.fixElem(c.z, "cg.z", k, c.r.Data[k]/c.mdiag.Data[k])
			} else if k, ok := c.mdiag.ElemAt(addr); ok {
				c.fixElem(c.mdiag, "cg.M", k, diagOf(c.A, k))
			} else if _, ok := c.p.ElemAt(addr); ok {
				restartDirection = true
			}
		}
		if len(xLine) > 0 {
			if err := c.fixXJoint(xLine); err != nil {
				return false, err
			}
		}
	}
	if restartDirection {
		// p carries history that cannot be rebuilt element-wise; restart
		// the direction from the (intact) residual.
		c.Recover()
		return true, nil
	}
	return false, nil
}

// rowDot is an instrumented A-row inner product.
func (c *CG) rowDot(i int, v Vec) float64 {
	a := c.A
	lo, hi := a.RowPtr[i], a.RowPtr[i+1]
	s := 0.0
	for k := lo; k < hi; k++ {
		s += a.Val[k] * v.Data[a.Col[k]]
		v.Touch(int(a.Col[k]), 1, false)
	}
	c.aVal.Touch(int(lo), int(hi-lo), false)
	c.ops(&c.Ops.Verify, 2*int(hi-lo))
	return s
}

// fixXJoint rebuilds the x elements of one corrupted line from the residual
// relation r = b − A·x. Because the operator couples neighboring unknowns,
// the elements are solved for jointly: using the rows k ∈ K,
// Σ_{j∈K} A[k][j]·x[j] = b[k] − r[k] − Σ_{j∉K} A[k][j]·x[j].
func (c *CG) fixXJoint(ks []int) error {
	a := c.A
	m := len(ks)
	pos := make(map[int]int, m)
	for i, k := range ks {
		pos[k] = i
	}
	sys := mat.New(m, m)
	rhs := make([]float64, m)
	for i, k := range ks {
		lo, hi := a.RowPtr[k], a.RowPtr[k+1]
		rhs[i] = c.b.Data[k] - c.r.Data[k]
		for t := lo; t < hi; t++ {
			j := int(a.Col[t])
			if jp, in := pos[j]; in {
				sys.Set(i, jp, a.Val[t])
			} else {
				rhs[i] -= a.Val[t] * c.x.Data[j]
				c.x.Touch(j, 1, false)
			}
		}
		c.aVal.Touch(int(lo), int(hi-lo), false)
		c.ops(&c.Ops.Verify, 2*int(hi-lo))
	}
	piv, err := mat.LU(sys, nil)
	if err != nil {
		return fmt.Errorf("%w: corrupted x line yields a singular repair system", ErrUncorrectable)
	}
	sol := mat.SolveLU(sys, piv, rhs)
	c.ops(&c.Ops.Verify, 2*m*m*m/3)
	for i, k := range ks {
		c.fixElem(c.x, "cg.x", k, sol[i])
	}
	return nil
}

func (c *CG) fixElem(v Vec, name string, k int, want float64) {
	old := v.Data[k]
	v.Data[k] = want
	v.Touch(k, 1, true)
	c.Corrections = append(c.Corrections, Correction{Structure: name, I: k, Delta: want - old})
	c.env.corrected(v.Addr(k))
}

func diagOf(a *mat.CSR, k int) float64 {
	for t := a.RowPtr[k]; t < a.RowPtr[k+1]; t++ {
		if int(a.Col[t]) == k {
			return a.Val[t]
		}
	}
	return 0
}

// TrueResidual computes ‖b − A·x‖₂ directly (test helper).
func (c *CG) TrueResidual() float64 {
	tmp := make([]float64, c.N())
	c.A.MulVecInto(tmp, c.x.Data)
	for i := range tmp {
		tmp[i] = c.b.Data[i] - tmp[i]
	}
	return mat.Norm2(tmp)
}
