package abft

import (
	"fmt"
	"math"

	"coopabft/internal/mat"
)

// LU is a fault-tolerant LU factorization with partial pivoting targeting
// fail-continue errors, after Davies & Chen's online soft-error correction
// for LU (the paper's reference [9]) — the natural fifth kernel alongside
// §2.1's four. The matrix is extended with two checksum columns, the plain
// row sums A·e and the weighted row sums A·w (w_j = j+1):
//
//	Af = [ A | A·e | A·w ]
//
// Row operations — pivoting swaps and eliminations — act on whole extended
// rows, so both relations survive every step once the in-place multiplier
// storage is accounted for. At each step the trailing rows are examined:
// a mismatch (δ, δ₂) in row i locates the corrupted column as δ₂/δ − 1 and
// the element is repaired in place, before the panel consumes it.
type LU struct {
	N int

	// Af is the n×(n+2) extended matrix, ABFT-protected; columns n and n+1
	// hold the plain and weighted row checksums.
	Af Mat
	// W is the unprotected pivot-row broadcast buffer (one fresh row per
	// step, as in FT-HPL).
	W Mat
	b Vec

	piv []int

	CheckPeriod int
	Mode        VerifyMode
	Tol         float64

	Ops         OpCounters
	Corrections []Correction

	env Env
	k   int // current elimination step
}

// NewLU builds a random diagonally dominant system of size n.
func NewLU(env Env, n int, seed uint64) *LU {
	l := &LU{
		N:           n,
		CheckPeriod: 1,
		Tol:         1e-7 * float64(n) * float64(n),
		env:         env,
	}
	l.Af = env.NewMat("lu.Af", n, n+2, true)
	l.W = env.NewMat("lu.W", n, n+2, false)
	l.b = env.NewVec("lu.b", n, false)

	src := mat.DiagonallyDominant(n, seed)
	for i := 0; i < n; i++ {
		copy(l.Af.Row(i)[:n], src.Row(i))
	}
	xTrue := mat.RandomVec(n, seed+3)
	copy(l.b.Data, mat.MulVec(src, xTrue))
	l.encode()
	return l
}

// encode establishes both checksum columns.
func (l *LU) encode() {
	n := l.N
	for i := 0; i < n; i++ {
		row := l.Af.Row(i)
		s, s2 := 0.0, 0.0
		for j := 0; j < n; j++ {
			s += row[j]
			s2 += float64(j+1) * row[j]
		}
		row[n] = s
		row[n+1] = s2
		l.Af.TouchRow(i, 0, n+2, true)
		l.ops(&l.Ops.Checksum, 3*n)
	}
}

func (l *LU) ops(bucket *uint64, n int) {
	*bucket += uint64(n)
	l.env.Mem.Ops(n)
}

// Run factors the matrix in place with per-step verification.
func (l *LU) Run() error {
	n := l.N
	l.piv = make([]int, n)
	for k := 0; k < n; k++ {
		l.k = k
		if l.CheckPeriod > 0 && k%l.CheckPeriod == 0 {
			if err := l.verifyStep(k); err != nil {
				return err
			}
		}

		// Partial pivot on column k.
		p, maxv := k, math.Abs(l.Af.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(l.Af.At(i, k)); v > maxv {
				p, maxv = i, v
			}
		}
		l.Af.TouchCol(k, k, n-k, false)
		l.ops(&l.Ops.Compute, n-k)
		if maxv == 0 {
			return mat.ErrSingular
		}
		l.piv[k] = p
		if p != k {
			// Swapping full extended rows preserves both checksums.
			mat.SwapRows(l.Af.Matrix, k, p)
			l.Af.TouchRow(k, 0, n+2, true)
			l.Af.TouchRow(p, 0, n+2, true)
		}

		pivot := l.Af.At(k, k)
		// Broadcast the pivot row into the unprotected workspace.
		copy(l.W.Row(k)[k:], l.Af.Row(k)[k:])
		l.Af.TouchRow(k, k, n+2-k, false)
		l.W.TouchRow(k, k, n+2-k, true)
		rowK := l.W.Row(k)

		// Active-column sums of the pivot row, for the exact checksum
		// update: the elimination touches only columns > k, so the stored
		// checksum (a full-row sum including row k's own L part) cannot be
		// used directly.
		sumA, sumW := 0.0, 0.0
		for j := k + 1; j < n; j++ {
			sumA += rowK[j]
			sumW += float64(j+1) * rowK[j]
		}
		l.ops(&l.Ops.Checksum, 3*(n-k))

		for i := k + 1; i < n; i++ {
			ri := l.Af.Row(i)
			v := ri[k]
			m := v / pivot
			ri[k] = m
			if m != 0 {
				for j := k + 1; j < n; j++ {
					ri[j] -= m * rowK[j]
				}
			}
			// Exact checksum maintenance: the storage row changed by
			// (m − v) at column k and by −m·rowK[j] at each active column.
			ri[n] += m - v - m*sumA
			ri[n+1] += float64(k+1)*(m-v) - m*sumW
			l.Af.TouchRow(i, k, n+2-k, true)
			l.W.TouchRow(k, k, n-k, false)
			l.ops(&l.Ops.Compute, 2*(n-k))
			l.ops(&l.Ops.Checksum, 8)
		}
	}
	l.k = n
	if l.CheckPeriod > 0 && l.Mode == FullVerify {
		return l.VerifyRows(0)
	} else if l.Mode == NotifiedVerify {
		if err := l.verifyNotified(); err != nil {
			return err
		}
	}
	return nil
}

func (l *LU) verifyStep(k int) error {
	if l.Mode == NotifiedVerify {
		return l.verifyNotified()
	}
	return l.VerifyRows(k)
}

// VerifyRows recomputes both checksum relations for rows [lo, n). The
// checksum columns are maintained to equal the exact storage-row sums, so a
// plain re-sum must match; mismatches locate corrupted elements
// (column = δ₂/δ − 1).
func (l *LU) VerifyRows(lo int) error {
	n := l.N
	for i := lo; i < n; i++ {
		row := l.Af.Row(i)
		s, s2 := 0.0, 0.0
		for j := 0; j < n; j++ {
			s += row[j]
			s2 += float64(j+1) * row[j]
		}
		l.Af.TouchRow(i, 0, n+2, false)
		l.ops(&l.Ops.Verify, 3*n)
		if err := l.repairRow(i, row[n]-s, row[n+1]-s2); err != nil {
			return err
		}
	}
	return nil
}

// repairRow interprets a (δ, δ₂) mismatch on row i.
func (l *LU) repairRow(i int, delta, delta2 float64) error {
	n := l.N
	tol := l.Tol
	if math.Abs(delta) <= tol && math.Abs(delta2) <= tol {
		return nil
	}
	if math.Abs(delta) <= tol {
		// Only the weighted checksum is off: it is itself corrupted.
		l.Af.Add(i, n+1, -delta2)
		l.Af.TouchElem(i, n+1, true)
		l.Corrections = append(l.Corrections, Correction{Structure: "lu.cs2", I: i, Delta: -delta2})
		l.env.corrected(l.Af.Addr(i, n+1))
		return nil
	}
	col := delta2/delta - 1
	cj := int(math.Round(col))
	if math.Abs(col-float64(cj)) > 0.25 || cj < 0 || cj >= n {
		if math.Abs(delta2) <= tol {
			// The plain checksum element itself is corrupted.
			l.Af.Add(i, n, -delta)
			l.Af.TouchElem(i, n, true)
			l.Corrections = append(l.Corrections, Correction{Structure: "lu.cs", I: i, Delta: -delta})
			l.env.corrected(l.Af.Addr(i, n))
			return nil
		}
		return fmt.Errorf("%w: row %d deltas (%g, %g) locate no element",
			ErrUncorrectable, i, delta, delta2)
	}
	l.Af.Add(i, cj, delta)
	l.Af.TouchElem(i, cj, true)
	l.ops(&l.Ops.Verify, 2)
	// Post-repair re-verification: several errors in one row can alias to a
	// plausible single-element explanation (δ₂/δ is a weighted average of
	// the corrupted columns' weights); a genuine single-error fix leaves the
	// row consistent, an aliased one does not.
	row := l.Af.Row(i)
	s, s2 := 0.0, 0.0
	for j := 0; j < n; j++ {
		s += row[j]
		s2 += float64(j+1) * row[j]
	}
	l.ops(&l.Ops.Verify, 3*n)
	if math.Abs(row[n]-s) > tol || math.Abs(row[n+1]-s2) > tol {
		l.Af.Add(i, cj, -delta) // revert the misguided fix
		return fmt.Errorf("%w: row %d has multiple corrupted elements", ErrUncorrectable, i)
	}
	l.Corrections = append(l.Corrections, Correction{Structure: "lu.Af", I: i, J: cj, Delta: delta})
	l.env.corrected(l.Af.Addr(i, cj))
	return nil
}

// verifyNotified repairs exactly the rows the OS reported corrupted — one
// O(n) row re-sum per corrupted line instead of the O(n²) sweep.
func (l *LU) verifyNotified() error {
	if l.env.Notify == nil {
		return nil
	}
	seen := map[int]bool{}
	for _, note := range l.env.Notify() {
		for off := uint64(0); off < 64; off += 8 {
			if i, _, ok := l.Af.ElemAt(note.VirtAddr + off); ok && !seen[i] {
				seen[i] = true
				if err := l.verifyOneRow(i); err != nil {
					return err
				}
			}
		}
		// The row has been examined: anything above the numerical
		// tolerance was repaired, anything below is roundoff-level, so the
		// hardware fault state for this line is resolved either way.
		l.env.corrected(note.VirtAddr)
	}
	return nil
}

func (l *LU) verifyOneRow(i int) error {
	n := l.N
	row := l.Af.Row(i)
	s, s2 := 0.0, 0.0
	for j := 0; j < n; j++ {
		s += row[j]
		s2 += float64(j+1) * row[j]
	}
	l.Af.TouchRow(i, 0, n+2, false)
	l.ops(&l.Ops.Verify, 3*n)
	return l.repairRow(i, row[n]-s, row[n+1]-s2)
}

// VerifyNotified consumes pending OS corruption reports (public entry for
// post-run coordination).
func (l *LU) VerifyNotified() error { return l.verifyNotified() }

// Solve returns x with A·x = b using the in-place factors.
func (l *LU) Solve() []float64 {
	lu := l.Af.View(0, 0, l.N, l.N)
	x := mat.SolveLU(lu, l.piv, l.b.Data)
	l.ops(&l.Ops.Compute, 2*l.N*l.N)
	return x
}

// CheckResult compares against a direct factorization of the original
// matrix (test helper).
func (l *LU) CheckResult(orig *mat.Matrix) error {
	ref := orig.Clone()
	piv, err := mat.LU(ref, nil)
	if err != nil {
		return err
	}
	want := mat.SolveLU(ref, piv, l.b.Data)
	got := l.Solve()
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-6 {
			return fmt.Errorf("abft: LU solution diverges at %d: %g vs %g", i, got[i], want[i])
		}
	}
	return nil
}
