package abft

import (
	"errors"
	"math"
	"testing"

	"coopabft/internal/mat"
)

func cholProblem(n int, seed uint64) (*Cholesky, *mat.Matrix) {
	c := NewCholesky(Standalone(), n, seed)
	return c, c.A.Matrix.Clone()
}

func TestCholeskyCleanRun(t *testing.T) {
	for _, n := range []int{8, 33, 64} {
		c, orig := cholProblem(n, uint64(n))
		if err := c.Run(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := c.CheckResult(orig); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(c.Corrections) != 0 {
			t.Errorf("n=%d: clean run corrected %v", n, c.Corrections)
		}
	}
}

func TestCholeskyMatchesReference(t *testing.T) {
	c, orig := cholProblem(40, 3)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	ref := orig.Clone()
	if err := mat.Cholesky(ref); err != nil {
		t.Fatal(err)
	}
	if !mat.Equal(c.L(), ref, 1e-8) {
		t.Error("FT-Cholesky factor differs from reference Cholesky")
	}
}

func TestCholeskyTrailingChecksumInvariant(t *testing.T) {
	// After Run with huge CheckPeriod (never verifying), a manual verify of
	// the final trailing set must be clean — i.e. maintenance is exact.
	c, _ := cholProblem(48, 5)
	c.CheckPeriod = 1 // verify every step; any drift fails the run
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if len(c.Corrections) != 0 {
		t.Errorf("maintenance drift produced corrections: %v", c.Corrections)
	}
}

func TestCholeskyCorrectsTrailingError(t *testing.T) {
	// Inject into the trailing matrix between iterations using a wrapped
	// verify: easiest deterministic point is right after Run of a partial
	// problem. Instead we inject into A before Run at a location the first
	// verification will see (trailing after first panel).
	c, orig := cholProblem(48, 7)
	c.Block = 16
	// Run manually: corrupt after construction, before first verify pass —
	// the initial checksums are built on clean data, so corrupt afterwards.
	c.A.Add(30, 20, 7.5) // trailing element (both > first panel)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if len(c.Corrections) == 0 {
		t.Fatal("no correction recorded")
	}
	found := false
	for _, cor := range c.Corrections {
		if cor.Structure == "chol.A" && cor.I == 30 && cor.J == 20 && math.Abs(cor.Delta+7.5) < 1e-6 {
			found = true
		}
	}
	if !found {
		t.Errorf("corrections = %+v", c.Corrections)
	}
	if err := c.CheckResult(orig); err != nil {
		t.Fatal(err)
	}
}

func TestCholeskyCorrectsDiagonalError(t *testing.T) {
	c, orig := cholProblem(32, 9)
	c.Block = 8
	c.A.Add(20, 20, 3.25)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckResult(orig); err != nil {
		t.Fatal(err)
	}
}

func TestCholeskyCorrectsChecksumCorruption(t *testing.T) {
	c, orig := cholProblem(32, 11)
	c.Block = 8
	c.cs.Data[25] += 100 // corrupt the plain checksum itself
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckResult(orig); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, cor := range c.Corrections {
		if cor.Structure == "chol.A.cs" && cor.J == 25 {
			found = true
		}
	}
	if !found {
		t.Errorf("checksum correction missing: %+v", c.Corrections)
	}
}

func TestCholeskyCorrectsWeightedChecksumCorruption(t *testing.T) {
	c, orig := cholProblem(32, 13)
	c.Block = 8
	c.cs2.Data[20] -= 55
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckResult(orig); err != nil {
		t.Fatal(err)
	}
}

func TestCholeskyVerifyLFindsLErrors(t *testing.T) {
	c, orig := cholProblem(40, 15)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	// Corrupt a finalized L element and ask for the L sweep.
	c.A.Add(30, 5, -2.5)
	if err := c.VerifyL(c.N); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckResult(orig); err != nil {
		t.Fatal(err)
	}
}

func TestCholeskyUncorrectableMultiError(t *testing.T) {
	c, _ := cholProblem(32, 17)
	c.Block = 8
	// Two errors in one trailing column break the single-error locator.
	c.A.Add(20, 12, 4)
	c.A.Add(28, 12, -9)
	err := c.Run()
	if err == nil {
		t.Fatal("multi-error column not flagged")
	}
	if !errors.Is(err, ErrUncorrectable) {
		t.Errorf("err = %v, want ErrUncorrectable", err)
	}
}

func TestCholeskyNotifiedMode(t *testing.T) {
	var pending []Notification
	env := Standalone()
	env.Notify = func() []Notification {
		out := pending
		pending = nil
		return out
	}
	c := NewCholesky(env, 32, 19)
	orig := c.A.Matrix.Clone()
	c.Mode = NotifiedVerify
	c.Block = 8
	// Corrupt a trailing element and notify its line, as the OS would.
	c.A.Add(25, 18, 6.5)
	pending = []Notification{{VirtAddr: c.A.Addr(25, 18) &^ 63}}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckResult(orig); err != nil {
		t.Fatal(err)
	}
	if len(c.Corrections) == 0 {
		t.Error("notified correction not recorded")
	}
}

func TestCholeskyNotifiedCheaperThanFull(t *testing.T) {
	cFull, _ := cholProblem(48, 21)
	if err := cFull.Run(); err != nil {
		t.Fatal(err)
	}
	env := Standalone()
	env.Notify = func() []Notification { return nil }
	cNot := NewCholesky(env, 48, 21)
	cNot.Mode = NotifiedVerify
	if err := cNot.Run(); err != nil {
		t.Fatal(err)
	}
	if cNot.Ops.Verify >= cFull.Ops.Verify {
		t.Errorf("notified verify ops %d >= full %d", cNot.Ops.Verify, cFull.Ops.Verify)
	}
}

func TestCholeskyOpsBuckets(t *testing.T) {
	c, _ := cholProblem(40, 23)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if c.Ops.Compute == 0 || c.Ops.Checksum == 0 || c.Ops.Verify == 0 {
		t.Errorf("buckets: %+v", c.Ops)
	}
	if c.Ops.Compute <= c.Ops.Checksum {
		t.Errorf("checksum maintenance (%d) should be far below compute (%d)",
			c.Ops.Checksum, c.Ops.Compute)
	}
}
