package abft

// Property-based fault-injection campaigns: for randomized problems,
// injection sites and magnitudes, the kernels must detect and repair the
// corruption and still produce verified results.

import (
	"math"
	"testing"
	"testing/quick"
)

// TestDGEMMRandomInjectionProperty: any single post-run corruption anywhere
// in Cf (result, checksum row, checksum column, corner) is repaired.
func TestDGEMMRandomInjectionProperty(t *testing.T) {
	f := func(seed uint64, iSel, jSel uint16, mag uint8) bool {
		n := 16 + int(seed%17)
		d := mustDGEMM(t, Standalone(), n, seed)
		if err := d.Run(); err != nil {
			return false
		}
		i := int(iSel) % (n + 1)
		j := int(jSel) % (n + 1)
		delta := 1.0 + float64(mag)
		want := d.Cf.At(i, j)
		d.Cf.Set(i, j, want+delta)
		if err := d.VerifyFull(); err != nil {
			return false
		}
		return math.Abs(d.Cf.At(i, j)-want) <= d.Tol && d.CheckResult() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestCholeskyRandomInjectionProperty: a single pre-run corruption of any
// strictly-lower or diagonal element is located and repaired during the
// factorization, which still reconstructs A.
func TestCholeskyRandomInjectionProperty(t *testing.T) {
	f := func(seed uint64, iSel, jSel uint16, mag uint8) bool {
		n := 24 + int(seed%9)
		c := NewCholesky(Standalone(), n, seed)
		c.Block = 8
		orig := c.A.Matrix.Clone()
		i := int(iSel) % n
		j := int(jSel) % n
		if i < j {
			i, j = j, i
		}
		c.A.Add(i, j, 2.0+float64(mag)/8)
		if err := c.Run(); err != nil {
			return false
		}
		return c.CheckResult(orig) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestCGRandomInjectionProperty: corruption of a random element of a random
// protected vector at a random iteration still converges to the true
// solution.
func TestCGRandomInjectionProperty(t *testing.T) {
	names := []string{"r", "p", "q", "x", "b"}
	f := func(seed uint64, vecSel, elemSel uint16, iterSel uint8) bool {
		c := NewCG(Standalone(), 16, 16, seed)
		c.CheckPeriod = 2
		name := names[int(vecSel)%len(names)]
		v, _ := c.VecFor(name)
		elem := int(elemSel) % len(v.Data)
		at := 2 + int(iterSel)%10
		injected := false
		c.OnIteration = func(iter int) {
			if iter == at && !injected {
				injected = true
				if name == "b" {
					// b is read-only input: corrupting it permanently
					// changes the problem; the invariant check detects the
					// inconsistency but recovery re-derives r from the
					// corrupted b. Restore semantics: skip b here (it is
					// covered by the notified-repair path instead).
					return
				}
				v.Data[elem] += 1e7
			}
		}
		out, err := c.Run()
		if err != nil || !out.Converged {
			return false
		}
		return c.TrueResidual() <= 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestHPLRandomFailStopProperty: killing any process at any step still
// yields a correct factorization.
func TestHPLRandomFailStopProperty(t *testing.T) {
	f := func(seed uint64, stepSel, prSel, pcSel uint8) bool {
		h := mustHPL(t, Standalone(), 32, 4, seed)
		orig := h.A.Matrix.Clone()
		h.FailAt = int(stepSel) % 32
		h.FailPr = int(prSel) % 2
		h.FailPc = int(pcSel) % 2
		if err := h.Run(); err != nil {
			return false
		}
		return h.CheckResult(orig) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestDGEMMTinyErrorsBelowToleranceAreBenign: numerically negligible
// corruption (below the detection threshold) must not break the result
// check — the tolerance design holds.
func TestDGEMMTinyErrorsBelowToleranceAreBenign(t *testing.T) {
	d := mustDGEMM(t, Standalone(), 32, 77)
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	d.Cf.Add(3, 4, d.Tol/100)
	if err := d.VerifyFull(); err != nil {
		t.Fatal(err)
	}
	if err := d.CheckResult(); err != nil {
		t.Fatal(err)
	}
}

// TestCholeskyBigProblemWithInjection exercises the blocked path at a size
// spanning many panels.
func TestCholeskyBigProblemWithInjection(t *testing.T) {
	c := NewCholesky(Standalone(), 96, 5)
	c.Block = 16
	orig := c.A.Matrix.Clone()
	c.A.Add(70, 30, 9.5)
	c.A.Add(50, 10, -3.25)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckResult(orig); err != nil {
		t.Fatal(err)
	}
	if len(c.Corrections) < 2 {
		t.Errorf("corrections = %+v", c.Corrections)
	}
}
