package abft

import (
	"errors"
	"testing"
	"testing/quick"

	"coopabft/internal/mat"
)

func qrProblem(n int, seed uint64) (*QR, *mat.Matrix) {
	q := NewQR(Standalone(), n, seed)
	orig := mat.New(n, n)
	for i := 0; i < n; i++ {
		copy(orig.Row(i), q.Af.Row(i)[:n])
	}
	return q, orig
}

func TestQRCleanFactorization(t *testing.T) {
	for _, n := range []int{8, 33, 64} {
		q, orig := qrProblem(n, uint64(n))
		if err := q.Run(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := q.CheckResult(orig); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(q.Corrections) != 0 {
			t.Errorf("n=%d: clean run corrected %+v", n, q.Corrections)
		}
	}
}

func TestQRMatchesReferenceQR(t *testing.T) {
	q, orig := qrProblem(24, 3)
	if err := q.Run(); err != nil {
		t.Fatal(err)
	}
	ref, err := mat.QRFactor(orig, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := q.Af.View(0, 0, 24, 24)
	if !mat.Equal(r, ref.R, 1e-8) {
		t.Error("FT-QR R differs from reference")
	}
}

func TestQRUpperTriangularResult(t *testing.T) {
	q, _ := qrProblem(20, 5)
	if err := q.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		for j := 0; j < i; j++ {
			if q.Af.At(i, j) != 0 {
				t.Fatalf("R[%d][%d] = %g", i, j, q.Af.At(i, j))
			}
		}
	}
}

func TestQRInvariantMaintainedEveryStep(t *testing.T) {
	q, _ := qrProblem(48, 7)
	q.CheckPeriod = 1 // any drift trips the per-step verification
	if err := q.Run(); err != nil {
		t.Fatal(err)
	}
	if len(q.Corrections) != 0 {
		t.Errorf("maintenance drift: %+v", q.Corrections)
	}
}

func TestQRCorrectsPreRunInjection(t *testing.T) {
	q, orig := qrProblem(32, 9)
	q.Af.Add(20, 11, 5.5)
	if err := q.Run(); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range q.Corrections {
		if c.Structure == "qr.Af" && c.I == 20 && c.J == 11 {
			found = true
		}
	}
	if !found {
		t.Errorf("corrections = %+v", q.Corrections)
	}
	if err := q.CheckResult(orig); err != nil {
		t.Fatal(err)
	}
}

func TestQRCorrectsReflectorCorruption(t *testing.T) {
	// Corrupt V after the run; the final V sweep must restore it so the
	// solve (which applies the reflectors) still succeeds.
	q, orig := qrProblem(24, 11)
	if err := q.Run(); err != nil {
		t.Fatal(err)
	}
	q.Vf.Add(15, 4, 3.75)
	if err := q.VerifyV(q.N); err != nil {
		t.Fatal(err)
	}
	if err := q.CheckResult(orig); err != nil {
		t.Fatal(err)
	}
}

func TestQRUncorrectableMultiError(t *testing.T) {
	q, _ := qrProblem(24, 13)
	q.Af.Add(10, 3, 4)
	q.Af.Add(10, 17, -2)
	err := q.Run()
	if err == nil {
		t.Fatal("multi-error row not flagged")
	}
	if !errors.Is(err, ErrUncorrectable) {
		t.Errorf("err = %v", err)
	}
}

func TestQRNotifiedMode(t *testing.T) {
	var pending []Notification
	env := Standalone()
	env.Notify = func() []Notification {
		out := pending
		pending = nil
		return out
	}
	q := NewQR(env, 24, 15)
	orig := mat.New(24, 24)
	for i := 0; i < 24; i++ {
		copy(orig.Row(i), q.Af.Row(i)[:24])
	}
	q.Mode = NotifiedVerify
	q.Af.Add(12, 7, 8.5)
	pending = []Notification{{VirtAddr: q.Af.Addr(12, 7) &^ 63}}
	if err := q.Run(); err != nil {
		t.Fatal(err)
	}
	if err := q.CheckResult(orig); err != nil {
		t.Fatal(err)
	}
	if len(q.Corrections) == 0 {
		t.Error("notified correction not recorded")
	}
}

// Property: any single pre-run corruption in the extended working matrix is
// repaired and the solve matches the reference.
func TestQRRandomInjectionProperty(t *testing.T) {
	f := func(seed uint64, iSel, jSel uint16, mag uint8) bool {
		n := 12 + int(seed%13)
		q, orig := qrProblem(n, seed)
		q.Af.Add(int(iSel)%n, int(jSel)%(n+2), 1.25+float64(mag)/8)
		if err := q.Run(); err != nil {
			return false
		}
		return q.CheckResult(orig) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestQROpsBuckets(t *testing.T) {
	q, _ := qrProblem(32, 17)
	if err := q.Run(); err != nil {
		t.Fatal(err)
	}
	if q.Ops.Compute == 0 || q.Ops.Checksum == 0 || q.Ops.Verify == 0 {
		t.Errorf("ops = %+v", q.Ops)
	}
	if q.Ops.Compute <= q.Ops.Checksum {
		t.Errorf("checksum ops %d should be far below compute %d", q.Ops.Checksum, q.Ops.Compute)
	}
}
