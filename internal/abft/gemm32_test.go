package abft

import (
	"errors"
	"math"
	"testing"

	"coopabft/internal/campaign"
	"coopabft/internal/mat"
)

// Adversarial operand distributions for threshold calibration: the shapes
// and value ranges where a fixed epsilon either false-positives (large
// magnitudes, heavy accumulation) or misses faults (tiny magnitudes).
type dist struct {
	name    string
	m, k, n int
	gen     func(r, c int, seed uint64) *mat.Matrix32
}

func uniform32(r, c int, seed uint64) *mat.Matrix32 { return mat.Random32(r, c, seed) }

// largeVariance32 spans six decades with mixed sign: v = (u−½)·10^(6w−3).
func largeVariance32(r, c int, seed uint64) *mat.Matrix32 {
	u := mat.Random(r, c, seed)
	w := mat.Random(r, c, seed^0xabcdef)
	out := mat.New32(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			out.Set(i, j, float32((u.At(i, j)-0.5)*math.Pow(10, 6*w.At(i, j)-3)))
		}
	}
	return out
}

// tiny32 keeps everything near the float32 denormal-adjacent range.
func tiny32(r, c int, seed uint64) *mat.Matrix32 {
	u := mat.Random(r, c, seed)
	out := mat.New32(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			out.Set(i, j, float32((u.At(i, j)-0.5)*1e-6))
		}
	}
	return out
}

var dists = []dist{
	{"square-uniform", 96, 96, 96, uniform32},
	{"tall-skinny", 256, 64, 8, uniform32},
	{"skinny-tall", 8, 64, 256, uniform32},
	{"deep-k", 48, 512, 16, uniform32},
	{"batched-small", 16, 16, 16, uniform32},
	{"large-variance", 64, 96, 64, largeVariance32},
	{"large-variance-tall", 192, 48, 12, largeVariance32},
	{"tiny-magnitude", 64, 64, 64, tiny32},
}

// TestGEMM32CleanSweepNoFalsePositives is the calibration property the ci
// gate runs by name: across adversarial distributions and seeds, a clean
// run must never trip the adaptive bound — no faults, no corrections, no
// restarts — and must pass the element-level oracle.
func TestGEMM32CleanSweepNoFalsePositives(t *testing.T) {
	for _, d := range dists {
		for seed := uint64(1); seed <= 8; seed++ {
			g, err := NewGEMM32FromMatrices(d.gen(d.m, d.k, seed), d.gen(d.k, d.n, seed+101))
			if err != nil {
				t.Fatalf("%s seed %d: %v", d.name, seed, err)
			}
			if err := g.Run(); err != nil {
				t.Fatalf("%s seed %d: clean run failed: %v", d.name, seed, err)
			}
			if len(g.Faults) != 0 || len(g.Corrections) != 0 {
				t.Fatalf("%s seed %d: clean run flagged %d faults, %d corrections (false positive)",
					d.name, seed, len(g.Faults), len(g.Corrections))
			}
			if err := g.CheckResult(); err != nil {
				t.Fatalf("%s seed %d: oracle: %v", d.name, seed, err)
			}
		}
	}
}

// TestGEMM32FaultAboveBoundAlwaysDetected injects additive corruption whose
// magnitude exceeds a computable upper bound of the adaptive line bound —
// the detection property: anything above the bound must be flagged, and the
// delivered result must still pass the pristine oracle (repair) or the run
// must refuse (uncorrectable). Silent acceptance is the only failure.
func TestGEMM32FaultAboveBoundAlwaysDetected(t *testing.T) {
	for _, d := range dists {
		for seed := uint64(1); seed <= 4; seed++ {
			a := d.gen(d.m, d.k, seed)
			b := d.gen(d.k, d.n, seed+101)
			g, err := NewGEMM32FromMatrices(a, b)
			if err != nil {
				t.Fatalf("%s: %v", d.name, err)
			}
			// Upper bound of every line bound the run will ever use:
			// absSum ≤ lineLen·K·maxA·maxB and rms ≤ maxA·maxB.
			maxProd := a.MaxAbs() * b.MaxAbs()
			kf := float64(g.K)
			lineLen := float64(max(g.M, g.N))
			tolMax := ThresholdLambda * (1.0 / (1 << 24)) * kf *
				(lineLen*kf*maxProd + math.Sqrt(kf)*lineLen*maxProd)
			if tolMax == 0 {
				t.Fatalf("%s: degenerate operands", d.name)
			}
			st := seed * 77
			next := func() uint64 { st++; return campaign.Splitmix64(st) }
			panel := int(next() % uint64(g.Panels()))
			r := int(next() % uint64(g.M))
			c := int(next() % uint64(g.N))
			delta := float32(2 * tolMax)
			g.OnPanel = func(p int) {
				if p == panel {
					g.C.Set(r, c, g.C.At(r, c)+delta)
				}
			}
			runErr := g.Run()
			if len(g.Faults) == 0 {
				t.Fatalf("%s seed %d: injected delta %g above bound %g went undetected",
					d.name, seed, delta, tolMax)
			}
			if runErr != nil {
				if !errors.Is(runErr, ErrUncorrectable) {
					t.Fatalf("%s seed %d: unexpected error %v", d.name, seed, runErr)
				}
				continue // refusing is a legal non-silent outcome
			}
			if err := g.CheckResult(); err != nil {
				t.Fatalf("%s seed %d: repaired run fails oracle: %v", d.name, seed, err)
			}
		}
	}
}

// TestGEMM32BitFlipNeverSilent drives realistic exponent-bit flips into C,
// A, and B across panels and seeds. The contract mirrors the recovery
// ladder's: a run either detects and repairs (oracle-clean result), or
// refuses with ErrUncorrectable — it never delivers a silently wrong
// answer.
func TestGEMM32BitFlipNeverSilent(t *testing.T) {
	flip := func(d []float32, idx int) {
		d[idx] = math.Float32frombits(math.Float32bits(d[idx]) ^ (1 << 30))
	}
	for seed := uint64(1); seed <= 24; seed++ {
		a := mat.Random32(80, 80, seed)
		b := mat.Random32(80, 80, seed+1)
		pristineRef := mat.New(80, 80)
		mat.MulAddInto(pristineRef, a.To64(), b.To64())

		g, err := NewGEMM32FromMatrices(a, b)
		if err != nil {
			t.Fatal(err)
		}
		st := seed
		next := func() uint64 { st++; return campaign.Splitmix64(st) }
		panel := int(next() % uint64(g.Panels()))
		target := int(next() % 3)
		g.OnPanel = func(p int) {
			if p != panel {
				return
			}
			switch target {
			case 0:
				flip(g.C.Data, int(next()%uint64(len(g.C.Data))))
			case 1:
				// Flip inside the not-yet-consumed k range so the fault is
				// live (a flip behind the panel cursor is never read again).
				kk := panel * g.Block
				col := kk + int(next()%uint64(g.K-kk))
				row := int(next() % uint64(g.M))
				flip(g.A.Data, row*g.A.Stride+col)
			default:
				kk := panel * g.Block
				row := kk + int(next()%uint64(g.K-kk))
				col := int(next() % uint64(g.N))
				flip(g.B.Data, row*g.B.Stride+col)
			}
		}
		runErr := g.Run()
		if runErr != nil {
			if !errors.Is(runErr, ErrUncorrectable) {
				t.Fatalf("seed %d target %d: unexpected error %v", seed, target, runErr)
			}
			continue
		}
		// Delivered: the result must match the PRISTINE reference — operand
		// flips may not be laundered into the answer via a consistent
		// (corrupted A, corrupted ref) pair.
		if target != 0 {
			t.Fatalf("seed %d: operand flip at panel %d delivered instead of refusing", seed, panel)
		}
		if len(g.Faults) == 0 || len(g.Corrections) == 0 {
			t.Fatalf("seed %d: C flip delivered with no detection/repair", seed)
		}
		for i := 0; i < g.M; i++ {
			for j := 0; j < g.N; j++ {
				ref := pristineRef.At(i, j)
				if math.Abs(float64(g.C.At(i, j))-ref) > ElementBound32(g.K, ref, g.aMom, g.bMom) {
					t.Fatalf("seed %d: silent corruption at (%d,%d): got %g want %g",
						seed, i, j, g.C.At(i, j), ref)
				}
			}
		}
	}
}

// TestGEMM32RepairConvergence pins the refold loop's reason to exist: a
// huge-magnitude flip absorbs its line's float64 sums, so the first repair
// round cannot land exactly — but the refolded second round must.
func TestGEMM32RepairConvergence(t *testing.T) {
	g, err := NewGEMM32(64, 7)
	if err != nil {
		t.Fatal(err)
	}
	g.OnPanel = func(p int) {
		if p == 0 {
			g.C.Set(10, 20, 3e34) // dwarfs every honest value in the row/col sums
		}
	}
	if err := g.Run(); err != nil {
		t.Fatalf("huge flip not repaired: %v", err)
	}
	if len(g.Corrections) == 0 {
		t.Fatal("no corrections recorded")
	}
	if err := g.CheckResult(); err != nil {
		t.Fatalf("oracle after repair: %v", err)
	}
}

// TestThresholdBounds sanity-pins the bound shapes: monotone in k, scaled
// by operand magnitude, zero only for zero data.
func TestThresholdBounds(t *testing.T) {
	mom := mat.Moments{Count: 100, SumSq: 25, MaxAbs: 2} // meanSq 0.25
	if LineBound32(64, 32, 10, mom, mom) <= LineBound32(32, 32, 10, mom, mom) {
		t.Fatal("LineBound32 not monotone in kAcc")
	}
	big := mat.Moments{Count: 100, SumSq: 2500, MaxAbs: 20}
	if LineBound32(32, 32, 10, big, big) <= LineBound32(32, 32, 10, mom, mom) {
		t.Fatal("LineBound32 not scaled by operand magnitude")
	}
	if got := LineBound32(32, 32, 0, mat.Moments{}, mat.Moments{}); got != 0 {
		t.Fatalf("zero-data LineBound32 = %g, want 0", got)
	}
	if OperandBound32(1000, big) >= u32 {
		t.Fatal("OperandBound32 should sit far below float32 resolution")
	}
}
