package abft

import (
	"fmt"
	"math"

	"coopabft/internal/mat"
)

// HPL is the fault-tolerant High Performance Linpack of [10] (§2.1),
// targeting fail-stop errors. The matrix is block-cyclically distributed
// over a 2×2 process grid; an extra checksum "process row" holds, for every
// pair of sibling rows (the rows two process rows store at the same local
// position), their element-wise sum. The encoding is maintained through the
// whole factorization: checksum rows are eliminated with the summed
// multiplier m_T = m₁ + m₂, so A = P·L·U progresses with the invariant
// T[u] = A[i₁] + A[i₂] intact. When a process fail-stops mid-run, every
// lost element is rebuilt as T[u][j] − A[sibling][j] and the factorization
// continues — no checkpoint, no restart.
type HPL struct {
	N  int
	NB int // distribution block size
	// Grid is fixed at 2×2 compute processes (the paper's smallest FT-HPL
	// deployment) plus a checksum process row.
	A Mat // n×n, ABFT-protected, factored in place
	T Mat // (n/2)×n checksum rows, ABFT-protected
	b Vec // right-hand side (unprotected input)
	// W is the broadcast-buffer arena the elimination reads: step k uses
	// row k, modeling the fresh receive buffer each panel broadcast of a
	// distributed HPL fills; not ABFT-protected (Table 4's unprotected
	// references).
	W Mat

	piv []int

	// FailAt, when ≥ 0, kills process (FailPr, FailPc) before elimination
	// step FailAt — the fail-stop injection.
	FailAt         int
	FailPr, FailPc int

	Ops         OpCounters
	Recovered   int // elements rebuilt after fail-stop
	Corrections []Correction

	env Env
}

// NewHPL builds a random diagonally dominant system of size n; n must be a
// multiple of 2·nb so every row has a sibling.
func NewHPL(env Env, n, nb int, seed uint64) (*HPL, error) {
	if nb < 1 || n < 2*nb || n%(2*nb) != 0 {
		return nil, fmt.Errorf("%w: HPL size %d must be a positive multiple of 2·nb = %d",
			ErrBadSize, n, 2*nb)
	}
	h := &HPL{N: n, NB: nb, FailAt: -1, env: env}
	h.A = env.NewMat("hpl.A", n, n, true)
	h.T = env.NewMat("hpl.T", n/2, n, true)
	h.b = env.NewVec("hpl.b", n, false)
	h.W = env.NewMat("hpl.W", n, n, false)

	src := mat.DiagonallyDominant(n, seed)
	h.A.Matrix.CopyFrom(src)
	xTrue := mat.RandomVec(n, seed+7)
	copy(h.b.Data, mat.MulVec(src, xTrue))
	h.encode()
	return h, nil
}

// sibling returns the partner row sharing i's checksum slot, and the slot.
func (h *HPL) sibling(i int) (partner, slot int) {
	blk := i / h.NB
	t := blk / 2
	off := i % h.NB
	slot = t*h.NB + off
	if blk%2 == 0 {
		partner = (2*t+1)*h.NB + off
	} else {
		partner = (2*t)*h.NB + off
	}
	return partner, slot
}

// ownerPr returns the process row owning global row i.
func (h *HPL) ownerPr(i int) int { return (i / h.NB) % 2 }

// ownerPc returns the process column owning global column j.
func (h *HPL) ownerPc(j int) int { return (j / h.NB) % 2 }

// encode builds T from scratch.
func (h *HPL) encode() {
	n := h.N
	for u := 0; u < n/2; u++ {
		i1 := (2*(u/h.NB))*h.NB + u%h.NB
		i2 := i1 + h.NB
		r1, r2, tr := h.A.Row(i1), h.A.Row(i2), h.T.Row(u)
		for j := 0; j < n; j++ {
			tr[j] = r1[j] + r2[j]
		}
		h.A.TouchRow(i1, 0, n, false)
		h.A.TouchRow(i2, 0, n, false)
		h.T.TouchRow(u, 0, n, true)
		h.ops(&h.Ops.Checksum, n)
	}
}

func (h *HPL) ops(bucket *uint64, n int) {
	*bucket += uint64(n)
	h.env.Mem.Ops(n)
}

// Run factors A = P·L·U, surviving a fail-stop injection when configured.
func (h *HPL) Run() error {
	n := h.N
	h.piv = make([]int, n)
	for k := 0; k < n; k++ {
		if h.FailAt == k {
			h.KillProcess(h.FailPr, h.FailPc)
			if err := h.RecoverFailStop(h.FailPr, h.FailPc); err != nil {
				return err
			}
			h.FailAt = -1
		}

		// Partial pivot.
		p, maxv := k, math.Abs(h.A.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(h.A.At(i, k)); v > maxv {
				p, maxv = i, v
			}
		}
		h.A.TouchCol(k, k, n-k, false)
		h.ops(&h.Ops.Compute, n-k)
		if maxv == 0 {
			return mat.ErrSingular
		}
		h.piv[k] = p
		if p != k {
			mat.SwapRows(h.A.Matrix, k, p)
			h.A.TouchRow(k, 0, n, true)
			h.A.TouchRow(p, 0, n, true)
			h.fixChecksumsAfterSwap(k, p)
		}

		pivot := h.A.At(k, k)
		// Broadcast the pivot row into the unprotected workspace; the
		// elimination reads the workspace copy, as a distributed HPL reads
		// its receive buffer.
		copy(h.W.Row(k)[k:], h.A.Row(k)[k:])
		h.A.TouchRow(k, k, n-k, false)
		h.W.TouchRow(k, k, n-k, true)
		rowK := h.W.Row(k)

		// Checksum-row elimination first (reads pre-elimination A values).
		h.eliminateChecksums(k, pivot, rowK)

		// Data-row elimination.
		for i := k + 1; i < n; i++ {
			ri := h.A.Row(i)
			m := ri[k] / pivot
			ri[k] = m
			if m != 0 {
				for j := k + 1; j < n; j++ {
					ri[j] -= m * rowK[j]
				}
			}
			h.A.TouchRow(i, k, n-k, true)
			h.W.TouchRow(k, k, n-k, false)
			h.ops(&h.Ops.Compute, 2*(n-k))
		}
	}
	return nil
}

// eliminateChecksums advances every checksum slot through step k.
func (h *HPL) eliminateChecksums(k int, pivot float64, rowK []float64) {
	n := h.N
	for u := 0; u < n/2; u++ {
		i1 := (2*(u/h.NB))*h.NB + u%h.NB
		i2 := i1 + h.NB
		tr := h.T.Row(u)
		a1, a2 := i1 > k, i2 > k
		switch {
		case a1 && a2:
			// Both siblings eliminated this step: m_T = T[u][k]/pivot.
			mT := tr[k] / pivot
			tr[k] = mT
			if mT != 0 {
				for j := k + 1; j < n; j++ {
					tr[j] -= mT * rowK[j]
				}
			}
			h.T.TouchRow(u, k, n-k, true)
			h.W.TouchRow(k, k, n-k, false)
			h.ops(&h.Ops.Checksum, 2*(n-k))
		case a1 || a2:
			// One sibling active: apply its multiplier explicitly.
			act := i1
			if a2 {
				act = i2
			}
			m := h.A.At(act, k) / pivot
			// After data elimination, storage act row holds m at column k;
			// the other sibling's column-k entry is already final.
			tr[k] += m - h.A.At(act, k)
			if m != 0 {
				for j := k + 1; j < n; j++ {
					tr[j] -= m * rowK[j]
				}
			}
			h.A.TouchElem(act, k, false)
			h.T.TouchRow(u, k, n-k, true)
			h.W.TouchRow(k, k, n-k, false)
			h.ops(&h.Ops.Checksum, 2*(n-k))
		}
	}
}

// fixChecksumsAfterSwap re-derives the (at most two) checksum slots whose
// sibling pairs changed content in a pivot swap.
func (h *HPL) fixChecksumsAfterSwap(r, s int) {
	_, ur := h.sibling(r)
	_, us := h.sibling(s)
	h.recomputeSlot(ur)
	if us != ur {
		h.recomputeSlot(us)
	}
}

func (h *HPL) recomputeSlot(u int) {
	n := h.N
	i1 := (2*(u/h.NB))*h.NB + u%h.NB
	i2 := i1 + h.NB
	r1, r2, tr := h.A.Row(i1), h.A.Row(i2), h.T.Row(u)
	for j := 0; j < n; j++ {
		tr[j] = r1[j] + r2[j]
	}
	h.A.TouchRow(i1, 0, n, false)
	h.A.TouchRow(i2, 0, n, false)
	h.T.TouchRow(u, 0, n, true)
	h.ops(&h.Ops.Checksum, n)
}

// KillProcess zeroes every element owned by process (pr, pc) — the
// fail-stop event.
func (h *HPL) KillProcess(pr, pc int) {
	n := h.N
	for i := 0; i < n; i++ {
		if h.ownerPr(i) != pr {
			continue
		}
		row := h.A.Row(i)
		for j := 0; j < n; j++ {
			if h.ownerPc(j) == pc {
				row[j] = 0
			}
		}
	}
}

// RecoverFailStop rebuilds every element owned by the dead process from the
// checksum relationship: A[i][j] = T[u][j] − A[sibling][j].
func (h *HPL) RecoverFailStop(pr, pc int) error {
	n := h.N
	for i := 0; i < n; i++ {
		if h.ownerPr(i) != pr {
			continue
		}
		sib, u := h.sibling(i)
		row, sibRow, tr := h.A.Row(i), h.A.Row(sib), h.T.Row(u)
		for j := 0; j < n; j++ {
			if h.ownerPc(j) != pc {
				continue
			}
			row[j] = tr[j] - sibRow[j]
			h.Recovered++
		}
		h.A.TouchRow(i, 0, n, true)
		h.A.TouchRow(sib, 0, n, false)
		h.T.TouchRow(u, 0, n, false)
		h.ops(&h.Ops.Verify, n/2)
	}
	return nil
}

// VerifyEncoding confirms T matches the sibling sums (test/diagnostic
// sweep); it returns the worst absolute deviation.
func (h *HPL) VerifyEncoding() float64 {
	n := h.N
	worst := 0.0
	for u := 0; u < n/2; u++ {
		i1 := (2*(u/h.NB))*h.NB + u%h.NB
		i2 := i1 + h.NB
		r1, r2, tr := h.A.Row(i1), h.A.Row(i2), h.T.Row(u)
		for j := 0; j < n; j++ {
			if d := math.Abs(tr[j] - (r1[j] + r2[j])); d > worst {
				worst = d
			}
		}
		h.ops(&h.Ops.Verify, 2*n)
	}
	return worst
}

// Solve returns the solution of A·x = b using the in-place factors.
func (h *HPL) Solve() []float64 {
	x := mat.SolveLU(h.A.Matrix, h.piv, h.b.Data)
	h.ops(&h.Ops.Compute, 2*h.N*h.N)
	return x
}

// CheckResult factors a clean copy and compares solutions (test helper).
func (h *HPL) CheckResult(orig *mat.Matrix) error {
	lu := orig.Clone()
	piv, err := mat.LU(lu, nil)
	if err != nil {
		return err
	}
	want := mat.SolveLU(lu, piv, h.b.Data)
	got := h.Solve()
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-6 {
			return fmt.Errorf("abft: HPL solution diverges at %d: %g vs %g", i, got[i], want[i])
		}
	}
	return nil
}
