// Package abft implements the four algorithm-based fault tolerance kernels
// the paper evaluates (§2.1): FT-DGEMM and FT-Cholesky (checksum-encoded,
// fail-continue), FT-CG (invariant-checked, fail-continue), and FT-HPL
// (checksum-encoded across processes, fail-stop).
//
// Every kernel supports two verification modes: Full recomputes checksums or
// invariants periodically, and Notified replaces that sweep with a read of
// the error list the OS exposes after an ECC-error interrupt (§3.2.2) — the
// optimization behind Table 1. Kernels account their arithmetic in three
// buckets (base computation, checksum maintenance, verification) to
// reproduce the Figure 3 overhead breakdown, and report every element access
// through a trace.Memory so the machine simulator can time and meter them.
package abft

import (
	"errors"
	"fmt"

	"coopabft/internal/mat"
	"coopabft/internal/trace"
)

// ErrUncorrectable is returned when a kernel detects corruption its
// redundancy cannot repair (Case 3 of §4 from the algorithm's side).
var ErrUncorrectable = errors.New("abft: detected errors exceed ABFT correction capability")

// ErrBadSize is returned by kernel constructors when the problem dimensions
// cannot carry the checksum encoding (wrap it with the specifics).
var ErrBadSize = errors.New("abft: invalid problem size")

// VerifyMode selects how a kernel detects errors.
type VerifyMode int

const (
	// FullVerify recomputes checksums/invariants at every check period.
	FullVerify VerifyMode = iota
	// NotifiedVerify reads hardware-located corruption reports from the OS
	// instead (the cooperative optimization of §3.2.2). It only sees errors
	// the ECC hardware detected; the kernels fall back to a full check when
	// the caller requests it.
	NotifiedVerify
	// FusedVerify folds checksum derivation into the packed GEMM itself
	// (FT-BLAS-style online ABFT): operand checksums ride the panel
	// packing pass and output checksums the micro-kernel's register
	// writeback, so every panel boundary compares O(n) values without the
	// O(n²) re-read of C that FullVerify pays. Detection is online —
	// faults surface as typed PanelFault reports at the boundary after
	// the corrupting panel instead of at the end of a sweep. DGEMM-only;
	// kernels without a fused path treat it as FullVerify.
	FusedVerify
)

// String implements fmt.Stringer.
func (v VerifyMode) String() string {
	switch v {
	case NotifiedVerify:
		return "notified"
	case FusedVerify:
		return "fused"
	}
	return "full"
}

// ErrUnknownVerifyMode is returned by ParseVerifyMode for mode names that
// are not full/notified/fused.
var ErrUnknownVerifyMode = errors.New("abft: unknown verify mode")

// ParseVerifyMode maps a wire/CLI name to its VerifyMode.
func ParseVerifyMode(s string) (VerifyMode, error) {
	for _, v := range []VerifyMode{FullVerify, NotifiedVerify, FusedVerify} {
		if s == v.String() {
			return v, nil
		}
	}
	return 0, fmt.Errorf("%w: %q", ErrUnknownVerifyMode, s)
}

// Notification is one corrupted location reported by the OS (a drained
// osmodel.Corrupted, reduced to what kernels need).
type Notification struct {
	VirtAddr uint64 // line-aligned virtual address of the corruption
}

// Notifier drains pending corruption reports; wired to
// osmodel.OS.PendingCorruptions by package core. May be nil in standalone
// runs.
type Notifier func() []Notification

// OpCounters buckets a kernel's arithmetic for the Figure 3 breakdown.
type OpCounters struct {
	Compute  uint64 // the numerical algorithm itself
	Checksum uint64 // maintaining checksum rows/columns
	Verify   uint64 // periodic verification sweeps
}

// Total returns the sum of all buckets.
func (o OpCounters) Total() uint64 { return o.Compute + o.Checksum + o.Verify }

// OverheadFraction returns (checksum+verify)/total.
func (o OpCounters) OverheadFraction() float64 {
	t := o.Total()
	if t == 0 {
		return 0
	}
	return float64(o.Checksum+o.Verify) / float64(t)
}

// VerifyShareOfOverhead returns verify/(checksum+verify), Figure 3's split.
func (o OpCounters) VerifyShareOfOverhead() float64 {
	ov := o.Checksum + o.Verify
	if ov == 0 {
		return 0
	}
	return float64(o.Verify) / float64(ov)
}

// Correction records one repaired element.
type Correction struct {
	Structure string
	I, J      int
	Delta     float64 // the adjustment applied (new − corrupted)
}

// Env binds kernels to a platform: an instrumentation endpoint and an
// allocator that yields tagged virtual regions. Package core builds Envs
// over a machine; Standalone builds a pure-math Env.
type Env struct {
	Mem *trace.Memory
	// Alloc reserves n float64s. abft marks data protected by the
	// algorithm (candidates for relaxed ECC).
	Alloc func(name string, n int, abft bool) trace.Region
	// Notify drains OS corruption reports (nil when not on a machine).
	Notify Notifier
	// OnCorrected is called after ABFT repairs data so the platform can
	// clear residual fault state (nil-safe).
	OnCorrected func(virtAddr uint64)
}

// Standalone returns an Env with no simulator attached: allocations come
// from a private address space and accesses are not metered.
func Standalone() Env {
	sp := trace.NewSpace()
	return Env{
		Mem:   &trace.Memory{},
		Alloc: func(name string, n int, abft bool) trace.Region { return sp.AllocFloats(name, n, abft) },
	}
}

// corrected reports a repaired address (nil-safe).
func (e *Env) corrected(addr uint64) {
	if e.OnCorrected != nil {
		e.OnCorrected(addr)
	}
}

// Mat is a matrix bound to a tagged virtual region.
type Mat struct {
	*mat.Matrix
	Reg trace.Region
	mem *trace.Memory
}

// NewMat allocates an r×c matrix in the environment.
func (e *Env) NewMat(name string, r, c int, abft bool) Mat {
	return Mat{
		Matrix: mat.New(r, c),
		Reg:    e.Alloc(name, r*c, abft),
		mem:    e.Mem,
	}
}

// Addr returns the virtual address of element (i, j).
func (m Mat) Addr(i, j int) uint64 { return m.Reg.Base + uint64(i*m.Stride+j)*8 }

// ElemAt inverts Addr: which element contains the virtual address?
func (m Mat) ElemAt(addr uint64) (i, j int, ok bool) {
	if !m.Reg.Contains(addr) {
		return 0, 0, false
	}
	idx := int((addr - m.Reg.Base) / 8)
	i, j = idx/m.Stride, idx%m.Stride
	if i >= m.Rows || j >= m.Cols {
		return 0, 0, false
	}
	return i, j, true
}

// TouchRow reports an access to elements (i, j0..j0+n).
func (m Mat) TouchRow(i, j0, n int, write bool) {
	m.mem.TouchFloats(m.Reg, i*m.Stride+j0, n, write)
}

// TouchCol reports a column walk over elements (i0..i0+n, j).
func (m Mat) TouchCol(j, i0, n int, write bool) {
	m.mem.TouchStrided(m.Reg, i0*m.Stride+j, n, m.Stride, write)
}

// TouchElem reports a single-element access.
func (m Mat) TouchElem(i, j int, write bool) {
	m.mem.TouchFloats(m.Reg, i*m.Stride+j, 1, write)
}

// Vec is a vector bound to a tagged virtual region.
type Vec struct {
	Data []float64
	Reg  trace.Region
	mem  *trace.Memory
}

// NewVec allocates a length-n vector in the environment.
func (e *Env) NewVec(name string, n int, abft bool) Vec {
	return Vec{Data: make([]float64, n), Reg: e.Alloc(name, n, abft), mem: e.Mem}
}

// Addr returns the virtual address of element i.
func (v Vec) Addr(i int) uint64 { return v.Reg.Base + uint64(i)*8 }

// ElemAt inverts Addr.
func (v Vec) ElemAt(addr uint64) (int, bool) {
	if !v.Reg.Contains(addr) {
		return 0, false
	}
	i := int((addr - v.Reg.Base) / 8)
	if i >= len(v.Data) {
		return 0, false
	}
	return i, true
}

// Touch reports an access to elements [i0, i0+n).
func (v Vec) Touch(i0, n int, write bool) { v.mem.TouchFloats(v.Reg, i0, n, write) }

// String describes the counters.
func (o OpCounters) String() string {
	return fmt.Sprintf("ops{compute %d, checksum %d, verify %d, overhead %.1f%%}",
		o.Compute, o.Checksum, o.Verify, 100*o.OverheadFraction())
}
