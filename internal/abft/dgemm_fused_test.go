package abft

import (
	"errors"
	"math"
	"testing"

	"coopabft/internal/mat"
	"coopabft/internal/trace"
)

// fusedDGEMM builds a DGEMM in FusedVerify mode.
func fusedDGEMM(t *testing.T, env Env, n int, seed uint64) *DGEMM {
	t.Helper()
	d := mustDGEMM(t, env, n, seed)
	d.Mode = FusedVerify
	return d
}

// TestDGEMMFusedCleanRun: a fault-free fused run completes, passes the
// oracle, reports no faults, and produces exactly the bits of a full-mode
// run (the determinism contract crosses the verify-mode boundary).
func TestDGEMMFusedCleanRun(t *testing.T) {
	for _, n := range []int{16, 33, 48, 80} {
		full := mustDGEMM(t, Standalone(), n, 21)
		if err := full.Run(); err != nil {
			t.Fatal(err)
		}
		fused := fusedDGEMM(t, Standalone(), n, 21)
		if err := fused.Run(); err != nil {
			t.Fatalf("n=%d: fused run: %v", n, err)
		}
		if err := fused.CheckResult(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(fused.Faults) != 0 || len(fused.Corrections) != 0 {
			t.Errorf("n=%d: clean fused run reported faults=%v corrections=%v",
				n, fused.Faults, fused.Corrections)
		}
		for i := 0; i <= n; i++ {
			for j := 0; j <= n; j++ {
				if math.Float64bits(full.Cf.At(i, j)) != math.Float64bits(fused.Cf.At(i, j)) {
					t.Fatalf("n=%d: Cf[%d][%d] differs between full and fused mode: %v vs %v",
						n, i, j, full.Cf.At(i, j), fused.Cf.At(i, j))
				}
			}
		}
	}
}

// TestDGEMMFusedDetectsAndCorrectsMidRun: corruption injected between
// panels is caught online at the next panel boundary — not deferred to a
// final sweep — typed with the panel index, and repaired in place.
func TestDGEMMFusedDetectsAndCorrectsMidRun(t *testing.T) {
	d := fusedDGEMM(t, Standalone(), 64, 22)
	var want float64
	d.OnPanel = func(panel int) {
		if panel == 1 {
			// Strike after panel 0's boundary check passed. The stored value
			// is mid-accumulation; the corruption rides into the final value
			// through the kernel's C-seeded accumulators.
			want = d.Cf.At(10, 20)
			d.Cf.Set(10, 20, want+7.5)
		}
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	if err := d.CheckResult(); err != nil {
		t.Fatal(err)
	}
	if len(d.Faults) == 0 {
		t.Fatal("mid-run corruption produced no PanelFault")
	}
	if got := d.Faults[0].Panel; got != 1 {
		t.Errorf("fault detected at panel %d, want 1 (online, not end-of-run)", got)
	}
	seen := map[string]bool{}
	for _, f := range d.Faults {
		seen[f.Source] = true
	}
	if !seen[FaultResultRow] || !seen[FaultResultCol] {
		t.Errorf("faults %v missing result row/col reports", d.Faults)
	}
	if len(d.Corrections) != 1 || d.Corrections[0].I != 10 || d.Corrections[0].J != 20 {
		t.Errorf("corrections = %+v, want exactly (10,20)", d.Corrections)
	}
}

// TestDGEMMFusedCorrectsChecksumLineCorruption: corruption in Cf's own
// checksum row/column is located and repaired by the same algebra.
func TestDGEMMFusedCorrectsChecksumLineCorruption(t *testing.T) {
	d := fusedDGEMM(t, Standalone(), 48, 23)
	n := d.N
	d.OnPanel = func(panel int) {
		if panel == 1 {
			d.Cf.Set(n, 5, d.Cf.At(n, 5)-3.25)
		}
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	if err := d.CheckResult(); err != nil {
		t.Fatal(err)
	}
	if len(d.Corrections) == 0 {
		t.Error("checksum-row corruption was not corrected")
	}
}

// TestDGEMMFusedOperandCorruptionTypedError: corrupting an input operand is
// detected by the pack-time checksum, reported as a typed operand
// PanelFault, and aborts with ErrUncorrectable (inputs cannot be rebuilt
// from output checksums) — the ladder's restart trigger.
func TestDGEMMFusedOperandCorruptionTypedError(t *testing.T) {
	for _, src := range []string{FaultOperandA, FaultOperandB} {
		d := fusedDGEMM(t, Standalone(), 40, 24)
		d.OnPanel = func(panel int) {
			if panel == 1 {
				if src == FaultOperandA {
					d.Ac.Set(3, 35, d.Ac.At(3, 35)+11) // column 35 ∈ panel 1's k range
				} else {
					d.Br.Set(35, 6, d.Br.At(35, 6)+11)
				}
			}
		}
		err := d.Run()
		if !errors.Is(err, ErrUncorrectable) {
			t.Fatalf("%s: err = %v, want ErrUncorrectable", src, err)
		}
		if len(d.Faults) != 1 || d.Faults[0].Source != src || d.Faults[0].Panel != 1 {
			t.Errorf("%s: faults = %+v, want one panel-1 %s fault", src, d.Faults, src)
		}
	}
}

// TestDGEMMFusedTrafficBelowFull: the fused check must replace VerifyFull's
// O(n²)-per-check re-read of Cf with O(n) traffic. Measured with a trace
// counter: total line touches in fused mode must undercut full mode by at
// least the verification sweep's volume.
func TestDGEMMFusedTrafficBelowFull(t *testing.T) {
	countRun := func(mode VerifyMode) uint64 {
		sp := trace.NewSpace()
		ctr := trace.NewCounter(sp)
		env := Env{
			Mem:   &trace.Memory{Probe: ctr.Probe},
			Alloc: func(name string, n int, abft bool) trace.Region { return sp.AllocFloats(name, n, abft) },
		}
		d := mustDGEMM(t, env, 64, 25)
		d.Mode = mode
		if err := d.Run(); err != nil {
			t.Fatal(err)
		}
		return ctr.ABFTRefs + ctr.OtherRefs
	}
	full := countRun(FullVerify)
	fused := countRun(FusedVerify)
	// Each of the 2 panels' VerifyFull sweeps re-reads all of Cf twice
	// (~2·(n+1)²/8 lines); the fused check reads ~O(n) lines. Require at
	// least half that sweep volume back to keep the bound robust.
	n := 64
	panels := 2
	sweep := uint64(panels * (n + 1) * (n + 1) / 8)
	if fused+sweep/2 > full {
		t.Errorf("fused traffic %d not below full traffic %d by >= %d lines", fused, full, sweep/2)
	}
}

// TestDGEMMFusedRunFromResumes: the checkpoint/restart entry point must
// work in fused mode — resuming mid-run replays the remaining panels with
// online checks and still passes the oracle.
func TestDGEMMFusedRunFromResumes(t *testing.T) {
	d := fusedDGEMM(t, Standalone(), 64, 26)
	// Run panels [0, 1) then stop by snapshotting; replay from panel 1.
	stop := errors.New("stop")
	d.OnPanel = func(panel int) {
		if panel == 1 {
			panic(stop)
		}
	}
	func() {
		defer func() {
			if r := recover(); r != stop {
				panic(r)
			}
		}()
		_ = d.Run()
	}()
	d.OnPanel = nil
	if err := d.RunFrom(1); err != nil {
		t.Fatal(err)
	}
	if err := d.CheckResult(); err != nil {
		t.Fatal(err)
	}
}

// TestDGEMMFusedCheckPeriod: with CheckPeriod > 1 only boundary panels run
// the fused check, and corruption landing in an unchecked span is still
// caught at the next checked boundary (final-value sums witness history).
func TestDGEMMFusedCheckPeriod(t *testing.T) {
	d := fusedDGEMM(t, Standalone(), 96, 27)
	d.CheckPeriod = 3
	d.OnPanel = func(panel int) {
		if panel == 1 { // panels 0,1 are unchecked; boundary check after panel 2
			d.Cf.Set(40, 41, d.Cf.At(40, 41)+4.5)
		}
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	if err := d.CheckResult(); err != nil {
		t.Fatal(err)
	}
	if len(d.Faults) == 0 || d.Faults[0].Panel != 2 {
		t.Fatalf("faults = %+v, want detection at the panel-2 boundary", d.Faults)
	}
}

// TestDGEMMFusedMatchesMatSums is a cross-layer pin: the DGEMM fused panel
// must feed mat.MulAddIntoFused views whose checksums match a direct sweep,
// guarding the view-offset plumbing between the layers.
func TestDGEMMFusedMatchesMatSums(t *testing.T) {
	n := 32
	d := fusedDGEMM(t, Standalone(), n, 28)
	d.Block = n // single panel
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	// Recompute what the kernel accumulated for the lone panel.
	fs := &mat.FusedSums{
		RowSums: make([]float64, n+1),
		ColSums: make([]float64, n+1),
	}
	c := mat.New(n+1, n+1)
	mat.MulAddIntoFused(c, d.Ac.View(0, 0, n+1, n), d.Br.View(0, 0, n, n+1), fs)
	for i := 0; i <= n; i++ {
		if math.Abs(fs.RowSums[i]-2*d.Cf.At(i, n)) > d.Tol {
			t.Fatalf("row sum %d inconsistent with encoded checksum", i)
		}
	}
}
