package abft

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"coopabft/internal/mat"
)

// The fused-vs-two-pass bench gate. Opt-in via FUSED_BENCH=1 (it is a
// wall-clock measurement, not a correctness test): it times unprotected
// GEMM, two-pass (FullVerify) DGEMM, and fused (FusedVerify) DGEMM — clean
// and with a seeded mid-run fault each — and fails if the fused faulted
// throughput regresses below the two-pass faulted throughput. With
// FUSED_BENCH_OUT set, the table is written as machine-readable JSON
// (BENCH_fused.json). FUSED_BENCH_N overrides the problem size (default
// 256 for the CI smoke; the committed baseline uses 1024).

// FusedBenchCell is one measured configuration.
type FusedBenchCell struct {
	Name   string  `json:"name"`
	Millis float64 `json:"ms"`
	GFLOPS float64 `json:"gflops"`
	// OverheadPct is the slowdown vs the unprotected cell, in percent.
	OverheadPct float64 `json:"overhead_pct"`
}

// FusedBenchReport is the BENCH_fused.json schema.
type FusedBenchReport struct {
	Bench       string           `json:"bench"`
	N           int              `json:"n"`
	Block       int              `json:"block"`
	CheckPeriod int              `json:"check_period"`
	Parallelism int              `json:"parallelism"`
	When        string           `json:"when"`
	Cells       []FusedBenchCell `json:"cells"`
}

func TestFusedVsTwoPassGate(t *testing.T) {
	if os.Getenv("FUSED_BENCH") == "" {
		t.Skip("set FUSED_BENCH=1 to run the fused-vs-two-pass wall-clock gate")
	}
	n := 256
	if s := os.Getenv("FUSED_BENCH_N"); s != "" {
		if _, err := fmt.Sscanf(s, "%d", &n); err != nil || n < 64 {
			t.Fatalf("bad FUSED_BENCH_N %q", s)
		}
	}
	old := mat.SetParallelism(1) // serial: stable numbers on small CI hosts
	defer mat.SetParallelism(old)

	// Interval checking at rank-256 panels: the blocking the fused kernel
	// amortizes its fold over (and the granularity a production run would
	// use). Small CI sizes halve it so a mid-run panel still exists.
	block := 256
	if n < 2*block {
		block = n / 2
	}

	// Cells are sampled interleaved (round-robin, several rounds) and each
	// cell reports its minimum sample: on a shared 1-CPU host the noise is
	// one-sided (preemption only adds time), so min-of-N converges on the
	// true cost, and interleaving keeps a slow period from biasing one
	// cell the way a measure-each-cell-in-turn loop would.
	const rounds = 6
	flops := 2 * float64(n) * float64(n) * float64(n)

	newDGEMM := func(mode VerifyMode, faulted bool) *DGEMM {
		d := mustDGEMM(t, Standalone(), n, 404)
		d.Mode = mode
		d.Block = block
		if faulted {
			mid := d.Panels() / 2
			d.OnPanel = func(panel int) {
				if panel == mid {
					d.Cf.Set(n/2, n/3, d.Cf.At(n/2, n/3)+13.5)
				}
			}
		}
		return d
	}
	runDGEMM := func(mode VerifyMode, faulted bool) func() {
		d := newDGEMM(mode, faulted)
		return func() {
			d.Corrections = d.Corrections[:0]
			d.Faults = d.Faults[:0]
			if err := d.Run(); err != nil {
				t.Fatalf("%v faulted=%v: %v", mode, faulted, err)
			}
			if faulted && len(d.Corrections) == 0 {
				t.Fatalf("%v: injected fault was not corrected", mode)
			}
		}
	}

	a := mat.Random(n, n, 404)
	b := mat.Random(n, n, 405)
	c := mat.New(n, n)
	runners := []struct {
		name string
		fn   func()
	}{
		{"unprotected", func() { mat.MulAddInto(c, a, b) }},
		{"two_pass_clean", runDGEMM(FullVerify, false)},
		{"two_pass_faulted", runDGEMM(FullVerify, true)},
		{"fused_clean", runDGEMM(FusedVerify, false)},
		{"fused_faulted", runDGEMM(FusedVerify, true)},
	}
	best := make([]time.Duration, len(runners))
	for i, r := range runners {
		r.fn() // warm pools and page in operands
		best[i] = 1<<63 - 1
	}
	for round := 0; round < rounds; round++ {
		for i, r := range runners {
			t0 := time.Now()
			r.fn()
			if d := time.Since(t0); d < best[i] {
				best[i] = d
			}
		}
	}
	cells := make([]FusedBenchCell, len(runners))
	for i, r := range runners {
		ms := float64(best[i]) / float64(time.Millisecond)
		cells[i] = FusedBenchCell{Name: r.name, Millis: ms, GFLOPS: flops / (ms * 1e6)}
	}
	base := cells[0].Millis
	for i := range cells {
		cells[i].OverheadPct = 100 * (cells[i].Millis - base) / base
		t.Logf("%-18s %8.2f ms  %6.2f GFLOP/s  overhead %+6.2f%%",
			cells[i].Name, cells[i].Millis, cells[i].GFLOPS, cells[i].OverheadPct)
	}

	if out := os.Getenv("FUSED_BENCH_OUT"); out != "" {
		rep := FusedBenchReport{
			Bench:       "fused_vs_two_pass_dgemm",
			N:           n,
			Block:       block,
			CheckPeriod: 1,
			Parallelism: 1,
			When:        time.Now().UTC().Format(time.RFC3339),
			Cells:       cells,
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", out)
	}

	// The gate: online fused detection must beat the two-pass sweep under
	// fault injection (2% allowance for shared-host timer noise).
	twoPass, fused := cells[2], cells[4]
	if fused.GFLOPS < 0.98*twoPass.GFLOPS {
		t.Errorf("fused faulted GFLOP/s %.2f regressed below two-pass faulted %.2f",
			fused.GFLOPS, twoPass.GFLOPS)
	}
}

// BenchmarkDGEMMVerifyMode is the always-on (bench-smoke visible) version:
// one clean run per verify mode at n=192.
func BenchmarkDGEMMVerifyMode(b *testing.B) {
	n := 192
	flops := 2 * float64(n) * float64(n) * float64(n)
	for _, mode := range []VerifyMode{FullVerify, FusedVerify} {
		b.Run(mode.String(), func(b *testing.B) {
			d, err := NewDGEMM(Standalone(), n, 7)
			if err != nil {
				b.Fatal(err)
			}
			d.Mode = mode
			for i := 0; i < b.N; i++ {
				if err := d.Run(); err != nil {
					b.Fatal(err)
				}
			}
			sec := b.Elapsed().Seconds()
			if sec > 0 {
				b.ReportMetric(flops*float64(b.N)/sec/1e9, "GFLOP/s")
			}
		})
	}
}
