package faultmodel

import (
	"math"
	"testing"
	"testing/quick"

	"coopabft/internal/ecc"
)

func TestMTTFScalesInversely(t *testing.T) {
	base := MTTF(5000, 8000, 1, 1)
	if MTTF(5000, 8000, 1, 2) != base/2 {
		t.Error("MTTF should halve with double the nodes")
	}
	if MTTF(10000, 8000, 1, 1) != base/2 {
		t.Error("MTTF should halve with double the FIT rate")
	}
	if MTTF(5000, 16000, 1, 1) != base/2 {
		t.Error("MTTF should halve with double the capacity")
	}
	if MTTF(5000, 8000, 2, 1) != base/2 {
		t.Error("MTTF should halve with doubled aging")
	}
	if !math.IsInf(MTTF(0, 8000, 1, 1), 1) {
		t.Error("zero rate should give infinite MTTF")
	}
}

func TestMTTFValuesSane(t *testing.T) {
	// 8 GB node, no ECC, 5000 FIT/Mbit: 64000 Mbit·5000 FIT = 3.2e8
	// failures/1e9h → MTTF ≈ 3.125 h.
	got := MTTF(5000, 64000, 1, 1)
	want := 3.125 * 3600
	if math.Abs(got-want)/want > 1e-9 {
		t.Errorf("MTTF = %v s, want %v s", got, want)
	}
}

func TestMTTFHeteroBetweenExtremes(t *testing.T) {
	whole := func(s ecc.Scheme) float64 {
		return MTTFHetero([]RegionSpec{{CapacityMbit: 64000, Scheme: s}}, 1)
	}
	mixed := MTTFHetero([]RegionSpec{
		{CapacityMbit: 32000, Scheme: ecc.Chipkill},
		{CapacityMbit: 32000, Scheme: ecc.None},
	}, 1)
	if !(whole(ecc.None) < mixed && mixed < whole(ecc.Chipkill)) {
		t.Errorf("hetero MTTF %v not between %v and %v",
			mixed, whole(ecc.None), whole(ecc.Chipkill))
	}
}

func TestMTTFHeteroMatchesHomogeneousLimit(t *testing.T) {
	h := MTTFHetero([]RegionSpec{{CapacityMbit: 64000, Scheme: ecc.SECDED}}, 4)
	m := MTTF(ecc.SECDED.FITPerMbit(), 64000, 1, 4)
	if math.Abs(h-m)/m > 1e-12 {
		t.Errorf("hetero single-region %v != homogeneous %v", h, m)
	}
}

func TestExpectedErrorsEquation4(t *testing.T) {
	// T0=1000s, tau=0.1, MTTF=100s → Ne = 11.
	if got := ExpectedErrors(1000, 0.1, 100); math.Abs(got-11) > 1e-12 {
		t.Errorf("Ne = %v", got)
	}
	if ExpectedErrors(1000, 0, math.Inf(1)) != 0 {
		t.Error("infinite MTTF should give zero errors")
	}
}

func TestRecoveryCostEquation5(t *testing.T) {
	// Ne = 11 errors × 2s each = 22s.
	if got := RecoveryCost(1000, 0.1, 100, 2); math.Abs(got-22) > 1e-12 {
		t.Errorf("Te = %v", got)
	}
}

func TestBenefitEquation6(t *testing.T) {
	if got := Benefit(1000, 0.3, 0.1); math.Abs(got-200) > 1e-12 {
		t.Errorf("benefit = %v", got)
	}
	if Benefit(1000, 0.1, 0.3) >= 0 {
		t.Error("negative benefit expected when ARE is slower")
	}
}

func TestThresholdEquation7ConsistentWithEquations5and6(t *testing.T) {
	// At MTTF exactly the threshold, recovery cost equals benefit.
	tc, tauASE, tauARE := 2.0, 0.3, 0.1
	thr := MTTFThresholdPerf(tc, tauASE, tauARE)
	t0 := 5000.0
	cost := RecoveryCost(t0, tauARE, thr, tc)
	benefit := Benefit(t0, tauASE, tauARE)
	if math.Abs(cost-benefit)/benefit > 1e-12 {
		t.Errorf("at threshold: cost %v != benefit %v", cost, benefit)
	}
	// Above the threshold (larger MTTF), benefit wins.
	if RecoveryCost(t0, tauARE, thr*2, tc) >= benefit {
		t.Error("above-threshold MTTF should favor ARE")
	}
	if !math.IsInf(MTTFThresholdPerf(tc, 0.1, 0.1), 1) {
		t.Error("equal taus should give infinite threshold")
	}
}

func TestThresholdEquation8(t *testing.T) {
	if MTTFThreshold(5, 9) != 9 || MTTFThreshold(9, 5) != 9 {
		t.Error("Equation 8 must take the max")
	}
	en := MTTFThresholdEnergy(100, 50, 30, 0.1)
	if math.Abs(en-5.5) > 1e-12 {
		t.Errorf("energy threshold = %v, want 5.5", en)
	}
	if !math.IsInf(MTTFThresholdEnergy(100, 30, 50, 0.1), 1) {
		t.Error("no energy saving → infinite threshold")
	}
}

func TestClassifyCases(t *testing.T) {
	if Classify(true, true) != CaseBothCorrect ||
		Classify(false, true) != CaseABFTOnly ||
		Classify(true, false) != CaseECCOnly ||
		Classify(false, false) != CaseNeither {
		t.Error("Classify wrong")
	}
	if CaseBothCorrect.String() != "case1-both-correct" || CaseNeither.String() != "case4-neither" {
		t.Error("Case strings wrong")
	}
}

func TestCompareCaseSemantics(t *testing.T) {
	const tcABFT, tcECC, ckpt = 10.0, 1e-9, 1000.0
	// Case 1: ASE much cheaper per error.
	o := CompareCase(CaseBothCorrect, tcABFT, tcECC, ckpt, false)
	if o.ARECost != tcABFT || o.ASECost != tcECC {
		t.Errorf("case1 = %+v", o)
	}
	// Case 2 crash scenario: ASE pays a restart.
	o = CompareCase(CaseABFTOnly, tcABFT, tcECC, ckpt, false)
	if o.ASECost != ckpt || o.ARECost != tcABFT {
		t.Errorf("case2 = %+v", o)
	}
	// Case 2 exposed scenario: equal recovery cost.
	o = CompareCase(CaseABFTOnly, tcABFT, tcECC, ckpt, true)
	if o.ASECost != tcABFT {
		t.Errorf("case2-exposed = %+v", o)
	}
	// Case 3: ARE pays the restart.
	o = CompareCase(CaseECCOnly, tcABFT, tcECC, ckpt, false)
	if o.ARECost != ckpt || o.ASECost != tcECC {
		t.Errorf("case3 = %+v", o)
	}
	// Case 4: both restart.
	o = CompareCase(CaseNeither, tcABFT, tcECC, ckpt, false)
	if o.ARECost != ckpt || o.ASECost != ckpt {
		t.Errorf("case4 = %+v", o)
	}
}

// Property: MTTFHetero is monotone — strengthening any region's scheme
// never lowers the MTTF.
func TestHeteroMonotoneProperty(t *testing.T) {
	f := func(capA, capB uint16) bool {
		a, b := float64(capA%10000)+1, float64(capB%10000)+1
		weak := MTTFHetero([]RegionSpec{
			{CapacityMbit: a, Scheme: ecc.None},
			{CapacityMbit: b, Scheme: ecc.SECDED},
		}, 1)
		strong := MTTFHetero([]RegionSpec{
			{CapacityMbit: a, Scheme: ecc.SECDED},
			{CapacityMbit: b, Scheme: ecc.SECDED},
		}, 1)
		return strong >= weak
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
