// Package faultmodel implements the analytical fault models of §4: the
// MTTF equations (2)–(4) for homogeneous and heterogeneous ECC protection,
// the recovery-cost and benefit relations (5)–(6), the MTTF thresholds
// (7)–(8) that decide when ARE (ABFT plus relaxed ECC) beats ASE (ABFT plus
// strong ECC), and the error-scenario classification (Cases 1–4).
package faultmodel

import (
	"fmt"
	"math"

	"coopabft/internal/ecc"
)

// FITPerMbit re-exports Table 5 (failures per 10⁹ hours per Mbit).
func FITPerMbit(s ecc.Scheme) float64 { return s.FITPerMbit() }

// failureRatePerSecondPerMbit converts a FIT rate to failures/s/Mbit.
func failureRatePerSecondPerMbit(fit float64) float64 {
	return fit / 1e9 / 3600
}

// MTTF implements Equation (2): mean time to failure in seconds for N
// nodes, each with memCapacityMbit of memory at the given FIT rate, scaled
// by the age function f(A) (1 = nominal).
func MTTF(fitPerMbit, memCapacityMbit, ageFactor float64, nodes int) float64 {
	r := failureRatePerSecondPerMbit(fitPerMbit) * memCapacityMbit * ageFactor * float64(nodes)
	if r == 0 {
		return math.Inf(1)
	}
	return 1 / r
}

// RegionSpec describes one memory region with its own ECC protection — a
// term of Equation (3)'s sum.
type RegionSpec struct {
	CapacityMbit float64
	Scheme       ecc.Scheme
	AgeFactor    float64 // fᵢ(A); 1 = nominal
}

// MTTFHetero implements Equation (3): MTTF for a node whose memory is split
// across regions with heterogeneous ECC.
func MTTFHetero(regions []RegionSpec, nodes int) float64 {
	sum := 0.0
	for _, r := range regions {
		age := r.AgeFactor
		if age == 0 {
			age = 1
		}
		sum += failureRatePerSecondPerMbit(r.Scheme.FITPerMbit()) * r.CapacityMbit * age
	}
	sum *= float64(nodes)
	if sum == 0 {
		return math.Inf(1)
	}
	return 1 / sum
}

// ExpectedErrors implements Equation (4): N_e = T₀·(1+τ)/MTTF_hetero, the
// number of main-memory errors over a run of native duration t0Seconds with
// ECC performance-impact ratio tau.
func ExpectedErrors(t0Seconds, tau, mttfHetero float64) float64 {
	if math.IsInf(mttfHetero, 1) {
		return 0
	}
	return t0Seconds * (1 + tau) / mttfHetero
}

// RecoveryCost implements Equation (5): T_e = N_e·t_c, the worst-case
// performance loss with one recovery per error, each costing tcSeconds.
func RecoveryCost(t0Seconds, tauARE, mttfHetero, tcSeconds float64) float64 {
	return ExpectedErrors(t0Seconds, tauARE, mttfHetero) * tcSeconds
}

// Benefit implements Equation (6): ΔT = T₀·(τ_ase − τ_are), the performance
// benefit of relaxed ECC in error-free execution.
func Benefit(t0Seconds, tauASE, tauARE float64) float64 {
	return t0Seconds * (tauASE - tauARE)
}

// MTTFThresholdPerf implements Equation (7): the MTTF above which ARE's
// recovery cost stays below its performance benefit,
// MTTF_thr = t_c·(1+τ_are)/(τ_ase − τ_are).
func MTTFThresholdPerf(tcSeconds, tauASE, tauARE float64) float64 {
	d := tauASE - tauARE
	if d <= 0 {
		return math.Inf(1)
	}
	return tcSeconds * (1 + tauARE) / d
}

// MTTFThresholdEnergy is the energy analogue of Equation (7): recovery
// energy per error ecJoules against per-time energy saving rate
// (pASE − pARE watts), yielding the MTTF above which ARE saves energy.
func MTTFThresholdEnergy(ecJoules, pASEWatts, pAREWatts, tauARE float64) float64 {
	d := pASEWatts - pAREWatts
	if d <= 0 {
		return math.Inf(1)
	}
	return ecJoules * (1 + tauARE) / d
}

// MTTFThreshold implements Equation (8): the combined threshold
// MAX(MTTF_thr_t, MTTF_thr_en).
func MTTFThreshold(perf, energy float64) float64 { return math.Max(perf, energy) }

// Case is the §4 error-scenario classification.
type Case int

const (
	// CaseBothCorrect — Case 1: both strong ECC and ABFT can correct.
	CaseBothCorrect Case = iota + 1
	// CaseABFTOnly — Case 2: ABFT corrects what strong ECC cannot.
	CaseABFTOnly
	// CaseECCOnly — Case 3: strong ECC corrects what ABFT cannot.
	CaseECCOnly
	// CaseNeither — Case 4: only checkpoint/restart remains.
	CaseNeither
)

// String implements fmt.Stringer.
func (c Case) String() string {
	switch c {
	case CaseBothCorrect:
		return "case1-both-correct"
	case CaseABFTOnly:
		return "case2-abft-only"
	case CaseECCOnly:
		return "case3-ecc-only"
	case CaseNeither:
		return "case4-neither"
	default:
		return fmt.Sprintf("Case(%d)", int(c))
	}
}

// Classify determines the §4 case from the two capabilities.
func Classify(strongECCCorrects, abftCorrects bool) Case {
	switch {
	case strongECCCorrects && abftCorrects:
		return CaseBothCorrect
	case abftCorrects:
		return CaseABFTOnly
	case strongECCCorrects:
		return CaseECCOnly
	default:
		return CaseNeither
	}
}

// Outcome compares ARE and ASE for one error instance of a given case,
// returning the additional cost each side pays (seconds), following the §4
// discussion. checkpointRestart is the cost of falling back to a restart.
type Outcome struct {
	Case    Case
	ARECost float64
	ASECost float64
}

// CompareCase evaluates one error under both configurations.
//
//	tcABFT          cost of one ABFT recovery
//	tcECC           cost of one hardware correction (≈ nanoseconds)
//	checkpointCost  cost of a restart from the last checkpoint
//	exposedToABFT   whether, under ASE, the uncorrectable error is exposed
//	                to the application (Case 2's second scenario)
func CompareCase(c Case, tcABFT, tcECC, checkpointCost float64, exposedToABFT bool) Outcome {
	o := Outcome{Case: c}
	switch c {
	case CaseBothCorrect:
		// ARE corrects with ABFT (expensive), ASE with ECC (cheap).
		o.ARECost = tcABFT
		o.ASECost = tcECC
	case CaseABFTOnly:
		o.ARECost = tcABFT
		if exposedToABFT {
			o.ASECost = tcABFT
		} else {
			o.ASECost = checkpointCost // system crash → restart
		}
	case CaseECCOnly:
		o.ARECost = checkpointCost
		o.ASECost = tcECC
	case CaseNeither:
		o.ARECost = checkpointCost
		o.ASECost = checkpointCost
	}
	return o
}
