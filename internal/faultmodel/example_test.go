package faultmodel_test

import (
	"fmt"

	"coopabft/internal/ecc"
	"coopabft/internal/faultmodel"
)

// The §4 decision pipeline: from FIT rates to "should I relax ECC?".
func Example() {
	// A node with 8 GB (64000 Mbit) of ABFT-protected data under no ECC.
	mttf := faultmodel.MTTF(ecc.None.FITPerMbit(), 64000, 1, 1)
	fmt.Printf("node MTTF: %.1f hours\n", mttf/3600)

	// One ABFT recovery costs 0.5 s; strong ECC slows the app by 12%,
	// relaxed by 1%. Equation (7): the MTTF above which relaxing wins.
	thr := faultmodel.MTTFThresholdPerf(0.5, 0.12, 0.01)
	fmt.Printf("threshold: %.2f s\n", thr)
	fmt.Printf("relax ECC: %v\n", mttf > thr)
	// Output:
	// node MTTF: 3.1 hours
	// threshold: 4.59 s
	// relax ECC: true
}

// Classifying one error event into the §4 cases.
func ExampleClassify() {
	// A chip failure: chipkill corrects it, and so would ABFT.
	fmt.Println(faultmodel.Classify(true, true))
	// Two scattered symbols: beyond chipkill, within ABFT.
	fmt.Println(faultmodel.Classify(false, true))
	// Output:
	// case1-both-correct
	// case2-abft-only
}
