package experiments

import (
	"context"
	"io"

	"coopabft/internal/recovery/soak"
)

func init() {
	rowsExperiment("soak", soakRun, RenderSoak)
}

// soakRun executes the trimmed chaos-soak grid (see internal/recovery/soak):
// seed-deterministic fault campaigns through the §4 recovery ladder, with
// every run classified corrected/restarted/aborted.
func soakRun(ctx context.Context, rc runConfig) (*soak.Result, error) {
	cfg := soak.Short()
	cfg.Seed = rc.o.Seed
	cfg.Workers = rc.o.Workers
	return soak.Run(ctx, cfg)
}

// RenderSoak writes the deterministic outcome table.
func RenderSoak(w io.Writer, r *soak.Result) {
	io.WriteString(w, r.Table())
}
