package experiments

import (
	"context"
	"fmt"
	"io"

	"coopabft/internal/core"
	"coopabft/internal/ecc"
)

// Table4Row is one row of Table 4: LLC misses classified by whether the
// target block is ABFT-protected.
type Table4Row struct {
	Kernel    KernelID
	RefsABFT  uint64
	RefsOther uint64
	Ratio     float64
}

// table4Run profiles LLC misses for each kernel (the classification is
// scheme-independent; W_CK is used as in the paper's default).
func table4Run(ctx context.Context, rc runConfig) ([]Table4Row, error) {
	res, err := basicCached(ctx, rc)
	if err != nil {
		return nil, err
	}
	out := make([]Table4Row, 0, len(AllKernels))
	for _, k := range AllKernels {
		r := res[k][core.WholeChipkill]
		row := Table4Row{Kernel: k, RefsABFT: r.LLCMissABFT, RefsOther: r.LLCMissOther}
		if row.RefsOther > 0 {
			row.Ratio = float64(row.RefsABFT) / float64(row.RefsOther)
		}
		out = append(out, row)
	}
	return out, nil
}

// Table4Ctx computes the Table 4 LLC-miss classification.
func Table4Ctx(ctx context.Context, o Options) ([]Table4Row, error) {
	return table4Run(ctx, runConfig{o: o})
}

// RenderTable4 writes Table 4 as text.
func RenderTable4(w io.Writer, rows []Table4Row) {
	header(w, "Table 4: LLC misses by ABFT protection", []string{"w/ ABFT", "w/o ABFT", "ratio"})
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s%14d%14d%14.1f\n", r.Kernel, r.RefsABFT, r.RefsOther, r.Ratio)
	}
}

// RenderTable3 prints the simulated system parameters (Table 3).
func RenderTable3(w io.Writer, o Options) {
	cfg := o.machineConfig()
	fmt.Fprintf(w, "\n== Table 3: system parameters ==\n")
	fmt.Fprintf(w, "Processor        4 in-order cores, 4 threads/core (modeled as one stream)\n")
	fmt.Fprintf(w, "Clock rate       %.0f GHz\n", cfg.CPU.ClockHz/1e9)
	fmt.Fprintf(w, "L1 cache         %d KB, %d-way, 64B blocks\n", cfg.L1.SizeBytes>>10, cfg.L1.Ways)
	fmt.Fprintf(w, "L2 cache         %d KB, %d-way, 64B blocks (scaled 1/%d of 8MB)\n",
		cfg.L2.SizeBytes>>10, cfg.L2.Ways, o.L2Divisor)
	fmt.Fprintf(w, "Memory           %d channels, %d DIMMs/chan, %d ranks/DIMM, %d banks/rank, open page\n",
		cfg.DRAM.Channels, cfg.DRAM.DIMMsPerChan, cfg.DRAM.RanksPerDIMM, cfg.DRAM.BanksPerRank)
	fmt.Fprintf(w, "Chipkill         128b data+16b ECC, 2 lock-stepped channels (36 x4 chips)\n")
	fmt.Fprintf(w, "SECDED           64b data+8b ECC, 1 channel (18 x4 chips)\n")
	fmt.Fprintf(w, "Workloads        FT-DGEMM %d², FT-Cholesky %d², FT-CG %dx%d grid, FT-HPL %d² (scaled from 3000²/8192²)\n",
		o.DGEMMN, o.CholN, o.CGX, o.CGY, o.HPLN)
}

// RenderTable5 prints the FIT-rate inputs (Table 5).
func RenderTable5(w io.Writer) {
	header(w, "Table 5: error rate with ECC in place", []string{"FIT/Mbit"})
	for _, s := range []ecc.Scheme{ecc.None, ecc.SECDED, ecc.Chipkill} {
		fmt.Fprintf(w, "%-14s%14g\n", s, s.FITPerMbit())
	}
}
