// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) from the simulator: Figure 3 (ABFT overhead breakdown),
// Table 1 (simplified verification), Table 3 (system parameters), Table 4
// (LLC-miss classification), Figures 5–7 (memory energy, system energy and
// performance under the six ECC strategies), Table 5 (FIT rates), Figures
// 8–9 (weak/strong scaling of energy benefit vs recovery cost) and Figure
// 10 (comparison with DGMS). Each experiment returns a typed result plus a
// text rendering with the same rows/series the paper reports.
//
// Every evaluation entry point is exposed twice: as a registered
// Experiment (see registry.go) dispatched by name with context,
// functional options and parallel fan-out through the campaign engine,
// and as the original Fig*/Table* functions, kept as thin deprecated
// wrappers.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"

	"coopabft/internal/abft"
	"coopabft/internal/campaign"
	"coopabft/internal/core"
	"coopabft/internal/machine"
	"coopabft/internal/scaling"
)

// Typed errors returned by the Experiment API instead of panics or
// zero-value results.
var (
	// ErrUnknownKernel reports a KernelID outside the four workloads.
	ErrUnknownKernel = errors.New("experiments: unknown kernel")
	// ErrBadConfig reports invalid Options; the wrapping error names the
	// offending field.
	ErrBadConfig = errors.New("experiments: bad config")
	// ErrUnknownExperiment reports a Lookup of an unregistered name.
	ErrUnknownExperiment = errors.New("experiments: unknown experiment")
)

// KernelID selects one of the four ABFT workloads.
type KernelID int

const (
	// KDGEMM is FT-DGEMM.
	KDGEMM KernelID = iota
	// KCholesky is FT-Cholesky.
	KCholesky
	// KCG is FT-Pred-CG.
	KCG
	// KHPL is FT-HPL.
	KHPL
)

// AllKernels lists the workloads in the paper's order.
var AllKernels = []KernelID{KDGEMM, KCholesky, KCG, KHPL}

// String returns the paper's label.
func (k KernelID) String() string {
	switch k {
	case KDGEMM:
		return "FT-DGEMM"
	case KCholesky:
		return "FT-Cholesky"
	case KCG:
		return "FT-CG"
	case KHPL:
		return "FT-HPL"
	default:
		return "?"
	}
}

// Options sizes the workloads. The paper simulates 3000²/8192² matrices;
// these run scaled-down problems on a proportionally scaled L2 (see
// DESIGN.md) so the working-set-to-cache ratios are preserved. Options is
// comparable (no slices, no funcs) because the sweep cache keys on it.
type Options struct {
	DGEMMN     int
	CholN      int
	CGX, CGY   int
	CGIters    int
	HPLN       int
	HPLNB      int
	L2Divisor  int
	Seed       uint64
	ScalingCfg scaling.Config

	// Workers sizes the campaign engine's worker pool for the parallel
	// fan-outs; 0 selects runtime.NumCPU(). It never affects results —
	// per-cell seeding keeps parallel output bit-identical to serial.
	Workers int
	// CaseTrials is the Monte-Carlo budget per (scheme, family) cell of
	// the §4 case-frequency study.
	CaseTrials int
	// CapTrials is the trial budget per (kernel, error-count) cell of the
	// capability curves.
	CapTrials int
}

// Default returns the paperfigs/bench configuration.
func Default() Options {
	o := Options{
		DGEMMN: 224, CholN: 224,
		CGX: 96, CGY: 96, CGIters: 20,
		HPLN: 160, HPLNB: 8,
		L2Divisor:  32,
		Seed:       42,
		CaseTrials: 20000,
		CapTrials:  20,
	}
	o.ScalingCfg = scaling.DefaultConfig()
	o.ScalingCfg.GridX, o.ScalingCfg.GridY = 96, 96
	o.ScalingCfg.Iterations = 16
	return o
}

// Small returns a fast configuration for unit tests.
func Small() Options {
	o := Default()
	o.DGEMMN, o.CholN = 48, 64
	o.CGX, o.CGY, o.CGIters = 24, 24, 8
	o.HPLN, o.HPLNB = 32, 4
	o.ScalingCfg.GridX, o.ScalingCfg.GridY = 24, 24
	o.ScalingCfg.Iterations = 8
	o.CaseTrials = 5000
	o.CapTrials = 10
	return o
}

// Validate checks the option invariants; violations wrap ErrBadConfig.
func (o Options) Validate() error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s", ErrBadConfig, fmt.Sprintf(format, args...))
	}
	if o.DGEMMN <= 0 || o.CholN <= 0 || o.HPLN <= 0 || o.HPLNB <= 0 {
		return fail("matrix sizes must be positive (DGEMM %d, Chol %d, HPL %d/%d)",
			o.DGEMMN, o.CholN, o.HPLN, o.HPLNB)
	}
	if o.HPLN%o.HPLNB != 0 {
		return fail("HPL N=%d must be a multiple of NB=%d", o.HPLN, o.HPLNB)
	}
	if o.CGX <= 0 || o.CGY <= 0 || o.CGIters <= 0 {
		return fail("CG grid %dx%d and iterations %d must be positive", o.CGX, o.CGY, o.CGIters)
	}
	if o.L2Divisor < 1 {
		return fail("L2 divisor %d must be >= 1", o.L2Divisor)
	}
	if o.Workers < 0 {
		return fail("workers %d must be >= 0", o.Workers)
	}
	if o.CaseTrials <= 0 || o.CapTrials <= 0 {
		return fail("trial budgets must be positive (cases %d, capability %d)", o.CaseTrials, o.CapTrials)
	}
	if err := o.machineConfig().Validate(); err != nil {
		return fail("machine: %v", err)
	}
	return nil
}

func (o Options) machineConfig() machine.Config {
	return machine.ScaledConfig(o.L2Divisor)
}

// engine builds the campaign engine an Options-driven fan-out runs on.
func (o Options) engine(progress campaign.ProgressFunc) *campaign.Engine {
	return campaign.New(campaign.WithWorkers(o.Workers), campaign.WithProgress(progress))
}

// runConfig couples the science options with per-run engine knobs that
// must not live in Options (Options is a cache key and stays comparable).
type runConfig struct {
	o        Options
	progress campaign.ProgressFunc
}

func (rc runConfig) engine() *campaign.Engine { return rc.o.engine(rc.progress) }

// Option is a functional option for the Experiment API.
type Option func(*runConfig) error

// NewOptions applies functional options over the Default configuration
// and validates the result.
func NewOptions(opts ...Option) (Options, error) {
	rc, err := newRunConfig(opts...)
	return rc.o, err
}

func newRunConfig(opts ...Option) (runConfig, error) {
	rc := runConfig{o: Default()}
	for _, opt := range opts {
		if opt == nil {
			continue
		}
		if err := opt(&rc); err != nil {
			return rc, err
		}
	}
	return rc, rc.o.Validate()
}

// WithOptions replaces the whole base configuration (e.g. a pre-built
// Small() or a previous NewOptions result).
func WithOptions(o Options) Option {
	return func(rc *runConfig) error { rc.o = o; return nil }
}

// WithSmall switches to the fast test-scale configuration.
func WithSmall() Option {
	return func(rc *runConfig) error {
		workers := rc.o.Workers
		rc.o = Small()
		rc.o.Workers = workers
		return nil
	}
}

// WithSeed sets the campaign seed every cell seed derives from.
func WithSeed(seed uint64) Option {
	return func(rc *runConfig) error {
		rc.o.Seed = seed
		rc.o.ScalingCfg.Seed = seed
		return nil
	}
}

// WithWorkers sizes the worker pool (0 = runtime.NumCPU()).
func WithWorkers(n int) Option {
	return func(rc *runConfig) error { rc.o.Workers = n; return nil }
}

// WithMatrixSize sets the dense-kernel edge (DGEMM, Cholesky and HPL; HPL
// is rounded down to its block size).
func WithMatrixSize(n int) Option {
	return func(rc *runConfig) error {
		rc.o.DGEMMN, rc.o.CholN = n, n
		if rc.o.HPLNB > 0 {
			rc.o.HPLN = n - n%rc.o.HPLNB
		}
		return nil
	}
}

// WithCGGrid sets the CG 5-point-stencil grid.
func WithCGGrid(x, y int) Option {
	return func(rc *runConfig) error {
		rc.o.CGX, rc.o.CGY = x, y
		rc.o.ScalingCfg.GridX, rc.o.ScalingCfg.GridY = x, y
		return nil
	}
}

// WithCGIters sets the fixed CG iteration count.
func WithCGIters(iters int) Option {
	return func(rc *runConfig) error { rc.o.CGIters = iters; return nil }
}

// WithL2Divisor sets the node scaling divisor (see machine.ScaledConfig).
func WithL2Divisor(d int) Option {
	return func(rc *runConfig) error { rc.o.L2Divisor = d; return nil }
}

// WithCaseTrials sets the Monte-Carlo budget of the §4 case study.
func WithCaseTrials(n int) Option {
	return func(rc *runConfig) error { rc.o.CaseTrials = n; return nil }
}

// WithCapabilityTrials sets the per-cell trial budget of the capability
// curves.
func WithCapabilityTrials(n int) Option {
	return func(rc *runConfig) error { rc.o.CapTrials = n; return nil }
}

// WithProgress installs a live progress callback (e.g.
// campaign.StderrProgress) on the run's campaign engine.
func WithProgress(f campaign.ProgressFunc) Option {
	return func(rc *runConfig) error { rc.progress = f; return nil }
}

// RunKernelCtx executes one workload under one ECC strategy on a fresh
// simulated node and returns the platform metrics. The run derives all
// randomness from o.Seed and shares no state with concurrent cells, so it
// is safe to fan out through the campaign engine.
func RunKernelCtx(ctx context.Context, o Options, k KernelID, s core.Strategy, mode abft.VerifyMode) (machine.Result, error) {
	if err := ctx.Err(); err != nil {
		return machine.Result{}, err
	}
	rt := core.NewRuntime(o.machineConfig(), s, int64(o.Seed))
	switch k {
	case KDGEMM:
		d, err := rt.NewDGEMM(o.DGEMMN, o.Seed)
		if err != nil {
			return machine.Result{}, fmt.Errorf("experiments: DGEMM: %w", err)
		}
		d.Mode = mode
		if err := d.Run(); err != nil {
			return machine.Result{}, fmt.Errorf("experiments: DGEMM: %w", err)
		}
	case KCholesky:
		c := rt.NewCholesky(o.CholN, o.Seed)
		c.Mode = mode
		if err := c.Run(); err != nil {
			return machine.Result{}, fmt.Errorf("experiments: Cholesky: %w", err)
		}
	case KCG:
		c := rt.NewCG(o.CGX, o.CGY, o.Seed)
		c.Mode = mode
		c.MaxIter = o.CGIters
		c.RelTol = 0
		c.CheckPeriod = 4
		if _, err := c.Run(); err != nil {
			return machine.Result{}, fmt.Errorf("experiments: CG: %w", err)
		}
	case KHPL:
		h, err := rt.NewHPL(o.HPLN, o.HPLNB, o.Seed)
		if err != nil {
			return machine.Result{}, fmt.Errorf("experiments: HPL: %w", err)
		}
		if err := h.Run(); err != nil {
			return machine.Result{}, fmt.Errorf("experiments: HPL: %w", err)
		}
	default:
		return machine.Result{}, fmt.Errorf("%w: KernelID(%d)", ErrUnknownKernel, int(k))
	}
	return rt.Finish(), nil
}

// BasicResults holds the §5.1 sweep: every kernel under every strategy.
type BasicResults map[KernelID]map[core.Strategy]machine.Result

var (
	basicMu    sync.Mutex
	basicCache = map[Options]BasicResults{}
)

// basicCell is one unit of the §5.1 fan-out.
type basicCell struct {
	k KernelID
	s core.Strategy
}

// basicRun executes the full sweep through the campaign engine, one cell
// per (kernel, strategy). Cells are independently seeded from o.Seed, so
// the assembled map is identical for any worker count.
func basicRun(ctx context.Context, rc runConfig) (BasicResults, error) {
	cells := make([]basicCell, 0, len(AllKernels)*len(core.Strategies))
	for _, k := range AllKernels {
		for _, s := range core.Strategies {
			cells = append(cells, basicCell{k, s})
		}
	}
	res, _, err := campaign.Map(ctx, rc.engine(), len(cells),
		func(ctx context.Context, i int) (machine.Result, error) {
			return RunKernelCtx(ctx, rc.o, cells[i].k, cells[i].s, abft.FullVerify)
		})
	if err != nil {
		return nil, err
	}
	out := BasicResults{}
	for i, c := range cells {
		if out[c.k] == nil {
			out[c.k] = map[core.Strategy]machine.Result{}
		}
		out[c.k][c.s] = res[i]
	}
	return out, nil
}

// basicCached memoizes the sweep per science configuration (Workers is
// scheduling, not science: it is zeroed out of the cache key).
func basicCached(ctx context.Context, rc runConfig) (BasicResults, error) {
	key := rc.o
	key.Workers = 0
	basicMu.Lock()
	r, ok := basicCache[key]
	basicMu.Unlock()
	if ok {
		return r, nil
	}
	out, err := basicRun(ctx, rc)
	if err != nil {
		return nil, err
	}
	basicMu.Lock()
	basicCache[key] = out
	basicMu.Unlock()
	return out, nil
}

// BasicCtx runs (once per Options, cached) the full §5.1 sweep through
// the campaign engine.
func BasicCtx(ctx context.Context, o Options) (BasicResults, error) {
	return basicCached(ctx, runConfig{o: o})
}

// header writes a row of column labels.
func header(w io.Writer, title string, cols []string) {
	fmt.Fprintf(w, "\n== %s ==\n%-14s", title, "")
	for _, c := range cols {
		fmt.Fprintf(w, "%14s", c)
	}
	fmt.Fprintln(w)
}
