// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) from the simulator: Figure 3 (ABFT overhead breakdown),
// Table 1 (simplified verification), Table 3 (system parameters), Table 4
// (LLC-miss classification), Figures 5–7 (memory energy, system energy and
// performance under the six ECC strategies), Table 5 (FIT rates), Figures
// 8–9 (weak/strong scaling of energy benefit vs recovery cost) and Figure
// 10 (comparison with DGMS). Each experiment returns a typed result plus a
// text rendering with the same rows/series the paper reports.
package experiments

import (
	"fmt"
	"io"
	"sync"

	"coopabft/internal/abft"
	"coopabft/internal/core"
	"coopabft/internal/machine"
	"coopabft/internal/scaling"
)

// KernelID selects one of the four ABFT workloads.
type KernelID int

const (
	// KDGEMM is FT-DGEMM.
	KDGEMM KernelID = iota
	// KCholesky is FT-Cholesky.
	KCholesky
	// KCG is FT-Pred-CG.
	KCG
	// KHPL is FT-HPL.
	KHPL
)

// AllKernels lists the workloads in the paper's order.
var AllKernels = []KernelID{KDGEMM, KCholesky, KCG, KHPL}

// String returns the paper's label.
func (k KernelID) String() string {
	switch k {
	case KDGEMM:
		return "FT-DGEMM"
	case KCholesky:
		return "FT-Cholesky"
	case KCG:
		return "FT-CG"
	case KHPL:
		return "FT-HPL"
	default:
		return "?"
	}
}

// Options sizes the workloads. The paper simulates 3000²/8192² matrices;
// these run scaled-down problems on a proportionally scaled L2 (see
// DESIGN.md) so the working-set-to-cache ratios are preserved.
type Options struct {
	DGEMMN     int
	CholN      int
	CGX, CGY   int
	CGIters    int
	HPLN       int
	HPLNB      int
	L2Divisor  int
	Seed       uint64
	ScalingCfg scaling.Config
}

// Default returns the paperfigs/bench configuration.
func Default() Options {
	o := Options{
		DGEMMN: 224, CholN: 224,
		CGX: 96, CGY: 96, CGIters: 20,
		HPLN: 160, HPLNB: 8,
		L2Divisor: 32,
		Seed:      42,
	}
	o.ScalingCfg = scaling.DefaultConfig()
	o.ScalingCfg.GridX, o.ScalingCfg.GridY = 96, 96
	o.ScalingCfg.Iterations = 16
	return o
}

// Small returns a fast configuration for unit tests.
func Small() Options {
	o := Default()
	o.DGEMMN, o.CholN = 48, 64
	o.CGX, o.CGY, o.CGIters = 24, 24, 8
	o.HPLN, o.HPLNB = 32, 4
	o.ScalingCfg.GridX, o.ScalingCfg.GridY = 24, 24
	o.ScalingCfg.Iterations = 8
	return o
}

func (o Options) machineConfig() machine.Config {
	return machine.ScaledConfig(o.L2Divisor)
}

// RunKernel executes one workload under one ECC strategy on a fresh
// simulated node and returns the platform metrics.
func RunKernel(o Options, k KernelID, s core.Strategy, mode abft.VerifyMode) machine.Result {
	rt := core.NewRuntime(o.machineConfig(), s, int64(o.Seed))
	switch k {
	case KDGEMM:
		d := rt.NewDGEMM(o.DGEMMN, o.Seed)
		d.Mode = mode
		if err := d.Run(); err != nil {
			panic(fmt.Sprintf("experiments: DGEMM: %v", err))
		}
	case KCholesky:
		c := rt.NewCholesky(o.CholN, o.Seed)
		c.Mode = mode
		if err := c.Run(); err != nil {
			panic(fmt.Sprintf("experiments: Cholesky: %v", err))
		}
	case KCG:
		c := rt.NewCG(o.CGX, o.CGY, o.Seed)
		c.Mode = mode
		c.MaxIter = o.CGIters
		c.RelTol = 0
		c.CheckPeriod = 4
		if _, err := c.Run(); err != nil {
			panic(fmt.Sprintf("experiments: CG: %v", err))
		}
	case KHPL:
		h := rt.NewHPL(o.HPLN, o.HPLNB, o.Seed)
		if err := h.Run(); err != nil {
			panic(fmt.Sprintf("experiments: HPL: %v", err))
		}
	}
	return rt.Finish()
}

// BasicResults holds the §5.1 sweep: every kernel under every strategy.
type BasicResults map[KernelID]map[core.Strategy]machine.Result

var (
	basicMu    sync.Mutex
	basicCache = map[Options]BasicResults{}
)

// Basic runs (once per Options, cached) the full §5.1 sweep.
func Basic(o Options) BasicResults {
	basicMu.Lock()
	defer basicMu.Unlock()
	if r, ok := basicCache[o]; ok {
		return r
	}
	out := BasicResults{}
	for _, k := range AllKernels {
		out[k] = map[core.Strategy]machine.Result{}
		for _, s := range core.Strategies {
			out[k][s] = RunKernel(o, k, s, abft.FullVerify)
		}
	}
	basicCache[o] = out
	return out
}

// header writes a row of column labels.
func header(w io.Writer, title string, cols []string) {
	fmt.Fprintf(w, "\n== %s ==\n%-14s", title, "")
	for _, c := range cols {
		fmt.Fprintf(w, "%14s", c)
	}
	fmt.Fprintln(w)
}
