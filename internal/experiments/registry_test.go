package experiments

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"coopabft/internal/campaign"
	"coopabft/internal/core"
	"coopabft/internal/ecc"
	"coopabft/internal/machine"
	"coopabft/internal/resilience"
)

// smallCfg returns a runConfig at test scale with the given worker count.
func smallCfg(t *testing.T, workers int, extra ...Option) runConfig {
	t.Helper()
	opts := append([]Option{WithSmall(), WithWorkers(workers)}, extra...)
	rc, err := newRunConfig(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return rc
}

// TestRegistryNamesResolve checks every registered name round-trips through
// Lookup and reports itself correctly.
func TestRegistryNamesResolve(t *testing.T) {
	names := Names()
	if len(names) < 12 {
		t.Fatalf("registry has only %d experiments: %v", len(names), names)
	}
	for _, name := range names {
		e, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if e.Name() != name {
			t.Errorf("Lookup(%q).Name() = %q", name, e.Name())
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	_, err := Lookup("fig99")
	if !errors.Is(err, ErrUnknownExperiment) {
		t.Fatalf("err = %v, want ErrUnknownExperiment", err)
	}
}

// TestExperimentRunAndRender executes two cheap registered experiments end
// to end through the interface.
func TestExperimentRunAndRender(t *testing.T) {
	for _, name := range []string{"table3", "table5"} {
		e, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(context.Background(), WithSmall())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Experiment != name {
			t.Errorf("Result.Experiment = %q, want %q", res.Experiment, name)
		}
		var b bytes.Buffer
		res.Render(&b)
		if b.Len() == 0 {
			t.Errorf("%s rendered nothing", name)
		}
	}
}

func TestOptionValidation(t *testing.T) {
	if _, err := NewOptions(WithMatrixSize(-4)); !errors.Is(err, ErrBadConfig) {
		t.Errorf("negative matrix size: err = %v, want ErrBadConfig", err)
	}
	if _, err := NewOptions(WithWorkers(-1)); !errors.Is(err, ErrBadConfig) {
		t.Errorf("negative workers: err = %v, want ErrBadConfig", err)
	}
	if _, err := NewOptions(WithL2Divisor(0)); !errors.Is(err, ErrBadConfig) {
		t.Errorf("zero L2 divisor: err = %v, want ErrBadConfig", err)
	}
	o, err := NewOptions(WithSmall(), WithSeed(7), WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	if o.Seed != 7 || o.ScalingCfg.Seed != 7 || o.Workers != 3 {
		t.Errorf("options not applied: %+v", o)
	}
}

func TestRunKernelCtxUnknownKernel(t *testing.T) {
	_, err := RunKernelCtx(context.Background(), Small(), KernelID(99), core.NoECC, 0)
	if !errors.Is(err, ErrUnknownKernel) {
		t.Fatalf("err = %v, want ErrUnknownKernel", err)
	}
}

// --- Determinism: workers=1 and workers=N must be bit-identical ---

// TestBasicSweepDeterministic covers the RunKernel fan-out family (the
// substrate of fig3/table1/table4/fig5/6/7/10). basicRun is called directly
// to bypass the result cache.
func TestBasicSweepDeterministic(t *testing.T) {
	serial, err := basicRun(context.Background(), smallCfg(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := basicRun(context.Background(), smallCfg(t, 8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Error("basic sweep differs between 1 and 8 workers")
	}
}

// TestScalingDeterministic covers the fig9 strong-scaling fan-out.
func TestScalingDeterministic(t *testing.T) {
	serial, err := fig9Run(context.Background(), smallCfg(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := fig9Run(context.Background(), smallCfg(t, 8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Error("fig9 differs between 1 and 8 workers")
	}
}

// TestCasesDeterministic covers the resilience Monte-Carlo family.
func TestCasesDeterministic(t *testing.T) {
	run := func(workers int) resilience.Outcome {
		eng := campaign.New(campaign.WithWorkers(workers))
		o, err := resilience.RunCampaignCtx(context.Background(), ecc.Chipkill, resilience.Burst64, 500, 21, eng)
		if err != nil {
			t.Fatal(err)
		}
		return o
	}
	if a, b := run(1), run(8); a != b {
		t.Errorf("resilience campaign differs: %+v vs %+v", a, b)
	}
}

// TestCapabilityDeterministic covers the capability-curve trial fan-out.
func TestCapabilityDeterministic(t *testing.T) {
	run := func(workers int) []resilience.CapabilityPoint {
		eng := campaign.New(campaign.WithWorkers(workers))
		pts, err := resilience.CapabilityCurveCtx(context.Background(),
			resilience.KernelDGEMM, 16, []int{1, 4}, 6, 5, eng)
		if err != nil {
			t.Fatal(err)
		}
		return pts
	}
	if a, b := run(1), run(8); !reflect.DeepEqual(a, b) {
		t.Errorf("capability curve differs: %+v vs %+v", a, b)
	}
}

// TestThresholdDeterministic covers the threshold-study sweep points.
func TestThresholdDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("threshold sweep is slow under -short")
	}
	errs := []int{0, 8}
	serial, err := thresholdStudyRun(context.Background(), smallCfg(t, 1), errs)
	if err != nil {
		t.Fatal(err)
	}
	par, err := thresholdStudyRun(context.Background(), smallCfg(t, 8), errs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Error("threshold study differs between 1 and 8 workers")
	}
}

// --- Cancellation ---

// TestCampaignCancellation checks a cancelled campaign returns promptly
// with a partial-result error that unwraps to context.Canceled.
func TestCampaignCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := basicRun(ctx, smallCfg(t, 2))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	var pe *campaign.PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *campaign.PartialError", err)
	}
	if pe.Done >= pe.Total {
		t.Errorf("cancelled campaign claims completion: %d/%d", pe.Done, pe.Total)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("cancelled campaign took %v to return", elapsed)
	}
}

// TestExperimentCancellation checks cancellation propagates through the
// registry interface.
func TestExperimentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e, err := Lookup("fig3")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(ctx, WithSmall()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestProgressReporting checks the metrics callback fires and converges on
// the cell count.
func TestProgressReporting(t *testing.T) {
	var last campaign.Metrics
	rc := smallCfg(t, 2, WithProgress(func(m campaign.Metrics) { last = m }))
	if _, err := fig3Run(context.Background(), rc); err != nil {
		t.Fatal(err)
	}
	if last.Done != last.Cells || last.Cells == 0 {
		t.Errorf("final metrics incomplete: %+v", last)
	}
}

// TestWorkersExcludedFromCache checks the result cache treats runs that
// differ only in worker count as the same experiment.
func TestWorkersExcludedFromCache(t *testing.T) {
	a, err := basicCached(context.Background(), smallCfg(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := basicCached(context.Background(), smallCfg(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	if !machineResultsSame(a, b) {
		t.Error("cache returned different results for different worker counts")
	}
}

func machineResultsSame(a, b BasicResults) bool {
	if len(a) != len(b) {
		return false
	}
	for k, sa := range a {
		sb, ok := b[k]
		if !ok || len(sa) != len(sb) {
			return false
		}
		for s, ra := range sa {
			if rb, ok := sb[s]; !ok || !reflect.DeepEqual(ra, rb) {
				return false
			}
		}
	}
	return true
}

func TestMachineConfigOptions(t *testing.T) {
	if _, err := machine.NewConfig(machine.WithClockHz(-1)); !errors.Is(err, machine.ErrBadConfig) {
		t.Errorf("negative clock: err = %v, want machine.ErrBadConfig", err)
	}
	c, err := machine.NewConfig(machine.WithL2Divisor(32))
	if err != nil {
		t.Fatal(err)
	}
	if want := machine.ScaledConfig(32); c != want {
		t.Errorf("NewConfig(WithL2Divisor(32)) = %+v, want ScaledConfig(32)", c)
	}
}
