package experiments

import (
	"context"
	"fmt"
	"io"

	"coopabft/internal/core"
)

// StrategyMetrics is one bar of Figures 5–7: a kernel under a strategy,
// normalized to the same kernel's No_ECC run.
type StrategyMetrics struct {
	Kernel   KernelID
	Strategy core.Strategy

	MemDynNorm     float64 // dynamic memory energy / No_ECC
	MemStandbyNorm float64
	MemTotalNorm   float64
	ProcNorm       float64
	SystemNorm     float64
	IPCNorm        float64
}

// fig567Run computes the §5.1 basic tests: every kernel under the six ECC
// strategies, normalized to No_ECC — the data behind Figures 5 (memory
// energy), 6 (system energy) and 7 (performance). The 24-cell sweep runs
// through the campaign engine (and is shared, via the sweep cache, with
// Table 4 and the headline comparisons).
func fig567Run(ctx context.Context, rc runConfig) ([]StrategyMetrics, error) {
	res, err := basicCached(ctx, rc)
	if err != nil {
		return nil, err
	}
	var out []StrategyMetrics
	for _, k := range AllKernels {
		baseline := res[k][core.NoECC]
		for _, s := range core.Strategies {
			r := res[k][s]
			m := StrategyMetrics{Kernel: k, Strategy: s}
			if baseline.MemDynamicJ > 0 {
				m.MemDynNorm = r.MemDynamicJ / baseline.MemDynamicJ
			}
			if baseline.MemStandbyJ > 0 {
				m.MemStandbyNorm = r.MemStandbyJ / baseline.MemStandbyJ
			}
			if t := baseline.MemEnergyJ(); t > 0 {
				m.MemTotalNorm = r.MemEnergyJ() / t
			}
			if baseline.ProcEnergyJ > 0 {
				m.ProcNorm = r.ProcEnergyJ / baseline.ProcEnergyJ
			}
			if baseline.SystemEnergyJ > 0 {
				m.SystemNorm = r.SystemEnergyJ / baseline.SystemEnergyJ
			}
			if baseline.IPC > 0 {
				m.IPCNorm = r.IPC / baseline.IPC
			}
			out = append(out, m)
		}
	}
	return out, nil
}

// Fig567Ctx computes the normalized §5.1 sweep rows.
func Fig567Ctx(ctx context.Context, o Options) ([]StrategyMetrics, error) {
	return fig567Run(ctx, runConfig{o: o})
}

// RenderFig5 writes the memory-energy figure.
func RenderFig5(w io.Writer, rows []StrategyMetrics) {
	header(w, "Figure 5: memory energy normalized to No_ECC", []string{"strategy", "dynamic", "standby", "total"})
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s%14s%14.3f%14.3f%14.3f\n",
			r.Kernel, r.Strategy, r.MemDynNorm, r.MemStandbyNorm, r.MemTotalNorm)
	}
}

// RenderFig6 writes the system-energy figure.
func RenderFig6(w io.Writer, rows []StrategyMetrics) {
	header(w, "Figure 6: system energy normalized to No_ECC", []string{"strategy", "memory", "processor", "system"})
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s%14s%14.3f%14.3f%14.3f\n",
			r.Kernel, r.Strategy, r.MemTotalNorm, r.ProcNorm, r.SystemNorm)
	}
}

// RenderFig7 writes the performance figure.
func RenderFig7(w io.Writer, rows []StrategyMetrics) {
	header(w, "Figure 7: performance (IPC) normalized to No_ECC", []string{"strategy", "IPC ratio"})
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s%14s%14.3f\n", r.Kernel, r.Strategy, r.IPCNorm)
	}
}

// Headline extracts the comparisons the §5.1 text calls out, for
// EXPERIMENTS.md and regression checks.
type Headline struct {
	// CGWholeChipkillMemIncrease is "for FT-CG ... 68% increase in memory
	// energy" (W_CK vs No_ECC).
	CGWholeChipkillMemIncrease float64
	// PartialVsWholeChipkillSaving[k] is tests 3 vs 2 memory-energy saving.
	PartialVsWholeChipkillSaving map[KernelID]float64
	// SystemSavingPartialChipkill[k] is Figure 6's headline savings.
	SystemSavingPartialChipkill map[KernelID]float64
	// WholeSECDEDAvgMemIncrease is "about 12% more energy in average".
	WholeSECDEDAvgMemIncrease float64
}

// headlinesRun computes the quoted percentages from the sweep.
func headlinesRun(ctx context.Context, rc runConfig) (Headline, error) {
	res, err := basicCached(ctx, rc)
	if err != nil {
		return Headline{}, err
	}
	h := Headline{
		PartialVsWholeChipkillSaving: map[KernelID]float64{},
		SystemSavingPartialChipkill:  map[KernelID]float64{},
	}
	cg := res[KCG]
	h.CGWholeChipkillMemIncrease = cg[core.WholeChipkill].MemEnergyJ()/cg[core.NoECC].MemEnergyJ() - 1

	sdSum := 0.0
	for _, k := range AllKernels {
		wck := res[k][core.WholeChipkill]
		pck := res[k][core.PartialChipkillNoECC]
		h.PartialVsWholeChipkillSaving[k] = 1 - pck.MemEnergyJ()/wck.MemEnergyJ()
		h.SystemSavingPartialChipkill[k] = 1 - pck.SystemEnergyJ/wck.SystemEnergyJ
		sdSum += res[k][core.WholeSECDED].MemEnergyJ()/res[k][core.NoECC].MemEnergyJ() - 1
	}
	h.WholeSECDEDAvgMemIncrease = sdSum / float64(len(AllKernels))
	return h, nil
}

// HeadlinesCtx computes the quoted §5.1 percentages from the sweep.
func HeadlinesCtx(ctx context.Context, o Options) (Headline, error) {
	return headlinesRun(ctx, runConfig{o: o})
}

// RenderHeadlines writes the §5.1 headline comparisons.
func RenderHeadlines(w io.Writer, h Headline) {
	fmt.Fprintf(w, "\n-- §5.1 headline comparisons --\n")
	fmt.Fprintf(w, "FT-CG memory-energy increase under whole chipkill: %.0f%% (paper: 68%%)\n",
		100*h.CGWholeChipkillMemIncrease)
	fmt.Fprintf(w, "Whole-SECDED average memory-energy increase: %.0f%% (paper: ~12%%)\n",
		100*h.WholeSECDEDAvgMemIncrease)
	for _, k := range AllKernels {
		fmt.Fprintf(w, "%-12s partial-vs-whole chipkill: memory −%.0f%%, system −%.0f%%\n",
			k, 100*h.PartialVsWholeChipkillSaving[k], 100*h.SystemSavingPartialChipkill[k])
	}
}
