package experiments

import (
	"context"
	"testing"
)

// The must* helpers run the Ctx experiment entry points and fail the test on
// error, keeping table-driven assertions free of error plumbing.

func mustBasic(t testing.TB, o Options) BasicResults {
	t.Helper()
	r, err := BasicCtx(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func mustFig3(t testing.TB, o Options) []OverheadBreakdown {
	t.Helper()
	rows, err := Fig3Ctx(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func mustTable1(t testing.TB, o Options) []Table1Row {
	t.Helper()
	rows, err := Table1Ctx(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func mustTable4(t testing.TB, o Options) []Table4Row {
	t.Helper()
	rows, err := Table4Ctx(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func mustFig567(t testing.TB, o Options) []StrategyMetrics {
	t.Helper()
	rows, err := Fig567Ctx(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func mustHeadlines(t testing.TB, o Options) Headline {
	t.Helper()
	h, err := HeadlinesCtx(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func mustFig8(t testing.TB, o Options) []ScalingSeries {
	t.Helper()
	s, err := Fig8Ctx(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustFig9(t testing.TB, o Options) []ScalingSeries {
	t.Helper()
	s, err := Fig9Ctx(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustFig10(t testing.TB, o Options) []Fig10Row {
	t.Helper()
	rows, err := Fig10Ctx(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func mustThreshold(t testing.TB, o Options, errorCounts []int) []ThresholdPoint {
	t.Helper()
	pts, err := ThresholdStudyCtx(context.Background(), o, errorCounts)
	if err != nil {
		t.Fatal(err)
	}
	return pts
}
