package experiments

import (
	"context"
	"fmt"
	"io"

	"coopabft/internal/bifit"
	"coopabft/internal/campaign"
	"coopabft/internal/core"
	"coopabft/internal/machine"
)

// ThresholdPoint is one sample of the empirical ARE-vs-ASE comparison: the
// same FT-CG run under both configurations with `Errors` Case-1 errors
// injected. Under ASE (whole chipkill) the hardware corrects each error at
// negligible cost; under ARE (chipkill relaxed to nothing on ABFT data)
// every error costs an ABFT recovery. Sweeping the error count measures the
// crossover that Equation (7) predicts analytically.
type ThresholdPoint struct {
	Errors        int
	AREEnergyJ    float64
	ASEEnergyJ    float64
	ARESeconds    float64
	ASESeconds    float64
	ARERecoveries int
}

// DefaultThresholdErrors is the swept error-count axis.
var DefaultThresholdErrors = []int{0, 4, 16, 64, 256, 1024}

// thresholdStudyRun runs the sweep. Errors are single-bit flips in FT-CG's
// residual vector — correctable by both chipkill and ABFT (§4 Case 1).
// Each (error count, configuration) pair is an independent engine cell:
// the injection-site stream is a pure function of (o.Seed, error index),
// so the sweep is bit-identical at any worker count.
func thresholdStudyRun(ctx context.Context, rc runConfig, errorCounts []int) ([]ThresholdPoint, error) {
	type half struct {
		res machine.Result
		rec int
	}
	halves, _, err := campaign.Map(ctx, rc.engine(), 2*len(errorCounts),
		func(ctx context.Context, i int) (half, error) {
			if err := ctx.Err(); err != nil {
				return half{}, err
			}
			n := errorCounts[i/2]
			s := core.PartialChipkillNoECC // ARE half
			if i%2 == 1 {
				s = core.WholeChipkill // ASE half
			}
			res, rec, err := thresholdRun(rc.o, s, n)
			return half{res, rec}, err
		})
	if err != nil {
		return nil, err
	}
	out := make([]ThresholdPoint, 0, len(errorCounts))
	for i, n := range errorCounts {
		are, ase := halves[2*i], halves[2*i+1]
		out = append(out, ThresholdPoint{
			Errors:        n,
			AREEnergyJ:    are.res.SystemEnergyJ,
			ASEEnergyJ:    ase.res.SystemEnergyJ,
			ARESeconds:    are.res.Seconds,
			ASESeconds:    ase.res.Seconds,
			ARERecoveries: are.rec,
		})
	}
	return out, nil
}

// ThresholdStudyCtx runs the ARE-vs-ASE sweep over the given error counts.
func ThresholdStudyCtx(ctx context.Context, o Options, errorCounts []int) ([]ThresholdPoint, error) {
	return thresholdStudyRun(ctx, runConfig{o: o}, errorCounts)
}

// thresholdRun executes FT-CG with n injected errors under a strategy.
func thresholdRun(o Options, s core.Strategy, n int) (res machine.Result, recoveries int, err error) {
	rt := core.NewRuntime(o.machineConfig(), s, int64(o.Seed))
	cg := rt.NewCG(o.CGX, o.CGY, o.Seed)
	cg.MaxIter = o.CGIters
	cg.RelTol = 0
	cg.CheckPeriod = 1 // examine every iteration: one recovery per error

	r, _ := cg.VecFor("r")
	tgt := bifit.Target{Data: r.Data, Reg: r.Reg}
	// Spread n injections evenly over the iterations (several per
	// iteration when n exceeds the iteration count). The site stream is a
	// pure function of (o.Seed, j): no shared RNG state.
	perIter := make([][]int, o.CGIters)
	for j := 0; j < n; j++ {
		it := j % o.CGIters
		elem := int(campaign.Splitmix64(uint64(j)*2654435761+o.Seed) % uint64(len(r.Data)))
		perIter[it] = append(perIter[it], elem)
	}
	hw := s == core.WholeChipkill
	var injectErr error
	cg.OnIteration = func(iter int) {
		if injectErr != nil {
			return
		}
		for _, elem := range perIter[iter] {
			// A single-bit flip in a high mantissa bit: Case 1 material.
			if err := rt.Injector.FlipBits(tgt, elem, []int{51}); err != nil {
				injectErr = err
				return
			}
			if hw {
				// Under strong ECC the error is corrected at the next fetch
				// from DRAM, before the algorithm consumes it; model that
				// fetch directly at the controller (a patrol/demand read).
				paddr, err := rt.M.OS.Translate(tgt.Reg.Base + uint64(elem)*8)
				if err != nil {
					injectErr = err
					return
				}
				rt.M.Ctl.Access(rt.M.Core.Now(), paddr, false, true)
			}
		}
	}
	if _, err := cg.Run(); err != nil {
		return machine.Result{}, 0, fmt.Errorf("threshold run: %w", err)
	}
	if injectErr != nil {
		return machine.Result{}, 0, fmt.Errorf("threshold run: inject: %w", injectErr)
	}
	return rt.Finish(), cg.Recoveries, nil
}

// RenderThreshold writes the sweep as a table and reports the crossover.
func RenderThreshold(w io.Writer, pts []ThresholdPoint) {
	header(w, "Empirical ARE-vs-ASE threshold (FT-CG, Case-1 errors; extension of Eq. 7)",
		[]string{"ARE (J)", "ASE (J)", "ARE recoveries", "winner"})
	cross := -1
	for i, p := range pts {
		winner := "ARE"
		if p.AREEnergyJ >= p.ASEEnergyJ {
			winner = "ASE"
			if cross < 0 {
				cross = i
			}
		}
		fmt.Fprintf(w, "%-14d%14.4g%14.4g%14d%14s\n",
			p.Errors, p.AREEnergyJ, p.ASEEnergyJ, p.ARERecoveries, winner)
	}
	if cross > 0 {
		fmt.Fprintf(w, "crossover between %d and %d errors per run: below it relax ECC, above it keep it strong\n",
			pts[cross-1].Errors, pts[cross].Errors)
	} else if cross < 0 {
		fmt.Fprintln(w, "no crossover in the swept range: ARE wins throughout")
	}
}
