package experiments

import (
	"fmt"
	"io"

	"coopabft/internal/bifit"
	"coopabft/internal/core"
	"coopabft/internal/machine"
)

// ThresholdPoint is one sample of the empirical ARE-vs-ASE comparison: the
// same FT-CG run under both configurations with `Errors` Case-1 errors
// injected. Under ASE (whole chipkill) the hardware corrects each error at
// negligible cost; under ARE (chipkill relaxed to nothing on ABFT data)
// every error costs an ABFT recovery. Sweeping the error count measures the
// crossover that Equation (7) predicts analytically.
type ThresholdPoint struct {
	Errors        int
	AREEnergyJ    float64
	ASEEnergyJ    float64
	ARESeconds    float64
	ASESeconds    float64
	ARERecoveries int
}

// splitmix generates the deterministic injection-site stream.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ThresholdStudy runs the sweep. Errors are single-bit flips in FT-CG's
// residual vector — correctable by both chipkill and ABFT (§4 Case 1).
func ThresholdStudy(o Options, errorCounts []int) []ThresholdPoint {
	out := make([]ThresholdPoint, 0, len(errorCounts))
	for _, n := range errorCounts {
		are, rec := thresholdRun(o, core.PartialChipkillNoECC, n)
		ase, _ := thresholdRun(o, core.WholeChipkill, n)
		out = append(out, ThresholdPoint{
			Errors:        n,
			AREEnergyJ:    are.SystemEnergyJ,
			ASEEnergyJ:    ase.SystemEnergyJ,
			ARESeconds:    are.Seconds,
			ASESeconds:    ase.Seconds,
			ARERecoveries: rec,
		})
	}
	return out
}

// thresholdRun executes FT-CG with n injected errors under a strategy.
func thresholdRun(o Options, s core.Strategy, n int) (res machine.Result, recoveries int) {
	rt := core.NewRuntime(o.machineConfig(), s, int64(o.Seed))
	cg := rt.NewCG(o.CGX, o.CGY, o.Seed)
	cg.MaxIter = o.CGIters
	cg.RelTol = 0
	cg.CheckPeriod = 1 // examine every iteration: one recovery per error

	r, _ := cg.VecFor("r")
	tgt := bifit.Target{Data: r.Data, Reg: r.Reg}
	// Spread n injections evenly over the iterations (several per
	// iteration when n exceeds the iteration count).
	perIter := make([][]int, o.CGIters)
	for j := 0; j < n; j++ {
		it := j % o.CGIters
		elem := int(splitmix(uint64(j)*2654435761+o.Seed) % uint64(len(r.Data)))
		perIter[it] = append(perIter[it], elem)
	}
	hw := s == core.WholeChipkill
	cg.OnIteration = func(iter int) {
		for _, elem := range perIter[iter] {
			// A single-bit flip in a high mantissa bit: Case 1 material.
			if err := rt.Injector.FlipBits(tgt, elem, []int{51}); err != nil {
				panic(err)
			}
			if hw {
				// Under strong ECC the error is corrected at the next fetch
				// from DRAM, before the algorithm consumes it; model that
				// fetch directly at the controller (a patrol/demand read).
				paddr, err := rt.M.OS.Translate(tgt.Reg.Base + uint64(elem)*8)
				if err != nil {
					panic(err)
				}
				rt.M.Ctl.Access(rt.M.Core.Now(), paddr, false, true)
			}
		}
	}
	if _, err := cg.Run(); err != nil {
		panic(fmt.Sprintf("threshold run: %v", err))
	}
	return rt.Finish(), cg.Recoveries
}

// RenderThreshold writes the sweep as a table and reports the crossover.
func RenderThreshold(w io.Writer, pts []ThresholdPoint) {
	header(w, "Empirical ARE-vs-ASE threshold (FT-CG, Case-1 errors; extension of Eq. 7)",
		[]string{"ARE (J)", "ASE (J)", "ARE recoveries", "winner"})
	cross := -1
	for i, p := range pts {
		winner := "ARE"
		if p.AREEnergyJ >= p.ASEEnergyJ {
			winner = "ASE"
			if cross < 0 {
				cross = i
			}
		}
		fmt.Fprintf(w, "%-14d%14.4g%14.4g%14d%14s\n",
			p.Errors, p.AREEnergyJ, p.ASEEnergyJ, p.ARERecoveries, winner)
	}
	if cross > 0 {
		fmt.Fprintf(w, "crossover between %d and %d errors per run: below it relax ECC, above it keep it strong\n",
			pts[cross-1].Errors, pts[cross].Errors)
	} else if cross < 0 {
		fmt.Fprintln(w, "no crossover in the swept range: ARE wins throughout")
	}
}
