package experiments

import (
	"context"
	"fmt"
	"io"

	"coopabft/internal/abft"
	"coopabft/internal/campaign"
	"coopabft/internal/core"
)

// OverheadBreakdown is one Figure 3 bar: the split of ABFT overhead between
// checksum maintenance and verification for a fail-continue kernel.
type OverheadBreakdown struct {
	Kernel           KernelID
	ChecksumFraction float64 // of total overhead
	VerifyFraction   float64
	OverheadOfTotal  float64 // (checksum+verify)/total ops
}

// failContinueKernels are the kernels with a Figure 3 / Table 1 row.
var failContinueKernels = []KernelID{KDGEMM, KCholesky, KCG}

// fig3Run reproduces Figure 3 for the three fail-continue ABFT kernels,
// one engine cell per kernel. The paper's observation — verification is
// responsible for a large part of the overhead — is measured from the
// kernels' operation accounting.
func fig3Run(ctx context.Context, rc runConfig) ([]OverheadBreakdown, error) {
	out, _, err := campaign.Map(ctx, rc.engine(), len(failContinueKernels),
		func(ctx context.Context, i int) (OverheadBreakdown, error) {
			k := failContinueKernels[i]
			ops, err := kernelOps(ctx, rc.o, k)
			if err != nil {
				return OverheadBreakdown{}, err
			}
			ov := ops.Checksum + ops.Verify
			b := OverheadBreakdown{Kernel: k, OverheadOfTotal: ops.OverheadFraction()}
			if ov > 0 {
				b.ChecksumFraction = float64(ops.Checksum) / float64(ov)
				b.VerifyFraction = float64(ops.Verify) / float64(ov)
			}
			return b, nil
		})
	return out, err
}

// Fig3Ctx computes the Figure 3 overhead breakdown.
func Fig3Ctx(ctx context.Context, o Options) ([]OverheadBreakdown, error) {
	return fig3Run(ctx, runConfig{o: o})
}

// kernelOps runs a kernel standalone (no machine) and returns its buckets.
func kernelOps(ctx context.Context, o Options, k KernelID) (abft.OpCounters, error) {
	if err := ctx.Err(); err != nil {
		return abft.OpCounters{}, err
	}
	env := abft.Standalone()
	switch k {
	case KDGEMM:
		d, err := abft.NewDGEMM(env, o.DGEMMN, o.Seed)
		if err != nil {
			return abft.OpCounters{}, err
		}
		if err := d.Run(); err != nil {
			return abft.OpCounters{}, err
		}
		return d.Ops, nil
	case KCholesky:
		c := abft.NewCholesky(env, o.CholN, o.Seed)
		if err := c.Run(); err != nil {
			return abft.OpCounters{}, err
		}
		return c.Ops, nil
	case KCG:
		c := abft.NewCG(env, o.CGX, o.CGY, o.Seed)
		c.MaxIter = o.CGIters
		c.RelTol = 0
		c.CheckPeriod = 4
		if _, err := c.Run(); err != nil {
			return abft.OpCounters{}, err
		}
		return c.Ops, nil
	default:
		return abft.OpCounters{}, fmt.Errorf("%w: %v has no overhead breakdown", ErrUnknownKernel, k)
	}
}

// RenderFig3 writes the Figure 3 bars as text.
func RenderFig3(w io.Writer, rows []OverheadBreakdown) {
	header(w, "Figure 3: ABFT overhead breakdown (fraction of overhead)", []string{"checksum", "verification", "ovh/total"})
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s%13.1f%%%13.1f%%%13.1f%%\n", r.Kernel,
			100*r.ChecksumFraction, 100*r.VerifyFraction, 100*r.OverheadOfTotal)
	}
}

// Table1Row is one column of Table 1: the runtime improvement from
// replacing full verification with hardware-notified verification.
type Table1Row struct {
	Kernel         KernelID
	FullSeconds    float64
	NotifySeconds  float64
	ImprovementPct float64
}

// table1Run reproduces Table 1: each fail-continue kernel is run on the
// simulator twice — full verification vs simplified (notified)
// verification — without ECC relaxing (strategy W_CK), matching §3.2.2's
// methodology. The six runs fan out as independent cells.
func table1Run(ctx context.Context, rc runConfig) ([]Table1Row, error) {
	modes := []abft.VerifyMode{abft.FullVerify, abft.NotifiedVerify}
	res, _, err := campaign.Map(ctx, rc.engine(), len(failContinueKernels)*len(modes),
		func(ctx context.Context, i int) (float64, error) {
			k := failContinueKernels[i/len(modes)]
			r, err := RunKernelCtx(ctx, rc.o, k, core.WholeChipkill, modes[i%len(modes)])
			return r.Seconds, err
		})
	if err != nil {
		return nil, err
	}
	out := make([]Table1Row, 0, len(failContinueKernels))
	for i, k := range failContinueKernels {
		r := Table1Row{
			Kernel:        k,
			FullSeconds:   res[i*len(modes)],
			NotifySeconds: res[i*len(modes)+1],
		}
		if r.FullSeconds > 0 {
			r.ImprovementPct = 100 * (r.FullSeconds - r.NotifySeconds) / r.FullSeconds
		}
		out = append(out, r)
	}
	return out, nil
}

// Table1Ctx computes the Table 1 verification comparison.
func Table1Ctx(ctx context.Context, o Options) ([]Table1Row, error) {
	return table1Run(ctx, runConfig{o: o})
}

// RenderTable1 writes Table 1 as text.
func RenderTable1(w io.Writer, rows []Table1Row) {
	header(w, "Table 1: ABFT performance improvement with simplified verification", []string{"full (s)", "notified (s)", "improvement"})
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s%14.3g%14.3g%13.1f%%\n",
			r.Kernel, r.FullSeconds, r.NotifySeconds, r.ImprovementPct)
	}
}
