package experiments

import (
	"fmt"
	"io"

	"coopabft/internal/abft"
	"coopabft/internal/core"
)

// OverheadBreakdown is one Figure 3 bar: the split of ABFT overhead between
// checksum maintenance and verification for a fail-continue kernel.
type OverheadBreakdown struct {
	Kernel           KernelID
	ChecksumFraction float64 // of total overhead
	VerifyFraction   float64
	OverheadOfTotal  float64 // (checksum+verify)/total ops
}

// Fig3 reproduces Figure 3 for the three fail-continue ABFT kernels.
// The paper's observation — verification is responsible for a large part
// of the overhead — is measured from the kernels' operation accounting.
func Fig3(o Options) []OverheadBreakdown {
	out := make([]OverheadBreakdown, 0, 3)
	for _, k := range []KernelID{KDGEMM, KCholesky, KCG} {
		ops := kernelOps(o, k)
		ov := ops.Checksum + ops.Verify
		b := OverheadBreakdown{Kernel: k, OverheadOfTotal: ops.OverheadFraction()}
		if ov > 0 {
			b.ChecksumFraction = float64(ops.Checksum) / float64(ov)
			b.VerifyFraction = float64(ops.Verify) / float64(ov)
		}
		out = append(out, b)
	}
	return out
}

// kernelOps runs a kernel standalone (no machine) and returns its buckets.
func kernelOps(o Options, k KernelID) abft.OpCounters {
	env := abft.Standalone()
	switch k {
	case KDGEMM:
		d := abft.NewDGEMM(env, o.DGEMMN, o.Seed)
		if err := d.Run(); err != nil {
			panic(err)
		}
		return d.Ops
	case KCholesky:
		c := abft.NewCholesky(env, o.CholN, o.Seed)
		if err := c.Run(); err != nil {
			panic(err)
		}
		return c.Ops
	case KCG:
		c := abft.NewCG(env, o.CGX, o.CGY, o.Seed)
		c.MaxIter = o.CGIters
		c.RelTol = 0
		c.CheckPeriod = 4
		if _, err := c.Run(); err != nil {
			panic(err)
		}
		return c.Ops
	default:
		panic("fig3: kernel has no overhead breakdown")
	}
}

// RenderFig3 writes the Figure 3 bars as text.
func RenderFig3(w io.Writer, rows []OverheadBreakdown) {
	header(w, "Figure 3: ABFT overhead breakdown (fraction of overhead)", []string{"checksum", "verification", "ovh/total"})
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s%13.1f%%%13.1f%%%13.1f%%\n", r.Kernel,
			100*r.ChecksumFraction, 100*r.VerifyFraction, 100*r.OverheadOfTotal)
	}
}

// Table1Row is one column of Table 1: the runtime improvement from
// replacing full verification with hardware-notified verification.
type Table1Row struct {
	Kernel         KernelID
	FullSeconds    float64
	NotifySeconds  float64
	ImprovementPct float64
}

// Table1 reproduces Table 1: each fail-continue kernel is run on the
// simulator twice — full verification vs simplified (notified) verification
// — without ECC relaxing (strategy W_CK), matching §3.2.2's methodology.
func Table1(o Options) []Table1Row {
	out := make([]Table1Row, 0, 3)
	for _, k := range []KernelID{KDGEMM, KCholesky, KCG} {
		full := RunKernel(o, k, core.WholeChipkill, abft.FullVerify)
		noti := RunKernel(o, k, core.WholeChipkill, abft.NotifiedVerify)
		r := Table1Row{
			Kernel:        k,
			FullSeconds:   full.Seconds,
			NotifySeconds: noti.Seconds,
		}
		if full.Seconds > 0 {
			r.ImprovementPct = 100 * (full.Seconds - noti.Seconds) / full.Seconds
		}
		out = append(out, r)
	}
	return out
}

// RenderTable1 writes Table 1 as text.
func RenderTable1(w io.Writer, rows []Table1Row) {
	header(w, "Table 1: ABFT performance improvement with simplified verification", []string{"full (s)", "notified (s)", "improvement"})
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s%14.3g%14.3g%13.1f%%\n",
			r.Kernel, r.FullSeconds, r.NotifySeconds, r.ImprovementPct)
	}
}
