package experiments

import (
	"fmt"
	"io"

	"coopabft/internal/abft"
	"coopabft/internal/core"
	"coopabft/internal/dgms"
	"coopabft/internal/machine"
	"coopabft/internal/scaling"
)

// ScalingSeries is one strategy's curve in Figures 8/9.
type ScalingSeries struct {
	Strategy core.Strategy
	Points   []scaling.Point
}

// WeakScalingProcs are the Figure 8 x-axis values.
var WeakScalingProcs = []int{100, 3200, 12800, 51200, 204800, 819200}

// StrongScalingProcs are the Figure 9 x-axis values (base 100).
var StrongScalingProcs = []int{100, 200, 400, 800, 1600, 3200}

// Fig8 runs the weak-scaling study for the three partial strategies.
func Fig8(o Options) []ScalingSeries {
	out := make([]ScalingSeries, 0, 3)
	for _, s := range scaling.PartialStrategies {
		out = append(out, ScalingSeries{
			Strategy: s,
			Points:   scaling.WeakScaling(o.ScalingCfg, s, WeakScalingProcs),
		})
	}
	return out
}

// Fig9 runs the mixed strong-scaling study. The paper's base deployment is
// 100 weak-scaled processes at 12K² (4× the weak-scaling problem edge);
// correspondingly the base grid is twice the Fig-8 edge, so the per-process
// working set crosses the cache capacity mid-range — the "contradicting
// effects" that create the energy-benefit sweet point.
func Fig9(o Options) []ScalingSeries {
	cfg := o.ScalingCfg
	cfg.GridX *= 2
	cfg.GridY *= 2
	out := make([]ScalingSeries, 0, 3)
	for _, s := range scaling.PartialStrategies {
		out = append(out, ScalingSeries{
			Strategy: s,
			Points:   scaling.StrongScaling(cfg, s, 100, StrongScalingProcs),
		})
	}
	return out
}

// RenderScaling writes a Figure 8/9-style table.
func RenderScaling(w io.Writer, title string, series []ScalingSeries) {
	fmt.Fprintf(w, "\n== %s ==\n", title)
	for _, s := range series {
		fmt.Fprintf(w, "-- %s --\n%-12s%18s%18s%14s\n",
			s.Strategy, "processes", "energy benefit(J)", "recovery(J)", "errors")
		for _, p := range s.Points {
			fmt.Fprintf(w, "%-12d%18.4g%18.4g%14.4g\n",
				p.Processes, p.EnergyBenefitJ, p.RecoveryCostJ, p.ExpectedErrors)
		}
	}
}

// Fig10Row is one bar pair of Figure 10: a kernel under one mechanism,
// normalized to its No_ECC run.
type Fig10Row struct {
	Kernel    KernelID
	Mechanism string
	TimeNorm  float64
	MemNorm   float64
	// CoarseFraction is DGMS's predictor outcome (1.0 = everything
	// chipkill), reported for the §5.3 analysis.
	CoarseFraction float64
}

// Fig10 compares DGMS with the cooperative approach (both using chipkill
// for strong and SECDED for relaxed protection, §5.3) on FT-DGEMM (high
// spatial locality) and FT-Pred-CG (low spatial locality), error-free.
func Fig10(o Options) []Fig10Row {
	var out []Fig10Row
	for _, k := range []KernelID{KDGEMM, KCG} {
		base := RunKernel(o, k, core.NoECC, abft.FullVerify)
		wck := RunKernel(o, k, core.WholeChipkill, abft.FullVerify)
		ours := RunKernel(o, k, core.PartialChipkillSECDED, abft.FullVerify)
		dg, frac := runDGMS(o, k)

		norm := func(name string, r machine.Result, coarse float64) Fig10Row {
			return Fig10Row{
				Kernel:         k,
				Mechanism:      name,
				TimeNorm:       r.Seconds / base.Seconds,
				MemNorm:        r.MemEnergyJ() / base.MemEnergyJ(),
				CoarseFraction: coarse,
			}
		}
		out = append(out,
			norm("W_CK", wck, 1),
			norm("DGMS", dg, frac),
			norm("ARE(P_CK+P_SD)", ours, 0),
		)
	}
	return out
}

// runDGMS executes a kernel on a DGMS-equipped machine.
func runDGMS(o Options, k KernelID) (machine.Result, float64) {
	rt := core.NewRuntime(o.machineConfig(), core.NoECC, int64(o.Seed))
	pred := dgms.Attach(rt.M)
	switch k {
	case KDGEMM:
		d := rt.NewDGEMM(o.DGEMMN, o.Seed)
		if err := d.Run(); err != nil {
			panic(err)
		}
	case KCG:
		c := rt.NewCG(o.CGX, o.CGY, o.Seed)
		c.MaxIter = o.CGIters
		c.RelTol = 0
		c.CheckPeriod = 4
		if _, err := c.Run(); err != nil {
			panic(err)
		}
	default:
		panic("fig10: unsupported kernel")
	}
	return rt.Finish(), pred.CoarseFraction()
}

// RenderFig10 writes the comparison as text.
func RenderFig10(w io.Writer, rows []Fig10Row) {
	header(w, "Figure 10: DGMS vs cooperative ABFT+ECC (normalized to No_ECC)", []string{"mechanism", "time", "mem energy", "coarse%"})
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s%14s%14.3f%14.3f%13.1f%%\n",
			r.Kernel, r.Mechanism, r.TimeNorm, r.MemNorm, 100*r.CoarseFraction)
	}
}
