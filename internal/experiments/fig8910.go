package experiments

import (
	"context"
	"fmt"
	"io"

	"coopabft/internal/abft"
	"coopabft/internal/campaign"
	"coopabft/internal/core"
	"coopabft/internal/dgms"
	"coopabft/internal/machine"
	"coopabft/internal/scaling"
)

// ScalingSeries is one strategy's curve in Figures 8/9.
type ScalingSeries struct {
	Strategy core.Strategy
	Points   []scaling.Point
}

// WeakScalingProcs are the Figure 8 x-axis values.
var WeakScalingProcs = []int{100, 3200, 12800, 51200, 204800, 819200}

// StrongScalingProcs are the Figure 9 x-axis values (base 100).
var StrongScalingProcs = []int{100, 200, 400, 800, 1600, 3200}

// fig8Run runs the weak-scaling study for the three partial strategies,
// one engine cell per strategy (the per-process measurement dominates; the
// per-scale extrapolation is arithmetic).
func fig8Run(ctx context.Context, rc runConfig) ([]ScalingSeries, error) {
	out, _, err := campaign.Map(ctx, rc.engine(), len(scaling.PartialStrategies),
		func(ctx context.Context, i int) (ScalingSeries, error) {
			if err := ctx.Err(); err != nil {
				return ScalingSeries{}, err
			}
			s := scaling.PartialStrategies[i]
			pts, err := scaling.WeakScaling(rc.o.ScalingCfg, s, WeakScalingProcs)
			if err != nil {
				return ScalingSeries{}, err
			}
			return ScalingSeries{Strategy: s, Points: pts}, nil
		})
	return out, err
}

// Fig8Ctx runs the Figure 8 weak-scaling study.
func Fig8Ctx(ctx context.Context, o Options) ([]ScalingSeries, error) {
	return fig8Run(ctx, runConfig{o: o})
}

// fig9Run runs the mixed strong-scaling study. The paper's base deployment
// is 100 weak-scaled processes at 12K² (4× the weak-scaling problem edge);
// correspondingly the base grid is twice the Fig-8 edge, so the
// per-process working set crosses the cache capacity mid-range — the
// "contradicting effects" that create the energy-benefit sweet point.
// Every (strategy, scale) sample is an independent engine cell.
func fig9Run(ctx context.Context, rc runConfig) ([]ScalingSeries, error) {
	cfg := rc.o.ScalingCfg
	cfg.GridX *= 2
	cfg.GridY *= 2
	nPts := len(StrongScalingProcs)
	pts, _, err := campaign.Map(ctx, rc.engine(), len(scaling.PartialStrategies)*nPts,
		func(ctx context.Context, i int) (scaling.Point, error) {
			if err := ctx.Err(); err != nil {
				return scaling.Point{}, err
			}
			s := scaling.PartialStrategies[i/nPts]
			return scaling.StrongPoint(cfg, s, 100, StrongScalingProcs[i%nPts])
		})
	if err != nil {
		return nil, err
	}
	out := make([]ScalingSeries, 0, len(scaling.PartialStrategies))
	for si, s := range scaling.PartialStrategies {
		out = append(out, ScalingSeries{Strategy: s, Points: pts[si*nPts : (si+1)*nPts]})
	}
	return out, nil
}

// Fig9Ctx runs the Figure 9 mixed strong-scaling study.
func Fig9Ctx(ctx context.Context, o Options) ([]ScalingSeries, error) {
	return fig9Run(ctx, runConfig{o: o})
}

// RenderScaling writes a Figure 8/9-style table.
func RenderScaling(w io.Writer, title string, series []ScalingSeries) {
	fmt.Fprintf(w, "\n== %s ==\n", title)
	for _, s := range series {
		fmt.Fprintf(w, "-- %s --\n%-12s%18s%18s%14s\n",
			s.Strategy, "processes", "energy benefit(J)", "recovery(J)", "errors")
		for _, p := range s.Points {
			fmt.Fprintf(w, "%-12d%18.4g%18.4g%14.4g\n",
				p.Processes, p.EnergyBenefitJ, p.RecoveryCostJ, p.ExpectedErrors)
		}
	}
}

// Fig10Row is one bar pair of Figure 10: a kernel under one mechanism,
// normalized to its No_ECC run.
type Fig10Row struct {
	Kernel    KernelID
	Mechanism string
	TimeNorm  float64
	MemNorm   float64
	// CoarseFraction is DGMS's predictor outcome (1.0 = everything
	// chipkill), reported for the §5.3 analysis.
	CoarseFraction float64
}

// fig10Run compares DGMS with the cooperative approach (both using
// chipkill for strong and SECDED for relaxed protection, §5.3) on
// FT-DGEMM (high spatial locality) and FT-Pred-CG (low spatial locality),
// error-free. The eight simulator runs (2 kernels × {No_ECC, W_CK, DGMS,
// cooperative}) fan out as independent cells.
func fig10Run(ctx context.Context, rc runConfig) ([]Fig10Row, error) {
	kernels := []KernelID{KDGEMM, KCG}
	type cellOut struct {
		res    machine.Result
		coarse float64
	}
	strategies := []core.Strategy{core.NoECC, core.WholeChipkill, core.PartialChipkillSECDED}
	perKernel := len(strategies) + 1 // + the DGMS run
	cells, _, err := campaign.Map(ctx, rc.engine(), len(kernels)*perKernel,
		func(ctx context.Context, i int) (cellOut, error) {
			k := kernels[i/perKernel]
			j := i % perKernel
			if j < len(strategies) {
				r, err := RunKernelCtx(ctx, rc.o, k, strategies[j], abft.FullVerify)
				return cellOut{res: r}, err
			}
			r, frac, err := runDGMS(ctx, rc.o, k)
			return cellOut{res: r, coarse: frac}, err
		})
	if err != nil {
		return nil, err
	}
	var out []Fig10Row
	for ki, k := range kernels {
		base := cells[ki*perKernel+0].res
		wck := cells[ki*perKernel+1].res
		ours := cells[ki*perKernel+2].res
		dg := cells[ki*perKernel+3]
		norm := func(name string, r machine.Result, coarse float64) Fig10Row {
			return Fig10Row{
				Kernel:         k,
				Mechanism:      name,
				TimeNorm:       r.Seconds / base.Seconds,
				MemNorm:        r.MemEnergyJ() / base.MemEnergyJ(),
				CoarseFraction: coarse,
			}
		}
		out = append(out,
			norm("W_CK", wck, 1),
			norm("DGMS", dg.res, dg.coarse),
			norm("ARE(P_CK+P_SD)", ours, 0),
		)
	}
	return out, nil
}

// Fig10Ctx runs the Figure 10 DGMS comparison.
func Fig10Ctx(ctx context.Context, o Options) ([]Fig10Row, error) {
	return fig10Run(ctx, runConfig{o: o})
}

// runDGMS executes a kernel on a DGMS-equipped machine.
func runDGMS(ctx context.Context, o Options, k KernelID) (machine.Result, float64, error) {
	if err := ctx.Err(); err != nil {
		return machine.Result{}, 0, err
	}
	rt := core.NewRuntime(o.machineConfig(), core.NoECC, int64(o.Seed))
	pred := dgms.Attach(rt.M)
	switch k {
	case KDGEMM:
		d, err := rt.NewDGEMM(o.DGEMMN, o.Seed)
		if err != nil {
			return machine.Result{}, 0, err
		}
		if err := d.Run(); err != nil {
			return machine.Result{}, 0, err
		}
	case KCG:
		c := rt.NewCG(o.CGX, o.CGY, o.Seed)
		c.MaxIter = o.CGIters
		c.RelTol = 0
		c.CheckPeriod = 4
		if _, err := c.Run(); err != nil {
			return machine.Result{}, 0, err
		}
	default:
		return machine.Result{}, 0, fmt.Errorf("%w: fig10 does not sweep %v", ErrUnknownKernel, k)
	}
	return rt.Finish(), pred.CoarseFraction(), nil
}

// RenderFig10 writes the comparison as text.
func RenderFig10(w io.Writer, rows []Fig10Row) {
	header(w, "Figure 10: DGMS vs cooperative ABFT+ECC (normalized to No_ECC)", []string{"mechanism", "time", "mem energy", "coarse%"})
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s%14s%14.3f%14.3f%13.1f%%\n",
			r.Kernel, r.Mechanism, r.TimeNorm, r.MemNorm, 100*r.CoarseFraction)
	}
}
