package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"coopabft/internal/ecc"
	"coopabft/internal/resilience"
)

// Experiment is the unified entry point of the evaluation harness: every
// table, figure and extension study implements it and registers under its
// paper name, so callers (cmd/paperfigs, benchmarks, future services)
// dispatch by name instead of a hand-maintained switch.
type Experiment interface {
	// Name returns the registry key ("fig5", "table1", "threshold", ...).
	Name() string
	// Run executes the experiment: Default() options, then the functional
	// options, then the (possibly parallel) computation under ctx.
	Run(ctx context.Context, opts ...Option) (Result, error)
}

// Result is one experiment's outcome: the typed rows (JSON-marshalable)
// plus the text rendering of the paper's table/figure.
type Result struct {
	Experiment string        `json:"experiment"`
	Data       any           `json:"data"`
	Elapsed    time.Duration `json:"elapsed_ns"`

	render func(io.Writer)
}

// Render writes the paper-style text table for this result.
func (r Result) Render(w io.Writer) {
	if r.render != nil {
		r.render(w)
	}
}

var (
	registryMu sync.RWMutex
	registry   = map[string]Experiment{}
	// registryOrder preserves registration (paper) order for Names().
	registryOrder []string
)

// Register adds an experiment to the registry; a duplicate name panics
// (registration is an init-time programming act, not a runtime input).
func Register(e Experiment) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[e.Name()]; dup {
		panic(fmt.Sprintf("experiments: duplicate registration of %q", e.Name()))
	}
	registry[e.Name()] = e
	registryOrder = append(registryOrder, e.Name())
}

// Lookup returns the experiment registered under name, or an error
// wrapping ErrUnknownExperiment listing the valid names.
func Lookup(name string) (Experiment, error) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	if e, ok := registry[name]; ok {
		return e, nil
	}
	known := append([]string(nil), registryOrder...)
	sort.Strings(known)
	return nil, fmt.Errorf("%w: %q (want one of %v)", ErrUnknownExperiment, name, known)
}

// Names lists the registered experiments in registration (paper) order.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	return append([]string(nil), registryOrder...)
}

// expFunc adapts a (ctx, runConfig) function into an Experiment.
type expFunc struct {
	name string
	run  func(ctx context.Context, rc runConfig) (data any, render func(io.Writer), err error)
}

func (e expFunc) Name() string { return e.name }

func (e expFunc) Run(ctx context.Context, opts ...Option) (Result, error) {
	rc, err := newRunConfig(opts...)
	if err != nil {
		return Result{}, err
	}
	start := time.Now()
	data, render, err := e.run(ctx, rc)
	if err != nil {
		return Result{}, fmt.Errorf("experiments: %s: %w", e.name, err)
	}
	return Result{Experiment: e.name, Data: data, Elapsed: time.Since(start), render: render}, nil
}

// rowsExperiment registers a run function whose row type only needs to be
// rendered with the matching Render helper.
func rowsExperiment[T any](name string, run func(ctx context.Context, rc runConfig) (T, error), render func(io.Writer, T)) {
	Register(expFunc{name: name, run: func(ctx context.Context, rc runConfig) (any, func(io.Writer), error) {
		rows, err := run(ctx, rc)
		if err != nil {
			return nil, nil, err
		}
		return rows, func(w io.Writer) { render(w, rows) }, nil
	}})
}

func init() {
	// Paper order: system parameters first, then §5.1, §5.2, §5.3, then
	// the extensions beyond the paper's figures (see EXPERIMENTS.md).
	rowsExperiment("table3",
		func(_ context.Context, rc runConfig) (Options, error) { return rc.o, nil },
		func(w io.Writer, o Options) { RenderTable3(w, o) })
	rowsExperiment("fig3", fig3Run, RenderFig3)
	rowsExperiment("table1", table1Run, RenderTable1)
	rowsExperiment("table4", table4Run, RenderTable4)
	rowsExperiment("fig5", fig567Run, RenderFig5)
	rowsExperiment("fig6", fig567Run, RenderFig6)
	rowsExperiment("fig7", fig567Run, RenderFig7)
	rowsExperiment("headlines", headlinesRun, RenderHeadlines)
	rowsExperiment("table5",
		func(_ context.Context, _ runConfig) (struct{}, error) { return struct{}{}, nil },
		func(w io.Writer, _ struct{}) { RenderTable5(w) })
	rowsExperiment("fig8", fig8Run, func(w io.Writer, s []ScalingSeries) {
		RenderScaling(w, "Figure 8: weak scaling (energy benefit vs ABFT recovery cost)", s)
	})
	rowsExperiment("fig9", fig9Run, func(w io.Writer, s []ScalingSeries) {
		RenderScaling(w, "Figure 9: strong scaling (energy benefit vs ABFT recovery cost)", s)
	})
	rowsExperiment("fig10", fig10Run, RenderFig10)
	rowsExperiment("cases", casesRun, func(w io.Writer, rows map[string][]resilience.CaseRow) {
		for _, scheme := range []string{"secded", "chipkill"} {
			resilience.Render(w, rows[scheme])
		}
	})
	rowsExperiment("capability", capabilityRun, resilience.RenderCapability)
	rowsExperiment("threshold",
		func(ctx context.Context, rc runConfig) ([]ThresholdPoint, error) {
			return thresholdStudyRun(ctx, rc, DefaultThresholdErrors)
		},
		RenderThreshold)
}

// casesRun measures the §4 case frequencies on the real codecs for both
// strong schemes.
func casesRun(ctx context.Context, rc runConfig) (map[string][]resilience.CaseRow, error) {
	out := map[string][]resilience.CaseRow{}
	for _, s := range []struct {
		key    string
		scheme ecc.Scheme
	}{{"secded", ecc.SECDED}, {"chipkill", ecc.Chipkill}} {
		rows, err := resilience.ClassifyCasesCtx(ctx, s.scheme, rc.o.CaseTrials, int64(rc.o.Seed), rc.engine())
		if err != nil {
			return nil, err
		}
		out[s.key] = rows
	}
	return out, nil
}

// DefaultCapabilityErrors is the swept simultaneous-error axis of the
// capability curves.
var DefaultCapabilityErrors = []int{1, 2, 4, 8}

// capabilityRun measures per-kernel multi-error repair rates.
func capabilityRun(ctx context.Context, rc runConfig) ([][]resilience.CapabilityPoint, error) {
	eng := rc.engine()
	curves := make([][]resilience.CapabilityPoint, 0, len(resilience.CapabilityKernels))
	for _, k := range resilience.CapabilityKernels {
		c, err := resilience.CapabilityCurveCtx(ctx, k, 24, DefaultCapabilityErrors, rc.o.CapTrials, int64(rc.o.Seed), eng)
		if err != nil {
			return nil, err
		}
		curves = append(curves, c)
	}
	return curves, nil
}
