package experiments

import (
	"bytes"
	"strings"
	"testing"

	"coopabft/internal/core"
)

func TestKernelIDStrings(t *testing.T) {
	want := []string{"FT-DGEMM", "FT-Cholesky", "FT-CG", "FT-HPL"}
	for i, k := range AllKernels {
		if k.String() != want[i] {
			t.Errorf("kernel %d = %q", i, k)
		}
	}
	if KernelID(99).String() != "?" {
		t.Error("unknown kernel string")
	}
}

func TestBasicSweepCachedAndComplete(t *testing.T) {
	o := Small()
	r1 := mustBasic(t, o)
	r2 := mustBasic(t, o)
	if len(r1) != len(AllKernels) {
		t.Fatalf("kernels = %d", len(r1))
	}
	for _, k := range AllKernels {
		if len(r1[k]) != len(core.Strategies) {
			t.Fatalf("%v: strategies = %d", k, len(r1[k]))
		}
		for _, s := range core.Strategies {
			if r1[k][s].Seconds <= 0 || r1[k][s].SystemEnergyJ <= 0 {
				t.Errorf("%v/%v empty result", k, s)
			}
			// Cache must return identical results.
			if r1[k][s] != r2[k][s] {
				t.Errorf("%v/%v cache mismatch", k, s)
			}
		}
	}
}

// TestFig5Orderings checks the §5.1 energy ordering claims on every kernel:
// chipkill is the most expensive protection, partial schemes cost no more
// than their whole-ECC baselines, and nothing beats No_ECC.
func TestFig5Orderings(t *testing.T) {
	res := mustBasic(t, Small())
	for _, k := range AllKernels {
		r := res[k]
		dyn := func(s core.Strategy) float64 { return r[s].MemDynamicJ }
		if dyn(core.WholeChipkill) <= dyn(core.NoECC) {
			t.Errorf("%v: W_CK dynamic %g <= No_ECC %g", k, dyn(core.WholeChipkill), dyn(core.NoECC))
		}
		if dyn(core.WholeSECDED) <= dyn(core.NoECC) {
			t.Errorf("%v: W_SD dynamic not above No_ECC", k)
		}
		if dyn(core.WholeChipkill) <= dyn(core.WholeSECDED) {
			t.Errorf("%v: chipkill not above SECDED", k)
		}
		if dyn(core.PartialChipkillNoECC) > dyn(core.WholeChipkill) {
			t.Errorf("%v: partial chipkill above whole chipkill", k)
		}
		if dyn(core.PartialSECDEDNoECC) > dyn(core.WholeSECDED) {
			t.Errorf("%v: partial SECDED above whole SECDED", k)
		}
		if dyn(core.PartialChipkillSECDED) > dyn(core.WholeChipkill) {
			t.Errorf("%v: P_CK+P_SD above whole chipkill", k)
		}
		// P_CK+P_SD pays slightly more than P_CK+No_ECC (the second ECC).
		if dyn(core.PartialChipkillSECDED) < dyn(core.PartialChipkillNoECC) {
			t.Errorf("%v: P_CK+P_SD below P_CK+No_ECC", k)
		}
	}
}

// TestFig6CGMostSensitive: FT-CG, the memory-intensive kernel, shows the
// largest whole-chipkill system-energy increase.
func TestFig6CGMostSensitive(t *testing.T) {
	res := mustBasic(t, Small())
	inc := func(k KernelID) float64 {
		return res[k][core.WholeChipkill].SystemEnergyJ / res[k][core.NoECC].SystemEnergyJ
	}
	cg := inc(KCG)
	for _, k := range []KernelID{KDGEMM, KCholesky} {
		if inc(k) > cg {
			t.Errorf("%v system increase %v exceeds FT-CG %v", k, inc(k), cg)
		}
	}
}

// TestFig7PerformanceOrdering: No_ECC is fastest; whole chipkill slowest;
// partial schemes recover performance; perf variance is smaller than
// energy variance (§5.1).
func TestFig7PerformanceOrdering(t *testing.T) {
	res := mustBasic(t, Small())
	for _, k := range AllKernels {
		r := res[k]
		if r[core.WholeChipkill].IPC > r[core.NoECC].IPC {
			t.Errorf("%v: chipkill IPC above no-ECC", k)
		}
		if r[core.PartialChipkillNoECC].IPC < r[core.WholeChipkill].IPC {
			t.Errorf("%v: partial chipkill slower than whole", k)
		}
		// Performance variance < energy variance.
		perfVar := r[core.NoECC].IPC/r[core.WholeChipkill].IPC - 1
		energyVar := r[core.WholeChipkill].MemDynamicJ/r[core.NoECC].MemDynamicJ - 1
		if perfVar > energyVar {
			t.Errorf("%v: perf variance %v above energy variance %v", k, perfVar, energyVar)
		}
	}
}

// TestTable4Ordering: the ABFT-to-other reference ratio orders as the paper
// reports: DGEMM ≫ HPL > Cholesky > CG. This is a working-set-to-LLC
// property, so it runs at the Default (paper-ratio-preserving) scale.
func TestTable4Ordering(t *testing.T) {
	if testing.Short() {
		t.Skip("default-scale sweep skipped in -short mode")
	}
	rows := mustTable4(t, Default())
	byK := map[KernelID]Table4Row{}
	for _, r := range rows {
		byK[r.Kernel] = r
		if r.RefsABFT == 0 {
			t.Errorf("%v: no ABFT refs", r.Kernel)
		}
		if r.RefsOther == 0 {
			t.Errorf("%v: no unprotected refs", r.Kernel)
		}
	}
	if !(byK[KDGEMM].Ratio > byK[KHPL].Ratio &&
		byK[KHPL].Ratio > byK[KCholesky].Ratio &&
		byK[KCholesky].Ratio > byK[KCG].Ratio) {
		t.Errorf("ratio ordering wrong: DGEMM %.1f, HPL %.1f, Chol %.1f, CG %.1f",
			byK[KDGEMM].Ratio, byK[KHPL].Ratio, byK[KCholesky].Ratio, byK[KCG].Ratio)
	}
}

// TestFig3VerificationDominates: Figure 3's observation.
func TestFig3VerificationDominates(t *testing.T) {
	rows := mustFig3(t, Small())
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.VerifyFraction+r.ChecksumFraction < 0.999 || r.VerifyFraction+r.ChecksumFraction > 1.001 {
			t.Errorf("%v: fractions don't stack to 1: %v + %v", r.Kernel, r.ChecksumFraction, r.VerifyFraction)
		}
		if r.VerifyFraction <= 0.05 {
			t.Errorf("%v: verification share %v unexpectedly small", r.Kernel, r.VerifyFraction)
		}
	}
	// FT-CG has no checksums: verification is all of its overhead.
	for _, r := range rows {
		if r.Kernel == KCG && r.ChecksumFraction != 0 {
			t.Errorf("CG checksum fraction = %v", r.ChecksumFraction)
		}
	}
}

// TestTable1ImprovementPositive: notified verification is faster for all
// three fail-continue kernels.
func TestTable1ImprovementPositive(t *testing.T) {
	rows := mustTable1(t, Small())
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.ImprovementPct <= 0 {
			t.Errorf("%v: improvement %.2f%%", r.Kernel, r.ImprovementPct)
		}
		if r.ImprovementPct > 50 {
			t.Errorf("%v: improvement %.2f%% implausibly large", r.Kernel, r.ImprovementPct)
		}
	}
}

// TestFig10Claims: DGMS behaves like whole chipkill on high-locality
// workloads while the cooperative approach relaxes ABFT data.
func TestFig10Claims(t *testing.T) {
	rows := mustFig10(t, Small())
	get := func(k KernelID, mech string) Fig10Row {
		for _, r := range rows {
			if r.Kernel == k && r.Mechanism == mech {
				return r
			}
		}
		t.Fatalf("missing row %v/%s", k, mech)
		return Fig10Row{}
	}
	for _, k := range []KernelID{KDGEMM, KCG} {
		dg := get(k, "DGMS")
		ours := get(k, "ARE(P_CK+P_SD)")
		wck := get(k, "W_CK")
		if dg.CoarseFraction < 0.8 {
			t.Errorf("%v: DGMS coarse fraction %v — predictor missed the streaming pattern", k, dg.CoarseFraction)
		}
		// DGMS tracks whole-chipkill within a few percent.
		if diff := dg.MemNorm/wck.MemNorm - 1; diff > 0.05 || diff < -0.25 {
			t.Errorf("%v: DGMS mem %v far from W_CK %v", k, dg.MemNorm, wck.MemNorm)
		}
		if ours.MemNorm >= dg.MemNorm {
			t.Errorf("%v: cooperative mem %v not below DGMS %v", k, ours.MemNorm, dg.MemNorm)
		}
		if ours.TimeNorm > dg.TimeNorm*1.001 {
			t.Errorf("%v: cooperative time %v above DGMS %v", k, ours.TimeNorm, dg.TimeNorm)
		}
	}
}

func TestHeadlinesComputable(t *testing.T) {
	h := mustHeadlines(t, Small())
	if h.CGWholeChipkillMemIncrease <= 0 {
		t.Errorf("CG chipkill increase = %v", h.CGWholeChipkillMemIncrease)
	}
	for _, k := range AllKernels {
		if h.PartialVsWholeChipkillSaving[k] < 0 {
			t.Errorf("%v: negative partial-chipkill saving", k)
		}
	}
	if h.WholeSECDEDAvgMemIncrease <= 0 {
		t.Errorf("SECDED average increase = %v", h.WholeSECDEDAvgMemIncrease)
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	o := Small()
	var b bytes.Buffer
	RenderFig3(&b, mustFig3(t, o))
	RenderTable1(&b, mustTable1(t, o))
	RenderTable3(&b, o)
	RenderTable4(&b, mustTable4(t, o))
	rows := mustFig567(t, o)
	RenderFig5(&b, rows)
	RenderFig6(&b, rows)
	RenderFig7(&b, rows)
	RenderTable5(&b)
	RenderFig10(&b, mustFig10(t, o))
	out := b.String()
	for _, want := range []string{"Figure 3", "Table 1", "Table 3", "Table 4",
		"Figure 5", "Figure 6", "Figure 7", "Table 5", "Figure 10",
		"FT-DGEMM", "W_CK", "P_CK+No_ECC", "chipkill"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q", want)
		}
	}
}

func TestFig8SmokeSmall(t *testing.T) {
	o := Small()
	series := mustFig8(t, o)
	if len(series) != 3 {
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		if len(s.Points) != len(WeakScalingProcs) {
			t.Errorf("%v: points = %d", s.Strategy, len(s.Points))
		}
		last := s.Points[len(s.Points)-1]
		if last.EnergyBenefitJ <= last.RecoveryCostJ {
			t.Errorf("%v: benefit %g <= recovery %g at %d procs",
				s.Strategy, last.EnergyBenefitJ, last.RecoveryCostJ, last.Processes)
		}
	}
	var b bytes.Buffer
	RenderScaling(&b, "Figure 8", series)
	if !strings.Contains(b.String(), "819200") {
		t.Error("render missing the largest scale")
	}
}

func TestFig9SmokeSmall(t *testing.T) {
	o := Small()
	series := mustFig9(t, o)
	for _, s := range series {
		if len(s.Points) != len(StrongScalingProcs) {
			t.Fatalf("%v: points = %d", s.Strategy, len(s.Points))
		}
		// Recovery cost falls as per-process problems shrink.
		first, last := s.Points[0], s.Points[len(s.Points)-1]
		if last.RecoveryCostJ >= first.RecoveryCostJ {
			t.Errorf("%v: recovery did not fall: %g → %g",
				s.Strategy, first.RecoveryCostJ, last.RecoveryCostJ)
		}
	}
}

// TestFig9SweetPoint: at default scale the aggregate energy benefit rises
// to an interior maximum before declining — §5.2's "sweet point for energy
// benefit ... for strong scaling cases".
func TestFig9SweetPoint(t *testing.T) {
	if testing.Short() {
		t.Skip("default-scale strong-scaling study skipped in -short mode")
	}
	series := mustFig9(t, Default())
	for _, s := range series {
		if s.Strategy.String() == "P_SD+No_ECC" {
			continue // the SECDED-relative benefit is small and flat
		}
		pts := s.Points
		peak, peakIdx := 0.0, 0
		for i, p := range pts {
			if p.EnergyBenefitJ > peak {
				peak, peakIdx = p.EnergyBenefitJ, i
			}
		}
		if peakIdx == 0 || peakIdx == len(pts)-1 {
			t.Errorf("%v: no interior sweet point (peak at index %d: %v)",
				s.Strategy, peakIdx, pts)
		}
	}
}

// TestThresholdStudy: the empirical counterpart of Equation 7 — with no
// errors relaxed ECC wins; ARE's cost grows with the error rate while ASE's
// stays flat.
func TestThresholdStudy(t *testing.T) {
	pts := mustThreshold(t, Small(), []int{0, 4, 16})
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].AREEnergyJ >= pts[0].ASEEnergyJ {
		t.Errorf("error-free ARE %g not below ASE %g", pts[0].AREEnergyJ, pts[0].ASEEnergyJ)
	}
	if pts[0].ARERecoveries != 0 {
		t.Errorf("error-free run recovered %d times", pts[0].ARERecoveries)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].AREEnergyJ <= pts[i-1].AREEnergyJ {
			t.Errorf("ARE energy not increasing with errors: %+v", pts)
		}
		if pts[i].ARERecoveries <= pts[i-1].ARERecoveries {
			t.Errorf("recoveries not increasing: %+v", pts)
		}
	}
	// ASE stays essentially flat: hardware corrections are ~free.
	if pts[2].ASEEnergyJ > pts[0].ASEEnergyJ*1.05 {
		t.Errorf("ASE energy grew with errors: %g → %g", pts[0].ASEEnergyJ, pts[2].ASEEnergyJ)
	}
	var b bytes.Buffer
	RenderThreshold(&b, pts)
	if !strings.Contains(b.String(), "winner") {
		t.Error("render missing header")
	}
}
