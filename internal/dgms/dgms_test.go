package dgms

import (
	"testing"

	"coopabft/internal/ecc"
	"coopabft/internal/machine"
)

func TestPredictorStreamingGoesCoarse(t *testing.T) {
	p := NewPredictor()
	// Sequential sweep: after the threshold warm-up, predictions are coarse.
	var last Granularity
	for i := uint64(0); i < 32; i++ {
		last = p.Observe(0x10000 + i*64)
	}
	if last != Coarse {
		t.Error("streaming access not predicted coarse")
	}
	if p.CoarseFraction() < 0.9 {
		t.Errorf("coarse fraction = %v for pure streaming", p.CoarseFraction())
	}
}

func TestPredictorRandomStaysFine(t *testing.T) {
	p := NewPredictor()
	// Strided accesses far apart within a page: no adjacency evidence.
	addrs := []uint64{0, 17, 3, 40, 9, 33, 22, 55, 5, 48, 13, 60}
	coarse := 0
	for _, l := range addrs {
		if p.Observe(0x20000+l*64) == Coarse {
			coarse++
		}
	}
	if coarse != 0 {
		t.Errorf("%d random accesses predicted coarse", coarse)
	}
}

func TestPredictorPerPageState(t *testing.T) {
	p := NewPredictor()
	// Stream page A, then a single access to page B must be fine.
	for i := uint64(0); i < 16; i++ {
		p.Observe(0x30000 + i*64)
	}
	if p.Observe(0x99000) == Coarse {
		t.Error("fresh page predicted coarse")
	}
}

func TestCoarseFractionEmpty(t *testing.T) {
	if NewPredictor().CoarseFraction() != 0 {
		t.Error("empty predictor fraction != 0")
	}
}

func TestAttachOverridesSchemes(t *testing.T) {
	cfg := machine.ScaledConfig(32)
	cfg.DefaultScheme = ecc.None // would be none without DGMS
	m := machine.New(cfg)
	p := Attach(m)

	a := m.OS.Malloc("data", 1<<20)
	mem := m.Memory()
	// Stream 1MB: predictions promote to chipkill after warm-up.
	for off := uint64(0); off < 1<<20; off += 64 {
		mem.Touch(a.VBase()+off, 8, false)
	}
	if p.CoarseFraction() < 0.5 {
		t.Errorf("coarse fraction = %v after streaming", p.CoarseFraction())
	}
	// Energy must exceed a no-ECC run of the same pattern.
	res := m.Finish()
	m2 := machine.New(cfg)
	a2 := m2.OS.Malloc("data", 1<<20)
	for off := uint64(0); off < 1<<20; off += 64 {
		m2.Memory().Touch(a2.VBase()+off, 8, false)
	}
	res2 := m2.Finish()
	if res.MemDynamicJ <= res2.MemDynamicJ {
		t.Errorf("DGMS dynamic %g <= no-ECC %g", res.MemDynamicJ, res2.MemDynamicJ)
	}
}

func TestStreakDecaysOnNonAdjacent(t *testing.T) {
	p := NewPredictor()
	base := uint64(0x40000)
	// Build a streak...
	p.Observe(base)
	p.Observe(base + 64)
	p.Observe(base + 128)
	// ...then jump around the page enough times to decay it.
	jumps := []uint64{40, 10, 50, 20, 60, 30}
	last := Coarse
	for _, l := range jumps {
		last = p.Observe(base + l*64)
	}
	if last == Coarse {
		t.Error("streak did not decay under scattered accesses")
	}
}
