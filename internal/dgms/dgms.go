// Package dgms reimplements, at behavioural level, the Dynamic Granularity
// Memory System of Yoon et al. [42] — the state-of-the-art flexible-ECC
// baseline of §5.3. DGMS is a pure hardware mechanism: a spatial-pattern
// predictor watches the access stream and selects coarse-grained accesses
// (chipkill-protected, full channel-pair) for streaming data and
// fine-grained accesses (SECDED on sub-ranked DRAM) for sparse data. It has
// no knowledge of ABFT, which is exactly why Figure 10 shows it losing to
// the cooperative approach: high-spatial-locality ABFT data (the DGEMM
// matrices, the CG vectors) is predicted "streaming" and pays for chipkill
// even though the algorithm already protects it.
package dgms

import (
	"coopabft/internal/ecc"
	"coopabft/internal/machine"
)

// pageLines is the number of cachelines tracked per 4KB page.
const pageLines = 64

// Granularity is the predictor's output.
type Granularity int

const (
	// Fine selects a sub-ranked SECDED access.
	Fine Granularity = iota
	// Coarse selects a lock-stepped chipkill access.
	Coarse
)

// pageEntry is one spatial-pattern-table row.
type pageEntry struct {
	bitmap   uint64 // lines touched
	lastLine int
	streak   int8 // saturating adjacent-access counter
}

// Predictor is the spatial pattern predictor: a page is "streaming" once
// it has seen enough adjacent-line accesses, after which its accesses are
// predicted coarse.
type Predictor struct {
	table map[uint64]*pageEntry
	// Threshold is the adjacent-access streak promoting a page to coarse.
	Threshold int8

	Coarse64, Fine16 uint64 // prediction counts
}

// NewPredictor returns a predictor with the default threshold.
func NewPredictor() *Predictor {
	return &Predictor{table: make(map[uint64]*pageEntry), Threshold: 2}
}

// Observe records an access and returns the predicted granularity for it.
func (p *Predictor) Observe(addr uint64) Granularity {
	page := addr >> 12
	line := int(addr>>6) & (pageLines - 1)
	e := p.table[page]
	if e == nil {
		e = &pageEntry{lastLine: -2}
		p.table[page] = e
	}
	// Adjacent to the previous access in this page, or to an already
	// fetched neighbor line → spatial locality evidence.
	adjacent := line == e.lastLine+1 || line == e.lastLine-1
	if !adjacent && line > 0 && e.bitmap&(1<<(line-1)) != 0 {
		adjacent = true
	}
	if adjacent {
		if e.streak < 100 {
			e.streak++
		}
	} else if line != e.lastLine && e.streak > 0 {
		e.streak--
	}
	e.bitmap |= 1 << line
	e.lastLine = line

	if e.streak >= p.Threshold {
		p.Coarse64++
		return Coarse
	}
	p.Fine16++
	return Fine
}

// CoarseFraction returns the fraction of accesses predicted coarse.
func (p *Predictor) CoarseFraction() float64 {
	t := p.Coarse64 + p.Fine16
	if t == 0 {
		return 0
	}
	return float64(p.Coarse64) / float64(t)
}

// Attach installs DGMS on a machine: every memory-controller access is
// protected per the predictor's granularity decision instead of the ECC
// region registers. Fine-grained accesses run SECDED on the sub-ranked
// channel; coarse-grained run chipkill (the §5.3 configuration). It returns
// the predictor for inspection.
//
// Note: like the paper, we do not charge energy for DGMS's new hardware
// (prediction tables, register/demux); the comparison is conservative in
// DGMS's favor.
func Attach(m *machine.Machine) *Predictor {
	p := NewPredictor()
	m.Ctl.Policy = func(addr uint64) (ecc.Scheme, bool) {
		if p.Observe(addr) == Coarse {
			return ecc.Chipkill, true
		}
		return ecc.SECDED, true
	}
	return p
}
