package scaling

import (
	"testing"

	"coopabft/internal/core"
)

// tinyConfig keeps unit tests fast; the experiment harness uses larger.
func tinyConfig() Config {
	c := DefaultConfig()
	c.GridX, c.GridY = 32, 32
	c.Iterations = 10
	return c
}

func TestMeasureCGBasics(t *testing.T) {
	cfg := tinyConfig()
	m := mustMeasure(t, cfg, core.PartialChipkillNoECC, false)
	if m.SystemEnergyJ <= 0 || m.Seconds <= 0 {
		t.Fatalf("measurement = %+v", m)
	}
	if m.ABFTBytes < float64(32*32*8*5) {
		t.Errorf("ABFT footprint %v too small for 5+ vectors", m.ABFTBytes)
	}
	// The whole-chipkill baseline must cost more energy.
	b := mustMeasure(t, cfg, core.WholeChipkill, false)
	if b.SystemEnergyJ <= m.SystemEnergyJ {
		t.Errorf("W_CK %g <= P_CK+No_ECC %g", b.SystemEnergyJ, m.SystemEnergyJ)
	}
}

func TestRecoveryEnergyPositive(t *testing.T) {
	cfg := tinyConfig()
	r := mustRecovery(t, cfg, core.PartialChipkillNoECC)
	if r <= 0 {
		t.Errorf("recovery energy = %v", r)
	}
	// Recovery is a single matvec+rebuild: far below the full run energy.
	m := mustMeasure(t, cfg, core.PartialChipkillNoECC, false)
	if r >= m.SystemEnergyJ/2 {
		t.Errorf("recovery %g not small vs run %g", r, m.SystemEnergyJ)
	}
}

func TestWeakScalingShape(t *testing.T) {
	cfg := tinyConfig()
	procs := []int{100, 800, 6400}
	pts := mustWeak(t, cfg, core.PartialChipkillNoECC, procs)
	if len(pts) != len(procs) {
		t.Fatalf("points = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].EnergyBenefitJ <= pts[i-1].EnergyBenefitJ {
			t.Errorf("benefit not growing: %v", pts)
		}
		if pts[i].RecoveryCostJ <= pts[i-1].RecoveryCostJ {
			t.Errorf("recovery cost not growing: %v", pts)
		}
	}
	// The paper's headline: benefit far exceeds recovery cost.
	for _, p := range pts {
		if p.EnergyBenefitJ <= p.RecoveryCostJ {
			t.Errorf("P=%d: benefit %g <= recovery %g",
				p.Processes, p.EnergyBenefitJ, p.RecoveryCostJ)
		}
	}
}

func TestWeakScalingPCKPSDRecoveryLower(t *testing.T) {
	cfg := tinyConfig()
	procs := []int{6400}
	noECC := mustWeak(t, cfg, core.PartialChipkillNoECC, procs)[0]
	psd := mustWeak(t, cfg, core.PartialChipkillSECDED, procs)[0]
	// SECDED on ABFT data means far fewer errors escape to ABFT.
	if psd.RecoveryCostJ >= noECC.RecoveryCostJ {
		t.Errorf("P_CK+P_SD recovery %g >= P_CK+No_ECC %g",
			psd.RecoveryCostJ, noECC.RecoveryCostJ)
	}
	if psd.ExpectedErrors >= noECC.ExpectedErrors {
		t.Errorf("expected errors ordering wrong: %g vs %g",
			psd.ExpectedErrors, noECC.ExpectedErrors)
	}
}

func TestStrongScalingRecoveryFalls(t *testing.T) {
	cfg := tinyConfig()
	cfg.GridX, cfg.GridY = 48, 48
	procs := []int{100, 400, 1600}
	pts := mustStrong(t, cfg, core.PartialChipkillNoECC, 100, procs)
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	// Recovery cost decreases as the per-process problem shrinks.
	if !(pts[2].RecoveryCostJ < pts[0].RecoveryCostJ) {
		t.Errorf("recovery did not fall: %+v", pts)
	}
	for _, p := range pts {
		if p.EnergyBenefitJ <= p.RecoveryCostJ {
			t.Errorf("P=%d: benefit %g <= recovery %g",
				p.Processes, p.EnergyBenefitJ, p.RecoveryCostJ)
		}
	}
}

func TestEfficiencyModel(t *testing.T) {
	cfg := DefaultConfig()
	if efficiency(cfg.EffLogCoeff, 1, 1) != 1 || efficiency(cfg.EffLogCoeff, 50, 100) != 1 {
		t.Error("efficiency at or below base must be 1")
	}
	e1 := efficiency(cfg.EffLogCoeff, 1000, 1)
	e2 := efficiency(cfg.EffLogCoeff, 100000, 1)
	if !(0 < e2 && e2 < e1 && e1 < 1) {
		t.Errorf("efficiency ordering wrong: %v %v", e1, e2)
	}
	// Strong scaling degrades much faster than weak scaling.
	if efficiency(cfg.StrongEffLogCoeff, 3200, 100) >= efficiency(cfg.EffLogCoeff, 3200, 100) {
		t.Error("strong-scaling efficiency should be below weak-scaling")
	}
}

func TestPartialStrategiesList(t *testing.T) {
	if len(PartialStrategies) != 3 {
		t.Fatalf("PartialStrategies = %d", len(PartialStrategies))
	}
	for _, s := range PartialStrategies {
		if !s.Partial() {
			t.Errorf("%v not partial", s)
		}
	}
}
