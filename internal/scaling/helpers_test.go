package scaling

import (
	"testing"

	"coopabft/internal/core"
)

func mustMeasure(t testing.TB, cfg Config, s core.Strategy, withRecovery bool) Measurement {
	t.Helper()
	m, err := MeasureCG(cfg, s, withRecovery)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func mustRecovery(t testing.TB, cfg Config, s core.Strategy) float64 {
	t.Helper()
	r, err := RecoveryEnergy(cfg, s)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func mustWeak(t testing.TB, cfg Config, s core.Strategy, procs []int) []Point {
	t.Helper()
	pts, err := WeakScaling(cfg, s, procs)
	if err != nil {
		t.Fatal(err)
	}
	return pts
}

func mustStrong(t testing.TB, cfg Config, s core.Strategy, baseProcs int, procs []int) []Point {
	t.Helper()
	pts, err := StrongScaling(cfg, s, baseProcs, procs)
	if err != nil {
		t.Fatal(err)
	}
	return pts
}
