// Package scaling implements the §5.2 scaling methodology behind Figures 8
// and 9: per-process energy deltas and ABFT recovery costs are measured on
// the single-node simulator, then extrapolated to large process counts with
// the fault models of §4 and a parallel-efficiency model in the spirit of
// [5, 37]. FT-CG is the studied kernel because its recovery is the most
// expensive of the four ABFT algorithms.
package scaling

import (
	"fmt"
	"math"

	"coopabft/internal/core"
	"coopabft/internal/faultmodel"
	"coopabft/internal/machine"
)

// Config controls a study.
type Config struct {
	// Machine is the per-node platform configuration.
	Machine machine.Config
	// GridX/GridY size the per-process CG problem (weak scaling) or the
	// base per-process problem (strong scaling).
	GridX, GridY int
	// Iterations fixes the number of CG iterations simulated per process.
	Iterations int
	// EffLogCoeff parameterizes weak-scaling parallel efficiency
	// eff(P) = 1/(1 + c·log2(P)); c ≈ 0.01 reproduces the high weak-scaling
	// efficiency of CG-class codes [5].
	EffLogCoeff float64
	// StrongEffLogCoeff is the analogous coefficient under strong scaling,
	// where the shrinking per-process problem makes communication dominate;
	// c ≈ 0.3 models CG efficiency falling to ~40% at 32× concurrency.
	StrongEffLogCoeff float64
	Seed              uint64
}

// DefaultConfig returns a laptop-tractable study configuration.
func DefaultConfig() Config {
	return Config{
		Machine:           machine.ScaledConfig(32),
		GridX:             96,
		GridY:             96,
		Iterations:        24,
		EffLogCoeff:       0.01,
		StrongEffLogCoeff: 0.3,
		Seed:              12,
	}
}

// Point is one scaling-curve sample.
type Point struct {
	Processes       int
	EnergyBenefitJ  float64 // aggregate system-energy saving vs the baseline
	RecoveryCostJ   float64 // aggregate ABFT recovery energy (Eq. 4/5)
	ExpectedErrors  float64
	PerProcSeconds  float64
	PerProcBenefitJ float64
}

// Measurement captures one per-process simulator run.
type Measurement struct {
	SystemEnergyJ float64
	Seconds       float64
	ABFTBytes     float64 // footprint under relaxed ECC
	RecoveryJ     float64 // energy of one FT-CG invariant recovery
}

// baselineFor maps a partial strategy to its whole-ECC baseline (§5.2).
func baselineFor(s core.Strategy) core.Strategy {
	switch s {
	case core.PartialChipkillNoECC, core.PartialChipkillSECDED:
		return core.WholeChipkill
	case core.PartialSECDEDNoECC:
		return core.WholeSECDED
	default:
		return s
	}
}

// MeasureCG runs FT-CG for the configured iterations under a strategy and
// returns per-process metrics.
func MeasureCG(cfg Config, s core.Strategy, withRecovery bool) (Measurement, error) {
	rt := core.NewRuntime(cfg.Machine, s, int64(cfg.Seed))
	cg := rt.NewCG(cfg.GridX, cfg.GridY, cfg.Seed)
	cg.MaxIter = cfg.Iterations
	cg.RelTol = 0 // fixed-iteration run
	cg.CheckPeriod = 8
	if withRecovery {
		cg.OnIteration = func(iter int) {
			if iter == cfg.Iterations-1 {
				cg.Recover()
			}
		}
	}
	if _, err := cg.Run(); err != nil {
		return Measurement{}, fmt.Errorf("scaling: CG run failed: %w", err)
	}
	res := rt.Finish()

	var abftBytes float64
	for _, r := range rt.M.OS.Space.Regions() {
		if r.ABFT {
			abftBytes += float64(r.Size)
		}
	}
	return Measurement{
		SystemEnergyJ: res.SystemEnergyJ,
		Seconds:       res.Seconds,
		ABFTBytes:     abftBytes,
	}, nil
}

// RecoveryEnergy measures the energy of a single FT-CG recovery by
// differencing two otherwise identical runs.
func RecoveryEnergy(cfg Config, s core.Strategy) (float64, error) {
	with, err := MeasureCG(cfg, s, true)
	if err != nil {
		return 0, err
	}
	without, err := MeasureCG(cfg, s, false)
	if err != nil {
		return 0, err
	}
	d := with.SystemEnergyJ - without.SystemEnergyJ
	if d < 0 {
		d = 0
	}
	return d, nil
}

// efficiency returns the modeled parallel efficiency at P processes
// relative to base processes with the given log coefficient.
func efficiency(coeff float64, p, base int) float64 {
	if p <= base {
		return 1
	}
	return 1 / (1 + coeff*math.Log2(float64(p)/float64(base)))
}

// WeakScaling reproduces Figure 8: fixed per-process problem, growing
// process count. Injected errors are Case-1 (correctable by both ABFT and
// strong ECC), occurring at the Table 5 rate of the scheme protecting the
// ABFT data.
func WeakScaling(cfg Config, s core.Strategy, procs []int) ([]Point, error) {
	perProc, err := MeasureCG(cfg, s, false)
	if err != nil {
		return nil, err
	}
	base, err := MeasureCG(cfg, baselineFor(s), false)
	if err != nil {
		return nil, err
	}
	recovery, err := RecoveryEnergy(cfg, s)
	if err != nil {
		return nil, err
	}
	deltaJ := base.SystemEnergyJ - perProc.SystemEnergyJ

	fit := s.ABFTScheme().FITPerMbit()
	out := make([]Point, 0, len(procs))
	for _, p := range procs {
		eff := efficiency(cfg.EffLogCoeff, p, 1)
		seconds := perProc.Seconds / eff
		footprint := perProc.ABFTBytes * float64(p)
		mttf := faultmodel.MTTF(fit, footprint*8/1e6, 1, 1)
		ne := faultmodel.ExpectedErrors(seconds, 0, mttf)
		out = append(out, Point{
			Processes:       p,
			EnergyBenefitJ:  float64(p) * deltaJ / eff,
			RecoveryCostJ:   ne * recovery,
			ExpectedErrors:  ne,
			PerProcSeconds:  seconds,
			PerProcBenefitJ: deltaJ,
		})
	}
	return out, nil
}

// StrongPoint measures one Figure 9 sample: the mixed deployment at p
// processes, per-process problem shrunk as 1/√(P/base) per dimension. It
// is a pure function of (cfg, s, baseProcs, p) and shares no state with
// other points, so the campaign engine can fan points out freely.
func StrongPoint(cfg Config, s core.Strategy, baseProcs, p int) (Point, error) {
	shrink := math.Sqrt(float64(baseProcs) / float64(p))
	sub := cfg
	sub.GridX = maxInt(8, int(float64(cfg.GridX)*shrink))
	sub.GridY = maxInt(8, int(float64(cfg.GridY)*shrink))

	perProc, err := MeasureCG(sub, s, false)
	if err != nil {
		return Point{}, err
	}
	base, err := MeasureCG(sub, baselineFor(s), false)
	if err != nil {
		return Point{}, err
	}
	recovery, err := RecoveryEnergy(sub, s)
	if err != nil {
		return Point{}, err
	}
	deltaJ := base.SystemEnergyJ - perProc.SystemEnergyJ

	fit := s.ABFTScheme().FITPerMbit()
	eff := efficiency(cfg.StrongEffLogCoeff, p, baseProcs)
	seconds := perProc.Seconds / eff
	footprint := perProc.ABFTBytes * float64(p)
	mttf := faultmodel.MTTF(fit, footprint*8/1e6, 1, 1)
	ne := faultmodel.ExpectedErrors(seconds, 0, mttf)
	return Point{
		Processes:       p,
		EnergyBenefitJ:  float64(p) * deltaJ / eff,
		RecoveryCostJ:   ne * recovery,
		ExpectedErrors:  ne,
		PerProcSeconds:  seconds,
		PerProcBenefitJ: deltaJ,
	}, nil
}

// StrongScaling reproduces Figure 9: the paper's mixed deployment — weak
// scaling to baseProcs processes of GridX×GridY each, then strong scaling
// beyond.
func StrongScaling(cfg Config, s core.Strategy, baseProcs int, procs []int) ([]Point, error) {
	out := make([]Point, 0, len(procs))
	for _, p := range procs {
		pt, err := StrongPoint(cfg, s, baseProcs, p)
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}

// PartialStrategies are the three relaxed schemes Figures 8–9 sweep.
var PartialStrategies = []core.Strategy{
	core.PartialChipkillNoECC,
	core.PartialChipkillSECDED,
	core.PartialSECDEDNoECC,
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
