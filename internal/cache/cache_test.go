package cache

import (
	"testing"
	"testing/quick"
)

func tiny() Config { return Config{SizeBytes: 4 * 2 * LineBytes, Ways: 2} } // 4 sets, 2 ways

func TestNewPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two set count did not panic")
		}
	}()
	New(Config{SizeBytes: 3 * LineBytes, Ways: 1})
}

func TestHitAfterMiss(t *testing.T) {
	c := New(tiny())
	if o := c.Access(0x100, false); o.Hit {
		t.Error("cold access hit")
	}
	if o := c.Access(0x100, false); !o.Hit {
		t.Error("warm access missed")
	}
	if o := c.Access(0x100+LineBytes-1, false); !o.Hit {
		t.Error("same-line access missed")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(tiny()) // 4 sets × 2 ways
	// Three lines mapping to set 0: line addresses 0, 4, 8 (set = line % 4).
	a0 := uint64(0 * LineBytes)
	a1 := uint64(4 * LineBytes)
	a2 := uint64(8 * LineBytes)
	c.Access(a0, false)
	c.Access(a1, false)
	c.Access(a0, false) // a0 now MRU, a1 LRU
	c.Access(a2, false) // evicts a1
	if !c.Contains(a0) || c.Contains(a1) || !c.Contains(a2) {
		t.Errorf("LRU eviction wrong: a0=%v a1=%v a2=%v",
			c.Contains(a0), c.Contains(a1), c.Contains(a2))
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	c := New(tiny())
	a0 := uint64(0)
	a1 := uint64(4 * LineBytes)
	a2 := uint64(8 * LineBytes)
	c.Access(a0, true) // dirty
	c.Access(a1, false)
	c.Access(a2, false) // evicts a0 (LRU, dirty)
	// a0 was LRU because a1 was touched later.
	// Re-access pattern: after access(a1), order is a0(old), a1(new).
	// access(a2) evicts a0 → writeback.
	st := c.Stats()
	if st.Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", st.Writebacks)
	}
}

func TestVictimAddressReconstruction(t *testing.T) {
	c := New(tiny())
	a0 := uint64(12 * LineBytes) // set 0, some tag
	c.Access(a0, true)
	c.Access(16*LineBytes, true) // set 0
	o := c.Access(20*LineBytes, true)
	if !o.Writeback {
		t.Fatal("expected writeback")
	}
	if o.VictimAddr != a0 {
		t.Errorf("victim addr = %#x, want %#x", o.VictimAddr, a0)
	}
}

func TestCleanEvictionSilent(t *testing.T) {
	c := New(tiny())
	c.Access(0, false)
	c.Access(4*LineBytes, false)
	o := c.Access(8*LineBytes, false)
	if o.Writeback {
		t.Error("clean eviction produced a writeback")
	}
}

func TestMissRate(t *testing.T) {
	c := New(tiny())
	c.Access(0, false)
	c.Access(0, false)
	c.Access(0, false)
	c.Access(0, false)
	if mr := c.Stats().MissRate(); mr != 0.25 {
		t.Errorf("miss rate = %v, want 0.25", mr)
	}
	var s Stats
	if s.MissRate() != 0 {
		t.Error("empty miss rate not 0")
	}
}

func TestHierarchyLevels(t *testing.T) {
	var misses []MissEvent
	h := NewHierarchy(tiny(), Config{SizeBytes: 16 * 4 * LineBytes, Ways: 4},
		func(ev MissEvent) { misses = append(misses, ev) })

	if lvl := h.Access(0, false); lvl != LevelMemory {
		t.Errorf("cold access level = %v", lvl)
	}
	if len(misses) != 1 || misses[0].Addr != 0 || !misses[0].Demand {
		t.Errorf("miss events = %+v", misses)
	}
	if lvl := h.Access(0, false); lvl != LevelL1 {
		t.Errorf("warm access level = %v", lvl)
	}
	// Evict from L1 (3 conflicting lines in its set) but stay in L2.
	h.Access(4*LineBytes, false)
	h.Access(8*LineBytes, false)
	if lvl := h.Access(0, false); lvl != LevelL2 {
		t.Errorf("L1-evicted access level = %v", lvl)
	}
}

func TestHierarchyWritebackChain(t *testing.T) {
	// L1 dirty victims must land in L2, and dirty L2 victims must reach
	// memory as non-demand writes.
	var misses []MissEvent
	l2cfg := Config{SizeBytes: 2 * 2 * LineBytes, Ways: 2} // 2 sets, tiny
	h := NewHierarchy(tiny(), l2cfg, func(ev MissEvent) { misses = append(misses, ev) })
	// Write lines that conflict in both levels to force dirty evictions.
	for i := uint64(0); i < 16; i++ {
		h.Access(i*4*LineBytes, true) // all map to L2 set 0 (line%2==0)
	}
	var wb int
	for _, m := range misses {
		if m.Write {
			wb++
			if m.Demand {
				t.Error("writeback marked as demand")
			}
		}
	}
	if wb == 0 {
		t.Error("no writebacks reached memory")
	}
}

func TestHierarchyNilMissSafe(t *testing.T) {
	h := NewHierarchy(tiny(), tiny(), nil)
	h.Access(0, true) // must not panic
}

// Property: a second access to the same address is always an L1 hit.
func TestTemporalLocalityProperty(t *testing.T) {
	h := NewHierarchy(L1Default(), L2Default(), nil)
	f := func(addr uint64, w bool) bool {
		h.Access(addr, w)
		return h.Access(addr, false) == LevelL1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: hits+misses equals the number of accesses at L1.
func TestStatsConservationProperty(t *testing.T) {
	c := New(L1Default())
	n := 0
	f := func(addr uint64, w bool) bool {
		c.Access(addr, w)
		n++
		st := c.Stats()
		return st.Hits+st.Misses == uint64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFlushWritesBackDirtyAndEmpties(t *testing.T) {
	var wb []uint64
	c := New(tiny())
	c.Access(0, true)
	c.Access(4*LineBytes, false)
	c.Flush(func(addr uint64) { wb = append(wb, addr) })
	if len(wb) != 1 || wb[0] != 0 {
		t.Errorf("writebacks = %v", wb)
	}
	if c.Contains(0) || c.Contains(4*LineBytes) {
		t.Error("flush left lines resident")
	}
}

func TestHierarchyFlushReachesMemory(t *testing.T) {
	var misses []MissEvent
	h := NewHierarchy(tiny(), Config{SizeBytes: 16 * 4 * LineBytes, Ways: 4},
		func(ev MissEvent) { misses = append(misses, ev) })
	h.Access(0, true)
	misses = nil
	h.Flush()
	found := false
	for _, m := range misses {
		if m.Write && m.Addr == 0 && !m.Demand {
			found = true
		}
	}
	if !found {
		t.Errorf("dirty line did not reach memory: %+v", misses)
	}
	// After flush the next access is a full miss again.
	misses = nil
	if lvl := h.Access(0, false); lvl != LevelMemory {
		t.Errorf("post-flush access level = %v", lvl)
	}
}
