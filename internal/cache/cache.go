// Package cache models the on-chip cache hierarchy of the evaluation
// platform (Table 3): split 16KB 4-way L1 caches and a shared 8MB 16-way L2,
// 64B blocks, LRU replacement, write-back/write-allocate. It is the McSim
// cache substitute; the machine package wires its miss stream into the
// memory controller.
package cache

import "fmt"

// LineBytes is the block size (Table 3: 64B).
const LineBytes = 64

// Config sizes one cache level.
type Config struct {
	SizeBytes int
	Ways      int
}

// L1Default is the Table 3 L1 data cache: 16KB, 4-way.
func L1Default() Config { return Config{SizeBytes: 16 << 10, Ways: 4} }

// L2Default is the Table 3 shared L2: 8MB, 16-way.
func L2Default() Config { return Config{SizeBytes: 8 << 20, Ways: 16} }

// Stats counts accesses at one level.
type Stats struct {
	Hits, Misses uint64
	Writebacks   uint64
}

// MissRate returns misses/(hits+misses), 0 when idle.
func (s Stats) MissRate() float64 {
	t := s.Hits + s.Misses
	if t == 0 {
		return 0
	}
	return float64(s.Misses) / float64(t)
}

// Outcome describes the result of a single-level access.
type Outcome struct {
	Hit bool
	// Writeback is set when a dirty victim was evicted; VictimAddr is its
	// line address.
	Writeback  bool
	VictimAddr uint64
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint64 // larger = more recently used
}

// Cache is one set-associative write-back level.
type Cache struct {
	cfg   Config
	sets  [][]line
	nsets uint64
	tick  uint64
	stats Stats
}

// New builds a cache; SizeBytes must be a multiple of Ways*LineBytes and
// the resulting set count must be a power of two.
func New(cfg Config) *Cache {
	nsets := cfg.SizeBytes / (cfg.Ways * LineBytes)
	if nsets <= 0 || nsets&(nsets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d is not a positive power of two", nsets))
	}
	sets := make([][]line, nsets)
	for i := range sets {
		sets[i] = make([]line, cfg.Ways)
	}
	return &Cache{cfg: cfg, sets: sets, nsets: uint64(nsets)}
}

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// Access looks up the line containing addr; on a miss it allocates,
// evicting the LRU way. write marks the line dirty.
func (c *Cache) Access(addr uint64, write bool) Outcome {
	lineAddr := addr / LineBytes
	set := lineAddr % c.nsets
	tag := lineAddr / c.nsets
	ways := c.sets[set]
	c.tick++

	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i].lru = c.tick
			if write {
				ways[i].dirty = true
			}
			c.stats.Hits++
			return Outcome{Hit: true}
		}
	}
	c.stats.Misses++

	// Choose victim: an invalid way if any, else LRU.
	victim := 0
	for i := range ways {
		if !ways[i].valid {
			victim = i
			break
		}
		if ways[i].lru < ways[victim].lru {
			victim = i
		}
	}
	out := Outcome{}
	if ways[victim].valid && ways[victim].dirty {
		out.Writeback = true
		out.VictimAddr = (ways[victim].tag*c.nsets + set) * LineBytes
		c.stats.Writebacks++
	}
	ways[victim] = line{tag: tag, valid: true, dirty: write, lru: c.tick}
	return out
}

// Flush invalidates every resident line, calling wb (if non-nil) for each
// dirty one with its line address.
func (c *Cache) Flush(wb func(addr uint64)) {
	for set := uint64(0); set < c.nsets; set++ {
		for i := range c.sets[set] {
			l := &c.sets[set][i]
			if l.valid && l.dirty && wb != nil {
				c.stats.Writebacks++
				wb((l.tag*c.nsets + set) * LineBytes)
			}
			*l = line{}
		}
	}
}

// Contains reports whether addr's line is resident (no LRU update).
func (c *Cache) Contains(addr uint64) bool {
	lineAddr := addr / LineBytes
	set := lineAddr % c.nsets
	tag := lineAddr / c.nsets
	for _, w := range c.sets[set] {
		if w.valid && w.tag == tag {
			return true
		}
	}
	return false
}

// MissEvent is one request leaving the hierarchy toward memory.
type MissEvent struct {
	Addr  uint64
	Write bool // true for dirty writebacks
	// Demand is true for fills the CPU is waiting on; writebacks are not
	// on the critical path.
	Demand bool
}

// Hierarchy chains an L1 data cache and a shared L2. L2 misses and L2
// writebacks are delivered to the Miss callback (the memory controller).
type Hierarchy struct {
	L1, L2 *Cache
	Miss   func(ev MissEvent)
}

// NewHierarchy builds the two-level hierarchy with the given configs.
func NewHierarchy(l1, l2 Config, miss func(ev MissEvent)) *Hierarchy {
	return &Hierarchy{L1: New(l1), L2: New(l2), Miss: miss}
}

// Level identifies where an access was served.
type Level int

const (
	// LevelL1 means the access hit in L1.
	LevelL1 Level = iota
	// LevelL2 means it missed L1 and hit L2.
	LevelL2
	// LevelMemory means it missed both levels and went to DRAM.
	LevelMemory
)

// Access walks one data access through the hierarchy and returns where it
// was served.
func (h *Hierarchy) Access(addr uint64, write bool) Level {
	if o := h.L1.Access(addr, write); o.Hit {
		return LevelL1
	} else if o.Writeback {
		// L1 dirty victim lands in L2 (it is inclusive enough for our
		// purposes: allocate on writeback).
		if o2 := h.L2.Access(o.VictimAddr, true); !o2.Hit {
			h.emitFill(o2, o.VictimAddr)
		}
	}
	o2 := h.L2.Access(addr, false)
	if o2.Hit {
		return LevelL2
	}
	h.emitFill(o2, addr)
	return LevelMemory
}

// Flush writes all dirty state back to memory and empties both levels —
// the model of a cache flush between program phases.
func (h *Hierarchy) Flush() {
	h.L1.Flush(func(addr uint64) {
		if o := h.L2.Access(addr, true); o.Writeback && h.Miss != nil {
			h.Miss(MissEvent{Addr: o.VictimAddr, Write: true, Demand: false})
		}
	})
	h.L2.Flush(func(addr uint64) {
		if h.Miss != nil {
			h.Miss(MissEvent{Addr: addr, Write: true, Demand: false})
		}
	})
}

func (h *Hierarchy) emitFill(o Outcome, addr uint64) {
	if h.Miss == nil {
		return
	}
	if o.Writeback {
		h.Miss(MissEvent{Addr: o.VictimAddr, Write: true, Demand: false})
	}
	h.Miss(MissEvent{Addr: addr &^ (LineBytes - 1), Write: false, Demand: true})
}
