// Package cpu models the processor side of the evaluation platform: an
// in-order core timing model (Table 3: 4 cores × 4 threads, 2 GHz) with a
// bounded window of outstanding memory requests, IPC accounting, and the
// IPC-based linear power scaling of a 45nm Intel Xeon used by the paper
// (§5, following [3, 40]).
package cpu

// Config holds the core timing and power parameters.
type Config struct {
	ClockHz       float64
	FlopsPerCycle float64 // in-order FP issue rate
	L1HitCycles   uint64
	L2HitCycles   uint64
	// MSHRs bounds overlapping memory-level parallelism: at most this many
	// L2 misses may be in flight before the core stalls.
	MSHRs int
	// MaxPowerW at IPC = PeakIPC, IdlePowerW at IPC = 0; linear between.
	MaxPowerW  float64
	IdlePowerW float64
	PeakIPC    float64
}

// DefaultConfig models the Table 3 node.
func DefaultConfig() Config {
	return Config{
		ClockHz:       2e9,
		FlopsPerCycle: 2,
		L1HitCycles:   1,
		L2HitCycles:   10,
		MSHRs:         8,
		MaxPowerW:     130,
		IdlePowerW:    65,
		PeakIPC:       2,
	}
}

// Core tracks one instruction stream's progress through time.
type Core struct {
	cfg          Config
	now          uint64
	instructions uint64
	// pending holds completion cycles of in-flight misses, oldest first.
	pending []uint64
	// computeCycles and stallCycles split time for reporting.
	computeCycles uint64
	stallCycles   uint64
}

// New returns a core at cycle 0.
func New(cfg Config) *Core {
	return &Core{cfg: cfg, pending: make([]uint64, 0, cfg.MSHRs)}
}

// Now returns the current cycle.
func (c *Core) Now() uint64 { return c.now }

// Instructions returns the retired instruction count.
func (c *Core) Instructions() uint64 { return c.instructions }

// Compute retires ops arithmetic operations, advancing time at the issue
// rate.
func (c *Core) Compute(ops uint64) {
	if ops == 0 {
		return
	}
	c.instructions += ops
	d := uint64(float64(ops) / c.cfg.FlopsPerCycle)
	if d == 0 {
		d = 1
	}
	c.now += d
	c.computeCycles += d
}

// MemAccess retires one load/store instruction that hit at a cache level.
func (c *Core) MemAccess(latency uint64) {
	c.instructions++
	c.now += latency
	c.computeCycles += latency
}

// L1Hit retires a load/store served by L1.
func (c *Core) L1Hit() { c.MemAccess(c.cfg.L1HitCycles) }

// L2Hit retires a load/store served by L2.
func (c *Core) L2Hit() { c.MemAccess(c.cfg.L2HitCycles) }

// BeginMiss reports the issue cycle for a new L2 miss, stalling first if
// the MSHR window is full.
func (c *Core) BeginMiss() uint64 {
	c.instructions++
	if len(c.pending) >= c.cfg.MSHRs {
		oldest := c.pending[0]
		c.pending = c.pending[1:]
		if oldest > c.now {
			c.stallCycles += oldest - c.now
			c.now = oldest
		}
	}
	return c.now
}

// CompleteMiss records the completion cycle returned by the memory system
// for a miss issued at BeginMiss.
func (c *Core) CompleteMiss(complete uint64) {
	// Insert keeping the ring ordered (completions can come back out of
	// order across channels).
	i := len(c.pending)
	c.pending = append(c.pending, complete)
	for i > 0 && c.pending[i-1] > complete {
		c.pending[i] = c.pending[i-1]
		i--
	}
	c.pending[i] = complete
}

// Drain waits for all outstanding misses.
func (c *Core) Drain() {
	for _, p := range c.pending {
		if p > c.now {
			c.stallCycles += p - c.now
			c.now = p
		}
	}
	c.pending = c.pending[:0]
}

// Advance moves time forward to at least cycle t (for fixed-cost software
// events like interrupt handling).
func (c *Core) Advance(cycles uint64) { c.now += cycles; c.computeCycles += cycles }

// IPC returns instructions per cycle so far.
func (c *Core) IPC() float64 {
	if c.now == 0 {
		return 0
	}
	return float64(c.instructions) / float64(c.now)
}

// Seconds converts the elapsed cycles to wall time.
func (c *Core) Seconds() float64 { return float64(c.now) / c.cfg.ClockHz }

// PowerW returns the modeled processor power at the measured IPC: a linear
// scaling between idle and max, saturating at PeakIPC.
func (c *Core) PowerW() float64 {
	u := c.IPC() / c.cfg.PeakIPC
	if u > 1 {
		u = 1
	}
	return c.cfg.IdlePowerW + u*(c.cfg.MaxPowerW-c.cfg.IdlePowerW)
}

// EnergyJ returns processor energy for the elapsed time.
func (c *Core) EnergyJ() float64 { return c.PowerW() * c.Seconds() }

// Breakdown returns (computeCycles, stallCycles).
func (c *Core) Breakdown() (compute, stall uint64) { return c.computeCycles, c.stallCycles }
