package cpu

import (
	"testing"
	"testing/quick"
)

func TestComputeAdvancesTime(t *testing.T) {
	c := New(DefaultConfig())
	c.Compute(100)
	if c.Now() != 50 { // 2 flops/cycle
		t.Errorf("now = %d, want 50", c.Now())
	}
	if c.Instructions() != 100 {
		t.Errorf("instructions = %d", c.Instructions())
	}
	c.Compute(0)
	if c.Now() != 50 {
		t.Error("Compute(0) advanced time")
	}
	c.Compute(1) // rounds up to 1 cycle
	if c.Now() != 51 {
		t.Errorf("now = %d, want 51", c.Now())
	}
}

func TestHitLatencies(t *testing.T) {
	c := New(DefaultConfig())
	c.L1Hit()
	if c.Now() != DefaultConfig().L1HitCycles {
		t.Errorf("L1 hit now = %d", c.Now())
	}
	c.L2Hit()
	if c.Now() != DefaultConfig().L1HitCycles+DefaultConfig().L2HitCycles {
		t.Errorf("after L2 hit now = %d", c.Now())
	}
}

func TestMissWindowStalls(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MSHRs = 2
	c := New(cfg)
	// Two misses fit in the window without stalling.
	c.BeginMiss()
	c.CompleteMiss(100)
	c.BeginMiss()
	c.CompleteMiss(200)
	if c.Now() != 0 {
		t.Fatalf("window misses stalled: now = %d", c.Now())
	}
	// Third miss waits for the oldest.
	c.BeginMiss()
	if c.Now() != 100 {
		t.Errorf("stall advanced to %d, want 100", c.Now())
	}
	c.CompleteMiss(300)
	c.Drain()
	if c.Now() != 300 {
		t.Errorf("drain advanced to %d, want 300", c.Now())
	}
	_, stall := c.Breakdown()
	if stall != 300 {
		t.Errorf("stall cycles = %d, want 300", stall)
	}
}

func TestOutOfOrderCompletionsOrdered(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MSHRs = 2
	c := New(cfg)
	c.BeginMiss()
	c.CompleteMiss(500) // slow channel
	c.BeginMiss()
	c.CompleteMiss(100) // fast channel, completes first
	// The third miss should wait only for the EARLIEST completion.
	c.BeginMiss()
	if c.Now() != 100 {
		t.Errorf("stalled to %d, want 100 (earliest)", c.Now())
	}
}

func TestIPCAndPower(t *testing.T) {
	cfg := DefaultConfig()
	c := New(cfg)
	if c.IPC() != 0 || c.PowerW() != cfg.IdlePowerW {
		t.Error("idle core should report IPC 0 at idle power")
	}
	c.Compute(1000) // 500 cycles → IPC 2 = PeakIPC
	if ipc := c.IPC(); ipc != 2 {
		t.Errorf("IPC = %v", ipc)
	}
	if p := c.PowerW(); p != cfg.MaxPowerW {
		t.Errorf("power at peak IPC = %v, want %v", p, cfg.MaxPowerW)
	}
	// Stalling halves IPC → power between idle and max.
	c.BeginMiss()
	c.CompleteMiss(c.Now() + 499)
	c.Drain()
	p := c.PowerW()
	if p <= cfg.IdlePowerW || p >= cfg.MaxPowerW {
		t.Errorf("power = %v not strictly between idle and max", p)
	}
}

func TestSecondsAndEnergy(t *testing.T) {
	c := New(DefaultConfig())
	c.Compute(4e9) // 2e9 cycles = 1 second
	if s := c.Seconds(); s != 1 {
		t.Errorf("seconds = %v", s)
	}
	if e := c.EnergyJ(); e != c.PowerW() {
		t.Errorf("energy for 1s = %v, want power %v", e, c.PowerW())
	}
}

func TestAdvance(t *testing.T) {
	c := New(DefaultConfig())
	c.Advance(123)
	if c.Now() != 123 {
		t.Errorf("now = %d", c.Now())
	}
	if c.Instructions() != 0 {
		t.Error("Advance retired instructions")
	}
}

// Property: time never goes backwards under any operation sequence.
func TestMonotonicTimeProperty(t *testing.T) {
	c := New(DefaultConfig())
	f := func(op uint8, arg uint16) bool {
		before := c.Now()
		switch op % 5 {
		case 0:
			c.Compute(uint64(arg))
		case 1:
			c.L1Hit()
		case 2:
			c.L2Hit()
		case 3:
			issue := c.BeginMiss()
			c.CompleteMiss(issue + uint64(arg))
		case 4:
			c.Drain()
		}
		return c.Now() >= before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
