package vote

import "testing"

func TestQuorum(t *testing.T) {
	for _, tc := range []struct{ r, want int }{
		{1, 1}, {2, 2}, {3, 2}, {4, 3}, {5, 3}, {7, 4}, {9, 5},
	} {
		if got := Quorum(tc.r); got != tc.want {
			t.Errorf("Quorum(%d) = %d, want %d", tc.r, got, tc.want)
		}
	}
}

func TestDecideUnanimous(t *testing.T) {
	d := Decide(3, []Ballot{
		{Node: "a", Outcome: "corrected", Sig: "s1"},
		{Node: "b", Outcome: "corrected", Sig: "s1"},
		{Node: "c", Outcome: "corrected", Sig: "s1"},
	})
	if !d.Reached || d.Winner != 0 || len(d.Agree) != 3 || len(d.Suspects) != 0 || d.Best != 3 {
		t.Errorf("unanimous decision = %+v", d)
	}
}

func TestDecideMajorityWithSuspect(t *testing.T) {
	d := Decide(3, []Ballot{
		{Node: "a", Outcome: "corrected", Sig: "s1"},
		{Node: "liar", Outcome: "corrected", Sig: "wrong"},
		{Node: "c", Outcome: "corrected", Sig: "s1"},
	})
	if !d.Reached || d.Winner != 0 || d.Best != 2 {
		t.Fatalf("majority decision = %+v", d)
	}
	if len(d.Suspects) != 1 || d.Suspects[0] != 1 {
		t.Errorf("suspects = %v, want [1] (the liar)", d.Suspects)
	}
}

// TestDecideSplitNoQuorum: a three-way split indicts nobody — without a
// majority there is no ground truth to charge the minority against.
func TestDecideSplitNoQuorum(t *testing.T) {
	d := Decide(3, []Ballot{
		{Node: "a", Outcome: "corrected", Sig: "s1"},
		{Node: "b", Outcome: "corrected", Sig: "s2"},
		{Node: "c", Outcome: "corrected", Sig: "s3"},
	})
	if d.Reached || d.Winner != -1 || d.Best != 1 {
		t.Errorf("split decision = %+v", d)
	}
	if len(d.Suspects) != 0 {
		t.Errorf("no-quorum election charged suspects %v", d.Suspects)
	}
}

// TestDecideAbortsAgree: honest deterministic aborts carry the same typed
// outcome and an empty signature, so they form one ballot class and can
// win an election — a delivered "no answer" beats a lone liar's answer.
func TestDecideAbortsAgree(t *testing.T) {
	d := Decide(3, []Ballot{
		{Node: "a", Outcome: "aborted"},
		{Node: "liar", Outcome: "corrected", Sig: "forged"},
		{Node: "c", Outcome: "aborted"},
	})
	if !d.Reached || d.Winner != 0 || len(d.Agree) != 2 {
		t.Fatalf("abort election = %+v", d)
	}
	if len(d.Suspects) != 1 || d.Suspects[0] != 1 {
		t.Errorf("suspects = %v, want [1]", d.Suspects)
	}
	// But an abort must not collide with an answer class: same empty sig,
	// different outcome.
	d = Decide(3, []Ballot{
		{Node: "a", Outcome: "aborted"},
		{Node: "b", Outcome: "corrected"},
		{Node: "c", Outcome: "aborted"},
	})
	if !d.Reached || len(d.Agree) != 2 || d.Agree[0] != 0 {
		t.Errorf("abort-vs-empty-answer election = %+v", d)
	}
}

// TestDecideQuorumOverRequested: the bar is a majority of the REQUESTED
// replica count — two agreeing ballots out of five requested are not a
// quorum even if they are all that arrived.
func TestDecideQuorumOverRequested(t *testing.T) {
	ballots := []Ballot{
		{Node: "a", Outcome: "corrected", Sig: "s1"},
		{Node: "b", Outcome: "corrected", Sig: "s1"},
	}
	if d := Decide(5, ballots); d.Reached {
		t.Errorf("2 of 5 requested reached quorum: %+v", d)
	}
	// The same two ballots ARE a quorum when only three were requested:
	// lost replicas raise the bar relatively, never lower it.
	if d := Decide(3, ballots); !d.Reached || len(d.Agree) != 2 {
		t.Errorf("2 of 3 requested: %+v", d)
	}
	if d := Decide(1, ballots[:1]); !d.Reached || d.Winner != 0 {
		t.Errorf("vote of one: %+v", d)
	}
	if d := Decide(3, nil); d.Reached || d.Winner != -1 || d.Best != 0 {
		t.Errorf("empty election: %+v", d)
	}
}
