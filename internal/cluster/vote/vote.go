// Package vote is the pure decision core of the gateway's replica-voting
// integrity tier (FTMR-style, after the paper's lineage of replicated
// fault tolerance: FRFT replicates the whole computation, DCRFT only the
// verification pass). It knows nothing about HTTP, nodes, or scheduling —
// it counts ballots. A ballot is a replica's classified result keyed by
// (outcome, canonical answer signature): deterministic honest replicas of
// the same request produce bit-identical answers, so their ballots
// collide exactly, and honest aborts (same typed outcome, empty
// signature) vote together too. Delivery requires a strict majority of
// the requested replica count — not of the ballots that happened to
// arrive — so lost replicas can never lower the bar a lying node must
// clear.
package vote

import "errors"

// ErrNoQuorum reports that a voting request could not assemble a
// signature majority — at admission (fewer eligible distinct nodes than
// replicas requested) or at decision time (ballots split or lost). It is
// the typed boundary that keeps silent wrong answers structurally
// unreachable: without quorum the gateway returns this, never a guess.
var ErrNoQuorum = errors.New("vote: no answer-signature quorum")

// Quorum is the delivery threshold for R replicas: ⌈(R+1)/2⌉, a strict
// majority. R=1 → 1 (passthrough), R=3 → 2 (tolerates one liar or one
// loss), R=5 → 3.
func Quorum(r int) int { return (r + 2) / 2 }

// Ballot is one replica's vote.
type Ballot struct {
	// Node identifies the replica (diagnostics; distinctness is the
	// scheduler's job).
	Node string
	// Outcome is the replica's typed classification (corrected, restarted,
	// aborted).
	Outcome string
	// Sig is the canonical answer signature (abft.AnswerSig); empty for
	// aborted replicas, which carry no answer.
	Sig string
}

// key is the equivalence class a ballot votes for.
func (b Ballot) key() string { return b.Outcome + "|" + b.Sig }

// Decision is the counted election.
type Decision struct {
	// Reached reports whether some ballot class holds a strict majority of
	// the REQUESTED replica count.
	Reached bool
	// Winner is the index (into the ballots slice) of the first ballot of
	// the winning class, -1 if none.
	Winner int
	// Agree lists the indexes of every ballot in the winning class.
	Agree []int
	// Suspects lists the indexes of ballots that disagreed with a reached
	// majority — the nodes whose answers the election proved wrong. Empty
	// when no quorum was reached: without a majority there is no ground
	// truth to indict anyone against.
	Suspects []int
	// Best is the largest agreeing-class size seen (equals len(Agree) when
	// Reached; the near-miss diagnostic otherwise).
	Best int
}

// Decide counts ballots from an election over r requested replicas. Fewer
// than r ballots may be present (lost replicas); the quorum bar stays
// ⌈(r+1)/2⌉ regardless. At most one class can reach a strict majority, so
// the outcome is never ambiguous.
func Decide(r int, ballots []Ballot) Decision {
	d := Decision{Winner: -1}
	counts := make(map[string]int, len(ballots))
	for _, b := range ballots {
		counts[b.key()]++
	}
	need := Quorum(r)
	winKey := ""
	for _, b := range ballots {
		if c := counts[b.key()]; c > d.Best {
			d.Best = c
			if c >= need {
				winKey = b.key()
			}
		}
	}
	if winKey == "" {
		return d
	}
	d.Reached = true
	for i, b := range ballots {
		if b.key() == winKey {
			if d.Winner < 0 {
				d.Winner = i
			}
			d.Agree = append(d.Agree, i)
		} else {
			d.Suspects = append(d.Suspects, i)
		}
	}
	return d
}
