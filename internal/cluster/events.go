package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"time"

	"coopabft/internal/serve"
)

// Error-bus relay: the gateway holds one GET /v1/events stream open per
// node and republishes every event onto its own bus with Node stamped, so
// a subscriber at the gateway sees cluster-wide fault traffic (panel
// faults, ladder escalations, checkpoint commits) pushed at fault time.
//
// The stream doubles as push-on-fault death detection, complementing the
// probe loop's pull cadence: a node that never granted the subscription
// (older build, still booting, connection refused) is merely unsupported
// and stays probe-governed — but an established stream that drops means
// the worker process went away, so the gateway marks the node unhealthy
// and publishes node_death immediately instead of waiting out the next
// probe interval.

// watchLoop keeps one node's event subscription alive until Close,
// reconnecting after drops.
func (g *Gateway) watchLoop(nd *node) {
	defer g.probeWG.Done()
	for {
		g.watchOnce(nd)
		select {
		case <-g.quit:
			return
		case <-time.After(g.watchRetry()):
		}
	}
}

// watchRetry paces reconnection attempts; it rides the probe interval so a
// cluster tuned for fast detection also re-subscribes fast.
func (g *Gateway) watchRetry() time.Duration {
	if g.cfg.ProbeInterval > 0 {
		return g.cfg.ProbeInterval
	}
	return 250 * time.Millisecond
}

// watchOnce opens one stream and relays it until it ends.
func (g *Gateway) watchOnce(nd *node) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-g.quit:
			cancel() // unblock the body read on shutdown
		case <-done:
		}
	}()

	req, err := http.NewRequestWithContext(ctx, http.MethodGet, nd.base+"/v1/events", nil)
	if err != nil {
		return
	}
	resp, err := g.longClient.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	// Established means a real event stream: 200 with the NDJSON content
	// type. Anything else (an older build's 404, a fake that answers every
	// route with JSON) is unsupported, not a subscription — its ending must
	// not read as a death.
	if resp.StatusCode != http.StatusOK ||
		resp.Header.Get("Content-Type") != "application/x-ndjson" {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev serve.Event
		if json.Unmarshal(line, &ev) != nil {
			continue
		}
		ev.Node = nd.id
		g.bus.Publish(ev) // restamps Seq on the gateway's sequence
		g.m.EventsRelayed.Add(1)
	}

	select {
	case <-g.quit:
		return // shutdown tore the stream down; not a death
	default:
	}
	nd.healthy.Store(false)
	nd.m.Healthy.Set(0)
	g.m.NodeDeaths.Add(1)
	g.bus.Publish(serve.Event{Type: serve.EventNodeDeath, Node: nd.id, Detail: "event stream dropped"})
}
