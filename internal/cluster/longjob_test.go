package cluster

import (
	"net/http/httptest"
	"testing"
	"time"

	"coopabft/internal/checkpoint"
	"coopabft/internal/serve"
)

// longTestGateway builds a gateway with background machinery on (probes +
// event watchers), fronted by its own HTTP server so workers can stream
// checkpoints back, and a tight CheckpointEvery so migrations have fresh
// state to resume from.
func longTestGateway(t *testing.T, nodes ...NodeConfig) *Gateway {
	t.Helper()
	g, err := New(Config{
		Nodes:           nodes,
		Window:          8,
		Retries:         3,
		RetryBackoff:    time.Millisecond,
		ProbeInterval:   25 * time.Millisecond,
		ProbeTimeout:    250 * time.Millisecond,
		BreakerFailures: 2,
		BreakerCooldown: 100 * time.Millisecond,
		CheckpointEvery: 1,
		Seed:            19,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	ts := httptest.NewServer(NewHandler(g))
	t.Cleanup(ts.Close)
	g.SetSelfURL(ts.URL)
	return g
}

// TestLongJobMigratesOnWorkerDeath is the in-process version of the CI
// SIGKILL-mid-CG chaos gate: submit a CG solve as a long job, kill the
// worker executing it after the gateway has accepted a checkpoint, and
// require the job to finish converged on the other node, resumed from a
// step > 0, with exactly one migration and a measured recovery latency —
// never a wrong answer, never a silent cold restart.
func TestLongJobMigratesOnWorkerDeath(t *testing.T) {
	nodes := map[string]*restartableNode{
		"n0": startRestartable(t, ""),
		"n1": startRestartable(t, ""),
	}
	g := longTestGateway(t,
		NodeConfig{ID: "n0", BaseURL: "http://" + nodes["n0"].addr},
		NodeConfig{ID: "n1", BaseURL: "http://" + nodes["n1"].addr},
	)
	events, cancelSub := g.Bus().Subscribe(512)
	defer cancelSub()

	st, err := g.SubmitJob(serve.Request{Kernel: "cg", NX: 48, NY: 48, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Long {
		t.Fatalf("CG job not admitted on the long path: %+v", st)
	}

	// Kill the executing worker only once a checkpoint has landed, so the
	// migration has state to resume from.
	var victim string
	waitFor(t, "first accepted checkpoint", func() bool {
		cur, err := g.JobStatusOf(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if terminal(cur.State) {
			t.Fatalf("job finished before the kill could land: %+v", cur)
		}
		victim = cur.Node
		return cur.Checkpoints >= 1 && cur.Step >= 1
	})
	nodes[victim].kill()

	// The resumed solve runs to convergence; give it real time (the -race
	// build is several times slower than the plain one).
	var final serve.JobStatus
	deadline := time.Now().Add(90 * time.Second)
	for {
		cur, err := g.JobStatusOf(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		final = cur
		if terminal(cur.State) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for the migrated job to finish: %+v", cur)
		}
		time.Sleep(5 * time.Millisecond)
	}

	if final.State != serve.JobDone {
		t.Fatalf("job state %q (error %q), want done", final.State, final.Error)
	}
	if final.Result == nil || final.Result.Outcome != "corrected" {
		t.Fatalf("result %+v, want corrected", final.Result)
	}
	if final.Migrations != 1 {
		t.Errorf("migrations = %d, want 1", final.Migrations)
	}
	if final.ResumeStep <= 0 {
		t.Errorf("resume_step = %d, want > 0 (cold restart is a gate failure)", final.ResumeStep)
	}
	if final.Node == victim {
		t.Errorf("final node %s is the killed worker", victim)
	}
	if final.RecoveryMS <= 0 {
		t.Errorf("recovery_ms = %v, want > 0", final.RecoveryMS)
	}
	if got := g.m.Migrations.Value(); got != 1 {
		t.Errorf("metrics migrations = %d, want 1", got)
	}
	if got := g.m.CheckpointsStored.Value(); got < 1 {
		t.Errorf("metrics checkpoints_stored = %d, want >= 1", got)
	}
	if g.m.RecoveryMSSum.Value() <= 0 {
		t.Error("metrics recovery_ms_sum not recorded")
	}

	// The error bus carried the fault story: the gateway published its own
	// node_death for the killed worker.
	var seen []serve.Event
	waitFor(t, "node_death on the gateway bus", func() bool {
		for {
			select {
			case e := <-events:
				seen = append(seen, e)
			default:
				for _, e := range seen {
					if e.Type == serve.EventNodeDeath && e.Node == victim {
						return true
					}
				}
				return false
			}
		}
	})
}

// TestLongJobEventRelay: a healthy single-node long job's fault-path
// events (job_resumed, checkpoint_committed, job_done) arrive on the
// gateway bus stamped with the worker's node ID.
func TestLongJobEventRelay(t *testing.T) {
	nd := startRestartable(t, "")
	g := longTestGateway(t, NodeConfig{ID: "w0", BaseURL: "http://" + nd.addr})

	st, err := g.SubmitJob(serve.Request{Kernel: "cg", NX: 12, NY: 12, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "long job to finish", func() bool {
		cur, err := g.JobStatusOf(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		return terminal(cur.State)
	})
	final, _ := g.JobStatusOf(st.ID)
	if final.State != serve.JobDone || final.Result == nil || final.Result.Outcome != "corrected" {
		t.Fatalf("final %+v, want done/corrected", final)
	}
	if final.Checkpoints < 1 || final.Step < 1 {
		t.Errorf("no checkpoints retained: %+v", final)
	}

	// Relay is asynchronous; wait for the terminal event to appear.
	waitFor(t, "job_done relayed onto the gateway bus", func() bool {
		for _, e := range g.Bus().Recent(0) {
			if e.Type == serve.EventJobDone && e.Job == st.ID && e.Node == "w0" {
				return true
			}
		}
		return false
	})
	var sawResume, sawCkpt bool
	for _, e := range g.Bus().Recent(0) {
		if e.Node != "w0" {
			continue
		}
		switch e.Type {
		case serve.EventJobResumed:
			sawResume = true
		case serve.EventCheckpoint:
			sawCkpt = true
		}
	}
	if !sawResume || !sawCkpt {
		t.Errorf("relay missed events: job_resumed=%v checkpoint_committed=%v", sawResume, sawCkpt)
	}
}

// TestAcceptCheckpointEpochAndStepGuards: a zombie incarnation's PUTs
// (old epoch) and non-advancing steps are discarded; fresh state lands.
func TestAcceptCheckpointEpochAndStepGuards(t *testing.T) {
	rec := &jobRecord{id: "j1"}
	rec.long.epoch = 2
	buf := checkpoint.Encode(checkpoint.Snapshot{Step: 4})

	if ok, _ := rec.acceptCheckpoint(1, 4, 0, buf); ok {
		t.Error("stale-epoch PUT accepted")
	}
	if ok, _ := rec.acceptCheckpoint(2, 4, 1, buf); !ok {
		t.Fatal("current-epoch PUT rejected")
	}
	if rec.status.Step != 4 || rec.status.Checkpoints != 1 || rec.status.RestartsUsed != 1 {
		t.Fatalf("status not updated: %+v", rec.status)
	}
	if ok, _ := rec.acceptCheckpoint(2, 4, 1, buf); ok {
		t.Error("non-advancing step accepted")
	}
	if ok, _ := rec.acceptCheckpoint(2, 8, 1, buf); !ok {
		t.Error("advancing step rejected")
	}
	if rec.status.Checkpoints != 2 {
		t.Errorf("checkpoints = %d, want 2", rec.status.Checkpoints)
	}
}
