package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"coopabft/internal/core"
	"coopabft/internal/serve"
)

// testGateway builds a prober-less gateway (tests drive probes manually)
// with fast failover knobs.
func testGateway(t *testing.T, nodes ...NodeConfig) *Gateway {
	t.Helper()
	g, err := New(Config{
		Nodes:           nodes,
		Window:          8,
		Retries:         3,
		RetryBackoff:    time.Millisecond,
		ProbeInterval:   -1, // no background prober: deterministic tests
		BreakerFailures: 2,
		BreakerCooldown: 50 * time.Millisecond,
		Seed:            7,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	return g
}

// serveNode starts a real in-process abftd-equivalent (serve.Service
// behind serve.NewHandler) and returns its base URL.
func serveNode(t *testing.T) string {
	t.Helper()
	svc := serve.New(serve.Config{MaxConcurrency: 2, QueueDepth: 64, QueueTimeout: 30 * time.Second})
	ts := httptest.NewServer(serve.NewHandler(svc))
	t.Cleanup(func() { ts.Close(); svc.Close() })
	return ts.URL
}

// stubNode starts an httptest server with a canned handler.
func stubNode(t *testing.T, h http.HandlerFunc) string {
	t.Helper()
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return ts.URL
}

func okStub(t *testing.T, hits *atomic.Int64, outcome string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		json.NewEncoder(w).Encode(serve.Response{Kernel: "gemm", N: 48, Outcome: outcome})
	}
}

// TestGatewayEndToEnd: a two-node cluster of real serve nodes classifies
// fault-injected requests across kernels; responses are node-stamped.
func TestGatewayEndToEnd(t *testing.T) {
	g := testGateway(t,
		NodeConfig{ID: "n0", BaseURL: serveNode(t)},
		NodeConfig{ID: "n1", BaseURL: serveNode(t)},
	)
	ok := map[string]bool{"corrected": true, "restarted": true, "aborted": true}
	seen := map[string]bool{}
	for i, req := range []serve.Request{
		{Kernel: "gemm", N: 48, Seed: 11, Faults: 1},
		{Kernel: "gemm", N: 96, Seed: 12, Faults: 2, FaultKind: "chip-failure", Strategy: "P_CK+No_ECC"},
		{Kernel: "gemm", N: 48, Seed: 15, Faults: 1, VerifyMode: "fused"},
		{Kernel: "cholesky", N: 32, Seed: 13, Faults: 1, Strategy: "W_SD"},
		{Kernel: "cg", NX: 8, NY: 8, Seed: 14},
	} {
		resp, err := g.Do(context.Background(), req)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if !ok[resp.Outcome] {
			t.Fatalf("request %d: outcome %q outside taxonomy", i, resp.Outcome)
		}
		if req.VerifyMode != "" && resp.VerifyMode != req.VerifyMode {
			t.Errorf("request %d: verify mode %q not echoed through the gateway (got %q)",
				i, req.VerifyMode, resp.VerifyMode)
		}
		if resp.Node == "" {
			t.Errorf("request %d: response not node-stamped", i)
		}
		seen[resp.Node] = true
	}
	if g.m.Delivered.Value() != 5 {
		t.Errorf("delivered = %d, want 5", g.m.Delivered.Value())
	}
	// The gateway applies the nodes' admission taxonomy locally: the
	// gemm-only fused mode is rejected before placement for other kernels.
	if _, err := g.Do(context.Background(),
		serve.Request{Kernel: "cholesky", N: 32, Seed: 16, VerifyMode: "fused"}); !errors.Is(err, serve.ErrBadRequest) {
		t.Errorf("fused cholesky through gateway: err = %v, want ErrBadRequest", err)
	}
	for id := range seen {
		if id != "n0" && id != "n1" {
			t.Errorf("unknown node id %q", id)
		}
	}
}

// TestCapabilityRouting: a request's strategy only lands on nodes that
// advertise it — the cluster-level malloc_ecc contract.
func TestCapabilityRouting(t *testing.T) {
	var ckHits, allHits atomic.Int64
	g := testGateway(t,
		NodeConfig{ID: "ck-only", BaseURL: stubNode(t, okStub(t, &ckHits, "corrected")),
			Strategies: []core.Strategy{core.WholeChipkill}},
		NodeConfig{ID: "any", BaseURL: stubNode(t, okStub(t, &allHits, "corrected"))},
	)
	// Strategies the ck-only node does not advertise must all go to "any",
	// across many size classes so some would otherwise rank ck-only first.
	for n := 8; n <= 128; n += 8 {
		resp, err := g.Do(context.Background(),
			serve.Request{Kernel: "gemm", N: n, Strategy: "P_CK+P_SD", Seed: uint64(n)})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if resp.Node != "any" {
			t.Fatalf("n=%d: P_CK+P_SD landed on %q", n, resp.Node)
		}
	}
	if ckHits.Load() != 0 {
		t.Errorf("capability-incompatible node saw %d requests", ckHits.Load())
	}
	// And a strategy nobody advertises is a typed capability miss.
	gNone := testGateway(t, NodeConfig{ID: "ck-only", BaseURL: stubNode(t, okStub(t, &ckHits, "corrected")),
		Strategies: []core.Strategy{core.WholeChipkill}})
	if _, err := gNone.Do(context.Background(),
		serve.Request{Kernel: "gemm", N: 48, Strategy: "No_ECC"}); !errors.Is(err, ErrNoNodes) {
		t.Errorf("err = %v, want ErrNoNodes", err)
	}
}

// TestFailoverOn503: the first-ranked node answering 503 fails over to the
// runner-up; the response records the retry and the breaker counts the
// faults.
func TestFailoverOn503(t *testing.T) {
	var sickHits, okHits atomic.Int64
	sick := stubNode(t, func(w http.ResponseWriter, r *http.Request) {
		sickHits.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]string{"error": "queue timeout", "kind": "queue_timeout"})
	})
	okURL := stubNode(t, okStub(t, &okHits, "corrected"))

	// Name the nodes so the sick one ranks first for this key: try both
	// assignments and keep the one where "a" wins the n=48 gemm key.
	nodes := mkNodes("a", "b")
	first := rank(nodes, placementKey(serve.KernelGEMM, sizeClass(48)))[0].id
	cfgs := []NodeConfig{{ID: first, BaseURL: sick}}
	other := "a"
	if first == "a" {
		other = "b"
	}
	cfgs = append(cfgs, NodeConfig{ID: other, BaseURL: okURL})
	g := testGateway(t, cfgs...)

	resp, err := g.Do(context.Background(), serve.Request{Kernel: "gemm", N: 48, Seed: 1})
	if err != nil {
		t.Fatalf("failover Do: %v", err)
	}
	if resp.Node != other || resp.GatewayRetries != 1 {
		t.Fatalf("resp node %q retries %d, want %q/1", resp.Node, resp.GatewayRetries, other)
	}
	if sickHits.Load() != 1 || okHits.Load() != 1 {
		t.Errorf("hits sick=%d ok=%d, want 1/1", sickHits.Load(), okHits.Load())
	}
	if g.m.Retries.Value() != 1 {
		t.Errorf("retries counter = %d, want 1", g.m.Retries.Value())
	}

	// A second 503 trips the sick node's breaker (threshold 2): the next
	// request skips it without a wasted forward.
	if _, err := g.Do(context.Background(), serve.Request{Kernel: "gemm", N: 48, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	before := sickHits.Load()
	if _, err := g.Do(context.Background(), serve.Request{Kernel: "gemm", N: 48, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	if sickHits.Load() != before {
		t.Errorf("breaker-open node still saw a forward")
	}
	if g.m.Node(first).BreakerTrips.Value() == 0 {
		t.Error("breaker trip not counted")
	}
}

// TestDeliveredNeverRetried: an aborted classification is a delivered
// answer — the gateway must return it as-is, not shop for a better one.
func TestDeliveredNeverRetried(t *testing.T) {
	var aHits, bHits atomic.Int64
	g := testGateway(t,
		NodeConfig{ID: "a", BaseURL: stubNode(t, okStub(t, &aHits, "aborted"))},
		NodeConfig{ID: "b", BaseURL: stubNode(t, okStub(t, &bHits, "corrected"))},
	)
	resp, err := g.Do(context.Background(), serve.Request{Kernel: "gemm", N: 48, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Outcome != "aborted" && resp.Outcome != "corrected" {
		t.Fatalf("outcome %q", resp.Outcome)
	}
	if resp.GatewayRetries != 0 {
		t.Errorf("delivered answer was retried %d times", resp.GatewayRetries)
	}
	if aHits.Load()+bHits.Load() != 1 {
		t.Errorf("one request produced %d forwards", aHits.Load()+bHits.Load())
	}
}

// TestWindowSpill: a full outstanding window on the ranked winner spills
// the next request to the runner-up instead of queueing behind it.
func TestWindowSpill(t *testing.T) {
	release := make(chan struct{})
	var slowHits, fastHits atomic.Int64
	slow := stubNode(t, func(w http.ResponseWriter, r *http.Request) {
		slowHits.Add(1)
		<-release
		json.NewEncoder(w).Encode(serve.Response{Kernel: "gemm", N: 48, Outcome: "corrected"})
	})
	fast := stubNode(t, okStub(t, &fastHits, "corrected"))

	nodes := mkNodes("a", "b")
	first := rank(nodes, placementKey(serve.KernelGEMM, sizeClass(48)))[0].id
	other := "a"
	if first == "a" {
		other = "b"
	}
	g, err := New(Config{
		Nodes: []NodeConfig{
			{ID: first, BaseURL: slow},
			{ID: other, BaseURL: fast},
		},
		Window:        1,
		Retries:       2,
		RetryBackoff:  time.Millisecond,
		ProbeInterval: -1,
		Seed:          7,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	defer close(release)

	// Park one request on the winner, filling its window of 1.
	parked := make(chan error, 1)
	go func() {
		_, err := g.Do(context.Background(), serve.Request{Kernel: "gemm", N: 48, Seed: 5})
		parked <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for slowHits.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("parked request never reached the slow node")
		}
		time.Sleep(time.Millisecond)
	}
	// The next request finds the window full and spills.
	resp, err := g.Do(context.Background(), serve.Request{Kernel: "gemm", N: 48, Seed: 6})
	if err != nil {
		t.Fatalf("spill Do: %v", err)
	}
	if resp.Node != other {
		t.Errorf("spilled to %q, want %q", resp.Node, other)
	}
	if g.m.Node(first).WindowSkips.Value() == 0 {
		t.Error("window skip not counted")
	}
	release <- struct{}{}
	if err := <-parked; err != nil {
		t.Errorf("parked request: %v", err)
	}
}

// TestAllWindowsFullIsOverloaded: both windows pinned → typed overload,
// mapped to 429 on the wire.
func TestAllWindowsFullIsOverloaded(t *testing.T) {
	release := make(chan struct{})
	slowHandler := func(w http.ResponseWriter, r *http.Request) {
		<-release
		json.NewEncoder(w).Encode(serve.Response{Kernel: "gemm", N: 48, Outcome: "corrected"})
	}
	g, err := New(Config{
		Nodes: []NodeConfig{
			{ID: "a", BaseURL: stubNode(t, slowHandler)},
			{ID: "b", BaseURL: stubNode(t, slowHandler)},
		},
		Window:        1,
		Retries:       2,
		RetryBackoff:  time.Millisecond,
		ProbeInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	defer close(release)

	done := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func(seed uint64) {
			_, err := g.Do(context.Background(), serve.Request{Kernel: "gemm", N: 48, Seed: seed})
			done <- err
		}(uint64(i))
	}
	deadline := time.Now().Add(2 * time.Second)
	for g.m.Node("a").Inflight.Value()+g.m.Node("b").Inflight.Value() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("windows never filled")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := g.Do(context.Background(), serve.Request{Kernel: "gemm", N: 48, Seed: 9}); !errors.Is(err, serve.ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if g.m.Overloaded.Value() != 1 {
		t.Errorf("overloaded counter = %d, want 1", g.m.Overloaded.Value())
	}
	release <- struct{}{}
	release <- struct{}{}
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Errorf("parked request: %v", err)
		}
	}
}

// TestDrainRejoin: draining a node moves new placements to its peer;
// rejoin restores it.
func TestDrainRejoin(t *testing.T) {
	var aHits, bHits atomic.Int64
	g := testGateway(t,
		NodeConfig{ID: "a", BaseURL: stubNode(t, okStub(t, &aHits, "corrected"))},
		NodeConfig{ID: "b", BaseURL: stubNode(t, okStub(t, &bHits, "corrected"))},
	)
	winner := rank(g.nodes, placementKey(serve.KernelGEMM, sizeClass(48)))[0].id
	if err := g.Drain(winner); err != nil {
		t.Fatal(err)
	}
	resp, err := g.Do(context.Background(), serve.Request{Kernel: "gemm", N: 48, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Node == winner {
		t.Fatalf("draining node %q still placed", winner)
	}
	if err := g.Rejoin(winner); err != nil {
		t.Fatal(err)
	}
	resp, err = g.Do(context.Background(), serve.Request{Kernel: "gemm", N: 48, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Node != winner {
		t.Errorf("rejoined node %q not placed (got %q)", winner, resp.Node)
	}
	if err := g.Drain("nope"); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("Drain(nope) = %v, want ErrUnknownNode", err)
	}
}

// TestGatewayAPI walks the HTTP surface: kernel routes, healthz node
// status, admin drain/rejoin, and the error mapping.
func TestGatewayAPI(t *testing.T) {
	g := testGateway(t, NodeConfig{ID: "n0", BaseURL: serveNode(t)})
	h := NewHandler(g)
	ts := httptest.NewServer(h)
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/gemm", "application/json",
		bytes.NewReader([]byte(`{"n": 32, "seed": 3, "faults": 1}`)))
	if err != nil {
		t.Fatal(err)
	}
	var body serve.Response
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || body.Node != "n0" {
		t.Fatalf("status %d node %q", resp.StatusCode, body.Node)
	}

	// Bad strategy → 400 with the typed envelope.
	resp, err = http.Post(ts.URL+"/v1/gemm", "application/json",
		bytes.NewReader([]byte(`{"strategy": "TripleModular"}`)))
	if err != nil {
		t.Fatal(err)
	}
	var e errorBody
	json.NewDecoder(resp.Body).Decode(&e)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || e.Kind != "bad_request" {
		t.Errorf("bad strategy: status %d kind %q", resp.StatusCode, e.Kind)
	}

	// healthz lists the node.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz struct {
		Status string       `json:"status"`
		Nodes  []NodeStatus `json:"nodes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hz.Status != "ok" || len(hz.Nodes) != 1 || hz.Nodes[0].ID != "n0" || !hz.Nodes[0].Healthy {
		t.Errorf("healthz = %+v", hz)
	}

	// Admin drain → draining visible → rejoin.
	resp, err = http.Post(ts.URL+"/admin/drain?node=n0", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain status %d", resp.StatusCode)
	}
	if st := g.Status(); !st[0].Draining {
		t.Error("drain not visible in status")
	}
	resp, _ = http.Post(ts.URL+"/admin/rejoin?node=n0", "", nil)
	resp.Body.Close()
	if st := g.Status(); st[0].Draining {
		t.Error("rejoin not visible in status")
	}
	// Unknown node → 404.
	resp, _ = http.Post(ts.URL+"/admin/drain?node=ghost", "", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("drain ghost: status %d, want 404", resp.StatusCode)
	}
}

// TestMetricsSnapshotShape: the /debug/vars payload stays numeric and
// carries the per-node breakdown.
func TestMetricsSnapshotShape(t *testing.T) {
	g := testGateway(t, NodeConfig{ID: "n0", BaseURL: serveNode(t)})
	if _, err := g.Do(context.Background(), serve.Request{Kernel: "gemm", N: 32, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	snap := g.m.Snapshot()
	if snap["requests"] != int64(1) || snap["delivered"] != int64(1) {
		t.Errorf("snapshot totals %v", snap)
	}
	nodes, ok := snap["nodes"].(map[string]any)
	if !ok || len(nodes) != 1 {
		t.Fatalf("snapshot nodes = %v", snap["nodes"])
	}
	n0 := nodes["n0"].(map[string]any)
	if n0["delivered"] != int64(1) || n0["inflight"] != int64(0) {
		t.Errorf("node snapshot %v", n0)
	}
}

// restartableNode is a serve node on a fixed address that can be killed
// (connection-refused, like a SIGKILLed abftd) and restarted on the same
// address — the failover/rejoin fixture.
type restartableNode struct {
	t    *testing.T
	addr string
	svc  *serve.Service
	srv  *http.Server
}

func startRestartable(t *testing.T, addr string) *restartableNode {
	t.Helper()
	if addr == "" {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr = ln.Addr().String()
		ln.Close()
	}
	n := &restartableNode{t: t, addr: addr}
	n.start()
	t.Cleanup(n.kill)
	return n
}

func (n *restartableNode) start() {
	n.t.Helper()
	ln, err := net.Listen("tcp", n.addr)
	if err != nil {
		n.t.Fatalf("listen %s: %v", n.addr, err)
	}
	n.svc = serve.New(serve.Config{MaxConcurrency: 2, QueueDepth: 64, QueueTimeout: 30 * time.Second})
	n.srv = &http.Server{Handler: serve.NewHandler(n.svc)}
	go n.srv.Serve(ln)
}

func (n *restartableNode) kill() {
	if n.srv != nil {
		n.srv.Close()
		n.srv = nil
	}
	if n.svc != nil {
		n.svc.Close()
		n.svc = nil
	}
}

func (n *restartableNode) url() string { return "http://" + n.addr }
