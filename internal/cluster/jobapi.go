package cluster

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"

	"coopabft/internal/serve"
)

// Jobs API handlers. Routes (wired in NewHandler):
//
//	POST   /v1/jobs       submit → 202 Accepted + JobStatus
//	GET    /v1/jobs/{id}  poll → 200 + JobStatus (404 after eviction)
//	DELETE /v1/jobs/{id}  cancel → 200 + JobStatus at call time
//
// The wire contract — JobStatus's shape and its field-stability
// guarantees — is documented on serve.JobStatus, next to the types.

// handleJobSubmit decodes a serve.Request body (the same shape the sync
// kernel routes take, kernel named in the body) and admits it as a job.
func (g *Gateway) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var req serve.Request
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	if err := dec.Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeErr(w, http.StatusBadRequest, "bad_request", "invalid JSON body: "+err.Error())
		return
	}
	st, err := g.SubmitJob(req)
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, st)
	case errors.Is(err, serve.ErrBadRequest):
		writeErr(w, http.StatusBadRequest, "bad_request", err.Error())
	case errors.Is(err, serve.ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusTooManyRequests, "overloaded", err.Error())
	default:
		writeErr(w, http.StatusInternalServerError, "internal", err.Error())
	}
}

// handleJobGet returns a job's current status.
func (g *Gateway) handleJobGet(w http.ResponseWriter, r *http.Request) {
	st, err := g.JobStatusOf(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, "unknown_job", err.Error())
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleJobCancel requests cancellation and returns the status at call
// time; clients poll GET for the terminal state.
func (g *Gateway) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	st, err := g.CancelJob(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, "unknown_job", err.Error())
		return
	}
	writeJSON(w, http.StatusOK, st)
}
