package cluster

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"

	"coopabft/internal/checkpoint"
	"coopabft/internal/serve"
)

// Jobs API handlers. Routes (wired in NewHandler):
//
//	POST   /v1/jobs                  submit → 202 Accepted + JobStatus
//	GET    /v1/jobs/{id}             poll → 200 + JobStatus (404 after eviction)
//	DELETE /v1/jobs/{id}             cancel → 200 + JobStatus at call time
//	PUT    /v1/jobs/{id}/checkpoint  store a long job's streamed snapshot
//
// The wire contract — JobStatus's shape and its field-stability
// guarantees — is documented on serve.JobStatus, next to the types.

// handleJobSubmit decodes a serve.Request body (the same shape the sync
// kernel routes take, kernel named in the body) and admits it as a job.
func (g *Gateway) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var req serve.Request
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	if err := dec.Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeErr(w, http.StatusBadRequest, "bad_request", "invalid JSON body: "+err.Error())
		return
	}
	st, err := g.SubmitJob(req)
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, st)
	case errors.Is(err, serve.ErrBadRequest):
		writeErr(w, http.StatusBadRequest, "bad_request", err.Error())
	case errors.Is(err, serve.ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusTooManyRequests, "overloaded", err.Error())
	default:
		writeErr(w, http.StatusInternalServerError, "internal", err.Error())
	}
}

// handleJobGet returns a job's current status.
func (g *Gateway) handleJobGet(w http.ResponseWriter, r *http.Request) {
	st, err := g.JobStatusOf(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, "unknown_job", err.Error())
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleJobCancel requests cancellation and returns the status at call
// time; clients poll GET for the terminal state.
func (g *Gateway) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	st, err := g.CancelJob(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, "unknown_job", err.Error())
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleJobCheckpoint receives one streamed snapshot from a long job's
// worker (PUT /v1/jobs/{id}/checkpoint?epoch=N). The body must decode as
// a checkpoint snapshot — the gateway never retains bytes it could not
// resume from. Stale PUTs (old epoch, non-advancing step) answer 200 with
// stored:false: the worker's stream is healthy, its snapshot just lost
// the race, so the worker must not count it as a transport failure.
func (g *Gateway) handleJobCheckpoint(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	g.jobMu.Lock()
	rec, ok := g.jobs[id]
	g.jobMu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown_job", "no such job: "+id)
		return
	}
	epoch, err := strconv.ParseInt(r.URL.Query().Get("epoch"), 10, 64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", "epoch must be an integer")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, longReadLimit))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", "reading snapshot: "+err.Error())
		return
	}
	snap, err := checkpoint.Decode(body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	stored, recoveredMS := rec.acceptCheckpoint(epoch, snap.Step, snap.Restarts, body)
	if !stored {
		g.m.CheckpointsStale.Add(1)
		writeJSON(w, http.StatusOK, map[string]any{"stored": false})
		return
	}
	g.m.CheckpointsStored.Add(1)
	if recoveredMS > 0 {
		g.m.RecoveryMSSum.Add(recoveredMS)
	}
	writeJSON(w, http.StatusOK, map[string]any{"stored": true, "step": snap.Step})
}

// handleEvents re-exports the gateway's error bus — every node's fault
// events with Node stamped, plus the gateway's own node_death
// publications — as the same NDJSON stream the workers serve.
func (g *Gateway) handleEvents(w http.ResponseWriter, r *http.Request) {
	serve.ServeEventStream(w, r, g.bus, g.quit)
}
