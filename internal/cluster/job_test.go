package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"coopabft/internal/abft"
	"coopabft/internal/mat"
	"coopabft/internal/serve"
)

// jobGateway builds a prober-less gateway with a low shard threshold, so
// modest test sizes exercise the sharded path.
func jobGateway(t *testing.T, nodes ...NodeConfig) *Gateway {
	t.Helper()
	g, err := New(Config{
		Nodes:           nodes,
		Window:          8,
		Retries:         2,
		RetryBackoff:    time.Millisecond,
		ProbeInterval:   -1,
		BreakerFailures: 2,
		BreakerCooldown: 50 * time.Millisecond,
		ShardThreshold:  64,
		ShardBlock:      48,
		Seed:            7,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	return g
}

// waitJob polls a job to a terminal state.
func waitJob(t *testing.T, g *Gateway, id string) serve.JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := g.JobStatusOf(id)
		if err != nil {
			t.Fatalf("job %s: %v", id, err)
		}
		if terminal(st.State) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// directDigest computes the single-node reference answer's fingerprint.
func directDigest(n int, seed uint64) string {
	full := mat.New(n, n)
	mat.MulAddInto(full, mat.Random(n, n, seed), mat.Random(n, n, seed+1))
	return abft.BitDigest(full)
}

// TestShardedMatchesDirect: a sharded job across three real nodes delivers
// the bit-identical answer the single-node packed GEMM produces, with no
// reconstructions and no recomputes on the happy path.
func TestShardedMatchesDirect(t *testing.T) {
	g := jobGateway(t,
		NodeConfig{ID: "n0", BaseURL: serveNode(t)},
		NodeConfig{ID: "n1", BaseURL: serveNode(t)},
		NodeConfig{ID: "n2", BaseURL: serveNode(t)},
	)
	st, err := g.SubmitJob(serve.Request{Kernel: "gemm", N: 96, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Sharded || st.State != serve.JobQueued {
		t.Fatalf("submit status %+v", st)
	}
	// 2x2 grid (W-1 = 2 caps the dim): 4 data + 2 col-check + 2 row-check.
	if st.BlocksTotal != 8 {
		t.Fatalf("blocks_total = %d, want 8", st.BlocksTotal)
	}

	final := waitJob(t, g, st.ID)
	if final.State != serve.JobDone {
		t.Fatalf("state %s (err %q)", final.State, final.Error)
	}
	if final.Digest != directDigest(96, 5) {
		t.Fatalf("digest %s != direct %s", final.Digest, directDigest(96, 5))
	}
	if final.BlocksDone != 8 || final.Reconstructions != 0 || final.Recomputes != 0 {
		t.Fatalf("progress %+v", final)
	}
	if final.Result == nil || final.Result.Outcome != "corrected" {
		t.Fatalf("result %+v", final.Result)
	}
	if g.m.JobsCompleted.Value() != 1 || g.m.BlockTasksDispatched.Value() != 8 ||
		g.m.ChecksumTasks.Value() != 4 {
		t.Fatalf("metrics: completed=%d dispatched=%d checksum=%d",
			g.m.JobsCompleted.Value(), g.m.BlockTasksDispatched.Value(), g.m.ChecksumTasks.Value())
	}
}

// gatedNode wraps a real serve handler with a kill switch: once armed with
// limit k, only the first k /v1/block calls reach the service — the rest
// answer 503, the wire signature of a dying node.
type gatedNode struct {
	inner  http.Handler
	limit  atomic.Int64 // -1 = unlimited
	served atomic.Int64
}

func newGatedNode(t *testing.T) *gatedNode {
	t.Helper()
	svc := serve.New(serve.Config{MaxConcurrency: 2, QueueDepth: 64, QueueTimeout: 30 * time.Second})
	t.Cleanup(svc.Close)
	gn := &gatedNode{inner: serve.NewHandler(svc)}
	gn.limit.Store(-1)
	return gn
}

func (gn *gatedNode) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/v1/block" {
		if lim := gn.limit.Load(); lim >= 0 && gn.served.Add(1) > lim {
			w.WriteHeader(http.StatusServiceUnavailable)
			_ = json.NewEncoder(w).Encode(map[string]string{"error": "node dying", "kind": "closed"})
			return
		}
	}
	gn.inner.ServeHTTP(w, r)
}

// TestKillMidJobReconstructs is the kill-mid-job chaos gate in process:
// the worker holding two data blocks dies after delivering exactly one —
// mid-job, deterministically — and the job still completes with the
// bit-identical answer, recovering the lost block algebraically:
// reconstructions >= 1, recomputes == 0.
func TestKillMidJobReconstructs(t *testing.T) {
	gated := make([]*gatedNode, 3)
	cfgs := make([]NodeConfig, 3)
	ids := []string{"n0", "n1", "n2"}
	for i := range gated {
		gated[i] = newGatedNode(t)
		ts := httptest.NewServer(gated[i])
		t.Cleanup(ts.Close)
		cfgs[i] = NodeConfig{ID: ids[i], BaseURL: ts.URL}
	}
	g := jobGateway(t, cfgs...)

	// Predict the plan (same inputs as SubmitJob will use): on a 2x2 grid
	// over 3 workers, workers[1] owns data (0,1) and (1,0) — two data
	// blocks in different grid columns. Arm its gate to deliver exactly
	// one block and then die.
	const n, seed = 96, 11
	plan, err := planShards(n, g.eligibleWorkers(), g.cfg.ShardBlock, seed)
	if err != nil {
		t.Fatal(err)
	}
	victim := plan.workers[1].id
	for i, id := range ids {
		if id == victim {
			gated[i].limit.Store(1)
		}
	}

	st, err := g.SubmitJob(serve.Request{Kernel: "gemm", N: n, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	final := waitJob(t, g, st.ID)
	if final.State != serve.JobDone {
		t.Fatalf("state %s (err %q)", final.State, final.Error)
	}
	if final.Digest != directDigest(n, seed) {
		t.Fatalf("digest %s != direct after node death", final.Digest)
	}
	if final.Reconstructions != 1 || final.Recomputes != 0 {
		t.Fatalf("reconstructions=%d recomputes=%d, want 1/0",
			final.Reconstructions, final.Recomputes)
	}
	if g.m.Reconstructions.Value() != 1 || g.m.BlockRecomputes.Value() != 0 {
		t.Fatalf("gateway metrics: reconstructions=%d recomputes=%d",
			g.m.Reconstructions.Value(), g.m.BlockRecomputes.Value())
	}
}

// TestJobPassthrough: a small job rides the existing synchronous path
// unchanged and relays the node's classified response.
func TestJobPassthrough(t *testing.T) {
	g := jobGateway(t, NodeConfig{ID: "solo", BaseURL: serveNode(t)})
	st, err := g.SubmitJob(serve.Request{Kernel: "gemm", N: 32, Seed: 3, Faults: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Sharded {
		t.Fatal("n=32 job sharded below threshold")
	}
	final := waitJob(t, g, st.ID)
	if final.State != serve.JobDone || final.Result == nil {
		t.Fatalf("final %+v", final)
	}
	ok := map[string]bool{"corrected": true, "restarted": true, "aborted": true}
	if !ok[final.Result.Outcome] || final.Result.Node != "solo" {
		t.Fatalf("result %+v", final.Result)
	}
	if g.m.JobsPassthrough.Value() != 1 {
		t.Errorf("jobs_passthrough = %d, want 1", g.m.JobsPassthrough.Value())
	}
}

// TestJobRejections: sharded jobs refuse fault injection; bad requests are
// typed through the shared entrypoint.
func TestJobRejections(t *testing.T) {
	g := jobGateway(t,
		NodeConfig{ID: "n0", BaseURL: serveNode(t)},
		NodeConfig{ID: "n1", BaseURL: serveNode(t)},
		NodeConfig{ID: "n2", BaseURL: serveNode(t)},
	)
	if _, err := g.SubmitJob(serve.Request{Kernel: "gemm", N: 96, Faults: 1}); !errors.Is(err, serve.ErrBadRequest) {
		t.Errorf("sharded faults: err = %v, want ErrBadRequest", err)
	}
	if _, err := g.SubmitJob(serve.Request{Kernel: "lu", N: 96}); !errors.Is(err, serve.ErrBadRequest) {
		t.Errorf("unknown kernel: err = %v, want ErrBadRequest", err)
	}
	if _, err := g.SubmitJob(serve.Request{Kernel: "gemm", N: 1 << 20}); !errors.Is(err, serve.ErrBadRequest) {
		t.Errorf("oversized: err = %v, want ErrBadRequest", err)
	}
}

// TestJobCancel: cancelling a running sharded job unwinds its block tasks
// and lands in "cancelled".
func TestJobCancel(t *testing.T) {
	hang := func(w http.ResponseWriter, r *http.Request) { <-r.Context().Done() }
	g := jobGateway(t,
		NodeConfig{ID: "n0", BaseURL: stubNode(t, hang)},
		NodeConfig{ID: "n1", BaseURL: stubNode(t, hang)},
		NodeConfig{ID: "n2", BaseURL: stubNode(t, hang)},
	)
	st, err := g.SubmitJob(serve.Request{Kernel: "gemm", N: 96, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.CancelJob(st.ID); err != nil {
		t.Fatal(err)
	}
	final := waitJob(t, g, st.ID)
	if final.State != serve.JobCancelled {
		t.Fatalf("state %s, want cancelled", final.State)
	}
	if g.m.JobsCancelled.Value() != 1 {
		t.Errorf("jobs_cancelled = %d, want 1", g.m.JobsCancelled.Value())
	}
	if _, err := g.CancelJob("ghost"); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("cancel ghost: err = %v, want ErrUnknownJob", err)
	}
}

// TestJobsHTTPAPI walks the versioned jobs surface: submit (202), poll,
// 404s, and the 400 mapping.
func TestJobsHTTPAPI(t *testing.T) {
	g := jobGateway(t, NodeConfig{ID: "solo", BaseURL: serveNode(t)})
	ts := httptest.NewServer(NewHandler(g))
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		bytes.NewReader([]byte(`{"kernel": "gemm", "n": 32, "seed": 4}`)))
	if err != nil {
		t.Fatal(err)
	}
	var st serve.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || st.ID == "" || st.State != serve.JobQueued {
		t.Fatalf("submit: status %d body %+v", resp.StatusCode, st)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err = http.Get(ts.URL + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if terminal(st.State) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st.State != serve.JobDone || st.Result == nil {
		t.Fatalf("final %+v", st)
	}

	resp, _ = http.Get(ts.URL + "/v1/jobs/ghost")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("get ghost: status %d, want 404", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/ghost", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("delete ghost: status %d, want 404", resp.StatusCode)
	}
	resp, _ = http.Post(ts.URL+"/v1/jobs", "application/json",
		bytes.NewReader([]byte(`{"kernel": "qr", "n": 32}`)))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad kernel: status %d, want 400", resp.StatusCode)
	}
}
