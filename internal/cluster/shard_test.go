package cluster

import (
	"errors"
	"testing"

	"coopabft/internal/serve"
)

// TestPlanShardsInvariants pins the placement scheme's guarantees: grid
// dims within [2, min(8, W-1)], every task placed by the (i+j)/(R+j)/(i+C)
// formulas, and — the recovery guarantee — within every grid column, the
// data blocks and the column-checksum block all live on distinct workers.
func TestPlanShardsInvariants(t *testing.T) {
	for _, tc := range []struct{ n, w, block int }{
		{256, 3, 128}, {256, 4, 64}, {512, 5, 64}, {2048, 9, 128}, {300, 16, 32},
	} {
		ids := make([]string, tc.w)
		for i := range ids {
			ids[i] = string(rune('a' + i))
		}
		ws := mkNodes(ids...)
		plan, err := planShards(tc.n, ws, tc.block, 7)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		g := plan.grid
		r, c := g.Rows(), g.Cols()
		if r < 2 || c < 2 || r > tc.w-1 || c > tc.w-1 || r > maxGridDim || c > maxGridDim {
			t.Fatalf("%+v: grid %dx%d violates bounds", tc, r, c)
		}
		if len(plan.tasks) != r*c+r+c {
			t.Fatalf("%+v: %d tasks, want %d", tc, len(plan.tasks), r*c+r+c)
		}
		w := len(plan.workers)
		byRole := map[string]int{}
		for _, task := range plan.tasks {
			byRole[task.role]++
			var want *node
			switch task.role {
			case serve.BlockData:
				want = plan.workers[(task.bi+task.bj)%w]
			case serve.BlockColCheck:
				want = plan.workers[(r+task.bj)%w]
			case serve.BlockRowCheck:
				want = plan.workers[(task.bi+c)%w]
			}
			if task.node != want {
				t.Fatalf("%+v: task %s(%d,%d) on %s, want %s",
					tc, task.role, task.bi, task.bj, task.node.id, want.id)
			}
		}
		if byRole[serve.BlockData] != r*c || byRole[serve.BlockColCheck] != c || byRole[serve.BlockRowCheck] != r {
			t.Fatalf("%+v: role counts %v", tc, byRole)
		}
		// Single-loss recoverability: per column, data + col-check owners
		// are pairwise distinct.
		for j := 0; j < c; j++ {
			seen := map[string]bool{plan.workers[(r+j)%w].id: true}
			for i := 0; i < r; i++ {
				id := plan.workers[(i+j)%w].id
				if seen[id] {
					t.Fatalf("%+v: column %d places two of its blocks on %s", tc, j, id)
				}
				seen[id] = true
			}
		}
	}
}

// TestPlanShardsSeedRotation: different job seeds rotate the worker list,
// spreading successive jobs across the pool; the same seed replans
// identically.
func TestPlanShardsSeedRotation(t *testing.T) {
	ws := mkNodes("a", "b", "c", "d", "e")
	p1, err := planShards(256, ws, 128, 1)
	if err != nil {
		t.Fatal(err)
	}
	p1again, _ := planShards(256, ws, 128, 1)
	for i := range p1.workers {
		if p1.workers[i].id != p1again.workers[i].id {
			t.Fatal("same seed produced different rotations")
		}
	}
	rotated := false
	for seed := uint64(2); seed < 12; seed++ {
		p2, _ := planShards(256, ws, 128, seed)
		if p2.workers[0].id != p1.workers[0].id {
			rotated = true
			break
		}
	}
	if !rotated {
		t.Error("10 seeds never rotated the worker list")
	}
}

// TestPlanShardsTooFewWorkers: fewer than 3 workers cannot hold distinct
// checksum blocks.
func TestPlanShardsTooFewWorkers(t *testing.T) {
	if _, err := planShards(256, mkNodes("a", "b"), 128, 1); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
}
