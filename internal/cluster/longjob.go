package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"coopabft/internal/serve"
)

// Long jobs: step-granular CG solves on the async jobs API.
//
// A CG job submitted via POST /v1/jobs does not pass through the
// synchronous forwarding path: the gateway dispatches it to one worker as
// a serve.LongTask, and the worker streams an encoded checkpoint back to
// PUT /v1/jobs/{id}/checkpoint every CheckpointEvery steps. The newest
// accepted snapshot is retained with the job record, so when the worker
// dies mid-solve the gateway reschedules on the next healthy capable node
// and ships that snapshot with the new dispatch — the solve resumes at
// the checkpointed step instead of starting over, and the consumed
// checkpoint-restart budget rides inside the snapshot, keeping the
// MaxRestarts bound cumulative across nodes.
//
// Each dispatch is one epoch. The checkpoint URL carries the epoch, and
// the gateway discards PUTs from any other epoch, so a zombie incarnation
// (a worker that lost its connection but kept solving) can never clobber
// the replacement's newer state. Within an epoch, steps must increase.
//
// Recovery latency is measured fault→resumed: from the gateway observing
// the worker's death to the first accepted signal from the replacement
// epoch (a checkpoint PUT or the terminal result), summed over the job's
// migrations into JobStatus.RecoveryMS and the cluster recovery_ms_sum
// counter.

// longReadLimit bounds one long-job response or checkpoint PUT body: a
// snapshot carries the CG state vectors, so the limit follows the block
// path's, not the interactive one.
const longReadLimit = 64 << 20

// runLongJob drives one long job end to end: dispatch, relay checkpoints
// (via handleJobCheckpoint), and migrate across worker deaths until a
// terminal classification lands or the budget runs out.
func (g *Gateway) runLongJob(ctx context.Context, rec *jobRecord, p serve.Parsed, req serve.Request) {
	g.m.JobsLong.Add(1)
	started := time.Now()
	rec.update(func(st *serve.JobStatus) { st.State = serve.JobRunning })

	fail := func(err error) {
		rec.finish(g, started, func(st *serve.JobStatus) {
			if ctx.Err() != nil && errors.Is(err, context.Cause(ctx)) {
				st.State = serve.JobCancelled
			} else {
				st.State = serve.JobFailed
			}
			st.Error = err.Error()
		})
	}

	avoid := make(map[string]bool)
	migrations, sheds := 0, 0
	for {
		if ctx.Err() != nil {
			fail(context.Cause(ctx))
			return
		}
		nd := g.pickLongNode(p, avoid)
		if nd == nil {
			fail(fmt.Errorf("%w: no healthy capable node for long job", ErrUnavailable))
			return
		}
		task, resumeStep := g.buildLongTask(rec, p, req)
		rec.update(func(st *serve.JobStatus) {
			st.Node = nd.id
			if migrations > 0 {
				st.ResumeStep = resumeStep
			}
		})
		res, class, err := g.postLong(ctx, nd, task)
		switch class {
		case fcDelivered:
			if tripped := nd.br.onDelivered(time.Now(), res.Outcome == "aborted"); tripped {
				nd.m.BreakerTrips.Add(1)
			}
			g.noteRecovered(rec)
			g.finishLong(rec, started, nd, p, res)
			return
		case fcBadRequest:
			g.m.BadRequests.Add(1)
			fail(err)
			return
		case fcShed:
			nd.m.Rejected429.Add(1)
			sheds++
			if sheds > g.cfg.Retries {
				fail(fmt.Errorf("%w: %v", serve.ErrOverloaded, err))
				return
			}
			if serr := sleepCtx(ctx, g.backoff(p.Seed, sheds)); serr != nil {
				fail(serr)
				return
			}
		case fcFailed:
			if tripped := nd.br.onFailure(time.Now()); tripped {
				nd.m.BreakerTrips.Add(1)
			}
			if ctx.Err() != nil {
				fail(context.Cause(ctx))
				return
			}
			migrations++
			if migrations > g.cfg.MaxMigrations {
				fail(fmt.Errorf("%w: long job lost %d workers (budget %d): %v",
					ErrUnavailable, migrations, g.cfg.MaxMigrations, err))
				return
			}
			avoid[nd.id] = true
			g.noteFault(rec)
			g.m.Migrations.Add(1)
			g.m.Retries.Add(1)
			g.bus.Publish(serve.Event{
				Type: serve.EventNodeDeath, Job: rec.id, Node: nd.id,
				Detail: fmt.Sprintf("worker died mid-solve; migrating (%d/%d)", migrations, g.cfg.MaxMigrations),
			})
			rec.update(func(st *serve.JobStatus) { st.Migrations = migrations })
		}
	}
}

// pickLongNode chooses the long job's worker: healthy, not draining, not
// behind an open breaker, capable of the strategy, and not on the avoid
// list (nodes that already died under this job), ranked by the same
// rendezvous placement as the synchronous path.
func (g *Gateway) pickLongNode(p serve.Parsed, avoid map[string]bool) *node {
	capable := make([]*node, 0, len(g.nodes))
	for _, nd := range g.nodes {
		if avoid[nd.id] || nd.draining.Load() || !nd.healthy.Load() || !nd.supports(p.Strategy) {
			continue
		}
		capable = append(capable, nd)
	}
	if len(capable) == 0 {
		return nil
	}
	for _, nd := range rank(capable, placementKey(p.Kernel, sizeClass(p.Size()))) {
		if nd.br.allow(time.Now()) {
			return nd
		}
		nd.m.BreakerSkips.Add(1)
	}
	return nil
}

// buildLongTask assembles the next incarnation's dispatch: it advances the
// job's epoch, snapshots the newest retained checkpoint, and points the
// worker's checkpoint stream back at this gateway (when SelfURL is known).
// Returns the task and the step it will resume from (0 fresh).
func (g *Gateway) buildLongTask(rec *jobRecord, p serve.Parsed, req serve.Request) (serve.LongTask, int) {
	rec.mu.Lock()
	rec.long.epoch++
	epoch := rec.long.epoch
	snap := append([]byte(nil), rec.long.snap...)
	step := rec.long.snapStep
	rec.mu.Unlock()

	t := serve.LongTask{
		JobID: rec.id, Kernel: p.Kernel.String(),
		NX: p.NX, NY: p.NY, Seed: p.Seed,
		Strategy: req.Strategy, Faults: req.Faults, FaultKind: req.FaultKind,
		CheckpointEvery: g.cfg.CheckpointEvery,
		Snapshot:        snap,
	}
	if self := g.SelfURL(); self != "" {
		t.CheckpointURL = fmt.Sprintf("%s/v1/jobs/%s/checkpoint?epoch=%d", self, rec.id, epoch)
	}
	return t, step
}

// postLong sends one incarnation to one node and classifies the transport
// result, mirroring forward's taxonomy. The call blocks for the solve's
// duration — long jobs use the gateway's untimed client, bounded by the
// job context, not the forwarding client's request timeout.
func (g *Gateway) postLong(ctx context.Context, nd *node, t serve.LongTask) (serve.LongResult, forwardClass, error) {
	body, err := json.Marshal(t)
	if err != nil {
		return serve.LongResult{}, fcBadRequest, fmt.Errorf("%w: %w", serve.ErrBadRequest, err)
	}
	nd.m.Forwarded.Add(1)
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, nd.base+"/v1/longjob", bytes.NewReader(body))
	if err != nil {
		return serve.LongResult{}, fcFailed, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := g.longClient.Do(hreq)
	if err != nil {
		nd.m.TransportErrors.Add(1)
		return serve.LongResult{}, fcFailed, fmt.Errorf("node %s: %w", nd.id, err)
	}
	defer hresp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(hresp.Body, longReadLimit))
	if err != nil {
		nd.m.TransportErrors.Add(1)
		return serve.LongResult{}, fcFailed, fmt.Errorf("node %s: %w", nd.id, err)
	}
	switch hresp.StatusCode {
	case http.StatusOK:
		var res serve.LongResult
		if err := json.Unmarshal(payload, &res); err != nil {
			nd.m.TransportErrors.Add(1)
			return serve.LongResult{}, fcFailed, fmt.Errorf("node %s: bad long-result body: %w", nd.id, err)
		}
		return res, fcDelivered, nil
	case http.StatusBadRequest:
		return serve.LongResult{}, fcBadRequest,
			fmt.Errorf("%w: node %s: %s", serve.ErrBadRequest, nd.id, wireError(payload))
	case http.StatusTooManyRequests:
		return serve.LongResult{}, fcShed, fmt.Errorf("node %s: %s", nd.id, wireError(payload))
	default:
		nd.m.Failed503.Add(1)
		return serve.LongResult{}, fcFailed,
			fmt.Errorf("node %s: HTTP %d: %s", nd.id, hresp.StatusCode, wireError(payload))
	}
}

// finishLong lands a delivered long result: the job is done — aborted is a
// delivered classification here exactly as on the synchronous path, so a
// wrong answer remains structurally unreachable (the oracle gate ran on
// the worker) and "failed" is reserved for jobs the cluster itself lost.
func (g *Gateway) finishLong(rec *jobRecord, started time.Time, nd *node, p serve.Parsed, res serve.LongResult) {
	nd.m.Delivered.Add(1)
	g.m.Delivered.Add(1)
	switch res.Outcome {
	case "corrected":
		g.m.Corrected.Add(1)
	case "restarted":
		g.m.Restarted.Add(1)
	case "aborted":
		g.m.Aborted.Add(1)
	}
	resp := &serve.Response{
		Kernel: res.Kernel, N: p.Size(), Strategy: p.Strategy.String(),
		Outcome: res.Outcome, Error: res.Error,
		Corrections: res.Corrections, Injected: res.Injected, Restarts: res.RestartsTotal,
		BatchSize: 1, RunMS: res.RunMS, Node: nd.id,
	}
	rec.finish(g, started, func(st *serve.JobStatus) {
		st.State = serve.JobDone
		st.Result = resp
		if res.Steps > st.Step {
			st.Step = res.Steps
		}
		if res.ResumeStep > 0 {
			st.ResumeStep = res.ResumeStep
		}
		st.RestartsUsed = res.RestartsTotal
	})
}

// noteFault stamps the moment the gateway observed a worker death, opening
// the fault→resumed recovery-latency window (idempotent until closed).
func (g *Gateway) noteFault(rec *jobRecord) {
	rec.mu.Lock()
	if rec.long.faultAt.IsZero() {
		rec.long.faultAt = time.Now()
	}
	rec.mu.Unlock()
}

// noteRecovered closes the recovery-latency window on a terminal result,
// for the case where the replacement incarnation finished without ever
// streaming a checkpoint.
func (g *Gateway) noteRecovered(rec *jobRecord) {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if rec.long.faultAt.IsZero() {
		return
	}
	ms := float64(time.Since(rec.long.faultAt)) / float64(time.Millisecond)
	rec.status.RecoveryMS += ms
	rec.long.faultAt = time.Time{}
	g.m.RecoveryMSSum.Add(ms)
}

// acceptCheckpoint decides one checkpoint PUT's fate under the record
// lock: wrong epoch or non-advancing step is stale (discarded); an
// accepted snapshot becomes the job's migration state and closes any open
// recovery-latency window. Returns whether it was stored and the latency
// recorded (0 when no window was open).
func (rec *jobRecord) acceptCheckpoint(epoch int64, step, restarts int, body []byte) (bool, float64) {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if epoch != rec.long.epoch {
		return false, 0
	}
	if rec.long.snap != nil && step <= rec.long.snapStep {
		return false, 0
	}
	rec.long.snap = body
	rec.long.snapStep = step
	rec.status.Step = step
	rec.status.Checkpoints++
	rec.status.RestartsUsed = restarts
	var ms float64
	if !rec.long.faultAt.IsZero() {
		ms = float64(time.Since(rec.long.faultAt)) / float64(time.Millisecond)
		rec.status.RecoveryMS += ms
		rec.long.faultAt = time.Time{}
	}
	return true, ms
}
