package cluster

import (
	"testing"
	"time"
)

func testBreaker() *breaker {
	return newBreaker(3, time.Second, 4, 0.75, 3, 16)
}

// TestBreakerConsecutiveFailuresOpen: the failure threshold opens the
// circuit; deliveries in between reset the count.
func TestBreakerConsecutiveFailuresOpen(t *testing.T) {
	b := testBreaker()
	now := time.Unix(1000, 0)
	b.onFailure(now)
	b.onFailure(now)
	b.onDelivered(now, false) // resets the streak
	b.onFailure(now)
	b.onFailure(now)
	if st, _ := b.snapshot(); st != breakerClosed {
		t.Fatalf("state %v after interleaved failures, want closed", st)
	}
	if !b.onFailure(now) {
		t.Fatal("third consecutive failure did not trip")
	}
	if st, trips := b.snapshot(); st != breakerOpen || trips != 1 {
		t.Fatalf("state %v trips %d, want open/1", st, trips)
	}
	if b.allow(now.Add(500 * time.Millisecond)) {
		t.Error("open breaker allowed a request before cooldown")
	}
}

// TestBreakerHalfOpenTrial: after the cooldown exactly one trial flows; a
// delivery closes, a failure re-opens.
func TestBreakerHalfOpenTrial(t *testing.T) {
	b := testBreaker()
	now := time.Unix(1000, 0)
	for i := 0; i < 3; i++ {
		b.onFailure(now)
	}
	later := now.Add(2 * time.Second)
	if !b.allow(later) {
		t.Fatal("cooldown elapsed but no trial granted")
	}
	if b.allow(later) {
		t.Fatal("second trial granted while half-open")
	}
	b.onDelivered(later, false)
	if st, _ := b.snapshot(); st != breakerClosed {
		t.Fatalf("state %v after successful trial, want closed", st)
	}

	// Now a failed trial: trip again, wait, fail the trial.
	for i := 0; i < 3; i++ {
		b.onFailure(later)
	}
	again := later.Add(2 * time.Second)
	if !b.allow(again) {
		t.Fatal("no second trial")
	}
	if !b.onFailure(again) {
		t.Fatal("failed half-open trial did not re-trip")
	}
	if st, trips := b.snapshot(); st != breakerOpen || trips != 3 {
		t.Fatalf("state %v trips %d, want open/3", st, trips)
	}
}

// TestBreakerAbortRateTrips: a full window of mostly-aborted deliveries
// opens the circuit even though every answer was typed.
func TestBreakerAbortRateTrips(t *testing.T) {
	b := testBreaker() // window 4, trip at 75%
	now := time.Unix(1000, 0)
	b.onDelivered(now, true)
	b.onDelivered(now, true)
	b.onDelivered(now, false)
	if st, _ := b.snapshot(); st != breakerClosed {
		t.Fatal("tripped before the window filled")
	}
	if !b.onDelivered(now, true) { // 3/4 aborted = 75%
		t.Fatal("abort-rate threshold did not trip")
	}
	if st, _ := b.snapshot(); st != breakerOpen {
		t.Fatal("want open after abort-rate trip")
	}
}

// TestBreakerHealthyAbortMixStaysClosed: scattered aborts below the
// threshold never trip.
func TestBreakerHealthyAbortMixStaysClosed(t *testing.T) {
	b := testBreaker()
	now := time.Unix(1000, 0)
	for i := 0; i < 40; i++ {
		b.onDelivered(now, i%2 == 0) // 50% aborted < 75%
	}
	if st, trips := b.snapshot(); st != breakerClosed || trips != 0 {
		t.Fatalf("state %v trips %d under 50%% aborts, want closed/0", st, trips)
	}
}

// TestBreakerInFlightDeliveryDoesNotReclose: a delivery landing on an OPEN
// breaker (an in-flight request from before the trip) must not close the
// circuit — re-closing would bypass the cooldown, and for suspect trips it
// would let a Byzantine node's own concurrent answers lift its quarantine.
func TestBreakerInFlightDeliveryDoesNotReclose(t *testing.T) {
	b := testBreaker()
	now := time.Unix(1000, 0)
	for i := 0; i < 3; i++ {
		b.onSuspect(now) // suspect trip: quarantine
	}
	if st, _ := b.snapshot(); st != breakerOpen {
		t.Fatal("suspect accumulation did not trip")
	}
	b.onDelivered(now.Add(10*time.Millisecond), false) // in-flight honest answer
	if st, _ := b.snapshot(); st != breakerOpen {
		t.Fatal("in-flight delivery re-closed an open breaker (cooldown bypass)")
	}
	if b.allow(now.Add(100 * time.Millisecond)) {
		t.Fatal("quarantined node admitted traffic before cooldown")
	}
	// Recovery still works through the sanctioned path: half-open trial.
	later := now.Add(2 * time.Second)
	if !b.allow(later) {
		t.Fatal("no trial after cooldown")
	}
	b.onDelivered(later, false)
	if st, _ := b.snapshot(); st != breakerClosed {
		t.Fatal("successful trial did not close")
	}
}

// TestBreakerSuspectDecay: honest deliveries forgive accumulated suspects
// at one per suspectDecay, so sparse minority losses never build to a trip,
// while a steady liar still trips.
func TestBreakerSuspectDecay(t *testing.T) {
	b := newBreaker(3, time.Second, 4, 0.75, 3, 4) // decay every 4 deliveries
	now := time.Unix(1000, 0)
	// Two suspects, then enough honest traffic to decay both.
	b.onSuspect(now)
	b.onSuspect(now)
	for i := 0; i < 8; i++ {
		b.onDelivered(now, false)
	}
	if b.suspects != 0 {
		t.Fatalf("suspects = %d after decay traffic, want 0", b.suspects)
	}
	// A third suspect alone must not trip now.
	if b.onSuspect(now) {
		t.Fatal("tripped on a suspect that decay should have isolated")
	}
	// A steady liar outpaces decay: suspects arrive faster than one per
	// four deliveries.
	b2 := newBreaker(3, time.Second, 4, 0.75, 3, 4)
	tripped := false
	for i := 0; i < 6 && !tripped; i++ {
		b2.onDelivered(now, false)
		tripped = b2.onSuspect(now)
	}
	if !tripped {
		t.Fatal("steady liar never tripped despite decay")
	}
}

// TestBreakerProbeCloses: a successful probe past the cooldown closes an
// open breaker (the restart-rejoin path), and a failed probe of a
// half-open breaker re-opens it.
func TestBreakerProbeCloses(t *testing.T) {
	b := testBreaker()
	now := time.Unix(1000, 0)
	for i := 0; i < 3; i++ {
		b.onFailure(now)
	}
	b.onProbe(now.Add(100*time.Millisecond), true) // before cooldown: ignored
	if st, _ := b.snapshot(); st != breakerOpen {
		t.Fatal("probe before cooldown must not close")
	}
	b.onProbe(now.Add(2*time.Second), true)
	if st, _ := b.snapshot(); st != breakerClosed {
		t.Fatal("probe after cooldown should close")
	}

	for i := 0; i < 3; i++ {
		b.onFailure(now.Add(3 * time.Second))
	}
	trialAt := now.Add(5 * time.Second)
	if !b.allow(trialAt) {
		t.Fatal("no trial after second cooldown")
	}
	b.onProbe(trialAt, false) // probe sees it dead while a trial is out
	if st, _ := b.snapshot(); st != breakerOpen {
		t.Fatal("failed probe of half-open breaker should re-open")
	}
}
