// Package cluster is the node-level analogue of the paper's cooperative
// placement. A gateway fronts a pool of abftd workers; each node
// advertises the ECC strategies it can host — the cluster-scale version of
// per-page-frame ECC regions, where software declares which ranges may run
// relaxed — and placement routes every request to a compatible node via
// rendezvous hashing on (kernel, size-class), under a bounded per-node
// outstanding window. Robustness stays hidden behind the hot path the way
// §4 hides recovery behind ABFT: health probes and circuit breakers take
// sick nodes out of rotation, connection failures and 503s fail over to
// the next-ranked replica with jittered backoff, and a delivered
// classification is never re-executed — retries cannot manufacture a wrong
// answer, because only undelivered requests are ever retried and every
// delivered answer is oracle-gated by the node's ladder.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"coopabft/internal/campaign"
	"coopabft/internal/cluster/vote"
	"coopabft/internal/core"
	"coopabft/internal/serve"
	"coopabft/internal/serve/qos"
)

// Typed gateway errors; the HTTP layer maps them to status codes, and
// serve's ErrBadRequest/ErrOverloaded are reused so in-process callers and
// the load generator tally gateway answers exactly like node answers.
var (
	// ErrNoNodes means no configured node advertises the requested ECC
	// strategy — a capability miss, not a transient failure.
	ErrNoNodes = errors.New("cluster: no node advertises the requested strategy")
	// ErrUnavailable means every placement attempt failed at the
	// connection/503 level and the retry budget is spent.
	ErrUnavailable = errors.New("cluster: no replica available")
	// ErrUnknownNode reports an admin operation against an ID the gateway
	// does not manage.
	ErrUnknownNode = errors.New("cluster: unknown node")
	// ErrNoQuorum means an integrity-tier request could not assemble its
	// answer-signature majority at admission: fewer eligible distinct nodes
	// than replicas requested. (Vote-time quorum loss is delivered as a
	// typed aborted classification instead — see doVote.) Wraps the vote
	// package's sentinel so errors.Is works against either.
	ErrNoQuorum = fmt.Errorf("cluster: %w", vote.ErrNoQuorum)
)

// NodeConfig describes one backend worker.
type NodeConfig struct {
	// ID names the node in metrics, responses, and admin calls; defaults
	// to BaseURL without its scheme.
	ID string
	// BaseURL is the node's root, e.g. http://127.0.0.1:8321.
	BaseURL string
	// Strategies is the node's ECC-capability set: the strategies whose
	// requests it accepts. Empty means all six — a node whose memory
	// controller can program any per-range configuration.
	Strategies []core.Strategy
}

// Config sizes the gateway. The zero value (plus at least one node) is
// usable: defaults are applied by New.
type Config struct {
	Nodes []NodeConfig

	// Window bounds outstanding requests per node (default 8); a full
	// window spills the placement to the next-ranked replica.
	Window int
	// Retries is how many additional replicas a request may try after a
	// connection failure, 503, or shed (default 2).
	Retries int
	// RetryBackoff is the base jittered delay before a failover retry
	// (default 5ms; grows exponentially per attempt).
	RetryBackoff time.Duration

	// ProbeInterval is the health-probe period (default 250ms; < 0
	// disables probing, leaving nodes optimistically healthy).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe (default 1s).
	ProbeTimeout time.Duration

	// BreakerFailures is the consecutive connection/503 failures that
	// open a node's breaker (default 3).
	BreakerFailures int
	// BreakerCooldown is how long an open breaker parks a node before the
	// next trial (default 1s).
	BreakerCooldown time.Duration
	// AbortWindow and AbortTripFraction configure the elevated-Aborted
	// trip: once the last AbortWindow delivered outcomes are at least
	// AbortTripFraction aborted, the breaker opens (defaults 20, 0.9).
	AbortWindow       int
	AbortTripFraction float64

	// VoteReplicas is the default replica count R for integrity-tier
	// requests that do not specify one (default 3: tolerates one lying or
	// lost replica).
	VoteReplicas int
	// SuspectTrip is the cumulative minority-vote count that opens a
	// node's breaker (default 3). Suspect tallies do not reset on honest
	// deliveries — see breaker.onSuspect.
	SuspectTrip int
	// SuspectDecayEvery forgives one accumulated suspect per this many
	// consecutive honest deliveries (default 16; <0 disables decay), so a
	// rare honest minority loss cannot build into a quarantine over weeks
	// of clean traffic while a steady liar still trips.
	SuspectDecayEvery int

	// TenantRate/TenantBurst enable per-tenant token-bucket quotas at the
	// gateway door (requests/second and bucket depth; 0 disables). The
	// gateway checks the bucket before placement, so a flooding tenant is
	// rejected with a typed 429 and Retry-After instead of consuming node
	// windows.
	TenantRate  float64
	TenantBurst float64

	// ShardThreshold is the GEMM size at which a job submitted via the
	// jobs API splits into checksum-block tasks across the pool instead of
	// forwarding whole (default 256). Requires >= 3 eligible workers;
	// smaller pools pass through.
	ShardThreshold int
	// MaxJobN caps jobs-API problem sizes — and, as the gateway's shared
	// admission bound, the largest n the sync path will forward (default
	// 2048).
	MaxJobN int
	// MaxFaults caps per-request fault injection at gateway admission,
	// mirroring the node-side default (default 8).
	MaxFaults int
	// ShardBlock is the target block edge when choosing the grid: an n×n
	// job aims for ceil(n/ShardBlock) block rows/columns, clamped to
	// [2, min(8, workers-1)] (default 128).
	ShardBlock int
	// JobRetention is how long a terminal job stays pollable before
	// eviction (default 10m).
	JobRetention time.Duration
	// MaxJobs caps tracked job records; at capacity the oldest terminal
	// record is evicted, and if every record is live, submission sheds
	// (default 128).
	MaxJobs int

	// SelfURL is the gateway's own externally reachable base URL (e.g.
	// http://127.0.0.1:8330). Long-job workers stream checkpoints back to
	// SelfURL + /v1/jobs/{id}/checkpoint; empty disables checkpoint
	// streaming (long jobs still run, but a dead worker forces a cold
	// restart instead of a step-granular migration). The daemon may also
	// set it after binding its listener, via SetSelfURL.
	SelfURL string
	// CheckpointEvery is the step interval workers are asked to stream
	// checkpoints at for long jobs (default 8).
	CheckpointEvery int
	// MaxMigrations bounds how many times one long job may be rescheduled
	// onto a new node after worker deaths (default 3).
	MaxMigrations int
	// EventBuffer sizes the gateway's error-bus replay ring (default 256).
	EventBuffer int
	// DisableEventStream turns off the per-node /v1/events watchers; node
	// death is then discovered by probes and transport errors only.
	DisableEventStream bool

	// Seed feeds the deterministic retry jitter.
	Seed uint64
	// Client is the forwarding transport (default: a dedicated client
	// with sane timeouts).
	Client *http.Client
	// Metrics receives counters; nil allocates a private set.
	Metrics *Metrics
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 8
	}
	if c.Retries < 0 {
		c.Retries = 0
	} else if c.Retries == 0 {
		c.Retries = 2
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 5 * time.Millisecond
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 250 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.BreakerFailures <= 0 {
		c.BreakerFailures = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = time.Second
	}
	if c.AbortWindow <= 0 {
		c.AbortWindow = 20
	}
	if c.AbortTripFraction <= 0 || c.AbortTripFraction > 1 {
		c.AbortTripFraction = 0.9
	}
	if c.VoteReplicas <= 0 {
		c.VoteReplicas = 3
	}
	if c.VoteReplicas > serve.MaxReplicas {
		c.VoteReplicas = serve.MaxReplicas
	}
	if c.SuspectTrip <= 0 {
		c.SuspectTrip = 3
	}
	if c.SuspectDecayEvery == 0 {
		c.SuspectDecayEvery = 16
	}
	if c.TenantRate > 0 && c.TenantBurst <= 0 {
		c.TenantBurst = 2 * c.TenantRate
	}
	if c.ShardThreshold <= 0 {
		c.ShardThreshold = 256
	}
	if c.MaxJobN <= 0 {
		c.MaxJobN = 2048
	}
	if c.MaxFaults <= 0 {
		c.MaxFaults = 8
	}
	if c.ShardBlock <= 0 {
		c.ShardBlock = 128
	}
	if c.JobRetention <= 0 {
		c.JobRetention = 10 * time.Minute
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 128
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 8
	}
	if c.MaxMigrations <= 0 {
		c.MaxMigrations = 3
	}
	if c.EventBuffer <= 0 {
		c.EventBuffer = 256
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 2 * time.Minute}
	}
	if c.Metrics == nil {
		c.Metrics = &Metrics{}
	}
	return c
}

// node is one backend's runtime state.
type node struct {
	id   string
	base string
	caps map[core.Strategy]bool // nil = all strategies
	hash uint64

	window   chan struct{}
	br       *breaker
	healthy  atomic.Bool
	draining atomic.Bool
	m        *NodeMetrics
}

func (nd *node) supports(s core.Strategy) bool { return nd.caps == nil || nd.caps[s] }

func (nd *node) tryAcquire() bool {
	select {
	case nd.window <- struct{}{}:
		nd.m.Inflight.Add(1)
		return true
	default:
		return false
	}
}

func (nd *node) release() {
	<-nd.window
	nd.m.Inflight.Add(-1)
}

// acquire blocks until a window slot frees or ctx ends. The voting path
// uses this instead of tryAcquire: a vote needs R specific distinct
// nodes, so spilling to the next-ranked replica on a momentarily full
// window would silently shrink the electorate.
func (nd *node) acquire(ctx context.Context) error {
	select {
	case nd.window <- struct{}{}:
		nd.m.Inflight.Add(1)
		return nil
	case <-ctx.Done():
		return context.Cause(ctx)
	}
}

// Gateway is the cluster front-end: capability-filtered rendezvous
// placement, bounded per-node windows, breakers, probes, failover.
type Gateway struct {
	cfg   Config
	m     *Metrics
	nodes []*node
	byID  map[string]*node
	quota *qos.Quota // nil when TenantRate is 0 (quotas off)

	quit      chan struct{}
	probeWG   sync.WaitGroup
	closeOnce sync.Once

	// Async jobs (the /v1/jobs surface).
	jobMu     sync.Mutex
	jobs      map[string]*jobRecord
	jobSeq    uint64
	jobCtx    context.Context
	jobCancel context.CancelFunc
	jobWG     sync.WaitGroup

	// Error bus and long-job plumbing. selfURL is atomic so the daemon can
	// set it after binding its listener; longClient has no overall timeout
	// (a long solve's lifetime is bounded by the job context, and event
	// streams stay open indefinitely).
	bus        *serve.Bus
	selfURL    atomic.Value // string
	longClient *http.Client
}

// New builds a gateway and starts its health prober.
func New(cfg Config) (*Gateway, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("cluster: no nodes configured")
	}
	g := &Gateway{
		cfg:        cfg,
		m:          cfg.Metrics,
		byID:       make(map[string]*node, len(cfg.Nodes)),
		quit:       make(chan struct{}),
		jobs:       make(map[string]*jobRecord),
		bus:        serve.NewBus(cfg.EventBuffer),
		longClient: &http.Client{},
	}
	if cfg.TenantRate > 0 {
		g.quota = qos.NewQuota(qos.Config{Rate: cfg.TenantRate, Burst: cfg.TenantBurst})
	}
	g.selfURL.Store(strings.TrimRight(cfg.SelfURL, "/"))
	g.m.bus = g.bus
	g.jobCtx, g.jobCancel = context.WithCancel(context.Background())
	for _, nc := range cfg.Nodes {
		base := strings.TrimRight(nc.BaseURL, "/")
		if base == "" {
			return nil, errors.New("cluster: node with empty BaseURL")
		}
		id := nc.ID
		if id == "" {
			id = strings.TrimPrefix(strings.TrimPrefix(base, "http://"), "https://")
		}
		if _, dup := g.byID[id]; dup {
			return nil, fmt.Errorf("cluster: duplicate node ID %q", id)
		}
		nd := &node{
			id:     id,
			base:   base,
			hash:   fnv64a(id),
			window: make(chan struct{}, cfg.Window),
			br: newBreaker(cfg.BreakerFailures, cfg.BreakerCooldown,
				cfg.AbortWindow, cfg.AbortTripFraction, cfg.SuspectTrip, cfg.SuspectDecayEvery),
			m: g.m.Node(id),
		}
		if len(nc.Strategies) > 0 {
			nd.caps = make(map[core.Strategy]bool, len(nc.Strategies))
			for _, s := range nc.Strategies {
				nd.caps[s] = true
			}
		}
		nd.healthy.Store(true) // optimistic until the first probe
		g.nodes = append(g.nodes, nd)
		g.byID[id] = nd
	}
	if cfg.ProbeInterval > 0 {
		for _, nd := range g.nodes {
			g.probeWG.Add(1)
			go g.probeLoop(nd)
		}
	}
	// Event watchers ride the same switch as the prober: ProbeInterval < 0
	// means "no background node traffic" (deterministic tests), and the
	// push-on-fault stream is a complement to probing, not a replacement.
	if cfg.ProbeInterval > 0 && !cfg.DisableEventStream {
		for _, nd := range g.nodes {
			g.probeWG.Add(1)
			go g.watchLoop(nd)
		}
	}
	return g, nil
}

// Metrics returns the gateway's counters.
func (g *Gateway) Metrics() *Metrics { return g.m }

// Bus returns the gateway's error bus: every node's fault events, relayed
// with Node stamped, plus the gateway's own node_death publications.
func (g *Gateway) Bus() *serve.Bus { return g.bus }

// SetSelfURL records the gateway's externally reachable base URL after
// the daemon binds its listener, enabling checkpoint streaming for long
// jobs submitted from then on.
func (g *Gateway) SetSelfURL(u string) { g.selfURL.Store(strings.TrimRight(u, "/")) }

// SelfURL returns the currently configured self URL ("" if unset).
func (g *Gateway) SelfURL() string { u, _ := g.selfURL.Load().(string); return u }

// Close stops the health prober and cancels running jobs, waiting for
// their coordinators to unwind. In-flight synchronous forwards are
// unaffected — the HTTP server draining above the gateway bounds them.
func (g *Gateway) Close() {
	g.closeOnce.Do(func() {
		close(g.quit)
		g.jobCancel()
	})
	g.probeWG.Wait()
	g.jobWG.Wait()
}

// forwardClass discriminates one placement attempt's result.
type forwardClass int

const (
	fcDelivered  forwardClass = iota // classified answer: final, never retried
	fcBadRequest                     // node-validated 400: final
	fcShed                           // 429: node alive but full — try elsewhere
	fcFailed                         // connection failure or 503 — breaker fault
)

// Do places one request on a compatible node and returns its classified
// answer, failing over across replicas on connection failures, 503s, and
// sheds. It implements the same Doer contract as serve.Service.Do, so the
// load generator drives a cluster exactly like a single daemon.
func (g *Gateway) Do(ctx context.Context, req serve.Request) (serve.Response, error) {
	g.m.Requests.Add(1)
	// One admission entrypoint for the whole stack: the gateway validates
	// with the same serve.ParseRequest the nodes use (against its own,
	// looser limits), so a 400 means the same thing at every layer and a
	// malformed request never ties up a placement.
	p, err := serve.ParseRequest(g.jobLimits(), req)
	if err != nil {
		g.m.BadRequests.Add(1)
		return serve.Response{}, err
	}
	// Route construction refuses non-wire kernel values rather than ever
	// splicing the Kernel(%d) diagnostic fallback into a URL.
	wire, err := p.Kernel.Wire()
	if err != nil {
		g.m.BadRequests.Add(1)
		return serve.Response{}, err
	}
	// Per-tenant quota at the cluster door: a flooding tenant is turned
	// away before it consumes node windows or placement work. The nodes'
	// own schedulers still apply their quotas/fair-queueing underneath.
	if g.quota != nil {
		if qerr := g.quota.Take(p.Tenant); qerr != nil {
			var qe *qos.QuotaError
			errors.As(qerr, &qe)
			g.m.Throttled.Add(1)
			return serve.Response{}, &serve.ThrottleError{Tenant: p.Tenant, RetryAfter: qe.RetryAfter}
		}
	}

	capable := make([]*node, 0, len(g.nodes))
	for _, nd := range g.nodes {
		if nd.supports(p.Strategy) {
			capable = append(capable, nd)
		}
	}
	if len(capable) == 0 {
		g.m.NoNodes.Add(1)
		return serve.Response{}, fmt.Errorf("%w: %s", ErrNoNodes, p.Strategy)
	}
	ranked := rank(capable, placementKey(p.Kernel, sizeClass(p.Size())))

	body, err := json.Marshal(req)
	if err != nil {
		g.m.BadRequests.Add(1)
		return serve.Response{}, fmt.Errorf("%w: %w", serve.ErrBadRequest, err)
	}

	// Integrity-tier requests leave the single-placement path here: they
	// are elections over distinct nodes, not failover chains.
	if p.Integrity != serve.IntegrityNone {
		return g.doIntegrity(ctx, p, wire, body, ranked)
	}

	forwards := 0
	sawShed := false
	needBackoff := false
	var lastErr error
	for _, nd := range ranked {
		if forwards > g.cfg.Retries {
			break
		}
		if nd.draining.Load() || !nd.healthy.Load() {
			continue
		}
		if !nd.br.allow(time.Now()) {
			nd.m.BreakerSkips.Add(1)
			continue
		}
		if needBackoff {
			needBackoff = false
			if err := sleepCtx(ctx, g.backoff(req.Seed, forwards)); err != nil {
				return serve.Response{}, fmt.Errorf("%w: %w", ErrUnavailable, err)
			}
		}
		if !nd.tryAcquire() {
			nd.m.WindowSkips.Add(1)
			sawShed = true
			continue
		}
		if forwards > 0 {
			g.m.Retries.Add(1)
		}
		resp, class, err := g.forward(ctx, nd, wire, body)
		nd.release()
		forwards++
		switch class {
		case fcDelivered:
			if tripped := nd.br.onDelivered(time.Now(), resp.Outcome == "aborted"); tripped {
				nd.m.BreakerTrips.Add(1)
			}
			nd.m.Delivered.Add(1)
			g.m.Delivered.Add(1)
			switch resp.Outcome {
			case "corrected":
				g.m.Corrected.Add(1)
			case "restarted":
				g.m.Restarted.Add(1)
			case "aborted":
				g.m.Aborted.Add(1)
			}
			resp.Node = nd.id
			resp.GatewayRetries = forwards - 1
			return resp, nil
		case fcBadRequest:
			g.m.BadRequests.Add(1)
			return serve.Response{}, err
		case fcShed:
			nd.m.Rejected429.Add(1)
			sawShed = true
			lastErr = err
		case fcFailed:
			if tripped := nd.br.onFailure(time.Now()); tripped {
				nd.m.BreakerTrips.Add(1)
			}
			lastErr = err
			needBackoff = true
			if ctx.Err() != nil {
				g.m.Unavailable.Add(1)
				return serve.Response{}, fmt.Errorf("%w: %w", ErrUnavailable, lastErr)
			}
		}
	}

	if sawShed {
		g.m.Overloaded.Add(1)
		if lastErr == nil {
			lastErr = errors.New("every eligible replica's window is full")
		}
		return serve.Response{}, fmt.Errorf("%w: %v", serve.ErrOverloaded, lastErr)
	}
	g.m.Unavailable.Add(1)
	if lastErr == nil {
		lastErr = errors.New("every eligible replica is parked (breaker open or unhealthy)")
	}
	return serve.Response{}, fmt.Errorf("%w after %d attempts: %v", ErrUnavailable, forwards, lastErr)
}

// forward sends one attempt to one node and classifies the transport
// result. Only fcDelivered carries a response.
func (g *Gateway) forward(ctx context.Context, nd *node, kernel string, body []byte) (serve.Response, forwardClass, error) {
	nd.m.Forwarded.Add(1)
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		nd.base+"/v1/"+kernel, bytes.NewReader(body))
	if err != nil {
		return serve.Response{}, fcFailed, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := g.cfg.Client.Do(hreq)
	if err != nil {
		nd.m.TransportErrors.Add(1)
		return serve.Response{}, fcFailed, fmt.Errorf("node %s: %w", nd.id, err)
	}
	defer hresp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(hresp.Body, 1<<20))
	if err != nil {
		nd.m.TransportErrors.Add(1)
		return serve.Response{}, fcFailed, fmt.Errorf("node %s: %w", nd.id, err)
	}

	switch hresp.StatusCode {
	case http.StatusOK:
		var resp serve.Response
		if err := json.Unmarshal(payload, &resp); err != nil {
			nd.m.TransportErrors.Add(1)
			return serve.Response{}, fcFailed, fmt.Errorf("node %s: bad response body: %w", nd.id, err)
		}
		return resp, fcDelivered, nil
	case http.StatusBadRequest:
		return serve.Response{}, fcBadRequest, fmt.Errorf("%w: node %s: %s", serve.ErrBadRequest, nd.id, wireError(payload))
	case http.StatusTooManyRequests:
		return serve.Response{}, fcShed, fmt.Errorf("node %s: %s", nd.id, wireError(payload))
	default: // 503 and anything else unexpected is a node fault
		nd.m.Failed503.Add(1)
		return serve.Response{}, fcFailed, fmt.Errorf("node %s: HTTP %d: %s", nd.id, hresp.StatusCode, wireError(payload))
	}
}

// backoff derives the jittered failover delay from the request seed and
// attempt index — exponential growth, deterministic per (gateway seed,
// request seed, attempt) so a replayed sweep behaves identically.
func (g *Gateway) backoff(seed uint64, attempt int) time.Duration {
	shift := attempt - 1
	if shift > 6 {
		shift = 6
	}
	if shift < 0 {
		shift = 0
	}
	d := g.cfg.RetryBackoff << shift
	j := campaign.Splitmix64(g.cfg.Seed ^ seed ^ (uint64(attempt)+1)*0x9E3779B97F4A7C15)
	frac := 0.5 + float64(j%1024)/1024.0 // [0.5, 1.5)
	return time.Duration(float64(d) * frac)
}

// Drain takes a node out of placement without touching its in-flight
// requests: running work finishes, new work goes elsewhere.
func (g *Gateway) Drain(id string) error {
	nd, ok := g.byID[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownNode, id)
	}
	nd.draining.Store(true)
	return nil
}

// Rejoin returns a drained node to placement.
func (g *Gateway) Rejoin(id string) error {
	nd, ok := g.byID[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownNode, id)
	}
	nd.draining.Store(false)
	return nil
}

// NodeStatus is one node's live state, as reported by /healthz.
type NodeStatus struct {
	ID         string `json:"id"`
	Healthy    bool   `json:"healthy"`
	Draining   bool   `json:"draining"`
	Breaker    string `json:"breaker"`
	Inflight   int64  `json:"inflight"`
	QueueDepth int64  `json:"queue_depth"` // node-reported, from the last probe
	// Suspects counts vote elections this node lost (its well-formed
	// answer was outvoted by the replica majority).
	Suspects int64 `json:"suspects"`
}

// Status snapshots every node in configuration order.
func (g *Gateway) Status() []NodeStatus {
	out := make([]NodeStatus, 0, len(g.nodes))
	for _, nd := range g.nodes {
		state, _ := nd.br.snapshot()
		out = append(out, NodeStatus{
			ID:         nd.id,
			Healthy:    nd.healthy.Load(),
			Draining:   nd.draining.Load(),
			Breaker:    state.String(),
			Inflight:   nd.m.Inflight.Value(),
			QueueDepth: nd.m.QueueDepth.Value(),
			Suspects:   nd.m.Suspects.Value(),
		})
	}
	return out
}

// sleepCtx waits d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return context.Cause(ctx)
	}
}

// wireError extracts a node's error envelope for diagnostics.
func wireError(payload []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(payload, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(payload))
}
