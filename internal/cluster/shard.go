package cluster

import (
	"fmt"

	"coopabft/internal/abft"
	"coopabft/internal/campaign"
	"coopabft/internal/serve"
)

// shardTask is one planned block task: a role + grid position bound to the
// worker that owns it.
type shardTask struct {
	role   string
	bi, bj int
	node   *node
}

// shardPlan is a job's full schedule: the block grid, the rotated worker
// list, and every task with its placement.
type shardPlan struct {
	grid    abft.BlockGrid
	workers []*node
	tasks   []shardTask
}

// maxGridDim caps the block grid's rows/columns: past ~8 the per-block
// coordination overhead beats the parallelism win at the sizes this
// gateway serves.
const maxGridDim = 8

// planShards lays an n×n sharded GEMM over the eligible workers: an R×C
// grid of data blocks plus C column-checksum and R row-checksum blocks.
//
// Placement over W workers (rotated by the job seed so successive jobs
// spread load): data (i,j) → w[(i+j) mod W], col-check j → w[(R+j) mod W],
// row-check i → w[(i+C) mod W]. With R ≤ W-1 and C ≤ W-1, any two tasks a
// single grid column depends on — its data blocks and its column-checksum
// block — land on distinct workers: within column j the data indices
// (i+j) mod W are distinct for i in [0,R) because R ≤ W, and the col-check
// index (R+j) mod W would collide only at i ≡ R, which is outside [0,R).
// Losing any single worker therefore costs each column at most one of its
// blocks, and column parity reconstructs it — the single-node-loss
// recovery guarantee the coordinator relies on.
func planShards(n int, ws []*node, shardBlock int, seed uint64) (shardPlan, error) {
	w := len(ws)
	if w < 3 {
		return shardPlan{}, fmt.Errorf("%w: sharding needs >= 3 eligible workers, have %d",
			ErrUnavailable, w)
	}
	rot := int(campaign.Splitmix64(seed) % uint64(w))
	rotated := append(append(make([]*node, 0, w), ws[rot:]...), ws[:rot]...)

	dim := (n + shardBlock - 1) / shardBlock
	if lim := w - 1; dim > lim {
		dim = lim
	}
	if dim > maxGridDim {
		dim = maxGridDim
	}
	if dim < 2 {
		dim = 2
	}
	grid, err := abft.NewBlockGrid(n, dim, dim)
	if err != nil {
		return shardPlan{}, err
	}

	r, c := grid.Rows(), grid.Cols()
	tasks := make([]shardTask, 0, r*c+r+c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			tasks = append(tasks, shardTask{role: serve.BlockData, bi: i, bj: j,
				node: rotated[(i+j)%w]})
		}
	}
	for j := 0; j < c; j++ {
		tasks = append(tasks, shardTask{role: serve.BlockColCheck, bj: j,
			node: rotated[(r+j)%w]})
	}
	for i := 0; i < r; i++ {
		tasks = append(tasks, shardTask{role: serve.BlockRowCheck, bi: i,
			node: rotated[(i+c)%w]})
	}
	return shardPlan{grid: grid, workers: rotated, tasks: tasks}, nil
}

// eligibleWorkers snapshots the nodes a sharded job may use: in rotation
// (not draining), believed healthy, and not parked behind an open breaker.
func (g *Gateway) eligibleWorkers() []*node {
	out := make([]*node, 0, len(g.nodes))
	for _, nd := range g.nodes {
		if nd.draining.Load() || !nd.healthy.Load() {
			continue
		}
		out = append(out, nd)
	}
	return out
}
