package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"coopabft/internal/abft"
	"coopabft/internal/mat"
	"coopabft/internal/serve"
)

// errBlockLost marks a block task whose node stopped answering after the
// retry budget: the task is not rescheduled — the coordinator reconstructs
// its block from the surviving checksum blocks instead.
var errBlockLost = errors.New("cluster: block task lost with its node")

// ErrUnknownJob reports a jobs-API operation against an ID the gateway
// does not hold (never submitted, or evicted after retention).
var ErrUnknownJob = errors.New("cluster: unknown job")

// blockReadLimit bounds one block result read: a MaxJobN-sized checksum
// result (parity + sum, base64) runs to tens of MB.
const blockReadLimit = 64 << 20

// jobRecord is one job's lifecycle state. The coordinator goroutine owns
// the execution; status is the only shared surface, guarded by mu.
type jobRecord struct {
	id     string
	cancel context.CancelFunc
	done   chan struct{}

	mu     sync.Mutex
	status serve.JobStatus
	doneAt time.Time

	// long is the long-job coordination state (guarded by mu): the current
	// incarnation epoch, the newest accepted encoded checkpoint and its
	// step, and the open fault time for recovery-latency accounting.
	long struct {
		epoch    int64
		snap     []byte
		snapStep int
		faultAt  time.Time
	}
}

// update mutates the status under the record lock and returns a copy.
func (r *jobRecord) update(f func(*serve.JobStatus)) serve.JobStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	f(&r.status)
	return r.status
}

func terminal(state string) bool {
	return state == serve.JobDone || state == serve.JobFailed || state == serve.JobCancelled
}

// finish moves the record to a terminal state exactly once (later calls
// are no-ops, so a cancel racing completion cannot flip the verdict),
// stamps timing, counts it, and releases waiters.
func (r *jobRecord) finish(g *Gateway, started time.Time, f func(*serve.JobStatus)) {
	r.mu.Lock()
	if terminal(r.status.State) {
		r.mu.Unlock()
		return
	}
	f(&r.status)
	r.status.RunMS = float64(time.Since(started)) / float64(time.Millisecond)
	r.doneAt = time.Now()
	state := r.status.State
	r.mu.Unlock()
	switch state {
	case serve.JobDone:
		g.m.JobsCompleted.Add(1)
	case serve.JobCancelled:
		g.m.JobsCancelled.Add(1)
	default:
		g.m.JobsFailed.Add(1)
	}
	close(r.done)
}

// jobLimits bounds jobs-API admission; the sync path shares it, so the
// gateway's 400 taxonomy comes from the same serve.ParseRequest the nodes
// use.
func (g *Gateway) jobLimits() serve.Limits {
	return serve.Limits{MaxN: g.cfg.MaxJobN, MaxFaults: g.cfg.MaxFaults}
}

// SubmitJob admits one async job: large GEMMs shard into checksum-block
// tasks across the pool; CG solves run as step-granular long jobs that
// stream checkpoints back to the gateway and migrate across worker
// deaths; everything else passes through the synchronous forwarding path
// unchanged. Returns the job's initial status (State "queued") with its
// polling ID.
func (g *Gateway) SubmitJob(req serve.Request) (serve.JobStatus, error) {
	p, err := serve.ParseRequest(g.jobLimits(), req)
	if err != nil {
		g.m.BadRequests.Add(1)
		return serve.JobStatus{}, err
	}

	long := p.Kernel == serve.KernelCG
	sharded := p.Kernel == serve.KernelGEMM && p.N >= g.cfg.ShardThreshold
	var plan shardPlan
	if sharded {
		if p.Faults > 0 {
			g.m.BadRequests.Add(1)
			return serve.JobStatus{}, fmt.Errorf(
				"%w: fault injection is per-node; sharded jobs (n >= %d) do not support it",
				serve.ErrBadRequest, g.cfg.ShardThreshold)
		}
		if plan, err = planShards(p.N, g.eligibleWorkers(), g.cfg.ShardBlock, p.Seed); err != nil {
			// Too few workers to hold distinct checksum blocks: fall back
			// to forwarding whole, same as a small job.
			sharded = false
		}
	}

	g.jobMu.Lock()
	if err := g.evictJobsLocked(time.Now()); err != nil {
		g.jobMu.Unlock()
		return serve.JobStatus{}, err
	}
	g.jobSeq++
	id := fmt.Sprintf("j%06d", g.jobSeq)
	ctx, cancel := context.WithCancel(g.jobCtx)
	rec := &jobRecord{id: id, cancel: cancel, done: make(chan struct{})}
	rec.status = serve.JobStatus{
		ID: id, State: serve.JobQueued, Kernel: p.Kernel.String(), N: p.Size(),
		Sharded: sharded, Long: long,
	}
	if sharded {
		grid := plan.grid
		rec.status.BlocksTotal = grid.Rows()*grid.Cols() + grid.Rows() + grid.Cols()
	}
	g.jobs[id] = rec
	st := rec.status
	g.jobMu.Unlock()

	g.m.JobsSubmitted.Add(1)
	g.jobWG.Add(1)
	go func() {
		defer g.jobWG.Done()
		defer cancel()
		switch {
		case long:
			g.runLongJob(ctx, rec, p, req)
		case sharded:
			g.runShardedJob(ctx, rec, p, plan)
		default:
			g.runPassthroughJob(ctx, rec, req)
		}
	}()
	return st, nil
}

// evictJobsLocked drops terminal records past retention, then — if the
// table is still at capacity — the oldest terminal record. A table full of
// live jobs rejects with the standard overload error.
func (g *Gateway) evictJobsLocked(now time.Time) error {
	for id, rec := range g.jobs {
		rec.mu.Lock()
		old := terminal(rec.status.State) && now.Sub(rec.doneAt) > g.cfg.JobRetention
		rec.mu.Unlock()
		if old {
			delete(g.jobs, id)
		}
	}
	for len(g.jobs) >= g.cfg.MaxJobs {
		var oldest *jobRecord
		for _, rec := range g.jobs {
			rec.mu.Lock()
			t := terminal(rec.status.State)
			rec.mu.Unlock()
			if t && (oldest == nil || rec.doneAt.Before(oldest.doneAt)) {
				oldest = rec
			}
		}
		if oldest == nil {
			return fmt.Errorf("%w: %d jobs in flight", serve.ErrOverloaded, len(g.jobs))
		}
		delete(g.jobs, oldest.id)
	}
	return nil
}

// JobStatusOf returns a job's current status.
func (g *Gateway) JobStatusOf(id string) (serve.JobStatus, error) {
	g.jobMu.Lock()
	rec, ok := g.jobs[id]
	g.jobMu.Unlock()
	if !ok {
		return serve.JobStatus{}, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	return rec.status, nil
}

// CancelJob requests cancellation. Terminal jobs are unaffected (the
// call is an idempotent no-op); a running job transitions to "cancelled"
// once its coordinator unwinds. The returned status is the state at call
// time — poll GET for the terminal one.
func (g *Gateway) CancelJob(id string) (serve.JobStatus, error) {
	g.jobMu.Lock()
	rec, ok := g.jobs[id]
	g.jobMu.Unlock()
	if !ok {
		return serve.JobStatus{}, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	rec.cancel()
	rec.mu.Lock()
	defer rec.mu.Unlock()
	return rec.status, nil
}

// runPassthroughJob executes a small (or shard-ineligible) job through the
// existing synchronous forwarding path — byte-for-byte the same placement,
// failover, and classification as POST /v1/<kernel>.
func (g *Gateway) runPassthroughJob(ctx context.Context, rec *jobRecord, req serve.Request) {
	g.m.JobsPassthrough.Add(1)
	started := time.Now()
	rec.update(func(st *serve.JobStatus) { st.State = serve.JobRunning })
	resp, err := g.Do(ctx, req)
	rec.finish(g, started, func(st *serve.JobStatus) {
		switch {
		case err == nil:
			st.State = serve.JobDone
			st.Result = &resp
		case ctx.Err() != nil:
			st.State = serve.JobCancelled
			st.Error = context.Cause(ctx).Error()
		default:
			st.State = serve.JobFailed
			st.Error = err.Error()
		}
	})
}

// blockSlot is one grid position's landed result on the coordinator.
type blockSlot struct {
	block *mat.Matrix
	sum   *mat.Matrix // checksum roles only
}

// runShardedJob drives one sharded job end to end: dispatch every block
// task to its planned worker, collect results, reconstruct whatever a dead
// node took with it, Σ-verify, assemble, and fingerprint. A single node
// loss is absorbed with zero recomputation — the loss shows up only in the
// reconstructions counter.
func (g *Gateway) runShardedJob(ctx context.Context, rec *jobRecord, p serve.Parsed, plan shardPlan) {
	started := time.Now()
	rec.update(func(st *serve.JobStatus) { st.State = serve.JobRunning })
	grid := plan.grid
	r, c := grid.Rows(), grid.Cols()

	var (
		mu       sync.Mutex
		data     = make([][]*mat.Matrix, r)
		colCheck = make([]blockSlot, c)
		rowCheck = make([]blockSlot, r)
		lost     []shardTask
		fatal    error
	)
	for i := range data {
		data[i] = make([]*mat.Matrix, c)
	}

	var wg sync.WaitGroup
	for _, t := range plan.tasks {
		wg.Add(1)
		go func(t shardTask) {
			defer wg.Done()
			blk, sum, err := g.runBlockTask(ctx, t, plan, p, rec.id)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				switch t.role {
				case serve.BlockData:
					data[t.bi][t.bj] = blk
				case serve.BlockColCheck:
					colCheck[t.bj] = blockSlot{block: blk, sum: sum}
				default:
					rowCheck[t.bi] = blockSlot{block: blk, sum: sum}
				}
				rec.update(func(st *serve.JobStatus) { st.BlocksDone++ })
			case errors.Is(err, errBlockLost):
				lost = append(lost, t)
			default: // bad request or cancellation: no point continuing
				if fatal == nil {
					fatal = err
				}
			}
		}(t)
	}
	wg.Wait()

	fail := func(err error) {
		rec.finish(g, started, func(st *serve.JobStatus) {
			if ctx.Err() != nil && errors.Is(err, context.Cause(ctx)) {
				st.State = serve.JobCancelled
			} else {
				st.State = serve.JobFailed
			}
			st.Error = err.Error()
		})
	}
	if ctx.Err() != nil {
		fail(context.Cause(ctx))
		return
	}
	if fatal != nil {
		fail(fatal)
		return
	}

	// Recover lost data blocks algebraically — column parity first (the
	// single-loss guarantee), row parity as the cross-check fallback;
	// recomputation is the last resort and is counted separately, because
	// the chaos gate requires it to stay zero. Lost checksum blocks need
	// no action: they exist to protect data blocks, and verification below
	// simply skips a column/row whose checksum died.
	for _, t := range lost {
		if t.role != serve.BlockData {
			continue
		}
		r0, r1 := grid.RowSpan(t.bi)
		c0, c1 := grid.ColSpan(t.bj)
		if blk := reconstructData(grid, data, colCheck, rowCheck, t); blk != nil {
			data[t.bi][t.bj] = blk
			g.m.Reconstructions.Add(1)
			rec.update(func(st *serve.JobStatus) { st.Reconstructions++; st.BlocksDone++ })
			continue
		}
		// Unrecoverable (multi-loss overlapped this block's row and
		// column): recompute on a surviving worker.
		nd := g.fallbackWorker(plan, lost)
		if nd == nil {
			fail(fmt.Errorf("%w: block (%d,%d) unrecoverable and no worker left to recompute it",
				ErrUnavailable, t.bi, t.bj))
			return
		}
		blk, _, err := g.runBlockTask(ctx, shardTask{role: serve.BlockData, bi: t.bi, bj: t.bj, node: nd},
			plan, p, rec.id)
		if err != nil {
			fail(fmt.Errorf("recomputing block (%d,%d): %w", t.bi, t.bj, err))
			return
		}
		if blk.Rows != r1-r0 || blk.Cols != c1-c0 {
			fail(fmt.Errorf("recomputed block (%d,%d) has wrong shape", t.bi, t.bj))
			return
		}
		data[t.bi][t.bj] = blk
		g.m.BlockRecomputes.Add(1)
		rec.update(func(st *serve.JobStatus) { st.Recomputes++; st.BlocksDone++ })
	}

	// Σ-verify every column and row whose checksum block survived: the
	// numeric ABFT check gates both reconstructed and directly delivered
	// blocks, so a corrupted survivor cannot silently poison the answer.
	tol := abft.BlockTol(p.N)
	for j := 0; j < c; j++ {
		if colCheck[j].sum == nil {
			continue
		}
		col := make([]*mat.Matrix, 0, r)
		for i := 0; i < r; i++ {
			col = append(col, data[i][j])
		}
		if err := abft.VerifyBlockSum(colCheck[j].sum, col, tol); err != nil {
			fail(fmt.Errorf("column %d: %w", j, err))
			return
		}
	}
	for i := 0; i < r; i++ {
		if rowCheck[i].sum == nil {
			continue
		}
		if err := abft.VerifyBlockSum(rowCheck[i].sum, data[i], tol); err != nil {
			fail(fmt.Errorf("row %d: %w", i, err))
			return
		}
	}

	// Assemble and fingerprint. Every block is bit-identical to its region
	// of the single-node product, so the digest matches the direct path's.
	out := mat.New(p.N, p.N)
	for i := 0; i < r; i++ {
		r0, r1 := grid.RowSpan(i)
		for j := 0; j < c; j++ {
			c0, c1 := grid.ColSpan(j)
			out.View(r0, c0, r1-r0, c1-c0).CopyFrom(data[i][j])
		}
	}
	digest := abft.BitDigest(out)
	resp := serve.Response{
		Kernel: p.Kernel.String(), N: p.N, Strategy: p.Strategy.String(),
		Outcome: "corrected",
		RunMS:   float64(time.Since(started)) / float64(time.Millisecond),
	}
	rec.finish(g, started, func(st *serve.JobStatus) {
		st.State = serve.JobDone
		st.Digest = digest
		st.Result = &resp
	})
}

// reconstructData recovers one lost data block from surviving siblings, or
// returns nil when neither its column nor its row has a complete parity
// set.
func reconstructData(grid abft.BlockGrid, data [][]*mat.Matrix, colCheck, rowCheck []blockSlot, t shardTask) *mat.Matrix {
	r0, r1 := grid.RowSpan(t.bi)
	c0, c1 := grid.ColSpan(t.bj)
	if colCheck[t.bj].block != nil {
		surv := make([]*mat.Matrix, 0, grid.Rows()-1)
		for i := 0; i < grid.Rows(); i++ {
			if i == t.bi {
				continue
			}
			if data[i][t.bj] == nil {
				surv = nil
				break
			}
			surv = append(surv, data[i][t.bj])
		}
		if surv != nil {
			if blk, err := abft.ReconstructBlock(colCheck[t.bj].block, surv, r1-r0, c1-c0); err == nil {
				return blk
			}
		}
	}
	if rowCheck[t.bi].block != nil {
		surv := make([]*mat.Matrix, 0, grid.Cols()-1)
		for j := 0; j < grid.Cols(); j++ {
			if j == t.bj {
				continue
			}
			if data[t.bi][j] == nil {
				surv = nil
				break
			}
			surv = append(surv, data[t.bi][j])
		}
		if surv != nil {
			if blk, err := abft.ReconstructBlock(rowCheck[t.bi].block, surv, r1-r0, c1-c0); err == nil {
				return blk
			}
		}
	}
	return nil
}

// fallbackWorker picks a recompute host: any planned worker that lost no
// task and is still in rotation.
func (g *Gateway) fallbackWorker(plan shardPlan, lost []shardTask) *node {
	dead := make(map[string]bool, len(lost))
	for _, t := range lost {
		dead[t.node.id] = true
	}
	for _, nd := range plan.workers {
		if !dead[nd.id] && !nd.draining.Load() && nd.healthy.Load() {
			return nd
		}
	}
	return nil
}

// runBlockTask runs one block task on its planned node, retrying transient
// failures (connection errors, 503s, sheds) on the same node with the
// gateway's jittered backoff — a block is bound to its placement; losing
// the node means reconstruction, not rescheduling. Returns the unpacked
// block (and sum, for checksum roles); errBlockLost after the retry
// budget.
func (g *Gateway) runBlockTask(ctx context.Context, t shardTask, plan shardPlan, p serve.Parsed, jobID string) (*mat.Matrix, *mat.Matrix, error) {
	task := serve.BlockTask{
		JobID: jobID, Kernel: p.Kernel.String(), N: p.N, Seed: p.Seed, Role: t.role,
		RowSplits: plan.grid.RowSplits, ColSplits: plan.grid.ColSplits, BI: t.bi, BJ: t.bj,
	}
	body, err := json.Marshal(task)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %w", serve.ErrBadRequest, err)
	}
	nd := t.node
	var lastErr error
	for attempt := 0; attempt <= g.cfg.Retries; attempt++ {
		if attempt > 0 {
			if err := sleepCtx(ctx, g.backoff(p.Seed^uint64(t.bi*31+t.bj), attempt)); err != nil {
				return nil, nil, err
			}
		}
		select {
		case nd.window <- struct{}{}:
			nd.m.Inflight.Add(1)
		case <-ctx.Done():
			return nil, nil, context.Cause(ctx)
		}
		res, class, err := g.postBlock(ctx, nd, body)
		nd.release()
		switch class {
		case fcDelivered:
			if tripped := nd.br.onDelivered(time.Now(), false); tripped {
				nd.m.BreakerTrips.Add(1)
			}
			g.m.BlockTasksDispatched.Add(1)
			if t.role != serve.BlockData {
				g.m.ChecksumTasks.Add(1)
			}
			return unpackBlockResult(t, plan.grid, res)
		case fcBadRequest:
			return nil, nil, err
		case fcShed:
			nd.m.Rejected429.Add(1)
			lastErr = err
		case fcFailed:
			if tripped := nd.br.onFailure(time.Now()); tripped {
				nd.m.BreakerTrips.Add(1)
			}
			lastErr = err
			if ctx.Err() != nil {
				return nil, nil, context.Cause(ctx)
			}
		}
	}
	return nil, nil, fmt.Errorf("%w: node %s: %v", errBlockLost, nd.id, lastErr)
}

// postBlock sends one block-task attempt and classifies the transport
// result, mirroring forward's taxonomy.
func (g *Gateway) postBlock(ctx context.Context, nd *node, body []byte) (serve.BlockResult, forwardClass, error) {
	nd.m.Forwarded.Add(1)
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, nd.base+"/v1/block", bytes.NewReader(body))
	if err != nil {
		return serve.BlockResult{}, fcFailed, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := g.cfg.Client.Do(hreq)
	if err != nil {
		nd.m.TransportErrors.Add(1)
		return serve.BlockResult{}, fcFailed, fmt.Errorf("node %s: %w", nd.id, err)
	}
	defer hresp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(hresp.Body, blockReadLimit))
	if err != nil {
		nd.m.TransportErrors.Add(1)
		return serve.BlockResult{}, fcFailed, fmt.Errorf("node %s: %w", nd.id, err)
	}
	switch hresp.StatusCode {
	case http.StatusOK:
		var res serve.BlockResult
		if err := json.Unmarshal(payload, &res); err != nil {
			nd.m.TransportErrors.Add(1)
			return serve.BlockResult{}, fcFailed, fmt.Errorf("node %s: bad block body: %w", nd.id, err)
		}
		return res, fcDelivered, nil
	case http.StatusBadRequest:
		return serve.BlockResult{}, fcBadRequest,
			fmt.Errorf("%w: node %s: %s", serve.ErrBadRequest, nd.id, wireError(payload))
	case http.StatusTooManyRequests:
		return serve.BlockResult{}, fcShed, fmt.Errorf("node %s: %s", nd.id, wireError(payload))
	default:
		nd.m.Failed503.Add(1)
		return serve.BlockResult{}, fcFailed,
			fmt.Errorf("node %s: HTTP %d: %s", nd.id, hresp.StatusCode, wireError(payload))
	}
}

// unpackBlockResult decodes a delivered result and checks its shape
// against the plan; a malformed payload is a bad response, not a lost
// node.
func unpackBlockResult(t shardTask, grid abft.BlockGrid, res serve.BlockResult) (*mat.Matrix, *mat.Matrix, error) {
	var wantR, wantC int
	switch t.role {
	case serve.BlockData:
		r0, r1 := grid.RowSpan(t.bi)
		c0, c1 := grid.ColSpan(t.bj)
		wantR, wantC = r1-r0, c1-c0
	case serve.BlockColCheck:
		c0, c1 := grid.ColSpan(t.bj)
		wantR, wantC = grid.MaxRowSpan(), c1-c0
	default:
		r0, r1 := grid.RowSpan(t.bi)
		wantR, wantC = r1-r0, grid.MaxColSpan()
	}
	if res.Rows != wantR || res.Cols != wantC {
		return nil, nil, fmt.Errorf("%w: %s block (%d,%d): got %dx%d, want %dx%d",
			serve.ErrBadRequest, t.role, t.bi, t.bj, res.Rows, res.Cols, wantR, wantC)
	}
	blk, err := abft.UnpackBlock(res.Rows, res.Cols, res.Block)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", serve.ErrBadRequest, err)
	}
	var sum *mat.Matrix
	if t.role != serve.BlockData {
		if sum, err = abft.UnpackBlock(res.Rows, res.Cols, res.Sum); err != nil {
			return nil, nil, fmt.Errorf("%w: %v", serve.ErrBadRequest, err)
		}
	}
	return blk, sum, nil
}
