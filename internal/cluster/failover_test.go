package cluster

import (
	"context"
	"fmt"
	"testing"
	"time"

	"coopabft/internal/core"
	"coopabft/internal/serve"
	"coopabft/internal/serve/loadgen"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestThreeNodeFailoverAndRejoin is the in-process version of the CI
// chaos smoke: kill the node that owns a key mid-stream, require every
// subsequent request to still classify (zero wrong answers), watch the
// probe mark it unhealthy, restart it on the same address, and require
// placement to return to it.
func TestThreeNodeFailoverAndRejoin(t *testing.T) {
	nodes := make([]*restartableNode, 3)
	cfgs := make([]NodeConfig, 3)
	for i := range nodes {
		nodes[i] = startRestartable(t, "")
		cfgs[i] = NodeConfig{ID: fmt.Sprintf("n%d", i), BaseURL: nodes[i].url()}
	}
	g, err := New(Config{
		Nodes:           cfgs,
		Window:          8,
		Retries:         3,
		RetryBackoff:    time.Millisecond,
		ProbeInterval:   25 * time.Millisecond,
		ProbeTimeout:    250 * time.Millisecond,
		BreakerFailures: 2,
		BreakerCooldown: 100 * time.Millisecond,
		Seed:            13,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)

	do := func(seed uint64) serve.Response {
		t.Helper()
		resp, err := g.Do(context.Background(), serve.Request{Kernel: "gemm", N: 48, Seed: seed, Faults: 1})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if resp.Outcome != "corrected" && resp.Outcome != "restarted" && resp.Outcome != "aborted" {
			t.Fatalf("seed %d: wrong answer: outcome %q", seed, resp.Outcome)
		}
		return resp
	}

	owner := do(1).Node
	var victim *restartableNode
	for i, c := range cfgs {
		if c.ID == owner {
			victim = nodes[i]
		}
	}
	victim.kill() // SIGKILL analogue: connections refused, no drain

	// Every request during the outage must still classify; the first few
	// fail over live (connection refused → runner-up).
	failedOver := 0
	for seed := uint64(2); seed <= 20; seed++ {
		resp := do(seed)
		if resp.Node == owner {
			t.Fatalf("seed %d answered by killed node %s", seed, owner)
		}
		if resp.GatewayRetries > 0 {
			failedOver++
		}
	}
	if failedOver == 0 {
		t.Error("no request recorded a live failover from the killed node")
	}
	statusOf := func(id string) NodeStatus {
		for _, st := range g.Status() {
			if st.ID == id {
				return st
			}
		}
		t.Fatalf("node %s missing from status", id)
		return NodeStatus{}
	}
	waitFor(t, "probe to mark "+owner+" unhealthy", func() bool { return !statusOf(owner).Healthy })
	if g.m.Node(owner).TransportErrors.Value() == 0 {
		t.Error("killed node recorded no transport errors")
	}

	victim.start() // restart on the same address
	waitFor(t, "probe to mark "+owner+" healthy again", func() bool {
		st := statusOf(owner)
		return st.Healthy && st.Breaker == "closed"
	})
	// Placement returns to the owner: same key, fresh seeds.
	waitFor(t, "placement to return to "+owner, func() bool {
		return do(1000+uint64(time.Now().UnixNano()%1000)).Node == owner
	})
}

// TestSingleNodeClusterMatchesDirect: the acceptance gate — the same
// fixed-count seeded sweep against (a) an in-process Service and (b) a
// gateway fronting one identically-configured node yields bit-for-bit
// identical outcome tables. The gateway adds routing, never semantics.
func TestSingleNodeClusterMatchesDirect(t *testing.T) {
	sweep := loadgen.Config{
		Seed:          41,
		Requests:      10, // fixed-count: the sweep is a pure function of Seed
		Rates:         []float64{400},
		Kernels:       []serve.Kernel{serve.KernelGEMM, serve.KernelCholesky},
		Strategies:    []core.Strategy{core.WholeChipkill, core.PartialChipkillSECDED},
		N:             32,
		FaultFraction: 0.6,
		Timeout:       30 * time.Second,
	}
	svcCfg := serve.Config{MaxConcurrency: 2, QueueDepth: 64, QueueTimeout: 30 * time.Second}

	direct := serve.New(svcCfg)
	defer direct.Close()
	want, err := loadgen.Run(context.Background(), direct, sweep)
	if err != nil {
		t.Fatal(err)
	}

	g := testGateway(t, NodeConfig{ID: "solo", BaseURL: serveNode(t)})
	got, err := loadgen.Run(context.Background(), g, sweep)
	if err != nil {
		t.Fatal(err)
	}

	if len(want.Cells) != len(got.Cells) {
		t.Fatalf("cell count %d vs %d", len(want.Cells), len(got.Cells))
	}
	for i := range want.Cells {
		w, c := want.Cells[i], got.Cells[i]
		type table struct {
			Sent, Completed, Corrected, Restarted, Aborted    int
			Overloaded, QueueTimeout, Errors, Unclassified    int
			InjectedReqs, FaultsLanded, Corrections, Restarts int
		}
		wt := table{w.Sent, w.Completed, w.Corrected, w.Restarted, w.Aborted,
			w.Overloaded, w.QueueTimeout, w.Errors, w.Unclassified,
			w.InjectedReqs, w.FaultsLanded, w.Corrections, w.Restarts}
		ct := table{c.Sent, c.Completed, c.Corrected, c.Restarted, c.Aborted,
			c.Overloaded, c.QueueTimeout, c.Errors, c.Unclassified,
			c.InjectedReqs, c.FaultsLanded, c.Corrections, c.Restarts}
		if wt != ct {
			t.Errorf("cell %v/%v: direct %+v vs cluster %+v",
				w.Kernel, w.Strategy, wt, ct)
		}
		if c.Retried != 0 {
			t.Errorf("cell %v/%v: single-node cluster retried %d delivered answers",
				c.Kernel, c.Strategy, c.Retried)
		}
	}
}
