package cluster

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"time"
)

// healthPayload is the slice of abftd's /healthz body the prober reads:
// liveness plus the backpressure gauges the serve layer exports (the same
// values appear under serve.* in the node's /debug/vars).
type healthPayload struct {
	Status     string `json:"status"`
	QueueDepth int64  `json:"queue_depth"`
	Inflight   int64  `json:"inflight"`
	QueueCap   int64  `json:"queue_cap"`
}

// probeLoop probes one node every ProbeInterval until Close.
func (g *Gateway) probeLoop(nd *node) {
	defer g.probeWG.Done()
	t := time.NewTicker(g.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			g.probe(nd)
		case <-g.quit:
			return
		}
	}
}

// probe hits a node's /healthz once: a 200 "ok" marks the node healthy,
// refreshes its backpressure gauges, and — via the breaker — lets a
// restarted node rejoin rotation without sacrificing a live request.
// Anything else marks it unhealthy so placement routes around it before
// the breaker's failure threshold is even reached.
func (g *Gateway) probe(nd *node) {
	ctx, cancel := context.WithTimeout(context.Background(), g.cfg.ProbeTimeout)
	defer cancel()
	ok := false
	var hp healthPayload
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, nd.base+"/healthz", nil)
	if err == nil {
		if resp, rerr := g.cfg.Client.Do(req); rerr == nil {
			payload, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK &&
				json.Unmarshal(payload, &hp) == nil && hp.Status == "ok" {
				ok = true
			}
		}
	}
	if ok {
		nd.m.Healthy.Set(1)
		nd.m.QueueDepth.Set(hp.QueueDepth)
	} else {
		nd.m.Healthy.Set(0)
	}
	nd.healthy.Store(ok)
	nd.br.onProbe(time.Now(), ok)
}
