package cluster

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"

	"coopabft/internal/serve"
)

// maxBodyBytes bounds request bodies, mirroring the node-side limit.
const maxBodyBytes = 1 << 16

// errorBody matches the serve layer's JSON error envelope, so a client
// cannot tell a gateway rejection from a node rejection by shape.
type errorBody struct {
	Error string `json:"error"`
	// Kind is a stable machine-readable discriminator:
	// bad_request|overloaded|unavailable|no_nodes|no_quorum|internal|
	// unknown_node.
	Kind string `json:"kind"`
}

// NewHandler exposes the gateway's request path — the same wire surface as
// a single abftd node, so clients and the load generator drive a cluster
// exactly like one daemon — plus the cluster's own status and admin
// endpoints:
//
//	POST /v1/gemm, /v1/cholesky, /v1/cg   forwarded compute requests
//	POST   /v1/jobs                       submit an async job (202 + status)
//	GET    /v1/jobs/{id}                  poll a job's status/result
//	DELETE /v1/jobs/{id}                  cancel a job
//	PUT    /v1/jobs/{id}/checkpoint       long-job snapshot upload (workers)
//	GET  /v1/events                       cluster-wide error bus (NDJSON)
//	GET  /healthz                         gateway liveness + per-node status
//	POST /admin/drain?node=ID             take a node out of placement
//	POST /admin/rejoin?node=ID            return a drained node to placement
//
// Debug endpoints (/debug/vars, /debug/pprof) are the daemon's business.
func NewHandler(g *Gateway) http.Handler {
	mux := http.NewServeMux()
	for _, k := range serve.Kernels {
		mux.HandleFunc("POST /v1/"+k.String(), g.handleKernel(k.String()))
	}
	mux.HandleFunc("POST /v1/jobs", g.handleJobSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", g.handleJobGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", g.handleJobCancel)
	mux.HandleFunc("PUT /v1/jobs/{id}/checkpoint", g.handleJobCheckpoint)
	mux.HandleFunc("GET /v1/events", g.handleEvents)
	mux.HandleFunc("GET /healthz", g.handleHealthz)
	mux.HandleFunc("POST /admin/drain", g.handleAdmin(g.Drain, "draining"))
	mux.HandleFunc("POST /admin/rejoin", g.handleAdmin(g.Rejoin, "rejoined"))
	return mux
}

// handleKernel decodes the JSON body, forces the kernel from the route,
// and maps the gateway's typed errors onto HTTP status codes.
func (g *Gateway) handleKernel(kernel string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req serve.Request
		dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
		if err := dec.Decode(&req); err != nil && !errors.Is(err, io.EOF) {
			writeErr(w, http.StatusBadRequest, "bad_request", "invalid JSON body: "+err.Error())
			return
		}
		req.Kernel = kernel

		resp, err := g.Do(r.Context(), req)
		var throttle *serve.ThrottleError
		switch {
		case err == nil:
			writeJSON(w, http.StatusOK, resp)
		case errors.Is(err, serve.ErrBadRequest):
			writeErr(w, http.StatusBadRequest, "bad_request", err.Error())
		case errors.As(err, &throttle):
			w.Header().Set("Retry-After", serve.RetryAfterSeconds(throttle.RetryAfter))
			writeErr(w, http.StatusTooManyRequests, "throttled", err.Error())
		case errors.Is(err, serve.ErrOverloaded):
			w.Header().Set("Retry-After", "1")
			writeErr(w, http.StatusTooManyRequests, "overloaded", err.Error())
		case errors.Is(err, ErrNoNodes):
			writeErr(w, http.StatusServiceUnavailable, "no_nodes", err.Error())
		case errors.Is(err, ErrNoQuorum):
			// Quorum insufficiency is transient capacity, not shape: tell
			// the client when to come back, like an overload.
			w.Header().Set("Retry-After", "1")
			writeErr(w, http.StatusServiceUnavailable, "no_quorum", err.Error())
		case errors.Is(err, ErrUnavailable):
			writeErr(w, http.StatusServiceUnavailable, "unavailable", err.Error())
		default:
			writeErr(w, http.StatusInternalServerError, "internal", err.Error())
		}
	}
}

// handleHealthz reports gateway liveness plus every node's live state, so
// one probe answers "is the cluster up" and "which replicas are in
// rotation".
func (g *Gateway) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"nodes":  g.Status(),
	})
}

// handleAdmin wraps Drain/Rejoin as POST /admin/<op>?node=ID.
func (g *Gateway) handleAdmin(op func(string) error, verb string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.URL.Query().Get("node")
		if id == "" {
			writeErr(w, http.StatusBadRequest, "bad_request", "missing node query parameter")
			return
		}
		if err := op(id); err != nil {
			writeErr(w, http.StatusNotFound, "unknown_node", err.Error())
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"node": id, "status": verb})
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, kind, msg string) {
	writeJSON(w, code, errorBody{Error: msg, Kind: kind})
}
