package cluster

import (
	"testing"

	"coopabft/internal/serve"
)

func mkNodes(ids ...string) []*node {
	out := make([]*node, 0, len(ids))
	for _, id := range ids {
		out = append(out, &node{id: id, hash: fnv64a(id)})
	}
	return out
}

// TestSizeClass pins the power-of-two bucketing.
func TestSizeClass(t *testing.T) {
	for _, tc := range []struct{ n, class int }{
		{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{16, 4}, {17, 5}, {48, 6}, {64, 6}, {65, 7}, {192, 8}, {0, 0},
	} {
		if got := sizeClass(tc.n); got != tc.class {
			t.Errorf("sizeClass(%d) = %d, want %d", tc.n, got, tc.class)
		}
	}
}

// TestRankDeterministic: the same key always yields the same order.
func TestRankDeterministic(t *testing.T) {
	nodes := mkNodes("a", "b", "c", "d")
	key := placementKey(serve.KernelGEMM, 6)
	first := rank(nodes, key)
	for i := 0; i < 10; i++ {
		again := rank(nodes, key)
		for j := range first {
			if first[j].id != again[j].id {
				t.Fatalf("ranking unstable at %d: %s vs %s", j, first[j].id, again[j].id)
			}
		}
	}
}

// TestRankSpreads: across kernels and size classes, different nodes win —
// the hash actually distributes placement.
func TestRankSpreads(t *testing.T) {
	nodes := mkNodes("a", "b", "c", "d")
	winners := map[string]int{}
	for _, k := range serve.Kernels {
		for class := 0; class < 10; class++ {
			winners[rank(nodes, placementKey(k, class))[0].id]++
		}
	}
	if len(winners) < 3 {
		t.Errorf("30 keys landed on only %d of 4 nodes: %v", len(winners), winners)
	}
}

// TestRankRendezvousProperty: removing a node only remaps the keys it
// owned; every other key keeps its winner. This is the property that makes
// failover cheap — a dead node does not reshuffle the whole cluster.
func TestRankRendezvousProperty(t *testing.T) {
	nodes := mkNodes("a", "b", "c", "d")
	survivors := nodes[:3] // drop "d"
	for _, k := range serve.Kernels {
		for class := 0; class < 12; class++ {
			key := placementKey(k, class)
			before := rank(nodes, key)[0]
			after := rank(survivors, key)[0]
			if before.id != "d" && before.id != after.id {
				t.Errorf("key (%v,%d): winner moved %s → %s though %s is alive",
					k, class, before.id, after.id, before.id)
			}
			// And the displaced keys land on the dead node's runner-up.
			if before.id == "d" {
				if want := rank(nodes, key)[1]; after.id != want.id {
					t.Errorf("key (%v,%d): expected runner-up %s, got %s", k, class, want.id, after.id)
				}
			}
		}
	}
}

// TestSizeOfDefaults mirrors the serve layer's defaults.
func TestSizeOfDefaults(t *testing.T) {
	if got := sizeOf(serve.KernelGEMM, serve.Request{}); got != 64 {
		t.Errorf("gemm default size = %d, want 64", got)
	}
	if got := sizeOf(serve.KernelCholesky, serve.Request{N: 96}); got != 96 {
		t.Errorf("cholesky size = %d, want 96", got)
	}
	if got := sizeOf(serve.KernelCG, serve.Request{}); got != 256 {
		t.Errorf("cg default size = %d, want 256", got)
	}
	if got := sizeOf(serve.KernelCG, serve.Request{NX: 8, NY: 4}); got != 32 {
		t.Errorf("cg size = %d, want 32", got)
	}
}
