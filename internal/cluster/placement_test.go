package cluster

import (
	"testing"

	"coopabft/internal/serve"
)

func mkNodes(ids ...string) []*node {
	out := make([]*node, 0, len(ids))
	for _, id := range ids {
		out = append(out, &node{id: id, hash: fnv64a(id)})
	}
	return out
}

// TestSizeClass pins the power-of-two bucketing.
func TestSizeClass(t *testing.T) {
	for _, tc := range []struct{ n, class int }{
		{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{16, 4}, {17, 5}, {48, 6}, {64, 6}, {65, 7}, {192, 8}, {0, 0},
	} {
		if got := sizeClass(tc.n); got != tc.class {
			t.Errorf("sizeClass(%d) = %d, want %d", tc.n, got, tc.class)
		}
	}
}

// TestRankDeterministic: the same key always yields the same order.
func TestRankDeterministic(t *testing.T) {
	nodes := mkNodes("a", "b", "c", "d")
	key := placementKey(serve.KernelGEMM, 6)
	first := rank(nodes, key)
	for i := 0; i < 10; i++ {
		again := rank(nodes, key)
		for j := range first {
			if first[j].id != again[j].id {
				t.Fatalf("ranking unstable at %d: %s vs %s", j, first[j].id, again[j].id)
			}
		}
	}
}

// TestRankSpreads: across kernels and size classes, different nodes win —
// the hash actually distributes placement.
func TestRankSpreads(t *testing.T) {
	nodes := mkNodes("a", "b", "c", "d")
	winners := map[string]int{}
	for _, k := range serve.Kernels {
		for class := 0; class < 10; class++ {
			winners[rank(nodes, placementKey(k, class))[0].id]++
		}
	}
	if len(winners) < 3 {
		t.Errorf("30 keys landed on only %d of 4 nodes: %v", len(winners), winners)
	}
}

// TestRankRendezvousProperty: removing a node only remaps the keys it
// owned; every other key keeps its winner. This is the property that makes
// failover cheap — a dead node does not reshuffle the whole cluster.
func TestRankRendezvousProperty(t *testing.T) {
	nodes := mkNodes("a", "b", "c", "d")
	survivors := nodes[:3] // drop "d"
	for _, k := range serve.Kernels {
		for class := 0; class < 12; class++ {
			key := placementKey(k, class)
			before := rank(nodes, key)[0]
			after := rank(survivors, key)[0]
			if before.id != "d" && before.id != after.id {
				t.Errorf("key (%v,%d): winner moved %s → %s though %s is alive",
					k, class, before.id, after.id, before.id)
			}
			// And the displaced keys land on the dead node's runner-up.
			if before.id == "d" {
				if want := rank(nodes, key)[1]; after.id != want.id {
					t.Errorf("key (%v,%d): expected runner-up %s, got %s", k, class, want.id, after.id)
				}
			}
		}
	}
}

// TestPlacementSizeDefaults: gateway placement sizes come from the shared
// serve.ParseRequest entrypoint, so its defaults and node admission agree
// on the size class by construction.
func TestPlacementSizeDefaults(t *testing.T) {
	limits := serve.Limits{MaxN: 2048, MaxFaults: 8}
	for _, tc := range []struct {
		req  serve.Request
		want int
	}{
		{serve.Request{Kernel: "gemm"}, 64},
		{serve.Request{Kernel: "cholesky", N: 96}, 96},
		{serve.Request{Kernel: "cg"}, 256},
		{serve.Request{Kernel: "cg", NX: 8, NY: 4}, 32},
	} {
		p, err := serve.ParseRequest(limits, tc.req)
		if err != nil {
			t.Fatalf("%+v: %v", tc.req, err)
		}
		if got := p.Size(); got != tc.want {
			t.Errorf("%+v: size = %d, want %d", tc.req, got, tc.want)
		}
	}
}
