package cluster

import (
	"math/bits"
	"sort"

	"coopabft/internal/campaign"
	"coopabft/internal/serve"
)

// sizeClass buckets a problem size into power-of-two classes (n in
// (2^(k-1), 2^k] maps to class k), so placement is stable across nearby
// sizes: every request in a class lands on the same node and keeps its
// packing buffers and batch windows warm.
func sizeClass(n int) int {
	if n < 1 {
		n = 1
	}
	return bits.Len(uint(n - 1))
}

// placementKey hashes the placement coordinate (kernel, size-class).
// Strategy is deliberately not part of the key: it filters which nodes are
// eligible (the capability set), while the key decides the preference
// order among them.
func placementKey(k serve.Kernel, class int) uint64 {
	return campaign.Splitmix64((uint64(k)+1)*0x9E3779B97F4A7C15 ^ uint64(class))
}

// fnv64a hashes a node ID for the rendezvous score.
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// rank orders nodes for one placement key by rendezvous
// (highest-random-weight) score: each (key, node) pair hashes
// independently, so removing a node remaps only the keys it owned and the
// failover order for a key is itself stable. Ties break by ID so the
// ranking is deterministic.
func rank(nodes []*node, key uint64) []*node {
	ranked := append([]*node(nil), nodes...)
	score := func(nd *node) uint64 { return campaign.Splitmix64(key ^ nd.hash) }
	sort.Slice(ranked, func(i, j int) bool {
		si, sj := score(ranked[i]), score(ranked[j])
		if si != sj {
			return si > sj
		}
		return ranked[i].id < ranked[j].id
	})
	return ranked
}
