package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"coopabft/internal/serve"
)

// byzNode starts a serve node with the Byzantine lie fixture active: it
// answers integrity-tier requests with a well-formed, internally
// consistent, wrong answer on a seeded fraction of requests.
func byzNode(t *testing.T, fraction float64, lieSeed uint64) string {
	t.Helper()
	svc := serve.New(serve.Config{MaxConcurrency: 2, QueueDepth: 64, QueueTimeout: 30 * time.Second,
		LieFraction: fraction, LieSeed: lieSeed})
	ts := httptest.NewServer(serve.NewHandler(svc))
	t.Cleanup(func() { ts.Close(); svc.Close() })
	return ts.URL
}

// voteGateway is testGateway with the integrity-tier knobs pinned.
func voteGateway(t *testing.T, replicas, suspectTrip int, nodes ...NodeConfig) *Gateway {
	t.Helper()
	g, err := New(Config{
		Nodes:           nodes,
		Window:          8,
		Retries:         3,
		RetryBackoff:    time.Millisecond,
		ProbeInterval:   -1,
		BreakerFailures: 3,
		BreakerCooldown: 50 * time.Millisecond,
		Seed:            7,
		VoteReplicas:    replicas,
		SuspectTrip:     suspectTrip,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	return g
}

// TestVoteAdmission: unknown integrity modes are typed 400s, and a vote
// wider than the healthy capable pool is a typed 503 with Retry-After —
// the client asked for more independence than the cluster can sell.
func TestVoteAdmission(t *testing.T) {
	g := voteGateway(t, 3, 3,
		NodeConfig{ID: "n0", BaseURL: serveNode(t)},
		NodeConfig{ID: "n1", BaseURL: serveNode(t)},
	)
	ts := httptest.NewServer(NewHandler(g))
	defer ts.Close()

	post := func(body string) (*http.Response, errorBody) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/gemm", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		var e errorBody
		json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		return resp, e
	}

	resp, e := post(`{"n": 32, "seed": 1, "integrity": "paxos"}`)
	if resp.StatusCode != http.StatusBadRequest || e.Kind != "bad_request" {
		t.Errorf("unknown integrity: status %d kind %q", resp.StatusCode, e.Kind)
	}
	resp, e = post(`{"n": 32, "seed": 1, "replicas": 3}`)
	if resp.StatusCode != http.StatusBadRequest || e.Kind != "bad_request" {
		t.Errorf("replicas without integrity: status %d kind %q", resp.StatusCode, e.Kind)
	}

	// Two healthy nodes cannot seat a three-replica election.
	resp, e = post(`{"n": 32, "seed": 1, "integrity": "vote", "replicas": 3}`)
	if resp.StatusCode != http.StatusServiceUnavailable || e.Kind != "no_quorum" {
		t.Errorf("R beyond pool: status %d kind %q", resp.StatusCode, e.Kind)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("no-quorum 503 without Retry-After")
	}
	if _, err := g.Do(context.Background(),
		serve.Request{Kernel: "gemm", N: 32, Seed: 1, Integrity: "vote", Replicas: 3}); !errors.Is(err, ErrNoQuorum) {
		t.Errorf("Do: err = %v, want ErrNoQuorum", err)
	}
	if g.m.QuorumFail.Value() != 2 {
		t.Errorf("quorum_fail = %d, want 2", g.m.QuorumFail.Value())
	}

	// R=2 fits the pool and delivers on unanimity.
	resp, _ = post(`{"n": 32, "seed": 1, "integrity": "vote", "replicas": 2}`)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("R=2 vote: status %d", resp.StatusCode)
	}
}

// TestVoteOfOnePassthrough: R=1 is a passthrough election — the single
// ballot is its own quorum, and the classified answer matches what the
// same node returns with integrity=none, with the signature on top.
func TestVoteOfOnePassthrough(t *testing.T) {
	g := voteGateway(t, 3, 3, NodeConfig{ID: "n0", BaseURL: serveNode(t)})
	ctx := context.Background()

	plain, err := g.Do(ctx, serve.Request{Kernel: "gemm", N: 48, Seed: 5, Faults: 1})
	if err != nil {
		t.Fatal(err)
	}
	voted, err := g.Do(ctx, serve.Request{Kernel: "gemm", N: 48, Seed: 5, Faults: 1, Integrity: "vote", Replicas: 1})
	if err != nil {
		t.Fatal(err)
	}
	if voted.Outcome != plain.Outcome || voted.Corrections != plain.Corrections ||
		voted.Injected != plain.Injected || voted.Node != plain.Node {
		t.Errorf("vote-of-1 diverged from none:\n  none %+v\n  vote %+v", plain, voted)
	}
	if voted.VoteReplicas != 1 || voted.VoteAgree != 1 || voted.AnswerSig == "" {
		t.Errorf("vote-of-1 stamps = %+v", voted)
	}
	if voted.Answer != nil {
		t.Error("vote response shipped payload bytes to the client")
	}
	if g.m.VotesTotal.Value() != 1 || g.m.QuorumFail.Value() != 0 {
		t.Errorf("votes_total=%d quorum_fail=%d", g.m.VotesTotal.Value(), g.m.QuorumFail.Value())
	}
}

// TestByzantineSweep is the headline zero-wrong-answers contract: a
// three-node cluster with one always-lying node serves a 64-request seeded
// sweep under integrity=vote, and the liar never wins an election, every
// delivery reaches quorum, the liar's suspect tally grows, and its breaker
// trips on lost elections alone.
func TestByzantineSweep(t *testing.T) {
	g := voteGateway(t, 3, 3,
		NodeConfig{ID: "n0", BaseURL: serveNode(t)},
		NodeConfig{ID: "n1", BaseURL: serveNode(t)},
		NodeConfig{ID: "liar", BaseURL: byzNode(t, 1, 99)},
	)
	ctx := context.Background()
	sigs := map[uint64]string{}
	for i := 0; i < 64; i++ {
		seed := uint64(1000 + i)
		resp, err := g.Do(ctx, serve.Request{Kernel: "gemm", N: 32, Seed: seed, Integrity: "vote"})
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if resp.Outcome == "aborted" {
			t.Fatalf("request %d aborted: %s", i, resp.Error)
		}
		if resp.Node == "liar" {
			t.Fatalf("request %d: the lying node delivered the winning answer", i)
		}
		if resp.VoteAgree < 2 {
			t.Fatalf("request %d: delivered with agreement %d < quorum 2", i, resp.VoteAgree)
		}
		sigs[seed] = resp.AnswerSig
		// Replay determinism: the same seed elects the same signature.
		if i%16 == 0 {
			again, err := g.Do(ctx, serve.Request{Kernel: "gemm", N: 32, Seed: seed, Integrity: "vote"})
			if err != nil {
				t.Fatal(err)
			}
			if again.AnswerSig != sigs[seed] {
				t.Fatalf("seed %d re-elected %s, was %s", seed, again.AnswerSig, sigs[seed])
			}
		}
	}
	if got := g.m.QuorumFail.Value(); got != 0 {
		t.Errorf("quorum_fail = %d, want 0 — two honest nodes always outvote one liar", got)
	}
	// The liar is suspected whenever it was seated and lost; with its
	// breaker periodically open it sits out some elections, but over 64
	// requests the tally and at least one suspect trip must land.
	if got := g.m.Node("liar").Suspects.Value(); got < 3 {
		t.Errorf("liar suspects = %d, want >= 3", got)
	}
	if g.m.Node("liar").SuspectTrips.Value() < 1 || g.m.SuspectTrips.Value() < 1 {
		t.Error("lost elections never tripped the liar's breaker")
	}
	if g.m.Node("n0").Suspects.Value() != 0 || g.m.Node("n1").Suspects.Value() != 0 {
		t.Error("honest nodes were suspected")
	}
	snap := g.m.Snapshot()
	per, ok := snap["suspects_per_node"].(map[string]any)
	if !ok || per["liar"] == int64(0) {
		t.Errorf("snapshot suspects_per_node = %v", snap["suspects_per_node"])
	}
}

// TestVoteSplitNoQuorum: three nodes that each return a different answer
// (three independent lying lotteries) can never assemble a majority — the
// gateway delivers a typed aborted classification, never a guess.
func TestVoteSplitNoQuorum(t *testing.T) {
	g := voteGateway(t, 3, 3,
		NodeConfig{ID: "a", BaseURL: byzNode(t, 1, 1)},
		NodeConfig{ID: "b", BaseURL: byzNode(t, 1, 2)},
		NodeConfig{ID: "c", BaseURL: serveNode(t)},
	)
	resp, err := g.Do(context.Background(),
		serve.Request{Kernel: "gemm", N: 32, Seed: 7, Integrity: "vote"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Outcome != "aborted" || resp.VoteAgree != 1 {
		t.Fatalf("split election delivered %+v", resp)
	}
	if g.m.QuorumFail.Value() != 1 {
		t.Errorf("quorum_fail = %d, want 1", g.m.QuorumFail.Value())
	}
	// Nobody held a majority, so nobody can be indicted.
	for _, id := range []string{"a", "b", "c"} {
		if g.m.Node(id).Suspects.Value() != 0 {
			t.Errorf("node %s suspected without a reached majority", id)
		}
	}
}

// TestVerifyVoteHonest: the DCRFT-style mode delivers on one computation
// plus two cheap verification passes, strips the payload, and counts the
// cheap hits the cost model banks on.
func TestVerifyVoteHonest(t *testing.T) {
	g := voteGateway(t, 3, 3,
		NodeConfig{ID: "n0", BaseURL: serveNode(t)},
		NodeConfig{ID: "n1", BaseURL: serveNode(t)},
		NodeConfig{ID: "n2", BaseURL: serveNode(t)},
	)
	resp, err := g.Do(context.Background(),
		serve.Request{Kernel: "gemm", N: 48, Seed: 3, Integrity: "verify-vote"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Outcome == "aborted" {
		t.Fatalf("honest verify-vote aborted: %s", resp.Error)
	}
	if resp.VoteReplicas != 3 || resp.VoteAgree != 3 || resp.AnswerSig == "" {
		t.Errorf("verify-vote stamps = %+v", resp)
	}
	if resp.Answer != nil {
		t.Error("verify-vote response shipped the payload to the client")
	}
	if got := g.m.VerifyVoteCheapHits.Value(); got != 2 {
		t.Errorf("verify_vote_cheap_hits = %d, want 2", got)
	}
	if g.m.QuorumFail.Value() != 0 {
		t.Errorf("quorum_fail = %d, want 0", g.m.QuorumFail.Value())
	}
}

// TestVerifyVoteRefutesLyingPrimary: when every node lies, the primary's
// internally consistent wrong product is refuted by the replicated
// checksum pass — typed abort, primary suspected, nothing delivered.
func TestVerifyVoteRefutesLyingPrimary(t *testing.T) {
	g := voteGateway(t, 3, 3,
		NodeConfig{ID: "l0", BaseURL: byzNode(t, 1, 10)},
		NodeConfig{ID: "l1", BaseURL: byzNode(t, 1, 11)},
		NodeConfig{ID: "l2", BaseURL: byzNode(t, 1, 12)},
	)
	resp, err := g.Do(context.Background(),
		serve.Request{Kernel: "gemm", N: 48, Seed: 9, Integrity: "verify-vote"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Outcome != "aborted" || resp.VoteAgree != 1 {
		t.Fatalf("lying primary delivered: %+v", resp)
	}
	if resp.Answer != nil || len(resp.AnswerSig) != 0 {
		t.Errorf("aborted verify-vote leaked answer fields: %+v", resp)
	}
	if g.m.QuorumFail.Value() != 1 {
		t.Errorf("quorum_fail = %d, want 1", g.m.QuorumFail.Value())
	}
	if g.m.SuspectsTotal.Value() != 1 {
		t.Errorf("suspects_total = %d, want 1 (the refuted primary)", g.m.SuspectsTotal.Value())
	}
}

// TestVoteDistinctNodes: an election never seats the same node twice —
// with exactly R nodes, all R ballots come from different machines.
func TestVoteDistinctNodes(t *testing.T) {
	urls := map[string]string{}
	var nodes []NodeConfig
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("n%d", i)
		urls[id] = serveNode(t)
		nodes = append(nodes, NodeConfig{ID: id, BaseURL: urls[id]})
	}
	g := voteGateway(t, 3, 3, nodes...)
	resp, err := g.Do(context.Background(),
		serve.Request{Kernel: "gemm", N: 32, Seed: 2, Integrity: "vote"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.VoteAgree != 3 {
		t.Fatalf("unanimity expected on honest pool, got agree=%d", resp.VoteAgree)
	}
	for id := range urls {
		if g.m.Node(id).Delivered.Value() != 1 {
			t.Errorf("node %s delivered %d ballots, want exactly 1",
				id, g.m.Node(id).Delivered.Value())
		}
	}
}
