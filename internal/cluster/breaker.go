package cluster

import (
	"math"
	"sync"
	"time"
)

// breakerState is the classic three-state circuit: closed (traffic flows),
// open (node parked), half-open (one trial in flight).
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "breaker(?)"
	}
}

// breaker is a per-node circuit breaker. It trips on consecutive
// connection/503 failures or on an elevated aborted rate over a sliding
// window of delivered outcomes (a node whose ladder keeps giving up is
// sick even though its answers are typed), parks the node for a cooldown,
// then admits a single trial — a successful health probe or one live
// request — to close again. Delivered classifications are never failures:
// an aborted answer feeds the rate window but does not count as a
// connection fault.
type breaker struct {
	mu          sync.Mutex
	state       breakerState
	consecFails int
	openedAt    time.Time
	trips       int64

	// Sliding outcome window for the aborted-rate trip.
	ring  []bool // true = aborted
	ringN int    // filled entries
	ringI int    // next write slot

	// Cumulative minority-vote count for the integrity tier's suspect
	// trip. Deliberately NOT reset by honest deliveries: a Byzantine node
	// answers most requests plausibly (transport-healthy, oracle-typed),
	// so consecutive-style accounting would let interleaved honest work
	// launder its lies forever. It does DECAY — one suspect forgiven per
	// suspectDecay consecutive honest deliveries — so a rare honest minority
	// loss (replica set split across a marginal answer) cannot accumulate
	// into a trip over weeks of clean traffic. Decay is far slower than any
	// plausible lie rate: a liar gains at most 1/suspectDecay forgiveness
	// per delivery, so it still trips in O(suspectTrip·suspectDecay)
	// requests at the margin.
	suspects     int
	sinceSuspect int // honest deliveries since the last suspect/decay event

	failLimit    int
	cooldown     time.Duration
	abortTrip    float64
	suspectTrip  int
	suspectDecay int
}

func newBreaker(failLimit int, cooldown time.Duration, abortWindow int, abortTrip float64, suspectTrip, suspectDecay int) *breaker {
	return &breaker{
		failLimit:    failLimit,
		cooldown:     cooldown,
		ring:         make([]bool, abortWindow),
		abortTrip:    abortTrip,
		suspectTrip:  suspectTrip,
		suspectDecay: suspectDecay,
	}
}

// allow reports whether a live request may be forwarded now. An open
// breaker whose cooldown has elapsed grants exactly one half-open trial;
// further requests wait for the trial's verdict.
func (b *breaker) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if now.Sub(b.openedAt) >= b.cooldown {
			b.state = breakerHalfOpen
			return true
		}
		return false
	default: // half-open: the trial is already out
		return false
	}
}

// onDelivered records a classified answer. A delivery closes a HALF-OPEN
// breaker (it is the trial's verdict) and clears the consecutive-failure
// count; aborted outcomes feed the sliding rate window, which trips once it
// is full and the aborted fraction reaches abortTrip. Returns true when
// this delivery tripped the breaker.
//
// A delivery landing on an OPEN breaker is ignored: it is an in-flight
// request from before the trip, and letting it re-close the circuit would
// bypass the cooldown entirely — in particular, a suspect-tripped breaker
// (Byzantine quarantine) would be re-opened for traffic by the very node's
// own concurrent answers. Only the half-open trial or a health probe may
// close an open breaker.
func (b *breaker) onDelivered(now time.Time, aborted bool) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecFails = 0
	switch b.state {
	case breakerHalfOpen:
		b.state = breakerClosed
		b.resetRing()
	case breakerOpen:
		return false
	}
	if b.suspects > 0 && b.suspectDecay > 0 {
		b.sinceSuspect++
		if b.sinceSuspect >= b.suspectDecay {
			b.sinceSuspect = 0
			b.suspects--
		}
	}
	b.ring[b.ringI] = aborted
	b.ringI = (b.ringI + 1) % len(b.ring)
	if b.ringN < len(b.ring) {
		b.ringN++
	}
	if b.ringN == len(b.ring) {
		abortedN := 0
		for _, a := range b.ring {
			if a {
				abortedN++
			}
		}
		if abortedN >= int(math.Ceil(b.abortTrip*float64(len(b.ring)))) {
			b.trip(now)
			return true
		}
	}
	return false
}

// onFailure records a connection failure or 503. A failed half-open trial
// re-opens immediately; otherwise the consecutive-failure threshold
// applies. Returns true when this failure tripped the breaker.
func (b *breaker) onFailure(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecFails++
	if b.state == breakerHalfOpen || (b.state == breakerClosed && b.consecFails >= b.failLimit) {
		b.trip(now)
		return true
	}
	return false
}

// onSuspect records a vote election this node lost — it delivered a
// well-formed answer the replica majority proved wrong. The tally is
// cumulative across deliveries (see the field comment) and trips the
// breaker at suspectTrip, resetting only then. Returns true when this
// suspect tripped the breaker.
func (b *breaker) onSuspect(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.suspects++
	b.sinceSuspect = 0
	if b.suspects >= b.suspectTrip {
		b.suspects = 0
		b.trip(now)
		return true
	}
	return false
}

// onProbe feeds health-probe results: a successful probe of an open node
// past its cooldown closes the breaker (the probe is the trial, so a
// restarted node rejoins without sacrificing a live request); a failed
// probe of a half-open node re-opens it.
func (b *breaker) onProbe(now time.Time, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case ok && b.state == breakerHalfOpen:
		b.state = breakerClosed
		b.consecFails = 0
		b.resetRing()
	case ok && b.state == breakerOpen && now.Sub(b.openedAt) >= b.cooldown:
		b.state = breakerClosed
		b.consecFails = 0
		b.resetRing()
	case !ok && b.state == breakerHalfOpen:
		b.trip(now)
	}
}

// trip opens the breaker. Callers hold b.mu.
func (b *breaker) trip(now time.Time) {
	b.state = breakerOpen
	b.openedAt = now
	b.consecFails = 0
	b.trips++
	b.resetRing()
}

// resetRing clears the outcome window. Callers hold b.mu.
func (b *breaker) resetRing() {
	b.ringN, b.ringI = 0, 0
}

// snapshot returns the state and cumulative trip count.
func (b *breaker) snapshot() (breakerState, int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.trips
}
