package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"coopabft/internal/cluster/vote"
	"coopabft/internal/serve"
)

// This file is the gateway half of the replica-voting integrity tier: the
// scheduling, transport, and bookkeeping around the pure election logic
// in internal/cluster/vote. Two modes, after the FTMR lineage:
//
//   - vote (FRFT-style): R replicas of the whole request on distinct
//     nodes; deliver the ⌈(R+1)/2⌉ answer-signature majority. Catches a
//     node that lies anywhere — ladder, control flow, wire encoding —
//     because the only thing trusted is agreement between independent
//     machines.
//   - verify-vote (DCRFT-style): one primary computes the O(n³) product,
//     R−1 verifiers replicate only the O(n²) checksum-verification pass
//     against the primary's shipped bytes. Roughly the cost of one
//     computation instead of R, in exchange for weaker coverage: a
//     corruption that survives the probe algebra (crafted to keep both
//     probe projections, not a hardware-fault shape) would not be caught.
//
// Either way, delivery without a majority is structurally impossible:
// the no-quorum path returns a typed aborted classification (or a typed
// 503 at admission), never a guess.

// candidateIter hands out the ranked placement order one node at a time,
// each node at most once — the distinctness guarantee. Draining,
// unhealthy, and breaker-open nodes are skipped at take time (admission
// deliberately ignored breaker state; scheduling must not, or an open
// breaker would still receive traffic).
type candidateIter struct {
	mu     sync.Mutex
	ranked []*node
	next   int
}

func (it *candidateIter) take(now time.Time) *node {
	it.mu.Lock()
	defer it.mu.Unlock()
	for it.next < len(it.ranked) {
		nd := it.ranked[it.next]
		it.next++
		if nd.draining.Load() || !nd.healthy.Load() {
			continue
		}
		if !nd.br.allow(now) {
			nd.m.BreakerSkips.Add(1)
			continue
		}
		return nd
	}
	return nil
}

// replicaResult is one replica worker's terminal state.
type replicaResult struct {
	nd   *node
	resp serve.Response
	err  error // non-nil when no candidate delivered
	bad  error // non-nil on a node-validated 400 (global, deterministic)
}

// doIntegrity admits and dispatches one integrity-tier request. ranked is
// the capability-filtered rendezvous order the single-placement path
// computed; body is the marshalled request every replica receives
// verbatim (same seed → same answer on honest nodes).
func (g *Gateway) doIntegrity(ctx context.Context, p serve.Parsed, wire string, body []byte, ranked []*node) (serve.Response, error) {
	r := p.Replicas
	if r == 0 {
		r = g.cfg.VoteReplicas
	}
	// Admission counts distinct schedulable nodes ignoring breaker state:
	// breakers are transient (a cooldown away from a trial), so an open
	// one narrows this election's electorate without shrinking the pool
	// the client was promised. Quorum stays over R, so fewer live ballots
	// only ever makes delivery harder, never easier.
	eligible := 0
	for _, nd := range ranked {
		if !nd.draining.Load() && nd.healthy.Load() {
			eligible++
		}
	}
	if eligible < r {
		g.m.QuorumFail.Add(1)
		return serve.Response{}, fmt.Errorf("%w: integrity %s needs %d distinct healthy capable nodes, have %d",
			ErrNoQuorum, p.Integrity, r, eligible)
	}
	if p.Integrity == serve.IntegrityVerifyVote {
		return g.doVerifyVote(ctx, p, body, ranked, r)
	}
	return g.doVote(ctx, p, wire, body, ranked, r)
}

// voteReplica drives one replica to a terminal state: walk the shared
// candidate order, blocking-acquire the node's window (a vote needs this
// specific node; spilling would shrink the electorate), forward, and fail
// over to the next candidate on sheds and transport faults.
func (g *Gateway) voteReplica(ctx context.Context, it *candidateIter, wire string, body []byte) replicaResult {
	var lastErr error
	for {
		nd := it.take(time.Now())
		if nd == nil {
			if lastErr == nil {
				lastErr = errors.New("no distinct candidate left")
			}
			return replicaResult{err: lastErr}
		}
		if err := nd.acquire(ctx); err != nil {
			return replicaResult{err: err}
		}
		resp, class, err := g.forward(ctx, nd, wire, body)
		nd.release()
		switch class {
		case fcDelivered:
			if tripped := nd.br.onDelivered(time.Now(), resp.Outcome == "aborted"); tripped {
				nd.m.BreakerTrips.Add(1)
			}
			nd.m.Delivered.Add(1)
			return replicaResult{nd: nd, resp: resp}
		case fcBadRequest:
			return replicaResult{bad: err}
		case fcShed:
			nd.m.Rejected429.Add(1)
			lastErr = err
		case fcFailed:
			if tripped := nd.br.onFailure(time.Now()); tripped {
				nd.m.BreakerTrips.Add(1)
			}
			lastErr = err
			if ctx.Err() != nil {
				return replicaResult{err: lastErr}
			}
		}
	}
}

// suspect charges one minority node: its well-formed answer lost an
// election with a reached majority, which is exactly the Byzantine signal
// transport-level breakers cannot see.
func (g *Gateway) suspect(nd *node, now time.Time) {
	nd.m.Suspects.Add(1)
	g.m.SuspectsTotal.Add(1)
	if nd.br.onSuspect(now) {
		nd.m.SuspectTrips.Add(1)
		nd.m.BreakerTrips.Add(1)
		g.m.SuspectTrips.Add(1)
	}
}

// abortedResponse builds the typed no-quorum classification — the
// integrity tier's analogue of the ladder's Aborted: a delivered,
// honest "we could not establish this answer".
func abortedResponse(p serve.Parsed, r, agree int, why string) serve.Response {
	return serve.Response{
		Kernel:       p.Kernel.String(),
		N:            p.Size(),
		Strategy:     p.Strategy.String(),
		VerifyMode:   p.Mode.String(),
		Outcome:      "aborted",
		Error:        why,
		Integrity:    p.Integrity.String(),
		VoteReplicas: r,
		VoteAgree:    agree,
	}
}

// doVote runs the FRFT-style election: R concurrent replica workers over
// the shared candidate order, then one count.
func (g *Gateway) doVote(ctx context.Context, p serve.Parsed, wire string, body []byte, ranked []*node, r int) (serve.Response, error) {
	it := &candidateIter{ranked: ranked}
	results := make([]replicaResult, r)
	var wg sync.WaitGroup
	for i := 0; i < r; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = g.voteReplica(ctx, it, wire, body)
		}(i)
	}
	wg.Wait()

	ballots := make([]vote.Ballot, 0, r)
	slots := make([]int, 0, r) // ballot index -> results index
	var lastErr error
	for i, res := range results {
		switch {
		case res.bad != nil:
			// Admission is deterministic across honest nodes: one node's
			// 400 is every node's 400.
			g.m.BadRequests.Add(1)
			return serve.Response{}, res.bad
		case res.err != nil:
			lastErr = res.err
		default:
			ballots = append(ballots, vote.Ballot{Node: res.nd.id, Outcome: res.resp.Outcome, Sig: res.resp.AnswerSig})
			slots = append(slots, i)
		}
	}
	if len(ballots) == 0 {
		g.m.Unavailable.Add(1)
		return serve.Response{}, fmt.Errorf("%w: no vote replica delivered: %v", ErrUnavailable, lastErr)
	}

	d := vote.Decide(r, ballots)
	g.m.VotesTotal.Add(1)
	g.m.Delivered.Add(1)
	if !d.Reached {
		g.m.QuorumFail.Add(1)
		g.m.Aborted.Add(1)
		return abortedResponse(p, r, d.Best,
			fmt.Sprintf("%v: best agreement %d of %d replicas (quorum %d)",
				vote.ErrNoQuorum, d.Best, r, vote.Quorum(r))), nil
	}

	now := time.Now()
	for _, si := range d.Suspects {
		g.suspect(results[slots[si]].nd, now)
	}
	win := results[slots[d.Winner]]
	resp := win.resp
	resp.Node = win.nd.id
	resp.Answer = nil // never ship payload bytes to voting clients
	resp.VoteReplicas = r
	resp.VoteAgree = len(d.Agree)
	switch resp.Outcome {
	case "corrected":
		g.m.Corrected.Add(1)
	case "restarted":
		g.m.Restarted.Add(1)
	case "aborted":
		g.m.Aborted.Add(1)
	}
	return resp, nil
}

// doVerifyVote runs the DCRFT-style election: one primary computes, R−1
// distinct verifiers replicate the cheap verification pass against its
// shipped product. The primary's own ballot counts (it signed its
// answer), so acceptance needs Quorum(R)−1 passing verifiers.
func (g *Gateway) doVerifyVote(ctx context.Context, p serve.Parsed, body []byte, ranked []*node, r int) (serve.Response, error) {
	it := &candidateIter{ranked: ranked}
	pri := g.voteReplica(ctx, it, "gemm", body)
	switch {
	case pri.bad != nil:
		g.m.BadRequests.Add(1)
		return serve.Response{}, pri.bad
	case pri.err != nil:
		g.m.Unavailable.Add(1)
		return serve.Response{}, fmt.Errorf("%w: verify-vote primary: %v", ErrUnavailable, pri.err)
	}

	resp := pri.resp
	resp.Node = pri.nd.id
	resp.VoteReplicas = r
	if resp.Outcome == "aborted" {
		// An honest abort carries no answer to verify; it is already the
		// typed "no answer" classification, delivered as such.
		g.m.VotesTotal.Add(1)
		g.m.Delivered.Add(1)
		g.m.Aborted.Add(1)
		resp.VoteAgree = 1
		return resp, nil
	}
	if resp.AnswerSig == "" || len(resp.Answer) == 0 {
		// A non-aborted primary that did not play the protocol cannot be
		// verified, hence cannot be delivered.
		g.m.VotesTotal.Add(1)
		g.m.QuorumFail.Add(1)
		g.m.Delivered.Add(1)
		g.m.Aborted.Add(1)
		return abortedResponse(p, r, 1,
			fmt.Sprintf("%v: primary %s returned no verifiable answer", vote.ErrNoQuorum, pri.nd.id)), nil
	}

	task := serve.VerifyTask{
		Kernel: "gemm",
		N:      p.N,
		Seed:   p.Seed,
		Sig:    resp.AnswerSig,
		Answer: resp.Answer,
	}
	tbody, err := json.Marshal(task)
	if err != nil {
		g.m.Unavailable.Add(1)
		return serve.Response{}, fmt.Errorf("%w: %v", ErrUnavailable, err)
	}

	verdicts := make([]*verdictResult, r-1)
	var wg sync.WaitGroup
	for i := 0; i < r-1; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			verdicts[i] = g.verifyReplica(ctx, it, tbody)
		}(i)
	}
	wg.Wait()

	approvals := 1 // the primary backs its own signature
	cheapHits := 0
	var refuters []*node
	for _, v := range verdicts {
		if v == nil {
			continue // no verifier reachable for this slot; quorum bar unchanged
		}
		if v.ok {
			approvals++
			cheapHits++
		} else {
			refuters = append(refuters, v.nd)
		}
	}

	g.m.VotesTotal.Add(1)
	g.m.Delivered.Add(1)
	now := time.Now()
	if approvals < vote.Quorum(r) {
		// The verifier majority refuted the primary's product: the primary
		// is the proven liar, and there is no answer to deliver.
		g.suspect(pri.nd, now)
		g.m.QuorumFail.Add(1)
		g.m.Aborted.Add(1)
		return abortedResponse(p, r, approvals,
			fmt.Sprintf("%v: replicated verification refuted primary %s (%d of %d approvals, quorum %d)",
				vote.ErrNoQuorum, pri.nd.id, approvals, r, vote.Quorum(r))), nil
	}
	// Accepted: a refuting minority voted against a reached majority.
	for _, nd := range refuters {
		g.suspect(nd, now)
	}
	g.m.VerifyVoteCheapHits.Add(int64(cheapHits))
	resp.Answer = nil
	resp.VoteAgree = approvals
	switch resp.Outcome {
	case "corrected":
		g.m.Corrected.Add(1)
	case "restarted":
		g.m.Restarted.Add(1)
	}
	return resp, nil
}

// verifyReplica drives one verifier slot to a verdict (or nil when no
// distinct candidate could be reached): same candidate discipline as
// voteReplica, POSTing /v1/verify instead of a kernel route.
func (g *Gateway) verifyReplica(ctx context.Context, it *candidateIter, tbody []byte) *verdictResult {
	for {
		nd := it.take(time.Now())
		if nd == nil {
			return nil
		}
		if err := nd.acquire(ctx); err != nil {
			return nil
		}
		res, class := g.forwardVerify(ctx, nd, tbody)
		nd.release()
		switch class {
		case fcDelivered:
			if tripped := nd.br.onDelivered(time.Now(), false); tripped {
				nd.m.BreakerTrips.Add(1)
			}
			nd.m.Delivered.Add(1)
			return &verdictResult{nd: nd, ok: res.OK}
		case fcBadRequest:
			// A verifier calling the task malformed while the primary
			// produced it is itself a disagreement; treat as a refusal.
			return &verdictResult{nd: nd, ok: false}
		case fcFailed:
			if tripped := nd.br.onFailure(time.Now()); tripped {
				nd.m.BreakerTrips.Add(1)
			}
			if ctx.Err() != nil {
				return nil
			}
		case fcShed:
			nd.m.Rejected429.Add(1)
		}
	}
}

type verdictResult struct {
	nd *node
	ok bool
}

// forwardVerify sends one verification task to one node and classifies
// the transport result, mirroring forward's taxonomy.
func (g *Gateway) forwardVerify(ctx context.Context, nd *node, body []byte) (serve.VerifyResult, forwardClass) {
	nd.m.Forwarded.Add(1)
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		nd.base+"/v1/verify", bytes.NewReader(body))
	if err != nil {
		return serve.VerifyResult{}, fcFailed
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := g.cfg.Client.Do(hreq)
	if err != nil {
		nd.m.TransportErrors.Add(1)
		return serve.VerifyResult{}, fcFailed
	}
	defer hresp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(hresp.Body, 1<<20))
	if err != nil {
		nd.m.TransportErrors.Add(1)
		return serve.VerifyResult{}, fcFailed
	}
	switch hresp.StatusCode {
	case http.StatusOK:
		var res serve.VerifyResult
		if err := json.Unmarshal(payload, &res); err != nil {
			nd.m.TransportErrors.Add(1)
			return serve.VerifyResult{}, fcFailed
		}
		return res, fcDelivered
	case http.StatusBadRequest:
		return serve.VerifyResult{}, fcBadRequest
	case http.StatusTooManyRequests:
		return serve.VerifyResult{}, fcShed
	default:
		nd.m.Failed503.Add(1)
		return serve.VerifyResult{}, fcFailed
	}
}
