package cluster

import (
	"expvar"
	"sort"
	"sync"
)

// Metrics is the gateway's observability surface: cluster-wide counters
// plus a per-node breakdown, all plain expvar values safe for concurrent
// use and exported under the "cluster" key once Publish is called.
type Metrics struct {
	// Request path.
	Requests  expvar.Int // requests entering the gateway
	Delivered expvar.Int // classified answers returned to clients
	Retries   expvar.Int // failover forwards after a failed attempt

	// Terminal client-visible failures.
	BadRequests expvar.Int // 400s (gateway parse or node validation)
	Overloaded  expvar.Int // every eligible replica shed or window-full
	Throttled   expvar.Int // tenant-over-quota rejections at the gateway door
	Unavailable expvar.Int // retries exhausted on connection failures/503s
	NoNodes     expvar.Int // no node advertises the requested strategy

	// Cluster-wide outcome taxonomy (sums over delivered answers).
	Corrected expvar.Int
	Restarted expvar.Int
	Aborted   expvar.Int

	// Async jobs (the /v1/jobs surface).
	JobsSubmitted   expvar.Int // jobs admitted
	JobsCompleted   expvar.Int // jobs that reached "done"
	JobsFailed      expvar.Int // jobs that reached "failed"
	JobsCancelled   expvar.Int // jobs that reached "cancelled"
	JobsPassthrough expvar.Int // jobs forwarded whole (below shard threshold)

	// Sharded execution.
	BlockTasksDispatched expvar.Int // block tasks delivered by workers
	ChecksumTasks        expvar.Int // of those, dedicated checksum-block tasks
	// Reconstructions counts blocks recovered algebraically from checksum
	// blocks after a node loss; BlockRecomputes counts the last-resort
	// re-executions when reconstruction was impossible. The kill-mid-job
	// chaos gate requires Reconstructions >= 1 with BlockRecomputes == 0.
	Reconstructions expvar.Int
	BlockRecomputes expvar.Int

	// Long jobs (step-granular CG solves) and the error bus.
	JobsLong expvar.Int // jobs dispatched on the long path
	// Migrations counts long-job reschedules onto a new node after a
	// worker died mid-solve; the SIGKILL-mid-CG chaos gate requires
	// Migrations >= 1 with zero wrong answers.
	Migrations        expvar.Int
	CheckpointsStored expvar.Int   // checkpoint PUTs accepted and retained
	CheckpointsStale  expvar.Int   // checkpoint PUTs discarded (old epoch or step)
	EventsRelayed     expvar.Int   // node events re-published on the gateway bus
	NodeDeaths        expvar.Int   // established event streams that dropped
	RecoveryMSSum     expvar.Float // fault→resumed latency summed over migrations

	// Integrity tier (replica voting).
	VotesTotal expvar.Int // vote/verify-vote elections decided (delivered or typed-aborted)
	// QuorumFail counts elections that could not deliver: ballots split or
	// lost below the majority bar, or a primary refuted by its verifiers.
	// The lying-node CI gate requires this to stay 0 while a Byzantine
	// minority is outvoted.
	QuorumFail          expvar.Int
	VerifyVoteCheapHits expvar.Int // O(n²) verification passes that stood in for full replicas
	SuspectsTotal       expvar.Int // minority ballots charged to nodes across all elections
	SuspectTrips        expvar.Int // breaker trips caused by accumulated suspects

	// bus, when set by New, surfaces gateway error-bus counters.
	bus interface {
		Published() uint64
		Dropped() int64
	}

	mu    sync.Mutex
	nodes map[string]*NodeMetrics
}

// NodeMetrics is one backend's breakdown.
type NodeMetrics struct {
	Forwarded       expvar.Int // attempts sent to this node
	Delivered       expvar.Int // classified answers it returned
	TransportErrors expvar.Int // connection-level failures
	Rejected429     expvar.Int // node-side sheds (alive but full)
	Failed503       expvar.Int // node-side queue timeouts / closing
	WindowSkips     expvar.Int // placements skipped: outstanding window full
	BreakerSkips    expvar.Int // placements skipped: breaker open
	BreakerTrips    expvar.Int // times this node's breaker opened
	Inflight        expvar.Int // gauge: outstanding requests on this node
	Healthy         expvar.Int // gauge (0/1): last probe verdict
	QueueDepth      expvar.Int // gauge: node-reported queue depth (probe)
	Suspects        expvar.Int // vote elections this node lost
	SuspectTrips    expvar.Int // breaker trips from accumulated suspects
}

// Node returns (lazily creating) the per-node metrics for id.
func (m *Metrics) Node(id string) *NodeMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.nodes == nil {
		m.nodes = make(map[string]*NodeMetrics)
	}
	nm, ok := m.nodes[id]
	if !ok {
		nm = &NodeMetrics{}
		nm.Healthy.Set(1)
		m.nodes[id] = nm
	}
	return nm
}

var publishOnce sync.Once

// Publish registers the metrics under the "cluster" expvar key. Safe to
// call more than once; only the first caller's instance is exported.
func (m *Metrics) Publish() {
	publishOnce.Do(func() {
		expvar.Publish("cluster", expvar.Func(func() any { return m.Snapshot() }))
	})
}

// Snapshot renders the counters as a nested map (the /debug/vars payload).
func (m *Metrics) Snapshot() map[string]any {
	snap := map[string]any{
		"requests":     m.Requests.Value(),
		"delivered":    m.Delivered.Value(),
		"retries":      m.Retries.Value(),
		"bad_requests": m.BadRequests.Value(),
		"overloaded":   m.Overloaded.Value(),
		"throttled":    m.Throttled.Value(),
		"unavailable":  m.Unavailable.Value(),
		"no_nodes":     m.NoNodes.Value(),
		"corrected":    m.Corrected.Value(),
		"restarted":    m.Restarted.Value(),
		"aborted":      m.Aborted.Value(),

		"jobs_submitted":         m.JobsSubmitted.Value(),
		"jobs_completed":         m.JobsCompleted.Value(),
		"jobs_failed":            m.JobsFailed.Value(),
		"jobs_cancelled":         m.JobsCancelled.Value(),
		"jobs_passthrough":       m.JobsPassthrough.Value(),
		"block_tasks_dispatched": m.BlockTasksDispatched.Value(),
		"checksum_tasks":         m.ChecksumTasks.Value(),
		"reconstructions":        m.Reconstructions.Value(),
		"block_recomputes":       m.BlockRecomputes.Value(),

		"votes_total":            m.VotesTotal.Value(),
		"quorum_fail":            m.QuorumFail.Value(),
		"verify_vote_cheap_hits": m.VerifyVoteCheapHits.Value(),
		"suspects_total":         m.SuspectsTotal.Value(),
		"suspect_trips":          m.SuspectTrips.Value(),

		"jobs_long":          m.JobsLong.Value(),
		"migrations":         m.Migrations.Value(),
		"checkpoints_stored": m.CheckpointsStored.Value(),
		"checkpoints_stale":  m.CheckpointsStale.Value(),
		"events_relayed":     m.EventsRelayed.Value(),
		"node_deaths":        m.NodeDeaths.Value(),
		"recovery_ms_sum":    m.RecoveryMSSum.Value(),
	}
	if m.bus != nil {
		snap["events_published"] = m.bus.Published()
		snap["events_dropped"] = m.bus.Dropped()
	}
	m.mu.Lock()
	ids := make([]string, 0, len(m.nodes))
	for id := range m.nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	nodes := make(map[string]any, len(ids))
	suspectsPerNode := make(map[string]any, len(ids))
	for _, id := range ids {
		nm := m.nodes[id]
		nodes[id] = map[string]any{
			"forwarded":        nm.Forwarded.Value(),
			"delivered":        nm.Delivered.Value(),
			"transport_errors": nm.TransportErrors.Value(),
			"rejected_429":     nm.Rejected429.Value(),
			"failed_503":       nm.Failed503.Value(),
			"window_skips":     nm.WindowSkips.Value(),
			"breaker_skips":    nm.BreakerSkips.Value(),
			"breaker_trips":    nm.BreakerTrips.Value(),
			"inflight":         nm.Inflight.Value(),
			"healthy":          nm.Healthy.Value(),
			"queue_depth":      nm.QueueDepth.Value(),
			"suspects":         nm.Suspects.Value(),
			"suspect_trips":    nm.SuspectTrips.Value(),
		}
		suspectsPerNode[id] = nm.Suspects.Value()
	}
	m.mu.Unlock()
	snap["nodes"] = nodes
	snap["suspects_per_node"] = suspectsPerNode
	return snap
}
