// Package recovery drives the paper's §4 error-handling ladder end to end:
// bifit injects DRAM faults, the memory controller's ECC corrects what it
// can (Case 1), detected-but-uncorrectable errors flow through the OS to the
// kernels' notified ABFT repair (Case 2), corruption beyond ABFT capability
// falls back to checkpoint/restart (Case 3), and faults in non-ABFT data
// trigger OS panic mode and a restart (Case 4). The Coordinator owns the
// escalation policy: bounded restart budgets, graceful degradation from
// notified to full verification when hardware notifications are lost or
// inconsistent, and a terminal typed Outcome instead of a Go panic.
package recovery

import (
	"context"
	"errors"
	"fmt"

	"coopabft/internal/bifit"
	"coopabft/internal/checkpoint"
	"coopabft/internal/core"
)

// Outcome is the terminal classification of one coordinated run. Every run
// ends in exactly one of the three: there is no "wrong answer" outcome
// because success is gated on the workload's oracle check.
type Outcome int

const (
	// Corrected: the run finished with a verified-correct result without
	// rolling back — Cases 1 and 2 (and latent errors swept up by degraded
	// full verification) handled everything in place.
	Corrected Outcome = iota
	// Restarted: at least one checkpoint rollback (Case 3 or 4) was needed,
	// but the replay finished with a verified-correct result.
	Restarted
	// Aborted: the ladder ran out of rungs — the restart budget was
	// exhausted (or no checkpoint existed) while the result still failed
	// verification. The run terminates explicitly rather than looping.
	Aborted
)

// String returns the outcome label used in soak tables.
func (o Outcome) String() string {
	switch o {
	case Corrected:
		return "corrected"
	case Restarted:
		return "restarted"
	case Aborted:
		return "aborted"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Injection schedules one fault: at hook tick Tick, corrupt element Elem of
// the workload's inject target Target with a pattern of the given Kind.
// Ticks count hook invocations monotonically across restarts, so a replayed
// step does not re-fire an already-delivered injection — each scheduled
// fault lands exactly once, mid-run.
type Injection struct {
	Tick   int
	Kind   bifit.Kind
	Target int // index into Workload.InjectTargets()
	Elem   int
}

// Report summarizes one coordinated run for the outcome tables.
type Report struct {
	Outcome      Outcome
	Injected     int // injections delivered
	HWCorrected  uint64
	Notified     uint64 // corruptions the OS exposed to ABFT (Case 2 traffic)
	Corrections  int    // elements ABFT repaired
	Degradations int    // notified→full verification fallbacks
	OSPanics     uint64 // Case 4 entries
	Restarts     int
	// RestartsTotal is the cumulative rollback count including the budget
	// carried in by Resume — the number the MaxRestarts cap is enforced
	// against, across migrations.
	RestartsTotal int
	Case3         int // restarts triggered by ABFT/verification failure
	Case4         int // restarts triggered by OS panic mode
	StepsLost     int
	// ResumedFrom is the step a Resume snapshot installed (0 fresh start).
	ResumedFrom int
	Checkpoints int
	Err         error // why the run Aborted (nil otherwise)
}

// Ladder event kinds delivered to OnEvent — the in-process feed the serving
// layer republishes on its error bus.
const (
	// EventFault: a run leg failed (ABFT escalation or OS panic) before
	// any rollback decision.
	EventFault = "fault"
	// EventEscalation: the ladder rolled back to a checkpoint and will
	// replay from the reported step.
	EventEscalation = "escalation"
	// EventCheckpoint: a checkpoint was committed at the reported step.
	EventCheckpoint = "checkpoint"
)

// errStillWrong marks an oracle failure that survived degraded verification.
var errStillWrong = errors.New("recovery: result fails verification after full sweep")

// ErrCancelled marks a run cut short by its context (deadline or
// cancellation). The run ends Aborted with this error wrapped around the
// context's cause, never with a partial result reported as success.
var ErrCancelled = errors.New("recovery: run cancelled by context")

// ctxAbort is the panic payload used to unwind out of a kernel's step loop
// when the coordinator's context expires; it never escapes runStep.
type ctxAbort struct{ cause error }

// errOSPanic marks a Case-4 panic observed after the kernel returned.
var errOSPanic = errors.New("recovery: OS entered panic mode (uncorrectable error outside ABFT data)")

// Coordinator wires one workload to the full ladder on one runtime.
type Coordinator struct {
	RT *core.Runtime
	W  Workload
	// Plan is the injection schedule (tick-sorted order not required).
	Plan []Injection
	// CheckpointEvery takes a checkpoint every that many hook ticks
	// (default 2; the tick-0 checkpoint of the pristine state is implied).
	CheckpointEvery int
	// MaxRestarts bounds Case-3/4 rollbacks before Aborted (default 3).
	MaxRestarts int
	// Ctx, when non-nil, bounds the run: once it is cancelled or past its
	// deadline the ladder aborts at the next step boundary instead of
	// computing (or escalating) further. Deadline-bound serving uses this
	// to propagate request deadlines into kernel execution.
	Ctx context.Context
	// Resume, when non-nil, seeds the run from a decoded checkpoint
	// snapshot (possibly taken on another node) instead of a fresh start:
	// the workload's registered state is installed, execution begins at the
	// snapshot's step, and the snapshot's consumed restart budget counts
	// against MaxRestarts.
	Resume *checkpoint.Snapshot
	// OnCheckpoint, when set, observes every committed checkpoint as a
	// wire-ready snapshot — the hook long-job serving uses to stream
	// checkpoints off-node. It runs on the kernel's step boundary; slow
	// observers should hand off asynchronously.
	OnCheckpoint func(checkpoint.Snapshot)
	// OnEvent, when set, observes ladder transitions (EventFault,
	// EventEscalation, EventCheckpoint) as they happen.
	OnEvent func(kind string, step int, detail string)

	ck          *checkpoint.Checkpointer
	tick        int
	lastStep    int
	seenDropped uint64
	rep         Report
}

// Run executes the workload under the escalation ladder and always returns
// a classified report — never a Go panic, never a wrong answer reported as
// success.
func (c *Coordinator) Run() Report {
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 2
	}
	if c.MaxRestarts <= 0 {
		c.MaxRestarts = 3
	}
	env := c.RT.Env()
	c.ck = checkpoint.New(env.Mem, env.Alloc)
	c.ck.MaxRestarts = c.MaxRestarts
	for _, s := range c.W.CheckpointSet() {
		c.ck.Register(s.Name, s.Data, s.Reg)
	}
	c.W.SetHook(c.onStep)

	step := 0
	if c.Resume != nil {
		if err := c.ck.Install(*c.Resume); err != nil {
			c.rep.Outcome = Aborted
			c.rep.Err = err
			c.finalize()
			return c.rep
		}
		step = c.Resume.Step
		c.rep.ResumedFrom = step
		c.lastStep = step
	}
	for {
		runErr := c.runStep(step)
		if errors.Is(runErr, ErrCancelled) {
			c.rep.Outcome = Aborted
			c.rep.Err = runErr
			c.finalize()
			return c.rep
		}
		if c.RT.M.OS.Panicked() {
			runErr = errOSPanic
		}
		if runErr == nil {
			runErr = c.finishVerify()
		}
		if runErr == nil {
			if c.rep.Restarts > 0 {
				c.rep.Outcome = Restarted
			} else {
				c.rep.Outcome = Corrected
			}
			c.finalize()
			return c.rep
		}
		// Case 3 (ABFT/verification failure) or Case 4 (OS panic): roll
		// back to the last checkpoint and replay.
		c.emit(EventFault, c.lastStep, runErr.Error())
		if errors.Is(runErr, errOSPanic) {
			c.rep.Case4++
		} else {
			c.rep.Case3++
		}
		resume, err := c.ck.Restore(c.lastStep)
		if err != nil {
			c.rep.Outcome = Aborted
			c.rep.Err = fmt.Errorf("%w (after: %w)", err, runErr)
			c.finalize()
			return c.rep
		}
		c.rep.Restarts++
		c.emit(EventEscalation, resume, fmt.Sprintf("rollback %d: replay from step %d", c.rep.Restarts, resume))
		c.cleanSlate()
		step = resume
	}
}

// runStep executes one RunFrom leg under the context guard: when the
// coordinator's context expires, onStep unwinds the kernel's step loop with
// a ctxAbort panic that is converted here into ErrCancelled. Any other
// panic is not ours and keeps propagating.
func (c *Coordinator) runStep(step int) (err error) {
	defer func() {
		p := recover()
		if p == nil {
			return
		}
		ca, ok := p.(ctxAbort)
		if !ok {
			panic(p)
		}
		err = fmt.Errorf("%w: %w", ErrCancelled, ca.cause)
	}()
	return c.W.RunFrom(step)
}

// onStep is the per-step hook: checkpoint first (so snapshots are clean of
// this tick's faults), then deliver any injections scheduled for this tick.
func (c *Coordinator) onStep(step int) {
	if c.Ctx != nil {
		if err := c.Ctx.Err(); err != nil {
			panic(ctxAbort{cause: err})
		}
	}
	c.lastStep = step
	if c.tick%c.CheckpointEvery == 0 {
		c.ck.Checkpoint(step)
		c.emit(EventCheckpoint, step, "")
		if c.OnCheckpoint != nil {
			if snap, err := c.ck.Snapshot(); err == nil {
				c.OnCheckpoint(snap)
			}
		}
	}
	targets := c.W.InjectTargets()
	injected := false
	for _, inj := range c.Plan {
		if inj.Tick != c.tick {
			continue
		}
		if inj.Target < 0 || inj.Target >= len(targets) {
			continue
		}
		t := targets[inj.Target]
		if err := c.RT.Injector.InjectKind(t.T, inj.Elem, inj.Kind); err == nil {
			c.rep.Injected++
			injected = true
		}
	}
	if injected {
		// Evict the victim lines so the fault is observed at the next
		// demand read, like a DRAM error would be.
		c.RT.M.FlushCaches()
	}
	c.tick++
}

// finishVerify closes out a kernel run that returned cleanly: drain the
// remaining hardware notifications, degrade to a full verification sweep if
// notifications were lost or the result still fails its oracle, and gate
// success on the oracle check.
func (c *Coordinator) finishVerify() error {
	if err := c.W.DrainNotified(); err != nil {
		return err
	}
	if c.RT.M.OS.Panicked() {
		return errOSPanic
	}
	// Lost notifications (error-register overflow) mean the notified path
	// may have missed corruptions: fall back to the full sweep (§3.2.2's
	// graceful-degradation contract).
	if d := c.RT.M.Ctl.DroppedRecords(); d > c.seenDropped {
		c.seenDropped = d
		c.rep.Degradations++
		if err := c.W.FullVerify(); err != nil {
			return err
		}
		if c.RT.M.OS.Panicked() {
			return errOSPanic
		}
	}
	if err := c.W.Check(); err != nil {
		// Inconsistent result under notified verification: degrade to the
		// full sweep once, then re-check.
		c.rep.Degradations++
		if verr := c.W.FullVerify(); verr != nil {
			return verr
		}
		if c.RT.M.OS.Panicked() {
			return errOSPanic
		}
		if err := c.W.Check(); err != nil {
			return fmt.Errorf("%w: %w", errStillWrong, err)
		}
	}
	return nil
}

// cleanSlate models what a real restart does beyond restoring data: the
// job's pages are freed and re-mapped, so residual DRAM fault patterns
// under its address range are gone; stale corruption reports and panic mode
// are cleared with the old incarnation.
func (c *Coordinator) cleanSlate() {
	clear := func(base, size uint64) {
		for a := base &^ 63; a < base+size; a += 64 {
			_ = c.RT.M.OS.ClearFaultAt(a)
		}
	}
	for _, s := range c.W.CheckpointSet() {
		clear(s.Reg.Base, s.Reg.Size)
	}
	for _, t := range c.W.InjectTargets() {
		clear(t.T.Reg.Base, t.T.Reg.Size)
	}
	c.RT.M.OS.PendingCorruptions()
	c.RT.M.OS.ClearPanic()
}

// emit delivers a ladder event to the optional observer.
func (c *Coordinator) emit(kind string, step int, detail string) {
	if c.OnEvent != nil {
		c.OnEvent(kind, step, detail)
	}
}

// finalize snapshots platform counters into the report.
func (c *Coordinator) finalize() {
	c.rep.HWCorrected = c.RT.M.Ctl.Stats().CorrectedErrors
	os := c.RT.M.OS.Stats()
	c.rep.Notified = os.ExposedToABFT
	c.rep.OSPanics = os.Panics
	c.rep.Corrections = c.W.Corrections()
	st := c.ck.Stats()
	c.rep.StepsLost = st.StepsLost
	c.rep.RestartsTotal = st.Restarts
	c.rep.Checkpoints = st.Checkpoints
}
