package recovery

import (
	"context"
	"errors"
	"testing"

	"coopabft/internal/checkpoint"
	"coopabft/internal/core"
)

// TestCoordinatorResumeFromSnapshot: a snapshot streamed out of one run via
// OnCheckpoint, round-tripped through the wire codec, seeds a second
// coordinator that resumes at the snapshot's step instead of replaying from
// scratch.
func TestCoordinatorResumeFromSnapshot(t *testing.T) {
	rtA := newRT(t, core.WholeChipkill)
	envA := rtA.Env()
	const steps = 6
	fA := &fakeWork{
		data:    make([]float64, steps),
		reg:     envA.Alloc("fake.data", steps, false),
		steps:   steps,
		badStep: -1,
	}
	var snaps []checkpoint.Snapshot
	coA := &Coordinator{RT: rtA, W: fA, CheckpointEvery: 2,
		OnCheckpoint: func(s checkpoint.Snapshot) { snaps = append(snaps, s) }}
	if rep := coA.Run(); rep.Outcome != Corrected {
		t.Fatalf("first run outcome = %v (err %v)", rep.Outcome, rep.Err)
	}
	// Checkpoints land at ticks 0, 2, 4 → the last snapshot is step 4.
	if len(snaps) != 3 || snaps[2].Step != 4 {
		t.Fatalf("streamed %d snapshots, last step %d; want 3 ending at 4", len(snaps), snaps[len(snaps)-1].Step)
	}

	dec, err := checkpoint.Decode(checkpoint.Encode(snaps[2]))
	if err != nil {
		t.Fatal(err)
	}
	rtB := newRT(t, core.WholeChipkill)
	envB := rtB.Env()
	fB := &fakeWork{
		data:    make([]float64, steps), // cold state; the snapshot must fill it
		reg:     envB.Alloc("fake.data", steps, false),
		steps:   steps,
		badStep: -1,
	}
	coB := &Coordinator{RT: rtB, W: fB, CheckpointEvery: 2, Resume: &dec}
	rep := coB.Run()
	if rep.Outcome != Corrected {
		t.Fatalf("resumed outcome = %v (err %v)", rep.Outcome, rep.Err)
	}
	if rep.ResumedFrom != 4 {
		t.Errorf("ResumedFrom = %d, want 4", rep.ResumedFrom)
	}
	// Steps 0–3 must come from the installed snapshot, not recomputation:
	// fakeWork.Check verifies every element, and the resumed run only
	// executes steps 4 and 5.
}

// TestCoordinatorResumeMismatchAborts: a snapshot from a different workload
// shape must end Aborted with the typed mismatch error, never install.
func TestCoordinatorResumeMismatchAborts(t *testing.T) {
	rt := newRT(t, core.WholeChipkill)
	env := rt.Env()
	f := &fakeWork{data: make([]float64, 4), reg: env.Alloc("fake.data", 4, false), steps: 4, badStep: -1}
	bad := &checkpoint.Snapshot{Step: 2, Regions: []checkpoint.SnapRegion{
		{Name: "other", Data: []float64{1, 2, 3, 4}}}}
	co := &Coordinator{RT: rt, W: f, Resume: bad}
	rep := co.Run()
	if rep.Outcome != Aborted || !errors.Is(rep.Err, checkpoint.ErrSnapshotMismatch) {
		t.Fatalf("outcome = %v, err = %v; want Aborted with ErrSnapshotMismatch", rep.Outcome, rep.Err)
	}
}

// TestCGMigratesAcrossRuntimes is the in-process model of worker death and
// migration: a CG solve is cancelled mid-run (the SIGKILL stand-in) after
// streaming checkpoints, and a second runtime — fresh machine, fresh
// workload, same problem — resumes from the last streamed snapshot and
// converges without re-running the completed iterations.
func TestCGMigratesAcrossRuntimes(t *testing.T) {
	rtA := newRT(t, core.WholeChipkill)
	wA, err := NewCGWorkload(rtA, 12, 12, 5)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var snaps []checkpoint.Snapshot
	coA := &Coordinator{RT: rtA, W: wA, CheckpointEvery: 4, Ctx: ctx,
		OnCheckpoint: func(s checkpoint.Snapshot) {
			snaps = append(snaps, s)
			if len(snaps) == 3 {
				cancel() // die mid-solve, after checkpoints left the node
			}
		}}
	rep := coA.Run()
	if rep.Outcome != Aborted || !errors.Is(rep.Err, ErrCancelled) {
		t.Fatalf("victim outcome = %v (err %v), want cancelled Abort", rep.Outcome, rep.Err)
	}
	last := snaps[len(snaps)-1]
	if last.Step == 0 {
		t.Fatal("no mid-solve checkpoint was streamed")
	}

	dec, err := checkpoint.Decode(checkpoint.Encode(last))
	if err != nil {
		t.Fatal(err)
	}
	rtB := newRT(t, core.WholeChipkill)
	wB, err := NewCGWorkload(rtB, 12, 12, 5)
	if err != nil {
		t.Fatal(err)
	}
	coB := &Coordinator{RT: rtB, W: wB, CheckpointEvery: 4, Resume: &dec}
	repB := coB.Run()
	if repB.Outcome != Corrected {
		t.Fatalf("resumed outcome = %v (err %v), want Corrected", repB.Outcome, repB.Err)
	}
	if repB.ResumedFrom != last.Step {
		t.Errorf("ResumedFrom = %d, want %d", repB.ResumedFrom, last.Step)
	}
}
