package recovery

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"coopabft/internal/abft"
	"coopabft/internal/bifit"
	"coopabft/internal/checkpoint"
	"coopabft/internal/core"
	"coopabft/internal/machine"
	"coopabft/internal/trace"
)

func newRT(t *testing.T, s core.Strategy) *core.Runtime {
	t.Helper()
	return core.NewRuntime(machine.ScaledConfig(32), s, 7)
}

// TestCase1HardwareCorrects: a single-bit error under whole chipkill is the
// ladder's first rung — the memory controller fixes it in place and the run
// finishes without ABFT repair or rollback.
func TestCase1HardwareCorrects(t *testing.T) {
	rt := newRT(t, core.WholeChipkill)
	w, err := NewDGEMMWorkload(rt, 80, 3, abft.NotifiedVerify)
	if err != nil {
		t.Fatal(err)
	}
	co := &Coordinator{RT: rt, W: w,
		Plan: []Injection{{Tick: 1, Kind: bifit.SingleBit, Target: 0, Elem: 10}}}
	rep := co.Run()
	if rep.Outcome != Corrected {
		t.Fatalf("outcome = %v (err %v), want Corrected", rep.Outcome, rep.Err)
	}
	if rep.Injected != 1 {
		t.Errorf("injected = %d, want 1", rep.Injected)
	}
	if rep.HWCorrected == 0 {
		t.Error("hardware corrected nothing; the error never reached ECC")
	}
	if rep.Restarts != 0 || rep.Case3 != 0 || rep.Case4 != 0 {
		t.Errorf("Case 1 escalated: %+v", rep)
	}
}

// TestCase2NotifiedRepair: a double-bit error under SECDED-protected ABFT
// data is detected but not correctable in hardware; the OS exposes the
// address and ABFT rebuilds the element from its checksum.
func TestCase2NotifiedRepair(t *testing.T) {
	rt := newRT(t, core.PartialChipkillSECDED)
	w, err := NewDGEMMWorkload(rt, 80, 3, abft.NotifiedVerify)
	if err != nil {
		t.Fatal(err)
	}
	co := &Coordinator{RT: rt, W: w,
		Plan: []Injection{{Tick: 1, Kind: bifit.DoubleBitSameWord, Target: 0, Elem: 200}}}
	rep := co.Run()
	if rep.Outcome != Corrected {
		t.Fatalf("outcome = %v (err %v), want Corrected", rep.Outcome, rep.Err)
	}
	if rep.Notified == 0 {
		t.Error("OS exposed no corruption to ABFT; Case 2 path not exercised")
	}
	if rep.Corrections == 0 {
		t.Error("ABFT repaired nothing")
	}
	if rep.Restarts != 0 {
		t.Errorf("Case 2 should not roll back: %+v", rep)
	}
}

// TestFusedOnlineCorrectsSilentCorruption: under NoECC a chip failure in Cf
// is invisible to the hardware and the OS — the notified path would only
// learn about it from the end-of-run oracle. In fused mode the kernel's own
// boundary check detects and repairs it online: the run finishes Corrected
// with zero rollbacks and no OS involvement.
func TestFusedOnlineCorrectsSilentCorruption(t *testing.T) {
	rt := newRT(t, core.NoECC)
	w, err := NewDGEMMWorkload(rt, 80, 3, abft.FusedVerify)
	if err != nil {
		t.Fatal(err)
	}
	co := &Coordinator{RT: rt, W: w,
		Plan: []Injection{{Tick: 1, Kind: bifit.ChipFailure, Target: 0, Elem: 300}}}
	rep := co.Run()
	if rep.Outcome != Corrected {
		t.Fatalf("outcome = %v (err %v), want Corrected", rep.Outcome, rep.Err)
	}
	if rep.Corrections == 0 {
		t.Error("fused check repaired nothing")
	}
	if rep.Notified != 0 {
		t.Errorf("NoECC run saw %d OS notifications", rep.Notified)
	}
	if rep.Restarts != 0 {
		t.Errorf("online repair should not roll back: %+v", rep)
	}
}

// TestCase4PanicRestart: an uncorrectable error in NON-ABFT data (the
// Cholesky panel workspace) has no algorithmic fallback — the OS enters
// panic mode and the coordinator must restart from checkpoint.
func TestCase4PanicRestart(t *testing.T) {
	rt := newRT(t, core.WholeSECDED)
	w, err := NewCholeskyWorkload(rt, 96, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Target 3 is the unprotected workspace W (see cholWork.InjectTargets).
	co := &Coordinator{RT: rt, W: w,
		Plan: []Injection{{Tick: 1, Kind: bifit.DoubleBitSameWord, Target: 3, Elem: 40}}}
	rep := co.Run()
	if rep.Outcome != Restarted {
		t.Fatalf("outcome = %v (err %v), want Restarted", rep.Outcome, rep.Err)
	}
	if rep.OSPanics == 0 {
		t.Error("OS never entered panic mode")
	}
	if rep.Case4 == 0 {
		t.Errorf("restart not classified as Case 4: %+v", rep)
	}
	if rep.Restarts == 0 {
		t.Error("no restart recorded")
	}
}

// fakeWork is a minimal steppable workload with a hand-driven failure mode:
// at step corruptAtStep of the FIRST pass it silently corrupts state in a
// way FullVerify cannot repair, forcing the ladder onto the Case-3 rung.
type fakeWork struct {
	data    []float64
	reg     trace.Region
	hook    func(int)
	steps   int
	badStep int // -1 to disable
	fired   bool
	sticky  bool // corrupt on every pass (never recoverable)
}

func (f *fakeWork) Name() string              { return "fake" }
func (f *fakeWork) Steps() int                { return f.steps }
func (f *fakeWork) SetHook(fn func(step int)) { f.hook = fn }

func (f *fakeWork) RunFrom(step int) error {
	for s := step; s < f.steps; s++ {
		f.hook(s)
		f.data[s] = float64(s + 1)
		if s == f.badStep && (!f.fired || f.sticky) {
			f.fired = true
			f.data[0] = -999 // silent corruption outside ABFT's reach
		}
	}
	return nil
}

func (f *fakeWork) CheckpointSet() []State {
	return []State{{Name: "fake.data", Data: f.data, Reg: f.reg}}
}
func (f *fakeWork) InjectTargets() []InjectTarget { return nil }
func (f *fakeWork) DrainNotified() error          { return nil }
func (f *fakeWork) FullVerify() error {
	if f.data[0] == -999 {
		return fmt.Errorf("fake: corruption beyond verification repair")
	}
	return nil
}
func (f *fakeWork) Check() error {
	for s := 0; s < f.steps; s++ {
		if f.data[s] != float64(s+1) {
			return fmt.Errorf("fake: element %d corrupted", s)
		}
	}
	return nil
}
func (f *fakeWork) Corrections() int { return 0 }

// TestCase3RestartReplaysCorrectly: a Case-3 error (beyond ABFT) on a
// metered machine must roll back to the last checkpoint, replay the lost
// steps, and account for them accurately.
func TestCase3RestartReplaysCorrectly(t *testing.T) {
	rt := newRT(t, core.WholeChipkill)
	env := rt.Env()
	const steps = 6
	f := &fakeWork{
		data:    make([]float64, steps),
		reg:     env.Alloc("fake.data", steps, false),
		steps:   steps,
		badStep: steps - 1, // after the last checkpoint (ticks 0, 2, 4)
	}
	co := &Coordinator{RT: rt, W: f, CheckpointEvery: 2}
	rep := co.Run()
	if rep.Outcome != Restarted {
		t.Fatalf("outcome = %v (err %v), want Restarted", rep.Outcome, rep.Err)
	}
	if rep.Case3 != 1 || rep.Restarts != 1 {
		t.Errorf("Case3 = %d, Restarts = %d, want 1, 1", rep.Case3, rep.Restarts)
	}
	// Corruption at step 5, last checkpoint at step 4: exactly one step of
	// work is lost and replayed.
	if rep.StepsLost != 1 {
		t.Errorf("StepsLost = %d, want 1", rep.StepsLost)
	}
	// The replay must leave the state bit-correct.
	if err := f.Check(); err != nil {
		t.Errorf("state wrong after replay: %v", err)
	}
	// The run's traffic (checkpoints + restores) was metered on the machine.
	if res := rt.Finish(); res.SystemEnergyJ <= 0 || res.Seconds <= 0 {
		t.Errorf("metered run produced no cost: %+v", res)
	}
}

// TestAbortedWhenBudgetExhausted: a fault that recurs on every replay must
// terminate in an explicit Aborted carrying the budget error — never a
// wrong answer, never an unbounded loop.
func TestAbortedWhenBudgetExhausted(t *testing.T) {
	rt := newRT(t, core.WholeChipkill)
	env := rt.Env()
	const steps = 6
	f := &fakeWork{
		data:    make([]float64, steps),
		reg:     env.Alloc("fake.data", steps, false),
		steps:   steps,
		badStep: steps - 1,
		sticky:  true,
	}
	co := &Coordinator{RT: rt, W: f, CheckpointEvery: 2, MaxRestarts: 2}
	rep := co.Run()
	if rep.Outcome != Aborted {
		t.Fatalf("outcome = %v, want Aborted", rep.Outcome)
	}
	if !errors.Is(rep.Err, checkpoint.ErrRestartBudget) {
		t.Errorf("err = %v, want ErrRestartBudget", rep.Err)
	}
	if rep.Restarts != 2 {
		t.Errorf("Restarts = %d, want the full budget of 2", rep.Restarts)
	}
}

// TestOutcomeStrings pins the labels used by the soak tables.
func TestOutcomeStrings(t *testing.T) {
	for o, want := range map[Outcome]string{
		Corrected: "corrected", Restarted: "restarted", Aborted: "aborted",
		Outcome(9): "Outcome(9)",
	} {
		if o.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(o), o, want)
		}
	}
}

// TestCtxCancelAborts: a coordinator whose context is already cancelled
// aborts at the first step boundary with the typed ErrCancelled, before
// computing anything — the deadline-propagation contract the serving path
// relies on.
func TestCtxCancelAborts(t *testing.T) {
	rt := newRT(t, core.WholeChipkill)
	w, err := NewDGEMMWorkload(rt, 80, 3, abft.NotifiedVerify)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	co := &Coordinator{RT: rt, W: w, Ctx: ctx}
	rep := co.Run()
	if rep.Outcome != Aborted {
		t.Fatalf("outcome = %v, want Aborted", rep.Outcome)
	}
	if !errors.Is(rep.Err, ErrCancelled) || !errors.Is(rep.Err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCancelled wrapping context.Canceled", rep.Err)
	}
	if rep.Restarts != 0 || rep.Case3 != 0 || rep.Case4 != 0 {
		t.Errorf("cancelled run escalated: %+v", rep)
	}
}

// TestCtxCancelMidRun cancels the context from inside the step stream —
// deterministically, at the third hook tick — and asserts the run is cut
// at a step boundary instead of completing or looping in restarts.
func TestCtxCancelMidRun(t *testing.T) {
	rt := newRT(t, core.WholeChipkill)
	w, err := NewDGEMMWorkload(rt, 96, 3, abft.NotifiedVerify)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	wrapped := &hookCountingWorkload{Workload: w, onTick: func(n int) {
		if n == 3 {
			cancel()
		}
	}}
	co := &Coordinator{RT: rt, W: wrapped, Ctx: ctx}
	rep := co.Run()
	if rep.Outcome != Aborted {
		t.Fatalf("outcome = %v (err %v), want Aborted", rep.Outcome, rep.Err)
	}
	if !errors.Is(rep.Err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", rep.Err)
	}
	if rep.Restarts != 0 {
		t.Errorf("cancelled run rolled back %d times", rep.Restarts)
	}
}

// hookCountingWorkload chains a tick observer in front of whatever hook
// the coordinator installs, so tests can react to step progress.
type hookCountingWorkload struct {
	Workload
	onTick func(n int)
	n      int
}

func (h *hookCountingWorkload) SetHook(fn func(step int)) {
	h.Workload.SetHook(func(step int) {
		h.n++
		h.onTick(h.n)
		fn(step)
	})
}
