package recovery

import (
	"fmt"
	"math"

	"coopabft/internal/abft"
	"coopabft/internal/bifit"
	"coopabft/internal/core"
	"coopabft/internal/mat"
	"coopabft/internal/trace"
)

// State is one named piece of application state in the checkpoint set.
type State struct {
	Name string
	Data []float64
	Reg  trace.Region
}

// InjectTarget is one data structure faults may land in. ABFT marks whether
// the region is under algorithmic protection — faults in non-ABFT targets
// are the ladder's Case-4 feed.
type InjectTarget struct {
	Name string
	T    bifit.Target
	ABFT bool
}

// Workload adapts one ABFT kernel to the coordinator: a steppable,
// restartable run with a hook at every step boundary, plus the verification
// entry points the ladder escalates through. Check is the final oracle — it
// compares against reference state captured at construction, so a wrong
// answer can never be classified as success.
type Workload interface {
	Name() string
	// Steps is the nominal hook-tick horizon of one uninterrupted run
	// (injection schedules draw from [0, Steps)).
	Steps() int
	SetHook(fn func(step int))
	// RunFrom executes from the given step boundary; 0 on a fresh start,
	// the checkpoint's resume step after a restore.
	RunFrom(step int) error
	CheckpointSet() []State
	InjectTargets() []InjectTarget
	// DrainNotified consumes pending OS corruption reports (Case 2 tail).
	DrainNotified() error
	// FullVerify runs the expensive full sweep (the degradation path).
	FullVerify() error
	// Check is the end-of-run oracle against pristine reference state.
	Check() error
	Corrections() int
}

// Answerer is the optional interface workloads implement to expose their
// user-visible answer for canonical fingerprinting (replica voting at the
// cluster gateway). It is deliberately not part of Workload: fingerprinting
// is a serving concern, and the coordinator never needs it.
type Answerer interface {
	// AnswerData returns the answer's float64 chunks in canonical order —
	// the exact bits abft.AnswerSig hashes. All honest replicas of the
	// same request produce bit-identical chunks under the determinism
	// contract (same seed → same data, same faults, same repairs).
	AnswerData() [][]float64
}

// ---- FT-DGEMM ----

type dgemmWork struct {
	d *abft.DGEMM
}

// NewDGEMMWorkload builds an FT-DGEMM workload in the given verify mode
// (notified for the cooperative path, fused for kernel-resident online
// checks, full for the software-only baseline). Block is lowered to 16 so a
// run has several panel boundaries for mid-run injection while each rank-16
// update stays above the parallel threshold for n ≥ 80.
func NewDGEMMWorkload(rt *core.Runtime, n int, seed uint64, mode abft.VerifyMode) (Workload, error) {
	d, err := rt.NewDGEMM(n, seed)
	if err != nil {
		return nil, err
	}
	d.Mode = mode
	d.Block = 16
	return &dgemmWork{d: d}, nil
}

func (w *dgemmWork) Name() string              { return "dgemm" }
func (w *dgemmWork) Steps() int                { return w.d.Panels() }
func (w *dgemmWork) SetHook(fn func(step int)) { w.d.OnPanel = fn }
func (w *dgemmWork) RunFrom(step int) error    { return w.d.RunFrom(step) }
func (w *dgemmWork) Corrections() int          { return len(w.d.Corrections) }

func (w *dgemmWork) CheckpointSet() []State {
	// Cf is the only mutated state; Ac/Br are read-only inputs and stay
	// pristine because injections target the result encoding.
	return []State{{Name: "dgemm.Cf", Data: w.d.Cf.Data, Reg: w.d.Cf.Reg}}
}

func (w *dgemmWork) InjectTargets() []InjectTarget {
	return []InjectTarget{
		{Name: "Cf", T: bifit.Target{Data: w.d.Cf.Data, Reg: w.d.Cf.Reg}, ABFT: true},
	}
}

func (w *dgemmWork) DrainNotified() error { return w.d.VerifyNotified() }
func (w *dgemmWork) FullVerify() error    { return w.d.VerifyFull() }
func (w *dgemmWork) Check() error         { return w.d.CheckResult() }

// AnswerData is the n×n result view's rows — the user-visible product,
// excluding the checksum row/column (an encoding detail, not the answer).
func (w *dgemmWork) AnswerData() [][]float64 {
	c := w.d.C()
	chunks := make([][]float64, c.Rows)
	for i := 0; i < c.Rows; i++ {
		chunks[i] = c.Row(i)
	}
	return chunks
}

// ---- FT-Cholesky ----

type cholWork struct {
	c    *abft.Cholesky
	orig *mat.Matrix
}

// NewCholeskyWorkload builds an FT-Cholesky workload in notified mode. Its
// unprotected panel workspace W is an inject target, so this kernel feeds
// the ladder's Case 4 (faults outside ABFT data). Use n ≥ 96 to keep the
// first trailing updates above the parallel threshold.
func NewCholeskyWorkload(rt *core.Runtime, n int, seed uint64) (Workload, error) {
	c := rt.NewCholesky(n, seed)
	c.Mode = abft.NotifiedVerify
	// Make the workspace hardware-repairable like the registered ABFT
	// structures, so chipkill corrections write back into it too.
	rt.RegisterTarget(c.W.Data, c.W.Reg)
	cs, cs2, lcs, lcs2 := c.Checksums()
	for _, v := range []abft.Vec{cs, cs2, lcs, lcs2} {
		rt.RegisterTarget(v.Data, v.Reg)
	}
	return &cholWork{c: c, orig: c.A.Matrix.Clone()}, nil
}

func (w *cholWork) Name() string              { return "cholesky" }
func (w *cholWork) Steps() int                { return w.c.Steps() }
func (w *cholWork) SetHook(fn func(step int)) { w.c.OnPanel = fn }
func (w *cholWork) RunFrom(step int) error    { return w.c.RunFrom(step) }
func (w *cholWork) Corrections() int          { return len(w.c.Corrections) }

func (w *cholWork) CheckpointSet() []State {
	cs, cs2, lcs, lcs2 := w.c.Checksums()
	return []State{
		{Name: "chol.A", Data: w.c.A.Data, Reg: w.c.A.Reg},
		{Name: "chol.cs", Data: cs.Data, Reg: cs.Reg},
		{Name: "chol.cs2", Data: cs2.Data, Reg: cs2.Reg},
		{Name: "chol.lcs", Data: lcs.Data, Reg: lcs.Reg},
		{Name: "chol.lcs2", Data: lcs2.Data, Reg: lcs2.Reg},
	}
}

func (w *cholWork) InjectTargets() []InjectTarget {
	cs, cs2, _, _ := w.c.Checksums()
	return []InjectTarget{
		{Name: "A", T: bifit.Target{Data: w.c.A.Data, Reg: w.c.A.Reg}, ABFT: true},
		{Name: "cs", T: bifit.Target{Data: cs.Data, Reg: cs.Reg}, ABFT: true},
		{Name: "cs2", T: bifit.Target{Data: cs2.Data, Reg: cs2.Reg}, ABFT: true},
		{Name: "W", T: bifit.Target{Data: w.c.W.Data, Reg: w.c.W.Reg}, ABFT: false},
	}
}

func (w *cholWork) DrainNotified() error { return w.c.VerifyNotified() }
func (w *cholWork) FullVerify() error    { return w.c.VerifyL(w.c.N) }
func (w *cholWork) Check() error         { return w.c.CheckResult(w.orig) }

// AnswerData is the factor L's rows — the user-visible answer of a
// Cholesky request.
func (w *cholWork) AnswerData() [][]float64 {
	l := w.c.L()
	chunks := make([][]float64, l.Rows)
	for i := 0; i < l.Rows; i++ {
		chunks[i] = l.Row(i)
	}
	return chunks
}

// ---- FT-CG ----

type cgWork struct {
	c    *abft.CG
	b0   []float64
	last abft.CGOutcome
}

// NewCGWorkload builds an FT-CG workload in notified mode. CG's restart is
// algorithmic: restoring x (and b) rebuilds the remaining iteration state
// (r, z, p, ρ), and RunFrom resumes the iteration count at the restored
// step, so replayed work is exactly the steps since the last checkpoint.
func NewCGWorkload(rt *core.Runtime, nx, ny int, seed uint64) (Workload, error) {
	c := rt.NewCG(nx, ny, seed)
	c.Mode = abft.NotifiedVerify
	c.RelTol = 1e-9
	b, _ := c.VecFor("b")
	return &cgWork{c: c, b0: append([]float64(nil), b.Data...)}, nil
}

func (w *cgWork) Name() string              { return "cg" }
func (w *cgWork) Steps() int                { return 32 }
func (w *cgWork) SetHook(fn func(step int)) { w.c.OnIteration = fn }
func (w *cgWork) Corrections() int          { return len(w.c.Corrections) }

func (w *cgWork) RunFrom(step int) error {
	out, err := w.c.RunFrom(step)
	w.last = out
	if err != nil {
		return err
	}
	if !out.Converged {
		return fmt.Errorf("%w: CG stalled (residual %g after %d iterations)",
			abft.ErrUncorrectable, out.Residual, out.Iterations)
	}
	return nil
}

// Solve reports the last RunFrom leg's solver outcome (iterations,
// residual) — the long-job serving layer surfaces it in job status.
func (w *cgWork) Solve() abft.CGOutcome { return w.last }

// AnswerData is the solution vector x as a single chunk.
func (w *cgWork) AnswerData() [][]float64 { return [][]float64{w.c.X()} }

func (w *cgWork) CheckpointSet() []State {
	x, _ := w.c.VecFor("x")
	b, _ := w.c.VecFor("b")
	return []State{
		{Name: "cg.x", Data: x.Data, Reg: x.Reg},
		{Name: "cg.b", Data: b.Data, Reg: b.Reg},
	}
}

func (w *cgWork) InjectTargets() []InjectTarget {
	out := make([]InjectTarget, 0, 6)
	for _, name := range []string{"r", "p", "q", "x", "b", "z"} {
		v, _ := w.c.VecFor(name)
		out = append(out, InjectTarget{Name: name,
			T: bifit.Target{Data: v.Data, Reg: v.Reg}, ABFT: true})
	}
	return out
}

func (w *cgWork) DrainNotified() error {
	_, err := w.c.VerifyNotified()
	return err
}

func (w *cgWork) FullVerify() error {
	_, err := w.c.VerifyInvariants()
	return err
}

// Check verifies the solution against the right-hand side captured at
// construction — corruption of the live b cannot fool the oracle.
func (w *cgWork) Check() error {
	n := w.c.N()
	tmp := make([]float64, n)
	w.c.A.MulVecInto(tmp, w.c.X())
	for i := range tmp {
		tmp[i] = w.b0[i] - tmp[i]
	}
	res := mat.Norm2(tmp)
	bn := mat.Norm2(w.b0)
	if bn == 0 {
		bn = 1
	}
	if res > 1e-6*bn || math.IsNaN(res) {
		return fmt.Errorf("recovery: CG residual %g exceeds tolerance", res/bn)
	}
	return nil
}
