// Package soak is the chaos harness over the recovery ladder: randomized,
// seed-deterministic multi-error campaigns that inject faults mid-run —
// while the kernels' packed parallel updates are live — sweeping error
// kind × count × timing × ECC scheme × kernel, and asserting that every run
// terminates in a verified-correct result or an explicit Aborted outcome.
// No wrong answers, no panics, no hangs: panics are caught and counted,
// hangs are cut by per-run deadlines, and the same seed always reproduces
// the same outcome table.
package soak

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"coopabft/internal/abft"
	"coopabft/internal/bifit"
	"coopabft/internal/campaign"
	"coopabft/internal/core"
	"coopabft/internal/machine"
	"coopabft/internal/mat"
	"coopabft/internal/recovery"
)

// Kernel selects a workload for the sweep.
type Kernel int

const (
	// KDGEMM is FT-DGEMM with rank-16 panels (parallel above n≈80).
	KDGEMM Kernel = iota
	// KCholesky is FT-Cholesky (parallel trailing updates above n≈96); its
	// unprotected workspace feeds Case 4.
	KCholesky
	// KCG is FT-CG, the memory-bound invariant-checked workload.
	KCG
)

// String implements fmt.Stringer.
func (k Kernel) String() string {
	switch k {
	case KDGEMM:
		return "dgemm"
	case KCholesky:
		return "cholesky"
	case KCG:
		return "cg"
	default:
		return fmt.Sprintf("Kernel(%d)", int(k))
	}
}

// Config describes one soak campaign. The cell grid is the cross product
// kernels × strategies × kinds × counts; every cell is one coordinated run
// seeded from (Seed, cell index), so the whole campaign is reproducible.
type Config struct {
	Seed    uint64
	Workers int // campaign fan-out (default 1)
	// Parallelism is the mat worker count active during runs (default 4),
	// so panel and trailing updates execute on parallel row bands while
	// faults land at step boundaries.
	Parallelism int
	// Deadline bounds one run's wall clock (default 30s); a run that
	// exceeds it is recorded as hung, never waited on.
	Deadline time.Duration

	Kernels    []Kernel
	Strategies []core.Strategy
	Kinds      []bifit.Kind
	Counts     []int // injected errors per run

	// Problem sizes (defaults: DGEMM 80, Cholesky 96, CG 16×16).
	DGEMMN, CholN, CGX, CGY int

	// DGEMMMode selects the DGEMM verify mode for the whole campaign. The
	// zero value is FullVerify; Short/Default use NotifiedVerify (the
	// paper's cooperative path) and the fused soak sweeps FusedVerify.
	DGEMMMode abft.VerifyMode

	MaxRestarts     int // per-run restart budget (default 3)
	CheckpointEvery int // ticks between checkpoints (default 2)
}

// Default returns the acceptance sweep: all kernels, all six ECC
// strategies, all four error kinds, three error counts — 216 runs.
func Default() Config {
	return Config{
		Kernels:    []Kernel{KDGEMM, KCholesky, KCG},
		Strategies: core.Strategies,
		Kinds:      []bifit.Kind{bifit.SingleBit, bifit.DoubleBitSameWord, bifit.ChipFailure, bifit.Scattered},
		Counts:     []int{1, 2, 4},
		DGEMMMode:  abft.NotifiedVerify,
	}
}

// Short returns a trimmed grid for quick deterministic checks: two
// parallel kernels, three strategies, all four kinds, one count — 24 runs.
func Short() Config {
	return Config{
		Kernels:    []Kernel{KDGEMM, KCholesky},
		Strategies: []core.Strategy{core.WholeChipkill, core.PartialChipkillSECDED, core.NoECC},
		Kinds:      []bifit.Kind{bifit.SingleBit, bifit.DoubleBitSameWord, bifit.ChipFailure, bifit.Scattered},
		Counts:     []int{2},
		DGEMMMode:  abft.NotifiedVerify,
	}
}

func (c *Config) defaults() {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.Parallelism <= 0 {
		c.Parallelism = 4
	}
	if c.Deadline <= 0 {
		c.Deadline = 30 * time.Second
	}
	if c.DGEMMN <= 0 {
		c.DGEMMN = 80
	}
	if c.CholN <= 0 {
		c.CholN = 96
	}
	if c.CGX <= 0 {
		c.CGX = 16
	}
	if c.CGY <= 0 {
		c.CGY = 16
	}
	if c.MaxRestarts <= 0 {
		c.MaxRestarts = 3
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 2
	}
}

// Cells returns the run count of the sweep.
func (c Config) Cells() int {
	return len(c.Kernels) * len(c.Strategies) * len(c.Kinds) * len(c.Counts)
}

// RunResult is one cell's outcome.
type RunResult struct {
	Cell     int
	Kernel   Kernel
	Strategy core.Strategy
	Kind     bifit.Kind
	Count    int

	Report recovery.Report
	// Panicked/Hung record harness-level failures; both must stay zero.
	Panicked bool
	PanicMsg string
	Hung     bool
}

// Result aggregates a campaign.
type Result struct {
	Cfg    Config
	Runs   []RunResult
	Counts map[recovery.Outcome]int
	Panics int
	Hangs  int
}

// Run executes the campaign. The only error source is context
// cancellation — per-run failures are data, not errors.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	cfg.defaults()
	prev := mat.SetParallelism(cfg.Parallelism)
	defer mat.SetParallelism(prev)

	eng := campaign.New(campaign.WithWorkers(cfg.Workers))
	runs, _, err := campaign.Map(ctx, eng, cfg.Cells(), func(ctx context.Context, i int) (RunResult, error) {
		if err := ctx.Err(); err != nil {
			return RunResult{}, err
		}
		return runCell(cfg, i), nil
	})
	if err != nil {
		return nil, err
	}
	res := &Result{Cfg: cfg, Runs: runs, Counts: map[recovery.Outcome]int{}}
	for _, r := range runs {
		switch {
		case r.Panicked:
			res.Panics++
		case r.Hung:
			res.Hangs++
		default:
			res.Counts[r.Report.Outcome]++
		}
	}
	return res, nil
}

// cell decodes index i into its sweep coordinates.
func (c Config) cell(i int) (Kernel, core.Strategy, bifit.Kind, int) {
	ci := i % len(c.Counts)
	i /= len(c.Counts)
	di := i % len(c.Kinds)
	i /= len(c.Kinds)
	si := i % len(c.Strategies)
	i /= len(c.Strategies)
	return c.Kernels[i], c.Strategies[si], c.Kinds[di], c.Counts[ci]
}

// runCell executes one coordinated run under a panic guard and deadline.
func runCell(cfg Config, i int) RunResult {
	kernel, strat, kind, count := cfg.cell(i)
	out := RunResult{Cell: i, Kernel: kernel, Strategy: strat, Kind: kind, Count: count}

	done := make(chan RunResult, 1)
	go func() {
		r := out // goroutine-local copy; published only via the channel
		defer func() {
			if p := recover(); p != nil {
				r.Panicked = true
				r.PanicMsg = fmt.Sprint(p)
			}
			done <- r
		}()
		r.Report = runOne(cfg, kernel, strat, kind, count, campaign.CellSeed(cfg.Seed, uint64(i)))
	}()

	select {
	case r := <-done:
		return r
	case <-time.After(cfg.Deadline):
		out.Hung = true
		return out
	}
}

// runOne builds runtime + workload + injection plan for one cell and drives
// the coordinator.
func runOne(cfg Config, kernel Kernel, strat core.Strategy, kind bifit.Kind, count int, seed uint64) recovery.Report {
	rt := core.NewRuntime(machine.ScaledConfig(32), strat, int64(seed))
	var w recovery.Workload
	var err error
	switch kernel {
	case KCholesky:
		w, err = recovery.NewCholeskyWorkload(rt, cfg.CholN, seed)
	case KCG:
		w, err = recovery.NewCGWorkload(rt, cfg.CGX, cfg.CGY, seed)
	default:
		w, err = recovery.NewDGEMMWorkload(rt, cfg.DGEMMN, seed, cfg.DGEMMMode)
	}
	if err != nil {
		return recovery.Report{Outcome: recovery.Aborted, Err: err}
	}

	// Seed-deterministic plan: error timing, target and element all come
	// from a splitmix stream over the cell seed.
	s := seed
	next := func() uint64 { s++; return campaign.Splitmix64(s) }
	targets := w.InjectTargets()
	steps := w.Steps()
	plan := make([]recovery.Injection, 0, count)
	for e := 0; e < count; e++ {
		ti := int(next() % uint64(len(targets)))
		plan = append(plan, recovery.Injection{
			Tick:   int(next() % uint64(steps)),
			Kind:   kind,
			Target: ti,
			Elem:   int(next() % uint64(len(targets[ti].T.Data))),
		})
	}

	co := &recovery.Coordinator{
		RT:              rt,
		W:               w,
		Plan:            plan,
		CheckpointEvery: cfg.CheckpointEvery,
		MaxRestarts:     cfg.MaxRestarts,
	}
	return co.Run()
}

// Table renders the deterministic outcome table: one row per
// (kernel, strategy, kind) aggregated over the error-count axis. Reports
// from the same seed render byte-identically.
func (r *Result) Table() string {
	type key struct {
		k Kernel
		s core.Strategy
		d bifit.Kind
	}
	type agg struct {
		runs, corrected, restarted, aborted, panics, hangs int
		injected, restarts                                 int
	}
	rows := map[key]*agg{}
	var order []key
	for _, run := range r.Runs {
		k := key{run.Kernel, run.Strategy, run.Kind}
		a, ok := rows[k]
		if !ok {
			a = &agg{}
			rows[k] = a
			order = append(order, k)
		}
		a.runs++
		a.injected += run.Report.Injected
		a.restarts += run.Report.Restarts
		switch {
		case run.Panicked:
			a.panics++
		case run.Hung:
			a.hangs++
		case run.Report.Outcome == recovery.Corrected:
			a.corrected++
		case run.Report.Outcome == recovery.Restarted:
			a.restarted++
		default:
			a.aborted++
		}
	}
	sort.SliceStable(order, func(i, j int) bool {
		if order[i].k != order[j].k {
			return order[i].k < order[j].k
		}
		if order[i].s != order[j].s {
			return order[i].s < order[j].s
		}
		return order[i].d < order[j].d
	})

	var b strings.Builder
	fmt.Fprintf(&b, "chaos soak: %d runs (seed %d)\n", len(r.Runs), r.Cfg.Seed)
	fmt.Fprintf(&b, "%-9s %-12s %-12s %5s %5s %9s %9s %7s %6s %5s\n",
		"kernel", "strategy", "kind", "runs", "inj", "corrected", "restarted", "aborted", "panic", "hang")
	for _, k := range order {
		a := rows[k]
		fmt.Fprintf(&b, "%-9s %-12s %-12s %5d %5d %9d %9d %7d %6d %5d\n",
			k.k, k.s, k.d, a.runs, a.injected, a.corrected, a.restarted, a.aborted, a.panics, a.hangs)
	}
	fmt.Fprintf(&b, "totals: corrected %d, restarted %d, aborted %d, panics %d, hangs %d\n",
		r.Counts[recovery.Corrected], r.Counts[recovery.Restarted], r.Counts[recovery.Aborted],
		r.Panics, r.Hangs)
	return b.String()
}
