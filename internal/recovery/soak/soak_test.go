package soak_test

import (
	"context"
	"testing"
	"time"

	"coopabft/internal/abft"
	"coopabft/internal/bifit"
	"coopabft/internal/core"
	"coopabft/internal/recovery"
	"coopabft/internal/recovery/soak"
)

// checkInvariants asserts the harness's hard guarantees on a campaign
// result: no panics, no hangs, and every single run classified.
func checkInvariants(t *testing.T, res *soak.Result) {
	t.Helper()
	if res.Panics != 0 {
		for _, r := range res.Runs {
			if r.Panicked {
				t.Errorf("cell %d (%v/%v/%v) panicked: %s", r.Cell, r.Kernel, r.Strategy, r.Kind, r.PanicMsg)
			}
		}
	}
	if res.Hangs != 0 {
		t.Errorf("%d run(s) hung past the deadline", res.Hangs)
	}
	classified := res.Counts[recovery.Corrected] + res.Counts[recovery.Restarted] + res.Counts[recovery.Aborted]
	if classified != len(res.Runs)-res.Panics-res.Hangs {
		t.Errorf("%d of %d runs unclassified", len(res.Runs)-classified, len(res.Runs))
	}
}

// TestSoakShortDeterministic: the CI-sized grid completes with zero
// panics/hangs, and the same seed reproduces the identical outcome table —
// across different worker counts.
func TestSoakShortDeterministic(t *testing.T) {
	cfg := soak.Short()
	cfg.Seed = 7
	cfg.Deadline = 2 * time.Minute
	r1, err := soak.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, r1)
	if got := len(r1.Runs); got != cfg.Cells() {
		t.Fatalf("runs = %d, want %d", got, cfg.Cells())
	}

	cfg2 := cfg
	cfg2.Workers = 2
	r2, err := soak.Run(context.Background(), cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Table() != r2.Table() {
		t.Errorf("same seed produced different outcome tables:\n--- run 1 ---\n%s--- run 2 ---\n%s", r1.Table(), r2.Table())
	}
}

// TestSoakFusedDGEMM soaks the fused (kernel-resident online ABFT) verify
// mode: a DGEMM-only grid across ECC schemes and all four error kinds with
// faults landing mid-run at panel boundaries. The coordinator's oracle gates
// every success, so the invariants below imply zero silent wrong answers;
// the grid must also stay seed-deterministic like the notified one.
func TestSoakFusedDGEMM(t *testing.T) {
	cfg := soak.Short()
	cfg.Kernels = []soak.Kernel{soak.KDGEMM}
	cfg.DGEMMMode = abft.FusedVerify
	cfg.Seed = 11
	cfg.Deadline = 2 * time.Minute
	r1, err := soak.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, r1)
	if got := len(r1.Runs); got != cfg.Cells() {
		t.Fatalf("runs = %d, want %d", got, cfg.Cells())
	}
	if r1.Counts[recovery.Corrected] == 0 {
		t.Errorf("fused soak corrected nothing:\n%s", r1.Table())
	}

	cfg2 := cfg
	cfg2.Workers = 2
	r2, err := soak.Run(context.Background(), cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Table() != r2.Table() {
		t.Errorf("fused soak not deterministic:\n--- run 1 ---\n%s--- run 2 ---\n%s", r1.Table(), r2.Table())
	}
}

// TestSoakAcceptance is the issue's acceptance sweep: >= 200 injected-fault
// runs across all four error kinds, all six ECC schemes, and >= 2 kernels
// whose updates run on parallel mat workers — zero wrong answers (success
// is oracle-gated inside the coordinator), zero panics, zero hangs, every
// run classified.
func TestSoakAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("full 216-run sweep skipped in -short (TestSoakShortDeterministic covers the CI grid)")
	}
	cfg := soak.Default()
	cfg.Seed = 1
	cfg.Deadline = 2 * time.Minute
	res, err := soak.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, res)
	if len(res.Runs) < 200 {
		t.Fatalf("only %d runs; acceptance requires >= 200", len(res.Runs))
	}

	kinds := map[bifit.Kind]bool{}
	strats := map[core.Strategy]bool{}
	kernels := map[soak.Kernel]bool{}
	injected := 0
	for _, r := range res.Runs {
		kinds[r.Kind] = true
		strats[r.Strategy] = true
		kernels[r.Kernel] = true
		injected += r.Report.Injected
	}
	if len(kinds) != 4 {
		t.Errorf("kinds covered = %d, want 4", len(kinds))
	}
	if len(strats) != len(core.Strategies) {
		t.Errorf("strategies covered = %d, want %d", len(strats), len(core.Strategies))
	}
	// DGEMM (n=80, rank-16 panels) and Cholesky (n=96 trailing updates)
	// both exceed the mat parallel threshold, so faults land while row-band
	// workers are active.
	if !kernels[soak.KDGEMM] || !kernels[soak.KCholesky] {
		t.Errorf("parallel kernels missing from sweep: %v", kernels)
	}
	if injected == 0 {
		t.Error("no faults were injected")
	}
	t.Logf("\n%s", res.Table())
}
