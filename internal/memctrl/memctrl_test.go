package memctrl

import (
	"testing"

	"coopabft/internal/dram"
	"coopabft/internal/ecc"
)

func newCtl(def ecc.Scheme) *Controller {
	return New(dram.New(dram.DefaultConfig()), def)
}

func TestSchemeResolution(t *testing.T) {
	c := newCtl(ecc.Chipkill)
	idx, err := c.SetRegion(0x10000, 0x1000, ecc.None)
	if err != nil {
		t.Fatal(err)
	}
	if s := c.SchemeFor(0x10000); s != ecc.None {
		t.Errorf("inside region: %v", s)
	}
	if s := c.SchemeFor(0x10fff); s != ecc.None {
		t.Errorf("last byte of region: %v", s)
	}
	if s := c.SchemeFor(0x11000); s != ecc.Chipkill {
		t.Errorf("past region: %v", s)
	}
	if s := c.SchemeFor(0xffff); s != ecc.Chipkill {
		t.Errorf("before region: %v", s)
	}
	c.UpdateRegion(idx, ecc.SECDED)
	if s := c.SchemeFor(0x10000); s != ecc.SECDED {
		t.Errorf("after assign_ecc: %v", s)
	}
	c.ClearRegion(idx)
	if s := c.SchemeFor(0x10000); s != ecc.Chipkill {
		t.Errorf("after free_ecc: %v", s)
	}
}

func TestRegionRegisterExhaustion(t *testing.T) {
	c := newCtl(ecc.Chipkill)
	for i := 0; i < NumRegions; i++ {
		if _, err := c.SetRegion(uint64(i)*0x1000, 0x1000, ecc.None); err != nil {
			t.Fatalf("region %d: %v", i, err)
		}
	}
	if _, err := c.SetRegion(0x100000, 0x1000, ecc.None); err != ErrNoFreeRegion {
		t.Errorf("9th region err = %v, want ErrNoFreeRegion", err)
	}
	if got := len(c.Regions()); got != NumRegions {
		t.Errorf("Regions() = %d entries", got)
	}
	// Freeing one makes room again.
	c.ClearRegion(3)
	if _, err := c.SetRegion(0x100000, 0x1000, ecc.SECDED); err != nil {
		t.Errorf("after free: %v", err)
	}
}

func TestSingleBitCorrectedBySECDED(t *testing.T) {
	c := newCtl(ecc.SECDED)
	var repaired []uint64
	c.OnRepair = func(line uint64, diff [64]byte) { repaired = append(repaired, line) }
	var p Pattern
	p.Data[5] = 0x10 // single bit
	c.InjectFault(0x40, p)
	c.Access(0, 0x40, false, true)
	st := c.Stats()
	if st.CorrectedErrors != 1 || st.UncorrectableErrors != 0 {
		t.Errorf("stats = %+v", st)
	}
	if len(repaired) != 1 || repaired[0] != 0x40 {
		t.Errorf("repaired = %v", repaired)
	}
	if c.FaultyLines() != 0 {
		t.Error("pattern not cleared after correction")
	}
	if st.ECCEnergyJ <= 0 {
		t.Error("no correction energy accounted")
	}
}

func TestDoubleBitRaisesInterrupt(t *testing.T) {
	c := newCtl(ecc.SECDED)
	var recs []ErrorRecord
	c.OnUncorr = func(r ErrorRecord) { recs = append(recs, r) }
	var p Pattern
	p.Data[0] = 0x03 // two bits in word 0
	c.InjectFault(0x1000, p)
	c.Access(0, 0x1000, false, true)
	if len(recs) != 1 {
		t.Fatalf("interrupts = %d, want 1", len(recs))
	}
	if recs[0].PhysLine != 0x1000 || recs[0].Scheme != ecc.SECDED {
		t.Errorf("record = %+v", recs[0])
	}
	if c.FaultyLines() != 1 {
		t.Error("uncorrectable pattern should persist")
	}
	// The fault site is decoded for the OS.
	if recs[0].Location != c.Mem.Config().MapAddress(0x1000) {
		t.Error("fault-site location wrong")
	}
}

func TestChipkillCorrectsChipFailure(t *testing.T) {
	c := newCtl(ecc.Chipkill)
	var p Pattern
	p.Data[7] = 0xff // one whole symbol
	c.InjectFault(0x2000, p)
	c.Access(0, 0x2000, false, true)
	st := c.Stats()
	if st.CorrectedErrors != 1 || st.UncorrectableErrors != 0 {
		t.Errorf("stats = %+v", st)
	}
	if c.FaultyLines() != 0 {
		t.Error("not repaired")
	}
}

func TestChipkillDetectsScattered(t *testing.T) {
	c := newCtl(ecc.Chipkill)
	fired := 0
	c.OnUncorr = func(ErrorRecord) { fired++ }
	var p Pattern
	p.Data[1] = 0x01
	p.Data[9] = 0x01 // two symbols in the same half-line codeword
	c.InjectFault(0x3000, p)
	c.Access(0, 0x3000, false, true)
	if fired != 1 {
		t.Errorf("interrupts = %d", fired)
	}
}

func TestNoECCSilentPassthrough(t *testing.T) {
	c := newCtl(ecc.Chipkill)
	if _, err := c.SetRegion(0, 0x10000, ecc.None); err != nil {
		t.Fatal(err)
	}
	fired := 0
	c.OnUncorr = func(ErrorRecord) { fired++ }
	var p Pattern
	p.Data[0] = 0xff
	p.Data[8] = 0xff
	c.InjectFault(0x40, p)
	c.Access(0, 0x40, false, true)
	if fired != 0 {
		t.Error("no-ECC region raised an interrupt")
	}
	st := c.Stats()
	if st.SilentPassthrough != 1 {
		t.Errorf("passthrough = %d", st.SilentPassthrough)
	}
	if c.FaultyLines() != 1 {
		t.Error("pattern should persist under no ECC")
	}
}

func TestWritesAndPrefetchesSkipECCCheck(t *testing.T) {
	c := newCtl(ecc.SECDED)
	fired := 0
	c.OnUncorr = func(ErrorRecord) { fired++ }
	var p Pattern
	p.Data[0] = 0x03
	c.InjectFault(0x40, p)
	c.Access(0, 0x40, true, true)   // write
	c.Access(0, 0x40, false, false) // non-demand (writeback traffic)
	if fired != 0 {
		t.Errorf("ECC checked on write/non-demand paths: %d", fired)
	}
}

func TestChipkillChecksCompanionLine(t *testing.T) {
	c := newCtl(ecc.Chipkill)
	fired := 0
	c.OnUncorr = func(ErrorRecord) { fired++ }
	comp := c.Mem.Config().CompanionLine(0)
	var p Pattern
	p.Data[0] = 0x01
	p.Data[12] = 0x01
	c.InjectFault(comp, p)
	c.Access(0, 0, false, true) // demand on line 0 prefetches companion
	if fired != 1 {
		t.Errorf("companion line not checked: interrupts = %d", fired)
	}
}

func TestErrorRegisterOverflow(t *testing.T) {
	c := newCtl(ecc.SECDED)
	var p Pattern
	p.Data[0] = 0x03
	for i := 0; i < NumErrorRegisters+2; i++ {
		addr := uint64(i) * 64
		c.InjectFault(addr, p)
		c.Access(0, addr, false, true)
	}
	recs := c.ReadErrorRegisters()
	if len(recs) != NumErrorRegisters {
		t.Fatalf("registers hold %d records", len(recs))
	}
	// Oldest two were flushed: remaining start at line 2.
	if recs[0].PhysLine != 2*64 {
		t.Errorf("oldest surviving record = %#x", recs[0].PhysLine)
	}
	if c.DroppedRecords() != 2 {
		t.Errorf("dropped = %d", c.DroppedRecords())
	}
	// Registers are cleared after the OS reads them.
	if len(c.ReadErrorRegisters()) != 0 {
		t.Error("registers not cleared after read")
	}
}

func TestInjectFaultXORsAndCancels(t *testing.T) {
	c := newCtl(ecc.SECDED)
	var p Pattern
	p.Data[3] = 0x08
	c.InjectFault(0x40, p)
	c.InjectFault(0x40, p) // same flip twice = restored
	if c.FaultyLines() != 0 {
		t.Error("double injection did not cancel")
	}
}

func TestClearFault(t *testing.T) {
	c := newCtl(ecc.SECDED)
	var p Pattern
	p.Data[0] = 0x03
	c.InjectFault(0x80, p)
	c.ClearFault(0x80 + 13) // any address within the line
	if c.FaultyLines() != 0 {
		t.Error("ClearFault did not clear")
	}
}

func TestMiscorrectionLeavesResidual(t *testing.T) {
	// Find a 3-bit data pattern in one word that SECDED miscorrects
	// (odd-weight syndrome matching some column).
	c := newCtl(ecc.SECDED)
	found := false
	for b1 := 0; b1 < 24 && !found; b1++ {
		for b2 := b1 + 1; b2 < 24 && !found; b2++ {
			for b3 := b2 + 1; b3 < 24 && !found; b3++ {
				w := uint64(1)<<b1 | uint64(1)<<b2 | uint64(1)<<b3
				_, _, r := ecc.SECDEDDecode(w, 0)
				if r == ecc.Corrected {
					var p Pattern
					for i := 0; i < 8; i++ {
						p.Data[i] = byte(w >> (8 * i))
					}
					c.InjectFault(0x40, p)
					c.Access(0, 0x40, false, true)
					st := c.Stats()
					if st.SilentMiscorrects != 1 {
						t.Errorf("miscorrect not counted: %+v", st)
					}
					if c.FaultyLines() != 1 {
						t.Error("residual corruption should remain")
					}
					found = true
				}
			}
		}
	}
	if !found {
		t.Skip("no miscorrectable 3-bit pattern in the searched range")
	}
}

func TestUpdateRegionPanicsOnInvalid(t *testing.T) {
	c := newCtl(ecc.SECDED)
	defer func() {
		if recover() == nil {
			t.Fatal("UpdateRegion on free register did not panic")
		}
	}()
	c.UpdateRegion(0, ecc.None)
}

func TestScrubberFindsAndFixesLatentErrors(t *testing.T) {
	c := newCtl(ecc.SECDED)
	s := NewScrubber(c, 16)
	s.AddRange(0, 4096) // 64 lines

	// A latent single-bit error deep in the range: correctable, but only
	// once something reads the line.
	var p Pattern
	p.Data[0] = 0x10
	c.InjectFault(40*64, p)

	found := s.ScrubAll(0)
	if found != 1 {
		t.Errorf("scrub found %d faulty lines, want 1", found)
	}
	if st := c.Stats(); st.CorrectedErrors != 1 {
		t.Errorf("stats = %+v", st)
	}
	if c.FaultyLines() != 0 {
		t.Error("latent error not repaired by the patrol")
	}
	if s.Passes != 1 || s.LinesScrubbed != 64 {
		t.Errorf("scrubber stats: passes=%d lines=%d", s.Passes, s.LinesScrubbed)
	}
}

func TestScrubberIncrementalPasses(t *testing.T) {
	c := newCtl(ecc.SECDED)
	s := NewScrubber(c, 10)
	s.AddRange(0, 64*25) // 25 lines
	for i := 0; i < 5; i++ {
		s.Scrub(0)
	}
	if s.LinesScrubbed != 50 {
		t.Errorf("lines scrubbed = %d", s.LinesScrubbed)
	}
	if s.Passes != 2 {
		t.Errorf("passes = %d, want 2 (50/25)", s.Passes)
	}
}

func TestScrubberUncorrectableRaisesInterrupt(t *testing.T) {
	c := newCtl(ecc.SECDED)
	fired := 0
	c.OnUncorr = func(ErrorRecord) { fired++ }
	s := NewScrubber(c, 8)
	s.AddRange(0, 512)
	var p Pattern
	p.Data[0] = 0x03 // double bit
	c.InjectFault(128, p)
	s.ScrubAll(0)
	if fired != 1 {
		t.Errorf("interrupts = %d", fired)
	}
}

func TestScrubberEmptySafe(t *testing.T) {
	c := newCtl(ecc.SECDED)
	s := NewScrubber(c, 8)
	if s.Scrub(0) != 0 || s.ScrubAll(0) != 0 {
		t.Error("empty scrubber reported findings")
	}
}

func TestScrubberMultipleRanges(t *testing.T) {
	c := newCtl(ecc.Chipkill)
	s := NewScrubber(c, 1000)
	s.AddRange(0, 256)
	s.AddRange(1<<20, 256)
	var p Pattern
	p.Data[7] = 0xff // chip failure: chipkill corrects
	c.InjectFault(1<<20+64, p)
	// The patrol may repair the line via a lock-stepped companion prefetch
	// one step before its own cursor reaches it; what matters is that the
	// latent error is gone after one full pass.
	s.ScrubAll(0)
	if c.FaultyLines() != 0 {
		t.Error("second-range fault not repaired")
	}
	if st := c.Stats(); st.CorrectedErrors != 1 {
		t.Errorf("stats = %+v", st)
	}
}
