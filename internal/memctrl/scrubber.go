package memctrl

// Scrubber is the patrol scrubber common in chipkill-class servers: it
// walks physical memory in the background, demand-checking each line's ECC
// so latent errors are found (and single errors corrected) before they can
// accumulate into uncorrectable multi-bit patterns. The paper's ASE
// configuration implicitly relies on this behavior — Case 1 errors are
// corrected "before the application consumes them" — and the threshold
// experiments use it to model that path explicitly.
type Scrubber struct {
	Ctl *Controller
	// LinesPerPass bounds one Scrub invocation (a patrol interval's worth
	// of traffic).
	LinesPerPass int

	cursor  uint64
	regions []Region // physical ranges to patrol

	// Stats
	LinesScrubbed uint64
	Passes        uint64
}

// NewScrubber builds a scrubber over the controller, patrolling the given
// physical ranges (typically the node's allocated frames).
func NewScrubber(ctl *Controller, linesPerPass int) *Scrubber {
	return &Scrubber{Ctl: ctl, LinesPerPass: linesPerPass}
}

// AddRange registers a physical range for patrol.
func (s *Scrubber) AddRange(base, size uint64) {
	s.regions = append(s.regions, Region{Base: base &^ 63, Size: (size + 63) &^ 63, valid: true})
}

// lines returns the total patrolled line count.
func (s *Scrubber) lines() uint64 {
	var n uint64
	for _, r := range s.regions {
		n += r.Size / 64
	}
	return n
}

// lineAt maps a patrol cursor position to a physical line address.
func (s *Scrubber) lineAt(idx uint64) uint64 {
	for _, r := range s.regions {
		n := r.Size / 64
		if idx < n {
			return r.Base + idx*64
		}
		idx -= n
	}
	return 0
}

// Scrub advances the patrol by LinesPerPass lines at the given cycle,
// demand-reading each so the controller's ECC path runs. Returns how many
// faulty lines were encountered this pass.
func (s *Scrubber) Scrub(now uint64) int {
	total := s.lines()
	if total == 0 || s.LinesPerPass <= 0 {
		return 0
	}
	found := 0
	for i := 0; i < s.LinesPerPass; i++ {
		addr := s.lineAt(s.cursor % total)
		s.cursor++
		if _, ok := s.Ctl.faults[addr]; ok {
			found++
		}
		s.Ctl.Access(now, addr, false, true)
		s.LinesScrubbed++
		if s.cursor%total == 0 {
			s.Passes++
		}
	}
	return found
}

// ScrubAll patrols every registered line once (a full pass).
func (s *Scrubber) ScrubAll(now uint64) int {
	total := s.lines()
	if total == 0 {
		return 0
	}
	saved := s.LinesPerPass
	s.LinesPerPass = int(total)
	defer func() { s.LinesPerPass = saved }()
	return s.Scrub(now)
}
