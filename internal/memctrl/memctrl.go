// Package memctrl implements the enhanced memory controller of §3.1: it
// resolves the ECC scheme of every request against a small set of
// software-programmable ECC address-range registers, runs the real ECC
// codecs on faulty lines, records uncorrectable-error fault sites in error
// registers, and raises an interrupt for the OS.
//
// Fault handling exploits code linearity: for a linear code, the decode
// outcome of (codeword + e) depends only on the error pattern e, so the
// controller tracks the XOR pattern injected into each line and classifies
// it with the genuine codec on a zero codeword. Corrections are written
// through to the application data via the repair callback; miscorrections
// (the codec "fixing" the wrong bit of a wide error) leave a residual
// pattern behind, exactly as real hardware would.
package memctrl

import (
	"errors"
	"fmt"

	"coopabft/internal/dram"
	"coopabft/internal/ecc"
)

// NumRegions is the number of ECC address ranges the controller supports:
// "16 ECC registers for setting 8 address ranges" (§3.2.1).
const NumRegions = 8

// NumErrorRegisters is n in §3.1: registers recording recent fault sites so
// that n/2 or more error events survive until ABFT's next examination.
const NumErrorRegisters = 6

// ErrNoFreeRegion is returned when all ECC region registers are in use.
var ErrNoFreeRegion = errors.New("memctrl: all ECC region registers in use")

// Region is one programmed ECC address range.
type Region struct {
	Base, Size uint64
	Scheme     ecc.Scheme
	valid      bool
}

func (r Region) contains(addr uint64) bool {
	return r.valid && addr >= r.Base && addr < r.Base+r.Size
}

// Pattern is the XOR error pattern of one 64-byte line and its redundancy.
type Pattern struct {
	Data  [64]byte
	Check [8]byte
}

// IsZero reports whether no error bits remain.
func (p *Pattern) IsZero() bool {
	for _, b := range p.Data {
		if b != 0 {
			return false
		}
	}
	for _, b := range p.Check {
		if b != 0 {
			return false
		}
	}
	return true
}

// ErrorRecord is the content of one error register: the located fault site
// of an ECC-uncorrectable error.
type ErrorRecord struct {
	PhysLine uint64 // line-aligned physical address
	Location dram.Location
	Cycle    uint64
	Scheme   ecc.Scheme
}

// Stats counts controller-level ECC events.
type Stats struct {
	CorrectedErrors     uint64
	UncorrectableErrors uint64
	SilentMiscorrects   uint64
	SilentPassthrough   uint64 // faulty lines read under no-ECC
	ECCEnergyJ          float64
}

// Controller is the enhanced memory controller.
type Controller struct {
	Mem *dram.System

	defaultScheme ecc.Scheme
	regions       [NumRegions]Region

	faults map[uint64]*Pattern // physical line address → residual pattern

	// Policy, when set, overrides per-access scheme resolution — used by
	// the DGMS baseline, whose hardware predictor (not software region
	// registers) picks the protection granularity.
	Policy func(addr uint64) (ecc.Scheme, bool)

	errRegs  []ErrorRecord
	dropped  uint64 // uncorrectable records lost to register overflow
	OnUncorr func(rec ErrorRecord)
	// OnRepair is invoked when hardware corrects bits in a line so the
	// simulated application data can be restored; diff is the XOR mask the
	// controller applied.
	OnRepair func(physLine uint64, diff [64]byte)

	stats Stats
}

// New builds a controller over mem with the given default (strong) scheme.
func New(mem *dram.System, defaultScheme ecc.Scheme) *Controller {
	return &Controller{
		Mem:           mem,
		defaultScheme: defaultScheme,
		faults:        make(map[uint64]*Pattern),
	}
}

// DefaultScheme returns the scheme applied outside all programmed regions.
func (c *Controller) DefaultScheme() ecc.Scheme { return c.defaultScheme }

// SetRegion programs a free ECC region register pair with [base, base+size)
// → scheme and returns the register index.
func (c *Controller) SetRegion(base, size uint64, scheme ecc.Scheme) (int, error) {
	for i := range c.regions {
		if !c.regions[i].valid {
			c.regions[i] = Region{Base: base, Size: size, Scheme: scheme, valid: true}
			return i, nil
		}
	}
	return -1, ErrNoFreeRegion
}

// GrowRegion extends register idx to cover [Base, newEnd) — used when the
// OS merges adjacent same-scheme allocations into one register (§3.2.1:
// "their address ranges may be combined to use the same ECC registers").
func (c *Controller) GrowRegion(idx int, newEnd uint64) {
	if idx < 0 || idx >= NumRegions || !c.regions[idx].valid {
		panic(fmt.Sprintf("memctrl: GrowRegion(%d) on invalid register", idx))
	}
	r := &c.regions[idx]
	if newEnd <= r.Base+r.Size {
		return
	}
	r.Size = newEnd - r.Base
}

// RegionAt returns the programmed region covering addr and its register
// index, if any.
func (c *Controller) RegionAt(addr uint64) (Region, int, bool) {
	for i, r := range c.regions {
		if r.contains(addr) {
			return r, i, true
		}
	}
	return Region{}, -1, false
}

// UpdateRegion reprograms the scheme of register idx (assign_ecc).
func (c *Controller) UpdateRegion(idx int, scheme ecc.Scheme) {
	if idx < 0 || idx >= NumRegions || !c.regions[idx].valid {
		panic(fmt.Sprintf("memctrl: UpdateRegion(%d) on invalid register", idx))
	}
	c.regions[idx].Scheme = scheme
}

// ClearRegion frees register idx (free_ecc).
func (c *Controller) ClearRegion(idx int) {
	if idx < 0 || idx >= NumRegions {
		panic(fmt.Sprintf("memctrl: ClearRegion(%d) out of range", idx))
	}
	c.regions[idx] = Region{}
}

// Regions returns the currently programmed regions (valid entries only).
func (c *Controller) Regions() []Region {
	var out []Region
	for _, r := range c.regions {
		if r.valid {
			out = append(out, r)
		}
	}
	return out
}

// SchemeFor resolves the ECC scheme protecting addr.
func (c *Controller) SchemeFor(addr uint64) ecc.Scheme {
	if c.Policy != nil {
		if s, ok := c.Policy(addr); ok {
			return s
		}
	}
	for _, r := range c.regions {
		if r.contains(addr) {
			return r.Scheme
		}
	}
	return c.defaultScheme
}

// InjectFault XORs an error pattern into the stored line containing addr.
// Called by the fault injector; app-visible corruption is the injector's
// responsibility.
func (c *Controller) InjectFault(addr uint64, p Pattern) {
	line := addr &^ 63
	cur, ok := c.faults[line]
	if !ok {
		cp := p
		c.faults[line] = &cp
		return
	}
	for i := range cur.Data {
		cur.Data[i] ^= p.Data[i]
	}
	for i := range cur.Check {
		cur.Check[i] ^= p.Check[i]
	}
	if cur.IsZero() {
		delete(c.faults, line)
	}
}

// FaultsInRange returns the line addresses with residual patterns inside
// [base, base+size) — used by the OS when retiring a page.
func (c *Controller) FaultsInRange(base, size uint64) []uint64 {
	var out []uint64
	for line := range c.faults {
		if line >= base && line < base+size {
			out = append(out, line)
		}
	}
	return out
}

// MoveFault relocates a line's residual pattern to a new physical address —
// the data-migration path of page retirement: corrupted bits travel with
// the copied data.
func (c *Controller) MoveFault(oldAddr, newAddr uint64) {
	oldLine := oldAddr &^ 63
	p, ok := c.faults[oldLine]
	if !ok {
		return
	}
	delete(c.faults, oldLine)
	c.faults[newAddr&^63] = p
}

// ClearFault removes any residual pattern on addr's line — used when
// software (ABFT) overwrites the corrupted data.
func (c *Controller) ClearFault(addr uint64) {
	delete(c.faults, addr&^63)
}

// FaultyLines returns the number of lines with residual error patterns.
func (c *Controller) FaultyLines() int { return len(c.faults) }

// Access services one cacheline request: timing/energy via the DRAM model,
// then — for demand reads — ECC detection and correction.
func (c *Controller) Access(now uint64, addr uint64, write bool, demand bool) dram.AccessResult {
	scheme := c.SchemeFor(addr)
	res := c.Mem.Access(now, addr, write, scheme)
	if !write && demand {
		c.checkECC(addr, scheme, res.Complete)
		// A chipkill access also returns (and therefore checks) the
		// companion line of the lock-stepped pair.
		if scheme == ecc.Chipkill {
			comp := c.Mem.Config().CompanionLine(addr)
			c.checkECC(comp, c.SchemeFor(comp), res.Complete)
		}
	}
	return res
}

// checkECC runs the scheme's codec against the line's residual pattern.
func (c *Controller) checkECC(addr uint64, scheme ecc.Scheme, cycle uint64) {
	line := addr &^ 63
	p, ok := c.faults[line]
	if !ok {
		return
	}
	if scheme == ecc.None {
		// No ECC: corruption flows to software unobserved.
		c.stats.SilentPassthrough++
		return
	}
	result, residual := classify(scheme, p)
	switch result {
	case ecc.Corrected:
		diff := xorDiff(p, residual)
		c.repair(line, diff, residual)
		c.stats.CorrectedErrors++
		c.stats.ECCEnergyJ += scheme.CorrectionEnergyJ()
	case ecc.Undetected:
		// The codec "corrected" the wrong bits: write the miscorrection
		// through and keep the residual pattern as silent corruption.
		diff := xorDiff(p, residual)
		c.repair(line, diff, residual)
		c.stats.SilentMiscorrects++
		c.stats.ECCEnergyJ += scheme.CorrectionEnergyJ()
	case ecc.Detected:
		c.stats.UncorrectableErrors++
		rec := ErrorRecord{
			PhysLine: line,
			Location: c.Mem.Config().MapAddress(line),
			Cycle:    cycle,
			Scheme:   scheme,
		}
		c.pushErrorRecord(rec)
		if c.OnUncorr != nil {
			c.OnUncorr(rec)
		}
	}
}

// repair applies the hardware correction: update the fault table and let
// the owner patch application data.
func (c *Controller) repair(line uint64, diff Pattern, residual Pattern) {
	if residual.IsZero() {
		delete(c.faults, line)
	} else {
		r := residual
		c.faults[line] = &r
	}
	if c.OnRepair != nil {
		c.OnRepair(line, diff.Data)
	}
}

// classify runs the real codec over the pattern on a zero codeword and
// returns the overall outcome plus the residual error pattern after any
// corrections the codec applied. A "Corrected" verdict with a nonzero
// residual in some codeword means the hardware miscorrected.
func classify(scheme ecc.Scheme, p *Pattern) (ecc.Result, Pattern) {
	var residual Pattern
	residual = *p
	switch scheme {
	case ecc.SECDED:
		worst := ecc.OK
		anyMiscorrect := false
		for w := 0; w < 8; w++ {
			var word uint64
			for b := 0; b < 8; b++ {
				word |= uint64(p.Data[w*8+b]) << (8 * b)
			}
			chk := p.Check[w]
			if word == 0 && chk == 0 {
				continue
			}
			fixed, fixedChk, r := ecc.SECDEDDecode(word, chk)
			if r == ecc.Corrected {
				// Residual after the codec's fix.
				for b := 0; b < 8; b++ {
					residual.Data[w*8+b] = byte(fixed >> (8 * b))
				}
				residual.Check[w] = fixedChk
				if fixed != 0 || fixedChk != 0 {
					anyMiscorrect = true
				}
			}
			if r > worst {
				worst = r
			}
		}
		if worst == ecc.Corrected && anyMiscorrect {
			return ecc.Undetected, residual
		}
		return worst, residual
	case ecc.Chipkill:
		worst := ecc.OK
		anyMiscorrect := false
		for h := 0; h < 2; h++ {
			var data [ecc.ChipkillData]byte
			var chk [ecc.ChipkillCheck]byte
			copy(data[:], p.Data[h*32:(h+1)*32])
			copy(chk[:], p.Check[h*4:(h+1)*4])
			if allZero(data[:]) && allZero(chk[:]) {
				continue
			}
			r, _ := ecc.ChipkillDecode(&data, &chk)
			if r == ecc.Corrected {
				copy(residual.Data[h*32:(h+1)*32], data[:])
				copy(residual.Check[h*4:(h+1)*4], chk[:])
				if !allZero(data[:]) || !allZero(chk[:]) {
					anyMiscorrect = true
				}
			}
			if r > worst {
				worst = r
			}
		}
		if worst == ecc.Corrected && anyMiscorrect {
			return ecc.Undetected, residual
		}
		return worst, residual
	default:
		return ecc.OK, residual
	}
}

func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

// xorDiff returns before XOR after — the bits the codec flipped in the
// stored line.
func xorDiff(before *Pattern, after Pattern) Pattern {
	var d Pattern
	for i := range d.Data {
		d.Data[i] = before.Data[i] ^ after.Data[i]
	}
	for i := range d.Check {
		d.Check[i] = before.Check[i] ^ after.Check[i]
	}
	return d
}

// pushErrorRecord appends to the error registers, evicting the oldest when
// all n are full (new errors can flush old ones, §3.1).
func (c *Controller) pushErrorRecord(rec ErrorRecord) {
	if len(c.errRegs) == NumErrorRegisters {
		copy(c.errRegs, c.errRegs[1:])
		c.errRegs = c.errRegs[:NumErrorRegisters-1]
		c.dropped++
	}
	c.errRegs = append(c.errRegs, rec)
}

// ReadErrorRegisters returns the recorded fault sites (memory-mapped
// register read by the OS) and clears them.
func (c *Controller) ReadErrorRegisters() []ErrorRecord {
	out := make([]ErrorRecord, len(c.errRegs))
	copy(out, c.errRegs)
	c.errRegs = c.errRegs[:0]
	return out
}

// DroppedRecords returns how many uncorrectable-error records were lost to
// error-register overflow.
func (c *Controller) DroppedRecords() uint64 { return c.dropped }

// Stats returns the ECC event counters.
func (c *Controller) Stats() Stats { return c.stats }
