package osmodel

// Page retirement and data migration (§3.1): when a frame keeps producing
// uncorrectable errors — the signature of a hard fault — the OS remaps its
// virtual page to a spare frame and migrates the data, so the application
// stops being interrupted by the same dying cells.

// DefaultRetireThreshold is the number of uncorrectable-error events on one
// frame after which it is retired.
const DefaultRetireThreshold = 3

// RetireInfo records one retirement event.
type RetireInfo struct {
	VPage              uint64
	OldFrame, NewFrame uint64
	MovedFaults        int
}

// frameErrorCount returns how many uncorrectable events frame has produced.
func (o *OS) frameErrorCount(frame uint64) int { return o.frameErrs[frame] }

// noteFrameError bumps a frame's error count and retires it past the
// threshold. Called from the interrupt handler.
func (o *OS) noteFrameError(paddr uint64) {
	if o.RetireThreshold <= 0 {
		return
	}
	frame := (paddr - physBase) / PageSize
	o.frameErrs[frame]++
	if o.frameErrs[frame] >= o.RetireThreshold {
		o.retireFrame(frame)
	}
}

// retireFrame remaps the frame's virtual page onto a fresh spare frame,
// migrates residual fault state with the data, and re-establishes the ECC
// scheme of the owning allocation on the new frame.
func (o *OS) retireFrame(frame uint64) {
	vpage, ok := o.frmToPage[frame]
	if !ok {
		return
	}
	newFrame := o.nextFrame
	o.nextFrame++
	o.pageToFrm[vpage] = newFrame
	delete(o.frmToPage, frame)
	o.frmToPage[newFrame] = vpage
	delete(o.frameErrs, frame)
	o.retired = append(o.retired, frame)
	// TLB shootdown: cached translations for this page are now stale.
	if o.OnRemap != nil {
		o.OnRemap(vpage)
	}

	// Data migration: corrupted bits travel with the copy.
	oldBase := physBase + frame*PageSize
	newBase := physBase + newFrame*PageSize
	moved := 0
	for _, line := range o.Ctl.FaultsInRange(oldBase, PageSize) {
		o.Ctl.MoveFault(line, newBase+(line-oldBase))
		moved++
	}

	info := RetireInfo{VPage: vpage, OldFrame: frame, NewFrame: newFrame, MovedFaults: moved}
	o.retirements = append(o.retirements, info)
	o.stats.PagesRetired++

	// The new frame sits outside the allocation's contiguous MC region; if
	// the owner runs relaxed ECC, program a register for it (falling back
	// silently to the default strong scheme when registers are exhausted —
	// protection can only get stronger).
	if a, ok := o.AllocationAt(vpage * PageSize); ok && a.regIdx >= 0 && a.Scheme != o.Ctl.DefaultScheme() {
		if idx, err := o.Ctl.SetRegion(newBase, PageSize, a.Scheme); err == nil {
			a.extraRegs = append(a.extraRegs, idx)
		}
	}
}

// Retirements returns the retirement log.
func (o *OS) Retirements() []RetireInfo { return o.retirements }

// RetiredFrames returns the physical frames taken out of service.
func (o *OS) RetiredFrames() []uint64 { return o.retired }
