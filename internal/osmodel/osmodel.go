// Package osmodel implements the system-software support of §3.2.1: the
// three ECC control APIs (malloc_ecc / free_ecc / assign_ecc), virtual-to-
// physical page mapping with contiguous physical allocation, the
// ECC-error interrupt handler that derives physical addresses from MC fault
// sites, the sysfs-like channel that exposes corrupted virtual addresses to
// ABFT, and the panic-mode fallback for errors outside ABFT protection.
package osmodel

import (
	"errors"
	"fmt"

	"coopabft/internal/ecc"
	"coopabft/internal/memctrl"
	"coopabft/internal/trace"
)

// PageSize is the page-frame size.
const PageSize = trace.PageSize

// physBase separates the physical address space from the virtual one so
// that mixing them up is detected immediately.
const physBase = 1 << 40

// ErrNotMapped is returned when translating an unmapped address.
var ErrNotMapped = errors.New("osmodel: address not mapped")

// Allocation describes one malloc_ecc (or plain malloc) result.
type Allocation struct {
	Name   string
	Region trace.Region // virtual range, tagged for classification
	Scheme ecc.Scheme
	// regIdx is the MC ECC register backing this allocation, −1 for
	// default-protected allocations. extraRegs holds registers programmed
	// for pages retired out of the contiguous range.
	regIdx    int
	extraRegs []int
	freed     bool
}

// VBase returns the virtual base address.
func (a *Allocation) VBase() uint64 { return a.Region.Base }

// Corrupted is one entry of the kernel/user shared error list (the sysfs
// channel of §3.2.1): a corrupted location ABFT should repair.
type Corrupted struct {
	VirtAddr uint64 // virtual address of the corrupted line
	PhysLine uint64
	Alloc    *Allocation
	Cycle    uint64
}

// Stats counts OS-level resilience events.
type Stats struct {
	Interrupts     uint64
	ExposedToABFT  uint64
	Panics         uint64
	PagesAllocated uint64
	PagesRetired   uint64
}

// OS is the modeled operating system.
type OS struct {
	Ctl   *memctrl.Controller
	Space *trace.Space // virtual address space

	nextFrame uint64
	pageToFrm map[uint64]uint64 // vpage index → physical frame index
	frmToPage map[uint64]uint64
	allocs    []*Allocation

	pending  []Corrupted
	panicked bool
	panicRec []memctrl.ErrorRecord

	regRefs map[int]int // ECC register index → allocations sharing it

	// OnRemap, when set, is invoked after a page is remapped so hardware
	// translation caches (the machine's TLB) can be shot down.
	OnRemap func(vpage uint64)
	// RetireThreshold is the per-frame uncorrectable-error count that
	// triggers page retirement (0 disables retirement).
	RetireThreshold int
	frameErrs       map[uint64]int
	retired         []uint64
	retirements     []RetireInfo

	stats Stats
}

// New builds an OS over the controller and wires the interrupt line.
func New(ctl *memctrl.Controller) *OS {
	o := &OS{
		Ctl:       ctl,
		Space:     trace.NewSpace(),
		pageToFrm: make(map[uint64]uint64),
		frmToPage: make(map[uint64]uint64),
		regRefs:   make(map[int]int),

		RetireThreshold: DefaultRetireThreshold,
		frameErrs:       make(map[uint64]int),
	}
	ctl.OnUncorr = o.HandleInterrupt
	return o
}

// Malloc allocates size bytes under the node's default (strong) ECC.
func (o *OS) Malloc(name string, size uint64) *Allocation {
	return o.alloc(name, size, o.Ctl.DefaultScheme(), false, false)
}

// MallocECC implements malloc_ecc: contiguous physical pages whose address
// range and scheme are programmed into the MC's ECC registers. The abft
// flag tags the region for Table 4 classification and interrupt routing.
func (o *OS) MallocECC(name string, size uint64, scheme ecc.Scheme, abft bool) (*Allocation, error) {
	a := o.alloc(name, size, scheme, abft, true)
	if a == nil {
		return nil, memctrl.ErrNoFreeRegion
	}
	return a, nil
}

func (o *OS) alloc(name string, size uint64, scheme ecc.Scheme, abft, programMC bool) *Allocation {
	region := o.Space.Alloc(name, size, abft)
	pages := region.Size / PageSize
	// Contiguous physical frames (malloc_ecc requirement).
	baseFrame := o.nextFrame
	for p := uint64(0); p < pages; p++ {
		vpage := region.Base/PageSize + p
		frame := baseFrame + p
		o.pageToFrm[vpage] = frame
		o.frmToPage[frame] = vpage
	}
	o.nextFrame += pages
	o.stats.PagesAllocated += pages

	a := &Allocation{Name: name, Region: region, Scheme: scheme, regIdx: -1}
	if programMC {
		physStart := physBase + baseFrame*PageSize
		// Merge with an adjacent same-scheme region when possible, so
		// several ABFT structures share one ECC register (§3.2.1).
		if physStart > 0 {
			if r, idx, ok := o.Ctl.RegionAt(physStart - 1); ok &&
				r.Scheme == scheme && r.Base+r.Size == physStart {
				o.Ctl.GrowRegion(idx, physStart+pages*PageSize)
				a.regIdx = idx
				o.regRefs[idx]++
				o.allocs = append(o.allocs, a)
				return a
			}
		}
		idx, err := o.Ctl.SetRegion(physStart, pages*PageSize, scheme)
		if err != nil {
			// Undo nothing: virtual space is cheap; report failure.
			return nil
		}
		a.regIdx = idx
		o.regRefs[idx] = 1
	}
	o.allocs = append(o.allocs, a)
	return a
}

// FreeECC implements free_ecc: releases the MC ECC register. (The simulated
// address space is not recycled; allocations are long-lived in these
// workloads.)
func (o *OS) FreeECC(a *Allocation) {
	if a.freed {
		panic(fmt.Sprintf("osmodel: double free of %q", a.Name))
	}
	a.freed = true
	for _, idx := range a.extraRegs {
		o.Ctl.ClearRegion(idx)
	}
	a.extraRegs = nil
	if a.regIdx >= 0 {
		o.regRefs[a.regIdx]--
		if o.regRefs[a.regIdx] <= 0 {
			o.Ctl.ClearRegion(a.regIdx)
			delete(o.regRefs, a.regIdx)
		}
		a.regIdx = -1
	}
}

// AssignECC implements assign_ecc: dynamically changes the scheme of an
// allocation made with MallocECC, including any registers covering pages
// retired out of the original contiguous range.
func (o *OS) AssignECC(a *Allocation, scheme ecc.Scheme) {
	if a.regIdx < 0 {
		panic(fmt.Sprintf("osmodel: AssignECC on %q, which was not allocated with malloc_ecc", a.Name))
	}
	a.Scheme = scheme
	o.Ctl.UpdateRegion(a.regIdx, scheme)
	for _, idx := range a.extraRegs {
		o.Ctl.UpdateRegion(idx, scheme)
	}
}

// Translate converts a virtual address to physical.
func (o *OS) Translate(vaddr uint64) (uint64, error) {
	frame, ok := o.pageToFrm[vaddr/PageSize]
	if !ok {
		return 0, ErrNotMapped
	}
	return physBase + frame*PageSize + vaddr%PageSize, nil
}

// PhysToVirt converts a physical address back to virtual — the derivation
// the interrupt handler performs.
func (o *OS) PhysToVirt(paddr uint64) (uint64, error) {
	if paddr < physBase {
		return 0, ErrNotMapped
	}
	off := paddr - physBase
	vpage, ok := o.frmToPage[off/PageSize]
	if !ok {
		return 0, ErrNotMapped
	}
	return vpage*PageSize + off%PageSize, nil
}

// AllocationAt returns the allocation owning a virtual address.
func (o *OS) AllocationAt(vaddr uint64) (*Allocation, bool) {
	for _, a := range o.allocs {
		if !a.freed && a.Region.Contains(vaddr) {
			return a, true
		}
	}
	return nil, false
}

// HandleInterrupt is the ECC-error interrupt handler: it reads the fault
// site from the (conceptually memory-mapped) error registers, derives the
// physical address via the MC address-mapping scheme, maps it to a virtual
// address, and either exposes it to ABFT through the shared memory list or
// enters panic mode.
func (o *OS) HandleInterrupt(rec memctrl.ErrorRecord) {
	o.stats.Interrupts++
	// Derive the physical address from the DRAM fault site, as the kernel
	// module of §3.2.1 would; the register's cached PhysLine cross-checks
	// the derivation.
	derived := o.Ctl.Mem.Config().UnmapLocation(rec.Location)
	if derived != rec.PhysLine {
		panic(fmt.Sprintf("osmodel: fault-site derivation mismatch: %#x vs %#x", derived, rec.PhysLine))
	}
	vaddr, err := o.PhysToVirt(derived)
	if err != nil {
		o.enterPanic(rec)
		return
	}
	// Track hard-fault symptoms after translation: retirement remaps the
	// page, so the derivation above must use the pre-retirement mapping.
	o.noteFrameError(derived)
	a, ok := o.AllocationAt(vaddr)
	if !ok || !a.Region.ABFT {
		o.enterPanic(rec)
		return
	}
	o.pending = append(o.pending, Corrupted{
		VirtAddr: vaddr,
		PhysLine: derived,
		Alloc:    a,
		Cycle:    rec.Cycle,
	})
	o.stats.ExposedToABFT++
}

func (o *OS) enterPanic(rec memctrl.ErrorRecord) {
	o.panicked = true
	o.panicRec = append(o.panicRec, rec)
	o.stats.Panics++
}

// PendingCorruptions drains the shared error list — ABFT's simplified
// verification reads this instead of recomputing checksums.
func (o *OS) PendingCorruptions() []Corrupted {
	out := o.pending
	o.pending = nil
	return out
}

// PeekCorruptions returns the list without draining it.
func (o *OS) PeekCorruptions() []Corrupted { return o.pending }

// Panicked reports whether an unprotected uncorrectable error occurred; a
// real system would now restart from its last checkpoint.
func (o *OS) Panicked() bool { return o.panicked }

// PanicRecords returns the errors that caused panic mode.
func (o *OS) PanicRecords() []memctrl.ErrorRecord { return o.panicRec }

// ClearPanic resets panic mode (models the post-restart state).
func (o *OS) ClearPanic() {
	o.panicked = false
	o.panicRec = nil
}

// Stats returns OS event counters.
func (o *OS) Stats() Stats { return o.stats }

// InjectAt lets fault injectors corrupt the line containing the given
// virtual address: it translates and forwards to the MC fault table.
func (o *OS) InjectAt(vaddr uint64, p memctrl.Pattern) error {
	paddr, err := o.Translate(vaddr)
	if err != nil {
		return err
	}
	o.Ctl.InjectFault(paddr, p)
	return nil
}

// ClearFaultAt removes residual fault state on the line holding vaddr
// (called after software overwrites corrupted data).
func (o *OS) ClearFaultAt(vaddr uint64) error {
	paddr, err := o.Translate(vaddr)
	if err != nil {
		return err
	}
	o.Ctl.ClearFault(paddr)
	return nil
}
