package osmodel

import (
	"testing"

	"coopabft/internal/ecc"
	"coopabft/internal/memctrl"
)

// hitFrame plants an uncorrectable error on vaddr's line and demand-reads
// it, driving one interrupt.
func hitFrame(t *testing.T, o *OS, vaddr uint64) {
	t.Helper()
	var p memctrl.Pattern
	p.Data[0] = 0x03
	if err := o.InjectAt(vaddr, p); err != nil {
		t.Fatal(err)
	}
	paddr, err := o.Translate(vaddr)
	if err != nil {
		t.Fatal(err)
	}
	o.Ctl.Access(0, paddr, false, true)
	// ABFT "repairs" it so the next hit is a fresh event.
	if err := o.ClearFaultAt(vaddr); err != nil {
		t.Fatal(err)
	}
}

func TestPageRetiredAfterThreshold(t *testing.T) {
	o := newOS(ecc.SECDED)
	a, err := o.MallocECC("m", 2*PageSize, ecc.SECDED, true)
	if err != nil {
		t.Fatal(err)
	}
	vaddr := a.VBase() + 100
	oldP, _ := o.Translate(vaddr)

	for i := 0; i < DefaultRetireThreshold-1; i++ {
		hitFrame(t, o, vaddr)
		if o.Stats().PagesRetired != 0 {
			t.Fatalf("retired after %d events", i+1)
		}
	}
	hitFrame(t, o, vaddr)
	if o.Stats().PagesRetired != 1 {
		t.Fatalf("not retired after %d events", DefaultRetireThreshold)
	}
	newP, err := o.Translate(vaddr)
	if err != nil {
		t.Fatal(err)
	}
	if newP == oldP {
		t.Error("translation unchanged after retirement")
	}
	// Old frame no longer reverse-maps.
	if _, err := o.PhysToVirt(oldP); err == nil {
		t.Error("retired frame still mapped")
	}
	// New frame round-trips.
	if v, err := o.PhysToVirt(newP); err != nil || v != vaddr {
		t.Errorf("new frame round trip: %#x, %v", v, err)
	}
	// The second page of the allocation is untouched.
	p2, _ := o.Translate(a.VBase() + PageSize)
	if p2 == newP {
		t.Error("wrong page remapped")
	}
	log := o.Retirements()
	if len(log) != 1 || log[0].VPage != vaddr/PageSize {
		t.Errorf("retirement log = %+v", log)
	}
	if len(o.RetiredFrames()) != 1 {
		t.Errorf("retired frames = %v", o.RetiredFrames())
	}
}

func TestRetirementPreservesRelaxedScheme(t *testing.T) {
	o := newOS(ecc.Chipkill)
	a, err := o.MallocECC("abft", PageSize, ecc.None, true)
	if err != nil {
		t.Fatal(err)
	}
	// No-ECC regions never interrupt; simulate the hard fault by calling
	// the retirement bookkeeping through SECDED-protected hits after
	// switching the scheme temporarily... simpler: use SECDED from the
	// start and check scheme preservation for a non-default scheme.
	o2 := newOS(ecc.Chipkill)
	b, err := o2.MallocECC("abft", PageSize, ecc.SECDED, true)
	if err != nil {
		t.Fatal(err)
	}
	vaddr := b.VBase()
	for i := 0; i < DefaultRetireThreshold; i++ {
		hitFrame(t, o2, vaddr)
	}
	if o2.Stats().PagesRetired != 1 {
		t.Fatal("not retired")
	}
	newP, _ := o2.Translate(vaddr)
	if s := o2.Ctl.SchemeFor(newP); s != ecc.SECDED {
		t.Errorf("scheme after migration = %v, want SECDED", s)
	}
	_ = a
}

func TestRetirementMigratesResidualFaults(t *testing.T) {
	o := newOS(ecc.SECDED)
	a, err := o.MallocECC("m", PageSize, ecc.SECDED, true)
	if err != nil {
		t.Fatal(err)
	}
	vaddr := a.VBase()
	// Two clean hits...
	hitFrame(t, o, vaddr)
	hitFrame(t, o, vaddr)
	// ...then a third whose pattern is NOT cleared before retirement.
	var p memctrl.Pattern
	p.Data[0] = 0x03
	if err := o.InjectAt(vaddr+128, p); err != nil {
		t.Fatal(err)
	}
	paddr, _ := o.Translate(vaddr + 128)
	o.Ctl.Access(0, paddr, false, true) // third event → retire, fault moves
	if o.Stats().PagesRetired != 1 {
		t.Fatal("not retired")
	}
	if got := o.Retirements()[0].MovedFaults; got != 1 {
		t.Errorf("moved faults = %d, want 1", got)
	}
	// The corruption is still observable at the same VIRTUAL address
	// through the new frame.
	newP, _ := o.Translate(vaddr + 128)
	before := o.Ctl.Stats().UncorrectableErrors
	o.Ctl.Access(0, newP, false, true)
	if o.Ctl.Stats().UncorrectableErrors != before+1 {
		t.Error("migrated fault not observable at the new frame")
	}
}

func TestRetirementDisabled(t *testing.T) {
	o := newOS(ecc.SECDED)
	o.RetireThreshold = 0
	a, _ := o.MallocECC("m", PageSize, ecc.SECDED, true)
	for i := 0; i < 10; i++ {
		hitFrame(t, o, a.VBase())
	}
	if o.Stats().PagesRetired != 0 {
		t.Error("retirement fired while disabled")
	}
}

func TestMoveFaultAndFaultsInRange(t *testing.T) {
	o := newOS(ecc.SECDED)
	var p memctrl.Pattern
	p.Data[0] = 0xff
	o.Ctl.InjectFault(1<<41, p)
	o.Ctl.InjectFault(1<<41+64, p)
	got := o.Ctl.FaultsInRange(1<<41, 4096)
	if len(got) != 2 {
		t.Fatalf("FaultsInRange = %v", got)
	}
	if len(o.Ctl.FaultsInRange(1<<41+64, 4096)) != 1 {
		t.Error("range filter wrong")
	}
	o.Ctl.MoveFault(1<<41, 1<<42)
	if len(o.Ctl.FaultsInRange(1<<42, 64)) != 1 {
		t.Error("MoveFault lost the pattern")
	}
	if len(o.Ctl.FaultsInRange(1<<41, 64)) != 0 {
		t.Error("MoveFault left the old pattern")
	}
	o.Ctl.MoveFault(1<<20, 1<<21) // moving a clean line is a no-op
}
