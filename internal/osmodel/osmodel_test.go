package osmodel

import (
	"testing"

	"coopabft/internal/dram"
	"coopabft/internal/ecc"
	"coopabft/internal/memctrl"
)

func newOS(def ecc.Scheme) *OS {
	return New(memctrl.New(dram.New(dram.DefaultConfig()), def))
}

func TestMallocAndTranslate(t *testing.T) {
	o := newOS(ecc.Chipkill)
	a := o.Malloc("x", 10000)
	p, err := o.Translate(a.VBase())
	if err != nil {
		t.Fatal(err)
	}
	if p < physBase {
		t.Errorf("physical address %#x below physBase", p)
	}
	// Round trip.
	v, err := o.PhysToVirt(p + 123)
	if err != nil {
		t.Fatal(err)
	}
	if v != a.VBase()+123 {
		t.Errorf("round trip = %#x, want %#x", v, a.VBase()+123)
	}
	// Offsets within a page are preserved.
	p2, _ := o.Translate(a.VBase() + PageSize + 77)
	if p2 != p+PageSize+77 {
		t.Errorf("contiguity broken: %#x vs %#x", p2, p+PageSize+77)
	}
}

func TestTranslateUnmapped(t *testing.T) {
	o := newOS(ecc.Chipkill)
	if _, err := o.Translate(0x123456789); err != ErrNotMapped {
		t.Errorf("err = %v", err)
	}
	if _, err := o.PhysToVirt(0x50); err != ErrNotMapped {
		t.Errorf("PhysToVirt below physBase err = %v", err)
	}
	if _, err := o.PhysToVirt(physBase + 1<<30); err != ErrNotMapped {
		t.Errorf("PhysToVirt unmapped frame err = %v", err)
	}
}

func TestMallocECCProgramsController(t *testing.T) {
	o := newOS(ecc.Chipkill)
	a, err := o.MallocECC("matrixC", 3*PageSize, ecc.None, true)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := o.Translate(a.VBase())
	if s := o.Ctl.SchemeFor(p); s != ecc.None {
		t.Errorf("scheme at phys base = %v, want none", s)
	}
	pEnd, _ := o.Translate(a.VBase() + a.Region.Size - 1)
	if s := o.Ctl.SchemeFor(pEnd); s != ecc.None {
		t.Errorf("scheme at phys end = %v", s)
	}
	if s := o.Ctl.SchemeFor(pEnd + 1); s != ecc.Chipkill {
		t.Errorf("scheme past region = %v", s)
	}
	if !a.Region.ABFT {
		t.Error("ABFT tag lost")
	}
}

func TestAssignECC(t *testing.T) {
	o := newOS(ecc.Chipkill)
	a, _ := o.MallocECC("m", PageSize, ecc.None, true)
	o.AssignECC(a, ecc.SECDED)
	p, _ := o.Translate(a.VBase())
	if s := o.Ctl.SchemeFor(p); s != ecc.SECDED {
		t.Errorf("after assign_ecc: %v", s)
	}
	if a.Scheme != ecc.SECDED {
		t.Error("allocation scheme not updated")
	}
}

func TestAssignECCOnPlainMallocPanics(t *testing.T) {
	o := newOS(ecc.Chipkill)
	a := o.Malloc("m", PageSize)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	o.AssignECC(a, ecc.None)
}

func TestFreeECCReleasesRegister(t *testing.T) {
	o := newOS(ecc.Chipkill)
	// Alternate schemes so adjacent allocations cannot merge registers.
	scheme := func(i int) ecc.Scheme {
		if i%2 == 0 {
			return ecc.None
		}
		return ecc.SECDED
	}
	var allocs []*Allocation
	for i := 0; i < memctrl.NumRegions; i++ {
		a, err := o.MallocECC("m", PageSize, scheme(i), true)
		if err != nil {
			t.Fatal(err)
		}
		allocs = append(allocs, a)
	}
	if _, err := o.MallocECC("overflow", PageSize, scheme(memctrl.NumRegions), true); err == nil {
		t.Fatal("expected register exhaustion")
	}
	o.FreeECC(allocs[0])
	if _, err := o.MallocECC("again", PageSize, ecc.SECDED, true); err != nil {
		t.Errorf("after free: %v", err)
	}
}

func TestDoubleFreePanics(t *testing.T) {
	o := newOS(ecc.Chipkill)
	a, _ := o.MallocECC("m", PageSize, ecc.None, true)
	o.FreeECC(a)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on double free")
		}
	}()
	o.FreeECC(a)
}

func TestInterruptExposesABFTData(t *testing.T) {
	o := newOS(ecc.Chipkill)
	// ABFT data under SECDED: a double-bit error is uncorrectable and must
	// be exposed to ABFT, not panic.
	a, _ := o.MallocECC("matrixA", 4*PageSize, ecc.SECDED, true)
	vaddr := a.VBase() + 256
	var p memctrl.Pattern
	p.Data[0] = 0x03
	if err := o.InjectAt(vaddr, p); err != nil {
		t.Fatal(err)
	}
	paddr, _ := o.Translate(vaddr)
	o.Ctl.Access(0, paddr, false, true)

	if o.Panicked() {
		t.Fatal("panicked on ABFT-protected data")
	}
	pend := o.PendingCorruptions()
	if len(pend) != 1 {
		t.Fatalf("pending = %d", len(pend))
	}
	if pend[0].Alloc != a {
		t.Error("wrong allocation attributed")
	}
	if pend[0].VirtAddr != vaddr&^63 {
		t.Errorf("virt addr = %#x, want line of %#x", pend[0].VirtAddr, vaddr)
	}
	// Drained.
	if len(o.PendingCorruptions()) != 0 {
		t.Error("pending not drained")
	}
	st := o.Stats()
	if st.Interrupts != 1 || st.ExposedToABFT != 1 || st.Panics != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestInterruptPanicsOnUnprotectedData(t *testing.T) {
	o := newOS(ecc.SECDED)
	a := o.Malloc("osdata", 4*PageSize)
	vaddr := a.VBase()
	var p memctrl.Pattern
	p.Data[0] = 0x03
	if err := o.InjectAt(vaddr, p); err != nil {
		t.Fatal(err)
	}
	paddr, _ := o.Translate(vaddr)
	o.Ctl.Access(0, paddr, false, true)
	if !o.Panicked() {
		t.Fatal("did not panic on unprotected data")
	}
	if len(o.PanicRecords()) != 1 {
		t.Errorf("panic records = %d", len(o.PanicRecords()))
	}
	o.ClearPanic()
	if o.Panicked() {
		t.Error("ClearPanic failed")
	}
}

func TestClearFaultAt(t *testing.T) {
	o := newOS(ecc.SECDED)
	a, _ := o.MallocECC("m", PageSize, ecc.None, true)
	var p memctrl.Pattern
	p.Data[0] = 0xff
	if err := o.InjectAt(a.VBase(), p); err != nil {
		t.Fatal(err)
	}
	if o.Ctl.FaultyLines() != 1 {
		t.Fatal("injection failed")
	}
	if err := o.ClearFaultAt(a.VBase() + 5); err != nil {
		t.Fatal(err)
	}
	if o.Ctl.FaultyLines() != 0 {
		t.Error("fault not cleared")
	}
}

func TestAllocationAt(t *testing.T) {
	o := newOS(ecc.Chipkill)
	a := o.Malloc("one", PageSize)
	b := o.Malloc("two", PageSize)
	if got, ok := o.AllocationAt(b.VBase()); !ok || got != b {
		t.Error("AllocationAt wrong")
	}
	if got, ok := o.AllocationAt(a.VBase() + 100); !ok || got != a {
		t.Error("AllocationAt wrong for offset")
	}
	if _, ok := o.AllocationAt(0); ok {
		t.Error("AllocationAt(0) should fail")
	}
}

func TestPeekDoesNotDrain(t *testing.T) {
	o := newOS(ecc.Chipkill)
	a, _ := o.MallocECC("m", PageSize, ecc.SECDED, true)
	var p memctrl.Pattern
	p.Data[0] = 0x03
	o.InjectAt(a.VBase(), p)
	paddr, _ := o.Translate(a.VBase())
	o.Ctl.Access(0, paddr, false, true)
	if len(o.PeekCorruptions()) != 1 {
		t.Fatal("peek empty")
	}
	if len(o.PeekCorruptions()) != 1 {
		t.Error("peek drained the list")
	}
}

func TestMallocECCMergesAdjacentSameScheme(t *testing.T) {
	o := newOS(ecc.Chipkill)
	// Seven consecutive same-scheme allocations must share one register.
	var allocs []*Allocation
	for i := 0; i < 7; i++ {
		a, err := o.MallocECC("vec", PageSize, ecc.None, true)
		if err != nil {
			t.Fatal(err)
		}
		allocs = append(allocs, a)
	}
	if got := len(o.Ctl.Regions()); got != 1 {
		t.Fatalf("regions = %d, want 1 (merged)", got)
	}
	// All addresses resolve to the relaxed scheme.
	for _, a := range allocs {
		p, _ := o.Translate(a.VBase())
		if o.Ctl.SchemeFor(p) != ecc.None {
			t.Fatalf("merged region lost scheme at %q", a.Name)
		}
	}
	// Register only released when every sharer is freed.
	for i, a := range allocs {
		o.FreeECC(a)
		want := 1
		if i == len(allocs)-1 {
			want = 0
		}
		if got := len(o.Ctl.Regions()); got != want {
			t.Fatalf("after %d frees regions = %d, want %d", i+1, got, want)
		}
	}
}

func TestMallocECCNoMergeAcrossSchemes(t *testing.T) {
	o := newOS(ecc.Chipkill)
	if _, err := o.MallocECC("a", PageSize, ecc.None, true); err != nil {
		t.Fatal(err)
	}
	if _, err := o.MallocECC("b", PageSize, ecc.SECDED, true); err != nil {
		t.Fatal(err)
	}
	if got := len(o.Ctl.Regions()); got != 2 {
		t.Fatalf("regions = %d, want 2", got)
	}
}

func TestMallocECCNoMergeAcrossGaps(t *testing.T) {
	o := newOS(ecc.Chipkill)
	if _, err := o.MallocECC("a", PageSize, ecc.None, true); err != nil {
		t.Fatal(err)
	}
	o.Malloc("gap", PageSize) // plain allocation breaks physical adjacency
	if _, err := o.MallocECC("b", PageSize, ecc.None, true); err != nil {
		t.Fatal(err)
	}
	if got := len(o.Ctl.Regions()); got != 2 {
		t.Fatalf("regions = %d, want 2 (gap must prevent merge)", got)
	}
}
