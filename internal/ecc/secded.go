package ecc

import "math/bits"

// Hsiao (72,64) single-error-correcting, double-error-detecting code [19].
// The parity-check matrix H has 72 columns of odd weight: the 8 check-bit
// positions use the weight-1 columns (identity block) and the 64 data-bit
// positions use distinct columns of weight 3 (all 56 of them) and weight 5
// (the first 8). Odd-weight columns give Hsiao's key property: every
// single-bit error produces an odd-weight syndrome and every double-bit
// error an even-weight (nonzero) syndrome, so the two never alias.

// secdedCol[i] is the H column for data bit i.
var secdedCol [64]byte

// secdedColIndex maps an H column value back to its data-bit position + 1
// (0 means "not a data column").
var secdedColIndex [256]int

func init() {
	n := 0
	for w := 3; w <= 5 && n < 64; w += 2 {
		for v := 1; v < 256 && n < 64; v++ {
			if bits.OnesCount8(uint8(v)) == w {
				secdedCol[n] = byte(v)
				secdedColIndex[v] = n + 1
				n++
			}
		}
	}
	if n != 64 {
		panic("ecc: failed to build Hsiao column set")
	}
}

// Result classifies the outcome of a decode.
type Result int

const (
	// OK means the codeword was clean.
	OK Result = iota
	// Corrected means an error was present and has been corrected in place.
	Corrected
	// Detected means an uncorrectable error was detected (e.g. a double-bit
	// error under SECDED); data is not trustworthy.
	Detected
	// Undetected is used by fault-classification helpers for error patterns
	// that a code silently miscorrects or misses; the decoder itself cannot
	// return it.
	Undetected
)

// String implements fmt.Stringer.
func (r Result) String() string {
	switch r {
	case OK:
		return "ok"
	case Corrected:
		return "corrected"
	case Detected:
		return "detected-uncorrectable"
	case Undetected:
		return "undetected"
	default:
		return "unknown"
	}
}

// SECDEDEncode returns the 8 check bits for a 64-bit word.
func SECDEDEncode(data uint64) byte {
	var s byte
	for d := data; d != 0; d &= d - 1 {
		s ^= secdedCol[bits.TrailingZeros64(d)]
	}
	return s
}

// SECDEDDecode checks a (72,64) codeword. On a single-bit error (in data or
// check bits) it returns the corrected word. On a double-bit error it
// returns Detected and the original word.
func SECDEDDecode(data uint64, check byte) (fixed uint64, fixedCheck byte, r Result) {
	syn := SECDEDEncode(data) ^ check
	switch {
	case syn == 0:
		return data, check, OK
	case bits.OnesCount8(syn) == 1:
		// Error in a check bit itself.
		return data, check ^ syn, Corrected
	case bits.OnesCount8(syn)%2 == 1:
		if i := secdedColIndex[syn]; i != 0 {
			return data ^ 1<<(i-1), check, Corrected
		}
		// Odd-weight syndrome matching no column: ≥3-bit error.
		return data, check, Detected
	default:
		// Even-weight nonzero syndrome: double-bit error.
		return data, check, Detected
	}
}
