package ecc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRSMatchesChipkillInstance(t *testing.T) {
	// The generic RS(32,4) must agree with the dedicated chipkill codec.
	rs := NewRSCode(ChipkillData, ChipkillCheck)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		var d [ChipkillData]byte
		for i := range d {
			d[i] = byte(rng.Intn(256))
		}
		want := ChipkillEncode(&d)
		got := rs.Encode(d[:])
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: RS encode differs at %d", trial, i)
			}
		}
	}
}

func TestRSValidatesParameters(t *testing.T) {
	for _, c := range [][2]int{{0, 4}, {16, 1}, {250, 10}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewRSCode(%d,%d) did not panic", c[0], c[1])
				}
			}()
			NewRSCode(c[0], c[1])
		}()
	}
}

func TestX8ChipkillSingleSymbol(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		data := make([]byte, 16)
		for i := range data {
			data[i] = byte(rng.Intn(256))
		}
		want := append([]byte(nil), data...)
		check := X8Chipkill.Encode(data)
		wantChk := append([]byte(nil), check...)

		pos := rng.Intn(16)
		data[pos] ^= byte(1 + rng.Intn(255)) // a whole x8 chip goes bad
		r, got := X8Chipkill.Decode(data, check)
		if r != Corrected || got != pos {
			t.Fatalf("trial %d: %v pos=%d", trial, r, got)
		}
		for i := range data {
			if data[i] != want[i] {
				t.Fatal("data not restored")
			}
		}
		for i := range check {
			if check[i] != wantChk[i] {
				t.Fatal("check modified")
			}
		}
	}
}

func TestX8ChipkillDetectsDoubleSymbol(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		data := make([]byte, 16)
		for i := range data {
			data[i] = byte(rng.Intn(256))
		}
		check := X8Chipkill.Encode(data)
		i := rng.Intn(16)
		j := rng.Intn(16)
		for j == i {
			j = rng.Intn(16)
		}
		data[i] ^= byte(1 + rng.Intn(255))
		data[j] ^= byte(1 + rng.Intn(255))
		if r, _ := X8Chipkill.Decode(data, check); r != Detected {
			t.Fatalf("trial %d: double symbol gave %v", trial, r)
		}
	}
}

func TestX8ChipkillCheckSymbolErrors(t *testing.T) {
	data := make([]byte, 16)
	for i := range data {
		data[i] = byte(i * 7)
	}
	check := X8Chipkill.Encode(data)
	orig := append([]byte(nil), check...)
	check[1] ^= 0x55
	r, pos := X8Chipkill.Decode(data, check)
	if r != Corrected || pos != 16+1 {
		t.Fatalf("%v pos=%d", r, pos)
	}
	for i := range check {
		if check[i] != orig[i] {
			t.Fatal("check not restored")
		}
	}
}

func TestX8OverheadMatchesPaper(t *testing.T) {
	// §2.2: "18.75%–37.5% for 3-check symbol chipkill (x8 DRAM)".
	ovh := float64(X8Chipkill.CheckSymbols()) / float64(X8Chipkill.DataSymbols())
	if ovh != 0.1875 {
		t.Errorf("x8 overhead = %v, want 0.1875", ovh)
	}
}

// Property: for random parameters and a random single-symbol error, the
// generic RS codec round-trips.
func TestRSRoundTripProperty(t *testing.T) {
	f := func(seed int64, dataSel, checkSel uint8) bool {
		nData := 2 + int(dataSel)%60
		nCheck := 2 + int(checkSel)%5
		rs := NewRSCode(nData, nCheck)
		rng := rand.New(rand.NewSource(seed))
		data := make([]byte, nData)
		for i := range data {
			data[i] = byte(rng.Intn(256))
		}
		want := append([]byte(nil), data...)
		check := rs.Encode(data)
		pos := rng.Intn(nData)
		data[pos] ^= byte(1 + rng.Intn(255))
		r, got := rs.Decode(data, check)
		if r != Corrected || got != pos {
			return false
		}
		for i := range data {
			if data[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: clean codewords always decode OK for any valid parameters.
func TestRSCleanProperty(t *testing.T) {
	f := func(seed int64, dataSel uint8) bool {
		nData := 2 + int(dataSel)%100
		rs := NewRSCode(nData, 3)
		rng := rand.New(rand.NewSource(seed))
		data := make([]byte, nData)
		for i := range data {
			data[i] = byte(rng.Intn(256))
		}
		check := rs.Encode(data)
		r, _ := rs.Decode(data, check)
		return r == OK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
