package ecc

import "fmt"

// Generalized single-symbol-correct Reed–Solomon codec over GF(2^8),
// parameterized by data/check symbol counts. The x4 chipkill code of
// chipkill.go is the (32, 4) instance; the x8 generalization the paper
// mentions ("our approach easily generalizes to other DRAM chips (e.g., x8
// chips)") uses a 3-check-symbol code over 16 data symbols — §2.2's
// "18.75%–37.5% for 3-check symbol chipkill (x8 DRAM)".

// RSCode is a systematic RS code with nData+nCheck ≤ 255 symbols.
type RSCode struct {
	nData, nCheck int
	gen           []byte // generator coefficients, lowest degree first, monic top dropped
}

// NewRSCode builds the code with generator ∏_{i=0..nCheck-1}(x − α^i).
func NewRSCode(nData, nCheck int) *RSCode {
	if nData <= 0 || nCheck <= 1 || nData+nCheck > 255 {
		panic(fmt.Sprintf("ecc: invalid RS(%d+%d) parameters", nData, nCheck))
	}
	g := []byte{1}
	for i := 0; i < nCheck; i++ {
		root := gfPow(i)
		ng := make([]byte, len(g)+1)
		for j, c := range g {
			ng[j] ^= gfMul(c, root)
			ng[j+1] ^= c
		}
		g = ng
	}
	return &RSCode{nData: nData, nCheck: nCheck, gen: g[:nCheck]}
}

// DataSymbols returns the payload symbol count.
func (c *RSCode) DataSymbols() int { return c.nData }

// CheckSymbols returns the redundancy symbol count.
func (c *RSCode) CheckSymbols() int { return c.nCheck }

// Encode computes the check symbols for data (len nData).
func (c *RSCode) Encode(data []byte) []byte {
	if len(data) != c.nData {
		panic(fmt.Sprintf("ecc: RS encode with %d symbols, want %d", len(data), c.nData))
	}
	reg := make([]byte, c.nCheck)
	for i := c.nData - 1; i >= 0; i-- {
		fb := data[i] ^ reg[c.nCheck-1]
		copy(reg[1:], reg[:c.nCheck-1])
		reg[0] = 0
		if fb != 0 {
			for j := 0; j < c.nCheck; j++ {
				reg[j] ^= gfMul(fb, c.gen[j])
			}
		}
	}
	return reg
}

// Decode verifies and repairs a codeword in place in SSC mode: any single
// symbol error is corrected; anything wider is detected as long as it is
// inconsistent with every single-symbol explanation (guaranteed for up to
// nCheck−1 symbol errors). Returns the corrected position (data index, or
// nData+j for check symbol j) when Result is Corrected.
func (c *RSCode) Decode(data, check []byte) (Result, int) {
	if len(data) != c.nData || len(check) != c.nCheck {
		panic("ecc: RS decode shape mismatch")
	}
	syn := make([]byte, c.nCheck)
	zero := true
	for k := 0; k < c.nCheck; k++ {
		root := gfPow(k)
		var acc byte
		for i := c.nData - 1; i >= 0; i-- {
			acc = gfMul(acc, root) ^ data[i]
		}
		for j := c.nCheck - 1; j >= 0; j-- {
			acc = gfMul(acc, root) ^ check[j]
		}
		syn[k] = acc
		if acc != 0 {
			zero = false
		}
	}
	if zero {
		return OK, -1
	}
	if syn[0] == 0 || syn[1] == 0 {
		return Detected, -1
	}
	x := gfDiv(syn[1], syn[0]) // α^p
	e := syn[0]
	for k := 2; k < c.nCheck; k++ {
		if gfMul(syn[k-1], x) != syn[k] {
			return Detected, -1
		}
	}
	p := int(gfLog[x])
	if p >= c.nData+c.nCheck {
		return Detected, -1
	}
	if p < c.nCheck {
		check[p] ^= e
		return Corrected, c.nData + p
	}
	data[p-c.nCheck] ^= e
	return Corrected, p - c.nCheck
}

// X8Chipkill is the x8-DRAM chipkill instance: a 72-bit-wide channel of
// nine x8 chips delivers 8 data bytes + 1 check byte per beat; over a
// 16-beat pair of lines, two lock-stepped channels give 16 data symbols
// protected by 3 check symbols per codeword group (one symbol per chip, as
// for x4). Storage overhead 3/16 = 18.75%, matching §2.2.
var X8Chipkill = NewRSCode(16, 3)
