// Package ecc implements the memory-protection codes evaluated by the paper:
// Hsiao (72,64) SECDED and a chipkill-correct single-symbol-correct /
// double-symbol-detect (SSC-DSD) Reed–Solomon code, plus the scheme metadata
// (storage overhead, chips activated, correction energy) the memory
// controller model needs.
//
// Both codecs are real: they encode redundant bits and decode by syndrome,
// so fault-injection campaigns exercise genuine correction and detection
// paths rather than flags.
package ecc

// GF(2^8) arithmetic with the AES/RS primitive polynomial x^8+x^4+x^3+x^2+1
// (0x11d), via log/exp tables built at init.

const gfPoly = 0x11d

// Built as package-level variable initializers (not init funcs) so they are
// ready before any other file's init in this package runs.
var gfExp, gfLog = buildGFTables()

func buildGFTables() (exp [512]byte, log [256]byte) {
	x := 1
	for i := 0; i < 255; i++ {
		exp[i] = byte(x)
		log[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= gfPoly
		}
	}
	// Doubled to avoid a mod in gfMul.
	for i := 255; i < 512; i++ {
		exp[i] = exp[i-255]
	}
	return exp, log
}

// gfMul multiplies in GF(2^8).
func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

// gfDiv divides in GF(2^8); b must be nonzero.
func gfDiv(a, b byte) byte {
	if b == 0 {
		panic("ecc: division by zero in GF(256)")
	}
	if a == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+255-int(gfLog[b])]
}

// gfPow returns α^n for the field generator α = 2.
func gfPow(n int) byte {
	n %= 255
	if n < 0 {
		n += 255
	}
	return gfExp[n]
}

// gfInv returns the multiplicative inverse.
func gfInv(a byte) byte { return gfDiv(1, a) }
