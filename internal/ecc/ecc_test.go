package ecc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGFFieldAxioms(t *testing.T) {
	// Spot-check table construction: α^0 = 1, α^255 wraps, inverses work.
	if gfExp[0] != 1 {
		t.Fatalf("α^0 = %d", gfExp[0])
	}
	for a := 1; a < 256; a++ {
		inv := gfInv(byte(a))
		if gfMul(byte(a), inv) != 1 {
			t.Fatalf("a·a⁻¹ ≠ 1 for a=%d", a)
		}
	}
	if gfMul(0, 77) != 0 || gfMul(55, 0) != 0 {
		t.Error("multiplication by zero is nonzero")
	}
}

func TestGFDistributivityProperty(t *testing.T) {
	f := func(a, b, c byte) bool {
		return gfMul(a, b^c) == gfMul(a, b)^gfMul(a, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGFDivPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("gfDiv by zero did not panic")
		}
	}()
	gfDiv(1, 0)
}

func TestSECDEDClean(t *testing.T) {
	for _, d := range []uint64{0, 1, ^uint64(0), 0xdeadbeefcafebabe} {
		chk := SECDEDEncode(d)
		got, gotChk, r := SECDEDDecode(d, chk)
		if r != OK || got != d || gotChk != chk {
			t.Errorf("clean decode of %x: %v", d, r)
		}
	}
}

func TestSECDEDCorrectsEverySingleBit(t *testing.T) {
	data := uint64(0x0123456789abcdef)
	chk := SECDEDEncode(data)
	// Every data-bit flip must be corrected.
	for b := 0; b < 64; b++ {
		bad := data ^ 1<<b
		fixed, _, r := SECDEDDecode(bad, chk)
		if r != Corrected || fixed != data {
			t.Fatalf("data bit %d: result %v, fixed %x", b, r, fixed)
		}
	}
	// Every check-bit flip must be corrected.
	for b := 0; b < 8; b++ {
		badChk := chk ^ 1<<b
		fixed, fixedChk, r := SECDEDDecode(data, badChk)
		if r != Corrected || fixed != data || fixedChk != chk {
			t.Fatalf("check bit %d: result %v", b, r)
		}
	}
}

func TestSECDEDDetectsEveryDoubleBit(t *testing.T) {
	data := uint64(0xfedcba9876543210)
	chk := SECDEDEncode(data)
	// All pairs across the 72 codeword bits must be Detected, never
	// miscorrected. Bits 0–63 are data, 64–71 are check bits.
	flip := func(d uint64, c byte, bit int) (uint64, byte) {
		if bit < 64 {
			return d ^ 1<<bit, c
		}
		return d, c ^ 1<<(bit-64)
	}
	for i := 0; i < 72; i++ {
		for j := i + 1; j < 72; j++ {
			d, c := flip(data, chk, i)
			d, c = flip(d, c, j)
			_, _, r := SECDEDDecode(d, c)
			if r != Detected {
				t.Fatalf("double (%d,%d): result %v", i, j, r)
			}
		}
	}
}

func TestSECDEDRandomProperty(t *testing.T) {
	f := func(data uint64, bit uint8) bool {
		chk := SECDEDEncode(data)
		b := int(bit) % 64
		fixed, _, r := SECDEDDecode(data^1<<b, chk)
		return r == Corrected && fixed == data
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func randData(rng *rand.Rand) [ChipkillData]byte {
	var d [ChipkillData]byte
	for i := range d {
		d[i] = byte(rng.Intn(256))
	}
	return d
}

func TestChipkillClean(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		d := randData(rng)
		chk := ChipkillEncode(&d)
		r, pos := ChipkillDecode(&d, &chk)
		if r != OK || pos != -1 {
			t.Fatalf("clean decode: %v pos %d", r, pos)
		}
	}
}

func TestChipkillCorrectsAnySingleSymbol(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := randData(rng)
	want := d
	chk := ChipkillEncode(&d)
	wantChk := chk
	// Every data symbol, every nonzero error value pattern sample.
	for pos := 0; pos < ChipkillData; pos++ {
		for _, e := range []byte{0x01, 0x80, 0xff, 0x5a} {
			d = want
			chk = wantChk
			d[pos] ^= e
			r, got := ChipkillDecode(&d, &chk)
			if r != Corrected || got != pos || d != want {
				t.Fatalf("symbol %d e=%#x: %v pos=%d", pos, e, r, got)
			}
		}
	}
	// Check symbols too.
	for pos := 0; pos < ChipkillCheck; pos++ {
		d = want
		chk = wantChk
		chk[pos] ^= 0x3c
		r, got := ChipkillDecode(&d, &chk)
		if r != Corrected || got != ChipkillData+pos || chk != wantChk {
			t.Fatalf("check symbol %d: %v pos=%d", pos, r, got)
		}
	}
}

func TestChipkillWholeChipError(t *testing.T) {
	// Chipkill's defining property: an entire chip (= whole symbol, all 8
	// bits garbage) is corrected.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		d := randData(rng)
		want := d
		chk := ChipkillEncode(&d)
		pos := rng.Intn(ChipkillData)
		d[pos] = byte(rng.Intn(256)) // arbitrary replacement
		if d[pos] == want[pos] {
			continue
		}
		r, got := ChipkillDecode(&d, &chk)
		if r != Corrected || got != pos || d != want {
			t.Fatalf("trial %d: %v pos=%d", trial, r, got)
		}
	}
}

func TestChipkillDetectsDoubleSymbol(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		d := randData(rng)
		orig := d
		chk := ChipkillEncode(&d)
		i := rng.Intn(ChipkillData)
		j := rng.Intn(ChipkillData)
		for j == i {
			j = rng.Intn(ChipkillData)
		}
		d[i] ^= byte(1 + rng.Intn(255))
		d[j] ^= byte(1 + rng.Intn(255))
		r, _ := ChipkillDecode(&d, &chk)
		if r != Detected {
			t.Fatalf("trial %d: double symbol (%d,%d) gave %v", trial, i, j, r)
		}
		_ = orig
	}
}

func TestChipkillDetectsTripleSymbol(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		d := randData(rng)
		chk := ChipkillEncode(&d)
		perm := rng.Perm(ChipkillData)[:3]
		for _, p := range perm {
			d[p] ^= byte(1 + rng.Intn(255))
		}
		r, _ := ChipkillDecode(&d, &chk)
		if r == Corrected {
			// d=5 guarantees a weight-3 error is at distance ≥2 from every
			// codeword, so single-symbol correction must not fire.
			t.Fatalf("trial %d: triple-symbol error was miscorrected", trial)
		}
	}
}

func TestSchemeMetadata(t *testing.T) {
	cases := []struct {
		s        Scheme
		chips    int
		channels int
		overhead float64
	}{
		{None, 16, 1, 0},
		{SECDED, 18, 1, 0.125},
		{Chipkill, 36, 2, 0.125},
	}
	for _, c := range cases {
		if got := c.s.ChipsActivated(); got != c.chips {
			t.Errorf("%v chips = %d, want %d", c.s, got, c.chips)
		}
		if got := c.s.ChannelsBusy(); got != c.channels {
			t.Errorf("%v channels = %d, want %d", c.s, got, c.channels)
		}
		if got := c.s.StorageOverhead(); got != c.overhead {
			t.Errorf("%v overhead = %v, want %v", c.s, got, c.overhead)
		}
	}
	if !Chipkill.Stronger(SECDED) || !SECDED.Stronger(None) || None.Stronger(SECDED) {
		t.Error("Stronger ordering wrong")
	}
	if Chipkill.FITPerMbit() >= SECDED.FITPerMbit() || SECDED.FITPerMbit() >= None.FITPerMbit() {
		t.Error("Table 5 FIT ordering wrong")
	}
}

func TestSchemeString(t *testing.T) {
	if None.String() != "none" || SECDED.String() != "secded" || Chipkill.String() != "chipkill" {
		t.Error("Scheme.String wrong")
	}
	if Scheme(9).String() != "Scheme(9)" {
		t.Error("unknown scheme string wrong")
	}
	if OK.String() != "ok" || Corrected.String() != "corrected" {
		t.Error("Result.String wrong")
	}
}

func fillLine(rng *rand.Rand) [LineSize]byte {
	var l [LineSize]byte
	for i := range l {
		l[i] = byte(rng.Intn(256))
	}
	return l
}

func TestLineCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, s := range []Scheme{None, SECDED, Chipkill} {
		c := LineCodec{Scheme: s}
		line := fillLine(rng)
		chk := c.Encode(&line)
		if len(chk) != c.CheckBytes() {
			t.Fatalf("%v: check len %d, want %d", s, len(chk), c.CheckBytes())
		}
		if r := c.Decode(&line, chk); r != OK {
			t.Fatalf("%v: clean line decode = %v", s, r)
		}
	}
}

func TestLineCodecSECDEDSingleBitPerWord(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := LineCodec{Scheme: SECDED}
	line := fillLine(rng)
	want := line
	chk := c.Encode(&line)
	// One bit flip in each of the 8 words: all corrected independently.
	for w := 0; w < 8; w++ {
		line[w*8+rng.Intn(8)] ^= 1 << rng.Intn(8)
	}
	if r := c.Decode(&line, chk); r != Corrected {
		t.Fatalf("decode = %v", r)
	}
	if line != want {
		t.Fatal("line not restored")
	}
}

func TestLineCodecSECDEDDoubleBitDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	c := LineCodec{Scheme: SECDED}
	line := fillLine(rng)
	chk := c.Encode(&line)
	line[3] ^= 0x03 // two bits in the same 64-bit word
	if r := c.Decode(&line, chk); r != Detected {
		t.Fatalf("decode = %v, want Detected", r)
	}
}

func TestLineCodecChipkillChipFailure(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	c := LineCodec{Scheme: Chipkill}
	line := fillLine(rng)
	want := line
	chk := c.Encode(&line)
	// Kill "chip" 7 in both halves (symbol 7 of each codeword).
	line[7] ^= 0xff
	line[32+7] ^= 0xff
	if r := c.Decode(&line, chk); r != Corrected {
		t.Fatalf("decode = %v", r)
	}
	if line != want {
		t.Fatal("line not restored")
	}
}

func TestLineCodecChipkillScatteredDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	c := LineCodec{Scheme: Chipkill}
	line := fillLine(rng)
	chk := c.Encode(&line)
	// Errors on two different symbols within the same half: uncorrectable.
	line[1] ^= 0x10
	line[9] ^= 0x10
	if r := c.Decode(&line, chk); r != Detected {
		t.Fatalf("decode = %v, want Detected", r)
	}
}

func TestLineCodecNonePassesErrors(t *testing.T) {
	c := LineCodec{Scheme: None}
	var line [LineSize]byte
	chk := c.Encode(&line)
	line[0] = 0xff
	if r := c.Decode(&line, chk); r != OK {
		t.Fatalf("None decode = %v, want OK (errors invisible)", r)
	}
	if line[0] != 0xff {
		t.Fatal("None decode modified data")
	}
}

// Property: SECDED encode/decode round-trips any word with any single flip.
func TestLineCodecRandomSingleFlipProperty(t *testing.T) {
	f := func(seed int64, wordIdx, bit uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		c := LineCodec{Scheme: SECDED}
		line := fillLine(rng)
		want := line
		chk := c.Encode(&line)
		line[int(wordIdx)%LineSize] ^= 1 << (bit % 8)
		r := c.Decode(&line, chk)
		return r == Corrected && line == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
