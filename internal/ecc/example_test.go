package ecc_test

import (
	"fmt"

	"coopabft/internal/ecc"
)

// SECDED corrects single-bit errors and refuses double-bit ones.
func ExampleSECDEDDecode() {
	data := uint64(0xdeadbeef)
	check := ecc.SECDEDEncode(data)

	fixed, _, r := ecc.SECDEDDecode(data^(1<<17), check)
	fmt.Println(r, fixed == data)

	_, _, r = ecc.SECDEDDecode(data^0b11, check)
	fmt.Println(r)
	// Output:
	// corrected true
	// detected-uncorrectable
}

// Chipkill survives a whole chip returning garbage.
func ExampleChipkillDecode() {
	var data [ecc.ChipkillData]byte
	for i := range data {
		data[i] = byte(i * 3)
	}
	want := data
	check := ecc.ChipkillEncode(&data)

	data[11] = 0xFF // chip 11 dies
	r, pos := ecc.ChipkillDecode(&data, &check)
	fmt.Println(r, pos, data == want)
	// Output:
	// corrected 11 true
}
