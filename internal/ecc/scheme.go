package ecc

import "fmt"

// Scheme identifies one of the three protection levels the proposed memory
// controller supports simultaneously (§3.1).
type Scheme int

const (
	// None disables ECC: the channel's 8 ECC bits are ignored and only the
	// 16 data chips (x4) of each rank are activated.
	None Scheme = iota
	// SECDED protects each 64-bit transfer with 8 Hsiao check bits on a
	// single 72-bit channel (18 chips).
	SECDED
	// Chipkill lock-steps two 72-bit channels into a 144-bit logical
	// channel (36 chips) running the SSC-DSD symbol code.
	Chipkill
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case None:
		return "none"
	case SECDED:
		return "secded"
	case Chipkill:
		return "chipkill"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// ChipsActivated returns how many DRAM chips a cacheline access touches
// under the scheme (x4 parts, 18 chips per 72-bit channel).
func (s Scheme) ChipsActivated() int {
	switch s {
	case None:
		return 16 // ECC chips disabled
	case SECDED:
		return 18
	case Chipkill:
		return 36 // two lock-stepped channels
	default:
		return 16
	}
}

// ChannelsBusy returns how many physical channels one access occupies.
// Chipkill's lock-step halves channel-level parallelism (§2.2).
func (s Scheme) ChannelsBusy() int {
	if s == Chipkill {
		return 2
	}
	return 1
}

// StorageOverhead returns the fraction of extra DRAM storage the scheme
// needs (§2.2: 12.5% for both SECDED and 4-check-symbol x4 chipkill).
func (s Scheme) StorageOverhead() float64 {
	if s == None {
		return 0
	}
	return 0.125
}

// CorrectionEnergyJ returns the energy to correct one error with the
// scheme's MC logic — "less than 1 pJ" per §4 Case 1 [23]. Software (ABFT)
// correction costs are modeled separately in the abft and faultmodel
// packages.
func (s Scheme) CorrectionEnergyJ() float64 {
	if s == None {
		return 0
	}
	return 0.8e-12
}

// FITPerMbit returns the residual error rate (failures per 10⁹ hours per
// Mbit) with the scheme in place, from Table 5 of the paper.
func (s Scheme) FITPerMbit() float64 {
	switch s {
	case None:
		return 5000 // [23, 25]
	case SECDED:
		return 1300 // [25, 36]
	case Chipkill:
		return 0.02 // [25, 34]
	default:
		return 5000
	}
}

// Stronger reports whether s provides strictly stronger protection than o.
func (s Scheme) Stronger(o Scheme) bool { return s > o }

// LineCodec applies a scheme to a whole 64-byte cacheline, the granularity
// at which the memory controller detects and corrects (§3.1). It is the
// bridge between raw stored bytes (possibly corrupted by fault injection)
// and the per-word/per-symbol codecs.
type LineCodec struct {
	Scheme Scheme
}

// LineSize is the protected payload per line in bytes.
const LineSize = 64

// CheckBytes returns the number of redundant bytes stored per 64-byte line:
// 8 for SECDED (one check byte per 64-bit word) and 8 for chipkill (two
// 4-check-symbol codewords per line pair, amortized to 8 bytes per line).
func (c LineCodec) CheckBytes() int {
	if c.Scheme == None {
		return 0
	}
	return 8
}

// Encode computes the redundancy for a 64-byte line. The returned slice has
// CheckBytes() bytes. For None it is empty.
func (c LineCodec) Encode(line *[LineSize]byte) []byte {
	switch c.Scheme {
	case SECDED:
		out := make([]byte, 8)
		for w := 0; w < 8; w++ {
			out[w] = SECDEDEncode(wordAt(line, w))
		}
		return out
	case Chipkill:
		// Two RS codewords cover the 64-byte line (32 data symbols each).
		out := make([]byte, 8)
		var half [ChipkillData]byte
		copy(half[:], line[:32])
		chk := ChipkillEncode(&half)
		copy(out[:4], chk[:])
		copy(half[:], line[32:])
		chk = ChipkillEncode(&half)
		copy(out[4:], chk[:])
		return out
	default:
		return nil
	}
}

// Decode verifies and repairs a line in place against its redundancy. The
// worst outcome across the line's codewords is returned (Detected dominates
// Corrected dominates OK). For None it always returns OK: errors flow to
// software unobserved.
func (c LineCodec) Decode(line *[LineSize]byte, check []byte) Result {
	switch c.Scheme {
	case None:
		return OK
	case SECDED:
		worst := OK
		for w := 0; w < 8; w++ {
			fixed, fixedChk, r := SECDEDDecode(wordAt(line, w), check[w])
			if r == Corrected {
				putWordAt(line, w, fixed)
				check[w] = fixedChk
			}
			if r > worst {
				worst = r
			}
		}
		return worst
	case Chipkill:
		worst := OK
		for h := 0; h < 2; h++ {
			var half [ChipkillData]byte
			var chk [ChipkillCheck]byte
			copy(half[:], line[h*32:(h+1)*32])
			copy(chk[:], check[h*4:(h+1)*4])
			r, _ := ChipkillDecode(&half, &chk)
			if r == Corrected {
				copy(line[h*32:(h+1)*32], half[:])
				copy(check[h*4:(h+1)*4], chk[:])
			}
			if r > worst {
				worst = r
			}
		}
		return worst
	default:
		return OK
	}
}

func wordAt(line *[LineSize]byte, w int) uint64 {
	var v uint64
	for b := 0; b < 8; b++ {
		v |= uint64(line[w*8+b]) << (8 * b)
	}
	return v
}

func putWordAt(line *[LineSize]byte, w int, v uint64) {
	for b := 0; b < 8; b++ {
		line[w*8+b] = byte(v >> (8 * b))
	}
}
