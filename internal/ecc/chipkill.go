package ecc

// Chipkill-correct SSC-DSD code [12].
//
// Physical model (§2.2, §3.1): two lock-stepped 72-bit channels form a
// 144-bit logical channel backed by 36 x4 DRAM chips (32 data + 4 ECC).
// Across two bus beats each chip contributes 8 bits, so one "beat group" is
// a codeword of 36 byte-symbols: 32 data symbols and 4 check symbols, where
// symbol i comes entirely from chip i. A dead or corrupted chip therefore
// corrupts exactly one symbol, which the code corrects — that is chipkill.
//
// The code is a systematic Reed–Solomon code over GF(2^8) with generator
// g(x) = (x−α⁰)(x−α¹)(x−α²)(x−α³), minimum distance 5. We use it in
// SSC-DSD mode: correct any single-symbol error, and detect (refuse to
// correct) multi-symbol errors. Because correction requires all four
// syndromes to be consistent with one error location, every 2- and 3-symbol
// error is detected; d=5 guarantees this cannot alias to a valid codeword.

// ChipkillData is the number of data symbols per codeword.
const ChipkillData = 32

// ChipkillCheck is the number of check symbols per codeword.
const ChipkillCheck = 4

// chipkillGen holds the generator polynomial coefficients, lowest degree
// first, excluding the leading 1 (g has degree 4).
var chipkillGen [ChipkillCheck]byte

func init() {
	// g(x) = ∏_{i=0..3} (x − α^i); build by convolution.
	g := []byte{1}
	for i := 0; i < ChipkillCheck; i++ {
		root := gfPow(i)
		ng := make([]byte, len(g)+1)
		for j, c := range g {
			ng[j] ^= gfMul(c, root)
			ng[j+1] ^= c
		}
		g = ng
	}
	// g is degree 4 with leading coefficient 1 at g[4].
	copy(chipkillGen[:], g[:ChipkillCheck])
}

// ChipkillEncode computes the 4 check symbols for 32 data symbols.
func ChipkillEncode(data *[ChipkillData]byte) [ChipkillCheck]byte {
	// Systematic encoding: parity = (data(x)·x⁴) mod g(x), computed with an
	// LFSR running over the data symbols high-degree-first.
	var reg [ChipkillCheck]byte
	for i := ChipkillData - 1; i >= 0; i-- {
		fb := data[i] ^ reg[ChipkillCheck-1]
		copy(reg[1:], reg[:ChipkillCheck-1])
		reg[0] = 0
		if fb != 0 {
			for j := 0; j < ChipkillCheck; j++ {
				reg[j] ^= gfMul(fb, chipkillGen[j])
			}
		}
	}
	return reg
}

// chipkillSyndromes evaluates the received polynomial at the generator
// roots. Codeword layout: coefficient of x^j is check[j] for j<4 and
// data[j−4] for j≥4.
func chipkillSyndromes(data *[ChipkillData]byte, check *[ChipkillCheck]byte) (s [ChipkillCheck]byte, zero bool) {
	zero = true
	for k := 0; k < ChipkillCheck; k++ {
		root := gfPow(k)
		// Horner from the highest coefficient down.
		var acc byte
		for i := ChipkillData - 1; i >= 0; i-- {
			acc = gfMul(acc, root) ^ data[i]
		}
		for j := ChipkillCheck - 1; j >= 0; j-- {
			acc = gfMul(acc, root) ^ check[j]
		}
		s[k] = acc
		if acc != 0 {
			zero = false
		}
	}
	return s, zero
}

// ChipkillDecode checks and repairs one codeword in place. It returns the
// symbol position corrected (0–31 data, 32–35 check) when Result is
// Corrected, else −1.
func ChipkillDecode(data *[ChipkillData]byte, check *[ChipkillCheck]byte) (Result, int) {
	s, zero := chipkillSyndromes(data, check)
	if zero {
		return OK, -1
	}
	// Single error e at codeword position p (degree p): s[k] = e·(α^k)^p.
	// Then s[1]/s[0] = α^p and the remaining syndromes must agree.
	if s[0] == 0 || s[1] == 0 {
		// A single error cannot zero any syndrome (e≠0, α^kp≠0).
		return Detected, -1
	}
	x := gfDiv(s[1], s[0]) // α^p
	e := s[0]
	if gfMul(s[1], x) != s[2] || gfMul(s[2], x) != s[3] {
		return Detected, -1
	}
	p := int(gfLog[x])
	if p >= ChipkillData+ChipkillCheck {
		return Detected, -1
	}
	if p < ChipkillCheck {
		check[p] ^= e
		return Corrected, ChipkillData + p
	}
	data[p-ChipkillCheck] ^= e
	return Corrected, p - ChipkillCheck
}
