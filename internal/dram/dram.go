// Package dram models the main memory system of the evaluation platform —
// the DRAMSim2 substitute. It implements the Table 3 organization (4
// channels, 2 DIMMs/channel, 4 ranks/DIMM, 8 banks/rank, DDR3-style x4
// devices, open-page row-buffer policy), a command-level timing model, and a
// Micron TN-41-01-style counting power model.
//
// The ECC scheme of each access changes its physical footprint exactly as
// §2.2/§3.1 describe: SECDED uses one 72-bit channel (18 chips), chipkill
// lock-steps a channel pair (36 chips) and transfers two adjacent cachelines
// per access (forced prefetch), and no-ECC leaves the 2 ECC chips of the
// channel idle (16 chips). Absolute joules are model outputs calibrated to
// DDR3 datasheet magnitudes; the experiments rely on relative comparisons.
package dram

import (
	"fmt"

	"coopabft/internal/ecc"
)

// LineBytes is the cacheline/transfer granularity.
const LineBytes = 64

// Config describes geometry, timing (in CPU cycles) and energy constants.
type Config struct {
	Channels     int // physical 72-bit channels
	DIMMsPerChan int
	RanksPerDIMM int
	BanksPerRank int
	RowBytes     int // row-buffer size per bank, data bytes

	// CPUPerMemCycle converts DDR command timing to CPU cycles (2 GHz CPU,
	// 667 MHz memory clock → 3).
	CPUPerMemCycle int
	TRCD, TRP, TCL int // in memory cycles
	TBurst         int // memory cycles the data bus is busy per 64B line

	// Energy constants, per chip. See DESIGN.md §4 for calibration notes.
	ActEnergyPerChipJ   float64 // one activate+precharge pair
	BurstEnergyPerChipJ float64 // one 8-beat read/write burst through a chip
	WriteExtraPerChipJ  float64 // additional energy for writes
	BackgroundPowerW    float64 // standby+refresh power per chip

	// Ablation switches (normally false), used by the ablation benchmarks
	// to decompose the chipkill cost model (DESIGN.md §4).
	//
	// DisableLockstep lets a chipkill access occupy only its own channel
	// (no partner-channel ganging, no companion-line prefetch).
	DisableLockstep bool
	// DisableChipOverfetch charges a chipkill access for 18 chips instead
	// of 36 — isolating the activation-overfetch term.
	DisableChipOverfetch bool
	// ClosedPagePolicy precharges after every access: no row-buffer hits.
	ClosedPagePolicy bool
}

// DefaultConfig mirrors Table 3 of the paper.
func DefaultConfig() Config {
	return Config{
		Channels:     4,
		DIMMsPerChan: 2,
		RanksPerDIMM: 4,
		BanksPerRank: 8,
		RowBytes:     8192,

		CPUPerMemCycle: 3,
		TRCD:           10,
		TRP:            10,
		TCL:            10,
		TBurst:         4,

		// Per-chip energies include array access plus I/O and termination;
		// calibrated so a loaded channel draws a realistic fraction of the
		// modeled node power (see DESIGN.md §4).
		ActEnergyPerChipJ:   3.0e-9,
		BurstEnergyPerChipJ: 1.5e-9,
		WriteExtraPerChipJ:  0.15e-9,
		BackgroundPowerW:    8e-3,
	}
}

// ChipsPerChannel is fixed by the 72-bit x4 channel: 18 chips.
const ChipsPerChannel = 18

// TotalChips returns the number of DRAM chips in the node.
func (c Config) TotalChips() int {
	return c.Channels * c.DIMMsPerChan * c.RanksPerDIMM * ChipsPerChannel
}

// banksPerChannel returns the number of independently schedulable banks
// behind one channel.
func (c Config) banksPerChannel() int {
	return c.DIMMsPerChan * c.RanksPerDIMM * c.BanksPerRank
}

// Location is a decoded physical address.
type Location struct {
	Channel int
	Bank    int // flattened DIMM/rank/bank index within the channel
	Row     int
	Col     int // cacheline index within the row
}

// MapAddress decodes a physical address. The mapping interleaves cachelines
// across channels (pairing channels 2k/2k+1 for chipkill lock-step), keeps
// consecutive within-channel lines in the same row (open-page friendly),
// and spreads rows across banks.
func (c Config) MapAddress(addr uint64) Location {
	line := addr / LineBytes
	ch := int(line % uint64(c.Channels))
	lwc := line / uint64(c.Channels) // line index within the channel
	linesPerRow := uint64(c.RowBytes / LineBytes)
	col := int(lwc % linesPerRow)
	rb := lwc / linesPerRow
	bank := int(rb % uint64(c.banksPerChannel()))
	row := int(rb / uint64(c.banksPerChannel()))
	return Location{Channel: ch, Bank: bank, Row: row, Col: col}
}

// UnmapLocation inverts MapAddress: given a decoded fault site (the
// chip/row/column information the MC records in its error registers), it
// reconstructs the line-aligned physical address. The OS uses this — the
// paper implements it as a kernel module so the MC logic stays simple.
func (c Config) UnmapLocation(l Location) uint64 {
	linesPerRow := uint64(c.RowBytes / LineBytes)
	rb := uint64(l.Row)*uint64(c.banksPerChannel()) + uint64(l.Bank)
	lwc := rb*linesPerRow + uint64(l.Col)
	line := lwc*uint64(c.Channels) + uint64(l.Channel)
	return line * LineBytes
}

// CompanionLine returns the address of the line fetched alongside addr by a
// lock-stepped chipkill access (the same row/bank/col on the partner
// channel).
func (c Config) CompanionLine(addr uint64) uint64 {
	line := addr / LineBytes
	ch := line % uint64(c.Channels)
	partner := ch ^ 1
	return (line-ch+partner)*LineBytes + addr%LineBytes
}

// bankState tracks one bank's open row and availability.
type bankState struct {
	openRow  int // -1 when precharged
	freeAt   uint64
	everUsed bool
}

// AccessResult reports the timing and energy of one memory access.
type AccessResult struct {
	Start    uint64 // cycle the command began issuing
	Complete uint64 // cycle the critical word returned
	RowHit   bool
	EnergyJ  float64 // dynamic energy of this access
}

// Latency returns the request latency including queueing.
func (r AccessResult) Latency(now uint64) uint64 { return r.Complete - now }

// Stats accumulates memory-system counters.
type Stats struct {
	Reads, Writes    uint64
	RowHits, RowMiss uint64
	Activations      uint64
	// Energy split per Figure 5: dynamic (activate + burst + ECC logic)
	// vs standby (background + refresh), the latter filled by Finalize.
	DynamicEnergyJ float64
	StandbyEnergyJ float64
	// BusyCycles sums data-bus occupancy across channels (bandwidth proxy).
	BusyCycles uint64
}

// TotalEnergyJ returns dynamic + standby energy.
func (s Stats) TotalEnergyJ() float64 { return s.DynamicEnergyJ + s.StandbyEnergyJ }

// System is the memory-system timing and energy model.
type System struct {
	cfg     Config
	banks   [][]bankState // [channel][bank]
	busFree []uint64      // per channel
	stats   Stats
}

// New builds a memory system from cfg.
func New(cfg Config) *System {
	s := &System{cfg: cfg, busFree: make([]uint64, cfg.Channels)}
	s.banks = make([][]bankState, cfg.Channels)
	for ch := range s.banks {
		s.banks[ch] = make([]bankState, cfg.banksPerChannel())
		for b := range s.banks[ch] {
			s.banks[ch][b].openRow = -1
		}
	}
	return s
}

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// Stats returns a copy of the accumulated counters.
func (s *System) Stats() Stats { return s.stats }

// Access services one cacheline request under the given ECC scheme at CPU
// cycle now, updating bank/bus state and energy.
func (s *System) Access(now uint64, addr uint64, write bool, scheme ecc.Scheme) AccessResult {
	loc := s.cfg.MapAddress(addr)
	cpm := uint64(s.cfg.CPUPerMemCycle)

	channels := []int{loc.Channel}
	if scheme == ecc.Chipkill && !s.cfg.DisableLockstep {
		channels = append(channels, loc.Channel^1)
	}

	start := now
	for _, ch := range channels {
		if s.busFree[ch] > start {
			start = s.busFree[ch]
		}
		if b := &s.banks[ch][loc.Bank]; b.freeAt > start {
			start = b.freeAt
		}
	}

	// Row-buffer check on the primary channel's bank; a chipkill access
	// opened the same row on the partner, so the states agree.
	primary := &s.banks[loc.Channel][loc.Bank]
	rowHit := primary.openRow == loc.Row

	latency := uint64(0)
	energy := 0.0
	chips := scheme.ChipsActivated()
	if scheme == ecc.Chipkill && s.cfg.DisableChipOverfetch {
		chips = ecc.SECDED.ChipsActivated()
	}
	if !rowHit {
		if primary.openRow >= 0 {
			latency += uint64(s.cfg.TRP) * cpm
		}
		latency += uint64(s.cfg.TRCD) * cpm
		energy += float64(chips) * s.cfg.ActEnergyPerChipJ
		s.stats.Activations++
	}
	latency += uint64(s.cfg.TCL)*cpm + uint64(s.cfg.TBurst)*cpm

	energy += float64(chips) * s.cfg.BurstEnergyPerChipJ
	if write {
		energy += float64(chips) * s.cfg.WriteExtraPerChipJ
		s.stats.Writes++
	} else {
		s.stats.Reads++
	}

	busBusy := uint64(s.cfg.TBurst) * cpm
	done := start + latency
	newRow := loc.Row
	if s.cfg.ClosedPagePolicy {
		newRow = -1 // precharge immediately; the next access re-activates
	}
	for _, ch := range channels {
		s.busFree[ch] = start + latency // bus released after the burst completes
		b := &s.banks[ch][loc.Bank]
		b.openRow = newRow
		b.freeAt = done
		b.everUsed = true
		s.stats.BusyCycles += busBusy
	}

	if rowHit {
		s.stats.RowHits++
	} else {
		s.stats.RowMiss++
	}
	s.stats.DynamicEnergyJ += energy
	return AccessResult{Start: start, Complete: done, RowHit: rowHit, EnergyJ: energy}
}

// Finalize charges background/refresh energy for a run of elapsed CPU
// cycles at the given CPU frequency and returns the final stats.
func (s *System) Finalize(elapsedCycles uint64, cpuHz float64) Stats {
	seconds := float64(elapsedCycles) / cpuHz
	s.stats.StandbyEnergyJ += seconds * s.cfg.BackgroundPowerW * float64(s.cfg.TotalChips())
	return s.stats
}

// RowHitRate returns hits/(hits+misses), 0 when idle.
func (s Stats) RowHitRate() float64 {
	t := s.RowHits + s.RowMiss
	if t == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(t)
}

// String summarizes the stats.
func (s Stats) String() string {
	return fmt.Sprintf("dram.Stats{r %d, w %d, rowhit %.1f%%, dyn %.3g J, standby %.3g J}",
		s.Reads, s.Writes, 100*s.RowHitRate(), s.DynamicEnergyJ, s.StandbyEnergyJ)
}
