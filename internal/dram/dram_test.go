package dram

import (
	"testing"
	"testing/quick"

	"coopabft/internal/ecc"
)

func TestMapAddressDeterministicAndInRange(t *testing.T) {
	cfg := DefaultConfig()
	f := func(addr uint64) bool {
		l := cfg.MapAddress(addr)
		l2 := cfg.MapAddress(addr)
		if l != l2 {
			return false
		}
		return l.Channel >= 0 && l.Channel < cfg.Channels &&
			l.Bank >= 0 && l.Bank < cfg.banksPerChannel() &&
			l.Col >= 0 && l.Col < cfg.RowBytes/LineBytes &&
			l.Row >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMapAddressChannelInterleave(t *testing.T) {
	cfg := DefaultConfig()
	for i := 0; i < 8; i++ {
		l := cfg.MapAddress(uint64(i) * LineBytes)
		if l.Channel != i%4 {
			t.Errorf("line %d on channel %d, want %d", i, l.Channel, i%4)
		}
	}
}

func TestMapAddressSameLineSameLocation(t *testing.T) {
	cfg := DefaultConfig()
	a := cfg.MapAddress(0x1000)
	b := cfg.MapAddress(0x1000 + 63)
	if a != b {
		t.Errorf("same line mapped differently: %v vs %v", a, b)
	}
}

func TestMapAddressRowLocality(t *testing.T) {
	// Consecutive lines on the same channel must share a row until the row
	// is exhausted (open-page friendliness).
	cfg := DefaultConfig()
	base := cfg.MapAddress(0)
	linesPerRow := cfg.RowBytes / LineBytes
	for i := 1; i < linesPerRow; i++ {
		addr := uint64(i) * LineBytes * uint64(cfg.Channels) // stay on channel 0
		l := cfg.MapAddress(addr)
		if l.Channel != base.Channel || l.Row != base.Row || l.Bank != base.Bank {
			t.Fatalf("line %d left the row: %+v vs %+v", i, l, base)
		}
		if l.Col != i {
			t.Fatalf("line %d col = %d", i, l.Col)
		}
	}
	// The next one rolls to a new bank or row.
	l := cfg.MapAddress(uint64(linesPerRow) * LineBytes * uint64(cfg.Channels))
	if l.Bank == base.Bank && l.Row == base.Row {
		t.Error("row never ends")
	}
}

func TestCompanionLine(t *testing.T) {
	cfg := DefaultConfig()
	// Channel 0's companion is channel 1 and vice versa; 2↔3.
	for line := uint64(0); line < 8; line++ {
		addr := line * LineBytes
		comp := cfg.CompanionLine(addr)
		lc := cfg.MapAddress(comp)
		la := cfg.MapAddress(addr)
		if lc.Channel != la.Channel^1 {
			t.Errorf("companion of ch%d is ch%d", la.Channel, lc.Channel)
		}
		if lc.Row != la.Row || lc.Bank != la.Bank || lc.Col != la.Col {
			t.Errorf("companion not at the mirror location: %+v vs %+v", lc, la)
		}
		if cfg.CompanionLine(comp) != addr {
			t.Errorf("companion is not an involution for line %d", line)
		}
	}
}

func TestAccessRowHitVsMiss(t *testing.T) {
	s := New(DefaultConfig())
	r1 := s.Access(0, 0, false, ecc.SECDED)
	if r1.RowHit {
		t.Error("first access should miss")
	}
	// Same line again: row hit, shorter latency.
	now := r1.Complete
	r2 := s.Access(now, 0, false, ecc.SECDED)
	if !r2.RowHit {
		t.Error("second access should hit")
	}
	if r2.Complete-now >= r1.Complete-0 {
		t.Errorf("row hit latency %d not shorter than miss %d", r2.Complete-now, r1.Complete)
	}
	if r2.EnergyJ >= r1.EnergyJ {
		t.Errorf("row hit energy %g not below miss %g", r2.EnergyJ, r1.EnergyJ)
	}
}

func TestAccessRowConflict(t *testing.T) {
	cfg := DefaultConfig()
	s := New(cfg)
	// Two addresses in the same bank but different rows: the second access
	// pays precharge + activate.
	rowSpan := uint64(cfg.RowBytes/LineBytes) * uint64(cfg.Channels) * uint64(cfg.banksPerChannel()) * LineBytes
	a, b := uint64(0), rowSpan
	la, lb := cfg.MapAddress(a), cfg.MapAddress(b)
	if la.Channel != lb.Channel || la.Bank != lb.Bank || la.Row == lb.Row {
		t.Fatalf("test addresses don't conflict: %+v %+v", la, lb)
	}
	r1 := s.Access(0, a, false, ecc.SECDED)
	r2 := s.Access(r1.Complete, b, false, ecc.SECDED)
	cpm := uint64(cfg.CPUPerMemCycle)
	wantMin := uint64(cfg.TRP+cfg.TRCD+cfg.TCL+cfg.TBurst) * cpm
	if got := r2.Complete - r1.Complete; got < wantMin {
		t.Errorf("conflict latency %d < %d", got, wantMin)
	}
}

func TestChipkillEnergyExceedsSECDED(t *testing.T) {
	sCk := New(DefaultConfig())
	sSd := New(DefaultConfig())
	rCk := sCk.Access(0, 0, false, ecc.Chipkill)
	rSd := sSd.Access(0, 0, false, ecc.SECDED)
	if rCk.EnergyJ <= rSd.EnergyJ {
		t.Errorf("chipkill access energy %g <= secded %g", rCk.EnergyJ, rSd.EnergyJ)
	}
	// Exactly the 36/18 chip ratio on a miss.
	if ratio := rCk.EnergyJ / rSd.EnergyJ; ratio < 1.9 || ratio > 2.1 {
		t.Errorf("chipkill/secded energy ratio = %v, want ≈2", ratio)
	}
}

func TestNoECCCheaperThanSECDED(t *testing.T) {
	sN := New(DefaultConfig())
	sS := New(DefaultConfig())
	rN := sN.Access(0, 0, false, ecc.None)
	rS := sS.Access(0, 0, false, ecc.SECDED)
	if r := rS.EnergyJ / rN.EnergyJ; r < 1.12 || r > 1.13 {
		t.Errorf("secded/none energy ratio = %v, want 18/16", r)
	}
}

func TestChipkillBlocksPartnerChannel(t *testing.T) {
	cfg := DefaultConfig()
	s := New(cfg)
	// Chipkill access on channel 0 occupies channel 1's bus too.
	r1 := s.Access(0, 0, false, ecc.Chipkill) // lines ch0+ch1
	// A SECDED access to channel 1 issued at cycle 0 must wait.
	r2 := s.Access(0, 1*LineBytes, false, ecc.SECDED)
	if r2.Start < r1.Start+uint64(cfg.TBurst) {
		t.Errorf("partner channel not blocked: start %d", r2.Start)
	}
	// Whereas channel 2 is free.
	s2 := New(cfg)
	s2.Access(0, 0, false, ecc.Chipkill)
	r3 := s2.Access(0, 2*LineBytes, false, ecc.SECDED)
	if r3.Start != 0 {
		t.Errorf("independent channel was blocked: start %d", r3.Start)
	}
}

func TestChipkillOpensPartnerRow(t *testing.T) {
	// The forced prefetch means the companion line is a row hit afterwards.
	s := New(DefaultConfig())
	r1 := s.Access(0, 0, false, ecc.Chipkill)
	comp := s.Config().CompanionLine(0)
	r2 := s.Access(r1.Complete, comp, false, ecc.SECDED)
	if !r2.RowHit {
		t.Error("companion line should row-hit after a chipkill access")
	}
}

func TestWriteCostsMoreThanRead(t *testing.T) {
	s1 := New(DefaultConfig())
	s2 := New(DefaultConfig())
	rd := s1.Access(0, 0, false, ecc.SECDED)
	wr := s2.Access(0, 0, true, ecc.SECDED)
	if wr.EnergyJ <= rd.EnergyJ {
		t.Errorf("write energy %g <= read %g", wr.EnergyJ, rd.EnergyJ)
	}
}

func TestStatsAccumulate(t *testing.T) {
	s := New(DefaultConfig())
	s.Access(0, 0, false, ecc.SECDED)
	s.Access(100, 0, true, ecc.SECDED)
	st := s.Stats()
	if st.Reads != 1 || st.Writes != 1 || st.RowHits != 1 || st.RowMiss != 1 || st.Activations != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.RowHitRate() != 0.5 {
		t.Errorf("hit rate = %v", st.RowHitRate())
	}
}

func TestFinalizeStandbyEnergy(t *testing.T) {
	cfg := DefaultConfig()
	s := New(cfg)
	st := s.Finalize(2e9, 2e9) // one second at 2 GHz
	want := cfg.BackgroundPowerW * float64(cfg.TotalChips())
	if diff := st.StandbyEnergyJ - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("standby for 1s = %g, want %g", st.StandbyEnergyJ, want)
	}
	if st.TotalEnergyJ() != st.StandbyEnergyJ+st.DynamicEnergyJ {
		t.Error("TotalEnergyJ inconsistent")
	}
}

func TestRowHitRateEmptySafe(t *testing.T) {
	var st Stats
	if st.RowHitRate() != 0 {
		t.Error("empty hit rate not 0")
	}
}

// Property: completion is never before start, and never before `now`.
func TestAccessMonotonicProperty(t *testing.T) {
	s := New(DefaultConfig())
	now := uint64(0)
	f := func(addrSeed uint32, write bool, schemeSel uint8) bool {
		scheme := []ecc.Scheme{ecc.None, ecc.SECDED, ecc.Chipkill}[schemeSel%3]
		r := s.Access(now, uint64(addrSeed)*8, write, scheme)
		ok := r.Complete > r.Start && r.Start >= now && r.EnergyJ > 0
		now = r.Complete
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: UnmapLocation inverts MapAddress at line granularity.
func TestUnmapInvertsMapProperty(t *testing.T) {
	cfg := DefaultConfig()
	f := func(lineSeed uint32) bool {
		addr := uint64(lineSeed) * LineBytes
		return cfg.UnmapLocation(cfg.MapAddress(addr)) == addr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestAblationDisableLockstep(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DisableLockstep = true
	s := New(cfg)
	s.Access(0, 0, false, ecc.Chipkill)
	// Partner channel stays free.
	r := s.Access(0, 1*LineBytes, false, ecc.SECDED)
	if r.Start != 0 {
		t.Errorf("partner channel blocked with lockstep disabled: start %d", r.Start)
	}
}

func TestAblationDisableChipOverfetch(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DisableChipOverfetch = true
	sCk := New(cfg)
	sSd := New(cfg)
	rCk := sCk.Access(0, 0, false, ecc.Chipkill)
	rSd := sSd.Access(0, 0, false, ecc.SECDED)
	if rCk.EnergyJ != rSd.EnergyJ {
		t.Errorf("with overfetch disabled chipkill %g != secded %g", rCk.EnergyJ, rSd.EnergyJ)
	}
}

func TestAblationClosedPage(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ClosedPagePolicy = true
	s := New(cfg)
	r1 := s.Access(0, 0, false, ecc.SECDED)
	r2 := s.Access(r1.Complete, 0, false, ecc.SECDED)
	if r2.RowHit {
		t.Error("closed-page policy produced a row hit")
	}
	if r2.EnergyJ != r1.EnergyJ {
		t.Errorf("closed-page repeat access energy %g != %g (both re-activate)", r2.EnergyJ, r1.EnergyJ)
	}
}
