package workload

import (
	"testing"

	"coopabft/internal/ecc"
	"coopabft/internal/machine"
	"coopabft/internal/trace"
)

// runOn drives a pattern over a fresh machine and returns the result.
func runOn(t *testing.T, p Pattern, scheme ecc.Scheme, regionBytes uint64, accesses int) machine.Result {
	t.Helper()
	cfg := machine.ScaledConfig(32)
	cfg.DefaultScheme = scheme
	m := machine.New(cfg)
	a := m.OS.Malloc("workload", regionBytes)
	p.Run(m.Memory(), a.Region, accesses)
	return m.Finish()
}

func TestStreamBeatsRandomOnRowHits(t *testing.T) {
	const size = 4 << 20 // 4MB ≫ scaled L2
	stream := runOn(t, Stream{}, ecc.None, size, 1<<16)
	random := runOn(t, Random{Seed: 1}, ecc.None, size, 1<<16)
	if stream.RowHitRate <= random.RowHitRate {
		t.Errorf("stream row-hit %.2f <= random %.2f", stream.RowHitRate, random.RowHitRate)
	}
	if stream.RowHitRate < 0.9 {
		t.Errorf("stream row-hit rate %.2f too low", stream.RowHitRate)
	}
	if stream.IPC <= random.IPC {
		t.Errorf("stream IPC %.3f <= random %.3f", stream.IPC, random.IPC)
	}
}

func TestChipkillPenaltyGrowsWithRandomness(t *testing.T) {
	// §5.1's locality argument, reproduced with synthetic patterns: the
	// chipkill-vs-none dynamic-energy ratio is worse for random access than
	// for streaming (the forced prefetch is wasted).
	const size = 4 << 20
	ratio := func(p Pattern) float64 {
		ck := runOn(t, p, ecc.Chipkill, size, 1<<15)
		nn := runOn(t, p, ecc.None, size, 1<<15)
		return ck.MemDynamicJ / nn.MemDynamicJ
	}
	streamRatio := ratio(Stream{})
	randomRatio := ratio(Random{Seed: 2})
	if streamRatio >= randomRatio {
		t.Errorf("chipkill penalty: stream %.2f >= random %.2f", streamRatio, randomRatio)
	}
	if randomRatio < 2.0 {
		t.Errorf("random chipkill penalty %.2f below the 36/16 chip floor", randomRatio)
	}
}

func TestStrideDefeatsRowBuffer(t *testing.T) {
	const size = 8 << 20
	// A stride spanning a full row group (linesPerRow × channels = 512
	// lines) lands every consecutive access in a fresh row.
	stride := runOn(t, Stride{Lines: 512}, ecc.None, size, 1<<14)
	if stride.RowHitRate > 0.2 {
		t.Errorf("large-stride row-hit rate %.2f should be near zero", stride.RowHitRate)
	}
}

func TestPointerChaseSlowestPerAccess(t *testing.T) {
	const size = 4 << 20
	const n = 1 << 14
	chase := runOn(t, PointerChase{Seed: 3}, ecc.None, size, n)
	stream := runOn(t, Stream{}, ecc.None, size, n)
	if chase.Seconds <= stream.Seconds {
		t.Errorf("pointer chase %.3gs not slower than stream %.3gs", chase.Seconds, stream.Seconds)
	}
}

func TestPatternsEmitRequestedAccessCount(t *testing.T) {
	var count int
	mem := &trace.Memory{Probe: func(addr uint64, write bool) { count++ }}
	r := trace.Region{Base: 4096, Size: 1 << 20}
	for _, p := range All(4) {
		count = 0
		p.Run(mem, r, 1000)
		if count != 1000 {
			t.Errorf("%s emitted %d accesses, want 1000", p.Name(), count)
		}
	}
}

func TestStreamWriteFraction(t *testing.T) {
	var writes int
	mem := &trace.Memory{Probe: func(addr uint64, write bool) {
		if write {
			writes++
		}
	}}
	r := trace.Region{Base: 4096, Size: 1 << 20}
	Stream{WriteFraction: 0.25}.Run(mem, r, 1000)
	if writes != 250 {
		t.Errorf("writes = %d, want 250", writes)
	}
	writes = 0
	Stream{}.Run(mem, r, 1000)
	if writes != 0 {
		t.Errorf("read-only stream produced %d writes", writes)
	}
}

func TestEmptyRegionSafe(t *testing.T) {
	mem := &trace.Memory{}
	for _, p := range All(5) {
		p.Run(mem, trace.Region{}, 100) // must not panic or divide by zero
	}
}
