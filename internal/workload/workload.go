// Package workload provides synthetic memory-access generators — stream,
// strided, random, and pointer-chase patterns — used to validate the memory
// system model independently of the ABFT kernels and to characterize the
// ECC schemes' sensitivity to locality (the effect behind §5.1's
// "if access locality is good ... the dynamic energy saving is limited").
package workload

import (
	"math/rand"

	"coopabft/internal/trace"
)

// Pattern generates a sequence of addresses over a region.
type Pattern interface {
	// Name identifies the pattern.
	Name() string
	// Run emits `accesses` touches over region r through mem.
	Run(mem *trace.Memory, r trace.Region, accesses int)
}

// Stream sweeps the region sequentially, line by line — maximal spatial
// locality and row-buffer friendliness.
type Stream struct {
	// WriteFraction in [0,1] marks that share of accesses as writes.
	WriteFraction float64
}

// Name implements Pattern.
func (Stream) Name() string { return "stream" }

// Run implements Pattern.
func (s Stream) Run(mem *trace.Memory, r trace.Region, accesses int) {
	lines := r.Size / trace.LineSize
	if lines == 0 {
		return
	}
	writeEvery := 0
	if s.WriteFraction > 0 {
		writeEvery = int(1 / s.WriteFraction)
	}
	for i := 0; i < accesses; i++ {
		addr := r.Base + (uint64(i)%lines)*trace.LineSize
		write := writeEvery > 0 && i%writeEvery == 0
		mem.Touch(addr, 8, write)
	}
}

// Stride walks the region with a fixed line stride — the pathological
// row-buffer case when the stride exceeds a row.
type Stride struct {
	Lines int // stride in cachelines
}

// Name implements Pattern.
func (Stride) Name() string { return "stride" }

// Run implements Pattern.
func (s Stride) Run(mem *trace.Memory, r trace.Region, accesses int) {
	lines := r.Size / trace.LineSize
	if lines == 0 {
		return
	}
	step := uint64(s.Lines)
	if step == 0 {
		step = 1
	}
	pos := uint64(0)
	for i := 0; i < accesses; i++ {
		mem.Touch(r.Base+(pos%lines)*trace.LineSize, 8, false)
		pos += step
	}
}

// Random touches uniformly random lines — minimal locality, the worst case
// for chipkill's forced prefetch.
type Random struct {
	Seed int64
}

// Name implements Pattern.
func (Random) Name() string { return "random" }

// Run implements Pattern.
func (p Random) Run(mem *trace.Memory, r trace.Region, accesses int) {
	lines := r.Size / trace.LineSize
	if lines == 0 {
		return
	}
	rng := rand.New(rand.NewSource(p.Seed))
	for i := 0; i < accesses; i++ {
		mem.Touch(r.Base+uint64(rng.Int63n(int64(lines)))*trace.LineSize, 8, false)
	}
}

// PointerChase follows a precomputed random permutation cycle — fully
// serialized dependent accesses (no memory-level parallelism to exploit).
type PointerChase struct {
	Seed int64
}

// Name implements Pattern.
func (PointerChase) Name() string { return "pointer-chase" }

// Run implements Pattern.
func (p PointerChase) Run(mem *trace.Memory, r trace.Region, accesses int) {
	lines := int(r.Size / trace.LineSize)
	if lines == 0 {
		return
	}
	rng := rand.New(rand.NewSource(p.Seed))
	next := rng.Perm(lines)
	pos := 0
	for i := 0; i < accesses; i++ {
		mem.Touch(r.Base+uint64(pos)*trace.LineSize, 8, false)
		pos = next[pos]
	}
}

// All lists one instance of each pattern.
func All(seed int64) []Pattern {
	return []Pattern{
		Stream{WriteFraction: 0.25},
		Stride{Lines: 64},
		Random{Seed: seed},
		PointerChase{Seed: seed},
	}
}
