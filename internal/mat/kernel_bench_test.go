package mat

import (
	"fmt"
	"testing"
)

// mulAddSeed replicates the pre-kernel-layer MulAddInto (blocked i-k-j with
// the av == 0 skip) as the before/after baseline for EXPERIMENTS.md.
func mulAddSeed(c, a, b *Matrix) {
	n, k, m := a.Rows, a.Cols, b.Cols
	for ii := 0; ii < n; ii += gemmBlock {
		iMax := min(ii+gemmBlock, n)
		for kk := 0; kk < k; kk += gemmBlock {
			kMax := min(kk+gemmBlock, k)
			for jj := 0; jj < m; jj += gemmBlock {
				jMax := min(jj+gemmBlock, m)
				for i := ii; i < iMax; i++ {
					crow := c.Data[i*c.Stride : i*c.Stride+m]
					arow := a.Data[i*a.Stride : i*a.Stride+k]
					for p := kk; p < kMax; p++ {
						av := arow[p]
						if av == 0 {
							continue
						}
						brow := b.Data[p*b.Stride : p*b.Stride+m]
						for j := jj; j < jMax; j++ {
							crow[j] += av * brow[j]
						}
					}
				}
			}
		}
	}
}

func reportGFLOPS(b *testing.B, flopsPerOp float64) {
	sec := b.Elapsed().Seconds()
	if sec > 0 {
		b.ReportMetric(flopsPerOp*float64(b.N)/sec/1e9, "GFLOP/s")
	}
}

// BenchmarkGEMM reports GFLOP/s for the seed loop, the packed serial
// kernel, and the packed row-band-parallel kernel at the ISSUE's four
// sizes. BENCH_*.json tracks the trajectory.
func BenchmarkGEMM(b *testing.B) {
	for _, n := range []int{128, 256, 512, 1024} {
		a := Random(n, n, 1)
		bm := Random(n, n, 2)
		c := New(n, n)
		flops := 2 * float64(n) * float64(n) * float64(n)
		b.Run(fmt.Sprintf("n=%d/seed", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mulAddSeed(c, a, bm)
			}
			reportGFLOPS(b, flops)
		})
		b.Run(fmt.Sprintf("n=%d/packed", n), func(b *testing.B) {
			withParallelism(1, func() {
				for i := 0; i < b.N; i++ {
					MulAddInto(c, a, bm)
				}
			})
			reportGFLOPS(b, flops)
		})
		b.Run(fmt.Sprintf("n=%d/parallel", n), func(b *testing.B) {
			withParallelism(8, func() {
				for i := 0; i < b.N; i++ {
					MulAddInto(c, a, bm)
				}
			})
			reportGFLOPS(b, flops)
		})
	}
}

// BenchmarkGEMMTile compares the 2×4 and 4×4 micro-tiles, plain and fused,
// at the default blocking — the measurement behind the defaultTile choice
// (the 4×4's 16 accumulators spill on amd64's 16-register FP file).
func BenchmarkGEMMTile(b *testing.B) {
	for _, n := range []int{256, 1024} {
		a := Random(n, n, 1)
		bm := Random(n, n, 2)
		c := New(n, n)
		fa := &fusedAcc{
			rs:   make([]float64, n),
			cs:   make([]float64, n),
			asum: make([]float64, n),
			bsum: make([]float64, n),
		}
		flops := 2 * float64(n) * float64(n) * float64(n)
		for _, tm := range []int{2, 4} {
			b.Run(fmt.Sprintf("n=%d/tile=%dx4", n, tm), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					gemmPackedTile(c, a, bm, 1, false, tm, nil)
				}
				reportGFLOPS(b, flops)
			})
			b.Run(fmt.Sprintf("n=%d/tile=%dx4-fused", n, tm), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					gemmPackedTile(c, a, bm, 1, false, tm, fa)
				}
				reportGFLOPS(b, flops)
			})
		}
	}
}

// BenchmarkGEMMFused measures the full fused entry point (checksum
// accumulation + deterministic band reduction) against plain MulAddInto —
// the kernel-layer half of the fused-vs-two-pass story.
func BenchmarkGEMMFused(b *testing.B) {
	for _, n := range []int{256, 1024} {
		a := Random(n, n, 1)
		bm := Random(n, n, 2)
		c := New(n, n)
		fs := &FusedSums{
			RowSums: make([]float64, n),
			ColSums: make([]float64, n),
			ASums:   make([]float64, n),
			BSums:   make([]float64, n),
		}
		flops := 2 * float64(n) * float64(n) * float64(n)
		for _, par := range []int{1, 8} {
			b.Run(fmt.Sprintf("n=%d/par=%d/plain", n, par), func(b *testing.B) {
				withParallelism(par, func() {
					for i := 0; i < b.N; i++ {
						MulAddInto(c, a, bm)
					}
				})
				reportGFLOPS(b, flops)
			})
			b.Run(fmt.Sprintf("n=%d/par=%d/fused", n, par), func(b *testing.B) {
				withParallelism(par, func() {
					for i := 0; i < b.N; i++ {
						MulAddIntoFused(c, a, bm, fs)
					}
				})
				reportGFLOPS(b, flops)
			})
		}
	}
}

// BenchmarkCholesky times the blocked factorization (panel + packed
// TRSM/SYRK) serial vs parallel.
func BenchmarkCholesky(b *testing.B) {
	for _, n := range []int{128, 256, 512, 1024} {
		spd := SymmetricPositiveDefinite(n, 3)
		flops := float64(n) * float64(n) * float64(n) / 3
		for _, par := range []int{1, 8} {
			name := fmt.Sprintf("n=%d/par=%d", n, par)
			b.Run(name, func(b *testing.B) {
				withParallelism(par, func() {
					for i := 0; i < b.N; i++ {
						b.StopTimer()
						w := spd.Clone()
						b.StartTimer()
						if err := CholeskyBlocked(w, 64, nil); err != nil {
							b.Fatal(err)
						}
					}
				})
				reportGFLOPS(b, flops)
			})
		}
	}
}

// BenchmarkLU times the blocked LU (panel + packed rank-k trailing update)
// serial vs parallel.
func BenchmarkLU(b *testing.B) {
	for _, n := range []int{128, 256, 512, 1024} {
		src := DiagonallyDominant(n, 4)
		flops := 2 * float64(n) * float64(n) * float64(n) / 3
		for _, par := range []int{1, 8} {
			name := fmt.Sprintf("n=%d/par=%d", n, par)
			b.Run(name, func(b *testing.B) {
				withParallelism(par, func() {
					for i := 0; i < b.N; i++ {
						b.StopTimer()
						w := src.Clone()
						b.StartTimer()
						if _, err := LU(w, nil); err != nil {
							b.Fatal(err)
						}
					}
				})
				reportGFLOPS(b, flops)
			})
		}
	}
}

// BenchmarkMulVec times the row-band-parallel matrix-vector product.
func BenchmarkMulVec(b *testing.B) {
	n := 1024
	a := Random(n, n, 5)
	x := RandomVec(n, 6)
	y := make([]float64, n)
	flops := 2 * float64(n) * float64(n)
	for _, par := range []int{1, 8} {
		b.Run(fmt.Sprintf("n=%d/par=%d", n, par), func(b *testing.B) {
			withParallelism(par, func() {
				for i := 0; i < b.N; i++ {
					MulVecInto(y, a, x)
				}
			})
			reportGFLOPS(b, flops)
		})
	}
}
