package mat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewAndAccessors(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || m.Stride != 4 || len(m.Data) != 12 {
		t.Fatalf("New(3,4) = %+v", m)
	}
	m.Set(1, 2, 7.5)
	if got := m.At(1, 2); got != 7.5 {
		t.Errorf("At(1,2) = %v, want 7.5", got)
	}
	m.Add(1, 2, 0.5)
	if got := m.At(1, 2); got != 8 {
		t.Errorf("after Add, At(1,2) = %v, want 8", got)
	}
}

func TestNewPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1, 2) did not panic")
		}
	}()
	New(-1, 2)
}

func TestFromSlice(t *testing.T) {
	m := FromSlice(2, 2, []float64{1, 2, 3, 4})
	if m.At(1, 0) != 3 {
		t.Errorf("At(1,0) = %v, want 3", m.At(1, 0))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice with wrong length did not panic")
		}
	}()
	FromSlice(2, 2, []float64{1})
}

func TestViewSharesStorage(t *testing.T) {
	m := New(4, 4)
	v := m.View(1, 1, 2, 2)
	v.Set(0, 0, 9)
	if m.At(1, 1) != 9 {
		t.Errorf("view write did not propagate: m[1][1] = %v", m.At(1, 1))
	}
	if v.Stride != m.Stride {
		t.Errorf("view stride %d, want %d", v.Stride, m.Stride)
	}
}

func TestViewBounds(t *testing.T) {
	m := New(4, 4)
	for _, c := range [][4]int{{3, 3, 2, 2}, {-1, 0, 1, 1}, {0, 0, 5, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("View(%v) did not panic", c)
				}
			}()
			m.View(c[0], c[1], c[2], c[3])
		}()
	}
	// Zero-size views are legal.
	z := m.View(2, 2, 0, 0)
	if z.Rows != 0 || z.Cols != 0 {
		t.Errorf("zero view = %dx%d", z.Rows, z.Cols)
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := Random(3, 3, 1)
	c := m.Clone()
	c.Set(0, 0, 1e9)
	if m.At(0, 0) == 1e9 {
		t.Error("Clone shares storage with original")
	}
}

func TestTranspose(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(2, 1) != 6 || tr.At(0, 1) != 4 {
		t.Errorf("Transpose wrong: %v", tr)
	}
}

func TestEye(t *testing.T) {
	e := Eye(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if e.At(i, j) != want {
				t.Errorf("Eye[%d][%d] = %v", i, j, e.At(i, j))
			}
		}
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(4, 4, 42)
	b := Random(4, 4, 42)
	if !Equal(a, b, 0) {
		t.Error("Random with same seed differs")
	}
	c := Random(4, 4, 43)
	if Equal(a, c, 0) {
		t.Error("Random with different seed is identical")
	}
	for _, v := range a.Data {
		if v < 0 || v >= 1 {
			t.Fatalf("Random value %v out of [0,1)", v)
		}
	}
}

func TestMulSmall(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c := Mul(a, b)
	want := FromSlice(2, 2, []float64{58, 64, 139, 154})
	if !Equal(c, want, 1e-12) {
		t.Errorf("Mul = %v, want %v", c, want)
	}
}

func TestMulIdentity(t *testing.T) {
	a := Random(17, 17, 5) // non-multiple of block size
	c := Mul(a, Eye(17))
	if !Equal(c, a, 1e-12) {
		t.Error("A·I ≠ A")
	}
	c2 := Mul(Eye(17), a)
	if !Equal(c2, a, 1e-12) {
		t.Error("I·A ≠ A")
	}
}

func TestMulBlockedMatchesNaive(t *testing.T) {
	// Cross-check the blocked kernel against a naive triple loop on a size
	// that spans multiple blocks.
	a := Random(70, 65, 1)
	b := Random(65, 73, 2)
	c := Mul(a, b)
	naive := New(70, 73)
	for i := 0; i < 70; i++ {
		for j := 0; j < 73; j++ {
			s := 0.0
			for k := 0; k < 65; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			naive.Set(i, j, s)
		}
	}
	if !Equal(c, naive, 1e-9) {
		t.Error("blocked Mul disagrees with naive")
	}
}

func TestMulVec(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	y := MulVec(a, []float64{5, 6})
	if y[0] != 17 || y[1] != 39 {
		t.Errorf("MulVec = %v, want [17 39]", y)
	}
}

func TestMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch did not panic")
		}
	}()
	Mul(New(2, 3), New(2, 3))
}

func TestCholeskyReconstructs(t *testing.T) {
	for _, n := range []int{1, 2, 5, 16, 33} {
		a := SymmetricPositiveDefinite(n, uint64(n))
		l := a.Clone()
		if err := Cholesky(l); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		rec := Mul(l, l.Transpose())
		if !Equal(rec, a, 1e-8*float64(n)) {
			t.Errorf("n=%d: L·Lᵀ ≠ A (max diff %g)", n, maxDiff(rec, a))
		}
	}
}

func TestCholeskyBlockedMatchesUnblocked(t *testing.T) {
	for _, n := range []int{7, 32, 50} {
		a := SymmetricPositiveDefinite(n, 9)
		ref := a.Clone()
		if err := Cholesky(ref); err != nil {
			t.Fatal(err)
		}
		for _, blk := range []int{1, 8, 16, 64} {
			got := a.Clone()
			if err := CholeskyBlocked(got, blk, nil); err != nil {
				t.Fatalf("n=%d blk=%d: %v", n, blk, err)
			}
			if !Equal(got, ref, 1e-8) {
				t.Errorf("n=%d blk=%d: blocked ≠ unblocked", n, blk)
			}
		}
	}
}

func TestCholeskyStepHook(t *testing.T) {
	a := SymmetricPositiveDefinite(20, 3)
	var steps []int
	err := CholeskyBlocked(a, 8, func(done int) error {
		steps = append(steps, done)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{8, 16, 20}
	if len(steps) != len(want) {
		t.Fatalf("steps = %v, want %v", steps, want)
	}
	for i := range want {
		if steps[i] != want[i] {
			t.Fatalf("steps = %v, want %v", steps, want)
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, −1
	if err := Cholesky(a); err != ErrNotPositiveDefinite {
		t.Errorf("err = %v, want ErrNotPositiveDefinite", err)
	}
}

func TestLUSolve(t *testing.T) {
	for _, n := range []int{1, 3, 10, 40} {
		a := DiagonallyDominant(n, uint64(n)+100)
		xTrue := RandomVec(n, 7)
		b := MulVec(a, xTrue)
		lu := a.Clone()
		piv, err := LU(lu, nil)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		x := SolveLU(lu, piv, b)
		for i := range x {
			if math.Abs(x[i]-xTrue[i]) > 1e-8 {
				t.Fatalf("n=%d: x[%d] = %v, want %v", n, i, x[i], xTrue[i])
			}
		}
	}
}

func TestLUPivots(t *testing.T) {
	// A matrix that requires pivoting: zero in the (0,0) position.
	a := FromSlice(2, 2, []float64{0, 1, 1, 0})
	lu := a.Clone()
	piv, err := LU(lu, nil)
	if err != nil {
		t.Fatal(err)
	}
	if piv[0] != 1 {
		t.Errorf("piv[0] = %d, want 1", piv[0])
	}
	x := SolveLU(lu, piv, []float64{2, 3})
	if x[0] != 3 || x[1] != 2 {
		t.Errorf("x = %v, want [3 2]", x)
	}
}

func TestLUSingular(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 2, 4})
	if _, err := LU(a, nil); err != ErrSingular {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestTriangularSolves(t *testing.T) {
	n := 12
	a := SymmetricPositiveDefinite(n, 11)
	l := a.Clone()
	if err := Cholesky(l); err != nil {
		t.Fatal(err)
	}
	xTrue := RandomVec(n, 13)
	// L·y = b, then Lᵀ·x = y should solve A·x = b.
	b := MulVec(a, xTrue)
	y := SolveLower(l, b)
	x := SolveUpperT(l, y)
	for i := range x {
		if math.Abs(x[i]-xTrue[i]) > 1e-8 {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], xTrue[i])
		}
	}
}

func TestCGSolves(t *testing.T) {
	for _, n := range []int{2, 10, 60} {
		a := SymmetricPositiveDefinite(n, uint64(n))
		xTrue := RandomVec(n, 21)
		b := MulVec(a, xTrue)
		res, err := CG(a, b, 1e-12, 10*n)
		if err != nil {
			t.Fatalf("n=%d: %v (res %g after %d iters)", n, err, res.Residual, res.Iterations)
		}
		for i := range res.X {
			if math.Abs(res.X[i]-xTrue[i]) > 1e-6 {
				t.Fatalf("n=%d: x[%d] = %v, want %v", n, i, res.X[i], xTrue[i])
			}
		}
	}
}

func TestCGZeroRHS(t *testing.T) {
	a := SymmetricPositiveDefinite(5, 1)
	res, err := CG(a, make([]float64, 5), 1e-12, 50)
	if err != nil {
		t.Fatal(err)
	}
	if Norm2(res.X) > 1e-12 {
		t.Errorf("CG(A, 0) returned nonzero x: %v", res.X)
	}
}

func TestVectorOps(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	if d := Dot(x, y); d != 32 {
		t.Errorf("Dot = %v, want 32", d)
	}
	z := Sub(y, x)
	if z[0] != 3 || z[1] != 3 || z[2] != 3 {
		t.Errorf("Sub = %v", z)
	}
	Axpy(2, x, y)
	if y[0] != 6 || y[2] != 12 {
		t.Errorf("Axpy = %v", y)
	}
	if s := Sum(x); s != 6 {
		t.Errorf("Sum = %v, want 6", s)
	}
	if n := NormInf([]float64{-5, 2}); n != 5 {
		t.Errorf("NormInf = %v, want 5", n)
	}
	Scale(0.5, x)
	if x[1] != 1 {
		t.Errorf("Scale = %v", x)
	}
	o := Ones(3)
	if Sum(o) != 3 {
		t.Errorf("Ones = %v", o)
	}
}

// Property: (A·B)·C == A·(B·C) for random small matrices.
func TestMulAssociativityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		n := 3 + int(seed%8)
		a := Random(n, n, seed)
		b := Random(n, n, seed+1)
		c := Random(n, n, seed+2)
		l := Mul(Mul(a, b), c)
		r := Mul(a, Mul(b, c))
		return Equal(l, r, 1e-9*float64(n*n))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: checksum invariance — colsum(A·B) == (eᵀA)·B. This is the
// algebraic foundation of ABFT-DGEMM.
func TestChecksumInvariantProperty(t *testing.T) {
	f := func(seed uint64) bool {
		n := 2 + int(seed%10)
		a := Random(n, n, seed)
		b := Random(n, n, seed^0xabcdef)
		c := Mul(a, b)
		e := Ones(n)
		eta := MulVec(a.Transpose(), e) // eᵀA
		lhs := MulVec(b.Transpose(), eta)
		for j := 0; j < n; j++ {
			col := 0.0
			for i := 0; i < n; i++ {
				col += c.At(i, j)
			}
			if math.Abs(col-lhs[j]) > 1e-9*float64(n*n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: LU solve reproduces the RHS.
func TestLUSolveProperty(t *testing.T) {
	f := func(seed uint64) bool {
		n := 2 + int(seed%12)
		a := DiagonallyDominant(n, seed)
		x := RandomVec(n, seed+5)
		b := MulVec(a, x)
		lu := a.Clone()
		piv, err := LU(lu, nil)
		if err != nil {
			return false
		}
		got := SolveLU(lu, piv, b)
		for i := range got {
			if math.Abs(got[i]-x[i]) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func maxDiff(a, b *Matrix) float64 {
	d := 0.0
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if v := math.Abs(a.At(i, j) - b.At(i, j)); v > d {
				d = v
			}
		}
	}
	return d
}
