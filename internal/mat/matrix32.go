package mat

import (
	"fmt"
	"math"
)

// Matrix32 is a dense row-major matrix of float32 — the storage type of the
// mixed-precision serving path (ML-inference GEMM shapes). Arithmetic on it
// runs in float32; the ABFT checksums guarding it are accumulated in float64
// by the fused kernel (see fused32.go), so detection precision does not
// degrade with the data precision.
type Matrix32 struct {
	Rows, Cols int
	// Stride is the distance in elements between vertically adjacent
	// elements. For a freshly allocated matrix Stride == Cols; views share
	// the parent's stride.
	Stride int
	Data   []float32
}

// New32 returns a zeroed r×c float32 matrix.
func New32(r, c int) *Matrix32 {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", r, c))
	}
	return &Matrix32{Rows: r, Cols: c, Stride: c, Data: make([]float32, r*c)}
}

// FromSlice32 wraps data (row-major, len r*c) in a Matrix32 without copying.
func FromSlice32(r, c int, data []float32) *Matrix32 {
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: FromSlice32: len(data)=%d, want %d", len(data), r*c))
	}
	return &Matrix32{Rows: r, Cols: c, Stride: c, Data: data}
}

// At returns the element at row i, column j.
func (m *Matrix32) At(i, j int) float32 { return m.Data[i*m.Stride+j] }

// Set assigns the element at row i, column j.
func (m *Matrix32) Set(i, j int, v float32) { m.Data[i*m.Stride+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix32) Row(i int) []float32 { return m.Data[i*m.Stride : i*m.Stride+m.Cols] }

// View returns an r×c submatrix starting at (i, j) sharing storage with m.
func (m *Matrix32) View(i, j, r, c int) *Matrix32 {
	if i < 0 || j < 0 || r < 0 || c < 0 || i+r > m.Rows || j+c > m.Cols {
		panic(fmt.Sprintf("mat: View(%d,%d,%d,%d) out of bounds for %dx%d", i, j, r, c, m.Rows, m.Cols))
	}
	if r == 0 || c == 0 {
		return &Matrix32{Rows: r, Cols: c, Stride: m.Stride}
	}
	off := i*m.Stride + j
	end := (i+r-1)*m.Stride + j + c
	return &Matrix32{Rows: r, Cols: c, Stride: m.Stride, Data: m.Data[off:end]}
}

// Clone returns a deep copy of m with a compact stride.
func (m *Matrix32) Clone() *Matrix32 {
	out := New32(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		copy(out.Row(i), m.Row(i))
	}
	return out
}

// Zero sets every element of m to zero.
func (m *Matrix32) Zero() {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = 0
		}
	}
}

// MaxAbs returns the largest absolute value in m (0 for an empty matrix).
func (m *Matrix32) MaxAbs() float64 {
	max := 0.0
	for i := 0; i < m.Rows; i++ {
		for _, v := range m.Row(i) {
			if a := math.Abs(float64(v)); a > max {
				max = a
			}
		}
	}
	return max
}

// To64 returns a float64 copy of m (the oracle-side representation).
func (m *Matrix32) To64() *Matrix {
	out := New(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		src, dst := m.Row(i), out.Row(i)
		for j, v := range src {
			dst[j] = float64(v)
		}
	}
	return out
}

// Equal32 reports whether a and b have the same shape and elements within
// tol (compared in float64).
func Equal32(a, b *Matrix32, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := 0; i < a.Rows; i++ {
		ra, rb := a.Row(i), b.Row(i)
		for j := range ra {
			if math.Abs(float64(ra[j])-float64(rb[j])) > tol {
				return false
			}
		}
	}
	return true
}

// Random32 returns an r×c float32 matrix with deterministic pseudo-random
// entries in [0, 1), generated from seed with the same SplitMix64 stream as
// Random — Random32(r, c, s) is elementwise float32(Random(r, c, s)).
func Random32(r, c int, seed uint64) *Matrix32 {
	m := New32(r, c)
	s := seed
	for i := range m.Data {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		m.Data[i] = float32(float64(z>>11) / float64(1<<53))
	}
	return m
}

// Moments are magnitude statistics of one operand, gathered in float64
// during the packing pass of the fused float32 kernel. They are the inputs
// of the V-ABFT-style adaptive detection threshold: the bound scales with
// the root-mean-square of the operands (their variance proxy) instead of a
// fixed epsilon, so low-magnitude panels get tight detection and
// high-variance panels do not false-positive.
type Moments struct {
	Count  int     // elements observed
	SumSq  float64 // Σ v²
	MaxAbs float64 // max |v|
}

// Observe folds one value into the statistics.
func (m *Moments) Observe(v float64) {
	m.Count++
	m.SumSq += v * v
	if a := math.Abs(v); a > m.MaxAbs {
		m.MaxAbs = a
	}
}

// Merge folds another statistics block into m.
func (m *Moments) Merge(o Moments) {
	m.Count += o.Count
	m.SumSq += o.SumSq
	if o.MaxAbs > m.MaxAbs {
		m.MaxAbs = o.MaxAbs
	}
}

// MeanSq returns the mean square (0 for empty statistics).
func (m Moments) MeanSq() float64 {
	if m.Count == 0 {
		return 0
	}
	return m.SumSq / float64(m.Count)
}

// RMS returns the root-mean-square magnitude.
func (m Moments) RMS() float64 { return math.Sqrt(m.MeanSq()) }
