//go:build race

package mat

// raceEnabled gates tests that cannot hold under the race detector (e.g.
// zero-alloc assertions: sync.Pool intentionally drops items under -race).
const raceEnabled = true
