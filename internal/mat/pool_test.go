package mat

import (
	"testing"
)

// TestBufPoolClassRoundTrip: buffers come back from the class they were
// put into, lengths are honored, and odd sizes round up to the class cap.
func TestBufPoolClassRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 3, 100, 1 << 10, 1<<10 + 1, kcBlock * ncBlock} {
		p := getBuf(n)
		if len(*p) != n {
			t.Fatalf("getBuf(%d): len %d", n, len(*p))
		}
		if c := cap(*p); c&(c-1) != 0 || c < n {
			t.Fatalf("getBuf(%d): cap %d not a power of two >= n", n, c)
		}
		putBuf(p)
	}
	// A foreign buffer with a non-power-of-two cap is dropped, not pooled.
	odd := make([]float64, 100, 100)
	putBuf(&odd) // must not panic; nothing to assert beyond that
}

// TestMulAddIntoSteadyStateZeroAllocs: after warmup, serial GEMM over a
// *mix* of problem sizes must not allocate — the size-classed pools
// guarantee a pooled buffer always fits, where the old single shared pool
// could hand a small request's recycled buffer to a large request and force
// a reallocation on every call.
func TestMulAddIntoSteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under -race; zero-alloc cannot hold")
	}
	type prob struct{ c, a, b *Matrix }
	var probs []prob
	// All above packMinFlops so every call takes the packed (pooled) path;
	// spread across different buffer size classes.
	for _, sh := range []struct{ m, k, n int }{
		{40, 256, 40}, {64, 64, 64}, {100, 100, 100}, {129, 65, 97}, {33, 500, 33},
	} {
		probs = append(probs, prob{
			c: New(sh.m, sh.n),
			a: Random(sh.m, sh.k, uint64(sh.m)),
			b: Random(sh.k, sh.n, uint64(sh.n)),
		})
	}
	withParallelism(1, func() {
		run := func() {
			for _, p := range probs {
				MulAddInto(p.c, p.a, p.b)
			}
		}
		run() // warm the pools
		if allocs := testing.AllocsPerRun(10, run); allocs != 0 {
			t.Errorf("steady-state GEMM mix allocates %.0f times per run, want 0", allocs)
		}
	})
}

// BenchmarkBufPoolMixed measures pool behavior under the mixed-size request
// pattern the serving path produces (different n per request sharing the
// pools). b.ReportAllocs surfaces the steady-state allocation count the
// size-classed pools are designed to hold at zero.
func BenchmarkBufPoolMixed(b *testing.B) {
	sizes := []int{512, 48 * 48, kcBlock * 64, kcBlock * ncBlock, 1000}
	b.Run("direct", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p := getBuf(sizes[i%len(sizes)])
			putBuf(p)
		}
	})
	b.Run("gemm", func(b *testing.B) {
		type prob struct{ c, a, b *Matrix }
		var probs []prob
		for _, n := range []int{40, 64, 100} {
			probs = append(probs, prob{New(n, n), Random(n, n, uint64(n)), Random(n, n, uint64(n)+1)})
		}
		withParallelism(1, func() {
			for _, p := range probs {
				MulAddInto(p.c, p.a, p.b) // warm
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := probs[i%len(probs)]
				MulAddInto(p.c, p.a, p.b)
			}
		})
	})
}
