package mat

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// Shared-memory parallelism for the kernel layer.
//
// Every parallel kernel partitions its *output rows* into disjoint bands and
// runs the identical serial loop order inside each band. Because no output
// element is ever touched by two goroutines and each element accumulates its
// k-products in ascending order regardless of where the band boundaries
// fall, results are bit-identical to the serial run at any worker count —
// the same determinism contract the campaign engine gives across cells.

// parallelMinFlops is the work floor below which kernels stay serial: the
// goroutine fan-out costs more than it saves under roughly 2·32³ flops.
const parallelMinFlops = 1 << 17

// parallelism is the current worker budget for the mat kernels.
var parallelism atomic.Int32

func init() {
	n := runtime.GOMAXPROCS(0)
	if s := os.Getenv("MAT_PARALLELISM"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			n = v
		}
	}
	parallelism.Store(int32(n))
}

// Parallelism returns the worker budget the kernels may use.
func Parallelism() int { return int(parallelism.Load()) }

// SetParallelism sets the kernel worker budget and returns the previous
// value. n <= 0 resets to runtime.GOMAXPROCS(0). Results are bit-identical
// at every setting; this knob only trades wall-clock time for goroutines.
// The initial budget is GOMAXPROCS, overridable with the MAT_PARALLELISM
// environment variable.
func SetParallelism(n int) int {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return int(parallelism.Swap(int32(n)))
}

// workersFor caps the worker budget by the row count and the serial-fallback
// threshold.
func workersFor(rows, flops int) int {
	w := Parallelism()
	if w > rows {
		w = rows
	}
	if w <= 1 || flops < parallelMinFlops {
		return 1
	}
	return w
}

// band is a half-open row range [lo, hi).
type band struct{ lo, hi int }

// rowBands splits rows into at most workers bands of near-equal size, with
// band starts aligned to tileAlign so full micro-tiles stay intact at any
// supported tile height. The partition depends only on (rows, workers) —
// never on runtime scheduling.
func rowBands(rows, workers int) []band {
	chunk := (rows + workers - 1) / workers
	chunk = (chunk + tileAlign - 1) / tileAlign * tileAlign
	bands := make([]band, 0, workers)
	for lo := 0; lo < rows; lo += chunk {
		bands = append(bands, band{lo, min(lo+chunk, rows)})
	}
	return bands
}

// triBands splits the rows of an n×n lower triangle into bands of
// near-equal *area* (row i holds i+1 elements), so SYRK's work balances
// even though later rows are longer.
func triBands(n, workers int) []band {
	total := n * (n + 1) / 2
	per := (total + workers - 1) / workers
	bands := make([]band, 0, workers)
	lo, acc := 0, 0
	for i := 0; i < n; i++ {
		acc += i + 1
		if acc >= per || i == n-1 {
			bands = append(bands, band{lo, i + 1})
			lo, acc = i+1, 0
		}
	}
	return bands
}

// runBands invokes fn(lo, hi) over each band, in parallel when there is more
// than one. fn must only write rows inside its band.
func runBands(bands []band, fn func(lo, hi int)) {
	if len(bands) == 1 {
		fn(bands[0].lo, bands[0].hi)
		return
	}
	var wg sync.WaitGroup
	for _, bd := range bands {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(bd.lo, bd.hi)
	}
	wg.Wait()
}
