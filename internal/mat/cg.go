package mat

import "errors"

// ErrNoConvergence is returned when an iterative method exhausts its
// iteration budget without meeting its tolerance.
var ErrNoConvergence = errors.New("mat: iteration limit reached without convergence")

// CGResult reports the outcome of a conjugate gradient solve.
type CGResult struct {
	X          []float64 // solution estimate
	Iterations int
	Residual   float64 // final ‖b − A·x‖₂
}

// CG solves a·x = b for SPD a with Jacobi-preconditioned conjugate gradient
// (Figure 1 of the paper, with M = diag(A)). It iterates until
// ‖r‖₂ ≤ tol·‖b‖₂ or maxIter iterations.
func CG(a *Matrix, b []float64, tol float64, maxIter int) (CGResult, error) {
	n := a.Rows
	x := make([]float64, n)
	r := make([]float64, n)
	copy(r, b) // r⁰ = b − A·0 = b
	minv := make([]float64, n)
	for i := 0; i < n; i++ {
		minv[i] = 1 / a.At(i, i)
	}
	z := make([]float64, n)
	for i := range z {
		z[i] = minv[i] * r[i]
	}
	p := make([]float64, n)
	copy(p, z)
	rho := Dot(r, z)
	bnorm := Norm2(b)
	if bnorm == 0 {
		bnorm = 1
	}
	if Norm2(r) <= tol*bnorm {
		return CGResult{X: x, Iterations: 0, Residual: Norm2(r)}, nil
	}
	q := make([]float64, n)
	for it := 0; it < maxIter; it++ {
		MulVecInto(q, a, p)
		alpha := rho / Dot(p, q)
		Axpy(alpha, p, x)
		Axpy(-alpha, q, r)
		res := Norm2(r)
		if res <= tol*bnorm {
			return CGResult{X: x, Iterations: it + 1, Residual: res}, nil
		}
		for i := range z {
			z[i] = minv[i] * r[i]
		}
		rhoNext := Dot(r, z)
		beta := rhoNext / rho
		rho = rhoNext
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	return CGResult{X: x, Iterations: maxIter, Residual: Norm2(r)}, ErrNoConvergence
}
