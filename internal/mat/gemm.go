package mat

import "fmt"

// gemmBlock is the cache-blocking factor for the small-problem fallback
// loop. 64 float64 = one 4KB tile per operand pair at 64×64, comfortably
// inside the modeled L1.
const gemmBlock = 64

// Mul returns a×b as a new matrix.
func Mul(a, b *Matrix) *Matrix {
	c := New(a.Rows, b.Cols)
	MulInto(c, a, b)
	return c
}

// MulInto computes c = a×b. c must not alias a or b.
func MulInto(c, a, b *Matrix) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulInto shape mismatch: c %dx%d = a %dx%d × b %dx%d",
			c.Rows, c.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c.Zero()
	MulAddInto(c, a, b)
}

// MulAddInto computes c += a×b through the packed micro-kernel (kernel.go),
// parallel over row bands for large problems and serial below the
// threshold. Every element accumulates its k-products in ascending order,
// so the result is bit-identical to a naive triple loop — including
// NaN/Inf propagation: a zero in a times a NaN/Inf in b contributes NaN,
// never a silent skip — at any blocking or parallelism.
func MulAddInto(c, a, b *Matrix) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulAddInto shape mismatch: c %dx%d += a %dx%d × b %dx%d",
			c.Rows, c.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	mulAdd(c, a, b, 1, false)
}

// MulVec returns a·x for an a.Rows-length result.
func MulVec(a *Matrix, x []float64) []float64 {
	y := make([]float64, a.Rows)
	MulVecInto(y, a, x)
	return y
}

// MulVecInto computes y = a·x, parallel over row bands when the problem is
// large enough; each row's dot product is a single serial pass, so the
// result is bit-identical at any worker count.
func MulVecInto(y []float64, a *Matrix, x []float64) {
	if len(x) != a.Cols || len(y) != a.Rows {
		panic(fmt.Sprintf("mat: MulVecInto shape mismatch: y[%d] = a %dx%d · x[%d]",
			len(y), a.Rows, a.Cols, len(x)))
	}
	rows := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := a.Data[i*a.Stride : i*a.Stride+a.Cols]
			s := 0.0
			for j, v := range row {
				s += v * x[j]
			}
			y[i] = s
		}
	}
	workers := workersFor(a.Rows, 2*a.Rows*a.Cols)
	if workers <= 1 {
		rows(0, a.Rows)
		return
	}
	runBands(rowBands(a.Rows, workers), rows)
}
