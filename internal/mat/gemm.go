package mat

import "fmt"

// gemmBlock is the cache-blocking factor for MulInto. 64 float64 = one 4KB
// tile per operand pair at 64×64, comfortably inside the modeled L1.
const gemmBlock = 64

// Mul returns a×b as a new matrix.
func Mul(a, b *Matrix) *Matrix {
	c := New(a.Rows, b.Cols)
	MulInto(c, a, b)
	return c
}

// MulInto computes c = a×b. c must not alias a or b.
func MulInto(c, a, b *Matrix) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulInto shape mismatch: c %dx%d = a %dx%d × b %dx%d",
			c.Rows, c.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c.Zero()
	MulAddInto(c, a, b)
}

// MulAddInto computes c += a×b with i-k-j loop order blocked for locality.
func MulAddInto(c, a, b *Matrix) {
	n, k, m := a.Rows, a.Cols, b.Cols
	for ii := 0; ii < n; ii += gemmBlock {
		iMax := min(ii+gemmBlock, n)
		for kk := 0; kk < k; kk += gemmBlock {
			kMax := min(kk+gemmBlock, k)
			for jj := 0; jj < m; jj += gemmBlock {
				jMax := min(jj+gemmBlock, m)
				for i := ii; i < iMax; i++ {
					crow := c.Data[i*c.Stride : i*c.Stride+m]
					arow := a.Data[i*a.Stride : i*a.Stride+k]
					for p := kk; p < kMax; p++ {
						av := arow[p]
						if av == 0 {
							continue
						}
						brow := b.Data[p*b.Stride : p*b.Stride+m]
						for j := jj; j < jMax; j++ {
							crow[j] += av * brow[j]
						}
					}
				}
			}
		}
	}
}

// MulVec returns a·x for an a.Rows-length result.
func MulVec(a *Matrix, x []float64) []float64 {
	y := make([]float64, a.Rows)
	MulVecInto(y, a, x)
	return y
}

// MulVecInto computes y = a·x.
func MulVecInto(y []float64, a *Matrix, x []float64) {
	if len(x) != a.Cols || len(y) != a.Rows {
		panic(fmt.Sprintf("mat: MulVecInto shape mismatch: y[%d] = a %dx%d · x[%d]",
			len(y), a.Rows, a.Cols, len(x)))
	}
	for i := 0; i < a.Rows; i++ {
		row := a.Data[i*a.Stride : i*a.Stride+a.Cols]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
