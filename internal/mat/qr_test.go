package mat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestQRReconstructsA(t *testing.T) {
	for _, n := range []int{1, 2, 5, 16, 33} {
		a := DiagonallyDominant(n, uint64(n)+40)
		q, err := QRFactor(a, nil)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Q·R must equal A.
		qm := q.QMatrix()
		rec := Mul(qm, q.R)
		if !Equal(rec, a, 1e-8*float64(n)) {
			t.Errorf("n=%d: Q·R ≠ A (max diff %g)", n, maxDiff(rec, a))
		}
		// R is upper triangular.
		for i := 0; i < n; i++ {
			for j := 0; j < i; j++ {
				if q.R.At(i, j) != 0 {
					t.Fatalf("n=%d: R[%d][%d] = %g", n, i, j, q.R.At(i, j))
				}
			}
		}
	}
}

func TestQROrthogonality(t *testing.T) {
	a := Random(20, 20, 9)
	for i := 0; i < 20; i++ {
		a.Add(i, i, 20)
	}
	q, err := QRFactor(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	qm := q.QMatrix()
	qtq := Mul(qm.Transpose(), qm)
	if !Equal(qtq, Eye(20), 1e-10) {
		t.Error("QᵀQ ≠ I")
	}
}

func TestQRSolve(t *testing.T) {
	for _, n := range []int{3, 10, 40} {
		a := DiagonallyDominant(n, uint64(n)+70)
		xTrue := RandomVec(n, 5)
		b := MulVec(a, xTrue)
		q, err := QRFactor(a, nil)
		if err != nil {
			t.Fatal(err)
		}
		x := q.Solve(b)
		for i := range x {
			if math.Abs(x[i]-xTrue[i]) > 1e-8 {
				t.Fatalf("n=%d: x[%d] = %g, want %g", n, i, x[i], xTrue[i])
			}
		}
	}
}

func TestQRApplyQInvertsApplyQT(t *testing.T) {
	a := DiagonallyDominant(15, 3)
	q, err := QRFactor(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	x := RandomVec(15, 8)
	y := q.ApplyQ(q.ApplyQT(x))
	for i := range x {
		if math.Abs(y[i]-x[i]) > 1e-10 {
			t.Fatalf("Q·Qᵀ·x ≠ x at %d", i)
		}
	}
}

func TestQRStepHook(t *testing.T) {
	a := DiagonallyDominant(8, 2)
	var steps []int
	if _, err := QRFactor(a, func(k int) error { steps = append(steps, k); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(steps) != 8 || steps[0] != 0 || steps[7] != 7 {
		t.Errorf("steps = %v", steps)
	}
}

func TestQRSingular(t *testing.T) {
	a := New(3, 3) // all zeros
	if _, err := QRFactor(a, nil); err != ErrSingular {
		t.Errorf("err = %v", err)
	}
}

// Property: the Householder invariant — appended checksum columns transform
// exactly like the row sums they encode (H·(A·e) = (H·A)·e).
func TestQRChecksumCommutesProperty(t *testing.T) {
	f := func(seed uint64) bool {
		n := 3 + int(seed%10)
		a := DiagonallyDominant(n, seed)
		// Extend with a row-sum column.
		ext := New(n, n+1)
		for i := 0; i < n; i++ {
			copy(ext.Row(i)[:n], a.Row(i))
			ext.Set(i, n, Sum(a.Row(i)))
		}
		v := New(n, n)
		beta := make([]float64, n)
		for k := 0; k < n; k++ {
			if _, err := HouseholderStep(ext, v, beta, k); err != nil {
				return false
			}
			// The invariant must hold after every reflection.
			for i := 0; i < n; i++ {
				s := 0.0
				for j := 0; j < n; j++ {
					s += ext.At(i, j)
				}
				if math.Abs(s-ext.At(i, n)) > 1e-8*float64(n) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
